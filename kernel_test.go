package wqrtq

// Differential property suite for the blocked scoring kernel: with the
// kernel enabled (the default), every endpoint must answer bit-identically
// to the -kernel=off ablation — same reverse top-k index sets and the same
// why-not answers down to the last bit of every penalty, which pins the
// blocked rank counting, the capped sample scans, the call-fixed universe
// of the fused pipeline and the blocked RTA membership test — across
// UN/CO/AC workloads, shard counts including 1, skyband on and off, and
// mutation streams that invalidate the epoch caches. A separate suite pins
// the fused WhyNot pipeline against the standalone refinement endpoints.

import (
	"math/rand"
	"reflect"
	"testing"

	"wqrtq/internal/dataset"
	"wqrtq/internal/sample"
)

// kernelPair builds two identical indexes over pts with s shards and the
// given skyband setting, one with the kernel on (default) and one ablated
// off.
func kernelPair(t *testing.T, pts [][]float64, s int, skybandOn bool) (on, off *Index) {
	t.Helper()
	on, err := NewIndexSharded(pts, s)
	if err != nil {
		t.Fatal(err)
	}
	if !on.KernelEnabled() {
		t.Fatal("kernel must be enabled by default")
	}
	on.SetSkyband(skybandOn)
	off, err = NewIndexSharded(pts, s)
	if err != nil {
		t.Fatal(err)
	}
	off.SetSkyband(skybandOn)
	off.SetKernel(false)
	if off.KernelEnabled() {
		t.Fatal("SetKernel(false) did not stick")
	}
	return on, off
}

func TestKernelDifferential(t *testing.T) {
	const casesPerShape = 10
	for si, shape := range shardDiffShapes {
		t.Run(shape.name, func(t *testing.T) {
			for i := 0; i < casesPerShape; i++ {
				seed := int64(120000*si + i)
				rng := rand.New(rand.NewSource(seed))
				n := 1 + rng.Intn(300)
				d := 2 + rng.Intn(3)
				k := 1 + rng.Intn(15)
				ds := shape.gen(n, d, seed+500000)
				pts := make([][]float64, len(ds.Points))
				for j, p := range ds.Points {
					pts[j] = p
				}
				q := make([]float64, d)
				for j := range q {
					q[j] = rng.Float64() * rng.Float64()
				}
				W := make([][]float64, 1+rng.Intn(20))
				for j := range W {
					W[j] = sample.RandSimplex(rng, d)
				}
				for _, skybandOn := range []bool{true, false} {
					for _, s := range shardDiffCounts {
						on, off := kernelPair(t, pts, s, skybandOn)
						gotRTK, err := on.ReverseTopK(W, q, k)
						if err != nil {
							t.Fatal(err)
						}
						wantRTK, err := off.ReverseTopK(W, q, k)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(gotRTK, wantRTK) {
							t.Fatalf("case %d s=%d sky=%v: ReverseTopK %v, ablation %v",
								i, s, skybandOn, gotRTK, wantRTK)
						}
						gotRank, _ := on.Rank(W[0], q)
						wantRank, _ := off.Rank(W[0], q)
						if gotRank != wantRank {
							t.Fatalf("case %d s=%d sky=%v: Rank %d, ablation %d",
								i, s, skybandOn, gotRank, wantRank)
						}
					}
				}
			}
		})
	}
}

// sameWhyNot requires two why-not answers to match bit for bit on every
// comparable field (explanation ID order inside score ties excepted).
func sameWhyNot(t *testing.T, label string, got, want *WhyNotAnswer) {
	t.Helper()
	if !reflect.DeepEqual(got.Result, want.Result) || !reflect.DeepEqual(got.Missing, want.Missing) {
		t.Fatalf("%s: result/missing diverge: %v/%v vs %v/%v",
			label, got.Result, got.Missing, want.Result, want.Missing)
	}
	for ei := range want.Explanations {
		sameRankedModuloTies(t, label+" explanation", got.Explanations[ei], want.Explanations[ei])
	}
	if !reflect.DeepEqual(got.ModifiedQuery.Q, want.ModifiedQuery.Q) ||
		got.ModifiedQuery.Penalty != want.ModifiedQuery.Penalty {
		t.Fatalf("%s: MQP diverged: %+v vs %+v", label, got.ModifiedQuery, want.ModifiedQuery)
	}
	if got.ModifiedPreferences.Penalty != want.ModifiedPreferences.Penalty ||
		got.ModifiedPreferences.K != want.ModifiedPreferences.K ||
		got.ModifiedPreferences.KMax != want.ModifiedPreferences.KMax ||
		!reflect.DeepEqual(got.ModifiedPreferences.Wm, want.ModifiedPreferences.Wm) {
		t.Fatalf("%s: MWK diverged: %+v vs %+v", label, got.ModifiedPreferences, want.ModifiedPreferences)
	}
	if got.ModifiedAll.Penalty != want.ModifiedAll.Penalty ||
		got.ModifiedAll.K != want.ModifiedAll.K ||
		!reflect.DeepEqual(got.ModifiedAll.Q, want.ModifiedAll.Q) ||
		!reflect.DeepEqual(got.ModifiedAll.Wm, want.ModifiedAll.Wm) {
		t.Fatalf("%s: MQWK diverged: %+v vs %+v", label, got.ModifiedAll, want.ModifiedAll)
	}
}

// TestKernelWhyNotPenalties runs the full pipeline with identical seeds on
// kernel-on and kernel-off indexes and requires bit-identical answers,
// penalties included, across both MWK strategies, the parallel MQWK path,
// shard counts, and skyband on/off.
func TestKernelWhyNotPenalties(t *testing.T) {
	const cases = 8
	for i := 0; i < cases; i++ {
		seed := int64(7100 + i)
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(200)
		d := 2 + rng.Intn(2)
		k := 1 + rng.Intn(6)
		opts := Options{SampleSize: 16, Seed: seed}
		if i%3 == 1 {
			opts.PerVector = true
		}
		if i%4 == 2 {
			opts.Workers = 3
		}
		ds := dataset.Independent(n, d, seed+600000)
		pts := make([][]float64, len(ds.Points))
		for j, p := range ds.Points {
			pts[j] = p
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = pts[rng.Intn(n)][j]*0.5 + 0.3
		}
		W := make([][]float64, 4+rng.Intn(8))
		for j := range W {
			W[j] = sample.RandSimplex(rng, d)
		}
		for _, skybandOn := range []bool{true, false} {
			for _, s := range shardDiffCounts {
				on, off := kernelPair(t, pts, s, skybandOn)
				got, err := on.WhyNot(q, k, W, opts)
				if err != nil {
					t.Fatal(err)
				}
				want, err := off.WhyNot(q, k, W, opts)
				if err != nil {
					t.Fatal(err)
				}
				sameWhyNot(t, "kernel WhyNot", got, want)
			}
		}
	}
}

// TestWhyNotMatchesStandaloneRefinements pins the fused refinement
// pipeline (core.WhyNotRefineSrcCtx): the three refinements inside a
// WhyNot answer must be bit-identical to the standalone ModifyQuery /
// ModifyPreferences / ModifyAll endpoints called with the same missing
// vectors — the shared candidate traversal and the reused MQP optimum are
// equal by construction to what each stage recomputes on its own.
func TestWhyNotMatchesStandaloneRefinements(t *testing.T) {
	for i := 0; i < 6; i++ {
		seed := int64(8200 + i)
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(250)
		d := 2 + rng.Intn(2)
		k := 1 + rng.Intn(6)
		opts := Options{SampleSize: 24, Seed: seed}
		if i%2 == 1 {
			opts.PerVector = true
		}
		if i%3 == 2 {
			opts.Workers = 2
		}
		ds := dataset.Independent(n, d, seed+700000)
		pts := make([][]float64, len(ds.Points))
		for j, p := range ds.Points {
			pts[j] = p
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = pts[rng.Intn(n)][j]*0.5 + 0.3
		}
		W := make([][]float64, 4+rng.Intn(8))
		for j := range W {
			W[j] = sample.RandSimplex(rng, d)
		}
		for _, kernelOn := range []bool{true, false} {
			ix, err := NewIndex(pts)
			if err != nil {
				t.Fatal(err)
			}
			ix.SetKernel(kernelOn)
			ans, err := ix.WhyNot(q, k, W, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(ans.Missing) == 0 {
				continue
			}
			missing := make([][]float64, len(ans.Missing))
			for j, mi := range ans.Missing {
				missing[j] = W[mi]
			}
			mq, err := ix.ModifyQuery(q, k, missing, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(mq, ans.ModifiedQuery) {
				t.Fatalf("case %d kernel=%v: fused MQP %+v, standalone %+v", i, kernelOn, ans.ModifiedQuery, mq)
			}
			mp, err := ix.ModifyPreferences(q, k, missing, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(mp, ans.ModifiedPreferences) {
				t.Fatalf("case %d kernel=%v: fused MWK %+v, standalone %+v", i, kernelOn, ans.ModifiedPreferences, mp)
			}
			ma, err := ix.ModifyAll(q, k, missing, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ma, ans.ModifiedAll) {
				t.Fatalf("case %d kernel=%v: fused MQWK %+v, standalone %+v", i, kernelOn, ans.ModifiedAll, ma)
			}
		}
	}
}

// TestKernelMutationInvalidation drives the same mutation stream into a
// kernel-on and a kernel-off index, querying between mutations: every
// answer must stay identical, which fails if a stale flattened band image
// survives an insert or delete.
func TestKernelMutationInvalidation(t *testing.T) {
	const d = 3
	for _, s := range []int{1, 3} {
		ds := dataset.Independent(150, d, 43)
		pts := make([][]float64, len(ds.Points))
		for j, p := range ds.Points {
			pts[j] = p
		}
		on, off := kernelPair(t, pts, s, true)
		rng := rand.New(rand.NewSource(90031))
		W := make([][]float64, 8)
		for j := range W {
			W[j] = sample.RandSimplex(rng, d)
		}
		for i := 0; i < 80; i++ {
			q := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			// Warm the caches so the mutation has something to invalidate.
			if _, err := on.ReverseTopK(W, q, 5); err != nil {
				t.Fatal(err)
			}
			p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			idA, errA := on.Insert(p)
			idB, errB := off.Insert(p)
			if errA != nil || errB != nil || idA != idB {
				t.Fatalf("insert diverged: (%d, %v) vs (%d, %v)", idA, errA, idB, errB)
			}
			if i%3 == 0 {
				victim := rng.Intn(idA + 1)
				okA, _ := on.Delete(victim)
				okB, _ := off.Delete(victim)
				if okA != okB {
					t.Fatalf("delete %d diverged", victim)
				}
			}
			gotRTK, err := on.ReverseTopK(W, q, 5)
			if err != nil {
				t.Fatal(err)
			}
			wantRTK, _ := off.ReverseTopK(W, q, 5)
			if !reflect.DeepEqual(gotRTK, wantRTK) {
				t.Fatalf("s=%d step %d: post-mutation ReverseTopK diverged", s, i)
			}
			wn, err := on.WhyNot(q, 5, W, Options{SampleSize: 8, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			wantWn, err := off.WhyNot(q, 5, W, Options{SampleSize: 8, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			sameWhyNot(t, "post-mutation WhyNot", wn, wantWn)
		}
		if err := on.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKernelEngineStats exercises the engine integration: the kernel
// counters must surface in EngineStats and survive snapshot swaps, the
// DisableKernel ablation must answer identically, and Clone must keep the
// clone family's cumulative counters.
func TestKernelEngineStats(t *testing.T) {
	eOn, _ := testEngine(t, 500, 3, EngineConfig{CacheSize: -1})
	eOff, _ := testEngine(t, 500, 3, EngineConfig{CacheSize: -1, DisableKernel: true})
	if !eOn.Snapshot().KernelEnabled() || eOff.Snapshot().KernelEnabled() {
		t.Fatal("engine kernel configuration not applied")
	}
	rng := rand.New(rand.NewSource(321))
	q := []float64{rng.Float64() * 0.3, rng.Float64() * 0.3, rng.Float64() * 0.3}
	W := make([][]float64, 12)
	for j := range W {
		W[j] = sample.RandSimplex(rng, 3)
	}
	respOn, err := eOn.ReverseTopKCtx(t.Context(), ReverseTopKRequest{Q: q, K: 4, W: W})
	if err != nil {
		t.Fatal(err)
	}
	respOff, err := eOff.ReverseTopKCtx(t.Context(), ReverseTopKRequest{Q: q, K: 4, W: W})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(respOn.Result, respOff.Result) {
		t.Fatalf("engine results diverge: %v vs %v", respOn.Result, respOff.Result)
	}
	wnOn, err := eOn.WhyNotCtx(t.Context(), WhyNotRequest{Q: q, K: 4, W: W, Opts: Options{SampleSize: 8, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if wnOn.Answer.RTA.Evaluated+wnOn.Answer.RTA.Pruned != len(W) {
		t.Fatalf("WhyNot RTA stats inconsistent: %+v over %d vectors", wnOn.Answer.RTA, len(W))
	}
	st := eOn.Stats()
	if !st.Kernel.Enabled || st.Kernel.Blocks < 1 || st.Kernel.Weights < int64(len(W)) || st.Kernel.Points < 1 {
		t.Fatalf("kernel stats not populated: %+v", st.Kernel)
	}
	stOff := eOff.Stats()
	if stOff.Kernel.Enabled || stOff.Kernel.Blocks != 0 {
		t.Fatalf("ablated engine recorded kernel work: %+v", stOff.Kernel)
	}

	// A mutation publishes a fresh snapshot: the cumulative counters carry
	// over and keep growing.
	blocks := st.Kernel.Blocks
	if _, _, err := eOn.Insert([]float64{0.9, 0.9, 0.9}); err != nil {
		t.Fatal(err)
	}
	if got := eOn.Stats().Kernel; got.Blocks != blocks {
		t.Fatalf("cumulative kernel blocks changed on snapshot swap: %d vs %d", got.Blocks, blocks)
	}
	if _, err := eOn.ReverseTopKCtx(t.Context(), ReverseTopKRequest{Q: q, K: 4, W: W}); err != nil {
		t.Fatal(err)
	}
	if got := eOn.Stats().Kernel; got.Blocks <= blocks {
		t.Fatalf("new snapshot did not add kernel work: %+v", got)
	}
}
