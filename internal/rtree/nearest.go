package rtree

import (
	"container/heap"
	"math"

	"wqrtq/internal/vec"
)

// Neighbor is one result of a nearest-neighbor query.
type Neighbor struct {
	ID       int32
	Point    vec.Point
	Distance float64
}

// nnItem is a heap element: either a node or a point, keyed by its minimum
// possible Euclidean distance to the query point.
type nnItem struct {
	dist  float64
	node  *Node
	id    int32
	point vec.Point
}

type nnHeap []nnItem

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// minDist returns the smallest Euclidean distance from p to any point in r.
func (r Rect) minDist(p vec.Point) float64 {
	s := 0.0
	for i := range p {
		switch {
		case p[i] < r.Min[i]:
			d := r.Min[i] - p[i]
			s += d * d
		case p[i] > r.Max[i]:
			d := p[i] - r.Max[i]
			s += d * d
		}
	}
	return math.Sqrt(s)
}

// Nearest returns the n points closest to p in ascending distance order
// (fewer if the tree is smaller), using the classic best-first search over
// MBR minimum distances. Useful for locating the competitors nearest a
// product in attribute space.
func (t *Tree) Nearest(p vec.Point, n int) []Neighbor {
	if n <= 0 || t.size == 0 {
		return nil
	}
	h := nnHeap{{dist: 0, node: t.root}}
	heap.Init(&h)
	out := make([]Neighbor, 0, n)
	for len(h) > 0 && len(out) < n {
		top := heap.Pop(&h).(nnItem)
		if top.node == nil {
			out = append(out, Neighbor{ID: top.id, Point: top.point, Distance: top.dist})
			continue
		}
		nd := top.node
		for i := range nd.entries {
			e := &nd.entries[i]
			if nd.leaf {
				q := vec.Point(e.rect.Min)
				heap.Push(&h, nnItem{dist: vec.Dist(p, q), id: e.id, point: q})
			} else {
				heap.Push(&h, nnItem{dist: e.rect.minDist(p), node: e.child})
			}
		}
	}
	return out
}
