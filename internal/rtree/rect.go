package rtree

import (
	"math"

	"wqrtq/internal/vec"
)

// Rect is a d-dimensional axis-aligned minimum bounding rectangle.
// A point is stored as a degenerate Rect whose Min and Max alias the same
// backing slice.
type Rect struct {
	Min, Max []float64
}

// PointRect wraps a point as a degenerate rectangle without copying.
func PointRect(p vec.Point) Rect {
	return Rect{Min: p, Max: p}
}

// CloneRect deep-copies r.
func CloneRect(r Rect) Rect {
	mn := make([]float64, len(r.Min))
	mx := make([]float64, len(r.Max))
	copy(mn, r.Min)
	copy(mx, r.Max)
	return Rect{Min: mn, Max: mx}
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the point lies inside r (inclusive).
func (r Rect) ContainsPoint(p vec.Point) bool {
	for i := range r.Min {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s overlap (inclusive).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Min {
		if s.Min[i] > r.Max[i] || s.Max[i] < r.Min[i] {
			return false
		}
	}
	return true
}

// Area returns the d-dimensional volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// Margin returns the sum of the side lengths of r (the R*-tree split
// heuristic minimizes the margin sum over candidate distributions).
func (r Rect) Margin() float64 {
	m := 0.0
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// EnlargedArea returns the volume of r extended to cover s.
func (r Rect) EnlargedArea(s Rect) float64 {
	a := 1.0
	for i := range r.Min {
		lo := math.Min(r.Min[i], s.Min[i])
		hi := math.Max(r.Max[i], s.Max[i])
		a *= hi - lo
	}
	return a
}

// OverlapArea returns the volume of the intersection of r and s.
func (r Rect) OverlapArea(s Rect) float64 {
	a := 1.0
	for i := range r.Min {
		lo := math.Max(r.Min[i], s.Min[i])
		hi := math.Min(r.Max[i], s.Max[i])
		if hi <= lo {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// extend grows r in place to cover s. r must own its backing slices.
func (r *Rect) extend(s Rect) {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] {
			r.Min[i] = s.Min[i]
		}
		if s.Max[i] > r.Max[i] {
			r.Max[i] = s.Max[i]
		}
	}
}

// combine returns a fresh rectangle covering both arguments.
func combine(a, b Rect) Rect {
	r := CloneRect(a)
	r.extend(b)
	return r
}

// center returns the rectangle's center point (fresh slice).
func (r Rect) center() []float64 {
	c := make([]float64, len(r.Min))
	for i := range c {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// MinScore returns the smallest possible linear score f(w, p) of any point p
// inside r, which for non-negative weights is the score of the lower corner.
func (r Rect) MinScore(w vec.Weight) float64 {
	return vec.Score(w, r.Min)
}

// MaxScore returns the largest possible linear score of any point inside r.
func (r Rect) MaxScore(w vec.Weight) float64 {
	return vec.Score(w, r.Max)
}

// DominatedBy reports whether every point inside r is dominated-or-equal by
// q, i.e. q[i] <= Min[i] on every dimension. Used to prune subtrees whose
// points can never dominate or be incomparable with q.
func (r Rect) DominatedBy(q vec.Point) bool {
	for i := range q {
		if q[i] > r.Min[i] {
			return false
		}
	}
	return true
}
