package rtree

import (
	"fmt"

	"wqrtq/internal/vec"
)

// Assembler rebuilds a Tree from its serialized node pages. It lives in
// package rtree — not internal/pagestore — because Tree and Node are
// snapshot-reachable types whose fields are writable only inside their
// builder package; the page decoder hands the assembler plain ids, points
// and rectangles and never touches a node.
//
// Usage: NewAssembler, then AddLeaf/AddInternal once per node index in any
// order, then Finish. Node indexes are the page numbers assigned by the
// serializer's depth-first walk; children are referenced by index. Finish
// links the structure, verifies it is a single tree (every non-root node
// referenced exactly once, all nodes reachable from the root), recomputes
// subtree counts bottom-up, and checks them against the declared size.
type Assembler struct {
	dim      int
	maxFill  int
	minFill  int
	nodes    []*Node
	children [][]int // child indexes per internal node, linked in Finish
	filled   []bool
}

// NewAssembler prepares assembly of a tree with the given geometry and
// exactly nodeCount nodes.
func NewAssembler(dim, maxFill, minFill, nodeCount int) (*Assembler, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("rtree: assemble: dimension %d", dim)
	}
	if maxFill < 4 || minFill < 2 || minFill > maxFill/2 {
		return nil, fmt.Errorf("rtree: assemble: fill bounds %d/%d", minFill, maxFill)
	}
	if nodeCount <= 0 {
		return nil, fmt.Errorf("rtree: assemble: node count %d", nodeCount)
	}
	return &Assembler{
		dim:      dim,
		maxFill:  maxFill,
		minFill:  minFill,
		nodes:    make([]*Node, nodeCount),
		children: make([][]int, nodeCount),
		filled:   make([]bool, nodeCount),
	}, nil
}

func (a *Assembler) claim(idx, entries int) error {
	if idx < 0 || idx >= len(a.nodes) {
		return fmt.Errorf("rtree: assemble: node index %d out of range [0,%d)", idx, len(a.nodes))
	}
	if a.filled[idx] {
		return fmt.Errorf("rtree: assemble: node %d added twice", idx)
	}
	if entries > a.maxFill {
		return fmt.Errorf("rtree: assemble: node %d has %d entries, fanout %d", idx, entries, a.maxFill)
	}
	a.filled[idx] = true
	return nil
}

// AddLeaf installs leaf node idx holding the given record ids and their
// points. The point slices are retained, not copied: each leaf entry's
// degenerate rectangle aliases the caller's point exactly as Insert and
// Bulk alias the indexed dataset.
func (a *Assembler) AddLeaf(idx int, ids []int32, pts []vec.Point) error {
	if len(ids) != len(pts) {
		return fmt.Errorf("rtree: assemble: leaf %d: %d ids, %d points", idx, len(ids), len(pts))
	}
	if err := a.claim(idx, len(ids)); err != nil {
		return err
	}
	n := &Node{leaf: true, count: len(ids)}
	n.entries = make([]entry, len(ids))
	for i := range ids {
		if len(pts[i]) != a.dim {
			return fmt.Errorf("rtree: assemble: leaf %d entry %d: dimension %d, want %d", idx, i, len(pts[i]), a.dim)
		}
		n.entries[i] = entry{rect: PointRect(pts[i]), id: ids[i]}
	}
	a.nodes[idx] = n
	return nil
}

// AddInternal installs internal node idx whose i-th entry has bounding
// rectangle rects[i] and child node index children[i]. The rectangles'
// slices are retained and must be freshly allocated by the caller.
func (a *Assembler) AddInternal(idx int, rects []Rect, children []int) error {
	if len(rects) != len(children) {
		return fmt.Errorf("rtree: assemble: internal %d: %d rects, %d children", idx, len(rects), len(children))
	}
	if len(rects) == 0 {
		return fmt.Errorf("rtree: assemble: internal %d has no entries", idx)
	}
	if err := a.claim(idx, len(rects)); err != nil {
		return err
	}
	n := &Node{leaf: false}
	n.entries = make([]entry, len(rects))
	for i, r := range rects {
		if len(r.Min) != a.dim || len(r.Max) != a.dim {
			return fmt.Errorf("rtree: assemble: internal %d entry %d: rect dimension %d/%d, want %d",
				idx, i, len(r.Min), len(r.Max), a.dim)
		}
		n.entries[i] = entry{rect: r}
	}
	a.nodes[idx] = n
	a.children[idx] = children
	return nil
}

// Finish links children, verifies the node graph is a single rooted tree,
// recomputes subtree counts, and returns the assembled Tree at epoch zero.
// size is the expected number of live data points.
func (a *Assembler) Finish(root, size int) (*Tree, error) {
	for i, ok := range a.filled {
		if !ok {
			return nil, fmt.Errorf("rtree: assemble: node %d missing", i)
		}
	}
	if root < 0 || root >= len(a.nodes) {
		return nil, fmt.Errorf("rtree: assemble: root index %d out of range", root)
	}
	refs := make([]int, len(a.nodes))
	for idx, kids := range a.children {
		for i, c := range kids {
			if c < 0 || c >= len(a.nodes) {
				return nil, fmt.Errorf("rtree: assemble: node %d child %d out of range", idx, c)
			}
			refs[c]++
			a.nodes[idx].entries[i].child = a.nodes[c]
		}
	}
	if refs[root] != 0 {
		return nil, fmt.Errorf("rtree: assemble: root %d is referenced as a child", root)
	}
	for i, r := range refs {
		if i != root && r != 1 {
			return nil, fmt.Errorf("rtree: assemble: node %d referenced %d times", i, r)
		}
	}
	// Each non-root node has exactly one parent and the root has none, so
	// reaching every node from the root proves the graph is one acyclic
	// tree. The iterative walk doubles as the bottom-up count pass.
	if got := a.link(root); got != len(a.nodes) {
		return nil, fmt.Errorf("rtree: assemble: %d of %d nodes reachable from root", got, len(a.nodes))
	}
	if a.nodes[root].count != size {
		return nil, fmt.Errorf("rtree: assemble: tree holds %d points, header declares %d", a.nodes[root].count, size)
	}
	return &Tree{
		dim:       a.dim,
		maxFill:   a.maxFill,
		minFill:   a.minFill,
		root:      a.nodes[root],
		size:      size,
		nodeCount: len(a.nodes),
	}, nil
}

// link walks the subtree at idx, filling internal counts bottom-up, and
// returns the number of nodes visited.
func (a *Assembler) link(idx int) int {
	n := a.nodes[idx]
	if n.leaf {
		return 1
	}
	visited := 1
	n.count = 0
	for _, c := range a.children[idx] {
		visited += a.link(c)
		n.count += a.nodes[c].count
	}
	return visited
}
