package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"wqrtq/internal/vec"
)

func randPoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

func TestFanoutFromPageSize(t *testing.T) {
	// d=3: entry = 16*3+8 = 56 bytes; (4096-16)/56 = 72.
	tr := New(3)
	if got := tr.MaxEntries(); got != 72 {
		t.Errorf("MaxEntries = %d, want 72", got)
	}
	if got := tr.MinEntries(); got != 28 {
		t.Errorf("MinEntries = %d, want 28 (40%% of 72)", got)
	}
	// Tiny page still yields a workable fanout.
	tiny := New(10, Options{PageSize: 64})
	if tiny.MaxEntries() < 4 {
		t.Errorf("MaxEntries = %d, want >= 4", tiny.MaxEntries())
	}
}

func TestInsertSearchExactness(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 10, 200, 3000} {
		pts := randPoints(r, n, 2)
		tr := New(2, Options{PageSize: 256})
		for i, p := range pts {
			tr.Insert(p, int32(i))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		// Compare range query against linear scan.
		for trial := 0; trial < 20; trial++ {
			lo := vec.Point{r.Float64() * 80, r.Float64() * 80}
			hi := vec.Point{lo[0] + r.Float64()*30, lo[1] + r.Float64()*30}
			q := Rect{Min: lo, Max: hi}
			got := tr.Search(q, nil)
			var want []int32
			for i, p := range pts {
				if q.ContainsPoint(p) {
					want = append(want, int32(i))
				}
			}
			sortInt32(got)
			sortInt32(want)
			if !equalInt32(got, want) {
				t.Fatalf("n=%d: search mismatch: got %d ids, want %d", n, len(got), len(want))
			}
		}
	}
}

func TestBulkMatchesInsertResults(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 72, 73, 500, 5000} {
		for _, d := range []int{2, 3, 5} {
			pts := randPoints(r, n, d)
			bt := Bulk(pts, nil)
			if err := bt.CheckInvariants(); err != nil {
				t.Fatalf("bulk n=%d d=%d: %v", n, d, err)
			}
			if bt.Len() != n {
				t.Fatalf("bulk Len = %d, want %d", bt.Len(), n)
			}
			// Every point must be findable.
			for i, p := range pts {
				got := bt.Search(PointRect(p), nil)
				found := false
				for _, id := range got {
					if id == int32(i) {
						found = true
					}
				}
				if !found {
					t.Fatalf("bulk n=%d d=%d: point %d not found", n, d, i)
				}
			}
		}
	}
}

func TestBulkNodeCountMatchesStructure(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := randPoints(r, 4000, 3)
	tr := Bulk(pts, nil)
	if got, want := tr.NodeCount(), countNodes(tr.Root()); got != want {
		t.Errorf("NodeCount = %d, structural count = %d", got, want)
	}
	if tr.Height() < 2 {
		t.Errorf("Height = %d, want >= 2 for 4000 points", tr.Height())
	}
}

func TestDeleteMaintainsInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	pts := randPoints(r, 800, 3)
	tr := New(3, Options{PageSize: 512})
	for i, p := range pts {
		tr.Insert(p, int32(i))
	}
	perm := r.Perm(len(pts))
	for step, idx := range perm {
		if !tr.Delete(pts[idx], int32(idx)) {
			t.Fatalf("step %d: Delete(%d) returned false", step, idx)
		}
		if step%97 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleting from an empty tree fails gracefully.
	if tr.Delete(pts[0], 0) {
		t.Error("Delete on empty tree returned true")
	}
}

func TestDeleteNonexistent(t *testing.T) {
	tr := New(2)
	tr.Insert(vec.Point{1, 2}, 7)
	if tr.Delete(vec.Point{1, 2}, 8) {
		t.Error("deleted entry with wrong id")
	}
	if tr.Delete(vec.Point{3, 4}, 7) {
		t.Error("deleted entry with wrong point")
	}
	if !tr.Delete(vec.Point{1, 2}, 7) {
		t.Error("failed to delete existing entry")
	}
}

func TestMixedInsertDeleteQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 2 + r.Intn(3)
		tr := New(d, Options{PageSize: 256})
		live := map[int32]vec.Point{}
		next := int32(0)
		for op := 0; op < 300; op++ {
			if len(live) == 0 || r.Float64() < 0.6 {
				p := make(vec.Point, d)
				for j := range p {
					p[j] = float64(r.Intn(50)) // duplicates likely
				}
				tr.Insert(p, next)
				live[next] = p
				next++
			} else {
				// Delete a random live id.
				var id int32
				for k := range live {
					id = k
					break
				}
				if !tr.Delete(live[id], id) {
					return false
				}
				delete(live, id)
			}
		}
		if tr.Len() != len(live) {
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		ids, _ := tr.AllPoints()
		if len(ids) != len(live) {
			return false
		}
		for _, id := range ids {
			if _, ok := live[id]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestVisitPruning(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 2000, 2)
	tr := Bulk(pts, nil)
	// Prune everything: no points visited.
	visited := 0
	tr.Visit(func(Rect, *Node) bool { return false }, func(int32, vec.Point) { visited++ })
	if visited != 0 {
		t.Errorf("visited %d points with full pruning", visited)
	}
	// No pruning: all points visited.
	tr.Visit(nil, func(int32, vec.Point) { visited++ })
	if visited != 2000 {
		t.Errorf("visited %d points, want 2000", visited)
	}
}

func TestRectOperations(t *testing.T) {
	a := Rect{Min: []float64{0, 0}, Max: []float64{2, 2}}
	b := Rect{Min: []float64{1, 1}, Max: []float64{3, 3}}
	if got := a.Area(); got != 4 {
		t.Errorf("Area = %v", got)
	}
	if got := a.Margin(); got != 4 {
		t.Errorf("Margin = %v", got)
	}
	if got := a.OverlapArea(b); got != 1 {
		t.Errorf("OverlapArea = %v", got)
	}
	if got := a.EnlargedArea(b); got != 9 {
		t.Errorf("EnlargedArea = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false")
	}
	c := Rect{Min: []float64{5, 5}, Max: []float64{6, 6}}
	if a.Intersects(c) {
		t.Error("disjoint rects intersect")
	}
	if a.OverlapArea(c) != 0 {
		t.Error("disjoint overlap != 0")
	}
	if !a.Contains(Rect{Min: []float64{0.5, 0.5}, Max: []float64{1, 1}}) {
		t.Error("Contains = false")
	}
	if a.Contains(b) {
		t.Error("partial containment accepted")
	}
}

func TestRectScoreBounds(t *testing.T) {
	r := Rect{Min: []float64{1, 2}, Max: []float64{3, 5}}
	w := vec.Weight{0.5, 0.5}
	if got := r.MinScore(w); got != 1.5 {
		t.Errorf("MinScore = %v, want 1.5", got)
	}
	if got := r.MaxScore(w); got != 4 {
		t.Errorf("MaxScore = %v, want 4", got)
	}
	// Every point inside must score within the bounds.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := vec.Point{1 + 2*rng.Float64(), 2 + 3*rng.Float64()}
		s := vec.Score(w, p)
		if s < r.MinScore(w)-1e-12 || s > r.MaxScore(w)+1e-12 {
			t.Fatalf("score %v outside [%v, %v]", s, r.MinScore(w), r.MaxScore(w))
		}
	}
}

func TestRectDominatedBy(t *testing.T) {
	q := vec.Point{2, 2}
	if !(Rect{Min: []float64{2, 2}, Max: []float64{5, 5}}).DominatedBy(q) {
		t.Error("rect at q not treated as dominated")
	}
	if (Rect{Min: []float64{1, 3}, Max: []float64{5, 5}}).DominatedBy(q) {
		t.Error("rect extending below q treated as dominated")
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := New(2, Options{PageSize: 128})
	p := vec.Point{1, 1}
	for i := 0; i < 100; i++ {
		tr.Insert(p, int32(i))
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.Search(PointRect(p), nil)
	if len(got) != 100 {
		t.Fatalf("found %d duplicates, want 100", len(got))
	}
	for i := 0; i < 100; i++ {
		if !tr.Delete(p, int32(i)) {
			t.Fatalf("failed to delete duplicate %d", i)
		}
	}
}

func TestBulkLargeBalanced(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := rand.New(rand.NewSource(100))
	pts := randPoints(r, 100000, 3)
	tr := Bulk(pts, nil)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// STR over 100K points with fanout 72 should give height 3.
	if h := tr.Height(); h != 3 {
		t.Errorf("Height = %d, want 3", h)
	}
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
