package rtree

import (
	"fmt"
	"math/rand"
	"testing"

	"wqrtq/internal/vec"
)

// disassemble walks t depth-first exactly like the page serializer does and
// feeds the pieces back through an Assembler.
func disassemble(t *Tree) (*Assembler, int, error) {
	a, err := NewAssembler(t.Dim(), t.MaxEntries(), t.MinEntries(), t.NodeCount())
	if err != nil {
		return nil, 0, err
	}
	idx := map[*Node]int{}
	var order []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		idx[n] = len(order)
		order = append(order, n)
		if !n.IsLeaf() {
			for i := 0; i < n.NumEntries(); i++ {
				walk(n.Child(i))
			}
		}
	}
	walk(t.Root())
	for _, n := range order {
		if n.IsLeaf() {
			ids := make([]int32, n.NumEntries())
			pts := make([]vec.Point, n.NumEntries())
			for i := range ids {
				ids[i] = n.PointID(i)
				pts[i] = n.Point(i)
			}
			if err := a.AddLeaf(idx[n], ids, pts); err != nil {
				return nil, 0, err
			}
		} else {
			rects := make([]Rect, n.NumEntries())
			kids := make([]int, n.NumEntries())
			for i := range rects {
				rects[i] = CloneRect(n.EntryRect(i))
				kids[i] = idx[n.Child(i)]
			}
			if err := a.AddInternal(idx[n], rects, kids); err != nil {
				return nil, 0, err
			}
		}
	}
	return a, idx[t.Root()], nil
}

// dump renders the structure (shape, entry order, rects, ids, counts) in a
// form independent of node identity and epochs.
func dump(n *Node) string {
	s := fmt.Sprintf("[leaf=%v count=%d", n.IsLeaf(), n.Count())
	for i := 0; i < n.NumEntries(); i++ {
		r := n.EntryRect(i)
		s += fmt.Sprintf(" {%v %v", r.Min, r.Max)
		if n.IsLeaf() {
			s += fmt.Sprintf(" id=%d}", n.PointID(i))
		} else {
			s += " " + dump(n.Child(i)) + "}"
		}
	}
	return s + "]"
}

func TestAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 5, 40, 300} {
		pts := make([]vec.Point, n)
		ids := make([]int32, n)
		for i := range pts {
			pts[i] = vec.Point{rng.Float64(), rng.Float64(), rng.Float64()}
			ids[i] = int32(i)
		}
		tr := Bulk(pts, ids)
		// Mix in dynamic mutations so assembled trees are not bulk-only.
		for i := 0; i < n/4; i++ {
			tr.Delete(pts[i], ids[i])
		}
		for i := 0; i < n/4; i++ {
			p := vec.Point{rng.Float64(), rng.Float64(), rng.Float64()}
			pts = append(pts, p)
			tr.Insert(p, int32(len(pts)-1))
		}

		a, root, err := disassemble(tr)
		if err != nil {
			t.Fatalf("n=%d: disassemble: %v", n, err)
		}
		got, err := a.Finish(root, tr.Len())
		if err != nil {
			t.Fatalf("n=%d: Finish: %v", n, err)
		}
		if err := got.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: invariants: %v", n, err)
		}
		if got.Len() != tr.Len() || got.NodeCount() != tr.NodeCount() ||
			got.Dim() != tr.Dim() || got.MaxEntries() != tr.MaxEntries() || got.MinEntries() != tr.MinEntries() {
			t.Fatalf("n=%d: geometry mismatch", n)
		}
		if d1, d2 := dump(tr.Root()), dump(got.Root()); d1 != d2 {
			t.Fatalf("n=%d: structure differs\n orig: %s\n rebuilt: %s", n, d1, d2)
		}
		// Leaf rects must alias the caller's point slices, exactly like a
		// bulk-loaded tree aliases the dataset.
		var checkAlias func(n *Node)
		checkAlias = func(nd *Node) {
			if nd.IsLeaf() {
				for i := 0; i < nd.NumEntries(); i++ {
					p := nd.Point(i)
					q := pts[nd.PointID(i)]
					if len(p) > 0 && len(q) > 0 && &p[0] != &q[0] {
						t.Fatalf("n=%d: leaf point id %d does not alias source slice", n, nd.PointID(i))
					}
				}
				return
			}
			for i := 0; i < nd.NumEntries(); i++ {
				checkAlias(nd.Child(i))
			}
		}
		checkAlias(got.Root())
	}
}

func TestAssembleEmptyTree(t *testing.T) {
	tr := New(2)
	a, root, err := disassemble(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Finish(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.NodeCount() != 1 || !got.Root().IsLeaf() {
		t.Fatalf("empty tree rebuilt wrong: len=%d nodes=%d", got.Len(), got.NodeCount())
	}
}

func TestAssembleRejectsMalformed(t *testing.T) {
	p := vec.Point{1, 2}
	mk := func() *Assembler {
		a, err := NewAssembler(2, 8, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	leafArgs := func(a *Assembler, idx int) error {
		return a.AddLeaf(idx, []int32{0}, []vec.Point{p})
	}

	t.Run("missing node", func(t *testing.T) {
		a := mk()
		if err := leafArgs(a, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Finish(0, 1); err == nil {
			t.Fatal("want error for missing node")
		}
	})
	t.Run("duplicate node", func(t *testing.T) {
		a := mk()
		if err := leafArgs(a, 0); err != nil {
			t.Fatal(err)
		}
		if err := leafArgs(a, 0); err == nil {
			t.Fatal("want error for duplicate index")
		}
	})
	t.Run("doubly referenced child", func(t *testing.T) {
		a, _ := NewAssembler(2, 8, 3, 2)
		if err := a.AddInternal(0, []Rect{PointRect(p), PointRect(p)}, []int{1, 1}); err != nil {
			t.Fatal(err)
		}
		if err := leafArgs(a, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Finish(0, 2); err == nil {
			t.Fatal("want error for doubly referenced child")
		}
	})
	t.Run("cycle off the root", func(t *testing.T) {
		a, _ := NewAssembler(2, 8, 3, 3)
		if err := leafArgs(a, 0); err != nil {
			t.Fatal(err)
		}
		if err := a.AddInternal(1, []Rect{PointRect(p)}, []int{2}); err != nil {
			t.Fatal(err)
		}
		if err := a.AddInternal(2, []Rect{PointRect(p)}, []int{1}); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Finish(0, 1); err == nil {
			t.Fatal("want error for unreachable cycle")
		}
	})
	t.Run("count mismatch", func(t *testing.T) {
		a := mk()
		if err := leafArgs(a, 0); err != nil {
			t.Fatal(err)
		}
		if err := leafArgs(a, 1); err != nil {
			t.Fatal(err)
		}
		// Node 1 unreferenced and not root -> also malformed, but use a
		// well-linked single-node assembly with a wrong size instead.
		a2, _ := NewAssembler(2, 8, 3, 1)
		if err := leafArgs(a2, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := a2.Finish(0, 5); err == nil {
			t.Fatal("want error for size mismatch")
		}
	})
}
