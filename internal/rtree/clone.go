package rtree

import "sync/atomic"

// Copy-on-write snapshot support.
//
// A tree can be cloned in O(1): the clone shares every node with its source.
// Each node carries the epoch of the tree that created (and may mutate) it;
// Clone moves both trees to fresh epochs drawn from a counter shared by the
// whole clone family, so every shared node becomes foreign to both. A
// mutation then copies any foreign node along its path before touching it
// (path copying), leaving all other trees of the family intact. This makes
// the structure persistent: after a clone, either side may keep mutating
// without affecting the other.
//
// Synchronization contract: Clone and mutations (Insert, Delete) of trees in
// the same family must be externally serialized with each other; read-only
// traversals of a tree are safe concurrently with Clone of that tree and
// with mutations of *other* trees in the family, which is exactly the
// publish-a-snapshot pattern the serving engine uses.

// Epoch returns the tree's mutation epoch. It is bumped by Clone (on both
// the receiver and the clone) and is safe to read concurrently.
func (t *Tree) Epoch() uint64 { return atomic.LoadUint64(&t.epoch) }

// Clone returns a copy-on-write snapshot sharing all nodes with t. The cost
// is O(1); the first mutation of either tree pays for copying the nodes on
// its mutation path. See the synchronization contract above.
func (t *Tree) Clone() *Tree {
	if t.family == nil {
		f := t.epoch
		t.family = &f
	}
	c := &Tree{
		dim:       t.dim,
		maxFill:   t.maxFill,
		minFill:   t.minFill,
		root:      t.root,
		size:      t.size,
		nodeCount: t.nodeCount,
		family:    t.family,
	}
	// The receiver takes the lower fresh epoch and the clone the higher
	// one, so when a serving engine publishes the clone as its next
	// snapshot, observable epochs are monotonic: the new snapshot's epoch
	// exceeds every epoch the superseded snapshot ever exposed.
	*t.family++
	atomic.StoreUint64(&t.epoch, *t.family)
	*t.family++
	c.epoch = *t.family
	return c
}

// own returns a node the current epoch may mutate, copying it when it is
// shared with another tree of the clone family. Internal entry rectangles
// are deep-copied because chooseLeaf extends them in place; leaf entry
// rectangles are degenerate point rects that are never mutated in place, so
// they stay shared with the data points.
func (t *Tree) own(n *Node) *Node {
	if n.epoch == t.epoch {
		return n
	}
	cp := &Node{leaf: n.leaf, count: n.count, epoch: t.epoch}
	cp.entries = make([]entry, len(n.entries))
	copy(cp.entries, n.entries)
	if !n.leaf {
		for i := range cp.entries {
			cp.entries[i].rect = CloneRect(cp.entries[i].rect)
		}
	}
	return cp
}
