package rtree

import (
	"math"
	"sort"

	"wqrtq/internal/vec"
)

// Bulk builds a tree over the given points with Sort-Tile-Recursive (STR)
// packing, producing near-full nodes and a balanced structure in O(n log n).
// ids[i] is the record id of points[i]; if ids is nil the point index is
// used. Point slices are retained, not copied.
func Bulk(points []vec.Point, ids []int32, opts ...Options) *Tree {
	if len(points) == 0 {
		panic("rtree: Bulk requires at least one point")
	}
	t := New(len(points[0]), opts...)
	t.nodeCount = 0 // discard the initial empty leaf
	entries := make([]entry, len(points))
	for i, p := range points {
		id := int32(i)
		if ids != nil {
			id = ids[i]
		}
		entries[i] = entry{rect: PointRect(p), id: id}
	}
	leaves := t.strPack(entries, 0, true)
	level := leaves
	for len(level) > 1 {
		up := make([]entry, len(level))
		for i, n := range level {
			up[i] = entry{rect: nodeRect(n), child: n}
		}
		level = t.strPack(up, 0, false)
	}
	t.root = level[0]
	t.size = len(points)
	return t
}

// strPack tiles entries into nodes of up to maxFill entries by recursively
// sorting on successive dimensions and slicing into vertical "slabs".
func (t *Tree) strPack(entries []entry, axis int, leaf bool) []*Node {
	if len(entries) <= t.maxFill {
		n := t.newNode(leaf)
		n.entries = append(n.entries, entries...)
		for _, e := range n.entries {
			n.count += entryCount(e)
		}
		return []*Node{n}
	}
	nodesNeeded := int(math.Ceil(float64(len(entries)) / float64(t.maxFill)))
	if axis >= t.dim-1 {
		// Final axis: sort and chop into consecutive runs.
		sortEntriesByCenter(entries, axis)
		out := make([]*Node, 0, nodesNeeded)
		for start := 0; start < len(entries); start += t.maxFill {
			end := start + t.maxFill
			if end > len(entries) {
				end = len(entries)
			}
			n := t.newNode(leaf)
			n.entries = append(n.entries, entries[start:end]...)
			for _, e := range n.entries {
				n.count += entryCount(e)
			}
			out = append(out, n)
		}
		return out
	}
	// Slab count: ceil(nodesNeeded^(1/(remaining dims))).
	remaining := t.dim - axis
	slabs := int(math.Ceil(math.Pow(float64(nodesNeeded), 1/float64(remaining))))
	if slabs < 1 {
		slabs = 1
	}
	sortEntriesByCenter(entries, axis)
	per := int(math.Ceil(float64(len(entries)) / float64(slabs)))
	var out []*Node
	for start := 0; start < len(entries); start += per {
		end := start + per
		if end > len(entries) {
			end = len(entries)
		}
		out = append(out, t.strPack(entries[start:end], axis+1, leaf)...)
	}
	return out
}

// STRRuns packs the points into leaf-sized runs in Sort-Tile-Recursive
// order, without building a tree: run j holds the record ids of the points
// that STR packing would place in the j-th leaf. ids[i] is the record id of
// points[i]; nil ids uses the point index. The runs are the unit of spatial
// partitioning used by internal/shard — consecutive runs are spatially
// adjacent tiles, so dealing them round-robin across shards gives every
// shard a thin slice of each region of the data space.
func STRRuns(points []vec.Point, ids []int32, opts ...Options) [][]int32 {
	if len(points) == 0 {
		return nil
	}
	t := New(len(points[0]), opts...)
	entries := make([]entry, len(points))
	for i, p := range points {
		id := int32(i)
		if ids != nil {
			id = ids[i]
		}
		entries[i] = entry{rect: PointRect(p), id: id}
	}
	leaves := t.strPack(entries, 0, true)
	runs := make([][]int32, len(leaves))
	for j, n := range leaves {
		run := make([]int32, len(n.entries))
		for i := range n.entries {
			run[i] = n.entries[i].id
		}
		runs[j] = run
	}
	return runs
}

func sortEntriesByCenter(es []entry, axis int) {
	sort.Slice(es, func(i, j int) bool {
		ci := es[i].rect.Min[axis] + es[i].rect.Max[axis]
		cj := es[j].rect.Min[axis] + es[j].rect.Max[axis]
		return ci < cj
	})
}
