// Package rtree implements the disk-page-style R-tree used as the index
// substrate by every WQRTQ algorithm (the paper indexes every dataset with
// an R-tree whose page size is 4096 bytes, §5.1).
//
// The tree supports one-by-one insertion with the R*-tree heuristics
// (least-overlap choose-subtree and the margin-driven topological split),
// deletion with subtree reinsertion, and Sort-Tile-Recursive (STR) bulk
// loading. Node fanout is derived from the configured page size exactly as
// a disk-resident implementation would: each entry occupies 2·d·8 bytes of
// MBR plus an 8-byte child pointer / record id.
//
// Every node carries the number of data points beneath it, which the top-k
// rank-counting search (internal/topk) uses to count dominated subtrees
// without descending into them.
package rtree

import (
	"fmt"
	"math"
	"sort"
	"wqrtq/internal/feq"

	"wqrtq/internal/vec"
)

// DefaultPageSize mirrors the paper's experimental setting (§5.1).
const DefaultPageSize = 4096

// Options configures tree geometry.
type Options struct {
	// PageSize is the simulated disk page in bytes; fanout is derived from
	// it. Defaults to DefaultPageSize.
	PageSize int
	// MinFill is the minimum node utilization as a fraction of the fanout
	// (classic R*-tree value 0.4). Defaults to 0.4.
	MinFill float64
}

func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = DefaultPageSize
	}
	if o.MinFill <= 0 || o.MinFill > 0.5 {
		o.MinFill = 0.4
	}
	return o
}

// Tree is an in-memory R-tree over d-dimensional points.
type Tree struct {
	dim       int
	maxFill   int
	minFill   int
	root      *Node
	size      int
	nodeCount int

	// Copy-on-write state (clone.go): epoch is read atomically by Epoch,
	// family is the counter shared across the clone family.
	epoch  uint64
	family *uint64
}

// Node is a tree node. Exported read-only accessors let the search
// algorithms in other packages traverse the structure without exposing
// mutation.
type Node struct {
	leaf    bool
	entries []entry
	count   int    // data points in this subtree
	epoch   uint64 // epoch of the tree that owns (may mutate) this node
}

type entry struct {
	rect  Rect
	child *Node // nil for leaf entries
	id    int32 // valid for leaf entries
}

// New creates an empty tree for dim-dimensional points.
func New(dim int, opts ...Options) *Tree {
	if dim <= 0 {
		panic("rtree: dimension must be positive")
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	o = o.withDefaults()
	// Entry layout: 2*d float64 for the MBR plus an 8-byte pointer/id,
	// 16 bytes of node header.
	entryBytes := 16*dim + 8
	maxFill := (o.PageSize - 16) / entryBytes
	if maxFill < 4 {
		maxFill = 4
	}
	minFill := int(float64(maxFill) * o.MinFill)
	if minFill < 2 {
		minFill = 2
	}
	t := &Tree{dim: dim, maxFill: maxFill, minFill: minFill}
	t.root = t.newNode(true)
	return t
}

func (t *Tree) newNode(leaf bool) *Node {
	t.nodeCount++
	return &Node{leaf: leaf, epoch: t.epoch}
}

// Dim returns the dimensionality of indexed points.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// NodeCount returns |RT|, the number of nodes, used in the paper's
// complexity statements (Theorems 1–3).
func (t *Tree) NodeCount() int { return t.nodeCount }

// MaxEntries returns the node fanout derived from the page size.
func (t *Tree) MaxEntries() int { return t.maxFill }

// MinEntries returns the minimum entries per non-root node.
func (t *Tree) MinEntries() int { return t.minFill }

// Root returns the root node for read-only traversal.
func (t *Tree) Root() *Node { return t.root }

// Height returns the number of levels (1 for a tree that is a single leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.entries[0].child {
		h++
	}
	return h
}

// IsLeaf reports whether the node stores data points.
func (n *Node) IsLeaf() bool { return n.leaf }

// NumEntries returns the number of entries in the node.
func (n *Node) NumEntries() int { return len(n.entries) }

// EntryRect returns the bounding rectangle of entry i. The returned slices
// must not be modified.
func (n *Node) EntryRect(i int) Rect { return n.entries[i].rect }

// Child returns the i-th child of an internal node.
func (n *Node) Child(i int) *Node { return n.entries[i].child }

// PointID returns the record id of leaf entry i.
func (n *Node) PointID(i int) int32 { return n.entries[i].id }

// Point returns the point stored in leaf entry i (aliasing the indexed
// slice; callers must not modify it).
func (n *Node) Point(i int) vec.Point { return vec.Point(n.entries[i].rect.Min) }

// Count returns the number of data points in the node's subtree.
func (n *Node) Count() int { return n.count }

// Insert adds a point with the given record id. The point slice is retained
// (not copied); callers must not mutate it afterwards.
func (t *Tree) Insert(p vec.Point, id int32) {
	if len(p) != t.dim {
		panic(fmt.Sprintf("rtree: point dimension %d, want %d", len(p), t.dim))
	}
	t.insertEntry(entry{rect: PointRect(p), id: id}, true)
	t.size++
}

// insertEntry inserts a leaf entry (isPoint true) or a subtree entry.
func (t *Tree) insertEntry(e entry, isPoint bool) {
	leafLevelOnly := isPoint
	n, path := t.chooseLeaf(e.rect, leafLevelOnly)
	n.entries = append(n.entries, e)
	n.count += entryCount(e)
	for _, p := range path {
		p.count += entryCount(e)
	}
	if len(n.entries) > t.maxFill {
		t.splitUpward(n, path)
	}
}

func entryCount(e entry) int {
	if e.child == nil {
		return 1
	}
	return e.child.count
}

// chooseLeaf descends to the leaf best suited for the rectangle, returning
// the leaf and the path of ancestors (root first). Every node on the path is
// owned (copied on write if shared with a clone) before it is mutated.
func (t *Tree) chooseLeaf(r Rect, _ bool) (*Node, []*Node) {
	var path []*Node
	t.root = t.own(t.root)
	n := t.root
	for !n.leaf {
		path = append(path, n)
		best := t.chooseSubtree(n, r)
		child := t.own(n.entries[best].child)
		n.entries[best].child = child
		n.entries[best].rect.extend(r)
		n = child
	}
	return n, path
}

// chooseSubtree applies the R*-tree heuristic: for nodes pointing at leaves
// pick the entry with least overlap enlargement; otherwise least area
// enlargement. Ties break toward smaller area.
func (t *Tree) chooseSubtree(n *Node, r Rect) int {
	childrenAreLeaves := n.entries[0].child.leaf
	best := 0
	bestOverlap := math.Inf(1)
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i := range n.entries {
		er := n.entries[i].rect
		area := er.Area()
		enl := er.EnlargedArea(r) - area
		overlap := 0.0
		if childrenAreLeaves {
			grown := combine(er, r)
			for j := range n.entries {
				if j == i {
					continue
				}
				overlap += grown.OverlapArea(n.entries[j].rect) - er.OverlapArea(n.entries[j].rect)
			}
		}
		if overlap < bestOverlap ||
			(feq.Eq(overlap, bestOverlap) && enl < bestEnl) ||
			(feq.Eq(overlap, bestOverlap) && feq.Eq(enl, bestEnl) && area < bestArea) {
			best, bestOverlap, bestEnl, bestArea = i, overlap, enl, area
		}
	}
	return best
}

// splitUpward splits an overfull node and propagates along the stored path.
func (t *Tree) splitUpward(n *Node, path []*Node) {
	for {
		left, right := t.split(n)
		if len(path) == 0 {
			// Grow a new root.
			root := t.newNode(false)
			root.entries = append(root.entries,
				entry{rect: nodeRect(left), child: left},
				entry{rect: nodeRect(right), child: right},
			)
			root.count = left.count + right.count
			t.root = root
			return
		}
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		// Replace n's entry with the two halves.
		idx := -1
		for i := range parent.entries {
			if parent.entries[i].child == n {
				idx = i
				break
			}
		}
		parent.entries[idx] = entry{rect: nodeRect(left), child: left}
		parent.entries = append(parent.entries, entry{rect: nodeRect(right), child: right})
		if len(parent.entries) <= t.maxFill {
			return
		}
		n = parent
	}
}

// split performs the R*-tree topological split: choose the axis minimizing
// the margin sum over all valid distributions, then the distribution with
// least overlap (ties: least combined area). The receiver is reused as the
// left node; a fresh right node is returned.
func (t *Tree) split(n *Node) (*Node, *Node) {
	entries := n.entries
	m := t.minFill
	type dist struct {
		axis, k int
		byUpper bool
		overlap float64
		areaSum float64
	}
	bestAxis, bestAxisMargin := -1, math.Inf(1)
	// Pass 1: choose split axis by minimum total margin.
	for axis := 0; axis < t.dim; axis++ {
		for _, byUpper := range []bool{false, true} {
			sortEntries(entries, axis, byUpper)
			margin := 0.0
			for k := m; k <= len(entries)-m; k++ {
				lr := coverRect(entries[:k])
				rr := coverRect(entries[k:])
				margin += lr.Margin() + rr.Margin()
			}
			if margin < bestAxisMargin {
				bestAxisMargin = margin
				bestAxis = axis
			}
		}
	}
	// Pass 2: on the chosen axis pick the best distribution.
	best := dist{overlap: math.Inf(1), areaSum: math.Inf(1)}
	for _, byUpper := range []bool{false, true} {
		sortEntries(entries, bestAxis, byUpper)
		for k := m; k <= len(entries)-m; k++ {
			lr := coverRect(entries[:k])
			rr := coverRect(entries[k:])
			ov := lr.OverlapArea(rr)
			as := lr.Area() + rr.Area()
			if ov < best.overlap || (feq.Eq(ov, best.overlap) && as < best.areaSum) {
				best = dist{axis: bestAxis, k: k, byUpper: byUpper, overlap: ov, areaSum: as}
			}
		}
	}
	sortEntries(entries, best.axis, best.byUpper)
	right := t.newNode(n.leaf)
	right.entries = append(right.entries, entries[best.k:]...)
	n.entries = entries[:best.k:best.k]
	n.count = 0
	for _, e := range n.entries {
		n.count += entryCount(e)
	}
	right.count = 0
	for _, e := range right.entries {
		right.count += entryCount(e)
	}
	return n, right
}

func sortEntries(es []entry, axis int, byUpper bool) {
	sort.Slice(es, func(i, j int) bool {
		if byUpper {
			return es[i].rect.Max[axis] < es[j].rect.Max[axis]
		}
		return es[i].rect.Min[axis] < es[j].rect.Min[axis]
	})
}

func coverRect(es []entry) Rect {
	r := CloneRect(es[0].rect)
	for _, e := range es[1:] {
		r.extend(e.rect)
	}
	return r
}

func nodeRect(n *Node) Rect {
	return coverRect(n.entries)
}

// Delete removes one entry matching (p, id). It reports whether an entry was
// found. Underfull nodes are dissolved and their points reinserted.
func (t *Tree) Delete(p vec.Point, id int32) bool {
	t.root = t.own(t.root)
	leaf, path := t.findLeaf(t.root, nil, p, id)
	if leaf == nil {
		return false
	}
	for i := range leaf.entries {
		if leaf.entries[i].id == id && vec.Equal(vec.Point(leaf.entries[i].rect.Min), p) {
			leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
			break
		}
	}
	leaf.count--
	for _, a := range path {
		a.count--
	}
	t.size--
	var orphans []entry
	t.condense(leaf, path, &orphans)
	// Root adjustments.
	if !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.nodeCount--
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = t.newNode(true)
		t.nodeCount--
	}
	for _, e := range orphans {
		t.insertEntry(e, true)
	}
	return true
}

// findLeaf locates the leaf containing (p, id) and the ancestor path. The
// caller must pass an owned node; every descended child is owned in turn so
// the subsequent removal and condensation only touch nodes of this epoch
// (dead-end branches may be copied needlessly, which is harmless).
func (t *Tree) findLeaf(n *Node, path []*Node, p vec.Point, id int32) (*Node, []*Node) {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].id == id && vec.Equal(vec.Point(n.entries[i].rect.Min), p) {
				return n, path
			}
		}
		return nil, nil
	}
	for i := range n.entries {
		if !n.entries[i].rect.ContainsPoint(p) {
			continue
		}
		child := t.own(n.entries[i].child)
		n.entries[i].child = child
		if leaf, lp := t.findLeaf(child, append(path, n), p, id); leaf != nil {
			return leaf, lp
		}
	}
	return nil, nil
}

// condense removes underfull nodes bottom-up, collecting their points for
// reinsertion, and tightens ancestor MBRs.
func (t *Tree) condense(n *Node, path []*Node, orphans *[]entry) {
	for level := len(path) - 1; level >= 0; level-- {
		parent := path[level]
		idx := -1
		for i := range parent.entries {
			if parent.entries[i].child == n {
				idx = i
				break
			}
		}
		if len(n.entries) < t.minFill {
			// Dissolve n: collect its points, remove from parent.
			collectPoints(n, orphans)
			removed := n.count
			parent.entries = append(parent.entries[:idx], parent.entries[idx+1:]...)
			parent.count -= removed
			for _, a := range path[:level] {
				a.count -= removed
			}
			t.nodeCount -= countNodes(n)
		} else {
			parent.entries[idx].rect = nodeRect(n)
		}
		n = parent
	}
}

func collectPoints(n *Node, out *[]entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for i := range n.entries {
		collectPoints(n.entries[i].child, out)
	}
}

func countNodes(n *Node) int {
	if n.leaf {
		return 1
	}
	c := 1
	for i := range n.entries {
		c += countNodes(n.entries[i].child)
	}
	return c
}

// Search appends the record ids of all points inside r to dst and returns it.
func (t *Tree) Search(r Rect, dst []int32) []int32 {
	return searchNode(t.root, r, dst)
}

func searchNode(n *Node, r Rect, dst []int32) []int32 {
	for i := range n.entries {
		if !r.Intersects(n.entries[i].rect) {
			continue
		}
		if n.leaf {
			dst = append(dst, n.entries[i].id)
		} else {
			dst = searchNode(n.entries[i].child, r, dst)
		}
	}
	return dst
}

// Visit walks the tree depth-first. descend is called on every internal
// entry rectangle and controls whether the subtree is entered; visit is
// called for every data point reached.
func (t *Tree) Visit(descend func(Rect, *Node) bool, visit func(id int32, p vec.Point)) {
	visitNode(t.root, descend, visit)
}

func visitNode(n *Node, descend func(Rect, *Node) bool, visit func(int32, vec.Point)) {
	if n.leaf {
		for i := range n.entries {
			visit(n.entries[i].id, vec.Point(n.entries[i].rect.Min))
		}
		return
	}
	for i := range n.entries {
		child := n.entries[i].child
		if descend == nil || descend(n.entries[i].rect, child) {
			visitNode(child, descend, visit)
		}
	}
}
