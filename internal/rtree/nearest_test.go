package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"wqrtq/internal/vec"
)

func nearestNaive(pts []vec.Point, q vec.Point, n int) []Neighbor {
	out := make([]Neighbor, len(pts))
	for i, p := range pts {
		out[i] = Neighbor{ID: int32(i), Point: p, Distance: vec.Dist(p, q)}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func TestNearestAgainstNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(400)
		d := 2 + r.Intn(3)
		pts := randPoints(r, n, d)
		tr := Bulk(pts, nil, Options{PageSize: 256})
		q := randPoints(r, 1, d)[0]
		k := 1 + r.Intn(15)
		got := tr.Nearest(q, k)
		want := nearestNaive(pts, q, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			// Distances must agree exactly in order (ids may differ only on
			// exact ties).
			if got[i].Distance != want[i].Distance {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNearestEdgeCases(t *testing.T) {
	tr := New(2)
	if got := tr.Nearest(vec.Point{1, 1}, 3); got != nil {
		t.Errorf("empty tree returned %v", got)
	}
	tr.Insert(vec.Point{5, 5}, 0)
	if got := tr.Nearest(vec.Point{1, 1}, 0); got != nil {
		t.Errorf("n=0 returned %v", got)
	}
	got := tr.Nearest(vec.Point{1, 1}, 10)
	if len(got) != 1 || got[0].ID != 0 {
		t.Errorf("Nearest = %v", got)
	}
}

func TestRectMinDist(t *testing.T) {
	r := Rect{Min: []float64{2, 2}, Max: []float64{4, 4}}
	cases := []struct {
		p    vec.Point
		want float64
	}{
		{vec.Point{3, 3}, 0},                      // inside
		{vec.Point{2, 2}, 0},                      // corner
		{vec.Point{0, 3}, 2},                      // left face
		{vec.Point{5, 3}, 1},                      // right face
		{vec.Point{0, 0}, 2 * 1.4142135623730951}, // corner diagonal
	}
	for _, tc := range cases {
		if got := r.minDist(tc.p); got < tc.want-1e-12 || got > tc.want+1e-12 {
			t.Errorf("minDist(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}
