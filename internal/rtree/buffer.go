package rtree

import (
	"container/list"

	"wqrtq/internal/vec"
)

// BufferPool simulates a fixed-capacity LRU page cache over tree nodes, so
// that experiments can account for I/O the way a disk-resident R-tree
// would: every node visit is a logical page access; an access that misses
// the pool is a physical read. The paper's experimental setup (§5.1)
// defines the tree in terms of 4096-byte pages, making page-level cost the
// natural unit for comparing traversal strategies.
//
// The pool tracks identity only (no data movement happens — the tree is in
// memory); it is a cost model, not a cache.
type BufferPool struct {
	capacity int
	ll       *list.List
	pages    map[*Node]*list.Element

	accesses int
	misses   int
}

// NewBufferPool creates a pool holding up to capacity pages. Capacity <= 0
// means every access misses (cold reads only).
func NewBufferPool(capacity int) *BufferPool {
	return &BufferPool{
		capacity: capacity,
		ll:       list.New(),
		pages:    map[*Node]*list.Element{},
	}
}

// Access records a visit to a node, returning true on a buffer hit.
func (b *BufferPool) Access(n *Node) bool {
	b.accesses++
	if el, ok := b.pages[n]; ok {
		b.ll.MoveToFront(el)
		return true
	}
	b.misses++
	if b.capacity <= 0 {
		return false
	}
	if b.ll.Len() >= b.capacity {
		oldest := b.ll.Back()
		b.ll.Remove(oldest)
		delete(b.pages, oldest.Value.(*Node))
	}
	b.pages[n] = b.ll.PushFront(n)
	return false
}

// Reset clears the pool and its counters.
func (b *BufferPool) Reset() {
	b.ll.Init()
	b.pages = map[*Node]*list.Element{}
	b.accesses = 0
	b.misses = 0
}

// Accesses returns the number of logical page accesses recorded.
func (b *BufferPool) Accesses() int { return b.accesses }

// Misses returns the number of physical reads (buffer misses).
func (b *BufferPool) Misses() int { return b.misses }

// HitRate returns the fraction of accesses served from the buffer.
func (b *BufferPool) HitRate() float64 {
	if b.accesses == 0 {
		return 0
	}
	return float64(b.accesses-b.misses) / float64(b.accesses)
}

// Resident returns the number of pages currently buffered.
func (b *BufferPool) Resident() int { return b.ll.Len() }

// VisitCounted walks the tree like Visit but records every entered node
// (including the root) in the buffer pool.
func (t *Tree) VisitCounted(pool *BufferPool, descend func(Rect, *Node) bool, visit func(id int32, p vec.Point)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		pool.Access(n)
		if n.leaf {
			for i := range n.entries {
				visit(n.entries[i].id, n.entries[i].rect.Min)
			}
			return
		}
		for i := range n.entries {
			child := n.entries[i].child
			if descend == nil || descend(n.entries[i].rect, child) {
				rec(child)
			}
		}
	}
	rec(t.root)
}
