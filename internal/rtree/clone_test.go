package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"wqrtq/internal/vec"
)

// contents returns the tree's points as a sorted id list plus an id→point map.
func contents(t *Tree) ([]int, map[int32]vec.Point) {
	ids, pts := t.AllPoints()
	m := make(map[int32]vec.Point, len(ids))
	out := make([]int, len(ids))
	for i, id := range ids {
		m[id] = pts[i]
		out[i] = int(id)
	}
	sort.Ints(out)
	return out, m
}

func equalContents(t *testing.T, a, b *Tree) {
	t.Helper()
	idsA, mA := contents(a)
	idsB, mB := contents(b)
	if len(idsA) != len(idsB) {
		t.Fatalf("trees hold %d and %d points", len(idsA), len(idsB))
	}
	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatalf("id sets differ at position %d: %d vs %d", i, idsA[i], idsB[i])
		}
		id := int32(idsA[i])
		if !vec.Equal(mA[id], mB[id]) {
			t.Fatalf("point %d differs: %v vs %v", id, mA[id], mB[id])
		}
	}
}

func TestCloneIsolatesMutationsOfClone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPoints(rng, 500, 3)
	orig := New(3)
	for i, p := range pts {
		orig.Insert(p, int32(i))
	}
	frozen := orig.Clone() // capture a reference copy of the original content
	snap := orig.Clone()

	// Hammer the clone with inserts and deletes.
	extra := randPoints(rng, 200, 3)
	c := orig
	for i, p := range extra {
		c.Insert(p, int32(500+i))
	}
	for i := 0; i < 150; i++ {
		id := rng.Intn(700)
		var victim vec.Point
		c.Visit(nil, func(pid int32, p vec.Point) {
			if int(pid) == id {
				victim = p
			}
		})
		if victim != nil {
			c.Delete(victim, int32(id))
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("mutated tree: %v", err)
	}
	if err := snap.CheckInvariants(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	equalContents(t, snap, frozen)
	if snap.Len() != 500 {
		t.Fatalf("snapshot Len = %d, want 500", snap.Len())
	}
}

func TestCloneIsolatesMutationsOfOriginal(t *testing.T) {
	// The symmetric direction: after Clone, mutating the clone must not
	// disturb the original either (full persistence).
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 400, 2)
	orig := New(2)
	for i, p := range pts {
		orig.Insert(p, int32(i))
	}
	ref := orig.Clone()
	c := orig.Clone()
	for i, p := range randPoints(rng, 300, 2) {
		c.Insert(p, int32(400+i))
	}
	for i := 0; i < 200; i += 2 {
		c.Delete(pts[i], int32(i))
	}
	if err := orig.CheckInvariants(); err != nil {
		t.Fatalf("original: %v", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("clone: %v", err)
	}
	equalContents(t, orig, ref)
	if c.Len() != 400+300-100 {
		t.Fatalf("clone Len = %d, want %d", c.Len(), 600)
	}
}

func TestCloneChain(t *testing.T) {
	// A chain of clones, each mutated after cloning; every snapshot keeps
	// exactly the content it had at clone time.
	rng := rand.New(rand.NewSource(3))
	tr := New(3)
	next := 0
	insertSome := func(tr *Tree, n int) {
		for _, p := range randPoints(rng, n, 3) {
			tr.Insert(p, int32(next))
			next++
		}
	}
	insertSome(tr, 100)
	type snap struct {
		tr  *Tree
		len int
	}
	var snaps []snap
	for round := 0; round < 5; round++ {
		snaps = append(snaps, snap{tr.Clone(), tr.Len()})
		insertSome(tr, 80)
		// Delete a few live points from the working tree.
		ids, pts := tr.AllPoints()
		for i := 0; i < 20; i++ {
			j := rng.Intn(len(ids))
			tr.Delete(pts[j], ids[j])
			ids = append(ids[:j], ids[j+1:]...)
			pts = append(pts[:j], pts[j+1:]...)
		}
	}
	for i, s := range snaps {
		if err := s.tr.CheckInvariants(); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if s.tr.Len() != s.len {
			t.Fatalf("snapshot %d: Len = %d, want %d", i, s.tr.Len(), s.len)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("working tree: %v", err)
	}
	if got, want := tr.Len(), 100+5*80-5*20; got != want {
		t.Fatalf("working tree Len = %d, want %d", got, want)
	}
}

func TestCloneEpochsAdvance(t *testing.T) {
	tr := New(2)
	e0 := tr.Epoch()
	c1 := tr.Clone()
	if c1.Epoch() <= e0 || tr.Epoch() <= e0 || c1.Epoch() == tr.Epoch() {
		t.Fatalf("epochs not distinct and increasing: orig %d→%d clone %d",
			e0, tr.Epoch(), c1.Epoch())
	}
	c2 := c1.Clone()
	if c2.Epoch() <= c1.Epoch() && c2.Epoch() <= tr.Epoch() {
		t.Fatalf("chained clone epoch %d not fresh (orig %d, c1 %d)",
			c2.Epoch(), tr.Epoch(), c1.Epoch())
	}
}

func TestCloneOfBulkLoadedTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPoints(rng, 1000, 3)
	tr := Bulk(pts, nil)
	snap := tr.Clone()
	for i, p := range randPoints(rng, 200, 3) {
		tr.Insert(p, int32(1000+i))
	}
	for i := 0; i < 300; i++ {
		tr.Delete(pts[i], int32(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("mutated: %v", err)
	}
	if err := snap.CheckInvariants(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if snap.Len() != 1000 {
		t.Fatalf("snapshot Len = %d, want 1000", snap.Len())
	}
	ids, _ := snap.AllPoints()
	if len(ids) != 1000 {
		t.Fatalf("snapshot reachable points = %d, want 1000", len(ids))
	}
}
