package rtree

import (
	"math/rand"
	"testing"

	"wqrtq/internal/vec"
)

func TestBufferPoolLRUBehaviour(t *testing.T) {
	a, b, c, d := &Node{}, &Node{}, &Node{}, &Node{}
	p := NewBufferPool(2)
	if p.Access(a) {
		t.Error("first access to a should miss")
	}
	if p.Access(b) {
		t.Error("first access to b should miss")
	}
	if !p.Access(a) {
		t.Error("a should be buffered")
	}
	// Insert c: evicts b (least recently used), not a.
	if p.Access(c) {
		t.Error("first access to c should miss")
	}
	if !p.Access(a) {
		t.Error("a should survive the eviction")
	}
	if p.Access(b) {
		t.Error("b should have been evicted")
	}
	_ = d
	if p.Resident() != 2 {
		t.Errorf("resident = %d, want 2", p.Resident())
	}
	if p.Accesses() != 6 || p.Misses() != 4 {
		t.Errorf("accesses/misses = %d/%d, want 6/4", p.Accesses(), p.Misses())
	}
	if got := p.HitRate(); got != 2.0/6 {
		t.Errorf("hit rate = %v", got)
	}
	p.Reset()
	if p.Accesses() != 0 || p.Resident() != 0 {
		t.Error("Reset did not clear the pool")
	}
}

func TestBufferPoolZeroCapacity(t *testing.T) {
	p := NewBufferPool(0)
	n := &Node{}
	for i := 0; i < 3; i++ {
		if p.Access(n) {
			t.Fatal("zero-capacity pool produced a hit")
		}
	}
	if p.HitRate() != 0 {
		t.Errorf("hit rate = %v, want 0", p.HitRate())
	}
}

func TestVisitCountedMatchesVisit(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := randPoints(r, 3000, 2)
	tr := Bulk(pts, nil)
	pool := NewBufferPool(1 << 20)
	counted := 0
	tr.VisitCounted(pool, nil, func(int32, vec.Point) { counted++ })
	if counted != 3000 {
		t.Errorf("visited %d points, want 3000", counted)
	}
	// Every node accessed exactly once on a full cold walk.
	if pool.Accesses() != tr.NodeCount() {
		t.Errorf("accesses = %d, want node count %d", pool.Accesses(), tr.NodeCount())
	}
	if pool.Misses() != tr.NodeCount() {
		t.Errorf("cold misses = %d, want %d", pool.Misses(), tr.NodeCount())
	}
	// A second walk with a big-enough pool is all hits.
	tr.VisitCounted(pool, nil, func(int32, vec.Point) {})
	if pool.Misses() != tr.NodeCount() {
		t.Errorf("warm walk caused %d extra misses", pool.Misses()-tr.NodeCount())
	}
}

func TestVisitCountedRepeatedQueriesBenefitFromBuffer(t *testing.T) {
	// Repeated partial traversals over the same region should enjoy a high
	// hit rate with a warm pool — the rationale of the reuse technique.
	r := rand.New(rand.NewSource(9))
	pts := randPoints(r, 20000, 2)
	tr := Bulk(pts, nil)
	pool := NewBufferPool(4096)
	region := Rect{Min: []float64{10, 10}, Max: []float64{30, 30}}
	for i := 0; i < 10; i++ {
		tr.VisitCounted(pool, func(r Rect, _ *Node) bool { return r.Intersects(region) },
			func(int32, vec.Point) {})
	}
	if hr := pool.HitRate(); hr < 0.8 {
		t.Errorf("hit rate = %v, want >= 0.8 for repeated identical traversals", hr)
	}
}

func TestVisitCountedPruning(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	pts := randPoints(r, 2000, 2)
	tr := Bulk(pts, nil)
	pool := NewBufferPool(100)
	visited := 0
	tr.VisitCounted(pool, func(Rect, *Node) bool { return false }, func(int32, vec.Point) { visited++ })
	if visited != 0 {
		t.Errorf("visited %d points despite pruning", visited)
	}
	if pool.Accesses() != 1 {
		t.Errorf("accesses = %d, want 1 (root only)", pool.Accesses())
	}
}
