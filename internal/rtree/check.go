package rtree

import (
	"fmt"

	"wqrtq/internal/vec"
)

// CheckInvariants verifies the structural invariants of the tree and returns
// the first violation found. It is exported for use by tests (including
// property-based tests in dependent packages).
//
// Checked invariants:
//   - every internal entry rectangle contains all rectangles beneath it;
//   - all leaves are at the same depth;
//   - every non-root node holds between MinEntries and MaxEntries entries
//     (bulk-loaded trees may have one trailing underfull node per level, so
//     only the upper bound is enforced strictly);
//   - per-node point counts are consistent;
//   - Len() equals the number of stored points.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return fmt.Errorf("rtree: nil root")
	}
	leafDepth := -1
	total, err := t.checkNode(t.root, 0, &leafDepth, true)
	if err != nil {
		return err
	}
	if total != t.size {
		return fmt.Errorf("rtree: Len() = %d but %d points reachable", t.size, total)
	}
	return nil
}

func (t *Tree) checkNode(n *Node, depth int, leafDepth *int, isRoot bool) (int, error) {
	if len(n.entries) > t.maxFill {
		return 0, fmt.Errorf("rtree: node with %d entries exceeds fanout %d", len(n.entries), t.maxFill)
	}
	if !isRoot && len(n.entries) == 0 {
		return 0, fmt.Errorf("rtree: empty non-root node")
	}
	if n.leaf {
		if *leafDepth == -1 {
			*leafDepth = depth
		} else if *leafDepth != depth {
			return 0, fmt.Errorf("rtree: leaves at depths %d and %d", *leafDepth, depth)
		}
		if n.count != len(n.entries) {
			return 0, fmt.Errorf("rtree: leaf count %d != entries %d", n.count, len(n.entries))
		}
		return len(n.entries), nil
	}
	total := 0
	for i := range n.entries {
		e := n.entries[i]
		if e.child == nil {
			return 0, fmt.Errorf("rtree: internal entry without child")
		}
		childRect := nodeRect(e.child)
		if !e.rect.Contains(childRect) {
			return 0, fmt.Errorf("rtree: entry MBR %v does not contain child cover %v", e.rect, childRect)
		}
		sub, err := t.checkNode(e.child, depth+1, leafDepth, false)
		if err != nil {
			return 0, err
		}
		if sub != e.child.count {
			return 0, fmt.Errorf("rtree: child count %d != reachable %d", e.child.count, sub)
		}
		total += sub
	}
	if total != n.count {
		return 0, fmt.Errorf("rtree: node count %d != reachable %d", n.count, total)
	}
	return total, nil
}

// AllPoints returns every (id, point) pair in the tree, in traversal order.
// Intended for tests and debugging.
func (t *Tree) AllPoints() ([]int32, []vec.Point) {
	var ids []int32
	var pts []vec.Point
	t.Visit(nil, func(id int32, p vec.Point) {
		ids = append(ids, id)
		pts = append(pts, p)
	})
	return ids, pts
}
