package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wqrtq/internal/mat"
)

// TestMehrotraMatchesPathFollowing reruns the canonical problems with the
// predictor-corrector stepper; optima must coincide with the fixed-σ path.
func TestMehrotraMatchesPathFollowing(t *testing.T) {
	opts := Options{Mehrotra: true}
	// Halfspace projection.
	p := distProblem([]float64{2, 2})
	p.G = mat.FromRows([][]float64{{1, 1}})
	p.Hv = []float64{2}
	x, err := Solve(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-6 || math.Abs(x[1]-1) > 1e-6 {
		t.Errorf("x = %v, want (1, 1)", x)
	}
	// Simplex projection with equality elimination.
	p = distProblem([]float64{0.9, -0.2, 0.5})
	aeq := mat.New(1, 3)
	for i := 0; i < 3; i++ {
		aeq.Set(0, i, 1)
	}
	p.Aeq = aeq
	p.Beq = []float64{1}
	g := mat.New(3, 3)
	for i := 0; i < 3; i++ {
		g.Set(i, i, -1)
	}
	p.G = g
	p.Hv = make([]float64, 3)
	x, err = Solve(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := projectSimplex([]float64{0.9, -0.2, 0.5})
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-4 {
			t.Errorf("x = %v, want %v", x, want)
			break
		}
	}
	// Infeasible problems still detected.
	p = distProblem([]float64{0})
	p.G = mat.FromRows([][]float64{{1}, {-1}})
	p.Hv = []float64{-1, -2}
	if _, err := Solve(p, opts); err == nil {
		t.Error("infeasible problem accepted")
	}
}

func TestMehrotraBoxProjectionQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		tgt := make([]float64, n)
		ub := make([]float64, n)
		for i := range tgt {
			tgt[i] = r.Float64()*8 - 4
			ub[i] = r.Float64()*3 + 0.1
		}
		p := distProblem(tgt)
		p.G, p.Hv = boxRows(n, ub)
		x, err := Solve(p, Options{Mehrotra: true})
		if err != nil {
			return false
		}
		for i := range x {
			want := math.Max(0, math.Min(tgt[i], ub[i]))
			if math.Abs(x[i]-want) > 2e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestMehrotraFewerIterations documents the expected benefit: the adaptive
// centring should need no more iterations than the fixed-σ default on a
// representative problem.
func TestMehrotraFewerIterations(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	slower, faster := 0, 0
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(5)
		tgt := make([]float64, n)
		ub := make([]float64, n)
		for i := range tgt {
			tgt[i] = r.Float64()*8 - 4
			ub[i] = r.Float64()*3 + 0.1
		}
		p := distProblem(tgt)
		p.G, p.Hv = boxRows(n, ub)
		plain, err1 := SolveDetailed(p, Options{})
		adaptive, err2 := SolveDetailed(p, Options{Mehrotra: true})
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		if adaptive.Iterations < plain.Iterations {
			faster++
		} else if adaptive.Iterations > plain.Iterations {
			slower++
		}
	}
	if faster <= slower {
		t.Errorf("Mehrotra faster in %d trials, slower in %d; expected a clear win", faster, slower)
	}
}
