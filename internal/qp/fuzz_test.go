package qp

import (
	"math"
	"testing"
)

// FuzzBoxProjection checks the analytic clamp solution on arbitrary
// byte-derived box-projection problems.
func FuzzBoxProjection(f *testing.F) {
	f.Add([]byte{100, 50, 200, 30})
	f.Add([]byte{0, 255, 1, 254, 2, 253})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 16 || len(data)%2 != 0 {
			t.Skip()
		}
		n := len(data) / 2
		tgt := make([]float64, n)
		ub := make([]float64, n)
		for i := 0; i < n; i++ {
			tgt[i] = (float64(data[2*i]) - 128) / 16
			ub[i] = float64(data[2*i+1])/64 + 0.05
		}
		p := distProblem(tgt)
		p.G, p.Hv = boxRows(n, ub)
		x, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("solve failed: %v (tgt=%v ub=%v)", err, tgt, ub)
		}
		for i := range x {
			want := math.Max(0, math.Min(tgt[i], ub[i]))
			if math.Abs(x[i]-want) > 5e-4 {
				t.Fatalf("x[%d] = %v, want %v (tgt=%v ub=%v)", i, x[i], want, tgt, ub)
			}
		}
	})
}
