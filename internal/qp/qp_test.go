package qp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"wqrtq/internal/mat"
)

// distProblem builds min ||x - t||² = ½ xᵀ(2I)x + (-2t)ᵀx + const.
func distProblem(t []float64) Problem {
	n := len(t)
	h := mat.New(n, n)
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		h.Set(i, i, 2)
		c[i] = -2 * t[i]
	}
	return Problem{H: h, C: c}
}

// boxRows appends 0 <= x <= ub constraints as G x <= h rows.
func boxRows(n int, ub []float64) (*mat.Dense, []float64) {
	g := mat.New(2*n, n)
	h := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		g.Set(i, i, 1)
		h[i] = ub[i]
		g.Set(n+i, i, -1)
		h[n+i] = 0
	}
	return g, h
}

func TestUnconstrainedMinimum(t *testing.T) {
	p := distProblem([]float64{3, -1, 2})
	x, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -1, 2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestBoxProjectionQuick(t *testing.T) {
	// min ||x - t||² subject to 0 <= x <= ub has solution clamp(t, 0, ub).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		tgt := make([]float64, n)
		ub := make([]float64, n)
		for i := range tgt {
			tgt[i] = r.Float64()*8 - 4
			ub[i] = r.Float64()*3 + 0.1
		}
		p := distProblem(tgt)
		p.G, p.Hv = boxRows(n, ub)
		x, err := Solve(p, Options{})
		if err != nil {
			return false
		}
		for i := range x {
			// Coordinate error scales like sqrt(duality gap) when a
			// constraint is weakly active, so allow ~2e-4 absolute.
			want := math.Max(0, math.Min(tgt[i], ub[i]))
			if math.Abs(x[i]-want) > 2e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestHalfspaceKnown(t *testing.T) {
	// min (x1-2)² + (x2-2)² s.t. x1 + x2 <= 2 → projection onto the line:
	// (1, 1).
	p := distProblem([]float64{2, 2})
	p.G = mat.FromRows([][]float64{{1, 1}})
	p.Hv = []float64{2}
	x, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-7 || math.Abs(x[1]-1) > 1e-7 {
		t.Errorf("x = %v, want (1, 1)", x)
	}
}

func TestInactiveConstraint(t *testing.T) {
	// Constraint far away: solution stays at the unconstrained optimum.
	p := distProblem([]float64{0.25, 0.25})
	p.G = mat.FromRows([][]float64{{1, 1}})
	p.Hv = []float64{100}
	x, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.25) > 1e-7 || math.Abs(x[1]-0.25) > 1e-7 {
		t.Errorf("x = %v, want (0.25, 0.25)", x)
	}
}

// projectSimplex is the classical O(n log n) Euclidean projection onto the
// probability simplex (Held et al.), used as ground truth.
func projectSimplex(v []float64) []float64 {
	n := len(v)
	u := append([]float64(nil), v...)
	sort.Sort(sort.Reverse(sort.Float64Slice(u)))
	css := 0.0
	rho := -1
	var theta float64
	for i := 0; i < n; i++ {
		css += u[i]
		t := (css - 1) / float64(i+1)
		if u[i]-t > 0 {
			rho = i
			theta = t
		}
	}
	_ = rho
	out := make([]float64, n)
	for i := range v {
		out[i] = math.Max(v[i]-theta, 0)
	}
	return out
}

func TestSimplexProjectionAgainstClassic(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(6)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Float64()*4 - 2
		}
		p := distProblem(v)
		// sum x = 1, x >= 0.
		aeq := mat.New(1, n)
		for i := 0; i < n; i++ {
			aeq.Set(0, i, 1)
		}
		p.Aeq = aeq
		p.Beq = []float64{1}
		g := mat.New(n, n)
		for i := 0; i < n; i++ {
			g.Set(i, i, -1)
		}
		p.G = g
		p.Hv = make([]float64, n)
		x, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := projectSimplex(v)
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-4 {
				t.Fatalf("trial %d: x = %v, want %v", trial, x, want)
			}
		}
	}
}

func TestEqualityOnlyUniquePoint(t *testing.T) {
	// In 2-D, sum w = 1 and w·c = 0 with c = (1, -1) pin w = (0.5, 0.5).
	p := distProblem([]float64{0.9, 0.1})
	p.Aeq = mat.FromRows([][]float64{{1, 1}, {1, -1}})
	p.Beq = []float64{1, 0}
	g := mat.New(2, 2)
	g.Set(0, 0, -1)
	g.Set(1, 1, -1)
	p.G = g
	p.Hv = []float64{0, 0}
	x, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.5) > 1e-9 || math.Abs(x[1]-0.5) > 1e-9 {
		t.Errorf("x = %v, want (0.5, 0.5)", x)
	}
}

func TestEqualityUniquePointInfeasible(t *testing.T) {
	// Unique equality point (2, -1) violates x >= 0.
	p := distProblem([]float64{0, 0})
	p.Aeq = mat.FromRows([][]float64{{1, 1}, {1, -1}})
	p.Beq = []float64{1, 3}
	g := mat.New(2, 2)
	g.Set(0, 0, -1)
	g.Set(1, 1, -1)
	p.G = g
	p.Hv = []float64{0, 0}
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestInfeasibleInequalities(t *testing.T) {
	// x <= -1 and x >= 2 simultaneously.
	p := distProblem([]float64{0})
	p.G = mat.FromRows([][]float64{{1}, {-1}})
	p.Hv = []float64{-1, -2}
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestOptimalityAgainstFeasibleSamplesQuick(t *testing.T) {
	// Convexity implies the returned optimum scores no worse than any
	// feasible sample.
	obj := func(h *mat.Dense, c, x []float64) float64 {
		hx := h.MulVec(x)
		s := 0.0
		for i := range x {
			s += 0.5*x[i]*hx[i] + c[i]*x[i]
		}
		return s
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		m := 1 + r.Intn(6)
		// Random SPD H.
		b := mat.New(n, n)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		h := b.Mul(b.T())
		h.AddDiag(float64(n))
		c := make([]float64, n)
		for i := range c {
			c[i] = r.NormFloat64()
		}
		// Constraints built around a known interior point x0.
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = r.NormFloat64()
		}
		g := mat.New(m, n)
		hv := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				g.Set(i, j, r.NormFloat64())
			}
			hv[i] = dotVec(g.Row(i), x0) + 0.5 + r.Float64()
		}
		x, err := Solve(Problem{H: h, C: c, G: g, Hv: hv}, Options{})
		if err != nil {
			return false
		}
		// Optimum must be feasible.
		gx := g.MulVec(x)
		for i := range gx {
			if gx[i] > hv[i]+1e-6 {
				return false
			}
		}
		fx := obj(h, c, x)
		// Sample feasible points near x0 and on segments toward x.
		for trial := 0; trial < 30; trial++ {
			y := make([]float64, n)
			for i := range y {
				y[i] = x0[i] + r.NormFloat64()*0.5
			}
			feasible := true
			gy := g.MulVec(y)
			for i := range gy {
				if gy[i] > hv[i] {
					feasible = false
					break
				}
			}
			if feasible && obj(h, c, y) < fx-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func dotVec(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestDimensionValidation(t *testing.T) {
	p := Problem{H: mat.New(2, 3), C: []float64{1, 2}}
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("bad H accepted")
	}
	p = distProblem([]float64{1, 2})
	p.G = mat.New(1, 3)
	p.Hv = []float64{1}
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("bad G accepted")
	}
	p = distProblem([]float64{1, 2})
	p.Aeq = mat.New(1, 3)
	p.Beq = []float64{1}
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("bad Aeq accepted")
	}
}

func TestSolveDetailedReportsIterations(t *testing.T) {
	p := distProblem([]float64{2, 2})
	p.G = mat.FromRows([][]float64{{1, 1}})
	p.Hv = []float64{2}
	res, err := SolveDetailed(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations <= 0 {
		t.Errorf("Iterations = %d, want > 0", res.Iterations)
	}
	if res.Gap > 1e-8 {
		t.Errorf("Gap = %v, want tiny", res.Gap)
	}
}

// TestPaperMQPGeometry solves the exact QP that MQP builds for the paper's
// running example (Kevin and Julia as why-not vectors, k = 3): the top-3rd
// points are p4 for Kevin's w and p7 for Julia's w (Figure 5(b)), giving
// constraints f(w, q') <= f(w, p_i) plus 0 <= q' <= q.
func TestPaperMQPGeometry(t *testing.T) {
	q := []float64{4, 4}
	kevin := []float64{0.1, 0.9}
	julia := []float64{0.9, 0.1}
	p4 := []float64{9, 3} // f(kevin, p4) = 3.6
	p7 := []float64{3, 7} // f(julia, p7) = 3.4

	p := distProblem(q)
	p.G = mat.FromRows([][]float64{
		kevin,
		julia,
		{1, 0}, {0, 1}, // x <= q
		{-1, 0}, {0, -1}, // x >= 0
	})
	p.Hv = []float64{
		0.1*p4[0] + 0.9*p4[1],
		0.9*p7[0] + 0.1*p7[1],
		q[0], q[1],
		0, 0,
	}
	x, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Feasibility w.r.t. the two scoring constraints.
	if s := 0.1*x[0] + 0.9*x[1]; s > 3.6+1e-7 {
		t.Errorf("kevin constraint violated: %v", s)
	}
	if s := 0.9*x[0] + 0.1*x[1]; s > 3.4+1e-7 {
		t.Errorf("julia constraint violated: %v", s)
	}
	// The optimum must beat both of the paper's hand-picked candidates
	// q'=(3,2.5) (penalty 0.318) and q''=(2.5,3.5) (penalty 0.279).
	dist := math.Hypot(x[0]-4, x[1]-4)
	if dist > math.Hypot(2.5-4, 3.5-4)+1e-9 {
		t.Errorf("QP distance %v worse than hand-picked candidate", dist)
	}
}
