// Package qp solves small convex quadratic programs of the form
//
//	minimize   ½ xᵀH x + cᵀx
//	subject to G x ≤ h        (inequality constraints)
//	           A x = b        (optional equality constraints)
//
// with H symmetric positive definite. This is the role played by the
// interior-point QuadProg code of Monteiro and Adler [26] in Algorithm 1
// (MQP) of the paper: the safe region ∩ HS(wᵢ, pᵢ) is never materialized;
// the refined query point is obtained directly as the QP optimum.
//
// The solver is an infeasible-start primal–dual path-following interior
// point method. Equality constraints are eliminated up front by a
// null-space reduction (x = x_p + N u), so the core iteration only handles
// inequalities. Problems in WQRTQ are tiny (n ≤ ~13 variables,
// m = |Wm| + 2d constraints), so each Newton step forms the dense normal
// matrix H + Gᵀ·diag(z/s)·G and factorizes it with Cholesky.
package qp

import (
	"errors"
	"fmt"
	"math"
	"wqrtq/internal/feq"

	"wqrtq/internal/mat"
)

// Problem describes one convex QP instance.
type Problem struct {
	H *mat.Dense // n×n symmetric positive definite
	C []float64  // length n

	G  *mat.Dense // m×n inequality matrix, may be nil (no inequalities)
	Hv []float64  // length m right-hand side of G x ≤ h

	Aeq *mat.Dense // e×n equality matrix, may be nil
	Beq []float64  // length e
}

// Options tunes the interior-point iteration.
type Options struct {
	MaxIter int     // maximum Newton iterations (default 100)
	Tol     float64 // convergence tolerance on residuals and duality gap (default 1e-9)
	// Mehrotra enables the predictor-corrector step: an affine-scaling
	// predictor chooses the centring parameter adaptively
	// (sigma = (gap_aff/gap)^3) and a second-order corrector reuses the
	// same Newton factorization. It typically converges in fewer
	// iterations than the fixed-sigma path-following default.
	Mehrotra bool
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// Result reports the optimum and solver diagnostics.
type Result struct {
	X          []float64
	Iterations int
	Gap        float64 // final average complementarity sᵀz/m
}

// ErrInfeasible is returned when the iteration cannot reduce the primal
// residual, indicating an empty feasible region (or numerical breakdown).
var ErrInfeasible = errors.New("qp: problem appears infeasible")

// ErrMaxIter is returned when the iteration limit is reached without
// satisfying the convergence tolerances.
var ErrMaxIter = errors.New("qp: maximum iterations reached without convergence")

// Solve returns the minimizer of the problem.
func Solve(p Problem, opt Options) ([]float64, error) {
	res, err := SolveDetailed(p, opt)
	if err != nil {
		return nil, err
	}
	return res.X, nil
}

// SolveDetailed solves the problem and reports iteration diagnostics.
func SolveDetailed(p Problem, opt Options) (Result, error) {
	opt = opt.withDefaults()
	n := len(p.C)
	if p.H == nil || p.H.Rows != n || p.H.Cols != n {
		return Result{}, fmt.Errorf("qp: H must be %d×%d", n, n)
	}
	if p.G != nil && (p.G.Cols != n || len(p.Hv) != p.G.Rows) {
		return Result{}, errors.New("qp: inconsistent inequality dimensions")
	}
	if p.Aeq == nil || p.Aeq.Rows == 0 {
		return solveInequality(p.H, p.C, p.G, p.Hv, opt)
	}
	return solveWithEqualities(p, opt)
}

// solveWithEqualities eliminates A x = b by the null-space method and solves
// the reduced inequality-constrained problem.
func solveWithEqualities(p Problem, opt Options) (Result, error) {
	n := len(p.C)
	if p.Aeq.Cols != n || len(p.Beq) != p.Aeq.Rows {
		return Result{}, errors.New("qp: inconsistent equality dimensions")
	}
	xp, err := mat.LeastSquaresRow(p.Aeq, p.Beq)
	if err != nil {
		return Result{}, fmt.Errorf("qp: equality system: %w", err)
	}
	rows := make([][]float64, p.Aeq.Rows)
	for i := range rows {
		rows[i] = p.Aeq.Row(i)
	}
	basis := mat.NullSpace(rows, n)
	if len(basis) == 0 {
		// Unique point; only feasibility to check.
		if p.G != nil {
			gx := p.G.MulVec(xp)
			for i, v := range gx {
				if v > p.Hv[i]+1e-8*(1+math.Abs(p.Hv[i])) {
					return Result{}, ErrInfeasible
				}
			}
		}
		return Result{X: xp}, nil
	}
	// N has the basis vectors as columns: x = xp + N u.
	nn := mat.New(n, len(basis))
	for j, u := range basis {
		for i := 0; i < n; i++ {
			nn.Set(i, j, u[i])
		}
	}
	nt := nn.T()
	hRed := nt.Mul(p.H.Mul(nn))
	hxpc := p.H.MulVec(xp)
	for i := range hxpc {
		hxpc[i] += p.C[i]
	}
	cRed := nt.MulVec(hxpc)
	var gRed *mat.Dense
	var hvRed []float64
	if p.G != nil && p.G.Rows > 0 {
		gRed = p.G.Mul(nn)
		gxp := p.G.MulVec(xp)
		hvRed = make([]float64, len(p.Hv))
		for i := range hvRed {
			hvRed[i] = p.Hv[i] - gxp[i]
		}
	}
	res, err := solveInequality(hRed, cRed, gRed, hvRed, opt)
	if err != nil {
		return Result{}, err
	}
	x := nn.MulVec(res.X)
	for i := range x {
		x[i] += xp[i]
	}
	res.X = x
	return res, nil
}

// solveInequality runs the primal–dual interior-point iteration on
// min ½xᵀHx + cᵀx subject to Gx ≤ h.
func solveInequality(h *mat.Dense, c []float64, g *mat.Dense, hv []float64, opt Options) (Result, error) {
	n := len(c)
	// Unconstrained (or trivially constrained) case.
	if g == nil || g.Rows == 0 {
		negc := make([]float64, n)
		for i, v := range c {
			negc[i] = -v
		}
		x, err := mat.SolveSPDJitter(h, negc)
		if err != nil {
			return Result{}, fmt.Errorf("qp: unconstrained solve: %w", err)
		}
		return Result{X: x}, nil
	}
	m := g.Rows

	// Start from the unconstrained minimizer; slacks pushed strictly positive.
	negc := make([]float64, n)
	for i, v := range c {
		negc[i] = -v
	}
	x, err := mat.SolveSPDJitter(h, negc)
	if err != nil {
		return Result{}, fmt.Errorf("qp: initial point: %w", err)
	}
	s := make([]float64, m)
	z := make([]float64, m)
	gx := g.MulVec(x)
	for i := 0; i < m; i++ {
		s[i] = math.Max(hv[i]-gx[i], 1)
		z[i] = 1
	}

	scale := 1.0
	for _, v := range c {
		scale = math.Max(scale, math.Abs(v))
	}
	for _, v := range hv {
		scale = math.Max(scale, math.Abs(v))
	}

	rd := make([]float64, n)
	rp := make([]float64, m)
	dx := make([]float64, n)
	dz := make([]float64, m)
	ds := make([]float64, m)
	// Best iterate seen so far, by scaled merit max(rd, rp, mu)/scale. The
	// path-following iteration can break down numerically (z/s overflowing
	// the Newton system) after it has already produced an essentially
	// optimal iterate; in that case the best iterate is returned.
	bestX := append([]float64(nil), x...)
	bestMerit := math.Inf(1)
	bestGap := math.Inf(1)
	iterations := 0
	finish := func(err error) (Result, error) {
		const relaxed = 1e-7
		if bestMerit <= relaxed {
			return Result{X: bestX, Iterations: iterations, Gap: bestGap}, nil
		}
		return Result{}, err
	}
	for iter := 1; iter <= opt.MaxIter; iter++ {
		iterations = iter
		// Residuals.
		gtz := g.TMulVec(z)
		hx := h.MulVec(x)
		maxRd := 0.0
		for i := 0; i < n; i++ {
			rd[i] = hx[i] + c[i] + gtz[i]
			maxRd = math.Max(maxRd, math.Abs(rd[i]))
		}
		gx = g.MulVec(x)
		maxRp := 0.0
		for i := 0; i < m; i++ {
			rp[i] = gx[i] + s[i] - hv[i]
			maxRp = math.Max(maxRp, math.Abs(rp[i]))
		}
		mu := 0.0
		for i := 0; i < m; i++ {
			mu += s[i] * z[i]
		}
		mu /= float64(m)

		if merit := math.Max(math.Max(maxRd, maxRp), mu) / scale; merit < bestMerit {
			bestMerit = merit
			bestGap = mu
			copy(bestX, x)
		}
		if maxRd <= opt.Tol*scale && maxRp <= opt.Tol*scale && mu <= opt.Tol*scale {
			return Result{X: x, Iterations: iter - 1, Gap: mu}, nil
		}

		// M = H + Gᵀ diag(z/s) G is shared by every direction solve this
		// iteration (predictor and corrector differ only in rc).
		mtx := h.Clone()
		for r := 0; r < m; r++ {
			d := z[r] / s[r]
			if d > 1e14 {
				d = 1e14
			}
			row := g.Row(r)
			for i := 0; i < n; i++ {
				if feq.Zero(row[i]) {
					continue
				}
				di := d * row[i]
				mi := mtx.Row(i)
				for j := 0; j < n; j++ {
					mi[j] += di * row[j]
				}
			}
		}
		lfac, err := mat.CholeskyJitter(mtx)
		if err != nil {
			return Result{}, fmt.Errorf("qp: newton system: %w", err)
		}
		// direction solves for a given complementarity target rc:
		// dx from (H + GᵀDG)dx = -rd - Gᵀ[(-rc + z∘rp)/s], then
		// ds = -rp - G dx and dz = (-rc - z∘ds)/s.
		v := make([]float64, m)
		rhs := make([]float64, n)
		direction := func(rc []float64, dx, ds, dz []float64) {
			for i := 0; i < m; i++ {
				v[i] = (-rc[i] + z[i]*rp[i]) / s[i]
			}
			gtv := g.TMulVec(v)
			for i := 0; i < n; i++ {
				rhs[i] = -rd[i] - gtv[i]
			}
			copy(dx, mat.CholSolve(lfac, rhs))
			gdx := g.MulVec(dx)
			for i := 0; i < m; i++ {
				ds[i] = -rp[i] - gdx[i]
				dz[i] = (-rc[i] - z[i]*ds[i]) / s[i]
			}
		}
		rc := make([]float64, m)
		if opt.Mehrotra {
			// Predictor: pure affine step (rc = s∘z).
			for i := 0; i < m; i++ {
				rc[i] = s[i] * z[i]
			}
			direction(rc, dx, ds, dz)
			alphaAff := 1.0
			for i := 0; i < m; i++ {
				if ds[i] < 0 {
					alphaAff = math.Min(alphaAff, -s[i]/ds[i])
				}
				if dz[i] < 0 {
					alphaAff = math.Min(alphaAff, -z[i]/dz[i])
				}
			}
			muAff := 0.0
			for i := 0; i < m; i++ {
				muAff += (s[i] + alphaAff*ds[i]) * (z[i] + alphaAff*dz[i])
			}
			muAff /= float64(m)
			sigma := muAff / mu
			sigma = sigma * sigma * sigma
			// Corrector: rc = s∘z + Δs_aff∘Δz_aff - σμ.
			for i := 0; i < m; i++ {
				rc[i] = s[i]*z[i] + ds[i]*dz[i] - sigma*mu
			}
			direction(rc, dx, ds, dz)
		} else {
			// Fixed-σ path following toward sᵢzᵢ = σμ.
			const sigma = 0.1
			for i := 0; i < m; i++ {
				rc[i] = s[i]*z[i] - sigma*mu
			}
			direction(rc, dx, ds, dz)
		}

		// Fraction-to-boundary step keeping s, z strictly positive.
		alpha := 1.0
		for i := 0; i < m; i++ {
			if ds[i] < 0 {
				alpha = math.Min(alpha, -s[i]/ds[i])
			}
			if dz[i] < 0 {
				alpha = math.Min(alpha, -z[i]/dz[i])
			}
		}
		alpha = math.Min(1, 0.99*alpha)
		if alpha < 1e-13 {
			return finish(ErrInfeasible)
		}
		for i := 0; i < n; i++ {
			x[i] += alpha * dx[i]
		}
		for i := 0; i < m; i++ {
			s[i] += alpha * ds[i]
			z[i] += alpha * dz[i]
		}
	}
	// Accept the best iterate if it is essentially optimal; otherwise report
	// why the iteration stopped.
	gx = g.MulVec(bestX)
	for i := 0; i < m; i++ {
		if gx[i] > hv[i]+1e-6*scale {
			return Result{}, ErrInfeasible
		}
	}
	return finish(ErrMaxIter)
}
