package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wqrtq/internal/vec"
)

func TestHyperplaneVertices2D(t *testing.T) {
	// c = p - q with p=(9,3), q=(4,4): c=(5,-1). The unique simplex point
	// satisfies 5λ - (1-λ) = 0 → λ = 1/6.
	vs := HyperplaneVertices([]float64{5, -1})
	if len(vs) != 1 {
		t.Fatalf("vertices = %v, want exactly one", vs)
	}
	if math.Abs(vs[0][0]-1.0/6) > 1e-12 || math.Abs(vs[0][1]-5.0/6) > 1e-12 {
		t.Errorf("vertex = %v, want (1/6, 5/6)", vs[0])
	}
}

func TestHyperplaneVerticesMissesSimplex(t *testing.T) {
	if vs := HyperplaneVertices([]float64{1, 2, 3}); len(vs) != 0 {
		t.Errorf("one-signed c should miss the simplex, got %v", vs)
	}
	if vs := HyperplaneVertices([]float64{-1, -2}); len(vs) != 0 {
		t.Errorf("negative c should miss the simplex, got %v", vs)
	}
}

func TestHyperplaneVerticesZeroComponent(t *testing.T) {
	// c = (0, 1, -1): vertices are e1 and the midpoint of e2-e3 edge.
	vs := HyperplaneVertices([]float64{0, 1, -1})
	if len(vs) != 2 {
		t.Fatalf("got %d vertices, want 2", len(vs))
	}
	for _, v := range vs {
		if err := vec.ValidateWeight(v); err != nil {
			t.Errorf("vertex %v invalid: %v", v, err)
		}
		if r := ValidateOnPlane([]float64{0, 1, -1}, v); r > 1e-12 {
			t.Errorf("vertex %v off plane by %v", v, r)
		}
	}
}

func TestHyperplaneVerticesPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 2 + r.Intn(6)
		c := make([]float64, d)
		for i := range c {
			c[i] = r.NormFloat64()
		}
		for _, v := range HyperplaneVertices(c) {
			if vec.ValidateWeight(v) != nil {
				return false
			}
			if ValidateOnPlane(c, v) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWeightSamplerSamplesSatisfyConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q := vec.Point{4, 4, 4}
	inc := []vec.Point{{9, 3, 2}, {1, 9, 5}, {3, 7, 4}}
	s, err := NewWeightSampler(q, inc)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPlanes() != 3 {
		t.Fatalf("NumPlanes = %d, want 3", s.NumPlanes())
	}
	for i := 0; i < 500; i++ {
		w := s.Sample(rng)
		if err := vec.ValidateWeight(w); err != nil {
			t.Fatalf("sample %d invalid: %v (%v)", i, err, w)
		}
		// The sample must lie on at least one of the hyperplanes.
		on := false
		for _, p := range inc {
			if ValidateOnPlane(vec.Sub(p, q), w) < 1e-9 {
				on = true
				break
			}
		}
		if !on {
			t.Fatalf("sample %d = %v on no hyperplane", i, w)
		}
	}
}

func TestWeightSamplerNoSampleSpace(t *testing.T) {
	// Incomparable list empty, or every "incomparable" point dominated
	// (cannot happen from FindIncom, but the sampler must still guard).
	if _, err := NewWeightSampler(vec.Point{1, 1}, nil); err != ErrNoSampleSpace {
		t.Errorf("err = %v, want ErrNoSampleSpace", err)
	}
	if _, err := NewWeightSampler(vec.Point{1, 1}, []vec.Point{{2, 2}}); err != ErrNoSampleSpace {
		t.Errorf("dominated point: err = %v, want ErrNoSampleSpace", err)
	}
}

func TestWeightSampler2DDeterministicPoint(t *testing.T) {
	// In 2-D each hyperplane meets the simplex in exactly one point, so all
	// samples from a single-plane sampler coincide.
	rng := rand.New(rand.NewSource(3))
	q := vec.Point{4, 4}
	s, err := NewWeightSampler(q, []vec.Point{{9, 3}})
	if err != nil {
		t.Fatal(err)
	}
	first := s.Sample(rng)
	for i := 0; i < 20; i++ {
		w := s.Sample(rng)
		if vec.WeightDist(first, w) > 1e-12 {
			t.Fatalf("2-D samples differ: %v vs %v", first, w)
		}
	}
	if math.Abs(first[0]-1.0/6) > 1e-12 {
		t.Errorf("sample = %v, want λ = 1/6", first)
	}
}

func TestSampleNCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := NewWeightSampler(vec.Point{4, 4}, []vec.Point{{9, 3}, {1, 9}})
	if err != nil {
		t.Fatal(err)
	}
	ws := s.SampleN(rng, 64)
	if len(ws) != 64 {
		t.Fatalf("SampleN returned %d", len(ws))
	}
}

func TestRandSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		d := 2 + rng.Intn(8)
		w := RandSimplex(rng, d)
		if err := vec.ValidateWeight(w); err != nil {
			t.Fatalf("RandSimplex invalid: %v", err)
		}
	}
}

func TestBoxSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	lo := vec.Point{1, 2, 3}
	hi := vec.Point{2, 5, 3} // note zero-width last dimension
	pts := Box(rng, lo, hi, 300)
	if len(pts) != 300 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		for j := range p {
			if p[j] < lo[j] || p[j] > hi[j] {
				t.Fatalf("point %v outside box", p)
			}
		}
		if p[2] != 3 {
			t.Fatalf("zero-width dimension sampled off-value: %v", p)
		}
	}
}

func TestDirichletCombinationCoversPolytope(t *testing.T) {
	// In 3-D a mixed-sign plane has >= 2 vertices; samples should not all
	// collapse onto a vertex.
	rng := rand.New(rand.NewSource(11))
	s, err := NewWeightSampler(vec.Point{4, 4, 4}, []vec.Point{{9, 3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[[3]int64]bool{}
	for i := 0; i < 100; i++ {
		w := s.Sample(rng)
		key := [3]int64{int64(w[0] * 1e6), int64(w[1] * 1e6), int64(w[2] * 1e6)}
		distinct[key] = true
	}
	if len(distinct) < 50 {
		t.Errorf("only %d distinct samples out of 100; sampler looks degenerate", len(distinct))
	}
}

// --- Lazy sampler: degenerate spaces and the scratch-draw variant ----------

// lazyOver builds a LazyWeightSampler over the same incomparable sequence an
// eager sampler would see.
func lazyOver(q vec.Point, inc []vec.Point) (*LazyWeightSampler, error) {
	return NewLazyWeightSampler(q, len(inc), func(i int) vec.Point { return inc[i] })
}

// drawBoth draws n samples from an eager and a lazy sampler over the same
// space with identically seeded rngs and requires bit-identical streams.
func drawBoth(t *testing.T, label string, q vec.Point, inc []vec.Point, n int) {
	t.Helper()
	eager, errE := NewWeightSampler(q, inc)
	lazy, errL := lazyOver(q, inc)
	if errE != nil || errL != nil {
		t.Fatalf("%s: constructors failed: eager=%v lazy=%v", label, errE, errL)
	}
	rngE := rand.New(rand.NewSource(42))
	rngL := rand.New(rand.NewSource(42))
	rngS := rand.New(rand.NewSource(42))
	var sc DrawScratch
	for i := 0; i < n; i++ {
		we := eager.Sample(rngE)
		wl := lazy.Sample(rngL)
		ws := lazy.SampleScratch(rngS, &sc)
		if !vec.Equal(vec.Point(we), vec.Point(wl)) {
			t.Fatalf("%s: draw %d diverged: eager %v, lazy %v", label, i, we, wl)
		}
		if !vec.Equal(vec.Point(wl), vec.Point(ws)) {
			t.Fatalf("%s: draw %d diverged: lazy %v, scratch %v", label, i, wl, ws)
		}
	}
}

// TestLazySamplerEmptyUniverse pins the empty candidate universe: both
// constructors must refuse with ErrNoSampleSpace, so the refinement loops
// fall back to the k-only baseline identically on both paths.
func TestLazySamplerEmptyUniverse(t *testing.T) {
	if _, err := NewWeightSampler(vec.Point{1, 1}, nil); err != ErrNoSampleSpace {
		t.Errorf("eager: err = %v, want ErrNoSampleSpace", err)
	}
	if _, err := lazyOver(vec.Point{1, 1}, nil); err != ErrNoSampleSpace {
		t.Errorf("lazy: err = %v, want ErrNoSampleSpace", err)
	}
}

// TestLazySampler1D pins d=1: no point is strictly incomparable with q in
// one dimension, so the only admissible 1-D "hyperplane" is the degenerate
// c = 0 of a point equal to q, whose single vertex (1) both samplers return
// with identical rng consumption; a genuinely one-signed c violates the
// incomparability precondition and must panic on the lazy side, mirroring
// the eager constructor's refusal.
func TestLazySampler1D(t *testing.T) {
	q := vec.Point{3}
	drawBoth(t, "d=1 equal point", q, []vec.Point{{3}}, 16)

	if _, err := NewWeightSampler(q, []vec.Point{{5}}); err != ErrNoSampleSpace {
		t.Fatalf("eager over one-signed 1-D plane: err = %v, want ErrNoSampleSpace", err)
	}
	lazy, err := lazyOver(q, []vec.Point{{5}})
	if err != nil {
		t.Fatalf("lazy constructor is O(1) and cannot pre-check planes: %v", err)
	}
	for _, scratch := range []bool{false, true} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("lazy draw (scratch=%v) over a non-incomparable point must panic", scratch)
				}
			}()
			rng := rand.New(rand.NewSource(1))
			if scratch {
				var sc DrawScratch
				lazy.SampleScratch(rng, &sc)
			} else {
				lazy.Sample(rng)
			}
		}()
	}
}

// TestLazySamplerDuplicateHyperplanes pins duplicate planes: repeated
// incomparable points produce coincident hyperplanes, and the index-uniform
// draw must keep the duplicated plane's doubled mass with an identical
// stream on both samplers.
func TestLazySamplerDuplicateHyperplanes(t *testing.T) {
	q := vec.Point{4, 4, 4}
	inc := []vec.Point{{9, 3, 2}, {9, 3, 2}, {9, 3, 2}, {1, 9, 5}}
	drawBoth(t, "duplicate planes", q, inc, 200)
}

// TestLazySamplerMoreSamplesThanPlanes pins sampleSize > universe: drawing
// far more samples than there are hyperplanes revisits planes, and the
// streams must stay bit-identical throughout (the lazy sampler re-derives
// the plane on every visit; the eager one reuses its materialization).
func TestLazySamplerMoreSamplesThanPlanes(t *testing.T) {
	q := vec.Point{4, 4}
	inc := []vec.Point{{9, 3}, {1, 9}}
	drawBoth(t, "samples > universe", q, inc, 500)
}

// TestSampleScratchAllocs guards the scratch draw: after warm-up each draw
// allocates only the returned weight (one object).
func TestSampleScratchAllocs(t *testing.T) {
	q := vec.Point{4, 4, 4}
	inc := []vec.Point{{9, 3, 2}, {1, 9, 5}, {3, 7, 4}}
	lazy, err := lazyOver(q, inc)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var sc DrawScratch
	lazy.SampleScratch(rng, &sc) // warm the scratch buffers
	allocs := testing.AllocsPerRun(200, func() {
		lazy.SampleScratch(rng, &sc)
	})
	if allocs > 1 {
		t.Fatalf("SampleScratch allocates %.1f objects per draw, want <= 1", allocs)
	}
}
