// Package sample implements the sampling machinery of §4.3 and §4.4:
// weighting vectors drawn from the hyperplanes that the incomparable points
// form with the query point (the sample space of MWK), and query points
// drawn from the box [q_min, q] (the sample space SP(q) of MQWK).
//
// For an incomparable point p, the hyperplane {w : w·(p-q) = 0} is the locus
// of weighting vectors under which p and q tie; crossing it changes q's rank
// by one. As proved in [14] (He and Lo) and used by Lemma 5, for a fixed
// target ranking the weighting vector closest to a why-not vector lies on
// one of these hyperplanes, so they constitute the entire sample space.
//
// The intersection of such a hyperplane with the standard weighting simplex
// is a (d-2)-polytope whose vertices lie on simplex edges. Samples are
// drawn as Dirichlet-weighted convex combinations of those vertices: every
// sample satisfies the hyperplane and simplex constraints exactly, and the
// whole polytope has positive sampling density (the distribution is not
// perfectly uniform over the polytope, which the paper does not require).
package sample

import (
	"errors"
	"math"
	"math/rand"
	"wqrtq/internal/feq"

	"wqrtq/internal/vec"
)

// HyperplaneVertices returns the vertices of {w : w >= 0, Σw = 1, c·w = 0}.
// The result is empty when the hyperplane misses the simplex (c strictly
// one-signed). Vertices are fresh slices.
func HyperplaneVertices(c []float64) []vec.Weight {
	d := len(c)
	var out []vec.Weight
	for i := 0; i < d; i++ {
		if feq.Zero(c[i]) {
			v := make(vec.Weight, d)
			v[i] = 1
			out = append(out, v)
		}
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if (c[i] > 0 && c[j] < 0) || (c[i] < 0 && c[j] > 0) {
				t := c[j] / (c[j] - c[i])
				v := make(vec.Weight, d)
				v[i] = t
				v[j] = 1 - t
				out = append(out, v)
			}
		}
	}
	return out
}

// WeightSampler draws weighting vectors from the union of the hyperplanes
// formed by the incomparable points I and the query point q.
type WeightSampler struct {
	planes [][]float64    // c = p - q per usable incomparable point
	verts  [][]vec.Weight // vertices per plane
}

// ErrNoSampleSpace is returned when no hyperplane intersects the simplex
// (e.g. I is empty), so weight modification cannot help.
var ErrNoSampleSpace = errors.New("sample: no hyperplane intersects the weighting simplex")

// NewWeightSampler prepares the sample space for query point q and the
// incomparable points inc.
func NewWeightSampler(q vec.Point, inc []vec.Point) (*WeightSampler, error) {
	s := &WeightSampler{}
	for _, p := range inc {
		c := vec.Sub(p, q)
		vs := HyperplaneVertices(c)
		if len(vs) == 0 {
			continue
		}
		s.planes = append(s.planes, c)
		s.verts = append(s.verts, vs)
	}
	if len(s.planes) == 0 {
		return nil, ErrNoSampleSpace
	}
	return s, nil
}

// NumPlanes returns the number of usable hyperplanes.
func (s *WeightSampler) NumPlanes() int { return len(s.planes) }

// Sample draws one weighting vector: a hyperplane is chosen uniformly and a
// Dirichlet(1,...,1)-weighted convex combination of its vertices is
// returned.
func (s *WeightSampler) Sample(rng *rand.Rand) vec.Weight {
	idx := rng.Intn(len(s.planes))
	return combineVertices(s.verts[idx], rng)
}

// SampleN draws n weighting vectors.
func (s *WeightSampler) SampleN(rng *rand.Rand, n int) []vec.Weight {
	out := make([]vec.Weight, n)
	for i := range out {
		out[i] = s.Sample(rng)
	}
	return out
}

func combineVertices(vs []vec.Weight, rng *rand.Rand) vec.Weight {
	d := len(vs[0])
	if len(vs) == 1 {
		return vec.CloneWeight(vs[0])
	}
	// Dirichlet(1) weights via normalized exponentials.
	coef := make([]float64, len(vs))
	sum := 0.0
	for i := range coef {
		coef[i] = rng.ExpFloat64()
		sum += coef[i]
	}
	w := make(vec.Weight, d)
	for i, v := range vs {
		c := coef[i] / sum
		for j := range w {
			w[j] += c * v[j]
		}
	}
	return w
}

// LazyWeightSampler draws the exact same weighting-vector stream as a
// WeightSampler built over the same incomparable points — same rand.Rand
// consumption, same values — without materializing any hyperplane up front.
// Each draw picks an index, derives that one point's hyperplane c = p - q,
// and enumerates its simplex vertices on demand, so construction is O(1)
// instead of O(|I|·d²) with per-plane allocations. The skyband-routed
// refinement loops of internal/core build one of these per sample query
// point.
//
// Precondition: every accessible point must be strictly incomparable with q
// (some coordinate below q and some above, as FindIncom and Classify
// guarantee for their I sets). Such a hyperplane always intersects the
// weighting simplex, which is what makes the index stream identical to the
// eager sampler's: NewWeightSampler drops only planes that miss the
// simplex, and under the precondition there are none to drop. Sample panics
// if the precondition is violated.
type LazyWeightSampler struct {
	q  vec.Point
	n  int
	at func(int) vec.Point
}

// NewLazyWeightSampler prepares a lazy sample space over n incomparable
// points accessed through at. It returns ErrNoSampleSpace when n == 0,
// mirroring the eager constructor.
func NewLazyWeightSampler(q vec.Point, n int, at func(int) vec.Point) (*LazyWeightSampler, error) {
	if n == 0 {
		return nil, ErrNoSampleSpace
	}
	return &LazyWeightSampler{q: q, n: n, at: at}, nil
}

// Sample draws one weighting vector, bit-identically to
// (*WeightSampler).Sample over the same point sequence.
func (s *LazyWeightSampler) Sample(rng *rand.Rand) vec.Weight {
	idx := rng.Intn(s.n)
	c := vec.Sub(s.at(idx), s.q)
	vs := HyperplaneVertices(c)
	if len(vs) == 0 {
		panic("sample: LazyWeightSampler over a point not incomparable with q")
	}
	return combineVertices(vs, rng)
}

// DrawScratch holds the per-draw temporaries of SampleScratch — the
// hyperplane coefficients, the vertex set and the Dirichlet coefficients —
// so a sampling loop's draws allocate only the returned weight. The zero
// value is ready for use.
type DrawScratch struct {
	c    []float64
	vs   []vec.Weight
	vbuf []float64
	coef []float64
}

// SampleScratch is Sample with caller-owned scratch: it draws the exact
// same weighting vector — same rand.Rand consumption, same float values —
// while reusing sc's buffers for every intermediate, so only the returned
// weight is a fresh allocation. The blocked sampling loops of internal/core
// use it to keep per-draw garbage off the refinement hot path.
func (s *LazyWeightSampler) SampleScratch(rng *rand.Rand, sc *DrawScratch) vec.Weight {
	idx := rng.Intn(s.n)
	p := s.at(idx)
	d := len(s.q)
	if cap(sc.c) < d {
		sc.c = make([]float64, d)
	}
	c := sc.c[:d]
	for i := range c {
		c[i] = p[i] - s.q[i]
	}
	vs := hyperplaneVerticesInto(c, sc)
	if len(vs) == 0 {
		panic("sample: LazyWeightSampler over a point not incomparable with q")
	}
	if len(vs) == 1 {
		return vec.CloneWeight(vs[0])
	}
	if cap(sc.coef) < len(vs) {
		sc.coef = make([]float64, len(vs))
	}
	coef := sc.coef[:len(vs)]
	sum := 0.0
	for i := range coef {
		coef[i] = rng.ExpFloat64()
		sum += coef[i]
	}
	w := make(vec.Weight, d)
	for i, v := range vs {
		cf := coef[i] / sum
		for j := range w {
			w[j] += cf * v[j]
		}
	}
	return w
}

// hyperplaneVerticesInto is HyperplaneVertices with the vertex slices carved
// out of sc's backing buffer, in the same order and with the same values.
func hyperplaneVerticesInto(c []float64, sc *DrawScratch) []vec.Weight {
	d := len(c)
	// At most d axis vertices plus d(d-1)/2 edge vertices.
	maxV := d + d*(d-1)/2
	if cap(sc.vbuf) < maxV*d {
		sc.vbuf = make([]float64, maxV*d)
	}
	if cap(sc.vs) < maxV {
		sc.vs = make([]vec.Weight, maxV)
	}
	buf := sc.vbuf[:0]
	out := sc.vs[:0]
	grab := func() vec.Weight {
		start := len(buf)
		buf = buf[:start+d]
		v := vec.Weight(buf[start : start+d])
		for i := range v {
			v[i] = 0
		}
		return v
	}
	for i := 0; i < d; i++ {
		if feq.Zero(c[i]) {
			v := grab()
			v[i] = 1
			out = append(out, v)
		}
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if (c[i] > 0 && c[j] < 0) || (c[i] < 0 && c[j] > 0) {
				t := c[j] / (c[j] - c[i])
				v := grab()
				v[i] = t
				v[j] = 1 - t
				out = append(out, v)
			}
		}
	}
	sc.vbuf = buf
	sc.vs = out
	return out
}

// RandSimplex returns a uniform random point on the standard d-simplex.
func RandSimplex(rng *rand.Rand, d int) vec.Weight {
	w := make(vec.Weight, d)
	sum := 0.0
	for i := range w {
		w[i] = rng.ExpFloat64()
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Box draws n points uniformly from the axis-aligned box [lo, hi]; this is
// MQWK's query-point sample space SP(q) with lo = q_min, hi = q (§4.4,
// Figure 6).
func Box(rng *rand.Rand, lo, hi vec.Point, n int) []vec.Point {
	out := make([]vec.Point, n)
	for i := range out {
		p := make(vec.Point, len(lo))
		for j := range p {
			p[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
		}
		out[i] = p
	}
	return out
}

// ValidateOnPlane reports the absolute hyperplane residual |c·w| of a
// sample; exported for tests and debugging.
func ValidateOnPlane(c []float64, w vec.Weight) float64 {
	return math.Abs(vec.Dot(c, w))
}
