// Package storage abstracts the tiny slice of a filesystem the durability
// layer needs — create/open/rename/remove/list plus explicit file and
// directory syncs — behind an interface small enough to implement twice:
// once over the real OS (OS) and once as an in-memory crash simulator
// (FaultFS) that models exactly which bytes and which namespace operations
// survive a power cut at every write/sync/rename boundary.
//
// The durability code (internal/wal, internal/pagestore, the engine
// checkpointer) performs every file operation through FS, never through
// the os package directly, so the fault-injection suite exercises the very
// code paths production runs.
package storage

import "errors"

// File is a sequential-write, random-read file handle. Writers append at
// the current offset (the durability layer never seeks while writing);
// readers may use Read for streaming or ReadAt for random access.
type File interface {
	Read(p []byte) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	Write(p []byte) (int, error)
	// Sync makes every byte written so far durable. Bytes written after
	// the last Sync may be lost, torn to an arbitrary prefix, or replaced
	// by garbage on a crash.
	Sync() error
	Close() error
}

// FS is the namespace surface. Namespace operations (Create, Rename,
// Remove) become durable only once SyncDir returns; on a crash an
// arbitrary prefix of the un-synced operations survives.
type FS interface {
	// Create truncates or creates name for writing.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	Rename(oldName, newName string) error
	Remove(name string) error
	// List returns the names (base names, sorted) of the files directly
	// inside dir. A missing directory is reported as an error.
	List(dir string) ([]string, error)
	MkdirAll(dir string) error
	// SyncDir makes all prior namespace operations under dir durable.
	SyncDir(dir string) error
	// Size returns the current byte size of name.
	Size(name string) (int64, error)
}

// ErrCrashed is returned by every FaultFS operation at and after the
// armed crash point. Code under test treats it like any other I/O error;
// the harness then rebuilds the post-crash durable view with Reboot.
var ErrCrashed = errors.New("storage: simulated crash")

// ErrInjected is returned by FaultFS operations while a transient fault
// window armed with InjectFailures is open. Unlike ErrCrashed it is not
// sticky: once the armed budget is spent, later operations succeed again —
// the shape of a device that hiccups (EIO under memory pressure, a
// controller reset) rather than dies, which is what retry/backoff paths
// must survive without escalating.
var ErrInjected = errors.New("storage: injected transient I/O error")
