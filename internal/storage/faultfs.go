package storage

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultFS is an in-memory FS that models crash consistency the way a
// conservative POSIX filesystem behaves under power loss:
//
//   - file bytes written since the last File.Sync are volatile: on a crash
//     they may vanish entirely, survive as an arbitrary prefix, or be
//     replaced by garbage (a torn sector) — chosen per file by Reboot's
//     seeded RNG;
//   - namespace operations (Create, Rename, Remove) since the last
//     SyncDir are volatile: an arbitrary prefix of them, in issue order,
//     survives the crash;
//   - a crash point can be armed at the N-th state-changing operation
//     (SetCrashAt); that operation and every later one fail with
//     ErrCrashed and have no effect, after which Reboot yields the
//     durable view a restarted process would observe.
//
// Every mutating entry point counts toward the operation counter, so a
// sweep over [1, OpCount] exercises a crash before each individual write,
// sync, create, rename, remove and dir-sync the workload performs.
type FaultFS struct {
	mu      sync.Mutex
	files   map[string]*memFile // live namespace (what the process sees)
	dirs    map[string]bool
	synced  map[string]*memFile // namespace as of the last SyncDir
	pending []dirOp             // namespace ops issued since the last SyncDir
	ops     int
	crashAt int // 0 = disarmed; crash fires when ops reaches crashAt
	crashed bool
	// injectN is the remaining budget of transient ErrInjected failures
	// (InjectFailures); unlike the crash point it heals once spent.
	injectN  int
	injected int
	// opDelayNs stalls every Write/Sync by this long before it runs — the
	// I/O-latency injection behind the chaos harness. Atomic so the stall
	// happens outside f.mu and does not serialize unrelated operations.
	opDelayNs atomic.Int64
}

type dirOp struct {
	kind string // "create" | "rename" | "remove"
	name string
	to   string
	file *memFile // the fresh file object for "create"
}

type memFile struct {
	data      []byte
	syncedLen int // prefix of data known durable
}

// NewFaultFS returns an empty fault-injection filesystem with no crash
// point armed.
func NewFaultFS() *FaultFS {
	return &FaultFS{
		files:  map[string]*memFile{},
		dirs:   map[string]bool{},
		synced: map[string]*memFile{},
	}
}

// SetCrashAt arms a crash at the n-th state-changing operation from now
// (1 = the very next one). n <= 0 disarms.
func (f *FaultFS) SetCrashAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		f.crashAt = 0
		return
	}
	f.crashAt = f.ops + n
}

// OpCount reports how many state-changing operations have executed (or
// been refused by the crash) so far.
func (f *FaultFS) OpCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the armed crash point has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// InjectFailures arms a transient fault window: the next n state-changing
// operations fail with ErrInjected, after which operations succeed again.
// Unlike SetCrashAt nothing is lost and nothing stays broken — this is the
// hiccuping-device model the WAL retry/backoff path must absorb. n <= 0
// clears the window.
func (f *FaultFS) InjectFailures(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		f.injectN = 0
		return
	}
	f.injectN = n
}

// InjectedCount reports how many operations have failed with ErrInjected.
func (f *FaultFS) InjectedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// SetOpDelay stalls every subsequent Write and Sync by d before it
// executes — the I/O-latency injection used by the chaos harness to model
// a saturated or failing device. d <= 0 clears the stall.
func (f *FaultFS) SetOpDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	f.opDelayNs.Store(int64(d))
}

// stall sleeps out the configured op delay. Called before taking f.mu so a
// slow operation does not serialize unrelated ones.
func (f *FaultFS) stall() {
	if d := f.opDelayNs.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// step counts a state-changing operation and returns the error it must
// fail with: ErrCrashed at and after the armed crash point, ErrInjected
// while a transient fault window is open, nil otherwise. Callers hold f.mu.
func (f *FaultFS) step() error {
	if f.crashed {
		return ErrCrashed
	}
	f.ops++
	if f.crashAt > 0 && f.ops >= f.crashAt {
		f.crashed = true
		return ErrCrashed
	}
	if f.injectN > 0 {
		f.injectN--
		f.injected++
		return ErrInjected
	}
	return nil
}

func (f *FaultFS) Create(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return nil, err
	}
	mf := &memFile{}
	f.files[name] = mf
	f.pending = append(f.pending, dirOp{kind: "create", name: name, file: mf})
	return &faultHandle{fs: f, mf: mf, name: name, writable: true}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	mf, ok := f.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &faultHandle{fs: f, mf: mf, name: name}, nil
}

func (f *FaultFS) Rename(oldName, newName string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	mf, ok := f.files[oldName]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldName, Err: os.ErrNotExist}
	}
	delete(f.files, oldName)
	f.files[newName] = mf
	f.pending = append(f.pending, dirOp{kind: "rename", name: oldName, to: newName})
	return nil
}

func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	if _, ok := f.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(f.files, name)
	f.pending = append(f.pending, dirOp{kind: "remove", name: name})
	return nil
}

func (f *FaultFS) List(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	if !f.dirs[filepath.Clean(dir)] {
		return nil, &os.PathError{Op: "open", Path: dir, Err: os.ErrNotExist}
	}
	prefix := filepath.Clean(dir) + string(filepath.Separator)
	var names []string
	for name := range f.files { //wqrtq:unordered sorted below before returning
		if strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], string(filepath.Separator)) {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (f *FaultFS) MkdirAll(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	// Directory creation is modeled as immediately durable: every real
	// workload mkdirs once at startup long before any crash of interest.
	f.dirs[filepath.Clean(dir)] = true
	return nil
}

func (f *FaultFS) SyncDir(string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	// All files share one logical directory for durability purposes; the
	// engine keeps everything in a single data dir.
	f.synced = make(map[string]*memFile, len(f.files))
	for name, mf := range f.files { //wqrtq:unordered map snapshot copy, no ordering observable
		f.synced[name] = mf
	}
	f.pending = nil
	return nil
}

func (f *FaultFS) Size(name string) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	mf, ok := f.files[name]
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(mf.data)), nil
}

// FlipBit flips one bit of name's current content in place (both the
// durable and volatile view, since they share storage) — the bit-rot
// injection used by the corruption-detection tests.
func (f *FaultFS) FlipBit(name string, bit int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	mf, ok := f.files[name]
	if !ok {
		return &os.PathError{Op: "flipbit", Path: name, Err: os.ErrNotExist}
	}
	if bit < 0 || bit >= int64(len(mf.data))*8 {
		return fmt.Errorf("storage: bit %d out of range for %s (%d bytes)", bit, name, len(mf.data))
	}
	mf.data[bit/8] ^= 1 << (bit % 8)
	return nil
}

// Reboot returns the filesystem a process restarted after the crash would
// observe: the last-synced namespace plus a seeded-random prefix of the
// pending namespace ops, with each file's un-synced byte tail dropped,
// truncated to a random prefix, or overwritten with garbage. The result
// is fully durable (nothing volatile) and has no crash armed. Reboot is
// valid whether or not a crash fired — on a clean FS it simulates a
// power cut "right now".
func (f *FaultFS) Reboot(seed int64) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	rng := rand.New(rand.NewSource(seed))

	// Survive a prefix of the pending namespace operations.
	ns := make(map[string]*memFile, len(f.synced))
	for name, mf := range f.synced { //wqrtq:unordered map copy, no ordering observable
		ns[name] = mf
	}
	keep := rng.Intn(len(f.pending) + 1)
	for _, op := range f.pending[:keep] {
		switch op.kind {
		case "create":
			ns[op.name] = op.file
		case "rename":
			if mf, ok := ns[op.name]; ok {
				delete(ns, op.name)
				ns[op.to] = mf
			}
		case "remove":
			delete(ns, op.name)
		}
	}

	out := NewFaultFS()
	for d := range f.dirs { //wqrtq:unordered set copy, no ordering observable
		out.dirs[d] = true
	}
	// Deterministic iteration so a given seed reproduces byte-for-byte.
	names := make([]string, 0, len(ns))
	for name := range ns { //wqrtq:unordered collected then sorted for determinism
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mf := ns[name]
		data := append([]byte(nil), mf.data[:mf.syncedLen]...)
		if tail := len(mf.data) - mf.syncedLen; tail > 0 {
			switch rng.Intn(3) {
			case 0: // drop the un-synced tail entirely
			case 1: // an arbitrary prefix of the tail made it to disk
				data = append(data, mf.data[mf.syncedLen:mf.syncedLen+rng.Intn(tail+1)]...)
			case 2: // torn sector: some prefix survives, then garbage
				good := rng.Intn(tail + 1)
				data = append(data, mf.data[mf.syncedLen:mf.syncedLen+good]...)
				junk := make([]byte, rng.Intn(tail-good+1))
				rng.Read(junk)
				data = append(data, junk...)
			}
		}
		nf := &memFile{data: data, syncedLen: len(data)}
		out.files[name] = nf
		out.synced[name] = nf
	}
	return out
}

// Files returns the live file names, sorted — for test assertions.
func (f *FaultFS) Files() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.files))
	for name := range f.files { //wqrtq:unordered collected then sorted
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Bytes returns a copy of name's live content.
func (f *FaultFS) Bytes(name string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mf, ok := f.files[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), mf.data...), true
}

// DumpTo writes the live view of every file into dir on the real
// filesystem — used by CI to attach the simulated data directory as an
// artifact when a fault-injection test fails.
func (f *FaultFS) DumpTo(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for name, mf := range f.files { //wqrtq:unordered independent file writes, order immaterial
		dst := filepath.Join(dir, filepath.Base(filepath.Dir(name))+"_"+filepath.Base(name))
		if err := os.WriteFile(dst, mf.data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// faultHandle is one open handle; the read offset is per handle, the
// content is shared through mf under fs.mu.
type faultHandle struct {
	fs       *FaultFS
	mf       *memFile
	name     string
	writable bool
	rpos     int
	closed   bool
}

func (h *faultHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	if h.rpos >= len(h.mf.data) {
		return 0, io.EOF
	}
	n := copy(p, h.mf.data[h.rpos:])
	h.rpos += n
	return n, nil
}

func (h *faultHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	if off < 0 || off > int64(len(h.mf.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.mf.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *faultHandle) Write(p []byte) (int, error) {
	h.fs.stall()
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	if !h.writable {
		return 0, errors.New("storage: file opened read-only")
	}
	if err := h.fs.step(); err != nil {
		return 0, err
	}
	h.mf.data = append(h.mf.data, p...)
	return len(p), nil
}

func (h *faultHandle) Sync() error {
	h.fs.stall()
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	if err := h.fs.step(); err != nil {
		return err
	}
	h.mf.syncedLen = len(h.mf.data)
	return nil
}

// Close never counts as a fault site: a crashed process's handles are
// simply gone, and making Close fail would only wedge cleanup paths.
func (h *faultHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
