package storage

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// exercise runs an identical workload against any FS so the OS and fault
// implementations are held to the same contract.
func exercise(t *testing.T, fs FS, dir string) {
	t.Helper()
	if err := fs.MkdirAll(dir); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	name := filepath.Join(dir, "a.bin")
	f, err := fs.Create(name)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}

	sz, err := fs.Size(name)
	if err != nil || sz != 11 {
		t.Fatalf("Size = %d, %v; want 11, nil", sz, err)
	}
	r, err := fs.Open(name)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	buf := make([]byte, 5)
	if n, err := r.ReadAt(buf, 6); err != nil || string(buf[:n]) != "world" {
		t.Fatalf("ReadAt = %q, %v", buf[:n], err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	newName := filepath.Join(dir, "b.bin")
	if err := fs.Rename(name, newName); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	names, err := fs.List(dir)
	if err != nil || len(names) != 1 || names[0] != "b.bin" {
		t.Fatalf("List = %v, %v; want [b.bin]", names, err)
	}
	if err := fs.Remove(newName); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := fs.Open(newName); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Open after Remove: err = %v, want ErrNotExist", err)
	}
}

func TestOSFSContract(t *testing.T) {
	exercise(t, OS(), filepath.Join(t.TempDir(), "d"))
}

func TestFaultFSContract(t *testing.T) {
	exercise(t, NewFaultFS(), "d")
}

func TestFaultFSSyncedBytesSurviveReboot(t *testing.T) {
	fs := NewFaultFS()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("d/f")
	f.Write([]byte("durable"))
	f.Sync()
	f.Write([]byte("-volatile"))
	fs.SyncDir("d")

	for seed := int64(0); seed < 20; seed++ {
		after := fs.Reboot(seed)
		got, ok := after.Bytes("d/f")
		if !ok {
			t.Fatalf("seed %d: file lost despite SyncDir", seed)
		}
		if !bytes.HasPrefix(got, []byte("durable")) {
			t.Fatalf("seed %d: synced prefix damaged: %q", seed, got)
		}
		if len(got) > len("durable-volatile") {
			t.Fatalf("seed %d: file grew past written length: %q", seed, got)
		}
	}
}

func TestFaultFSUnsyncedCreateMayVanish(t *testing.T) {
	fs := NewFaultFS()
	fs.MkdirAll("d")
	f, _ := fs.Create("d/f")
	f.Write([]byte("x"))
	f.Sync()
	// No SyncDir: the create op is volatile.
	vanished, survived := false, false
	for seed := int64(0); seed < 50; seed++ {
		_, ok := fs.Reboot(seed).Bytes("d/f")
		if ok {
			survived = true
		} else {
			vanished = true
		}
	}
	if !vanished || !survived {
		t.Fatalf("un-synced create should sometimes vanish and sometimes survive; vanished=%v survived=%v",
			vanished, survived)
	}
}

func TestFaultFSRenameAtomicity(t *testing.T) {
	fs := NewFaultFS()
	fs.MkdirAll("d")
	f, _ := fs.Create("d/tmp")
	f.Write([]byte("payload"))
	f.Sync()
	fs.SyncDir("d")
	if err := fs.Rename("d/tmp", "d/final"); err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 30; seed++ {
		after := fs.Reboot(seed)
		_, hasTmp := after.Bytes("d/tmp")
		_, hasFinal := after.Bytes("d/final")
		if hasTmp == hasFinal {
			t.Fatalf("seed %d: rename must be atomic: tmp=%v final=%v", seed, hasTmp, hasFinal)
		}
		if hasFinal {
			got, _ := after.Bytes("d/final")
			if string(got) != "payload" {
				t.Fatalf("seed %d: renamed content damaged: %q", seed, got)
			}
		}
	}
}

func TestFaultFSCrashAtSweep(t *testing.T) {
	// The workload performs a deterministic op sequence; crashing at every
	// op index must fail exactly the armed op and everything after.
	workload := func(fs FS) error {
		if err := fs.MkdirAll("d"); err != nil {
			return err
		}
		f, err := fs.Create("d/f") // op 1
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("abc")); err != nil { // op 2
			return err
		}
		if err := f.Sync(); err != nil { // op 3
			return err
		}
		if err := fs.SyncDir("d"); err != nil { // op 4
			return err
		}
		return fs.Rename("d/f", "d/g") // op 5
	}
	clean := NewFaultFS()
	if err := workload(clean); err != nil {
		t.Fatalf("fault-free workload: %v", err)
	}
	total := clean.OpCount()
	if total != 5 {
		t.Fatalf("op count = %d, want 5", total)
	}
	for at := 1; at <= total; at++ {
		fs := NewFaultFS()
		fs.SetCrashAt(at)
		err := workload(fs)
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crashAt=%d: err = %v, want ErrCrashed", at, err)
		}
		if !fs.Crashed() {
			t.Fatalf("crashAt=%d: crash did not fire", at)
		}
	}
	// Crash beyond the workload: everything succeeds.
	fs := NewFaultFS()
	fs.SetCrashAt(total + 1)
	if err := workload(fs); err != nil {
		t.Fatalf("crashAt=%d (past end): %v", total+1, err)
	}
}

func TestFaultFSFlipBit(t *testing.T) {
	fs := NewFaultFS()
	fs.MkdirAll("d")
	f, _ := fs.Create("d/f")
	f.Write([]byte{0x00})
	if err := fs.FlipBit("d/f", 3); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.Bytes("d/f")
	if got[0] != 0x08 {
		t.Fatalf("byte = %#x, want 0x08", got[0])
	}
	if err := fs.FlipBit("d/f", 8); err == nil {
		t.Fatal("out-of-range bit flip should error")
	}
}
