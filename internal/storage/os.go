package storage

import (
	"os"
	"sort"
)

// OS returns an FS backed by the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) Rename(oldName, newName string) error { return os.Rename(oldName, newName) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is advisory on some platforms; an EINVAL-style
	// failure here must not take the engine down, so only close errors
	// from a successful sync propagate.
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

func (osFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
