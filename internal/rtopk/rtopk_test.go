package rtopk

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wqrtq/internal/rtree"
	"wqrtq/internal/vec"
)

func paperPoints() []vec.Point {
	return []vec.Point{
		{2, 1}, {6, 3}, {1, 9}, {9, 3}, {7, 5}, {5, 8}, {3, 7},
	}
}

func paperWeights() []vec.Weight {
	return []vec.Weight{
		{0.9, 0.1}, // w1 Julia
		{0.5, 0.5}, // w2 Tony
		{0.3, 0.7}, // w3 Anna
		{0.1, 0.9}, // w4 Kevin
	}
}

func randPoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float64() * 10
		}
		pts[i] = p
	}
	return pts
}

func randWeight(r *rand.Rand, d int) vec.Weight {
	w := make(vec.Weight, d)
	s := 0.0
	for i := range w {
		w[i] = r.Float64() + 1e-3
		s += w[i]
	}
	for i := range w {
		w[i] /= s
	}
	return w
}

func TestBichromaticPaperExample(t *testing.T) {
	// §1/§3: BRTOP3(q) = {w2 (Tony), w3 (Anna)}; Kevin and Julia are missing.
	tr := rtree.Bulk(paperPoints(), nil, rtree.Options{PageSize: 128})
	q := vec.Point{4, 4}
	got, stats := Bichromatic(tr, paperWeights(), q, 3)
	want := []int{1, 2}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("BRTOP3 = %v, want %v", got, want)
	}
	if stats.Evaluated+stats.Pruned != 4 {
		t.Errorf("stats %+v do not cover all 4 vectors", stats)
	}
	missing := WhyNotCandidates(paperWeights(), got)
	if len(missing) != 2 || missing[0] != 0 || missing[1] != 3 {
		t.Errorf("why-not candidates = %v, want [0 3] (Julia, Kevin)", missing)
	}
}

func TestBichromaticAgainstNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		d := 2 + r.Intn(3)
		pts := randPoints(r, n, d)
		tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 256})
		q := randPoints(r, 1, d)[0]
		k := 1 + r.Intn(10)
		m := 1 + r.Intn(40)
		W := make([]vec.Weight, m)
		for i := range W {
			W[i] = randWeight(r, d)
		}
		got, _ := Bichromatic(tr, W, q, k)
		want := BichromaticNaive(pts, W, q, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBichromaticPruningHappens(t *testing.T) {
	// Many similar vectors under which q ranks poorly: the threshold buffer
	// should prune most evaluations.
	r := rand.New(rand.NewSource(12))
	pts := randPoints(r, 5000, 2)
	tr := rtree.Bulk(pts, nil)
	q := vec.Point{9.5, 9.5} // dominated by nearly everything
	W := make([]vec.Weight, 200)
	for i := range W {
		lam := 0.3 + 0.4*float64(i)/200
		W[i] = vec.Weight{lam, 1 - lam}
	}
	got, stats := Bichromatic(tr, W, q, 10)
	if len(got) != 0 {
		t.Fatalf("expected empty result, got %v", got)
	}
	if stats.Pruned == 0 {
		t.Error("expected buffer pruning to trigger")
	}
	if stats.Evaluated+stats.Pruned != len(W) {
		t.Errorf("stats %+v do not cover all vectors", stats)
	}
}

func TestMonochromatic2DPaperExample(t *testing.T) {
	// Figure 2(b): MRTOP3(q) is the segment between B(1/6, 5/6) and
	// C(3/4, 1/4), i.e. λ ∈ [1/6, 3/4] with w = (λ, 1-λ).
	got := Monochromatic2D(paperPoints(), vec.Point{4, 4}, 3)
	if len(got) != 1 {
		t.Fatalf("intervals = %v, want one interval", got)
	}
	if math.Abs(got[0].Lo-1.0/6) > 1e-9 || math.Abs(got[0].Hi-3.0/4) > 1e-9 {
		t.Errorf("interval = [%v, %v], want [1/6, 3/4]", got[0].Lo, got[0].Hi)
	}
	// The paper's example why-not vectors (1/10, 9/10) and (4/5, 1/5) fall
	// outside the result.
	for _, lam := range []float64{0.1, 0.8} {
		if got[0].Lo <= lam && lam <= got[0].Hi {
			t.Errorf("λ=%v unexpectedly inside MRTOP3", lam)
		}
	}
}

func TestMonochromatic2DAgainstGridQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		pts := randPoints(r, n, 2)
		q := randPoints(r, 1, 2)[0]
		k := 1 + r.Intn(8)
		ivs := Monochromatic2D(pts, q, k)
		inside := func(lam float64) bool {
			for _, iv := range ivs {
				if iv.Lo <= lam && lam <= iv.Hi {
					return true
				}
			}
			return false
		}
		// Dense grid evaluation must agree except within eps of breakpoints.
		const steps = 400
		for s := 0; s <= steps; s++ {
			lam := float64(s) / steps
			want := MonoRank(pts, q, lam) <= k
			got := inside(lam)
			if got != want {
				// Tolerate grid points that sit essentially on an interval
				// boundary.
				nearEdge := false
				for _, iv := range ivs {
					if math.Abs(lam-iv.Lo) < 1e-9 || math.Abs(lam-iv.Hi) < 1e-9 {
						nearEdge = true
					}
				}
				if !nearEdge {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMonochromatic2DWholeRange(t *testing.T) {
	// q dominates everything: the whole weighting space qualifies.
	pts := []vec.Point{{5, 5}, {6, 7}, {8, 2}}
	got := Monochromatic2D(pts, vec.Point{1, 1}, 1)
	if len(got) != 1 || got[0].Lo != 0 || got[0].Hi != 1 {
		t.Errorf("intervals = %v, want [[0,1]]", got)
	}
	// q dominated by k points everywhere: empty result.
	got = Monochromatic2D(pts, vec.Point{9, 9}, 1)
	if len(got) != 0 {
		t.Errorf("intervals = %v, want empty", got)
	}
}

func TestMonochromatic2DTieHandling(t *testing.T) {
	// A point identical to q ties everywhere and never excludes q.
	pts := []vec.Point{{4, 4}, {1, 1}}
	got := Monochromatic2D(pts, vec.Point{4, 4}, 2)
	if len(got) != 1 || got[0].Lo != 0 || got[0].Hi != 1 {
		t.Errorf("intervals = %v, want [[0,1]]", got)
	}
	// With k=1 only the dominating point counts; q still ties itself.
	got = Monochromatic2D(pts, vec.Point{4, 4}, 1)
	if len(got) != 0 {
		t.Errorf("intervals = %v, want empty (p=(1,1) always beats q)", got)
	}
}

func TestMonochromatic2DRejectsBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-2D input")
		}
	}()
	Monochromatic2D([]vec.Point{{1, 2, 3}}, vec.Point{1, 2, 3}, 1)
}

func TestWhyNotCandidatesEmptyResult(t *testing.T) {
	W := paperWeights()
	got := WhyNotCandidates(W, nil)
	if len(got) != len(W) {
		t.Errorf("all vectors should be why-not candidates, got %v", got)
	}
}

func TestMonochromaticSampleMatches2DExact(t *testing.T) {
	// The Monte Carlo estimate of the result's measure must match the total
	// interval length of the exact 2-D algorithm.
	pts := paperPoints()
	tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 128})
	q := vec.Point{4, 4}
	exact := Monochromatic2D(pts, q, 3)
	want := 0.0
	for _, iv := range exact {
		want += iv.Hi - iv.Lo
	}
	rng := rand.New(rand.NewSource(5))
	witnesses, frac := MonochromaticSample(tr, q, 3, 4000, rng)
	if math.Abs(frac-want) > 0.03 {
		t.Errorf("sampled fraction = %v, exact measure = %v", frac, want)
	}
	// Every witness must genuinely contain q in its top-3.
	for _, w := range witnesses[:10] {
		fq := vec.Score(w, q)
		cnt := 0
		for _, p := range pts {
			if vec.Score(w, p) < fq {
				cnt++
			}
		}
		if cnt > 2 {
			t.Fatalf("witness %v has %d better points", w, cnt)
		}
	}
}

func TestMonochromaticSampleHigherDim(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := randPoints(r, 500, 4)
	tr := rtree.Bulk(pts, nil)
	// A very good q: large measure. A very bad q: zero measure.
	good := vec.Point{0.01, 0.01, 0.01, 0.01}
	bad := vec.Point{9.9, 9.9, 9.9, 9.9}
	_, fGood := MonochromaticSample(tr, good, 5, 500, r)
	_, fBad := MonochromaticSample(tr, bad, 5, 500, r)
	if fGood < 0.9 {
		t.Errorf("dominating q has fraction %v, want ~1", fGood)
	}
	if fBad > 0.01 {
		t.Errorf("dominated q has fraction %v, want ~0", fBad)
	}
	if _, f := MonochromaticSample(tr, good, 5, 0, r); f != 0 {
		t.Errorf("samples=0 returned fraction %v", f)
	}
}

func TestBichromaticParallelMatchesSequentialQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		d := 2 + r.Intn(3)
		pts := randPoints(r, n, d)
		tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 256})
		q := randPoints(r, 1, d)[0]
		k := 1 + r.Intn(10)
		m := 1 + r.Intn(60)
		W := make([]vec.Weight, m)
		for i := range W {
			W[i] = randWeight(r, d)
		}
		want, _ := Bichromatic(tr, W, q, k)
		for _, workers := range []int{1, 3, 8} {
			got, stats, err := BichromaticParallelCtx(context.Background(), tr, W, q, k, workers)
			if err != nil {
				return false
			}
			// The summed per-chunk stats must account for every vector.
			if stats.Evaluated+stats.Pruned != len(W) || stats.CandidateSetSize != tr.Len() {
				return false
			}
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBichromaticParallelEdgeCases(t *testing.T) {
	tr := rtree.Bulk(paperPoints(), nil, rtree.Options{PageSize: 128})
	if got := BichromaticParallel(tr, nil, vec.Point{4, 4}, 3, 4); got != nil {
		t.Errorf("empty W returned %v", got)
	}
	// More workers than vectors.
	got := BichromaticParallel(tr, paperWeights(), vec.Point{4, 4}, 3, 64)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("result = %v, want [1 2]", got)
	}
	// workers <= 0 resolves to GOMAXPROCS.
	got = BichromaticParallel(tr, paperWeights(), vec.Point{4, 4}, 3, 0)
	if len(got) != 2 {
		t.Errorf("workers=0 result = %v", got)
	}
}
