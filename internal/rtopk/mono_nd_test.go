package rtopk

import (
	"math/rand"
	"reflect"
	"testing"

	"wqrtq/internal/cellindex"
	"wqrtq/internal/rtree"
	"wqrtq/internal/sample"
	"wqrtq/internal/skyband"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// monoGrid builds a cell grid over pts the way the Index does: skyband
// cache over a bulk-loaded tree, grid cache over the bands.
func monoGrid(t *testing.T, pts []vec.Point, k int) *cellindex.Grid {
	t.Helper()
	tree := rtree.Bulk(pts, nil)
	g := cellindex.NewCache(skyband.NewCache(tree, nil), len(pts[0]), nil).Grid(k)
	if g == nil {
		t.Fatalf("grid declined for n=%d d=%d k=%d", len(pts), len(pts[0]), k)
	}
	return g
}

// TestMonochromaticNDMatches2D pins the d=2 cell-index arrangement against
// the exact full-dataset sweep: the maximal member intervals must be
// identical — same count, same float endpoints — across random datasets
// including duplicate points (equal scores everywhere, never allowed to
// exclude one another) and points collinear with q in dual space (a == b,
// no breakpoint).
func TestMonochromaticNDMatches2D(t *testing.T) {
	for c := 0; c < 60; c++ {
		rng := rand.New(rand.NewSource(int64(4200 + c)))
		n := 1 + rng.Intn(120)
		k := 1 + rng.Intn(8)
		pts := make([]vec.Point, 0, n+6)
		for i := 0; i < n; i++ {
			pts = append(pts, vec.Point{rng.Float64(), rng.Float64()})
		}
		q := vec.Point{rng.Float64() * 0.8, rng.Float64() * 0.8}
		// Duplicates: repeat an existing point a few times.
		for i := 0; i < 3; i++ {
			pts = append(pts, append(vec.Point(nil), pts[rng.Intn(len(pts))]...))
		}
		// Degenerate collinear dual lines: p - q constant per coordinate
		// (a == b), parallel to q's dual line — no breakpoint exists.
		for i := 0; i < 3; i++ {
			off := rng.Float64() * 0.2
			pts = append(pts, vec.Point{q[0] + off, q[1] + off})
		}
		g := monoGrid(t, pts, k)
		got, cells := MonochromaticND(g, q, k)
		if cells != nil {
			t.Fatalf("case %d: 2-D query returned cells", c)
		}
		want := Monochromatic2D(pts, q, k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d (n=%d k=%d): cell-index intervals %v, sweep %v", c, len(pts), k, got, want)
		}
	}
}

// TestMonochromaticNDWitness3D cross-checks the d=3 cell answer against
// Monte Carlo witnesses: every sampled weighting vector whose top-k
// contains q must lie inside a reported cell's bounds, and every reported
// cell's midpoint decision must agree with a direct top-k membership test
// on the full tree (full cells in particular must verify as members).
func TestMonochromaticNDWitness3D(t *testing.T) {
	for c := 0; c < 12; c++ {
		rng := rand.New(rand.NewSource(int64(5300 + c)))
		n := 40 + rng.Intn(260)
		k := 1 + rng.Intn(8)
		pts := make([]vec.Point, n)
		for i := range pts {
			pts[i] = vec.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		base := pts[rng.Intn(n)]
		q := vec.Point{base[0] * 0.9, base[1] * 0.9, base[2] * 0.9}
		tree := rtree.Bulk(pts, nil)
		g := cellindex.NewCache(skyband.NewCache(tree, nil), 3, nil).Grid(k)
		if g == nil {
			t.Fatalf("case %d: grid declined", c)
		}
		ivs, cells := MonochromaticND(g, q, k)
		if ivs != nil {
			t.Fatalf("case %d: 3-D query returned intervals", c)
		}
		for ci, cell := range cells {
			if len(cell.Lo) != 3 || len(cell.Hi) != 3 {
				t.Fatalf("case %d cell %d: bad bounds %v %v", c, ci, cell.Lo, cell.Hi)
			}
			mid := vec.Weight{
				(cell.Lo[0] + cell.Hi[0]) / 2,
				(cell.Lo[1] + cell.Hi[1]) / 2,
				(cell.Lo[2] + cell.Hi[2]) / 2,
			}
			in := topk.InTopK(tree, mid, q, k)
			if in != cell.MidIn {
				t.Fatalf("case %d cell %d: MidIn=%v but InTopK=%v at %v", c, ci, cell.MidIn, in, mid)
			}
			if cell.Full && !in {
				t.Fatalf("case %d cell %d: full cell with non-member midpoint %v", c, ci, mid)
			}
		}
		in, _ := MonochromaticSample(tree, q, k, 400, rng)
		for _, w := range in {
			if !inReportedCell(cells, w) {
				t.Fatalf("case %d: witness %v (member) outside every reported cell", c, w)
			}
		}
	}
}

// inReportedCell reports whether w lies inside some cell's closed bounds.
func inReportedCell(cells []MonoCell, w vec.Weight) bool {
	for _, c := range cells {
		ok := true
		for j := range w {
			if w[j] < c.Lo[j] || w[j] > c.Hi[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestMonochromaticNDSampleConsistency runs the sampler on 2-D data and
// checks every member sample falls in a reported interval and every
// non-member sample falls in none — the interval form of the witness
// property.
func TestMonochromaticNDSampleConsistency(t *testing.T) {
	for c := 0; c < 10; c++ {
		rng := rand.New(rand.NewSource(int64(6400 + c)))
		n := 20 + rng.Intn(150)
		k := 1 + rng.Intn(6)
		pts := make([]vec.Point, n)
		for i := range pts {
			pts[i] = vec.Point{rng.Float64(), rng.Float64()}
		}
		q := vec.Point{rng.Float64() * 0.6, rng.Float64() * 0.6}
		g := monoGrid(t, pts, k)
		ivs, _ := MonochromaticND(g, q, k)
		tree := rtree.Bulk(pts, nil)
		for s := 0; s < 200; s++ {
			w := sample.RandSimplex(rng, 2)
			lam := w[0]
			inIv := false
			onEdge := false
			for _, iv := range ivs {
				if lam >= iv.Lo && lam <= iv.Hi {
					inIv = true
					if lam == iv.Lo || lam == iv.Hi {
						onEdge = true
					}
				}
			}
			member := topk.InTopK(tree, vec.Weight{lam, 1 - lam}, q, k)
			// Exactly on an interval endpoint the decision is a tie
			// breakpoint; skip the comparison there (measure-zero).
			if onEdge {
				continue
			}
			if member != inIv {
				t.Fatalf("case %d sample %d: λ=%v member=%v but interval containment=%v (ivs %v)",
					c, s, lam, member, inIv, ivs)
			}
		}
	}
}
