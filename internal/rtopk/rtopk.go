// Package rtopk implements reverse top-k queries (Vlachou et al. [31]), the
// query class whose why-not questions WQRTQ answers.
//
// Bichromatic: given a finite weighting-vector set W, return every w ∈ W
// whose top-k result contains the query point q. The implementation follows
// the RTA idea: vectors are evaluated in sorted order and the top-k buffer
// of the previously evaluated vector serves as a pruning threshold — if k
// buffered points already score better than q under the next vector, that
// vector cannot be in the result and no top-k evaluation is needed.
//
// Monochromatic: in two dimensions the weighting space is the segment
// w = (λ, 1-λ), λ ∈ [0, 1], and the result is a union of intervals of λ
// (Figure 2(b) of the paper). The exact solution is computed with a sweep
// over the O(|P|) breakpoints where some point ties with q.
package rtopk

import (
	"context"
	"sort"
	"wqrtq/internal/feq"

	"wqrtq/internal/ctxcheck"
	"wqrtq/internal/kernel"
	"wqrtq/internal/rtree"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// checkInterval is how many weighting vectors the RTA loop examines between
// context polls; each top-k evaluation inside the loop additionally polls on
// its own heap-pop interval.
const checkInterval = 16

// Stats reports the work done by the RTA evaluation.
type Stats struct {
	Evaluated int // vectors that required a top-k evaluation
	Pruned    int // vectors rejected by the buffer threshold
	// CandidateSetSize is the number of indexed points each top-k
	// evaluation ran against: the k-skyband size when the skyband
	// sub-index served the query, the full dataset size otherwise. The
	// caller routing the evaluation fills it in (BichromaticFuncCtx cannot
	// see the backend).
	CandidateSetSize int
}

// Bichromatic returns the indices into W of the weighting vectors whose
// top-k contains q (ties won by q), along with pruning statistics.
func Bichromatic(t *rtree.Tree, W []vec.Weight, q vec.Point, k int) ([]int, Stats) {
	res, stats, _ := BichromaticCtx(context.Background(), t, W, q, k)
	return res, stats
}

// BichromaticCtx is Bichromatic with cooperative cancellation: the RTA loop
// polls ctx every checkInterval vectors, and each underlying top-k
// evaluation polls on its heap loop, so a canceled query unwinds mid-batch.
func BichromaticCtx(ctx context.Context, t *rtree.Tree, W []vec.Weight, q vec.Point, k int) ([]int, Stats, error) {
	res, stats, err := BichromaticFuncCtx(ctx, W, q, k, func(ctx context.Context, w vec.Weight, k int) ([]topk.Result, error) {
		return topk.TopKCtx(ctx, t, w, k)
	})
	stats.CandidateSetSize = t.Len()
	return res, stats, err
}

// TopKFunc computes the global top-k of the dataset under w. It abstracts
// the index backend of the RTA loop: a monolithic R-tree supplies
// topk.TopKCtx, a sharded index supplies a scatter-gather evaluation that
// merges per-shard buffers. The returned slice must be sorted ascending by
// score.
type TopKFunc func(ctx context.Context, w vec.Weight, k int) ([]topk.Result, error)

// BichromaticFuncCtx runs the RTA algorithm over an arbitrary top-k backend.
// Because eval returns the *global* top-k under each evaluated vector, the
// buffer threshold test prunes exactly as in the single-tree algorithm: if k
// globally-buffered points beat q under the next vector, at least k points
// of P beat q and the vector is rejected without an evaluation. Results and
// Stats are therefore identical for every backend that answers top-k over
// the same point set.
func BichromaticFuncCtx(ctx context.Context, W []vec.Weight, q vec.Point, k int, eval TopKFunc) ([]int, Stats, error) {
	var stats Stats
	if len(W) == 0 {
		return nil, stats, ctx.Err()
	}
	tick := ctxcheck.Every(ctx, checkInterval)
	// Evaluate in lexicographic weight order so consecutive vectors are
	// close and the buffer prunes well.
	order := make([]int, len(W))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return vec.Lexicographic(vec.Point(W[order[a]]), vec.Point(W[order[b]])) < 0
	})

	var result []int
	var buffer []topk.Result // top-k of the last fully evaluated vector
	for _, wi := range order {
		if err := tick.Tick(); err != nil {
			return nil, stats, err
		}
		w := W[wi]
		fq := vec.Score(w, q)
		if len(buffer) == k && k > 0 {
			// Threshold test: if every buffered point beats q under w, then
			// at least k points of P beat q, so w is not in the result.
			beats := 0
			//wqrtq:bounded threshold buffer holds at most k results
			for _, b := range buffer {
				if vec.Score(w, b.Point) < fq {
					beats++
				}
			}
			if beats >= k {
				stats.Pruned++
				continue
			}
		}
		stats.Evaluated++
		res, err := eval(ctx, w, k)
		if err != nil {
			return nil, stats, err
		}
		buffer = res
		if len(res) < k || res[k-1].Score >= fq {
			// Fewer than k points, or the k-th best does not strictly beat
			// q: q is within the top-k (q wins ties, Definition 2).
			result = append(result, wi)
		}
	}
	sort.Ints(result)
	return result, stats, nil
}

// BichromaticNaive evaluates every vector independently by linear scan;
// ground truth for tests and the ablation baseline for benchmarks.
func BichromaticNaive(points []vec.Point, W []vec.Weight, q vec.Point, k int) []int {
	var result []int
	for wi, w := range W {
		if topk.RankNaive(points, w, vec.Score(w, q)) <= k {
			result = append(result, wi)
		}
	}
	return result
}

// WhyNotCandidates returns the indices of W absent from the reverse top-k
// result — the vectors eligible as why-not weighting vectors for WQBQ
// (Definition 5 requires Wm ⊆ W \ BRTOPk(q)).
func WhyNotCandidates(W []vec.Weight, result []int) []int {
	in := make(map[int]bool, len(result))
	for _, i := range result {
		in[i] = true
	}
	var out []int
	for i := range W {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}

// Interval is a closed range [Lo, Hi] of the first weight component λ, with
// the second component 1-λ, describing part of a 2-D monochromatic result.
type Interval struct {
	Lo, Hi float64
}

// Monochromatic2D computes the exact monochromatic reverse top-k result for
// a 2-dimensional dataset: the maximal intervals of λ (with w = (λ, 1-λ))
// whose top-k contains q. Intervals with empty interior are not reported.
//
// q's rank is constant on each open segment between consecutive
// breakpoints (the λ values where some point ties with q), so the answer
// is a union of such segments. Membership of each segment is decided by
// evaluating the actual strict-beat count at the segment's midpoint — the
// same arithmetic MonoRank performs — rather than by accumulating the
// analytically derived ±1 coverage deltas of a sweep. The sweep was
// cheaper but fragile: a breakpoint is the root of f(w,p) = f(w,q) rounded
// to one float64, and on grid-quantized data the rounded root's
// re-evaluated tie could break either way, letting the event arithmetic
// drift from what score evaluation at any concrete λ reports. Midpoint
// evaluation makes the answer agree with MonoRank at every segment
// midpoint by construction. The counts run through the blocked scoring
// kernel — all segment midpoints are scored against the flattened point
// set in BlockSize sweeps — so the robust evaluation stays cheap: O(n·s/B)
// memory passes for s segments instead of the sweep's O(n log n), with the
// point image read once per B midpoints.
func Monochromatic2D(points []vec.Point, q vec.Point, k int) []Interval {
	if len(q) != 2 {
		panic("rtopk: Monochromatic2D requires 2-dimensional data")
	}
	// Breakpoints: λ* = b/(b-a) per point with a = p[0]-q[0], b = p[1]-q[1]
	// (a != b), kept when strictly inside (0, 1).
	lams := make([]float64, 0, len(points)+2)
	for _, p := range points {
		a := p[0] - q[0]
		b := p[1] - q[1]
		if feq.Eq(a, b) {
			continue
		}
		if lam := b / (b - a); lam > 0 && lam < 1 {
			lams = append(lams, lam)
		}
	}
	sort.Float64s(lams)
	// Segment boundaries: 0, the distinct breakpoints, 1.
	bounds := make([]float64, 0, len(lams)+2)
	bounds = append(bounds, 0)
	for _, lam := range lams {
		if feq.Ne(lam, bounds[len(bounds)-1]) {
			bounds = append(bounds, lam)
		}
	}
	if feq.Ne(bounds[len(bounds)-1], 1) {
		bounds = append(bounds, 1)
	}

	// Score every segment midpoint through the blocked kernel.
	sc := kernel.GetScratch()
	defer kernel.PutScratch(sc)
	sc.Uni.Fill(2, len(points), func(i int) []float64 { return points[i] })
	nSeg := len(bounds) - 1
	mids := make([]float64, nSeg)
	fqs := make([]float64, nSeg)
	counts := make([]int, nSeg)
	for i := 0; i < nSeg; i++ {
		mid := (bounds[i] + bounds[i+1]) / 2
		mids[i] = mid
		// f(w, q) with w = (mid, 1-mid), in vec.Score order.
		fq := mid * q[0]
		fq += (1 - mid) * q[1]
		fqs[i] = fq
	}
	var wpair [2]float64
	kernel.CountBelowWeights(&sc.Uni, nSeg, func(i int) []float64 {
		wpair[0] = mids[i]
		wpair[1] = 1 - mids[i]
		return wpair[:]
	}, fqs, counts, sc, nil)

	// Merge consecutive member segments (count < k ⇔ rank <= k, ties won
	// by q) into maximal closed intervals; single-breakpoint memberships
	// between two non-member segments have empty interior and are not
	// representable, matching the documented contract.
	var out []Interval
	for i := 0; i < nSeg; i++ {
		if counts[i] >= k {
			continue
		}
		if n := len(out); n > 0 && feq.Eq(out[n-1].Hi, bounds[i]) {
			out[n-1].Hi = bounds[i+1]
		} else {
			out = append(out, Interval{Lo: bounds[i], Hi: bounds[i+1]})
		}
	}
	return out
}

// MonoRank returns the rank of q at a specific λ in a 2-D dataset; exposed
// for verifying Monochromatic2D against direct evaluation.
func MonoRank(points []vec.Point, q vec.Point, lam float64) int {
	w := vec.Weight{lam, 1 - lam}
	return topk.RankNaive(points, w, vec.Score(w, q))
}
