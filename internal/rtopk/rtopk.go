// Package rtopk implements reverse top-k queries (Vlachou et al. [31]), the
// query class whose why-not questions WQRTQ answers.
//
// Bichromatic: given a finite weighting-vector set W, return every w ∈ W
// whose top-k result contains the query point q. The implementation follows
// the RTA idea: vectors are evaluated in sorted order and the top-k buffer
// of the previously evaluated vector serves as a pruning threshold — if k
// buffered points already score better than q under the next vector, that
// vector cannot be in the result and no top-k evaluation is needed.
//
// Monochromatic: in two dimensions the weighting space is the segment
// w = (λ, 1-λ), λ ∈ [0, 1], and the result is a union of intervals of λ
// (Figure 2(b) of the paper). The exact solution is computed with a sweep
// over the O(|P|) breakpoints where some point ties with q.
package rtopk

import (
	"context"
	"sort"

	"wqrtq/internal/ctxcheck"
	"wqrtq/internal/rtree"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// checkInterval is how many weighting vectors the RTA loop examines between
// context polls; each top-k evaluation inside the loop additionally polls on
// its own heap-pop interval.
const checkInterval = 16

// Stats reports the work done by the RTA evaluation.
type Stats struct {
	Evaluated int // vectors that required a top-k evaluation
	Pruned    int // vectors rejected by the buffer threshold
	// CandidateSetSize is the number of indexed points each top-k
	// evaluation ran against: the k-skyband size when the skyband
	// sub-index served the query, the full dataset size otherwise. The
	// caller routing the evaluation fills it in (BichromaticFuncCtx cannot
	// see the backend).
	CandidateSetSize int
}

// Bichromatic returns the indices into W of the weighting vectors whose
// top-k contains q (ties won by q), along with pruning statistics.
func Bichromatic(t *rtree.Tree, W []vec.Weight, q vec.Point, k int) ([]int, Stats) {
	res, stats, _ := BichromaticCtx(context.Background(), t, W, q, k)
	return res, stats
}

// BichromaticCtx is Bichromatic with cooperative cancellation: the RTA loop
// polls ctx every checkInterval vectors, and each underlying top-k
// evaluation polls on its heap loop, so a canceled query unwinds mid-batch.
func BichromaticCtx(ctx context.Context, t *rtree.Tree, W []vec.Weight, q vec.Point, k int) ([]int, Stats, error) {
	res, stats, err := BichromaticFuncCtx(ctx, W, q, k, func(ctx context.Context, w vec.Weight, k int) ([]topk.Result, error) {
		return topk.TopKCtx(ctx, t, w, k)
	})
	stats.CandidateSetSize = t.Len()
	return res, stats, err
}

// TopKFunc computes the global top-k of the dataset under w. It abstracts
// the index backend of the RTA loop: a monolithic R-tree supplies
// topk.TopKCtx, a sharded index supplies a scatter-gather evaluation that
// merges per-shard buffers. The returned slice must be sorted ascending by
// score.
type TopKFunc func(ctx context.Context, w vec.Weight, k int) ([]topk.Result, error)

// BichromaticFuncCtx runs the RTA algorithm over an arbitrary top-k backend.
// Because eval returns the *global* top-k under each evaluated vector, the
// buffer threshold test prunes exactly as in the single-tree algorithm: if k
// globally-buffered points beat q under the next vector, at least k points
// of P beat q and the vector is rejected without an evaluation. Results and
// Stats are therefore identical for every backend that answers top-k over
// the same point set.
func BichromaticFuncCtx(ctx context.Context, W []vec.Weight, q vec.Point, k int, eval TopKFunc) ([]int, Stats, error) {
	var stats Stats
	if len(W) == 0 {
		return nil, stats, ctx.Err()
	}
	tick := ctxcheck.Every(ctx, checkInterval)
	// Evaluate in lexicographic weight order so consecutive vectors are
	// close and the buffer prunes well.
	order := make([]int, len(W))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return vec.Lexicographic(vec.Point(W[order[a]]), vec.Point(W[order[b]])) < 0
	})

	var result []int
	var buffer []topk.Result // top-k of the last fully evaluated vector
	for _, wi := range order {
		if err := tick.Tick(); err != nil {
			return nil, stats, err
		}
		w := W[wi]
		fq := vec.Score(w, q)
		if len(buffer) == k && k > 0 {
			// Threshold test: if every buffered point beats q under w, then
			// at least k points of P beat q, so w is not in the result.
			beats := 0
			for _, b := range buffer {
				if vec.Score(w, b.Point) < fq {
					beats++
				}
			}
			if beats >= k {
				stats.Pruned++
				continue
			}
		}
		stats.Evaluated++
		res, err := eval(ctx, w, k)
		if err != nil {
			return nil, stats, err
		}
		buffer = res
		if len(res) < k || res[k-1].Score >= fq {
			// Fewer than k points, or the k-th best does not strictly beat
			// q: q is within the top-k (q wins ties, Definition 2).
			result = append(result, wi)
		}
	}
	sort.Ints(result)
	return result, stats, nil
}

// BichromaticNaive evaluates every vector independently by linear scan;
// ground truth for tests and the ablation baseline for benchmarks.
func BichromaticNaive(points []vec.Point, W []vec.Weight, q vec.Point, k int) []int {
	var result []int
	for wi, w := range W {
		if topk.RankNaive(points, w, vec.Score(w, q)) <= k {
			result = append(result, wi)
		}
	}
	return result
}

// WhyNotCandidates returns the indices of W absent from the reverse top-k
// result — the vectors eligible as why-not weighting vectors for WQBQ
// (Definition 5 requires Wm ⊆ W \ BRTOPk(q)).
func WhyNotCandidates(W []vec.Weight, result []int) []int {
	in := make(map[int]bool, len(result))
	for _, i := range result {
		in[i] = true
	}
	var out []int
	for i := range W {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}

// Interval is a closed range [Lo, Hi] of the first weight component λ, with
// the second component 1-λ, describing part of a 2-D monochromatic result.
type Interval struct {
	Lo, Hi float64
}

// Monochromatic2D computes the exact monochromatic reverse top-k result for
// a 2-dimensional dataset: the maximal intervals of λ (with w = (λ, 1-λ))
// whose top-k contains q. Intervals with empty interior are not reported.
func Monochromatic2D(points []vec.Point, q vec.Point, k int) []Interval {
	if len(q) != 2 {
		panic("rtopk: Monochromatic2D requires 2-dimensional data")
	}
	// For each p: beats(λ) ⇔ f(w,p) < f(w,q) ⇔ b + λ(a-b) < 0 with
	// a = p[0]-q[0], b = p[1]-q[1]. Build +1/-1 coverage events over [0,1].
	type event struct {
		at    float64
		delta int
	}
	var events []event
	baseline := 0 // points beating q on the whole interval
	for _, p := range points {
		a := p[0] - q[0]
		b := p[1] - q[1]
		switch {
		case a == b:
			if a < 0 {
				baseline++
			}
		case a < b:
			// Decreasing g: beats for λ > λ*.
			lam := b / (b - a)
			if lam < 0 {
				baseline++
			} else if lam < 1 {
				events = append(events, event{at: lam, delta: +1})
			}
		default: // a > b, increasing g: beats for λ < λ*.
			lam := b / (b - a)
			if lam > 1 {
				baseline++
			} else if lam > 0 {
				events = append(events, event{at: lam, delta: -1}, event{at: 0, delta: +1})
			}
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })

	// Sweep the open segments between consecutive breakpoints.
	var out []Interval
	count := baseline
	prev := 0.0
	flush := func(lo, hi float64, c int) {
		if hi <= lo {
			return
		}
		if c <= k-1 {
			if n := len(out); n > 0 && out[n-1].Hi == lo {
				out[n-1].Hi = hi
			} else {
				out = append(out, Interval{Lo: lo, Hi: hi})
			}
		}
	}
	i := 0
	for i < len(events) {
		at := events[i].at
		flush(prev, at, count)
		for i < len(events) && events[i].at == at {
			count += events[i].delta
			i++
		}
		prev = at
	}
	flush(prev, 1, count)
	return out
}

// MonoRank returns the rank of q at a specific λ in a 2-D dataset; exposed
// for verifying Monochromatic2D against direct evaluation.
func MonoRank(points []vec.Point, q vec.Point, lam float64) int {
	w := vec.Weight{lam, 1 - lam}
	return topk.RankNaive(points, w, vec.Score(w, q))
}
