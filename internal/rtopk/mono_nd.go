package rtopk

import (
	"math/rand"
	"sort"
	"wqrtq/internal/feq"

	"wqrtq/internal/cellindex"
	"wqrtq/internal/kernel"
	"wqrtq/internal/rtree"
	"wqrtq/internal/sample"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// MonochromaticSample estimates the monochromatic reverse top-k result for
// arbitrary dimensionality by Monte Carlo evaluation over the weighting
// simplex. Exact monochromatic algorithms are only known for 2-D (Vlachou
// et al. [31], Chester et al. [9], both cited in §2); in higher dimensions
// the result region is an intersection-of-halfspaces arrangement cell
// complex, and the paper itself notes that such geometric computations "do
// not scale well with the dimensionality" (§4.2). Sampling gives an
// unbiased estimate of the result's measure plus a witness set. For exact
// answers through the materialized cell index see MonochromaticND.
//
// It returns the sampled weighting vectors whose top-k contains q, and the
// fraction of samples that qualified (an unbiased estimator of the
// result's share of the weighting simplex under the uniform measure).
func MonochromaticSample(t *rtree.Tree, q vec.Point, k, samples int, rng *rand.Rand) ([]vec.Weight, float64) {
	if samples <= 0 {
		return nil, 0
	}
	d := t.Dim()
	var in []vec.Weight
	for i := 0; i < samples; i++ {
		w := sample.RandSimplex(rng, d)
		if topk.InTopK(t, w, q, k) {
			in = append(in, w)
		}
	}
	return in, float64(len(in)) / float64(samples)
}

// MonoCell is one cell of a d >= 3 monochromatic reverse top-k answer: the
// per-coordinate weight bounds of a simplex-grid cell intersecting the
// result region.
type MonoCell struct {
	// Lo and Hi are the cell's closed per-coordinate weight bounds.
	Lo, Hi []float64
	// Full reports that every weighting vector inside the bounds is in the
	// result (fewer than k candidates can beat q anywhere in the cell);
	// otherwise the cell is partial — the result boundary crosses it.
	Full bool
	// MidIn reports whether the cell midpoint's top-k contains q (always
	// true for full cells; for partial cells it is the kernel-verified
	// sample decision at the center).
	MidIn bool
}

// MonochromaticND answers the monochromatic reverse top-k query exactly
// from a materialized cell index over the snapshot.
//
// For 2-D grids it returns the same maximal λ-intervals as
// Monochromatic2D over the full dataset: segment boundaries are the
// cell-local candidate breakpoints plus the grid's cell edges (membership
// can only change where some cell's candidate ties with q — the cell
// index's count preservation makes every other point's tie irrelevant —
// or across a cell edge, and the edges are in the boundary list), and
// each segment's membership is decided by the same blocked-kernel
// midpoint evaluation, counted over the grid basis.
//
// For d >= 3 it returns the result as grid cells (intervals is nil):
// cells where even the most q-favorable corner comparison leaves fewer
// than k possible beaters (#{fl(f(lo,p)) < fl(f(hi,q))} < k) are Full —
// provably members everywhere; cells where the least favorable one
// already yields k beaters (#{fl(f(hi,p)) < fl(f(lo,q))} >= k) are
// provably empty and omitted; the rest are reported as partial with a
// kernel-verified midpoint decision. Every weighting vector whose top-k
// contains q lies in a reported cell.
func MonochromaticND(g *cellindex.Grid, q vec.Point, k int) ([]Interval, []MonoCell) {
	if g.Dim() == 2 {
		return monoGrid2D(g, q, k), nil
	}
	return nil, monoGridND(g, q, k)
}

// monoGrid2D is Monochromatic2D evaluated through the cell index: same
// breakpoint arithmetic, same midpoint kernel counts, same merge — only
// the breakpoints come from the per-cell candidate lists (plus the cell
// edges) and the counts run over the grid basis instead of the raw
// dataset. Count preservation of the basis band and of the per-cell
// supersets makes every decision pointwise identical.
func monoGrid2D(g *cellindex.Grid, q vec.Point, k int) []Interval {
	res := g.Res()
	lams := make([]float64, 0, g.NumCandidates()+res)
	g.Cells(func(lo, hi []float64, cand [][]float64) {
		x, y := cand[0], cand[1]
		for i := range x {
			a := x[i] - q[0]
			b := y[i] - q[1]
			if feq.Eq(a, b) {
				continue
			}
			if lam := b / (b - a); lam > 0 && lam < 1 {
				lams = append(lams, lam)
			}
		}
	})
	for c := 1; c < res; c++ {
		lams = append(lams, float64(c)/float64(res))
	}
	sort.Float64s(lams)
	bounds := make([]float64, 0, len(lams)+2)
	bounds = append(bounds, 0)
	for _, lam := range lams {
		if feq.Ne(lam, bounds[len(bounds)-1]) {
			bounds = append(bounds, lam)
		}
	}
	if feq.Ne(bounds[len(bounds)-1], 1) {
		bounds = append(bounds, 1)
	}

	sc := kernel.GetScratch()
	defer kernel.PutScratch(sc)
	nSeg := len(bounds) - 1
	mids := make([]float64, nSeg)
	fqs := make([]float64, nSeg)
	counts := make([]int, nSeg)
	for i := 0; i < nSeg; i++ {
		mid := (bounds[i] + bounds[i+1]) / 2
		mids[i] = mid
		fq := mid * q[0]
		fq += (1 - mid) * q[1]
		fqs[i] = fq
	}
	var wpair [2]float64
	kernel.CountBelowWeights(g.Basis(), nSeg, func(i int) []float64 {
		wpair[0] = mids[i]
		wpair[1] = 1 - mids[i]
		return wpair[:]
	}, fqs, counts, sc, nil)

	var out []Interval
	for i := 0; i < nSeg; i++ {
		if counts[i] >= k {
			continue
		}
		if n := len(out); n > 0 && feq.Eq(out[n-1].Hi, bounds[i]) {
			out[n-1].Hi = bounds[i+1]
		} else {
			out = append(out, Interval{Lo: bounds[i], Hi: bounds[i+1]})
		}
	}
	return out
}

// monoGridND classifies every cell of a d >= 3 grid by its corner-score
// bounds. For any w inside a cell and any candidate p, fl(f(w,p)) is
// bracketed by the corner scores fl(f(lo,p)) and fl(f(hi,p)), and
// fl(f(w,q)) by fl(f(lo,q)) and fl(f(hi,q)), so
//
//	#{p : fl(f(hi,p)) < fl(f(lo,q))} <= count(w) <= #{p : fl(f(lo,p)) < fl(f(hi,q))}
//
// everywhere in the cell. Cells whose upper bound stays below k are Full,
// cells whose lower bound reaches k are dropped, and the rest are partial
// with a kernel-verified midpoint decision over the basis.
func monoGridND(g *cellindex.Grid, q vec.Point, k int) []MonoCell {
	d := g.Dim()
	var out []MonoCell
	mid := make([]float64, d)
	g.Cells(func(lo, hi []float64, cand [][]float64) {
		fqLo := vec.Score(vec.Weight(lo), q)
		fqHi := vec.Score(vec.Weight(hi), q)
		upper, lower := 0, 0
		n := len(cand[0])
		for i := 0; i < n; i++ {
			sLo := lo[0] * cand[0][i]
			sHi := hi[0] * cand[0][i]
			for j := 1; j < d; j++ {
				sLo += lo[j] * cand[j][i]
				sHi += hi[j] * cand[j][i]
			}
			if sLo < fqHi {
				upper++
			}
			if sHi < fqLo {
				lower++
			}
		}
		if lower >= k {
			return // provably empty: >= k candidates beat q everywhere here
		}
		cell := MonoCell{
			Lo:   append([]float64(nil), lo...),
			Hi:   append([]float64(nil), hi...),
			Full: upper < k,
		}
		if cell.Full {
			cell.MidIn = true
		} else {
			for j := 0; j < d; j++ {
				mid[j] = (lo[j] + hi[j]) / 2
			}
			fqMid := vec.Score(vec.Weight(mid), q)
			cnt, _ := kernel.CountBelowCapped(g.Basis(), mid, fqMid, k-1)
			cell.MidIn = cnt < k
		}
		out = append(out, cell)
	})
	return out
}
