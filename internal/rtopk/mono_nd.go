package rtopk

import (
	"math/rand"

	"wqrtq/internal/rtree"
	"wqrtq/internal/sample"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// MonochromaticSample estimates the monochromatic reverse top-k result for
// arbitrary dimensionality by Monte Carlo evaluation over the weighting
// simplex. Exact monochromatic algorithms are only known for 2-D (Vlachou
// et al. [31], Chester et al. [9], both cited in §2); in higher dimensions
// the result region is an intersection-of-halfspaces arrangement cell
// complex, and the paper itself notes that such geometric computations "do
// not scale well with the dimensionality" (§4.2). Sampling gives an
// unbiased estimate of the result's measure plus a witness set.
//
// It returns the sampled weighting vectors whose top-k contains q, and the
// fraction of samples that qualified (an unbiased estimator of the
// result's share of the weighting simplex under the uniform measure).
func MonochromaticSample(t *rtree.Tree, q vec.Point, k, samples int, rng *rand.Rand) ([]vec.Weight, float64) {
	if samples <= 0 {
		return nil, 0
	}
	d := t.Dim()
	var in []vec.Weight
	for i := 0; i < samples; i++ {
		w := sample.RandSimplex(rng, d)
		if topk.InTopK(t, w, q, k) {
			in = append(in, w)
		}
	}
	return in, float64(len(in)) / float64(samples)
}
