package rtopk

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"wqrtq/internal/rtree"
	"wqrtq/internal/vec"
)

// BichromaticParallel evaluates a bichromatic reverse top-k query with the
// weighting vectors partitioned across worker goroutines. Each worker runs
// the RTA-style buffered evaluation over its own lexicographically sorted
// chunk, so the buffer-pruning locality is preserved within chunks while
// the wall-clock cost drops by roughly the worker count. The R-tree is
// read-only during evaluation, making the fan-out safe.
//
// Results are identical to Bichromatic (both return sorted indices and
// evaluate the same predicate exactly).
func BichromaticParallel(t *rtree.Tree, W []vec.Weight, q vec.Point, k, workers int) []int {
	res, _, _ := BichromaticParallelCtx(context.Background(), t, W, q, k, workers)
	return res
}

// BichromaticParallelCtx is BichromaticParallel with cooperative
// cancellation: every worker's chunk evaluation polls the shared ctx, so one
// cancellation unwinds the whole fan-out. Stats sum the per-worker chunk
// evaluations (Evaluated + Pruned == len(W), as on the serial path; the
// split buffers prune less than one global pass would).
func BichromaticParallelCtx(ctx context.Context, t *rtree.Tree, W []vec.Weight, q vec.Point, k, workers int) ([]int, Stats, error) {
	if len(W) == 0 {
		return nil, Stats{CandidateSetSize: t.Len()}, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(W) {
		workers = len(W)
	}
	order := make([]int, len(W))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return vec.Lexicographic(vec.Point(W[order[a]]), vec.Point(W[order[b]])) < 0
	})
	chunks := make([][]int, workers)
	per := (len(order) + workers - 1) / workers
	for i := 0; i < workers; i++ {
		lo := i * per
		hi := lo + per
		if hi > len(order) {
			hi = len(order)
		}
		if lo < hi {
			chunks[i] = order[lo:hi]
		}
	}
	results := make([][]int, workers)
	stats := make([]Stats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i, chunk := range chunks {
		if len(chunk) == 0 {
			continue
		}
		wg.Add(1)
		go func(slot int, idxs []int) {
			defer wg.Done()
			sub := make([]vec.Weight, len(idxs))
			for j, wi := range idxs {
				sub[j] = W[wi]
			}
			local, st, err := BichromaticCtx(ctx, t, sub, q, k)
			if err != nil {
				errs[slot] = err
				return
			}
			stats[slot] = st
			out := make([]int, len(local))
			for j, li := range local {
				out[j] = idxs[li]
			}
			results[slot] = out
		}(i, chunk)
	}
	wg.Wait()
	total := Stats{CandidateSetSize: t.Len()}
	for _, st := range stats {
		total.Evaluated += st.Evaluated
		total.Pruned += st.Pruned
	}
	for _, err := range errs {
		if err != nil {
			return nil, total, err
		}
	}
	var merged []int
	for _, r := range results {
		merged = append(merged, r...)
	}
	sort.Ints(merged)
	return merged, total, nil
}
