package rtopk

import (
	"testing"

	"wqrtq/internal/vec"
)

// FuzzMonochromatic2D cross-checks the sweep algorithm against direct rank
// evaluation on arbitrary byte-derived datasets.
func FuzzMonochromatic2D(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50, 60}, uint8(2), uint8(3))
	f.Add([]byte{1, 1, 2, 2, 3, 3, 4, 4}, uint8(1), uint8(5))
	f.Add([]byte{255, 0, 0, 255}, uint8(1), uint8(128))
	f.Fuzz(func(t *testing.T, data []byte, k uint8, qb uint8) {
		if len(data) < 2 || len(data) > 64 {
			t.Skip()
		}
		kk := int(k%8) + 1
		var pts []vec.Point
		for i := 0; i+1 < len(data); i += 2 {
			pts = append(pts, vec.Point{float64(data[i]), float64(data[i+1])})
		}
		q := vec.Point{float64(qb), float64(255 - qb)}
		ivs := Monochromatic2D(pts, q, kk)
		// Validate interval structure.
		prev := -1.0
		for _, iv := range ivs {
			if iv.Lo > iv.Hi || iv.Lo < 0 || iv.Hi > 1 {
				t.Fatalf("malformed interval %+v", iv)
			}
			if iv.Lo <= prev {
				t.Fatalf("intervals not strictly ordered: %v", ivs)
			}
			prev = iv.Hi
			// Midpoint must genuinely qualify.
			mid := (iv.Lo + iv.Hi) / 2
			if MonoRank(pts, q, mid) > kk {
				t.Fatalf("midpoint of %+v does not qualify", iv)
			}
		}
	})
}
