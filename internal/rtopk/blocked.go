package rtopk

import (
	"context"

	"wqrtq/internal/kernel"
	"wqrtq/internal/vec"
)

// CoordsCutoff is the candidate-set size up to which the blocked counting
// evaluation is preferred over the RTA loop: below it, sweeping every
// candidate once per kernel.BlockSize weights costs less than the
// per-vector branch-and-bound top-k evaluations (plus their heap traffic)
// that RTA runs for non-pruned vectors, and the flattened image stays
// cache-resident. The value mirrors core's srcRankCutoff, which draws the
// same linear-scan-vs-tree-descent line for the sampling loops.
const CoordsCutoff = 8192

// BichromaticCoordsCtx answers the bichromatic reverse top-k query by
// blocked counting over a flattened candidate set: w belongs to the result
// iff fewer than k candidates score strictly below f(w, q) (ties won by q,
// Definition 2).
//
// The candidate set must be count-preserving for the query's k — the full
// dataset, or a k-skyband of it: a k-skyband count equals the dataset's
// strict-beat count whenever that count is below k, and is at least k
// whenever the dataset's is (any point with >= k beaters has >= k of them
// inside the k-skyband), so the membership test count < k decides exactly
// as the full dataset would. Results are therefore identical to the RTA
// loop over the same snapshot, while the evaluation is one blocked sweep
// of the candidate columns per kernel.BlockSize weights instead of one
// branch-and-bound top-k per non-pruned vector.
//
// Stats report every vector as evaluated and none pruned: the blocked
// sweep has no threshold buffer — counting all candidates for a block of
// weights is the cheaper operation precisely where the candidate set is
// small, which the caller ensures via CoordsCutoff before routing here.
func BichromaticCoordsCtx(ctx context.Context, c *kernel.Coords, W []vec.Weight, q vec.Point, k int, ct *kernel.Counters) ([]int, Stats, error) {
	var stats Stats
	if len(W) == 0 {
		return nil, stats, ctx.Err()
	}
	stats.Evaluated = len(W)
	sc := kernel.GetScratch()
	defer kernel.PutScratch(sc)
	fqs := make([]float64, len(W))
	counts := make([]int, len(W))
	//wqrtq:bounded one Score per weight; the blocked count sweep below carries ctx
	for i, w := range W {
		fqs[i] = vec.Score(w, q)
	}
	err := kernel.CountBelowWeightsCtx(ctx, c, len(W), func(i int) []float64 { return W[i] }, fqs, counts, sc, ct)
	if err != nil {
		return nil, stats, err
	}
	var result []int
	for i, cnt := range counts {
		if cnt < k {
			result = append(result, i)
		}
	}
	return result, stats, nil
}
