package rtopk

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"wqrtq/internal/cellindex"
	"wqrtq/internal/rtree"
	"wqrtq/internal/sample"
	"wqrtq/internal/skyband"
	"wqrtq/internal/vec"
)

// FuzzCellIndex feeds arbitrary byte-derived points, weights and k through
// the materialized cell index and requires bit-identical reverse top-k
// membership against the RTA oracle over the full tree. The weight set
// mixes simplex samples with adversarial vectors pinned exactly on cell
// edges (dyadic c/res coordinates), where the floor point-location and the
// closed-bounds re-check are most likely to disagree. A whole-query
// fallback (ok=false) is legal; a wrong answer is not.
func FuzzCellIndex(f *testing.F) {
	// Plain spread of points.
	f.Add([]byte{10, 200, 60, 90, 200, 15, 120, 120, 33, 7}, uint8(2), uint8(0))
	// Duplicate points: every pair equal — nothing may exclude its twin.
	f.Add([]byte{50, 50, 50, 50, 50, 50, 50, 50}, uint8(3), uint8(0))
	// Degenerate collinear dual lines: p = q + (c, c) keeps p's dual line
	// parallel to q's (a == b at every λ).
	f.Add([]byte{10, 10, 20, 20, 30, 30, 40, 40, 60, 60}, uint8(1), uint8(0))
	// 3-D with duplicates and a zero point.
	f.Add([]byte{0, 0, 0, 9, 9, 9, 9, 9, 9, 200, 1, 30}, uint8(4), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, kb, db uint8) {
		d := 2 + int(db%2)
		n := len(data) / d
		if n < 1 || n > 64 {
			t.Skip()
		}
		k := int(kb%8) + 1
		pts := make([]vec.Point, n)
		for i := 0; i < n; i++ {
			p := make(vec.Point, d)
			for j := 0; j < d; j++ {
				p[j] = float64(data[i*d+j])
			}
			pts[i] = p
		}
		q := append(vec.Point(nil), pts[n-1]...)
		tree := rtree.Bulk(pts, nil)
		g := cellindex.NewCache(skyband.NewCache(tree, nil), d, nil).Grid(k)
		if g == nil {
			t.Skip() // ineligible configuration — nothing to differentiate
		}
		rng := rand.New(rand.NewSource(int64(kb)*257 + int64(db) + int64(n)))
		W := make([]vec.Weight, 0, 12)
		for i := 0; i < 8; i++ {
			W = append(W, sample.RandSimplex(rng, d))
		}
		res := float64(g.Res())
		for i := 0; i < 4; i++ {
			// Exactly on a cell edge: dyadic first coordinates, remainder
			// on the last. Dyadic sums keep the weight exactly valid.
			w := make(vec.Weight, d)
			rest := 1.0
			for j := 0; j < d-1; j++ {
				c := float64(rng.Intn(int(res) + 1))
				v := c / res
				if v > rest {
					v = rest
				}
				w[j] = v
				rest -= v
			}
			w[d-1] = rest
			W = append(W, w)
		}
		got, _, ok, err := g.ReverseTopK(context.Background(), W, q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return // documented whole-query fallback; the caller would re-run RTA
		}
		want, _, err := BichromaticCtx(context.Background(), tree, W, q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d d=%d k=%d: cell index %v, RTA oracle %v", n, d, k, got, want)
		}
	})
}
