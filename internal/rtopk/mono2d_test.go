package rtopk

import (
	"math/rand"
	"sort"
	"testing"

	"wqrtq/internal/vec"
)

// checkMono2D validates a Monochromatic2D answer structurally and against
// MonoRank: intervals are sorted, disjoint and fully merged (no two
// adjacent intervals share an endpoint — the merge path must have joined
// them), every endpoint is a breakpoint or a domain boundary, membership
// at every interval midpoint implies rank <= k, and the midpoint of every
// segment between consecutive breakpoints agrees exactly with the
// rank-based membership predicate.
//
// The implementation decides each segment by evaluating the strict-beat
// count at the segment midpoint with MonoRank's own arithmetic, so the
// segment-midpoint equivalence below holds by construction and is asserted
// without the endpoint-instability carve-outs this suite used to document
// (the old event sweep derived membership analytically, and re-evaluating
// a rounded breakpoint could break the intended tie either way; midpoints
// of non-degenerate segments are the stable evaluation points). The only
// remaining skip is the fully degenerate case where two breakpoints are so
// close that their float64 midpoint collides with one of them — there is
// no representable λ strictly between them to test.
func checkMono2D(t *testing.T, label string, points []vec.Point, q vec.Point, k int) {
	t.Helper()
	ivs := Monochromatic2D(points, q, k)
	lams := []float64{0, 1}
	for _, p := range points {
		a := p[0] - q[0]
		b := p[1] - q[1]
		if a != b {
			if lam := b / (b - a); lam > 0 && lam < 1 {
				lams = append(lams, lam)
			}
		}
	}
	sort.Float64s(lams)
	isBound := func(x float64) bool {
		for _, lam := range lams {
			if lam == x {
				return true
			}
		}
		return false
	}
	for i, iv := range ivs {
		if !(iv.Lo < iv.Hi) {
			t.Fatalf("%s: interval %d [%v, %v] has empty interior", label, i, iv.Lo, iv.Hi)
		}
		if iv.Lo < 0 || iv.Hi > 1 {
			t.Fatalf("%s: interval %d [%v, %v] outside [0, 1]", label, i, iv.Lo, iv.Hi)
		}
		if !isBound(iv.Lo) || !isBound(iv.Hi) {
			t.Fatalf("%s: interval %d [%v, %v] endpoint is not a breakpoint or domain bound",
				label, i, iv.Lo, iv.Hi)
		}
		if i > 0 {
			if ivs[i-1].Hi >= iv.Lo {
				t.Fatalf("%s: intervals %d and %d overlap or touch (%v >= %v) — adjacent "+
					"intervals must merge", label, i-1, i, ivs[i-1].Hi, iv.Lo)
			}
		}
		mid := (iv.Lo + iv.Hi) / 2
		if r := MonoRank(points, q, mid); r > k {
			t.Fatalf("%s: λ=%v inside interval %d has rank %d > k=%d", label, mid, i, r, k)
		}
	}
	// Exhaustive segment cross-check: rank-based membership at each
	// segment midpoint must equal interval membership, with no tolerance.
	inAnswer := func(lam float64) bool {
		for _, iv := range ivs {
			if iv.Lo <= lam && lam <= iv.Hi {
				return true
			}
		}
		return false
	}
	for i := 0; i+1 < len(lams); i++ {
		if lams[i] == lams[i+1] {
			continue
		}
		mid := (lams[i] + lams[i+1]) / 2
		if mid <= lams[i] || mid >= lams[i+1] {
			continue // no representable λ strictly inside this segment
		}
		want := MonoRank(points, q, mid) <= k
		if got := inAnswer(mid); got != want {
			t.Fatalf("%s: λ=%v membership %v, rank-based %v", label, mid, got, want)
		}
	}
}

// TestMono2DDuplicateBreakpoints pins the duplicate-λ event handling: all
// coverage deltas at one breakpoint must apply before the sweep flushes, or
// intervals gain or lose endpoints. Duplicated points produce exactly
// coincident breakpoints, and symmetric pairs produce breakpoints shared
// between an increasing and a decreasing side.
func TestMono2DDuplicateBreakpoints(t *testing.T) {
	q := vec.Point{3, 3}
	points := []vec.Point{
		// Two identical points tying q at λ = 0.5 from the "beats below"
		// side, plus the mirrored pair tying at the same λ from the other.
		{2, 4}, {2, 4},
		{4, 2}, {4, 2},
		// A dominated point, irrelevant everywhere.
		{5, 5},
		// A dominating point, relevant everywhere.
		{1, 1},
	}
	for k := 1; k <= 6; k++ {
		checkMono2D(t, "duplicate-breakpoints", points, q, k)
	}
}

// TestMono2DAdjacentMerge forces the flush-merge path (out[n-1].Hi == lo):
// a point whose hyperplane only touches the answer at one λ splits the
// sweep segments without changing membership, so the reported intervals
// must still come out joined.
func TestMono2DAdjacentMerge(t *testing.T) {
	q := vec.Point{2, 2}
	// p ties q at λ = 0.5 and beats it on one side only; with k = 2 the
	// answer is the whole segment and must be reported as one interval,
	// not two halves meeting at 0.5.
	points := []vec.Point{{1, 3}, {6, 6}}
	ivs := Monochromatic2D(points, q, 2)
	if len(ivs) != 1 || ivs[0].Lo != 0 || ivs[0].Hi != 1 {
		t.Fatalf("expected the merged full segment, got %v", ivs)
	}
	checkMono2D(t, "adjacent-merge", points, q, 1)
}

// TestMono2DRandomizedGrid runs the structural and MonoRank cross-checks
// over randomized grid-quantized datasets, where coincident breakpoints
// and exact ties are common, for a spread of k.
func TestMono2DRandomizedGrid(t *testing.T) {
	for caseIdx := 0; caseIdx < 60; caseIdx++ {
		rng := rand.New(rand.NewSource(int64(2000 + caseIdx)))
		n := 1 + rng.Intn(25)
		points := make([]vec.Point, n)
		for i := range points {
			// Small integer grid: duplicate points and duplicate λ events
			// appear with high probability.
			points[i] = vec.Point{float64(rng.Intn(6)), float64(rng.Intn(6))}
		}
		q := vec.Point{float64(1 + rng.Intn(4)), float64(1 + rng.Intn(4))}
		k := 1 + rng.Intn(5)
		checkMono2D(t, "grid", points, q, k)
	}
}

// TestMono2DRandomizedContinuous mirrors the grid cases on continuous
// coordinates, where every breakpoint is distinct.
func TestMono2DRandomizedContinuous(t *testing.T) {
	for caseIdx := 0; caseIdx < 40; caseIdx++ {
		rng := rand.New(rand.NewSource(int64(3000 + caseIdx)))
		n := 1 + rng.Intn(40)
		points := make([]vec.Point, n)
		for i := range points {
			points[i] = vec.Point{rng.Float64() * 4, rng.Float64() * 4}
		}
		q := vec.Point{rng.Float64()*2 + 1, rng.Float64()*2 + 1}
		k := 1 + rng.Intn(6)
		checkMono2D(t, "continuous", points, q, k)
	}
}
