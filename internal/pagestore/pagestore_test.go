package pagestore

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"wqrtq/internal/rtree"
	"wqrtq/internal/storage"
	"wqrtq/internal/vec"
)

func buildTree(n, dim int, seed int64) (*rtree.Tree, []vec.Point) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]vec.Point, n)
	ids := make([]int32, n)
	for i := range pts {
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		pts[i] = p
		ids[i] = int32(i)
	}
	tr := rtree.Bulk(pts, ids)
	// Delete a quarter so the points table has dead ids.
	for i := 0; i < n/4; i++ {
		tr.Delete(pts[i], ids[i])
		pts[i] = nil
	}
	return tr, pts
}

func writeSnap(t *testing.T, fs storage.FS, name string, tr *rtree.Tree, pts []vec.Point, lsn uint64) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(f, tr, pts, lsn, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readSnap(fs storage.FS, name string) (*Snapshot, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// dump renders tree structure independent of node identity.
func dump(n *rtree.Node) string {
	s := fmt.Sprintf("[leaf=%v count=%d", n.IsLeaf(), n.Count())
	for i := 0; i < n.NumEntries(); i++ {
		r := n.EntryRect(i)
		s += fmt.Sprintf(" {%v %v", r.Min, r.Max)
		if n.IsLeaf() {
			s += fmt.Sprintf(" id=%d}", n.PointID(i))
		} else {
			s += " " + dump(n.Child(i)) + "}"
		}
	}
	return s + "]"
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, dim int }{{1, 2}, {8, 3}, {200, 2}, {500, 5}} {
		fs := storage.NewFaultFS()
		fs.MkdirAll("d")
		tr, pts := buildTree(tc.n, tc.dim, int64(tc.n))
		writeSnap(t, fs, "d/s", tr, pts, 42)

		snap, err := readSnap(fs, "d/s")
		if err != nil {
			t.Fatalf("n=%d dim=%d: %v", tc.n, tc.dim, err)
		}
		if snap.LastLSN != 42 {
			t.Fatalf("LastLSN = %d", snap.LastLSN)
		}
		if err := snap.Tree.CheckInvariants(); err != nil {
			t.Fatalf("n=%d dim=%d: invariants: %v", tc.n, tc.dim, err)
		}
		if got, want := dump(snap.Tree.Root()), dump(tr.Root()); got != want {
			t.Fatalf("n=%d dim=%d: structure differs\n got %s\nwant %s", tc.n, tc.dim, got, want)
		}
		if len(snap.Points) != len(pts) {
			t.Fatalf("points len = %d, want %d", len(snap.Points), len(pts))
		}
		for i, p := range pts {
			q := snap.Points[i]
			if (p == nil) != (q == nil) {
				t.Fatalf("point %d liveness differs", i)
			}
			if p != nil && !vec.Equal(p, q) {
				t.Fatalf("point %d = %v, want %v", i, q, p)
			}
		}
	}
}

func TestEveryBitFlipDetected(t *testing.T) {
	// Flip a sample of bits across the whole file; every single one must
	// turn Read into an error — never a silently different snapshot.
	fs := storage.NewFaultFS()
	fs.MkdirAll("d")
	tr, pts := buildTree(60, 2, 9)
	writeSnap(t, fs, "d/s", tr, pts, 7)
	sz, _ := fs.Size("d/s")
	bits := sz * 8
	rng := rand.New(rand.NewSource(1))
	flips := []int64{0, 1, bits - 1, bits / 2}
	for i := 0; i < 300; i++ {
		flips = append(flips, rng.Int63n(bits))
	}
	for _, bit := range flips {
		if err := fs.FlipBit("d/s", bit); err != nil {
			t.Fatal(err)
		}
		if _, err := readSnap(fs, "d/s"); err == nil {
			t.Fatalf("bit %d: flip went undetected", bit)
		}
		// Flip back and confirm the snapshot reads clean again.
		if err := fs.FlipBit("d/s", bit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := readSnap(fs, "d/s"); err != nil {
		t.Fatalf("restored snapshot should read clean: %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	fs := storage.NewFaultFS()
	fs.MkdirAll("d")
	tr, pts := buildTree(80, 3, 4)
	writeSnap(t, fs, "d/s", tr, pts, 1)
	data, _ := fs.Bytes("d/s")
	for _, keep := range []int{0, 1, headerSize - 1, headerSize, len(data) / 2, len(data) - 1} {
		f, _ := fs.Create("d/cut")
		f.Write(data[:keep])
		f.Close()
		if _, err := readSnap(fs, "d/cut"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("keep=%d: err = %v, want ErrCorrupt", keep, err)
		}
	}
}

func TestAbortCallback(t *testing.T) {
	fs := storage.NewFaultFS()
	fs.MkdirAll("d")
	tr, pts := buildTree(40, 2, 2)
	f, _ := fs.Create("d/s")
	calls := 0
	err := Write(f, tr, pts, 0, func() bool { calls++; return true })
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if calls == 0 {
		t.Fatal("abort callback never polled")
	}
}

func TestSnapshotNames(t *testing.T) {
	name := SnapshotName(99)
	lsn, ok := ParseSnapshotName(name)
	if !ok || lsn != 99 {
		t.Fatalf("ParseSnapshotName(%q) = %d, %v", name, lsn, ok)
	}
	for _, bad := range []string{"snap-zz.snap", "wal-0000000000000063.wal", "snap.snap", ""} {
		if _, ok := ParseSnapshotName(bad); ok {
			t.Fatalf("ParseSnapshotName(%q) accepted", bad)
		}
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	fs := storage.OS()
	dir := t.TempDir()
	tr, pts := buildTree(120, 4, 11)
	writeSnap(t, fs, dir+"/s.snap", tr, pts, 5)
	snap, err := readSnap(fs, dir+"/s.snap")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dump(snap.Tree.Root()), dump(tr.Root()); got != want {
		t.Fatal("structure differs over OS filesystem")
	}
}
