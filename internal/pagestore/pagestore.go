// Package pagestore serializes an R-tree snapshot to a paged, checksummed
// on-disk format and loads it back in one pass.
//
// The layout follows the disk-resident R-tree discipline the in-memory
// tree already simulates (fixed-size pages, fanout derived from the page
// size — the SQLite r-tree module stores its nodes the same way): one
// header page, a points section, then one fixed-size page per tree node in
// depth-first preorder, so the root is always page 0 and a sequential read
// visits parents before children.
//
//	header   magic "WQPS0001" | version u32 | dim u32 | pageBytes u32 |
//	         maxFill u32 | minFill u32 | numIDs u64 | treeSize u64 |
//	         nodeCount u64 | lastLSN u64 | pointsCRC u32 | headerCRC u32
//	points   numIDs × ( live u8 | dim × f64 )   — id-ordered, deleted ids dead
//	pages    nodeCount × pageBytes
//
// Each node page is independently checksummed:
//
//	page     crc u32 | flags u16 (bit0 = leaf) | numEntries u16 | count u64 |
//	         entries... | zero padding
//	entry    leaf:     dim × f64 point | zero pad to rect size | id u64
//	         internal: dim × f64 min | dim × f64 max | child page u64
//
// All integers little-endian, checksums CRC-32/Castagnoli. Leaf pages do
// not trust their embedded coordinates: on load the point is resolved from
// the points section by id and the embedded bytes must match bit-for-bit,
// so a page that disagrees with the points table is reported as corrupt
// rather than reconstructed from either copy alone. The load cost is one
// sequential read and one allocation per node — O(file size) with small
// constants; the format is position-addressed (page i lives at a computable
// offset) so an mmap-backed lazy loader can adopt it unchanged.
package pagestore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"wqrtq/internal/rtree"
	"wqrtq/internal/storage"
	"wqrtq/internal/vec"
)

const (
	magic      = "WQPS0001"
	version    = 1
	headerSize = len(magic) + 4*5 + 8*4 + 4 + 4
	// flushSize batches page writes so big snapshots do not issue one
	// syscall (and one fault-injection site) per page.
	flushSize = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a snapshot whose checksums or structure do not
// verify. Recovery treats it as "this snapshot is unusable" and falls back
// to an older generation.
var ErrCorrupt = errors.New("pagestore: corrupt snapshot")

// ErrAborted is returned by Write when the abort callback fires — the
// engine shutting down mid-checkpoint.
var ErrAborted = errors.New("pagestore: write aborted")

// Snapshot is the result of loading a stored snapshot.
type Snapshot struct {
	Tree    *rtree.Tree
	Points  []vec.Point // id-indexed; nil entries are deleted ids
	LastLSN uint64
}

// PageBytes returns the node page size for a d-dimensional tree with the
// given fanout.
func PageBytes(dim, maxFill int) int {
	return 16 + maxFill*(16*dim+8)
}

// Write serializes tree and its id-indexed points table (nil entries are
// deleted ids) to f. lastLSN records the last mutation the snapshot
// covers. abort, when non-nil, is polled between write batches; a true
// return abandons the write with ErrAborted. The caller owns syncing and
// renaming the file into place.
func Write(f storage.File, tree *rtree.Tree, points []vec.Point, lastLSN uint64, abort func() bool) error {
	dim := tree.Dim()
	pageBytes := PageBytes(dim, tree.MaxEntries())

	// Points section, CRC'd as one unit.
	ptsBuf := make([]byte, 0, min(len(points)*(1+8*dim), flushSize))
	ptsCRC := crc32.New(castagnoli)
	live := 0
	w := &batchWriter{f: f, abort: abort}
	// The header needs the points CRC, so stream points into the CRC
	// first, then write header + points + pages.
	for _, p := range points {
		if p == nil {
			ptsBuf = append(ptsBuf, 0)
			for i := 0; i < dim; i++ {
				ptsBuf = binary.LittleEndian.AppendUint64(ptsBuf, 0)
			}
		} else {
			if len(p) != dim {
				return fmt.Errorf("pagestore: point dimension %d, want %d", len(p), dim)
			}
			live++
			ptsBuf = append(ptsBuf, 1)
			for _, c := range p {
				ptsBuf = binary.LittleEndian.AppendUint64(ptsBuf, math.Float64bits(c))
			}
		}
	}
	ptsCRC.Write(ptsBuf)
	if live != tree.Len() {
		return fmt.Errorf("pagestore: %d live points, tree holds %d", live, tree.Len())
	}

	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, version)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(dim))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(pageBytes))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(tree.MaxEntries()))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(tree.MinEntries()))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(points)))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(tree.Len()))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(tree.NodeCount()))
	hdr = binary.LittleEndian.AppendUint64(hdr, lastLSN)
	hdr = binary.LittleEndian.AppendUint32(hdr, ptsCRC.Sum32())
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(hdr, castagnoli))
	if err := w.write(hdr); err != nil {
		return err
	}
	if err := w.write(ptsBuf); err != nil {
		return err
	}

	// Depth-first preorder page numbering: parents precede children and
	// the root is page 0.
	pageNo := map[*rtree.Node]uint64{}
	var order []*rtree.Node
	var number func(n *rtree.Node)
	number = func(n *rtree.Node) {
		pageNo[n] = uint64(len(order))
		order = append(order, n)
		if !n.IsLeaf() {
			for i := 0; i < n.NumEntries(); i++ {
				number(n.Child(i))
			}
		}
	}
	number(tree.Root())
	if len(order) != tree.NodeCount() {
		return fmt.Errorf("pagestore: walked %d nodes, tree reports %d", len(order), tree.NodeCount())
	}

	esz := 16*dim + 8
	page := make([]byte, pageBytes)
	for _, n := range order {
		for i := range page {
			page[i] = 0
		}
		var flags uint16
		if n.IsLeaf() {
			flags = 1
		}
		binary.LittleEndian.PutUint16(page[4:], flags)
		binary.LittleEndian.PutUint16(page[6:], uint16(n.NumEntries()))
		binary.LittleEndian.PutUint64(page[8:], uint64(n.Count()))
		for i := 0; i < n.NumEntries(); i++ {
			e := page[16+i*esz:]
			if n.IsLeaf() {
				for j, c := range n.Point(i) {
					binary.LittleEndian.PutUint64(e[8*j:], math.Float64bits(c))
				}
				binary.LittleEndian.PutUint64(e[16*dim:], uint64(uint32(n.PointID(i))))
			} else {
				r := n.EntryRect(i)
				for j := 0; j < dim; j++ {
					binary.LittleEndian.PutUint64(e[8*j:], math.Float64bits(r.Min[j]))
					binary.LittleEndian.PutUint64(e[8*(dim+j):], math.Float64bits(r.Max[j]))
				}
				binary.LittleEndian.PutUint64(e[16*dim:], pageNo[n.Child(i)])
			}
		}
		binary.LittleEndian.PutUint32(page, crc32.Checksum(page[4:], castagnoli))
		if err := w.write(page); err != nil {
			return err
		}
	}
	return w.flush()
}

type batchWriter struct {
	f     storage.File
	buf   []byte
	abort func() bool
}

func (w *batchWriter) write(p []byte) error {
	w.buf = append(w.buf, p...)
	if len(w.buf) >= flushSize {
		return w.flush()
	}
	return nil
}

func (w *batchWriter) flush() error {
	if w.abort != nil && w.abort() {
		return ErrAborted
	}
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// Read loads a snapshot, verifying every checksum and the structural
// integrity of the page graph. Any mismatch returns an error wrapping
// ErrCorrupt.
func Read(f storage.File) (*Snapshot, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, smaller than header", ErrCorrupt, len(data))
	}
	hdr := data[:headerSize]
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if got, want := crc32.Checksum(hdr[:headerSize-4], castagnoli), binary.LittleEndian.Uint32(hdr[headerSize-4:]); got != want {
		return nil, fmt.Errorf("%w: header checksum", ErrCorrupt)
	}
	off := len(magic)
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(hdr[off:]); off += 4; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(hdr[off:]); off += 8; return v }
	ver := u32()
	if ver != version {
		return nil, fmt.Errorf("pagestore: snapshot version %d, supported %d", ver, version)
	}
	dim := int(u32())
	pageBytes := int(u32())
	maxFill := int(u32())
	minFill := int(u32())
	numIDs := u64()
	treeSize := u64()
	nodeCount := u64()
	lastLSN := u64()
	ptsCRC := u32()
	if dim <= 0 || dim > 1<<10 || maxFill < 4 || pageBytes != PageBytes(dim, maxFill) {
		return nil, fmt.Errorf("%w: geometry dim=%d maxFill=%d pageBytes=%d", ErrCorrupt, dim, maxFill, pageBytes)
	}

	ptsLen := int64(numIDs) * int64(1+8*dim)
	pagesOff := int64(headerSize) + ptsLen
	wantLen := pagesOff + int64(nodeCount)*int64(pageBytes)
	if int64(len(data)) != wantLen {
		return nil, fmt.Errorf("%w: file is %d bytes, layout wants %d", ErrCorrupt, len(data), wantLen)
	}

	ptsBuf := data[headerSize:pagesOff]
	if crc32.Checksum(ptsBuf, castagnoli) != ptsCRC {
		return nil, fmt.Errorf("%w: points checksum", ErrCorrupt)
	}
	points := make([]vec.Point, numIDs)
	live := 0
	rec := 1 + 8*dim
	for i := range points {
		b := ptsBuf[i*rec:]
		switch b[0] {
		case 0:
		case 1:
			p := make(vec.Point, dim)
			for j := range p {
				p[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[1+8*j:]))
			}
			points[i] = p
			live++
		default:
			return nil, fmt.Errorf("%w: point %d live flag %d", ErrCorrupt, i, b[0])
		}
	}
	if live != int(treeSize) {
		return nil, fmt.Errorf("%w: %d live points, header declares tree size %d", ErrCorrupt, live, treeSize)
	}

	asm, err := rtree.NewAssembler(dim, maxFill, minFill, int(nodeCount))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	esz := 16*dim + 8
	var scratch [8]byte
	for pg := 0; pg < int(nodeCount); pg++ {
		page := data[pagesOff+int64(pg)*int64(pageBytes):][:pageBytes]
		if crc32.Checksum(page[4:], castagnoli) != binary.LittleEndian.Uint32(page) {
			return nil, fmt.Errorf("%w: page %d checksum", ErrCorrupt, pg)
		}
		leaf := binary.LittleEndian.Uint16(page[4:])&1 == 1
		ne := int(binary.LittleEndian.Uint16(page[6:]))
		if ne > maxFill {
			return nil, fmt.Errorf("%w: page %d holds %d entries, fanout %d", ErrCorrupt, pg, ne, maxFill)
		}
		if leaf {
			ids := make([]int32, ne)
			pts := make([]vec.Point, ne)
			for i := 0; i < ne; i++ {
				e := page[16+i*esz:]
				id := binary.LittleEndian.Uint64(e[16*dim:])
				if id >= numIDs {
					return nil, fmt.Errorf("%w: page %d entry %d: id %d out of range", ErrCorrupt, pg, i, id)
				}
				p := points[id]
				if p == nil {
					return nil, fmt.Errorf("%w: page %d entry %d: id %d is deleted in the points table", ErrCorrupt, pg, i, id)
				}
				// The embedded coordinates must agree with the points
				// table bit-for-bit; a mismatch means one copy rotted.
				for j, c := range p {
					binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(c))
					if !bytes.Equal(scratch[:], e[8*j:8*j+8]) {
						return nil, fmt.Errorf("%w: page %d entry %d: embedded point disagrees with points table", ErrCorrupt, pg, i)
					}
				}
				ids[i] = int32(uint32(id))
				pts[i] = p
			}
			if err := asm.AddLeaf(pg, ids, pts); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		} else {
			rects := make([]rtree.Rect, ne)
			children := make([]int, ne)
			for i := 0; i < ne; i++ {
				e := page[16+i*esz:]
				mn := make([]float64, dim)
				mx := make([]float64, dim)
				for j := 0; j < dim; j++ {
					mn[j] = math.Float64frombits(binary.LittleEndian.Uint64(e[8*j:]))
					mx[j] = math.Float64frombits(binary.LittleEndian.Uint64(e[8*(dim+j):]))
				}
				child := binary.LittleEndian.Uint64(e[16*dim:])
				if child >= nodeCount {
					return nil, fmt.Errorf("%w: page %d entry %d: child %d out of range", ErrCorrupt, pg, i, child)
				}
				rects[i] = rtree.Rect{Min: mn, Max: mx}
				children[i] = int(child)
			}
			if err := asm.AddInternal(pg, rects, children); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		}
	}
	tree, err := asm.Finish(0, int(treeSize))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &Snapshot{Tree: tree, Points: points, LastLSN: lastLSN}, nil
}

// SnapshotName formats the canonical file name for a snapshot covering
// mutations up to lastLSN.
func SnapshotName(lastLSN uint64) string {
	return fmt.Sprintf("snap-%016x.snap", lastLSN)
}

// ParseSnapshotName extracts the covered LSN from a snapshot file name.
func ParseSnapshotName(name string) (uint64, bool) {
	var lsn uint64
	if _, err := fmt.Sscanf(name, "snap-%016x.snap", &lsn); err != nil {
		return 0, false
	}
	return lsn, name == SnapshotName(lsn)
}
