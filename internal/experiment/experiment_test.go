package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func tinyRunner() *Runner {
	// Scale 0.02 shrinks |P| to the 2000-point floor and samples to ~16:
	// fast enough for unit tests while running the full real code path.
	return NewRunner(Config{Scale: 0.02, Seed: 3})
}

func TestTable1Defaults(t *testing.T) {
	p := DefaultParams()
	if p.Dim != 3 || p.N != 100000 || p.K != 10 || p.TargetRank != 101 ||
		p.WmSize != 1 || p.SampleSize != 800 {
		t.Errorf("DefaultParams = %+v does not match Table 1", p)
	}
	if p.PM.Alpha != 0.5 || p.PM.Beta != 0.5 || p.PM.Gamma != 0.5 || p.PM.Lambda != 0.5 {
		t.Errorf("penalty weights %+v, want all 0.5 (§5.1)", p.PM)
	}
	// Sweep values from Table 1.
	if len(Table1Dimensionality) != 4 || Table1Dimensionality[0] != 2 || Table1Dimensionality[3] != 5 {
		t.Error("dimensionality sweep mismatch")
	}
	if len(Table1Cardinality) != 5 || Table1Cardinality[4] != 1000000 {
		t.Error("cardinality sweep mismatch")
	}
	if len(Table1K) != 5 || Table1K[4] != 50 {
		t.Error("k sweep mismatch")
	}
	if len(Table1SampleSize) != 5 || Table1SampleSize[4] != 1600 {
		t.Error("sample-size sweep mismatch")
	}
}

func TestRunCellProducesVerifiedRows(t *testing.T) {
	r := tinyRunner()
	p := DefaultParams()
	p.Seed = 5
	cell, err := r.RunCell("7", "d", 3, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []Row{cell.MQP, cell.MWK, cell.MQWK} {
		if row.Seconds < 0 {
			t.Errorf("%s: negative time", row.Algo)
		}
		if row.Penalty < 0 || row.Penalty > 1 {
			t.Errorf("%s: penalty %v outside [0, 1]", row.Algo, row.Penalty)
		}
		if row.Figure != "7" || row.XName != "d" || row.X != 3 {
			t.Errorf("%s: row metadata %+v", row.Algo, row)
		}
	}
	// MQWK can never report a worse penalty than γ·MQP.
	if cell.MQWK.Penalty > 0.5*cell.MQP.Penalty+1e-9 {
		t.Errorf("MQWK penalty %v exceeds γ·MQP %v", cell.MQWK.Penalty, 0.5*cell.MQP.Penalty)
	}
}

func TestRunFigureSmokeAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := tinyRunner()
	for fig := 7; fig <= 12; fig++ {
		rows, err := r.RunFigure(fig)
		if err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
		if len(rows) == 0 {
			t.Fatalf("figure %d: no rows", fig)
		}
		// Three algorithms per (dataset, x) cell.
		if len(rows)%3 != 0 {
			t.Fatalf("figure %d: %d rows, want multiple of 3", fig, len(rows))
		}
	}
}

func TestRunFigureUnknown(t *testing.T) {
	if _, err := tinyRunner().RunFigure(13); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestPrintTableAndCSV(t *testing.T) {
	rows := []Row{
		{Figure: "7", Dataset: "independent", XName: "d", X: 2, Algo: "MQP", Seconds: 0.1, Penalty: 0.3},
		{Figure: "7", Dataset: "independent", XName: "d", X: 2, Algo: "MWK", Seconds: 0.2, Penalty: 0.2},
		{Figure: "7", Dataset: "independent", XName: "d", X: 2, Algo: "MQWK", Seconds: 0.5, Penalty: 0.1},
	}
	var buf bytes.Buffer
	PrintTable(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "Figure 7 (independent)") {
		t.Errorf("table missing header: %s", out)
	}
	if !strings.Contains(out, "dimensionality") {
		t.Errorf("table missing caption: %s", out)
	}
	buf.Reset()
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d, want header + 3", len(lines))
	}
	if lines[0] != "figure,dataset,param,x,algo,seconds,penalty" {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestScaleFloors(t *testing.T) {
	r := NewRunner(Config{Scale: 1e-9, Seed: 1})
	if got := r.scaleInt(100000, 2000); got != 2000 {
		t.Errorf("scaled |P| = %d, want floor 2000", got)
	}
	if got := r.scaleInt(800, 16); got != 16 {
		t.Errorf("scaled |S| = %d, want floor 16", got)
	}
}

func TestDatasetCacheReuse(t *testing.T) {
	r := tinyRunner()
	p := DefaultParams()
	if _, err := r.data(p); err != nil {
		t.Fatal(err)
	}
	if len(r.built) != 1 {
		t.Fatalf("cache size = %d", len(r.built))
	}
	if _, err := r.data(p); err != nil {
		t.Fatal(err)
	}
	if len(r.built) != 1 {
		t.Errorf("cache grew on identical request")
	}
	p.Dim = 4
	if _, err := r.data(p); err != nil {
		t.Fatal(err)
	}
	if len(r.built) != 2 {
		t.Errorf("cache did not grow for new dimensionality")
	}
}

func TestCheckShapesOnSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := NewRunner(Config{Scale: 0.03, Seed: 2})
	var rows []Row
	for _, fig := range []int{8, 12} {
		rs, err := r.RunFigure(fig)
		if err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
		rows = append(rows, rs...)
	}
	rep := CheckShapes(rows)
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "Shape checks") {
		t.Error("report missing header")
	}
	for _, c := range rep.Checks {
		if !c.Pass {
			t.Errorf("shape check failed: %s (%s)\n%s", c.Name, c.Detail, buf.String())
		}
	}
}

func TestCheckShapesDetectsViolations(t *testing.T) {
	// Construct rows that violate the cost ordering and penalty bounds.
	rows := []Row{
		{Figure: "9", Dataset: "independent", X: 10, Algo: "MQP", Seconds: 9, Penalty: 2},
		{Figure: "9", Dataset: "independent", X: 10, Algo: "MWK", Seconds: 1, Penalty: 0.2},
		{Figure: "9", Dataset: "independent", X: 10, Algo: "MQWK", Seconds: 0.1, Penalty: 3},
	}
	rep := CheckShapes(rows)
	if rep.AllPass() {
		t.Fatal("violations not detected")
	}
	failed := 0
	for _, c := range rep.Checks {
		if !c.Pass {
			failed++
		}
	}
	if failed < 2 {
		t.Errorf("only %d checks failed, want ordering + penalty failures", failed)
	}
}
