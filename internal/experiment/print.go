package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"
)

// figureTitles mirror the captions of §5.2.
var figureTitles = map[string]string{
	"7":  "WQRTQ cost vs. dimensionality",
	"8":  "WQRTQ cost vs. dataset cardinality",
	"9":  "WQRTQ cost vs. k",
	"10": "WQRTQ cost vs. actual ranking under Wm",
	"11": "WQRTQ cost vs. |Wm|",
	"12": "WQRTQ cost vs. sample size",
}

// PrintTable renders rows in the layout of the paper's figures: one block
// per (figure, dataset), one line per x value with the three algorithms'
// time and penalty side by side.
func PrintTable(w io.Writer, rows []Row) {
	type key struct {
		fig, ds string
	}
	blocks := map[key]map[float64]map[string]Row{}
	var order []key
	for _, r := range rows {
		k := key{r.Figure, r.Dataset}
		if _, ok := blocks[k]; !ok {
			blocks[k] = map[float64]map[string]Row{}
			order = append(order, k)
		}
		if _, ok := blocks[k][r.X]; !ok {
			blocks[k][r.X] = map[string]Row{}
		}
		blocks[k][r.X][r.Algo] = r
	}
	for _, k := range order {
		fmt.Fprintf(w, "\nFigure %s (%s): %s\n", k.fig, k.ds, figureTitles[k.fig])
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  %s\tMQP time(s)\tMQP penalty\tMWK time(s)\tMWK penalty\tMQWK time(s)\tMQWK penalty\n", xName(rows, k.fig))
		var xs []float64
		for x := range blocks[k] {
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		for _, x := range xs {
			cell := blocks[k][x]
			fmt.Fprintf(tw, "  %v\t%.4f\t%.3f\t%.4f\t%.3f\t%.4f\t%.3f\n",
				x,
				cell["MQP"].Seconds, cell["MQP"].Penalty,
				cell["MWK"].Seconds, cell["MWK"].Penalty,
				cell["MQWK"].Seconds, cell["MQWK"].Penalty)
		}
		tw.Flush()
	}
}

func xName(rows []Row, fig string) string {
	for _, r := range rows {
		if r.Figure == fig {
			return r.XName
		}
	}
	return "x"
}

// WriteCSV emits rows as machine-readable CSV with a header.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "dataset", "param", "x", "algo", "seconds", "penalty"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Figure, r.Dataset, r.XName,
			strconv.FormatFloat(r.X, 'g', -1, 64),
			r.Algo,
			strconv.FormatFloat(r.Seconds, 'g', -1, 64),
			strconv.FormatFloat(r.Penalty, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
