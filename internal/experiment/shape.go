package experiment

import (
	"fmt"
	"io"
	"sort"
)

// ShapeCheck is one qualitative property of the paper's evaluation,
// verified against measured rows rather than absolute numbers.
type ShapeCheck struct {
	Name   string
	Pass   bool
	Detail string
}

// ShapeReport aggregates the checks for one set of rows.
type ShapeReport struct {
	Checks []ShapeCheck
}

// AllPass reports whether every check passed.
func (r ShapeReport) AllPass() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Print renders the report.
func (r ShapeReport) Print(w io.Writer) {
	fmt.Fprintln(w, "\nShape checks (paper's qualitative claims vs. this run):")
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  [%s] %-52s %s\n", status, c.Name, c.Detail)
	}
}

type cellKey struct {
	fig, ds string
	x       float64
}

// CheckShapes validates the orderings and growth trends that the paper's
// §5.2 reports and that must survive any change of hardware or language:
//
//  1. Algorithm cost ordering: MQP is the cheapest and MQWK the most
//     expensive algorithm in (nearly) every cell (every figure shows
//     MQP < MWK < MQWK by orders of magnitude).
//  2. Penalties are small: every reported penalty lies in [0, 1], and
//     MQWK's penalty never exceeds γ times MQP's (§4.4 construction).
//  3. Figure 8 trend: total running time of MQWK grows with |P|.
//  4. Figure 12 trend: MWK and MQWK grow with the sample size while the
//     MQP curve stays flat, and the MWK penalty does not degrade as the
//     sample size grows ("the penalty of MQWK and MWK drops as sample
//     size grows").
func CheckShapes(rows []Row) ShapeReport {
	cells := map[cellKey]map[string]Row{}
	for _, r := range rows {
		k := cellKey{r.Figure, r.Dataset, r.X}
		if cells[k] == nil {
			cells[k] = map[string]Row{}
		}
		cells[k][r.Algo] = r
	}
	var rep ShapeReport

	// 1. Cost ordering, counted over all complete cells.
	total, ordered := 0, 0
	for _, c := range cells {
		mqp, okA := c["MQP"]
		mwk, okB := c["MWK"]
		mqwk, okC := c["MQWK"]
		if !okA || !okB || !okC {
			continue
		}
		total++
		if mqp.Seconds <= mwk.Seconds && mwk.Seconds <= mqwk.Seconds {
			ordered++
		}
	}
	rep.Checks = append(rep.Checks, ShapeCheck{
		Name:   "cost ordering MQP <= MWK <= MQWK",
		Pass:   total > 0 && float64(ordered) >= 0.9*float64(total),
		Detail: fmt.Sprintf("%d/%d cells", ordered, total),
	})

	// 2. Penalty sanity.
	penaltyOK := true
	mqwkBound := true
	for _, c := range cells {
		for _, r := range c {
			if r.Penalty < 0 || r.Penalty > 1 {
				penaltyOK = false
			}
		}
		if mqp, ok := c["MQP"]; ok {
			if mqwk, ok2 := c["MQWK"]; ok2 && mqwk.Penalty > 0.5*mqp.Penalty+1e-9 {
				mqwkBound = false
			}
		}
	}
	rep.Checks = append(rep.Checks,
		ShapeCheck{Name: "all penalties in [0, 1]", Pass: penaltyOK, Detail: ""},
		ShapeCheck{Name: "MQWK penalty <= gamma * MQP penalty", Pass: mqwkBound, Detail: ""},
	)

	// 3. Figure 8: MQWK time grows with |P| (first vs last x per dataset).
	if trend, n := trendRatio(rows, "8", "MQWK"); n > 0 {
		rep.Checks = append(rep.Checks, ShapeCheck{
			Name:   "Fig 8: MQWK time grows with |P|",
			Pass:   trend > 1,
			Detail: fmt.Sprintf("last/first time ratio %.2f over %d series", trend, n),
		})
	}

	// 4. Figure 12: MWK grows with |S|, MQP flat, MWK penalty not worse.
	if trend, n := trendRatio(rows, "12", "MWK"); n > 0 {
		rep.Checks = append(rep.Checks, ShapeCheck{
			Name:   "Fig 12: MWK time grows with sample size",
			Pass:   trend > 1,
			Detail: fmt.Sprintf("last/first time ratio %.2f over %d series", trend, n),
		})
	}
	if trend, n := trendRatio(rows, "12", "MQP"); n > 0 {
		rep.Checks = append(rep.Checks, ShapeCheck{
			Name:   "Fig 12: MQP time unaffected by sample size",
			Pass:   trend < 5 && trend > 0.2,
			Detail: fmt.Sprintf("last/first time ratio %.2f over %d series", trend, n),
		})
	}
	if trend, n := penaltyTrend(rows, "12", "MWK"); n > 0 {
		rep.Checks = append(rep.Checks, ShapeCheck{
			Name:   "Fig 12: MWK penalty does not degrade with sample size",
			Pass:   trend <= 1.05,
			Detail: fmt.Sprintf("last/first penalty ratio %.2f over %d series", trend, n),
		})
	}
	return rep
}

// trendRatio averages, over the datasets of one figure, the ratio of the
// algorithm's time at the largest x to its time at the smallest x.
func trendRatio(rows []Row, fig, algo string) (float64, int) {
	return seriesRatio(rows, fig, algo, func(r Row) float64 { return r.Seconds })
}

func penaltyTrend(rows []Row, fig, algo string) (float64, int) {
	return seriesRatio(rows, fig, algo, func(r Row) float64 { return r.Penalty })
}

func seriesRatio(rows []Row, fig, algo string, metric func(Row) float64) (float64, int) {
	series := map[string][]Row{}
	for _, r := range rows {
		if r.Figure == fig && r.Algo == algo {
			series[r.Dataset] = append(series[r.Dataset], r)
		}
	}
	sum, n := 0.0, 0
	for _, rs := range series {
		sort.Slice(rs, func(i, j int) bool { return rs[i].X < rs[j].X })
		first := metric(rs[0])
		last := metric(rs[len(rs)-1])
		if first <= 0 {
			continue
		}
		sum += last / first
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}
