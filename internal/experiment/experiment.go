// Package experiment reproduces the paper's evaluation (§5): for every
// figure of the performance study (Figures 7–12) it runs the three WQRTQ
// algorithms over the same parameter sweeps as Table 1 and reports the same
// two metrics — total running time in seconds and penalty of the refined
// query.
//
// Absolute times are hardware- and language-dependent; the comparisons that
// must (and do) hold are the orderings and growth shapes: MQP is the
// fastest and MQWK the most expensive algorithm, every algorithm degrades
// with dimensionality, cardinality, k, ranking and |Wm|, MWK/MQWK grow with
// the sample size while MQP is unaffected, and all penalties stay small.
//
// A Scale factor shrinks cardinality and sample sizes proportionally so the
// full suite runs in laptop time; EXPERIMENTS.md records the scale used for
// the committed results.
package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"wqrtq/internal/core"
	"wqrtq/internal/dataset"
	"wqrtq/internal/rtree"
)

// Params is one experimental cell: a dataset and the WQRTQ parameters.
// Defaults mirror Table 1.
type Params struct {
	Dataset     string // independent | anticorrelated | correlated | nba | household
	Dim         int    // data dimensionality d (synthetic sets only)
	N           int    // dataset cardinality |P|
	K           int    // reverse top-k parameter
	TargetRank  int    // actual ranking of q under Wm
	WmSize      int    // |Wm|
	SampleSize  int    // |S|, and |Q| unless QSampleSize set (§5.1 uses |S| = |Q|)
	QSampleSize int
	Seed        int64
	PM          core.PenaltyModel
}

// DefaultParams returns the Table 1 default setting: d = 3, |P| = 100K,
// k = 10, ranking 101, |Wm| = 1, sample size 800, α = β = γ = λ = 0.5.
func DefaultParams() Params {
	return Params{
		Dataset:    "independent",
		Dim:        3,
		N:          100000,
		K:          10,
		TargetRank: 101,
		WmSize:     1,
		SampleSize: 800,
		Seed:       1,
		PM:         core.DefaultPenaltyModel(),
	}
}

// Row is one measured point of a figure: a (dataset, x, algorithm) cell.
type Row struct {
	Figure  string  // "7".."12"
	Dataset string  // distribution name
	XName   string  // swept parameter name
	X       float64 // swept parameter value
	Algo    string  // MQP | MWK | MQWK
	Seconds float64 // total running time, the paper's primary metric
	Penalty float64 // penalty of the refined query, the secondary metric
}

// Config controls a harness run.
type Config struct {
	// Scale multiplies |P|, |S| and |Q| (default 1 = paper scale).
	Scale float64
	// Seed drives dataset generation and workloads.
	Seed int64
	// Log, when non-nil, receives one progress line per cell.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Runner executes experimental cells, caching built datasets and indexes
// across cells of the same sweep.
type Runner struct {
	cfg   Config
	built map[string]*builtData
}

type builtData struct {
	ds *dataset.Dataset
	tr *rtree.Tree
}

// NewRunner returns a Runner for the configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{cfg: cfg.withDefaults(), built: map[string]*builtData{}}
}

// scaleInt applies the configured scale with a floor.
func (r *Runner) scaleInt(v, floor int) int {
	s := int(float64(v) * r.cfg.Scale)
	if s < floor {
		s = floor
	}
	return s
}

// data returns (building if needed) the dataset and R-tree for a cell.
func (r *Runner) data(p Params) (*builtData, error) {
	n := r.scaleInt(p.N, 2000)
	key := fmt.Sprintf("%s/d%d/n%d", p.Dataset, p.Dim, n)
	if b, ok := r.built[key]; ok {
		return b, nil
	}
	ds, err := dataset.ByName(p.Dataset, n, p.Dim, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	b := &builtData{ds: ds, tr: ds.Tree()}
	r.built[key] = b
	return b, nil
}

// CellResult carries the three measurements of one cell.
type CellResult struct {
	MQP, MWK, MQWK Row
}

// RunCell executes the three algorithms on one parameter setting and
// verifies every refinement before reporting it.
func (r *Runner) RunCell(figure string, xName string, x float64, p Params) (CellResult, error) {
	b, err := r.data(p)
	if err != nil {
		return CellResult{}, err
	}
	targetRank := p.TargetRank
	if targetRank > len(b.ds.Points)/2 {
		targetRank = len(b.ds.Points) / 2 // keep feasible at small scales
	}
	wl, err := dataset.MakeWhyNot(b.ds, p.K, targetRank, p.WmSize, p.Seed+r.cfg.Seed)
	if err != nil {
		return CellResult{}, fmt.Errorf("experiment: workload for figure %s x=%v: %w", figure, x, err)
	}
	sampleSize := r.scaleInt(p.SampleSize, 16)
	qSampleSize := sampleSize
	if p.QSampleSize > 0 {
		qSampleSize = r.scaleInt(p.QSampleSize, 16)
	}
	mk := func(algo string, secs, penalty float64) Row {
		return Row{Figure: figure, Dataset: p.Dataset, XName: xName, X: x,
			Algo: algo, Seconds: secs, Penalty: penalty}
	}
	var out CellResult

	// MQP completes in well under a millisecond, so a single wall-clock
	// sample is dominated by scheduler noise; report the minimum of a few
	// repetitions (the standard noise-robust estimator for cheap
	// operations). MWK and MQWK run long enough to be timed once.
	var mqp core.MQPResult
	mqpSecs := 0.0
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		mqp, err = core.MQP(b.tr, wl.Q, wl.K, wl.Wm, p.PM)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return CellResult{}, fmt.Errorf("experiment: MQP: %w", err)
		}
		if rep == 0 || elapsed < mqpSecs {
			mqpSecs = elapsed
		}
	}
	out.MQP = mk("MQP", mqpSecs, mqp.Penalty)
	if !core.VerifyRefinement(b.tr, mqp.RefinedQ, wl.K, wl.Wm) {
		return CellResult{}, fmt.Errorf("experiment: MQP refinement failed verification (figure %s, x=%v)", figure, x)
	}

	start := time.Now()
	mwk, err := core.MWK(b.tr, wl.Q, wl.K, wl.Wm, sampleSize, rand.New(rand.NewSource(p.Seed+7)), p.PM)
	if err != nil {
		return CellResult{}, fmt.Errorf("experiment: MWK: %w", err)
	}
	out.MWK = mk("MWK", time.Since(start).Seconds(), mwk.Penalty)
	if !core.VerifyRefinement(b.tr, wl.Q, mwk.RefinedK, mwk.RefinedWm) {
		return CellResult{}, fmt.Errorf("experiment: MWK refinement failed verification (figure %s, x=%v)", figure, x)
	}

	start = time.Now()
	mqwk, err := core.MQWK(b.tr, wl.Q, wl.K, wl.Wm, sampleSize, qSampleSize, rand.New(rand.NewSource(p.Seed+13)), p.PM)
	if err != nil {
		return CellResult{}, fmt.Errorf("experiment: MQWK: %w", err)
	}
	out.MQWK = mk("MQWK", time.Since(start).Seconds(), mqwk.Penalty)
	if !core.VerifyRefinement(b.tr, mqwk.RefinedQ, mqwk.RefinedK, mqwk.RefinedWm) {
		return CellResult{}, fmt.Errorf("experiment: MQWK refinement failed verification (figure %s, x=%v)", figure, x)
	}

	if r.cfg.Log != nil {
		fmt.Fprintf(r.cfg.Log, "fig %s %-14s %s=%-8v MQP %.3fs/%.3f  MWK %.3fs/%.3f  MQWK %.3fs/%.3f\n",
			figure, p.Dataset, xName, x,
			out.MQP.Seconds, out.MQP.Penalty,
			out.MWK.Seconds, out.MWK.Penalty,
			out.MQWK.Seconds, out.MQWK.Penalty)
	}
	return out, nil
}
