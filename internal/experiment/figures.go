package experiment

import "fmt"

// Sweep values from Table 1 and the figure axes of §5.2.
var (
	// Table1Dimensionality is the d sweep of Figure 7.
	Table1Dimensionality = []int{2, 3, 4, 5}
	// Table1Cardinality is the |P| sweep of Figure 8.
	Table1Cardinality = []int{10000, 50000, 100000, 500000, 1000000}
	// Table1K is the k sweep of Figure 9.
	Table1K = []int{10, 20, 30, 40, 50}
	// Table1Rank is the actual-ranking sweep of Figure 10 (the figure axes
	// use 11, 101, 501, 1001).
	Table1Rank = []int{11, 101, 501, 1001}
	// Table1WmSize is the |Wm| sweep of Figure 11.
	Table1WmSize = []int{1, 2, 3, 4, 5}
	// Table1SampleSize is the sample-size sweep of Figure 12.
	Table1SampleSize = []int{100, 200, 400, 800, 1600}
)

// syntheticSets are the distributions used by Figures 7 and 8.
var syntheticSets = []string{"independent", "anticorrelated"}

// allSets are the four datasets of Figures 9-12 (with the synthetic
// stand-ins replacing NBA and Household; see DESIGN.md).
var allSets = []string{"household", "nba", "independent", "anticorrelated"}

// realCardinality pins the stand-in real datasets to the paper's sizes.
func realCardinality(name string, fallback int) int {
	switch name {
	case "nba":
		return 17000
	case "household":
		return 127000
	}
	return fallback
}

// RunFigure runs one figure's full sweep and returns its rows.
func (r *Runner) RunFigure(fig int) ([]Row, error) {
	switch fig {
	case 7:
		return r.sweep("7", "d", syntheticSets, Table1Dimensionality, func(p *Params, v int) { p.Dim = v })
	case 8:
		return r.sweep("8", "|P|", syntheticSets, Table1Cardinality, func(p *Params, v int) { p.N = v })
	case 9:
		return r.sweep("9", "k", allSets, Table1K, func(p *Params, v int) { p.K = v })
	case 10:
		return r.sweep("10", "rank", allSets, Table1Rank, func(p *Params, v int) { p.TargetRank = v })
	case 11:
		return r.sweep("11", "|Wm|", allSets, Table1WmSize, func(p *Params, v int) { p.WmSize = v })
	case 12:
		return r.sweep("12", "|S|", allSets, Table1SampleSize, func(p *Params, v int) { p.SampleSize = v })
	}
	return nil, fmt.Errorf("experiment: unknown figure %d (supported: 7-12)", fig)
}

// RunAll runs every figure in order.
func (r *Runner) RunAll() ([]Row, error) {
	var rows []Row
	for fig := 7; fig <= 12; fig++ {
		rs, err := r.RunFigure(fig)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rs...)
	}
	return rows, nil
}

func (r *Runner) sweep(figure, xName string, sets []string, xs []int, apply func(*Params, int)) ([]Row, error) {
	var rows []Row
	for _, name := range sets {
		for _, x := range xs {
			p := DefaultParams()
			p.Dataset = name
			p.N = realCardinality(name, p.N)
			p.Seed = r.cfg.Seed + int64(x)
			apply(&p, x)
			cell, err := r.RunCell(figure, xName, float64(x), p)
			if err != nil {
				return nil, err
			}
			rows = append(rows, cell.MQP, cell.MWK, cell.MQWK)
		}
	}
	return rows, nil
}
