package skyband

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"wqrtq/internal/rtree"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

func randPoints(n, d int, rng *rand.Rand) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func randWeight(d int, rng *rand.Rand) vec.Weight {
	w := make(vec.Weight, d)
	sum := 0.0
	for j := range w {
		w[j] = rng.ExpFloat64()
		sum += w[j]
	}
	for j := range w {
		w[j] /= sum
	}
	return w
}

// TestBandTopKMatchesFullTree is the core sub-index property: the k
// smallest scores of the dataset (as a sequence) are identical over the
// band tree and the full tree, for any weighting vector.
func TestBandTopKMatchesFullTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{50, 400, 2000} {
		pts := randPoints(n, 3, rng)
		tr := rtree.Bulk(pts, nil)
		c := NewCache(tr, nil)
		for _, k := range []int{1, 5, 17} {
			b := c.Band(k)
			if b.Size() > tr.Len() {
				t.Fatalf("band larger than dataset: %d > %d", b.Size(), tr.Len())
			}
			for trial := 0; trial < 25; trial++ {
				w := randWeight(3, rng)
				got := topk.TopK(b.Tree(), w, k)
				want := topk.TopK(tr, w, k)
				if len(got) != len(want) {
					t.Fatalf("n=%d k=%d: band top-k has %d results, full %d", n, k, len(got), len(want))
				}
				for i := range got {
					if got[i].Score != want[i].Score {
						t.Fatalf("n=%d k=%d rank %d: band score %v, full %v", n, k, i+1, got[i].Score, want[i].Score)
					}
					if got[i].ID != want[i].ID {
						// Continuous data: ties have probability zero, so
						// identities must match too.
						t.Fatalf("n=%d k=%d rank %d: band id %d, full %d", n, k, i+1, got[i].ID, want[i].ID)
					}
				}
			}
		}
	}
}

// TestBandCappedCountExactBelowBound checks the rank fast path: a band
// count below the band bound equals the full-tree strict-beat count, and a
// capped result only ever occurs when the true count is at least the bound.
func TestBandCappedCountExactBelowBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randPoints(3000, 3, rng)
	tr := rtree.Bulk(pts, nil)
	c := NewCache(tr, nil)
	b := c.Band(DefaultRankBand)
	if b.Full() {
		t.Fatalf("expected a real band for n=3000, k=%d", DefaultRankBand)
	}
	ctx := context.Background()
	for trial := 0; trial < 200; trial++ {
		w := randWeight(3, rng)
		q := vec.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		fq := vec.Score(w, q)
		want := topk.Rank(tr, w, fq) - 1
		cnt, capped, err := topk.CountBelowCappedCtx(ctx, b.Tree(), w, fq, b.K())
		if err != nil {
			t.Fatal(err)
		}
		if !capped && cnt != want {
			t.Fatalf("trial %d: band count %d, full count %d", trial, cnt, want)
		}
		if capped && want < b.K() {
			t.Fatalf("trial %d: capped at %d but true count %d < bound", trial, cnt, want)
		}
	}
}

// TestCachePassThroughAndCap covers the full-band pass-through for large k
// and the k-diversity cap.
func TestCachePassThroughAndCap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPoints(100, 2, rng)
	tr := rtree.Bulk(pts, nil)
	c := NewCache(tr, nil)
	if b := c.Band(40); !b.Full() || b.Tree() != tr || b.Size() != 100 {
		t.Fatalf("Band(40) over n=100 should pass through the full tree")
	}
	if got := c.Stats(); got.Bands != 0 {
		t.Fatalf("pass-through bands must not be cached, Stats = %+v", got)
	}
	for k := 1; k <= maxBands; k++ {
		c.Band(k)
	}
	st := c.Stats()
	if st.Bands != maxBands {
		t.Fatalf("cached %d bands, want %d", st.Bands, maxBands)
	}
	// Beyond the cap: served as pass-through, cache unchanged.
	if b := c.Band(maxBands + 1); !b.Full() {
		t.Fatalf("band beyond the cap should pass through")
	}
	if got := c.Stats(); got.Bands != maxBands {
		t.Fatalf("cap exceeded: %d bands cached", got.Bands)
	}
}

// TestCacheCountersAndSharing checks build/hit accounting and that one
// build is shared across concurrent readers.
func TestCacheCountersAndSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randPoints(800, 3, rng)
	tr := rtree.Bulk(pts, nil)
	ct := NewCounters()
	c := NewCache(tr, ct)
	var wg sync.WaitGroup
	bands := make([]*Band, 8)
	for i := range bands {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bands[i] = c.Band(7)
		}(i)
	}
	wg.Wait()
	for _, b := range bands[1:] {
		if b != bands[0] {
			t.Fatalf("concurrent readers got different bands")
		}
	}
	s := ct.Snapshot()
	if s.Builds != 1 {
		t.Fatalf("builds = %d, want 1", s.Builds)
	}
	if s.Builds+s.Hits < 1 {
		t.Fatalf("counters not accumulating: %+v", s)
	}
	c.Band(7)
	if got := ct.Snapshot().Hits; got < 1 {
		t.Fatalf("hits = %d after a repeat request", got)
	}
	// A second cache sharing the counters keeps accumulating.
	c2 := NewCache(tr, ct)
	c2.Band(7)
	if got := ct.Snapshot().Builds; got != 2 {
		t.Fatalf("builds across caches = %d, want 2", got)
	}
}

// TestBandKeep validates the dominance-count membership test against the
// stored band counts, including out-of-range ids and bounds above K.
func TestBandKeep(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randPoints(600, 3, rng)
	tr := rtree.Bulk(pts, nil)
	c := NewCache(tr, nil)
	b := c.Band(16)
	if b.Full() {
		t.Skip("band unexpectedly passed through")
	}
	if b.Keep(b.K()+1) != nil {
		t.Fatalf("Keep above the band bound must be nil")
	}
	keep := b.Keep(5)
	cnt := 0
	for id := int32(0); id < int32(len(pts)); id++ {
		if keep(id) {
			cnt++
		}
	}
	// Cross-check against a direct count of dominators.
	want := 0
	for i, p := range pts {
		dom := 0
		for j, o := range pts {
			if i != j && vec.Dominates(o, p) {
				dom++
			}
		}
		if dom < 5 {
			want++
		}
	}
	if cnt != want {
		t.Fatalf("Keep(5) admits %d ids, want %d", cnt, want)
	}
	if keep(int32(len(pts) + 10)) {
		t.Fatalf("Keep must reject out-of-range ids")
	}
}
