// Package skyband implements the epoch-cached k-skyband sub-index that
// accelerates every reverse-top-k-shaped evaluation.
//
// Only points dominated by fewer than k others (the k-skyband,
// dominance.KSkyband) can ever appear in a top-k result under a monotone
// linear scoring function; the k smallest scores of the dataset — and any
// strict-beat count below k — are always achieved within that set. A Band
// therefore bulk-loads the skyband points of one snapshot into a compact
// R-tree, and branch-and-bound top-k, RTA reverse top-k and capped rank
// counting run against it with results bit-identical to the full tree
// (every score is computed by vec.Score either way; only the candidate set
// shrinks, and the shrinkage provably never removes an answer).
//
// A Cache owns the bands of one snapshot. Bands are computed lazily, once
// per (snapshot, k), and shared by all readers of that snapshot; they are
// never mutated. Invalidation is the copy-on-write epoch bump: cloning an
// index creates a fresh empty Cache for the clone (and in-place mutation
// resets the mutated side's Cache), so a stale band is unreachable by
// construction. Cumulative counters survive across epochs through the
// shared Counters, which the serving engine surfaces in EngineStats.
package skyband

import (
	"context"
	"sync"
	"sync/atomic"

	"wqrtq/internal/dominance"
	"wqrtq/internal/kernel"
	"wqrtq/internal/rtree"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// DefaultRankBand is the band parameter backing rank queries, which carry
// no k of their own: a rank query is answered from the DefaultRankBand-
// skyband whenever its strict-beat count stays below this bound, and falls
// back to the full tree otherwise.
const DefaultRankBand = 32

// maxBands caps how many distinct k values one snapshot caches bands for;
// requests beyond the cap fall back to the full tree rather than grow the
// cache without bound.
const maxBands = 16

// fullBandFactor skips band construction when k is so large relative to
// the dataset that the skyband cannot prune meaningfully: for
// fullBandFactor*k >= n the full tree is served as a pass-through band.
const fullBandFactor = 4

// Counters accumulates band-cache activity across snapshots. One Counters
// is shared by every Cache in a clone family (and by every shard's cache),
// so the serving engine reports cumulative numbers over the index's whole
// lifetime, not just the current epoch.
type Counters struct {
	builds    atomic.Int64
	hits      atomic.Int64
	fallbacks atomic.Int64
}

// NewCounters creates a zeroed counter set.
func NewCounters() *Counters { return &Counters{} }

// CountFallback records one rank query that exceeded its band bound and
// fell back to the full tree.
func (c *Counters) CountFallback() {
	if c != nil {
		c.fallbacks.Add(1)
	}
}

// CountersSnapshot is a point-in-time copy of the cumulative counters.
type CountersSnapshot struct {
	Builds    int64 `json:"builds"`
	Hits      int64 `json:"hits"`
	Fallbacks int64 `json:"fallbacks"`
}

// Snapshot copies the counters.
func (c *Counters) Snapshot() CountersSnapshot {
	if c == nil {
		return CountersSnapshot{}
	}
	return CountersSnapshot{
		Builds:    c.builds.Load(),
		Hits:      c.hits.Load(),
		Fallbacks: c.fallbacks.Load(),
	}
}

// Band is the k-skyband of one snapshot, bulk-loaded into its own R-tree.
// Bands are immutable and safe for concurrent use.
type Band struct {
	k    int
	tree *rtree.Tree
	size int
	full bool // the band is the whole dataset (pass-through, no separate tree)
	// counts holds each member's exact dominance count indexed by record
	// id (-1 for non-members, whose count is >= k). nil for pass-through
	// bands.
	counts []int32
	// coords is the lazily built column-major image of the band points for
	// the blocked scoring kernel; one sync.Once-guarded flatten shared by
	// every reader of the band. coordsReady fronts the Once with one atomic
	// load so the steady-state Coords call stays inlinable (sync.Once.Do
	// alone costs more than the inlining budget); the Store inside the Do
	// publishes the flatten to every reader that observes true.
	coordsOnce  sync.Once
	coordsReady atomic.Bool
	coords      kernel.Coords
}

// K returns the band parameter.
func (b *Band) K() int { return b.k }

// Tree returns the R-tree over the band points (the snapshot's full tree
// for a pass-through band). Record ids are the original dataset ids.
func (b *Band) Tree() *rtree.Tree { return b.tree }

// Size returns the number of points in the band.
func (b *Band) Size() int { return b.size }

// Full reports a pass-through band: k was too large for the skyband to
// prune, so the band tree is the snapshot's full tree.
func (b *Band) Full() bool { return b.full }

// Coords returns the band's flattened column-major coordinates for the
// blocked scoring kernel, built lazily on first use and shared by all
// readers (bands are immutable, so the image never goes stale). The point
// order is the band tree's visit order; blocked counting is order-
// independent, so consumers see the same counts as a tree evaluation.
// Callers should bound the band size themselves before flattening a
// pass-through band, whose image is the whole dataset.
//
//wqrtq:hotpath
//wqrtq:contract inline noalloc
func (b *Band) Coords() *kernel.Coords {
	if b.coordsReady.Load() {
		return &b.coords
	}
	return b.coordsSlow()
}

// coordsSlow is Coords' first-use path: one once-guarded flatten, after
// which the ready flag routes every reader through the inlined fast path.
func (b *Band) coordsSlow() *kernel.Coords {
	b.coordsOnce.Do(func() {
		b.coords.Reset(b.tree.Dim())
		b.tree.Visit(
			func(rtree.Rect, *rtree.Node) bool { return true },
			func(_ int32, p vec.Point) { b.coords.Append(p) },
		)
		b.coordsReady.Store(true)
	})
	return &b.coords
}

// Keep returns a membership test for the bound-skyband, bound <= K(): the
// returned function reports whether the record's dominance count is below
// bound (non-members of this band have count >= K() >= bound). nil for
// pass-through bands, which carry no counts.
func (b *Band) Keep(bound int) func(id int32) bool {
	if b.counts == nil || bound > b.k {
		return nil
	}
	counts := b.counts
	lim := int32(bound)
	return func(id int32) bool {
		if int(id) >= len(counts) {
			return false
		}
		c := counts[id]
		return c >= 0 && c < lim
	}
}

// Cache lazily computes and retains the bands of one snapshot. It is safe
// for concurrent use; concurrent requests for the same k share one
// computation.
type Cache struct {
	tree *rtree.Tree
	ct   *Counters
	mu   sync.Mutex
	ents map[int]*cacheEntry
	// passthrough is the shared pass-through band handed out when a k
	// cannot prune (or exceeds the cache cap); allocated once so the
	// per-query hot paths of small datasets stay allocation-free.
	passthrough atomic.Pointer[Band]
}

type cacheEntry struct {
	once sync.Once
	// band is stored atomically so Stats can peek at entries that another
	// goroutine is still building without racing the once.Do write.
	band atomic.Pointer[Band]
}

// NewCache creates an empty cache over the snapshot tree t. ct carries the
// cumulative counters shared across the clone family; nil allocates a
// private set.
func NewCache(t *rtree.Tree, ct *Counters) *Cache {
	if ct == nil {
		ct = NewCounters()
	}
	return &Cache{tree: t, ct: ct, ents: make(map[int]*cacheEntry)}
}

// Counters returns the cumulative counter set, for propagation into the
// cache of the next snapshot.
func (c *Cache) Counters() *Counters { return c.ct }

// Band returns the band for parameter k, computing it on first use. k
// values that cannot prune (fullBandFactor*k >= n) and requests beyond the
// cache's k-diversity cap are served as pass-through bands over the full
// tree, costing nothing.
//
// Construction deliberately takes no context: a band is shared cache state
// for every reader of the snapshot (like the engine's result cache), so
// one request's cancellation must not abort or poison the build its
// co-readers are waiting on. The work is bounded — one tree walk plus the
// sort-filter — and paid once per (snapshot, k).
func (c *Cache) Band(k int) *Band {
	if k < 1 {
		k = 1
	}
	n := c.tree.Len()
	if fullBandFactor*k >= n {
		return c.passBand()
	}
	c.mu.Lock()
	e, ok := c.ents[k]
	if !ok {
		if len(c.ents) >= maxBands {
			c.mu.Unlock()
			return c.passBand()
		}
		e = &cacheEntry{}
		c.ents[k] = e
	}
	c.mu.Unlock()
	if ok {
		c.ct.hits.Add(1)
	}
	e.once.Do(func() {
		e.band.Store(compute(c.tree, k))
		c.ct.builds.Add(1)
	})
	return e.band.Load()
}

// passBand returns the cache's shared pass-through band. Its K reads 0 —
// pass-through bands serve any k, and no consumer inspects K when Full
// reports true.
func (c *Cache) passBand() *Band {
	if b := c.passthrough.Load(); b != nil {
		return b
	}
	b := &Band{tree: c.tree, size: c.tree.Len(), full: true}
	c.passthrough.Store(b)
	return b
}

// compute collects the snapshot's live points, filters them to the
// k-skyband and bulk-loads the result, preserving original record ids.
func compute(t *rtree.Tree, k int) *Band {
	n := t.Len()
	pts := make([]vec.Point, 0, n)
	ids := make([]int32, 0, n)
	t.Visit(
		func(rtree.Rect, *rtree.Node) bool { return true },
		func(id int32, p vec.Point) {
			pts = append(pts, p)
			ids = append(ids, id)
		},
	)
	band := dominance.KSkyband(pts, k)
	bp := make([]vec.Point, len(band))
	bi := make([]int32, len(band))
	maxID := int32(-1)
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	counts := make([]int32, maxID+1)
	for i := range counts {
		counts[i] = -1
	}
	for i, m := range band {
		bp[i] = pts[m.Index]
		bi[i] = ids[m.Index]
		counts[bi[i]] = int32(m.Count)
	}
	// Band trees are memory-resident accelerators, not simulated disk
	// pages: a small fanout makes each branch-and-bound expansion push
	// far fewer heap entries, which is where band top-k time goes.
	opts := rtree.Options{PageSize: 1024}
	return &Band{k: k, tree: rtree.Bulk(bp, bi, opts), size: len(band), counts: counts}
}

// CountBelowCtx counts the points of t scoring strictly below fq under w,
// band-first: the DefaultRankBand-skyband count is exact whenever it stays
// below the band bound (any dataset with >= K beaters has >= K of them
// inside the K-skyband); a capped count falls back to the count-pruned
// full tree and is tallied in the cache's fallback counter. A nil cache —
// the skyband-off ablation — goes straight to the full tree. This is the
// single rank-counting rule shared by the monolithic and per-shard paths.
func CountBelowCtx(ctx context.Context, c *Cache, t *rtree.Tree, w vec.Weight, fq float64) (int, error) {
	if c != nil {
		if b := c.Band(DefaultRankBand); !b.Full() {
			cnt, capped, err := topk.CountBelowCappedCtx(ctx, b.Tree(), w, fq, b.K())
			if err != nil {
				return 0, err
			}
			if !capped {
				return cnt, nil
			}
			c.Counters().CountFallback()
		}
	}
	return topk.CountBelowCtx(ctx, t, w, fq)
}

// Stats is a point-in-time view of one cache's contents.
type Stats struct {
	// Bands is the number of bands materialized for this snapshot.
	Bands int `json:"bands"`
	// Points is the total point count across those bands.
	Points int `json:"points"`
}

// Stats reports the cache's current contents (pass-through bands are not
// counted; they hold no state).
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s Stats
	//wqrtq:unordered summing int counters; result is order-free
	for _, e := range c.ents {
		if b := e.band.Load(); b != nil {
			s.Bands++
			s.Points += b.size
		}
	}
	return s
}
