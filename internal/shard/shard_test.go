package shard

// Differential tests of the scatter-gather set against the monolithic
// R-tree algorithms over the same points: every query must return identical
// results for every shard count, including shard counts exceeding the
// number of STR leaf runs (empty shards) and after mutations and clones.

import (
	"context"
	"math/rand"
	"testing"

	"wqrtq/internal/dataset"
	"wqrtq/internal/rtopk"
	"wqrtq/internal/rtree"
	"wqrtq/internal/sample"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

func sameResults(t *testing.T, label string, got, want []topk.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Score != want[i].Score {
			t.Fatalf("%s: rank %d score %v, want %v", label, i+1, got[i].Score, want[i].Score)
		}
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: rank %d id %d, want %d", label, i+1, got[i].ID, want[i].ID)
		}
	}
}

func TestSetDifferential(t *testing.T) {
	ctx := context.Background()
	for caseIdx := 0; caseIdx < 40; caseIdx++ {
		rng := rand.New(rand.NewSource(int64(500 + caseIdx)))
		n := 1 + rng.Intn(400)
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(12)
		ds := dataset.Independent(n, d, int64(caseIdx+1))
		tree := ds.Tree()
		for _, s := range []int{1, 2, 3, 7, 64} {
			set, err := New(ds.Points, s)
			if err != nil {
				t.Fatal(err)
			}
			if set.Shards() != s {
				t.Fatalf("Shards() = %d, want %d", set.Shards(), s)
			}
			if set.Len() != n {
				t.Fatalf("Len() = %d, want %d", set.Len(), n)
			}
			w := sample.RandSimplex(rng, d)
			q := make(vec.Point, d)
			for j := range q {
				q[j] = rng.Float64() * rng.Float64()
			}

			got, err := set.TopKCtx(ctx, w, k)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := topk.TopKCtx(ctx, tree, w, k)
			sameResults(t, "TopK", got, want)

			fq := vec.Score(w, q)
			cnt, err := set.CountBelowCtx(ctx, w, fq)
			if err != nil {
				t.Fatal(err)
			}
			if wantCnt := topk.Rank(tree, w, fq) - 1; cnt != wantCnt {
				t.Fatalf("s=%d: CountBelow = %d, want %d", s, cnt, wantCnt)
			}

			W := make([]vec.Weight, 1+rng.Intn(20))
			for j := range W {
				W[j] = sample.RandSimplex(rng, d)
			}
			gotR, gotStats, err := set.BichromaticCtx(ctx, W, q, k)
			if err != nil {
				t.Fatal(err)
			}
			wantR, wantStats := rtopk.Bichromatic(tree, W, q, k)
			if len(gotR) != len(wantR) {
				t.Fatalf("s=%d: reverse top-k %v, want %v", s, gotR, wantR)
			}
			for j := range gotR {
				if gotR[j] != wantR[j] {
					t.Fatalf("s=%d: reverse top-k %v, want %v", s, gotR, wantR)
				}
			}
			if gotStats != wantStats {
				t.Fatalf("s=%d: stats %+v, want %+v", s, gotStats, wantStats)
			}

			ex, err := set.ExplainCtx(ctx, q, W[:1])
			if err != nil {
				t.Fatal(err)
			}
			wantEx, _ := topk.ExplainCtx(ctx, tree, W[0], q)
			sameResults(t, "Explain", ex[0], wantEx)
		}
	}
}

func TestSetMutationsAndClone(t *testing.T) {
	ctx := context.Background()
	const d = 3
	// Distinct seeds for the dataset and the insert pool: the same seed
	// would reproduce identical points, and duplicate points tie on every
	// score (ties order differently between merge and monolithic heap).
	rng := rand.New(rand.NewSource(70001))
	ds := dataset.Independent(200, d, 7)
	points := append([]vec.Point(nil), ds.Points...)
	set, err := New(points, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror tree for differential checks.
	tree := rtree.Bulk(points, nil)

	snapshot := set.Clone()
	snapLen := snapshot.Len()

	// Interleave inserts and deletes; the snapshot must keep answering from
	// the pre-mutation state.
	for i := 0; i < 150; i++ {
		id := len(points)
		p := vec.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		points = append(points, p)
		if err := set.Insert(p, id); err != nil {
			t.Fatal(err)
		}
		tree.Insert(p, int32(id))
		if i%3 == 0 {
			victim := rng.Intn(len(points))
			if points[victim] != nil {
				if !set.Delete(points[victim], victim) {
					t.Fatalf("delete of live id %d failed", victim)
				}
				tree.Delete(points[victim], int32(victim))
				points[victim] = nil
			}
		}
	}
	if err := set.CheckInvariants(points); err != nil {
		t.Fatal(err)
	}
	if snapshot.Len() != snapLen {
		t.Fatalf("snapshot length changed under mutations: %d -> %d", snapLen, snapshot.Len())
	}

	w := sample.RandSimplex(rng, d)
	got, err := set.TopKCtx(ctx, w, 25)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := topk.TopKCtx(ctx, tree, w, 25)
	sameResults(t, "post-mutation TopK", got, want)

	// Deleting an id twice, or one never allocated, reports false.
	if set.Delete(vec.Point{0.5, 0.5, 0.5}, len(points)+10) {
		t.Fatal("delete of unallocated id succeeded")
	}
}

func TestSetRejectsBadInput(t *testing.T) {
	if _, err := New(nil, 2); err == nil {
		t.Fatal("empty point set accepted")
	}
	if _, err := New([]vec.Point{{1, 2}}, 0); err == nil {
		t.Fatal("zero shard count accepted")
	}
	if _, err := New([]vec.Point{{1, 2}}, MaxShards+1); err == nil {
		t.Fatal("absurd shard count accepted")
	}
}

func TestSetCancellation(t *testing.T) {
	ds := dataset.Independent(3000, 3, 11)
	set, err := New(ds.Points, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := vec.Weight{0.2, 0.3, 0.5}
	if _, err := set.TopKCtx(ctx, w, 10); err == nil {
		t.Fatal("canceled TopK returned nil error")
	}
	W := make([]vec.Weight, 64)
	rng := rand.New(rand.NewSource(3))
	for i := range W {
		W[i] = sample.RandSimplex(rng, 3)
	}
	if _, _, err := set.BichromaticCtx(ctx, W, vec.Point{0.1, 0.1, 0.1}, 10); err == nil {
		t.Fatal("canceled BichromaticCtx returned nil error")
	}
}
