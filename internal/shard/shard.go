// Package shard partitions a point set into S spatial shards, each backed
// by its own copy-on-write R-tree, and executes every core query by
// scatter-gather: per-shard branch-and-bound top-k merged through a k-way
// heap, rank as a sum of per-shard strict-beat counts, explanations as a
// merge of per-shard progressive scans, and bichromatic reverse top-k as
// the RTA loop with each weight vector's global top-k assembled from
// per-shard buffers (so the threshold-pruning test still applies globally).
//
// Partitioning is STR-order round-robin of leaf runs: the points are packed
// into leaf-sized runs in Sort-Tile-Recursive order (rtree.STRRuns) and the
// runs are dealt to shards round-robin. Consecutive runs are spatially
// adjacent tiles, so every shard receives a thin slice of every region of
// the data space. That balance is what makes per-shard top-k useful: under
// any weighting vector each shard holds roughly 1/S of the globally best
// points, so each per-shard branch-and-bound search does roughly 1/S of the
// monolithic work and the searches run concurrently.
//
// Every query result is bit-identical to the monolithic index (ties on
// score break toward the smaller record id in the merge; on continuous data
// ties do not occur): per-shard top-k merges to the global top-k score
// sequence, per-shard strict-beat counts sum to the global count, and the
// RTA loop is literally the same code (rtopk.BichromaticFuncCtx) running
// over a scatter-gather TopKFunc.
//
// Synchronization contract: same as rtree.Tree — Clone and mutations of
// sets in the same clone family must be externally serialized; read-only
// queries are safe concurrently with Clone of this set and with mutations
// of other sets in the family (the serving engine's publish-a-snapshot
// pattern).
package shard

import (
	"context"
	"fmt"
	"sync"

	"wqrtq/internal/cellindex"
	"wqrtq/internal/kernel"
	"wqrtq/internal/rtopk"
	"wqrtq/internal/rtree"
	"wqrtq/internal/skyband"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// Set is a spatially partitioned index: S copy-on-write R-trees plus the
// id → shard ownership table that routes mutations.
type Set struct {
	dim   int
	trees []*rtree.Tree
	// owner maps record id → shard index; -1 marks an id deleted before the
	// set was built. It grows by one per Insert and is copy-on-write across
	// clones, like the Index id table.
	owner       []int32
	sharedOwner bool
	// skies are the per-shard k-skyband caches (nil when the skyband
	// sub-index is disabled). A point in the global top-k is in its own
	// shard's top-k, hence in that shard's local k-skyband, so evaluating
	// each shard against its local band and merging preserves scatter-
	// gather results exactly. Caches are per-snapshot: Clone builds fresh
	// ones over the cloned trees, and a mutation resets the touched
	// shard's, so stale bands are unreachable.
	skies []*skyband.Cache
	// kct enables the blocked scoring kernel for reverse top-k (nil = the
	// -kernel=off ablation): when the per-shard candidate bands fit the
	// kernel cutoff, each shard counts strict beaters for the whole weight
	// block in flattened sweeps and the gather sums the counts, instead of
	// running the per-vector RTA top-k lockstep. The counters are shared
	// across the clone family, like the skyband counters.
	kct *kernel.Counters
	// cellCt enables the materialized cell index for reverse top-k (nil =
	// the -cellindex=off ablation); cells are the per-shard grid caches,
	// derived from the skyband caches whenever both sub-indexes are on
	// (each shard's grids build over its local bands, so the shard-wise
	// count-preservation argument of bichromaticBlocked carries over).
	cellCt *cellindex.Counters
	cells  []*cellindex.Cache
}

// MaxShards bounds the shard count: every query fans out one goroutine per
// shard (and the RTA loop keeps one worker per shard), so an absurd S would
// turn each request into an allocation storm. Useful values track the core
// count; the cap just rejects typos like -shards 1000000 at setup time.
const MaxShards = 1024

// New partitions points (indexed by record id; nil entries are deleted ids)
// into s shards by STR-order round-robin of leaf runs. s must be in
// [1, MaxShards]; shards beyond the number of runs stay empty until inserts
// reach them.
func New(points []vec.Point, s int, opts ...rtree.Options) (*Set, error) {
	if s < 1 {
		return nil, fmt.Errorf("shard: shard count %d must be at least 1", s)
	}
	if s > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d exceeds the maximum %d", s, MaxShards)
	}
	dim := 0
	live := make([]vec.Point, 0, len(points))
	liveIDs := make([]int32, 0, len(points))
	for id, p := range points {
		if p == nil {
			continue
		}
		dim = len(p)
		live = append(live, p)
		liveIDs = append(liveIDs, int32(id))
	}
	if dim == 0 {
		return nil, fmt.Errorf("shard: empty point set")
	}
	set := &Set{dim: dim, trees: make([]*rtree.Tree, s), owner: make([]int32, len(points))}
	for i := range set.owner {
		set.owner[i] = -1
	}
	runs := rtree.STRRuns(live, liveIDs, opts...)
	perShard := make([][]vec.Point, s)
	perIDs := make([][]int32, s)
	for j, run := range runs {
		si := j % s
		for _, id := range run {
			perShard[si] = append(perShard[si], points[id])
			perIDs[si] = append(perIDs[si], id)
			set.owner[id] = int32(si)
		}
	}
	for i := 0; i < s; i++ {
		if len(perShard[i]) == 0 {
			set.trees[i] = rtree.New(dim, opts...)
			continue
		}
		set.trees[i] = rtree.Bulk(perShard[i], perIDs[i], opts...)
	}
	return set, nil
}

// Shards returns the number of partitions.
func (s *Set) Shards() int { return len(s.trees) }

// Len returns the total number of live points across all shards.
func (s *Set) Len() int {
	n := 0
	for _, t := range s.trees {
		n += t.Len()
	}
	return n
}

// Clone returns a copy-on-write snapshot of the set in O(S): every shard
// tree is cloned (sharing all nodes) and the ownership table is shared
// until the next mutation of either side. Skyband caches are not shared:
// the clone gets fresh empty ones (same cumulative counters), computed
// lazily on first use.
func (s *Set) Clone() *Set {
	c := &Set{
		dim:         s.dim,
		trees:       make([]*rtree.Tree, len(s.trees)),
		owner:       s.owner[:len(s.owner):len(s.owner)],
		sharedOwner: true,
	}
	for i, t := range s.trees {
		c.trees[i] = t.Clone()
	}
	c.cellCt = s.cellCt // before EnableSkyband, which derives the grid caches
	if s.skies != nil {
		c.EnableSkyband(s.skies[0].Counters())
	}
	c.kct = s.kct
	s.sharedOwner = true
	return c
}

// EnableSkyband attaches a fresh per-shard skyband cache to every shard
// tree; bands are computed lazily per (shard, k) on first use. ct carries
// the cumulative counters shared with the rest of the clone family (nil
// allocates a private set).
func (s *Set) EnableSkyband(ct *skyband.Counters) {
	if ct == nil {
		ct = skyband.NewCounters()
	}
	skies := make([]*skyband.Cache, len(s.trees))
	for i, t := range s.trees {
		skies[i] = skyband.NewCache(t, ct)
	}
	s.skies = skies
	s.syncCells()
}

// DisableSkyband detaches the per-shard skyband caches; queries revert to
// the full shard trees. The cell-index caches go with them (their grids
// build over the local bands).
func (s *Set) DisableSkyband() {
	s.skies = nil
	s.cells = nil
}

// EnableKernel routes eligible reverse top-k evaluations through the
// blocked scoring kernel, recording work in ct (nil allocates a private
// counter set).
func (s *Set) EnableKernel(ct *kernel.Counters) {
	if ct == nil {
		ct = kernel.NewCounters()
	}
	s.kct = ct
}

// DisableKernel reverts reverse top-k to the per-vector RTA lockstep.
func (s *Set) DisableKernel() { s.kct = nil }

// KernelEnabled reports whether the blocked kernel is active.
func (s *Set) KernelEnabled() bool { return s.kct != nil }

// EnableCellIndex routes eligible reverse top-k evaluations through
// per-shard materialized cell grids, recording activity in ct (nil
// allocates a private counter set). The grids build over the per-shard
// skyband bands, so they activate only while the skyband sub-index is on.
func (s *Set) EnableCellIndex(ct *cellindex.Counters) {
	if ct == nil {
		ct = cellindex.NewCounters()
	}
	s.cellCt = ct
	s.syncCells()
}

// DisableCellIndex reverts reverse top-k to the kernel/RTA paths.
func (s *Set) DisableCellIndex() {
	s.cellCt = nil
	s.cells = nil
}

// CellIndexEnabled reports whether the cell-index caches are active.
func (s *Set) CellIndexEnabled() bool { return s.cells != nil }

// CellIndexStats sums the per-shard grid-cache contents.
func (s *Set) CellIndexStats() cellindex.Stats {
	var st cellindex.Stats
	for _, c := range s.cells {
		cs := c.Stats()
		st.Grids += cs.Grids
		st.Cells += cs.Cells
		st.Candidates += cs.Candidates
	}
	return st
}

// syncCells rebuilds the per-shard grid caches over the current skyband
// caches, or detaches them when either sub-index is off.
func (s *Set) syncCells() {
	if s.cellCt == nil || s.skies == nil {
		s.cells = nil
		return
	}
	cells := make([]*cellindex.Cache, len(s.skies))
	for i, sky := range s.skies {
		cells[i] = cellindex.NewCache(sky, s.dim, s.cellCt)
	}
	s.cells = cells
}

// SkybandEnabled reports whether the per-shard skyband caches are active.
func (s *Set) SkybandEnabled() bool { return s.skies != nil }

// SkybandStats sums the per-shard cache contents.
func (s *Set) SkybandStats() skyband.Stats {
	var st skyband.Stats
	for _, c := range s.skies {
		cs := c.Stats()
		st.Bands += cs.Bands
		st.Points += cs.Points
	}
	return st
}

// resetSky invalidates shard i's skyband cache after an in-place mutation
// of its tree.
func (s *Set) resetSky(i int) {
	if s.skies != nil {
		s.skies[i] = skyband.NewCache(s.trees[i], s.skies[i].Counters())
		if s.cells != nil {
			s.cells[i] = cellindex.NewCache(s.skies[i], s.dim, s.cellCt)
		}
	}
}

// bandTree returns the tree queries against shard i should run on for
// parameter k: the shard's local k-skyband tree when enabled, the full
// shard tree otherwise. The second return is the candidate count.
func (s *Set) bandTree(i, k int) (*rtree.Tree, int) {
	if s.skies == nil {
		return s.trees[i], s.trees[i].Len()
	}
	b := s.skies[i].Band(k)
	return b.Tree(), b.Size()
}

// band returns shard i's local k-skyband band, or nil when the skyband
// sub-index is disabled.
func (s *Set) band(i, k int) *skyband.Band {
	if s.skies == nil {
		return nil
	}
	return s.skies[i].Band(k)
}

// ownOwner gives the set a private copy of the ownership table when it is
// shared with a clone, sized for one more id.
func (s *Set) ownOwner() {
	if !s.sharedOwner {
		return
	}
	owner := make([]int32, len(s.owner), len(s.owner)+1)
	copy(owner, s.owner)
	s.owner = owner
	s.sharedOwner = false
}

// Insert routes a new point to the least-loaded shard (ties to the lowest
// shard index, so placement is deterministic). id must be the next
// unallocated record id.
func (s *Set) Insert(p vec.Point, id int) error {
	if id != len(s.owner) {
		return fmt.Errorf("shard: insert id %d, want next id %d", id, len(s.owner))
	}
	best := 0
	for i := 1; i < len(s.trees); i++ {
		if s.trees[i].Len() < s.trees[best].Len() {
			best = i
		}
	}
	s.ownOwner()
	s.owner = append(s.owner, int32(best))
	s.trees[best].Insert(p, int32(id))
	s.resetSky(best)
	return nil
}

// Delete removes (p, id) from its owning shard, reporting whether the entry
// was found.
func (s *Set) Delete(p vec.Point, id int) bool {
	if id < 0 || id >= len(s.owner) || s.owner[id] < 0 {
		return false
	}
	si := s.owner[id]
	if !s.trees[si].Delete(p, int32(id)) {
		return false
	}
	s.resetSky(int(si))
	return true
}

// TopKCtx returns the k globally best points under w in rank order: each
// shard runs its own branch-and-bound top-k concurrently and the per-shard
// buffers merge through a k-way heap.
func (s *Set) TopKCtx(ctx context.Context, w vec.Weight, k int) ([]topk.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(s.trees) == 1 {
		return topk.TopKCtx(ctx, s.trees[0], w, k)
	}
	per := make([][]topk.Result, len(s.trees))
	errs := make([]error, len(s.trees))
	s.scatter(func(i int, t *rtree.Tree) {
		per[i], errs[i] = topk.TopKCtx(ctx, t, w, k)
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return s.gatherMerge(ctx, per, k)
}

// CountBelowCtx returns the number of points scoring strictly below fq
// under w, summed across shards. The global rank of fq is one plus this.
// With the skyband sub-index enabled, each shard first counts over its
// local DefaultRankBand-skyband — exact whenever the local count stays
// below the band bound — and falls back to its full tree otherwise, so the
// sum is always the exact global count.
func (s *Set) CountBelowCtx(ctx context.Context, w vec.Weight, fq float64) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if len(s.trees) == 1 {
		return s.countBelowShard(ctx, 0, w, fq)
	}
	counts := make([]int, len(s.trees))
	errs := make([]error, len(s.trees))
	s.scatter(func(i int, t *rtree.Tree) {
		counts[i], errs[i] = s.countBelowShard(ctx, i, w, fq)
	})
	if err := firstError(errs); err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// countBelowShard counts shard i's strict beats of fq, band-first
// (skyband.CountBelowCtx: exact local band count when below the bound,
// full shard tree otherwise).
func (s *Set) countBelowShard(ctx context.Context, i int, w vec.Weight, fq float64) (int, error) {
	var sky *skyband.Cache
	if s.skies != nil {
		sky = s.skies[i]
	}
	return skyband.CountBelowCtx(ctx, sky, s.trees[i], w, fq)
}

// ExplainCtx returns, for each weighting vector, the points scoring
// strictly better than q in rank order: per-shard progressive scans merged
// per vector.
func (s *Set) ExplainCtx(ctx context.Context, q vec.Point, ws []vec.Weight) ([][]topk.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([][]topk.Result, len(ws))
	for wi, w := range ws {
		if len(s.trees) == 1 {
			res, err := topk.ExplainCtx(ctx, s.trees[0], w, q)
			if err != nil {
				return nil, err
			}
			out[wi] = res
			continue
		}
		per := make([][]topk.Result, len(s.trees))
		errs := make([]error, len(s.trees))
		s.scatter(func(i int, t *rtree.Tree) {
			per[i], errs[i] = topk.ExplainCtx(ctx, t, w, q)
		})
		if err := firstError(errs); err != nil {
			return nil, err
		}
		merged, err := s.gatherMerge(ctx, per, -1)
		if err != nil {
			return nil, err
		}
		out[wi] = merged
	}
	return out, nil
}

// BichromaticCtx answers the bichromatic reverse top-k query with the RTA
// loop running over scatter-gather top-k: one persistent worker per shard
// evaluates each non-pruned vector's local top-k, the gather merges the
// per-shard buffers into the global top-k, and rtopk's threshold test runs
// against that global buffer — so pruning decisions, results and statistics
// are identical to the monolithic algorithm.
func (s *Set) BichromaticCtx(ctx context.Context, W []vec.Weight, q vec.Point, k int) ([]int, rtopk.Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, rtopk.Stats{}, err
	}
	if len(s.trees) == 1 {
		if s.cells != nil && s.kct != nil && s.dim <= 4 {
			if g := s.cells[0].Grid(k); g != nil {
				res, scanned, ok, err := g.ReverseTopK(ctx, W, q, k)
				if err != nil {
					return nil, rtopk.Stats{}, err
				}
				if ok {
					s.kct.Add(len(W), scanned)
					s.cellCt.CountLookups(len(W))
					return res, rtopk.Stats{Evaluated: len(W), CandidateSetSize: g.BasisSize()}, nil
				}
				s.cellCt.CountFallback()
			}
		}
		if b := s.band(0, k); b != nil && s.kct != nil && s.dim <= 4 && b.Size() <= rtopk.CoordsCutoff {
			res, stats, err := rtopk.BichromaticCoordsCtx(ctx, b.Coords(), W, q, k, s.kct)
			stats.CandidateSetSize = b.Size()
			return res, stats, err
		}
		bt, size := s.bandTree(0, k)
		res, stats, err := rtopk.BichromaticCtx(ctx, bt, W, q, k)
		stats.CandidateSetSize = size
		return res, stats, err
	}
	if s.cells != nil && s.kct != nil && s.dim <= 4 {
		// Resolve every shard's grid concurrently (first use after a
		// snapshot swap builds the local bands and grids in parallel); any
		// ineligible shard aborts the whole cell path so the query runs one
		// deterministic algorithm end to end.
		grids := make([]*cellindex.Grid, len(s.cells))
		s.scatter(func(i int, _ *rtree.Tree) { grids[i] = s.cells[i].Grid(k) })
		eligible := true
		for _, g := range grids {
			if g == nil {
				eligible = false
				break
			}
		}
		if eligible {
			res, stats, ok, err := s.bichromaticCells(ctx, W, q, k, grids)
			if err != nil {
				return nil, stats, err
			}
			if ok {
				return res, stats, nil
			}
			s.cellCt.CountFallback()
		}
	}
	// Resolve every shard's candidate tree up front, concurrently: first
	// use after a snapshot swap builds the local k-skybands in parallel.
	bts := make([]*rtree.Tree, len(s.trees))
	sizes := make([]int, len(s.trees))
	bands := make([]*skyband.Band, len(s.trees))
	s.scatter(func(i int, t *rtree.Tree) {
		if b := s.band(i, k); b != nil {
			bands[i] = b
			bts[i], sizes[i] = b.Tree(), b.Size()
		} else {
			bts[i], sizes[i] = s.trees[i], s.trees[i].Len()
		}
	})
	candTotal := 0
	for _, sz := range sizes {
		candTotal += sz
	}
	if s.kct != nil && s.skies != nil && s.dim <= 4 && candTotal <= rtopk.CoordsCutoff {
		return s.bichromaticBlocked(ctx, W, q, k, bands, candTotal)
	}
	type shardTopK struct {
		res []topk.Result
		err error
	}
	jobs := make([]chan vec.Weight, len(s.trees))
	outs := make([]chan shardTopK, len(s.trees))
	for i := range s.trees {
		jobs[i] = make(chan vec.Weight)
		outs[i] = make(chan shardTopK)
		go func(i int, t *rtree.Tree) {
			for w := range jobs[i] {
				res, err := topk.TopKCtx(ctx, t, w, k)
				outs[i] <- shardTopK{res: res, err: err}
			}
		}(i, bts[i])
	}
	defer func() {
		for i := range jobs {
			close(jobs[i])
		}
	}()
	eval := func(ctx context.Context, w vec.Weight, k int) ([]topk.Result, error) {
		for i := range jobs {
			jobs[i] <- w
		}
		per := make([][]topk.Result, len(s.trees))
		var firstErr error
		for i := range outs {
			r := <-outs[i] // always drain every shard to keep workers in lockstep
			per[i] = r.res
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return s.gatherMerge(ctx, per, k)
	}
	res, stats, err := rtopk.BichromaticFuncCtx(ctx, W, q, k, eval)
	stats.CandidateSetSize = candTotal
	return res, stats, err
}

// bichromaticBlocked answers the bichromatic query by per-shard blocked
// counting: each shard sweeps its flattened local k-skyband once per
// kernel.BlockSize weights, and the gather sums the per-shard strict-beat
// counts. A shard's local band count is exact while below k and saturates
// at >= k otherwise (the count-preservation property on
// rtopk.BichromaticCoordsCtx, applied shard-wise), so the summed test
// sum < k decides global membership exactly as the merged RTA evaluation:
// if the true global count is below k every local count is exact, and if
// it is not, either some shard saturates at >= k or the exact locals
// already sum past k.
func (s *Set) bichromaticBlocked(ctx context.Context, W []vec.Weight, q vec.Point, k int, bands []*skyband.Band, candTotal int) ([]int, rtopk.Stats, error) {
	stats := rtopk.Stats{Evaluated: len(W), CandidateSetSize: candTotal}
	fqs := make([]float64, len(W))
	for i, w := range W {
		fqs[i] = vec.Score(w, q)
	}
	at := func(j int) []float64 { return W[j] }
	per := make([][]int, len(bands))
	errs := make([]error, len(bands))
	s.scatter(func(i int, _ *rtree.Tree) {
		sc := kernel.GetScratch()
		defer kernel.PutScratch(sc)
		counts := make([]int, len(W))
		errs[i] = kernel.CountBelowWeightsCtx(ctx, bands[i].Coords(), len(W), at, fqs, counts, sc, s.kct)
		per[i] = counts
	})
	if err := firstError(errs); err != nil {
		return nil, stats, err
	}
	var result []int
	for wi := range W {
		total := 0
		for i := range per {
			total += per[i][wi]
		}
		if total < k {
			result = append(result, wi)
		}
	}
	return result, stats, nil
}

// bichromaticCells answers the bichromatic query from the per-shard cell
// grids: each shard point-locates every weight in its own grid and counts
// cell-local strict beaters capped at k-1, and the gather sums the counts.
// A shard's capped count is exact while below k and saturates at >= k
// otherwise (cellindex count preservation over the local band, which is
// itself count-preserving for the shard tree), so sum < k decides global
// membership exactly as the merged RTA evaluation — the same shard-wise
// argument as bichromaticBlocked. ok is false when any shard failed a
// point location; the caller reruns the query on a legacy path.
func (s *Set) bichromaticCells(ctx context.Context, W []vec.Weight, q vec.Point, k int, grids []*cellindex.Grid) ([]int, rtopk.Stats, bool, error) {
	candTotal := 0
	for _, g := range grids {
		candTotal += g.BasisSize()
	}
	stats := rtopk.Stats{Evaluated: len(W), CandidateSetSize: candTotal}
	per := make([][]int, len(grids))
	scanned := make([]int, len(grids))
	missed := make([]bool, len(grids))
	errs := make([]error, len(grids))
	s.scatter(func(i int, _ *rtree.Tree) {
		counts := make([]int, len(W))
		for wi, w := range W {
			if wi&63 == 0 {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
			}
			fq := vec.Score(w, q)
			cnt, sc, ok := grids[i].CountBelowCapped(w, fq, k-1)
			if !ok {
				missed[i] = true
				return
			}
			scanned[i] += sc
			counts[wi] = cnt
		}
		per[i] = counts
	})
	if err := firstError(errs); err != nil {
		return nil, stats, false, err
	}
	for _, m := range missed {
		if m {
			return nil, stats, false, nil
		}
	}
	totalScanned := 0
	for _, sc := range scanned {
		totalScanned += sc
	}
	s.kct.Add(len(W), totalScanned)
	s.cellCt.CountLookups(len(W))
	var result []int
	for wi := range W {
		total := 0
		for i := range per {
			total += per[i][wi]
		}
		if total < k {
			result = append(result, wi)
		}
	}
	return result, stats, true, nil
}

// scatter runs fn once per shard on its own goroutine and waits for all of
// them. Per-shard cancellation happens inside fn (the searches poll ctx);
// the gather side polls via gatherMerge.
func (s *Set) scatter(fn func(i int, t *rtree.Tree)) {
	var wg sync.WaitGroup
	wg.Add(len(s.trees))
	for i, t := range s.trees {
		go func(i int, t *rtree.Tree) {
			defer wg.Done()
			fn(i, t)
		}(i, t)
	}
	wg.Wait()
}

// gatherMerge merges per-shard score-sorted buffers into the global order;
// the merge loop polls ctx (via internal/ctxcheck inside topk.MergeCtx) so
// gathering a huge merged list remains cancelable.
func (s *Set) gatherMerge(ctx context.Context, per [][]topk.Result, k int) ([]topk.Result, error) {
	return topk.MergeCtx(ctx, per, k)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CheckInvariants verifies the structural invariants of every shard tree,
// the ownership table, and the cross-shard point count. points is the
// id-indexed table of live points (nil = deleted), as kept by the Index.
func (s *Set) CheckInvariants(points []vec.Point) error {
	if len(s.owner) != len(points) {
		return fmt.Errorf("shard: ownership table has %d ids, index has %d", len(s.owner), len(points))
	}
	for i, t := range s.trees {
		if err := t.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	live := 0
	for id, p := range points {
		if p == nil {
			continue
		}
		live++
		if o := s.owner[id]; o < 0 || int(o) >= len(s.trees) {
			return fmt.Errorf("shard: live id %d has invalid owner %d", id, o)
		}
	}
	if got := s.Len(); got != live {
		return fmt.Errorf("shard: %d points across shards, %d live ids", got, live)
	}
	return nil
}
