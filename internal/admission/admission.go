// Package admission implements the serving engine's overload-control
// front door: per-class token buckets, an AIMD adaptive concurrency
// limiter, and deadline-aware early shedding.
//
// Every request passes Admit before it is allowed to cost a queue slot or
// an index traversal. A request is shed — with a machine-readable reason
// and a Retry-After hint — when:
//
//   - its context's remaining budget is below the current p50 service
//     time for its class ("doomed": it would almost certainly expire
//     while queued, so rejecting it now is strictly cheaper for everyone);
//   - its class's token bucket is empty ("rate": sustained arrival rate
//     above the configured ceiling);
//   - its class's adaptive concurrency limit is reached ("concurrency":
//     the AIMD controller has concluded that more in-flight work pushes
//     latency past the target).
//
// Queries and mutations are separate classes with independent buckets,
// limits and latency statistics, so a query storm cannot starve writes
// and vice versa.
//
// The AIMD loop is the classic TCP-shaped controller: every completed
// request whose latency is at or under the target nudges the limit up
// additively (+1 per limit's worth of successes); a completion over the
// target cuts the limit multiplicatively (×0.9), at most once per decrease
// interval so one slow burst does not collapse the window. The limit
// floats between 1 and MaxInflight.
//
// InjectLatency and InjectErrors are chaos hooks: they let the load
// harness and the degraded-mode tests stall or fail admissions on demand,
// proving the shedding and retry surfaces without needing a real overload.
package admission

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wqrtq/internal/feq"
)

// Class selects the admission class of a request.
type Class int

const (
	// Query is the read class: topk, rank, rtopk, explain, whynot and the
	// refinement endpoints.
	Query Class = iota
	// Mutation is the write class: insert and delete.
	Mutation
	numClasses
)

// String returns the class name used in stats and shed reasons.
func (c Class) String() string {
	if c == Mutation {
		return "mutation"
	}
	return "query"
}

// Shed reasons, surfaced in OverloadError and /v1/stats.
const (
	// ReasonDoomed: the request's remaining context budget is below the
	// class's observed p50 service time.
	ReasonDoomed = "doomed_deadline"
	// ReasonRate: the class's token bucket is empty.
	ReasonRate = "rate_limit"
	// ReasonConcurrency: the class's adaptive in-flight limit is reached.
	ReasonConcurrency = "concurrency_limit"
	// ReasonInjected: a chaos hook (InjectErrors) forced the rejection.
	ReasonInjected = "fault_injected"
)

// Config tunes a Controller. The zero value gives unlimited rate, a
// 256-request concurrency ceiling and a 50ms latency target per class.
type Config struct {
	// MaxInflight is the ceiling of each class's adaptive concurrency
	// limit; <= 0 uses 256. The AIMD controller floats the effective limit
	// between 1 and this value.
	MaxInflight int
	// TargetLatency is the per-request latency the AIMD controller steers
	// toward; <= 0 uses 50ms.
	TargetLatency time.Duration
	// QueryRate and MutationRate cap each class's sustained admission rate
	// in requests/second (token bucket, burst = one second's worth, at
	// least 8). <= 0 leaves the class unmetered.
	QueryRate    float64
	MutationRate float64
	// DecreaseInterval bounds how often a class's limit can be cut
	// multiplicatively; <= 0 uses 100ms.
	DecreaseInterval time.Duration
}

// Shed describes one rejected admission.
type Shed struct {
	Class  Class
	Reason string
	// RetryAfter is the controller's hint for when a retry has a real
	// chance: the bucket refill time for rate sheds, the observed p50 for
	// the rest (zero when no data exists yet).
	RetryAfter time.Duration
}

// Ticket is one admitted request; Done must be called exactly once with
// the request's total latency when it completes.
type Ticket struct {
	lim *limiter
}

// Controller is the admission front door. All methods are safe for
// concurrent use.
type Controller struct {
	limiters [numClasses]*limiter

	// Chaos hooks (see InjectLatency, InjectErrors).
	injDelayNs atomic.Int64
	injErrs    atomic.Int64
}

// NewController builds a controller from cfg.
func NewController(cfg Config) *Controller {
	maxInflight := cfg.MaxInflight
	if maxInflight <= 0 {
		maxInflight = 256
	}
	target := cfg.TargetLatency
	if target <= 0 {
		target = 50 * time.Millisecond
	}
	decrease := cfg.DecreaseInterval
	if decrease <= 0 {
		decrease = 100 * time.Millisecond
	}
	c := &Controller{}
	rates := [numClasses]float64{Query: cfg.QueryRate, Mutation: cfg.MutationRate}
	for cl := Class(0); cl < numClasses; cl++ {
		c.limiters[cl] = newLimiter(rates[cl], maxInflight, target, decrease)
	}
	return c
}

// InjectLatency makes every subsequent Admit stall d before deciding —
// the admission-layer latency fault for chaos testing. d <= 0 clears it.
func (c *Controller) InjectLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.injDelayNs.Store(int64(d))
}

// InjectErrors makes the next n Admit calls shed with ReasonInjected.
// n <= 0 clears any remaining budget.
func (c *Controller) InjectErrors(n int) {
	if n <= 0 {
		n = 0
	}
	c.injErrs.Store(int64(n))
}

// Admit decides whether a request of the given class may proceed. A nil
// Shed means admitted; the caller must then call Ticket.Done exactly once.
func (c *Controller) Admit(ctx context.Context, class Class) (*Ticket, *Shed) {
	if d := c.injDelayNs.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if c.injErrs.Load() > 0 && c.injErrs.Add(-1) >= 0 {
		l := c.limiters[class]
		l.shedInjected.Add(1)
		return nil, &Shed{Class: class, Reason: ReasonInjected, RetryAfter: l.lat.p50()}
	}
	return c.limiters[class].admit(ctx, class)
}

// Observe feeds a completed request's latency into a class's statistics
// without an admission ticket — how the engine keeps p50 current while
// admission is disabled or bypassed (cache hits).
func (c *Controller) Observe(class Class, d time.Duration) {
	c.limiters[class].lat.observe(d)
}

// P50 returns the class's current median service-time estimate (zero
// until enough completions have been observed).
func (c *Controller) P50(class Class) time.Duration {
	return c.limiters[class].lat.p50()
}

// ClassStats is one class's admission counters, surfaced in /v1/stats.
type ClassStats struct {
	// Admitted counts requests that passed the door; Shed* count the
	// rejections by reason.
	Admitted        int64 `json:"admitted"`
	ShedDoomed      int64 `json:"shed_doomed"`
	ShedRate        int64 `json:"shed_rate"`
	ShedConcurrency int64 `json:"shed_concurrency"`
	ShedInjected    int64 `json:"shed_injected"`
	// Inflight is the current in-flight count; Limit the AIMD window it is
	// admitted against; Decreases how many times the window was cut.
	Inflight  int64   `json:"inflight"`
	Limit     float64 `json:"limit"`
	Decreases int64   `json:"decreases"`
	// P50Micros and P99Micros are the class's observed service-time
	// quantiles in microseconds (0 until enough data).
	P50Micros int64 `json:"p50_micros"`
	P99Micros int64 `json:"p99_micros"`
}

// Stats returns both classes' counters keyed by class name.
func (c *Controller) Stats() map[string]ClassStats {
	out := make(map[string]ClassStats, numClasses)
	for cl := Class(0); cl < numClasses; cl++ {
		out[cl.String()] = c.limiters[cl].stats()
	}
	return out
}

// limiter is one class's token bucket + AIMD window + latency tracker.
type limiter struct {
	rate     float64 // tokens/second; 0 = unmetered
	burst    float64
	maxLimit float64
	target   time.Duration
	decrease time.Duration

	bmu       sync.Mutex // guards tokens, lastFill
	tokens    float64
	lastFill  time.Time
	limitBits atomic.Uint64 // float64 bits of the AIMD window
	inflight  atomic.Int64
	lastCut   atomic.Int64 // unixnano of the last multiplicative decrease

	admitted        atomic.Int64
	shedDoomed      atomic.Int64
	shedRate        atomic.Int64
	shedConcurrency atomic.Int64
	shedInjected    atomic.Int64
	cuts            atomic.Int64

	lat latencyTracker
}

func newLimiter(rate float64, maxInflight int, target, decrease time.Duration) *limiter {
	l := &limiter{
		rate:     rate,
		maxLimit: float64(maxInflight),
		target:   target,
		decrease: decrease,
		lastFill: time.Now(),
	}
	if rate > 0 {
		l.burst = math.Max(rate, 8)
		l.tokens = l.burst
	}
	// The window starts fully open: the controller learns the real
	// capacity by observing latency, shrinking only on evidence.
	l.limitBits.Store(math.Float64bits(l.maxLimit))
	return l
}

func (l *limiter) limit() float64 { return math.Float64frombits(l.limitBits.Load()) }

// admit runs the shed ladder: doomed deadline, token bucket, AIMD window.
func (l *limiter) admit(ctx context.Context, class Class) (*Ticket, *Shed) {
	if dl, ok := ctx.Deadline(); ok {
		if p50 := l.lat.p50(); p50 > 0 && time.Until(dl) < p50 {
			l.shedDoomed.Add(1)
			return nil, &Shed{Class: class, Reason: ReasonDoomed, RetryAfter: p50}
		}
	}
	if l.rate > 0 {
		if wait := l.takeToken(); wait > 0 {
			l.shedRate.Add(1)
			return nil, &Shed{Class: class, Reason: ReasonRate, RetryAfter: wait}
		}
	}
	limit := l.limit()
	if v := l.inflight.Add(1); float64(v) > limit {
		l.inflight.Add(-1)
		l.shedConcurrency.Add(1)
		retry := l.lat.p50()
		if retry == 0 {
			retry = l.target
		}
		return nil, &Shed{Class: class, Reason: ReasonConcurrency, RetryAfter: retry}
	}
	l.admitted.Add(1)
	return &Ticket{lim: l}, nil
}

// takeToken consumes one token, returning 0 on success or the time until
// the bucket refills one token.
func (l *limiter) takeToken() time.Duration {
	l.bmu.Lock()
	defer l.bmu.Unlock()
	now := time.Now()
	l.tokens = math.Min(l.burst, l.tokens+now.Sub(l.lastFill).Seconds()*l.rate)
	l.lastFill = now
	if l.tokens >= 1 {
		l.tokens--
		return 0
	}
	return time.Duration((1 - l.tokens) / l.rate * float64(time.Second))
}

// Done releases the ticket's in-flight slot and drives the AIMD window
// with the request's observed latency.
func (t *Ticket) Done(d time.Duration) {
	l := t.lim
	l.inflight.Add(-1)
	l.lat.observe(d)
	if d <= l.target {
		// Additive increase: +1 per window's worth of under-target
		// completions, CAS so concurrent completions never lose updates.
		for {
			old := l.limitBits.Load()
			cur := math.Float64frombits(old)
			next := math.Min(l.maxLimit, cur+1/math.Max(cur, 1))
			if feq.Eq(next, cur) || l.limitBits.CompareAndSwap(old, math.Float64bits(next)) {
				return
			}
		}
	}
	// Multiplicative decrease, at most once per decrease interval.
	now := time.Now().UnixNano()
	last := l.lastCut.Load()
	if now-last < int64(l.decrease) || !l.lastCut.CompareAndSwap(last, now) {
		return
	}
	for {
		old := l.limitBits.Load()
		cur := math.Float64frombits(old)
		next := math.Max(1, cur*0.9)
		if feq.Eq(next, cur) || l.limitBits.CompareAndSwap(old, math.Float64bits(next)) {
			l.cuts.Add(1)
			return
		}
	}
}

func (l *limiter) stats() ClassStats {
	p50, p99 := l.lat.quantiles()
	return ClassStats{
		Admitted:        l.admitted.Load(),
		ShedDoomed:      l.shedDoomed.Load(),
		ShedRate:        l.shedRate.Load(),
		ShedConcurrency: l.shedConcurrency.Load(),
		ShedInjected:    l.shedInjected.Load(),
		Inflight:        l.inflight.Load(),
		Limit:           l.limit(),
		Decreases:       l.cuts.Load(),
		P50Micros:       p50.Microseconds(),
		P99Micros:       p99.Microseconds(),
	}
}

// latencyTracker keeps a ring of recent service times and a cached
// p50/p99, recomputed every recomputeEvery observations so the hot
// admission path only ever loads two atomics.
type latencyTracker struct {
	mu    sync.Mutex
	ring  [trackerRing]int64
	n     int // total observations
	p50Ns atomic.Int64
	p99Ns atomic.Int64
}

const (
	trackerRing    = 256
	recomputeEvery = 32
)

func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.ring[t.n%trackerRing] = int64(d)
	t.n++
	if t.n%recomputeEvery == 0 {
		filled := t.n
		if filled > trackerRing {
			filled = trackerRing
		}
		buf := make([]int64, filled)
		copy(buf, t.ring[:filled])
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		t.p50Ns.Store(buf[filled/2])
		t.p99Ns.Store(buf[(filled*99)/100])
	}
	t.mu.Unlock()
}

func (t *latencyTracker) p50() time.Duration {
	return time.Duration(t.p50Ns.Load())
}

func (t *latencyTracker) quantiles() (p50, p99 time.Duration) {
	return time.Duration(t.p50Ns.Load()), time.Duration(t.p99Ns.Load())
}
