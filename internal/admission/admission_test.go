package admission

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestClassesAreIndependent(t *testing.T) {
	c := NewController(Config{MaxInflight: 1, TargetLatency: time.Millisecond})
	ctx := context.Background()

	tq, shed := c.Admit(ctx, Query)
	if shed != nil {
		t.Fatalf("first query admit shed: %+v", shed)
	}
	// Query window is full; a mutation must still pass.
	if _, shed := c.Admit(ctx, Query); shed == nil || shed.Reason != ReasonConcurrency {
		t.Fatalf("second query admit: want concurrency shed, got %+v", shed)
	}
	tm, shed := c.Admit(ctx, Mutation)
	if shed != nil {
		t.Fatalf("mutation admit shed while query class full: %+v", shed)
	}
	tq.Done(time.Microsecond)
	tm.Done(time.Microsecond)

	st := c.Stats()
	if st["query"].ShedConcurrency != 1 || st["mutation"].ShedConcurrency != 0 {
		t.Fatalf("shed counters leaked across classes: %+v", st)
	}
}

func TestAIMDDecreasesOnOverTargetLatency(t *testing.T) {
	c := NewController(Config{MaxInflight: 64, TargetLatency: time.Millisecond, DecreaseInterval: time.Nanosecond})
	ctx := context.Background()
	l := c.limiters[Query]
	start := l.limit()
	for i := 0; i < 10; i++ {
		tk, shed := c.Admit(ctx, Query)
		if shed != nil {
			t.Fatalf("admit %d shed: %+v", i, shed)
		}
		tk.Done(10 * time.Millisecond) // 10x over target
		time.Sleep(time.Microsecond)   // step past the decrease interval
	}
	if got := l.limit(); got >= start {
		t.Fatalf("limit did not decrease under sustained over-target latency: start %.1f, now %.1f", start, got)
	}
	if c.Stats()["query"].Decreases == 0 {
		t.Fatal("no decrease recorded in stats")
	}

	// Sustained under-target completions grow the window back.
	low := l.limit()
	for i := 0; i < 500; i++ {
		tk, shed := c.Admit(ctx, Query)
		if shed != nil {
			t.Fatalf("recovery admit %d shed: %+v", i, shed)
		}
		tk.Done(10 * time.Microsecond)
	}
	if got := l.limit(); got <= low {
		t.Fatalf("limit did not recover under fast completions: cut to %.1f, now %.1f", low, got)
	}
}

func TestDoomedDeadlineShedding(t *testing.T) {
	c := NewController(Config{MaxInflight: 64})
	// Teach the tracker a ~20ms p50.
	for i := 0; i < recomputeEvery*2; i++ {
		c.Observe(Query, 20*time.Millisecond)
	}
	if p50 := c.P50(Query); p50 != 20*time.Millisecond {
		t.Fatalf("p50 = %v, want 20ms", p50)
	}

	// A request with 1ms of budget left is doomed and must be shed at the
	// door with a retry hint.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, shed := c.Admit(ctx, Query)
	if shed == nil || shed.Reason != ReasonDoomed {
		t.Fatalf("want doomed shed, got %+v", shed)
	}
	if shed.RetryAfter != 20*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want the p50", shed.RetryAfter)
	}

	// A request with ample budget passes.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	tk, shed := c.Admit(ctx2, Query)
	if shed != nil {
		t.Fatalf("ample-budget admit shed: %+v", shed)
	}
	tk.Done(time.Millisecond)

	// No deadline at all: never doomed.
	tk, shed = c.Admit(context.Background(), Query)
	if shed != nil {
		t.Fatalf("no-deadline admit shed: %+v", shed)
	}
	tk.Done(time.Millisecond)
}

func TestTokenBucketRateLimit(t *testing.T) {
	c := NewController(Config{MaxInflight: 1024, QueryRate: 10}) // burst max(10, 8) = 10
	ctx := context.Background()
	admitted, shed := 0, 0
	for i := 0; i < 50; i++ {
		tk, s := c.Admit(ctx, Query)
		if s != nil {
			if s.Reason != ReasonRate {
				t.Fatalf("admit %d: want rate shed, got %+v", i, s)
			}
			if s.RetryAfter <= 0 {
				t.Fatalf("rate shed carries no RetryAfter: %+v", s)
			}
			shed++
			continue
		}
		tk.Done(time.Microsecond)
		admitted++
	}
	// The burst is 10 tokens; a tight loop of 50 must shed most of the rest.
	if admitted > 15 || shed < 35 {
		t.Fatalf("rate limiting too loose: admitted %d, shed %d of 50", admitted, shed)
	}
	// Mutations are unmetered in this config.
	tk, s := c.Admit(ctx, Mutation)
	if s != nil {
		t.Fatalf("unmetered mutation shed: %+v", s)
	}
	tk.Done(time.Microsecond)
}

func TestInjectErrorsAndLatency(t *testing.T) {
	c := NewController(Config{})
	ctx := context.Background()
	c.InjectErrors(2)
	for i := 0; i < 2; i++ {
		if _, shed := c.Admit(ctx, Query); shed == nil || shed.Reason != ReasonInjected {
			t.Fatalf("injected admit %d: got %+v", i, shed)
		}
	}
	tk, shed := c.Admit(ctx, Query)
	if shed != nil {
		t.Fatalf("budget spent but still shedding: %+v", shed)
	}
	tk.Done(time.Microsecond)
	if got := c.Stats()["query"].ShedInjected; got != 2 {
		t.Fatalf("ShedInjected = %d, want 2", got)
	}

	c.InjectLatency(20 * time.Millisecond)
	start := time.Now()
	tk, shed = c.Admit(ctx, Query)
	if shed != nil {
		t.Fatalf("latency-injected admit shed: %+v", shed)
	}
	tk.Done(time.Microsecond)
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("InjectLatency not applied: admit took %v", d)
	}
	c.InjectLatency(0)
}

func TestConcurrentAdmitRace(t *testing.T) {
	c := NewController(Config{MaxInflight: 8, TargetLatency: time.Second})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tk, shed := c.Admit(ctx, Query)
				if shed == nil {
					tk.Done(time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()["query"]
	if st.Inflight != 0 {
		t.Fatalf("inflight leaked: %d", st.Inflight)
	}
	if st.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
}
