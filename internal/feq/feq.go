// Package feq is the single audited home for exact floating-point
// comparisons. The bit-identical discipline (every differential suite
// asserts accelerated paths reproduce the scalar paths to the last bit)
// makes exact float equality meaningful in this codebase — duplicate-λ
// breakpoint dedup, zero-weight dimension elimination, tie detection on
// scores — but scattering raw == over float64 makes each site a question
// ("was a tolerance intended here?") and leaves NaN behavior implicit.
//
// The floateq analyzer in wqrtqlint forbids direct ==/!= on floats outside
// //wqrtq:floatcmp-annotated helpers; these are those helpers. All of them
// are exact IEEE-754 comparisons, inlined by the compiler to the same
// instruction as the raw operator: routing through feq changes no bits,
// it only centralizes intent. A future tolerance or NaN policy change has
// exactly one file to edit.
package feq

// Eq reports a == b exactly (IEEE-754: false when either is NaN).
//
//wqrtq:floatcmp
func Eq(a, b float64) bool { return a == b }

// Ne reports a != b exactly (IEEE-754: true when either is NaN).
//
//wqrtq:floatcmp
func Ne(a, b float64) bool { return a != b }

// Zero reports x == 0 exactly (either signed zero).
//
//wqrtq:floatcmp
func Zero(x float64) bool { return x == 0 }
