package dominance

import (
	"sort"
	"wqrtq/internal/feq"

	"wqrtq/internal/vec"
)

// Skyline returns the indices of the skyline (Pareto-optimal) points: those
// dominated by no other point. The skyline is exactly the set of points
// that can rank first under some monotone preference, and bounds the
// reverse top-1 result; it is computed here with the classic sort-filter
// approach (sort by attribute sum ascending — no point can be dominated by
// a point with a larger sum — then a block-nested-loop filter against the
// running skyline).
func Skyline(points []vec.Point) []int {
	if len(points) == 0 {
		return nil
	}
	order := make([]int, len(points))
	sums := make([]float64, len(points))
	for i, p := range points {
		order[i] = i
		s := 0.0
		for _, v := range p {
			s += v
		}
		sums[i] = s
	}
	sort.Slice(order, func(a, b int) bool {
		if feq.Ne(sums[order[a]], sums[order[b]]) {
			return sums[order[a]] < sums[order[b]]
		}
		return order[a] < order[b]
	})
	var sky []int
	for _, idx := range order {
		p := points[idx]
		dominated := false
		for _, s := range sky {
			if vec.Dominates(points[s], p) || vec.Equal(points[s], p) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, idx)
		}
	}
	sort.Ints(sky)
	return sky
}

// SkylineNaive is the quadratic reference implementation for tests.
func SkylineNaive(points []vec.Point) []int {
	var sky []int
	for i, p := range points {
		dominated := false
		for j, o := range points {
			if i == j {
				continue
			}
			if vec.Dominates(o, p) {
				dominated = true
				break
			}
			// Duplicate points: keep only the first occurrence.
			if vec.Equal(o, p) && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, i)
		}
	}
	return sky
}
