package dominance

import (
	"sort"
	"wqrtq/internal/feq"

	"wqrtq/internal/vec"
)

// BandPoint is one member of a k-skyband: the position of the point in the
// input slice and its exact dominance count (the number of input points
// dominating it, always < k for a member).
type BandPoint struct {
	Index int
	Count int
}

// KSkyband returns the k-skyband of the point set: every point dominated by
// fewer than k other points, with its exact dominance count, sorted by input
// index. The 1-skyband is the skyline.
//
// Why this set matters (Vlachou et al., "Reverse top-k queries"): under any
// weighting vector w (non-negative, summing to 1) a point p with dominance
// count >= k has at least k points scoring no worse than it under w, and the
// k smallest scores of the dataset are always achieved within the k-skyband.
// Every top-k result, every top k-th score, and every strict-beat count
// below k is therefore answerable from the k-skyband alone — the candidate
// set behind the epoch-cached sub-index in internal/skyband.
//
// The computation is the classic sort-filter: points are ordered by
// ascending coordinate sum (a dominating point always has a strictly
// smaller sum), and each point counts its dominators among the band members
// kept so far. That count is exact for members: if p's true dominance count
// is below k, none of its dominators can have k dominators themselves (each
// dominator of a dominator also dominates p), so all of them were kept.
// Conversely a point with >= k dominators always sees at least k kept ones —
// order its dominators by sum; the i-th has at most i-1 dominators — so the
// filter never keeps a non-member.
func KSkyband(points []vec.Point, k int) []BandPoint {
	if len(points) == 0 || k <= 0 {
		return nil
	}
	order := make([]int, len(points))
	sums := make([]float64, len(points))
	for i, p := range points {
		order[i] = i
		s := 0.0
		for _, v := range p {
			s += v
		}
		sums[i] = s
	}
	sort.Slice(order, func(a, b int) bool {
		if feq.Ne(sums[order[a]], sums[order[b]]) {
			return sums[order[a]] < sums[order[b]]
		}
		return order[a] < order[b]
	})
	kept := make([]int, 0, len(points))
	out := make([]BandPoint, 0, len(points))
	for _, idx := range order {
		p := points[idx]
		cnt := 0
		for _, j := range kept {
			if vec.Dominates(points[j], p) {
				cnt++
				if cnt >= k {
					break
				}
			}
		}
		if cnt < k {
			kept = append(kept, idx)
			out = append(out, BandPoint{Index: idx, Count: cnt})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}

// KSkybandNaive is the quadratic reference implementation for tests: it
// counts every point's dominators by full scan.
func KSkybandNaive(points []vec.Point, k int) []BandPoint {
	if k <= 0 {
		return nil
	}
	var out []BandPoint
	for i, p := range points {
		cnt := 0
		for j, o := range points {
			if i != j && vec.Dominates(o, p) {
				cnt++
			}
		}
		if cnt < k {
			out = append(out, BandPoint{Index: i, Count: cnt})
		}
	}
	return out
}
