package dominance

import (
	"context"

	"wqrtq/internal/ctxcheck"
	"wqrtq/internal/rtree"
	"wqrtq/internal/vec"
)

// countCheckInterval is how many tree nodes a counting descent examines
// between context polls, matching the interval used by internal/topk.
const countCheckInterval = 64

// ClassifyInto is Classify with caller-owned scratch: the candidate split is
// written into s.D and s.I, reusing their backing arrays. It computes
// exactly what Classify computes; the hot sampling loops of internal/core
// use it to classify one cached candidate list against hundreds of sample
// query points without re-growing two slices each time. The same q' <= q
// precondition as Classify applies (q being the cache's reference point).
//
// Dimensions 2–4 run unrolled bodies that evaluate the coordinate-wise
// <=/>= conjunctions in one pass: with le = (p <= qp everywhere) and
// ge = (p >= qp everywhere), p dominates qp iff le && !ge (le && ge means
// equality), p is dominated-or-equal iff ge, and the incomparable case is
// exactly !le && !ge — the same booleans the Dominates/Equal chain of the
// generic body computes, without re-walking the coordinates three times.
func ClassifyInto(cands []Ref, qp vec.Point, s *Sets) {
	s.D = s.D[:0]
	s.I = s.I[:0]
	s.NodesVisited = 0
	switch len(qp) {
	case 2:
		q0, q1 := qp[0], qp[1]
		for _, c := range cands {
			p := c.Point
			p0, p1 := p[0], p[1]
			le := p0 <= q0 && p1 <= q1
			ge := p0 >= q0 && p1 >= q1
			if le {
				if !ge {
					s.D = append(s.D, c)
				}
			} else if !ge {
				s.I = append(s.I, c)
			}
		}
	case 3:
		q0, q1, q2 := qp[0], qp[1], qp[2]
		for _, c := range cands {
			p := c.Point
			p0, p1, p2 := p[0], p[1], p[2]
			le := p0 <= q0 && p1 <= q1 && p2 <= q2
			ge := p0 >= q0 && p1 >= q1 && p2 >= q2
			if le {
				if !ge {
					s.D = append(s.D, c)
				}
			} else if !ge {
				s.I = append(s.I, c)
			}
		}
	case 4:
		q0, q1, q2, q3 := qp[0], qp[1], qp[2], qp[3]
		for _, c := range cands {
			p := c.Point
			p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
			le := p0 <= q0 && p1 <= q1 && p2 <= q2 && p3 <= q3
			ge := p0 >= q0 && p1 >= q1 && p2 >= q2 && p3 >= q3
			if le {
				if !ge {
					s.D = append(s.D, c)
				}
			} else if !ge {
				s.I = append(s.I, c)
			}
		}
	default:
		for _, c := range cands {
			switch {
			case vec.Dominates(c.Point, qp):
				s.D = append(s.D, c)
			case !vec.Dominates(qp, c.Point) && !vec.Equal(c.Point, qp):
				s.I = append(s.I, c)
			}
		}
	}
}

// CountBeatersCtx returns the number of indexed points that are candidates
// with respect to ref — not dominated by ref and not equal to it, the
// universe of Candidates(t, ref) — scoring strictly below fq under w.
//
// For dominance sets built against that universe (FindIncom with ref as the
// query point, or Classify over Candidates(t, ref)), the value equals the
// strict-beat count a linear scan over D ∪ I computes, bit for bit: every
// score is evaluated with vec.Score exactly as the scan would, points
// dominated by (or equal to) ref can never score strictly below a point
// q' <= ref, and the count is order-independent. internal/core uses it to
// replace the per-sample O(|D| + |I|) rank scans of the refinement loops
// with a pruned tree descent.
//
// Pruning is sound bitwise: Rect.MinScore is the score of the MBR's lower
// corner, which under non-negative weights never exceeds any member's
// vec.Score (term-wise monotone products summed in the same order), and
// symmetrically for MaxScore. A subtree is skipped when it contains only
// ref-dominated points (Rect.DominatedBy) or cannot score below fq; it is
// counted wholesale when every point scores below fq and no point inside
// can be dominated-or-equal by ref (some Max coordinate below ref).
func CountBeatersCtx(ctx context.Context, t *rtree.Tree, ref vec.Point, w vec.Weight, fq float64) (int, error) {
	tick := ctxcheck.Every(ctx, countCheckInterval)
	return countBeaters(t.Root(), ref, w, fq, &tick)
}

func countBeaters(n *rtree.Node, ref vec.Point, w vec.Weight, fq float64, tick *ctxcheck.Ticker) (int, error) {
	if err := tick.Tick(); err != nil {
		return 0, err
	}
	cnt := 0
	if n.IsLeaf() {
		for i := 0; i < n.NumEntries(); i++ {
			p := n.Point(i)
			if vec.Score(w, p) < fq && !vec.Dominates(ref, p) && !vec.Equal(p, ref) {
				cnt++
			}
		}
		return cnt, nil
	}
	for i := 0; i < n.NumEntries(); i++ {
		r := n.EntryRect(i)
		if r.DominatedBy(ref) {
			continue // only ref-dominated or ref-equal points inside
		}
		if r.MinScore(w) >= fq {
			continue // nothing inside can beat fq
		}
		if r.MaxScore(w) < fq && rectClearOfDominated(r, ref) {
			cnt += n.Child(i).Count() // every point inside beats fq and is a candidate
			continue
		}
		sub, err := countBeaters(n.Child(i), ref, w, fq, tick)
		if err != nil {
			return 0, err
		}
		cnt += sub
	}
	return cnt, nil
}

// rectClearOfDominated reports that no point inside r can be
// dominated-or-equal by ref: some coordinate's upper bound lies strictly
// below ref, so no member is coordinate-wise >= ref.
func rectClearOfDominated(r rtree.Rect, ref vec.Point) bool {
	for i := range ref {
		if r.Max[i] < ref[i] {
			return true
		}
	}
	return false
}
