// Package dominance implements the dominance-based point classification
// that drives MWK and MQWK: the FindIncom branch-and-bound traversal of
// Algorithm 2 (lines 20–29), which splits the dataset into the points D
// dominating the query point and the points I incomparable with it, and the
// reuse technique of §4.4, which performs a single R-tree traversal for a
// whole box of candidate query points and classifies the cached candidates
// in memory for each sample.
package dominance

import (
	"wqrtq/internal/rtree"
	"wqrtq/internal/vec"
)

// Ref is a point with its record id.
type Ref struct {
	ID    int32
	Point vec.Point
}

// Sets is the outcome of FindIncom for one query point.
type Sets struct {
	D []Ref // points that dominate q
	I []Ref // points incomparable with q
	// NodesVisited counts expanded R-tree nodes, for cost accounting.
	NodesVisited int
}

// FindIncom classifies the indexed points against q. Points dominated by q
// (or identical to it) are irrelevant to q's rank under any weighting
// vector and are pruned, subtree-wise where possible: a subtree whose MBR
// lower corner is coordinate-wise >= q contains only such points.
func FindIncom(t *rtree.Tree, q vec.Point) Sets {
	var s Sets
	FindIncomInto(t, q, &s)
	return s
}

// FindIncomInto is FindIncom writing into caller-owned scratch, reusing
// the D and I backing arrays like ClassifyInto.
func FindIncomInto(t *rtree.Tree, q vec.Point, s *Sets) {
	s.D = s.D[:0]
	s.I = s.I[:0]
	s.NodesVisited = 1
	walk(t.Root(), q, s)
}

func walk(n *rtree.Node, q vec.Point, s *Sets) {
	if n.IsLeaf() {
		for i := 0; i < n.NumEntries(); i++ {
			p := n.Point(i)
			switch {
			case vec.Dominates(p, q):
				s.D = append(s.D, Ref{ID: n.PointID(i), Point: p})
			case !vec.Dominates(q, p) && !vec.Equal(p, q):
				s.I = append(s.I, Ref{ID: n.PointID(i), Point: p})
			}
		}
		return
	}
	for i := 0; i < n.NumEntries(); i++ {
		if n.EntryRect(i).DominatedBy(q) {
			// Every point inside is dominated by (or equal to) q.
			continue
		}
		s.NodesVisited++
		walk(n.Child(i), q, s)
	}
}

// Candidates returns all points not dominated by (and not equal to) q,
// in a single traversal. For any query point q' ≤ q (coordinate-wise), the
// sets D(q') and I(q') are subsets of this candidate list, because q' ≤ q
// implies that q' dominates every point q dominates. This is the cache
// behind the §4.4 reuse technique: MQWK samples its query points from the
// box [q_min, q], so one traversal with respect to q serves all samples.
func Candidates(t *rtree.Tree, q vec.Point) ([]Ref, int) {
	return CandidatesInto(t, q, nil)
}

// CandidatesInto is Candidates appending into a caller-owned buffer
// (typically buf[:0] of a pooled backing array), so repeated traversals
// reuse one allocation.
func CandidatesInto(t *rtree.Tree, q vec.Point, buf []Ref) ([]Ref, int) {
	out := buf
	visited := 1
	var rec func(n *rtree.Node)
	rec = func(n *rtree.Node) {
		if n.IsLeaf() {
			for i := 0; i < n.NumEntries(); i++ {
				p := n.Point(i)
				if !vec.Dominates(q, p) && !vec.Equal(p, q) {
					out = append(out, Ref{ID: n.PointID(i), Point: p})
				}
			}
			return
		}
		for i := 0; i < n.NumEntries(); i++ {
			if n.EntryRect(i).DominatedBy(q) {
				continue
			}
			visited++
			rec(n.Child(i))
		}
	}
	rec(t.Root())
	return out, visited
}

// Classify splits cached candidates with respect to a query point q' that
// must satisfy q' ≤ q for the cache's reference point q (otherwise points
// dominated by q' could be missing). No tree access is performed.
func Classify(cands []Ref, qp vec.Point) Sets {
	var s Sets
	for _, c := range cands {
		switch {
		case vec.Dominates(c.Point, qp):
			s.D = append(s.D, c)
		case !vec.Dominates(qp, c.Point) && !vec.Equal(c.Point, qp):
			s.I = append(s.I, c)
		}
	}
	return s
}

// Rank returns the rank of the query point q under w given its dominance
// sets: every dominating point always scores no worse, every dominated
// point never does, and incomparable points are compared score-wise
// (strict inequality: ties are won by q).
func (s *Sets) Rank(w vec.Weight, q vec.Point) int {
	fq := vec.Score(w, q)
	r := 1 + len(s.D)
	for _, c := range s.I {
		if vec.Score(w, c.Point) < fq {
			r++
		}
	}
	return r
}

// MaxRank returns k'max per Lemma 4: the maximum actual ranking of q over
// the given why-not weighting vectors.
func (s *Sets) MaxRank(ws []vec.Weight, q vec.Point) int {
	max := 0
	for _, w := range ws {
		if r := s.Rank(w, q); r > max {
			max = r
		}
	}
	return max
}

// RankRange returns the possible rankings of q per §4.3: from |D|+1 to
// |D|+|I|+1.
func (s *Sets) RankRange() (lo, hi int) {
	return len(s.D) + 1, len(s.D) + len(s.I) + 1
}
