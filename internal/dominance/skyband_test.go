package dominance

import (
	"math/rand"
	"reflect"
	"testing"

	"wqrtq/internal/rtree"
	"wqrtq/internal/vec"
)

// genPoints builds the three workload shapes the differential suites use:
// uniform, correlated (clustered near the diagonal, clamped so duplicates
// occur) and anticorrelated (large skylines).
func genPoints(shape string, n, d int, rng *rand.Rand) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		switch shape {
		case "CO":
			base := rng.Float64()
			for j := range p {
				v := base + 0.1*(rng.Float64()-0.5)
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				// Coarse grid so exact duplicates and ties occur.
				p[j] = float64(int(v*10)) / 10
			}
		case "AC":
			s := 0.8 + 0.4*rng.Float64()
			acc := 0.0
			for j := 0; j < d-1; j++ {
				v := rng.Float64() * (s - acc) / float64(d-j)
				p[j] = v
				acc += v
			}
			p[d-1] = s - acc
		default:
			for j := range p {
				p[j] = rng.Float64()
			}
		}
		pts[i] = p
	}
	return pts
}

// TestKSkybandMatchesNaive validates the sort-filter against the quadratic
// reference — membership and exact dominance counts — across shapes,
// sizes, dimensions and k, including k beyond n.
func TestKSkybandMatchesNaive(t *testing.T) {
	for _, shape := range []string{"UN", "CO", "AC"} {
		for caseIdx := 0; caseIdx < 40; caseIdx++ {
			rng := rand.New(rand.NewSource(int64(1000*caseIdx + len(shape))))
			n := 1 + rng.Intn(200)
			d := 2 + rng.Intn(3)
			k := 1 + rng.Intn(20)
			pts := genPoints(shape, n, d, rng)
			got := KSkyband(pts, k)
			want := KSkybandNaive(pts, k)
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s case %d (n=%d d=%d k=%d): KSkyband %v, naive %v",
					shape, caseIdx, n, d, k, got, want)
			}
		}
	}
}

// TestKSkybandDuplicates pins the duplicate-point behavior: equal points do
// not dominate each other, so every copy of a band member stays in the
// band — exactly what duplicate-tolerant top-k needs.
func TestKSkybandDuplicates(t *testing.T) {
	pts := []vec.Point{
		{1, 1}, {1, 1}, {1, 1}, // triple duplicate of the best point
		{2, 2},             // dominated by all three copies
		{0.5, 3}, {3, 0.5}, // incomparable with everything above
	}
	band := KSkyband(pts, 2)
	want := []BandPoint{
		{Index: 0, Count: 0}, {Index: 1, Count: 0}, {Index: 2, Count: 0},
		{Index: 4, Count: 0}, {Index: 5, Count: 0},
	}
	if !reflect.DeepEqual(band, want) {
		t.Fatalf("KSkyband = %v, want %v", band, want)
	}
	// With k = 4 the dominated point (3 dominators) re-enters.
	band4 := KSkyband(pts, 4)
	if len(band4) != 6 || band4[3].Index != 3 || band4[3].Count != 3 {
		t.Fatalf("KSkyband(k=4) = %v, want all six points with counts", band4)
	}
}

// TestKSkybandEdges covers the empty and degenerate inputs.
func TestKSkybandEdges(t *testing.T) {
	if got := KSkyband(nil, 3); got != nil {
		t.Fatalf("KSkyband(nil) = %v", got)
	}
	if got := KSkyband([]vec.Point{{1, 2}}, 0); got != nil {
		t.Fatalf("KSkyband(k=0) = %v", got)
	}
	one := KSkyband([]vec.Point{{1, 2}}, 1)
	if !reflect.DeepEqual(one, []BandPoint{{Index: 0, Count: 0}}) {
		t.Fatalf("KSkyband(single) = %v", one)
	}
	// The 1-skyband is the skyline.
	rng := rand.New(rand.NewSource(7))
	pts := genPoints("UN", 120, 3, rng)
	band := KSkyband(pts, 1)
	sky := Skyline(pts)
	if len(band) != len(sky) {
		t.Fatalf("1-skyband has %d members, skyline %d", len(band), len(sky))
	}
	for i, m := range band {
		if m.Index != sky[i] || m.Count != 0 {
			t.Fatalf("1-skyband member %d = %v, skyline index %d", i, m, sky[i])
		}
	}
}

// TestClassifyIntoMatchesClassify checks the scratch-reusing split against
// the allocating one over randomized candidates and query points, twice per
// scratch to exercise reuse.
func TestClassifyIntoMatchesClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := genPoints("UN", 150, 3, rng)
	cands := make([]Ref, len(pts))
	for i, p := range pts {
		cands[i] = Ref{ID: int32(i), Point: p}
	}
	var scratch Sets
	for i := 0; i < 20; i++ {
		qp := vec.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		want := Classify(cands, qp)
		ClassifyInto(cands, qp, &scratch)
		// Compare element-wise: an empty reused scratch slice is non-nil
		// where Classify returns nil, which is immaterial to callers.
		sameRefs := func(got, exp []Ref) bool {
			if len(got) != len(exp) {
				return false
			}
			for j := range got {
				if got[j].ID != exp[j].ID || !vec.Equal(got[j].Point, exp[j].Point) {
					return false
				}
			}
			return true
		}
		if !sameRefs(scratch.D, want.D) || !sameRefs(scratch.I, want.I) {
			t.Fatalf("case %d: ClassifyInto diverged from Classify", i)
		}
	}
}

// TestCountBeatersMatchesScan checks the pruned tree count against the
// linear definition — candidates of ref scoring strictly below fq — for
// randomized trees, reference points, weights (including zero components)
// and thresholds.
func TestCountBeatersMatchesScan(t *testing.T) {
	for caseIdx := 0; caseIdx < 30; caseIdx++ {
		rng := rand.New(rand.NewSource(int64(500 + caseIdx)))
		n := 1 + rng.Intn(300)
		d := 2 + rng.Intn(3)
		pts := genPoints([]string{"UN", "CO", "AC"}[caseIdx%3], n, d, rng)
		tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 256})
		for trial := 0; trial < 10; trial++ {
			ref := make(vec.Point, d)
			for j := range ref {
				ref[j] = rng.Float64() * rng.Float64() * 2
			}
			w := make(vec.Weight, d)
			sum := 0.0
			for j := range w {
				w[j] = rng.Float64()
				if trial%3 == 0 && j == 0 {
					w[j] = 0 // exercise zero weight components
				}
				sum += w[j]
			}
			for j := range w {
				w[j] /= sum
			}
			fq := vec.Score(w, pts[rng.Intn(n)]) * (0.5 + rng.Float64())
			want := 0
			for _, p := range pts {
				if !vec.Dominates(ref, p) && !vec.Equal(p, ref) && vec.Score(w, p) < fq {
					want++
				}
			}
			got, err := CountBeatersCtx(t.Context(), tr, ref, w, fq)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("case %d trial %d: CountBeaters = %d, scan = %d", caseIdx, trial, got, want)
			}
		}
	}
}
