package dominance

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"wqrtq/internal/rtree"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

func paperPoints() []vec.Point {
	return []vec.Point{
		{2, 1}, {6, 3}, {1, 9}, {9, 3}, {7, 5}, {5, 8}, {3, 7},
	}
}

func randPoints(r *rand.Rand, n, d int, scale float64) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float64() * scale
		}
		pts[i] = p
	}
	return pts
}

func randWeight(r *rand.Rand, d int) vec.Weight {
	w := make(vec.Weight, d)
	s := 0.0
	for i := range w {
		w[i] = r.Float64() + 1e-3
		s += w[i]
	}
	for i := range w {
		w[i] /= s
	}
	return w
}

func ids(rs []Ref) []int32 {
	out := make([]int32, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func naiveSets(pts []vec.Point, q vec.Point) (d, i []int32) {
	for idx, p := range pts {
		switch {
		case vec.Dominates(p, q):
			d = append(d, int32(idx))
		case vec.Incomparable(p, q):
			i = append(i, int32(idx))
		}
	}
	return
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFindIncomPaperExample(t *testing.T) {
	tr := rtree.Bulk(paperPoints(), nil, rtree.Options{PageSize: 128})
	q := vec.Point{4, 4}
	s := FindIncom(tr, q)
	// p1=(2,1) dominates q; p3, p4, p7 (and p2=(6,3)? 6>4, 3<4 → incomparable)
	// p5=(7,5), p6=(5,8) are dominated by q.
	if got := ids(s.D); !equalIDs(got, []int32{0}) {
		t.Errorf("D = %v, want [0] (p1)", got)
	}
	if got := ids(s.I); !equalIDs(got, []int32{1, 2, 3, 6}) {
		t.Errorf("I = %v, want [1 2 3 6] (p2, p3, p4, p7)", got)
	}
	lo, hi := s.RankRange()
	if lo != 2 || hi != 6 {
		t.Errorf("RankRange = [%d, %d], want [2, 6]", lo, hi)
	}
}

func TestFindIncomAgainstNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(400)
		d := 2 + r.Intn(4)
		pts := randPoints(r, n, d, 10)
		tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 256})
		q := randPoints(r, 1, d, 10)[0]
		s := FindIncom(tr, q)
		wd, wi := naiveSets(pts, q)
		return equalIDs(ids(s.D), wd) && equalIDs(ids(s.I), wi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestFindIncomPrunesDominatedSubtrees(t *testing.T) {
	// With q at the origin-most corner, everything is dominated by q, and
	// the traversal should visit almost nothing below the root.
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 20000, 3, 10)
	for i := range pts {
		for j := range pts[i] {
			pts[i][j] += 1 // keep strictly above q
		}
	}
	tr := rtree.Bulk(pts, nil)
	s := FindIncom(tr, vec.Point{0.5, 0.5, 0.5})
	if len(s.D) != 0 || len(s.I) != 0 {
		t.Fatalf("expected empty sets, got |D|=%d |I|=%d", len(s.D), len(s.I))
	}
	if s.NodesVisited > 2 {
		t.Errorf("visited %d nodes, expected pruning at the root level", s.NodesVisited)
	}
}

func TestRankMatchesTopkRank(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		d := 2 + r.Intn(3)
		pts := randPoints(r, n, d, 10)
		tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 256})
		q := randPoints(r, 1, d, 10)[0]
		s := FindIncom(tr, q)
		w := randWeight(r, d)
		return s.Rank(w, q) == topk.RankNaive(pts, w, vec.Score(w, q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRankPaperExample(t *testing.T) {
	tr := rtree.Bulk(paperPoints(), nil, rtree.Options{PageSize: 128})
	q := vec.Point{4, 4}
	s := FindIncom(tr, q)
	kevin := vec.Weight{0.1, 0.9}
	julia := vec.Weight{0.9, 0.1}
	if got := s.Rank(kevin, q); got != 4 {
		t.Errorf("rank under Kevin = %d, want 4", got)
	}
	if got := s.Rank(julia, q); got != 4 {
		t.Errorf("rank under Julia = %d, want 4", got)
	}
	// Lemma 4: k'max = max(4, 4) = 4.
	if got := s.MaxRank([]vec.Weight{kevin, julia}, q); got != 4 {
		t.Errorf("MaxRank = %d, want 4", got)
	}
}

func TestCandidatesCoverAllBoxQueries(t *testing.T) {
	// For any q' <= q, Classify(Candidates(q), q') must equal FindIncom(q').
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		d := 2 + r.Intn(3)
		pts := randPoints(r, n, d, 10)
		tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 256})
		q := randPoints(r, 1, d, 10)[0]
		cands, _ := Candidates(tr, q)
		for trial := 0; trial < 5; trial++ {
			qp := make(vec.Point, d)
			for j := range qp {
				qp[j] = q[j] * r.Float64()
			}
			got := Classify(cands, qp)
			want := FindIncom(tr, qp)
			if !equalIDs(ids(got.D), ids(want.D)) || !equalIDs(ids(got.I), ids(want.I)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCandidatesExcludeDominated(t *testing.T) {
	tr := rtree.Bulk(paperPoints(), nil, rtree.Options{PageSize: 128})
	cands, visited := Candidates(tr, vec.Point{4, 4})
	// p5=(7,5) and p6=(5,8) are dominated by q and must be excluded.
	got := ids(cands)
	if !equalIDs(got, []int32{0, 1, 2, 3, 6}) {
		t.Errorf("candidates = %v, want [0 1 2 3 6]", got)
	}
	if visited < 1 {
		t.Error("visited < 1")
	}
}

func TestClassifyIdenticalPoint(t *testing.T) {
	// A candidate equal to q' belongs to neither D nor I.
	cands := []Ref{{ID: 0, Point: vec.Point{2, 2}}}
	s := Classify(cands, vec.Point{2, 2})
	if len(s.D) != 0 || len(s.I) != 0 {
		t.Errorf("identical point misclassified: %+v", s)
	}
}

func TestSkylinePaperExample(t *testing.T) {
	// Figure 2(a): p1=(2,1) and p3=(1,9) are the undominated computers.
	got := Skyline(paperPoints())
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("skyline = %v, want [0 2] (p1, p3)", got)
	}
}

func TestSkylineAgainstNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(300)
		d := 1 + r.Intn(4)
		// Coarse grid to exercise ties and duplicates.
		pts := make([]vec.Point, n)
		for i := range pts {
			p := make(vec.Point, d)
			for j := range p {
				p[j] = float64(r.Intn(8))
			}
			pts[i] = p
		}
		got := Skyline(pts)
		want := SkylineNaive(pts)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSkylineProperties(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	pts := randPoints(r, 500, 3, 10)
	sky := Skyline(pts)
	in := map[int]bool{}
	for _, i := range sky {
		in[i] = true
	}
	// No skyline point dominates another skyline point.
	for _, a := range sky {
		for _, b := range sky {
			if a != b && vec.Dominates(pts[a], pts[b]) {
				t.Fatalf("skyline point %d dominates skyline point %d", a, b)
			}
		}
	}
	// Every non-skyline point is dominated by (or duplicates) some skyline point.
	for i, p := range pts {
		if in[i] {
			continue
		}
		covered := false
		for _, s := range sky {
			if vec.Dominates(pts[s], p) || vec.Equal(pts[s], p) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("non-skyline point %d not dominated by any skyline point", i)
		}
	}
	if len(Skyline(nil)) != 0 {
		t.Error("empty input should give empty skyline")
	}
}
