// Package kernel implements the blocked structure-of-arrays scoring kernel
// behind the "many weights × one point set" computations of the framework:
// the per-sample rank evaluations of the MWK/MQWK refinement loops, and the
// candidate counting of reverse top-k over a k-skyband.
//
// # Layout
//
// A Coords holds a candidate set flattened column-major (d coordinate
// columns of length n, one per dimension). The blocked entry points take a
// block of B weighting vectors packed row-major (weight b occupying
// wb[b*d : (b+1)*d]) and sweep the candidate columns once, evaluating all B
// scores per point while the point's coordinates sit in registers. The
// scalar alternative — B independent sweeps, one per weight — reads every
// candidate coordinate B times from memory; the blocked sweep reads it
// once, so a 100-sample refinement pays one memory pass instead of one
// hundred.
//
// # Bit-identicality
//
// Every score is evaluated with the same sequence of multiplies and
// left-to-right adds as vec.Score (s := w0*p0; s += w1*p1; ...). Float
// addition of a product chain is association-order dependent, and the
// framework's differential guarantees (kernel-on vs kernel-off answers must
// match bit for bit) hinge on this order being preserved; the register-
// blocked inner loops below change only which weight is applied when, never
// the arithmetic within one (weight, point) score.
//
// # Blocking factor
//
// BlockSize bounds how many weights one packed sweep carries: the packed
// block (BlockSize×d float64s) plus the threshold and counter arrays must
// stay L1-resident alongside the streamed coordinate columns, and 64
// weights × 4 dims × 8 bytes = 2 KiB leaves that comfortably true on
// every current core. Within a block, the inner loops are additionally
// register-blocked in groups of four weights, amortizing each point load
// over four score evaluations without spilling the accumulators.
package kernel

import (
	"context"
	"sync"
	"sync/atomic"
)

// BlockSize is the number of weighting vectors one packed sweep evaluates;
// callers with more weights chunk them (CountBelowWeights does this
// internally).
const BlockSize = 64

// Coords is a candidate point set flattened column-major: Col(j)[i] is
// coordinate j of point i. The zero value is empty; Reset prepares it for a
// new point set while retaining column capacity, so a pooled Coords costs
// no allocation in steady state.
type Coords struct {
	n    int
	cols [][]float64
}

// Reset empties the coordinate columns and sets the dimensionality,
// retaining backing capacity.
func (c *Coords) Reset(d int) {
	if cap(c.cols) < d {
		cols := make([][]float64, d)
		copy(cols, c.cols)
		c.cols = cols
	}
	c.cols = c.cols[:d]
	for j := range c.cols {
		c.cols[j] = c.cols[j][:0]
	}
	c.n = 0
}

// Append adds one point (len d) to the set. Growth amortizes into the
// column scratch Reset retains across refills.
//
//wqrtq:prealloc
func (c *Coords) Append(p []float64) {
	for j := range c.cols {
		c.cols[j] = append(c.cols[j], p[j])
	}
	c.n++
}

// Len returns the number of points.
func (c *Coords) Len() int { return c.n }

// Dim returns the dimensionality.
func (c *Coords) Dim() int { return len(c.cols) }

// Col returns coordinate column j.
func (c *Coords) Col(j int) []float64 { return c.cols[j] }

// Fill resets c to dimension d and appends n points accessed through at.
func (c *Coords) Fill(d, n int, at func(int) []float64) {
	c.Reset(d)
	for i := 0; i < n; i++ {
		c.Append(at(i))
	}
}

// CountBelowBlock counts, for each weight b in the packed block wb (len(fqs)
// weights, row-major d values each), the points of c scoring strictly below
// fqs[b], writing the counts into counts[b]. It performs no allocation.
// Dimensions 2–4 run register-blocked specializations; other dimensions use
// the generic sweep. Counts are exact and identical to a scalar scan: each
// score is computed with vec.Score's arithmetic order, and the comparison
// is the same strict <.
//
//wqrtq:hotpath
//wqrtq:contract noescape(c,wb,fqs,counts) nobce noalloc
func CountBelowBlock(c *Coords, wb []float64, fqs []float64, counts []int) {
	if len(counts) < len(fqs) {
		panic("kernel: counts shorter than fqs")
	}
	if c.n == 0 {
		for b := range fqs {
			counts[b] = 0
		}
		return
	}
	switch len(c.cols) {
	case 2:
		countBelow2(c.cols[0], c.cols[1], wb, fqs, counts)
	case 3:
		countBelow3(c.cols[0], c.cols[1], c.cols[2], wb, fqs, counts)
	case 4:
		countBelow4(c.cols[0], c.cols[1], c.cols[2], c.cols[3], wb, fqs, counts)
	default:
		countBelowGeneric(c.cols, wb, fqs, counts)
	}
}

// The dimension-specialized sweeps below walk the packed block in lockstep
// slice form — every group of weights consumes a constant-length prefix of
// wb/fqs/counts and the loop re-slices all three past it — because that is
// the shape the prove pass eliminates every bounds check for: the loop
// condition (`len(wb) >= 8 && ...`) dominates each constant index and each
// advancing re-slice. The classical `wb[b*2 : b*2+8]` form keeps its slice
// check, since prove cannot reason through the multiplication. The entry
// guards make the lockstep walk cover exactly len(fqs) weights, preserving
// the fail-loud behavior the indexed form had on short buffers.

//wqrtq:hotpath
//wqrtq:contract noescape(x,y,wb,fqs,counts) nobce noalloc
func countBelow2(x, y, wb, fqs []float64, counts []int) {
	if len(y) < len(x) {
		panic("kernel: ragged coordinate columns")
	}
	if len(wb) < 2*len(fqs) || len(counts) < len(fqs) {
		panic("kernel: packed block shorter than its weight count")
	}
	y = y[:len(x)]
	for len(fqs) >= 4 && len(wb) >= 8 && len(counts) >= 4 {
		w := wb[:8]
		w00, w01 := w[0], w[1]
		w10, w11 := w[2], w[3]
		w20, w21 := w[4], w[5]
		w30, w31 := w[6], w[7]
		f0, f1, f2, f3 := fqs[0], fqs[1], fqs[2], fqs[3]
		var c0, c1, c2, c3 int
		for i, xi := range x {
			yi := y[i]
			s := w00 * xi
			s += w01 * yi
			if s < f0 {
				c0++
			}
			s = w10 * xi
			s += w11 * yi
			if s < f1 {
				c1++
			}
			s = w20 * xi
			s += w21 * yi
			if s < f2 {
				c2++
			}
			s = w30 * xi
			s += w31 * yi
			if s < f3 {
				c3++
			}
		}
		counts[0], counts[1], counts[2], counts[3] = c0, c1, c2, c3
		wb, fqs, counts = wb[8:], fqs[4:], counts[4:]
	}
	for len(fqs) >= 1 && len(wb) >= 2 && len(counts) >= 1 {
		w0, w1 := wb[0], wb[1]
		fq := fqs[0]
		cnt := 0
		for i, xi := range x {
			s := w0 * xi
			s += w1 * y[i]
			if s < fq {
				cnt++
			}
		}
		counts[0] = cnt
		wb, fqs, counts = wb[2:], fqs[1:], counts[1:]
	}
}

//wqrtq:hotpath
//wqrtq:contract noescape(x,y,z,wb,fqs,counts) nobce noalloc
func countBelow3(x, y, z, wb, fqs []float64, counts []int) {
	if len(y) < len(x) || len(z) < len(x) {
		panic("kernel: ragged coordinate columns")
	}
	if len(wb) < 3*len(fqs) || len(counts) < len(fqs) {
		panic("kernel: packed block shorter than its weight count")
	}
	y = y[:len(x)]
	z = z[:len(x)]
	for len(fqs) >= 4 && len(wb) >= 12 && len(counts) >= 4 {
		w := wb[:12]
		w00, w01, w02 := w[0], w[1], w[2]
		w10, w11, w12 := w[3], w[4], w[5]
		w20, w21, w22 := w[6], w[7], w[8]
		w30, w31, w32 := w[9], w[10], w[11]
		f0, f1, f2, f3 := fqs[0], fqs[1], fqs[2], fqs[3]
		var c0, c1, c2, c3 int
		for i, xi := range x {
			yi, zi := y[i], z[i]
			s := w00 * xi
			s += w01 * yi
			s += w02 * zi
			if s < f0 {
				c0++
			}
			s = w10 * xi
			s += w11 * yi
			s += w12 * zi
			if s < f1 {
				c1++
			}
			s = w20 * xi
			s += w21 * yi
			s += w22 * zi
			if s < f2 {
				c2++
			}
			s = w30 * xi
			s += w31 * yi
			s += w32 * zi
			if s < f3 {
				c3++
			}
		}
		counts[0], counts[1], counts[2], counts[3] = c0, c1, c2, c3
		wb, fqs, counts = wb[12:], fqs[4:], counts[4:]
	}
	for len(fqs) >= 1 && len(wb) >= 3 && len(counts) >= 1 {
		w0, w1, w2 := wb[0], wb[1], wb[2]
		fq := fqs[0]
		cnt := 0
		for i, xi := range x {
			s := w0 * xi
			s += w1 * y[i]
			s += w2 * z[i]
			if s < fq {
				cnt++
			}
		}
		counts[0] = cnt
		wb, fqs, counts = wb[3:], fqs[1:], counts[1:]
	}
}

//wqrtq:hotpath
//wqrtq:contract noescape(x,y,z,u,wb,fqs,counts) nobce noalloc
func countBelow4(x, y, z, u, wb, fqs []float64, counts []int) {
	if len(y) < len(x) || len(z) < len(x) || len(u) < len(x) {
		panic("kernel: ragged coordinate columns")
	}
	if len(wb) < 4*len(fqs) || len(counts) < len(fqs) {
		panic("kernel: packed block shorter than its weight count")
	}
	y = y[:len(x)]
	z = z[:len(x)]
	u = u[:len(x)]
	for len(fqs) >= 2 && len(wb) >= 8 && len(counts) >= 2 {
		w := wb[:8]
		w00, w01, w02, w03 := w[0], w[1], w[2], w[3]
		w10, w11, w12, w13 := w[4], w[5], w[6], w[7]
		f0, f1 := fqs[0], fqs[1]
		var c0, c1 int
		for i, xi := range x {
			yi, zi, ui := y[i], z[i], u[i]
			s := w00 * xi
			s += w01 * yi
			s += w02 * zi
			s += w03 * ui
			if s < f0 {
				c0++
			}
			s = w10 * xi
			s += w11 * yi
			s += w12 * zi
			s += w13 * ui
			if s < f1 {
				c1++
			}
		}
		counts[0], counts[1] = c0, c1
		wb, fqs, counts = wb[8:], fqs[2:], counts[2:]
	}
	for len(fqs) >= 1 && len(wb) >= 4 && len(counts) >= 1 {
		w0, w1, w2, w3 := wb[0], wb[1], wb[2], wb[3]
		fq := fqs[0]
		cnt := 0
		for i, xi := range x {
			s := w0 * xi
			s += w1 * y[i]
			s += w2 * z[i]
			s += w3 * u[i]
			if s < fq {
				cnt++
			}
		}
		counts[0] = cnt
		wb, fqs, counts = wb[4:], fqs[1:], counts[1:]
	}
}

// countBelowGeneric carries no nobce clause deliberately: the inner
// cols[j][i] walk indexes a slice of slices whose lengths the prove pass
// cannot relate, so its checks are structural. Dimensions 2–4 — every
// dimension the paper's workloads use — never reach it.
//
//wqrtq:hotpath
//wqrtq:contract noescape(cols,wb,fqs,counts) noalloc
func countBelowGeneric(cols [][]float64, wb, fqs []float64, counts []int) {
	d := len(cols)
	n := len(cols[0])
	for b := range fqs {
		w := wb[b*d : (b+1)*d]
		fq := fqs[b]
		cnt := 0
		for i := 0; i < n; i++ {
			s := w[0] * cols[0][i]
			for j := 1; j < d; j++ {
				s += w[j] * cols[j][i]
			}
			if s < fq {
				cnt++
			}
		}
		counts[b] = cnt
	}
}

// CountBelowCapped counts the points of c scoring strictly below fq under
// the single weight w, abandoning the scan once the count exceeds cap: the
// returned count is exact when <= cap and cap+1 otherwise, and scanned
// reports how many points were examined. The sampling loops use it for
// ranks that only matter while small — a sample whose rank exceeds k'max
// is discarded whatever its exact value, so most discarded samples cost a
// fraction of a full sweep. The scan order is the Coords order and the
// arithmetic is vec.Score's, so an uncapped result is bit-identical to
// CountBelowBlock's.
//
//wqrtq:hotpath
//wqrtq:contract noescape(c,w) nobce noalloc
func CountBelowCapped(c *Coords, w []float64, fq float64, cap int) (count, scanned int) {
	if cap < 0 {
		return cap + 1, 0
	}
	n := c.n
	if n <= 0 {
		return 0, n
	}
	// Each specialization pins the column lengths with one guard and
	// re-slices to exactly n, after which every y[i]-style load shares x's
	// range-proved index. The guards only fire on a corrupted Coords (the
	// builder keeps all columns at length n).
	switch len(c.cols) {
	case 2:
		x, y := c.cols[0], c.cols[1]
		if len(x) < n || len(y) < n || len(w) < 2 {
			panic("kernel: short columns or weight")
		}
		x, y = x[:n], y[:n]
		w0, w1 := w[0], w[1]
		for i, xi := range x {
			s := w0 * xi
			s += w1 * y[i]
			if s < fq {
				count++
				if count > cap {
					return count, i + 1
				}
			}
		}
	case 3:
		x, y, z := c.cols[0], c.cols[1], c.cols[2]
		if len(x) < n || len(y) < n || len(z) < n || len(w) < 3 {
			panic("kernel: short columns or weight")
		}
		x, y, z = x[:n], y[:n], z[:n]
		w0, w1, w2 := w[0], w[1], w[2]
		for i, xi := range x {
			s := w0 * xi
			s += w1 * y[i]
			s += w2 * z[i]
			if s < fq {
				count++
				if count > cap {
					return count, i + 1
				}
			}
		}
	case 4:
		x, y, z, u := c.cols[0], c.cols[1], c.cols[2], c.cols[3]
		if len(x) < n || len(y) < n || len(z) < n || len(u) < n || len(w) < 4 {
			panic("kernel: short columns or weight")
		}
		x, y, z, u = x[:n], y[:n], z[:n], u[:n]
		w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
		for i, xi := range x {
			s := w0 * xi
			s += w1 * y[i]
			s += w2 * z[i]
			s += w3 * u[i]
			if s < fq {
				count++
				if count > cap {
					return count, i + 1
				}
			}
		}
	default:
		return countBelowCappedGeneric(c, w, fq, cap)
	}
	return count, n
}

// countBelowCappedGeneric is the arbitrary-dimension tail of
// CountBelowCapped, split out so the specialized cases can carry a nobce
// contract: like countBelowGeneric, its slice-of-slices walk keeps
// structural bounds checks no analysis can remove.
func countBelowCappedGeneric(c *Coords, w []float64, fq float64, cap int) (count, scanned int) {
	n, d := c.n, len(c.cols)
	for i := 0; i < n; i++ {
		s := w[0] * c.cols[0][i]
		for j := 1; j < d; j++ {
			s += w[j] * c.cols[j][i]
		}
		if s < fq {
			count++
			if count > cap {
				return count, i + 1
			}
		}
	}
	return count, n
}

// ScoreBlock produces the score columns of a packed weight block in one
// sweep over the candidate columns: out[b*n+i] is the score of point i
// under weight b (n = c.Len(), len(out) >= B*n). It performs no allocation.
// Scores are bit-identical to vec.Score.
//
//wqrtq:hotpath
//wqrtq:contract noescape(c,wb,out) nobce noalloc
func ScoreBlock(c *Coords, wb []float64, nWeights int, out []float64) {
	d := len(c.cols)
	n := c.n
	if len(out) < nWeights*n {
		panic("kernel: score output shorter than B*n")
	}
	if n <= 0 || nWeights <= 0 {
		return
	}
	if len(wb) < nWeights*d {
		panic("kernel: packed block shorter than its weight count")
	}
	// Like the count sweeps, the weight loop walks wb and out in lockstep
	// slice form so every index inside it is covered by the loop condition.
	switch d {
	case 2:
		x, y := c.cols[0], c.cols[1]
		if len(x) < n || len(y) < n {
			panic("kernel: short columns")
		}
		x, y = x[:n], y[:n]
		wrem, orem := wb, out
		for nw := nWeights; nw > 0 && len(wrem) >= 2 && len(orem) >= n; nw-- {
			w0, w1 := wrem[0], wrem[1]
			col := orem[:n]
			for i, xi := range x {
				s := w0 * xi
				s += w1 * y[i]
				col[i] = s
			}
			wrem, orem = wrem[2:], orem[n:]
		}
	case 3:
		x, y, z := c.cols[0], c.cols[1], c.cols[2]
		if len(x) < n || len(y) < n || len(z) < n {
			panic("kernel: short columns")
		}
		x, y, z = x[:n], y[:n], z[:n]
		wrem, orem := wb, out
		for nw := nWeights; nw > 0 && len(wrem) >= 3 && len(orem) >= n; nw-- {
			w0, w1, w2 := wrem[0], wrem[1], wrem[2]
			col := orem[:n]
			for i, xi := range x {
				s := w0 * xi
				s += w1 * y[i]
				s += w2 * z[i]
				col[i] = s
			}
			wrem, orem = wrem[3:], orem[n:]
		}
	case 4:
		x, y, z, u := c.cols[0], c.cols[1], c.cols[2], c.cols[3]
		if len(x) < n || len(y) < n || len(z) < n || len(u) < n {
			panic("kernel: short columns")
		}
		x, y, z, u = x[:n], y[:n], z[:n], u[:n]
		wrem, orem := wb, out
		for nw := nWeights; nw > 0 && len(wrem) >= 4 && len(orem) >= n; nw-- {
			w0, w1, w2, w3 := wrem[0], wrem[1], wrem[2], wrem[3]
			col := orem[:n]
			for i, xi := range x {
				s := w0 * xi
				s += w1 * y[i]
				s += w2 * z[i]
				s += w3 * u[i]
				col[i] = s
			}
			wrem, orem = wrem[4:], orem[n:]
		}
	default:
		scoreBlockGeneric(c, wb, nWeights, out)
	}
}

// scoreBlockGeneric is ScoreBlock's arbitrary-dimension tail, split out so
// the specialized cases can carry a nobce contract (see
// countBelowCappedGeneric).
func scoreBlockGeneric(c *Coords, wb []float64, nWeights int, out []float64) {
	d := len(c.cols)
	n := c.n
	for b := 0; b < nWeights; b++ {
		w := wb[b*d : (b+1)*d]
		col := out[b*n : (b+1)*n]
		for i := 0; i < n; i++ {
			s := w[0] * c.cols[0][i]
			for j := 1; j < d; j++ {
				s += w[j] * c.cols[j][i]
			}
			col[i] = s
		}
	}
}

// Scratch holds the reusable buffers of one blocked evaluation site: the
// SoA images of the scanned candidate sets and the packed per-block weight,
// threshold and count arrays. Obtain one with GetScratch and return it with
// PutScratch; in steady state a pooled Scratch makes the blocked paths
// allocation-free.
type Scratch struct {
	// Uni is the SoA image of the full candidate universe of one call;
	// Trim the k'max-trimmed subset the sampling loops scan.
	Uni  Coords
	Trim Coords
	// WB, Fqs and Counts are the packed block buffers.
	WB     []float64
	Fqs    []float64
	Counts []int
}

// Block ensures the packed buffers hold at least b weights of dimension d
// and returns them sliced to exactly b.
func (s *Scratch) Block(b, d int) (wb, fqs []float64, counts []int) {
	if cap(s.WB) < b*d {
		s.WB = make([]float64, b*d)
	}
	if cap(s.Fqs) < b {
		s.Fqs = make([]float64, b)
	}
	if cap(s.Counts) < b {
		s.Counts = make([]int, b)
	}
	return s.WB[:b*d], s.Fqs[:b], s.Counts[:b]
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch takes a Scratch from the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a Scratch to the shared pool.
func PutScratch(s *Scratch) {
	if s != nil {
		scratchPool.Put(s)
	}
}

// Counters accumulates blocked-kernel activity. One Counters is shared by
// every snapshot in a clone family (like the skyband counters), so the
// serving engine reports cumulative numbers over the index's lifetime.
type Counters struct {
	blocks  atomic.Int64
	weights atomic.Int64
	points  atomic.Int64
}

// NewCounters creates a zeroed counter set.
func NewCounters() *Counters { return &Counters{} }

// Add records one blocked sweep evaluating nWeights weights over nPoints
// candidate points.
func (c *Counters) Add(nWeights, nPoints int) {
	if c == nil {
		return
	}
	c.blocks.Add(1)
	c.weights.Add(int64(nWeights))
	c.points.Add(int64(nPoints))
}

// CountersSnapshot is a point-in-time copy of the cumulative counters.
type CountersSnapshot struct {
	// Blocks counts blocked sweeps; Weights the weighting vectors they
	// evaluated; Points the candidate points per sweep, summed — so
	// Weights*Points/Blocks approximates the score evaluations amortized
	// per sweep.
	Blocks  int64 `json:"blocks"`
	Weights int64 `json:"weights"`
	Points  int64 `json:"points"`
}

// Snapshot copies the counters.
func (c *Counters) Snapshot() CountersSnapshot {
	if c == nil {
		return CountersSnapshot{}
	}
	return CountersSnapshot{
		Blocks:  c.blocks.Load(),
		Weights: c.weights.Load(),
		Points:  c.points.Load(),
	}
}

// CountBelowWeights evaluates count-below for an arbitrary number of
// weights, chunking them into BlockSize packed sweeps through sc's buffers:
// for every i, counts[i] = |{p in c : f(ws[i], p) < fqs[i]}|. ws is indexed
// through at (avoiding a []vec.Weight dependency); ct, when non-nil,
// records the blocked work.
func CountBelowWeights(c *Coords, nWeights int, at func(int) []float64, fqs []float64, counts []int, sc *Scratch, ct *Counters) {
	_ = CountBelowWeightsCtx(context.Background(), c, nWeights, at, fqs, counts, sc, ct)
}

// CountBelowWeightsCtx is CountBelowWeights with cooperative cancellation:
// ctx is polled before every blocked sweep, so a canceled caller unwinds
// within one BlockSize chunk.
func CountBelowWeightsCtx(ctx context.Context, c *Coords, nWeights int, at func(int) []float64, fqs []float64, counts []int, sc *Scratch, ct *Counters) error {
	d := c.Dim()
	for base := 0; base < nWeights; base += BlockSize {
		if err := ctx.Err(); err != nil {
			return err
		}
		nb := nWeights - base
		if nb > BlockSize {
			nb = BlockSize
		}
		wb, bf, bc := sc.Block(nb, d)
		for j := 0; j < nb; j++ {
			copy(wb[j*d:(j+1)*d], at(base+j))
			bf[j] = fqs[base+j]
		}
		CountBelowBlock(c, wb, bf, bc)
		copy(counts[base:base+nb], bc)
		ct.Add(nb, c.Len())
	}
	return nil
}
