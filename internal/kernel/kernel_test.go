package kernel

import (
	"math/rand"
	"testing"

	"wqrtq/internal/sample"
	"wqrtq/internal/vec"
)

// refCountBelow is the scalar reference: one vec.Score per (weight, point).
func refCountBelow(pts []vec.Point, w vec.Weight, fq float64) int {
	cnt := 0
	for _, p := range pts {
		if vec.Score(w, p) < fq {
			cnt++
		}
	}
	return cnt
}

func randPoints(rng *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func coordsOf(pts []vec.Point, d int) *Coords {
	var c Coords
	c.Fill(d, len(pts), func(i int) []float64 { return pts[i] })
	return &c
}

// TestCountBelowBlockMatchesScalar checks the blocked counts against the
// scalar reference for every specialized dimension, a generic dimension,
// block sizes around the register-blocking boundaries, and empty inputs.
func TestCountBelowBlockMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{2, 3, 4, 5, 7} {
		for _, n := range []int{0, 1, 3, 64, 257} {
			pts := randPoints(rng, n, d)
			c := coordsOf(pts, d)
			for _, nw := range []int{1, 2, 3, 4, 5, 8, 9, 63, 64} {
				wb := make([]float64, nw*d)
				fqs := make([]float64, nw)
				ws := make([]vec.Weight, nw)
				for b := 0; b < nw; b++ {
					w := sample.RandSimplex(rng, d)
					ws[b] = w
					copy(wb[b*d:(b+1)*d], w)
					// Thresholds spread around the score distribution so
					// counts are neither all-0 nor all-n.
					fqs[b] = rng.Float64() * float64(d)
				}
				counts := make([]int, nw)
				CountBelowBlock(c, wb, fqs, counts)
				for b := 0; b < nw; b++ {
					if want := refCountBelow(pts, ws[b], fqs[b]); counts[b] != want {
						t.Fatalf("d=%d n=%d nw=%d b=%d: count %d, scalar %d", d, n, nw, b, counts[b], want)
					}
				}
			}
		}
	}
}

// TestScoreBlockBitIdentical checks that every blocked score equals
// vec.Score bit for bit (not merely within epsilon): the kernel preserves
// the multiply/add association order the differential suites rely on.
func TestScoreBlockBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{2, 3, 4, 6} {
		n := 101
		pts := randPoints(rng, n, d)
		c := coordsOf(pts, d)
		const nw = 9
		wb := make([]float64, nw*d)
		ws := make([]vec.Weight, nw)
		for b := 0; b < nw; b++ {
			ws[b] = sample.RandSimplex(rng, d)
			copy(wb[b*d:(b+1)*d], ws[b])
		}
		out := make([]float64, nw*n)
		ScoreBlock(c, wb, nw, out)
		for b := 0; b < nw; b++ {
			for i, p := range pts {
				if got, want := out[b*n+i], vec.Score(ws[b], p); got != want {
					t.Fatalf("d=%d b=%d i=%d: score %v, vec.Score %v", d, b, i, got, want)
				}
			}
		}
	}
}

// TestCountBelowWeightsChunking drives the BlockSize-chunking wrapper past
// one block and checks the counters account for every sweep.
func TestCountBelowWeightsChunking(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const d, n, nw = 3, 200, 2*BlockSize + 17
	pts := randPoints(rng, n, d)
	c := coordsOf(pts, d)
	ws := make([]vec.Weight, nw)
	fqs := make([]float64, nw)
	for i := range ws {
		ws[i] = sample.RandSimplex(rng, d)
		fqs[i] = rng.Float64() * 2
	}
	counts := make([]int, nw)
	sc := GetScratch()
	defer PutScratch(sc)
	ct := NewCounters()
	CountBelowWeights(c, nw, func(i int) []float64 { return ws[i] }, fqs, counts, sc, ct)
	for i := range ws {
		if want := refCountBelow(pts, ws[i], fqs[i]); counts[i] != want {
			t.Fatalf("weight %d: count %d, scalar %d", i, counts[i], want)
		}
	}
	snap := ct.Snapshot()
	if snap.Blocks != 3 || snap.Weights != nw || snap.Points != 3*int64(n) {
		t.Fatalf("counters %+v, want 3 blocks / %d weights / %d points", snap, nw, 3*n)
	}
	if (*Counters)(nil).Snapshot() != (CountersSnapshot{}) {
		t.Fatal("nil counters must snapshot to zero")
	}
}

// TestCoordsReuse checks Reset/Append capacity reuse across refills and
// dimension changes.
func TestCoordsReuse(t *testing.T) {
	var c Coords
	c.Fill(3, 10, func(i int) []float64 { return []float64{float64(i), 1, 2} })
	if c.Len() != 10 || c.Dim() != 3 {
		t.Fatalf("fill: len=%d dim=%d", c.Len(), c.Dim())
	}
	c.Fill(2, 4, func(i int) []float64 { return []float64{float64(i), -1} })
	if c.Len() != 4 || c.Dim() != 2 {
		t.Fatalf("refill: len=%d dim=%d", c.Len(), c.Dim())
	}
	for i := 0; i < 4; i++ {
		if c.Col(0)[i] != float64(i) || c.Col(1)[i] != -1 {
			t.Fatalf("refill contents wrong at %d: %v %v", i, c.Col(0)[i], c.Col(1)[i])
		}
	}
}

// TestKernelAllocsPerOp guards the acceptance requirement of zero
// allocations per op in the kernel inner loops: with warmed scratch,
// CountBelowBlock, ScoreBlock and the chunking wrapper must not allocate.
func TestKernelAllocsPerOp(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const d, n, nw = 3, 512, BlockSize
	pts := randPoints(rng, n, d)
	c := coordsOf(pts, d)
	ws := make([]vec.Weight, nw)
	fqs := make([]float64, nw)
	for i := range ws {
		ws[i] = sample.RandSimplex(rng, d)
		fqs[i] = rng.Float64()
	}
	wb := make([]float64, nw*d)
	for b := range ws {
		copy(wb[b*d:(b+1)*d], ws[b])
	}
	counts := make([]int, nw)
	out := make([]float64, nw*n)
	sc := GetScratch()
	defer PutScratch(sc)
	ct := NewCounters()
	at := func(i int) []float64 { return ws[i] }
	CountBelowWeights(c, nw, at, fqs, counts, sc, ct) // warm sc's block buffers

	if allocs := testing.AllocsPerRun(100, func() {
		CountBelowBlock(c, wb, fqs, counts)
	}); allocs != 0 {
		t.Fatalf("CountBelowBlock allocates %.1f objects per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		ScoreBlock(c, wb, nw, out)
	}); allocs != 0 {
		t.Fatalf("ScoreBlock allocates %.1f objects per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		CountBelowWeights(c, nw, at, fqs, counts, sc, ct)
	}); allocs != 0 {
		t.Fatalf("CountBelowWeights allocates %.1f objects per op, want 0", allocs)
	}
}

// BenchmarkCountBelow compares the blocked sweep against the equivalent
// scalar scans at the refinement loop's typical shape.
func BenchmarkCountBelow(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	const d, n, nw = 3, 1024, BlockSize
	pts := randPoints(rng, n, d)
	c := coordsOf(pts, d)
	wb := make([]float64, nw*d)
	fqs := make([]float64, nw)
	ws := make([]vec.Weight, nw)
	for i := range ws {
		ws[i] = sample.RandSimplex(rng, d)
		copy(wb[i*d:(i+1)*d], ws[i])
		fqs[i] = rng.Float64()
	}
	counts := make([]int, nw)
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			CountBelowBlock(c, wb, fqs, counts)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range ws {
				counts[j] = refCountBelow(pts, ws[j], fqs[j])
			}
		}
	})
}
