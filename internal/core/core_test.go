package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wqrtq/internal/rtree"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// The running example of the paper: computers of Figure 1(a), query point
// q = (4, 4), customer preferences of Figure 1(b), k = 3, and the why-not
// vectors Kevin (0.1, 0.9) and Julia (0.9, 0.1).
func paperPoints() []vec.Point {
	return []vec.Point{
		{2, 1}, {6, 3}, {1, 9}, {9, 3}, {7, 5}, {5, 8}, {3, 7},
	}
}

func paperTree() *rtree.Tree {
	return rtree.Bulk(paperPoints(), nil, rtree.Options{PageSize: 128})
}

var (
	paperQ     = vec.Point{4, 4}
	paperKevin = vec.Weight{0.1, 0.9}
	paperJulia = vec.Weight{0.9, 0.1}
	paperWm    = []vec.Weight{paperKevin, paperJulia}
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randPoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float64() * 10
		}
		pts[i] = p
	}
	return pts
}

func randWeight(r *rand.Rand, d int) vec.Weight {
	w := make(vec.Weight, d)
	s := 0.0
	for i := range w {
		w[i] = r.Float64() + 1e-3
		s += w[i]
	}
	for i := range w {
		w[i] /= s
	}
	return w
}

// --- Penalty model: the paper's worked examples --------------------------

func TestQPenaltyPaperNumbers(t *testing.T) {
	pm := DefaultPenaltyModel()
	// §4.2: Penalty(q'=(3,2.5)) = 0.318, Penalty(q''=(2.5,3.5)) = 0.279.
	if got := pm.QPenalty(paperQ, vec.Point{3, 2.5}); !almost(got, 0.318, 1e-3) {
		t.Errorf("QPenalty(q') = %v, want 0.318", got)
	}
	if got := pm.QPenalty(paperQ, vec.Point{2.5, 3.5}); !almost(got, 0.279, 1e-3) {
		t.Errorf("QPenalty(q'') = %v, want 0.279", got)
	}
}

func TestWKPenaltyPaperNumbers(t *testing.T) {
	pm := DefaultPenaltyModel()
	// §4.3: Kevin → (0.18, 0.82), Julia → (0.75, 0.25), k'max = 4, k' = 3:
	// penalty "0.121" (exact value 0.1202 with the concatenated L2 ΔWm).
	refined := []vec.Weight{{0.18, 0.82}, {0.75, 0.25}}
	got := pm.WKPenalty(paperWm, refined, 3, 3, 4)
	if !almost(got, 0.1202, 1e-3) {
		t.Errorf("WKPenalty = %v, want 0.120", got)
	}
	// Alternative: keep the vectors, raise k to 4: penalty 0.5.
	got = pm.WKPenalty(paperWm, paperWm, 3, 4, 4)
	if !almost(got, 0.5, 1e-12) {
		t.Errorf("WKPenalty(k'=4) = %v, want 0.5", got)
	}
	// Decreasing k is free (§4.3).
	got = pm.WKPenalty(paperWm, paperWm, 6, 3, 7)
	if got != 0 {
		t.Errorf("WKPenalty with k' < k = %v, want 0", got)
	}
}

func TestTotalPenaltyPaperNumbers(t *testing.T) {
	pm := DefaultPenaltyModel()
	// §4.4: q' = (3.8, 3.8), Kevin → (0.135, 0.865), Julia → (0.8, 0.2),
	// k unchanged: penalty "0.06" (exact 0.0625).
	refined := []vec.Weight{{0.135, 0.865}, {0.8, 0.2}}
	got := pm.TotalPenalty(paperQ, vec.Point{3.8, 3.8}, paperWm, refined, 3, 3, 4)
	if !almost(got, 0.0625, 1e-3) {
		t.Errorf("TotalPenalty = %v, want 0.0625", got)
	}
}

func TestNormalizedVariantMatchesEquation4(t *testing.T) {
	pm := DefaultPenaltyModel()
	pm.NormalizeWeights = true
	refined := []vec.Weight{{0.18, 0.82}, {0.75, 0.25}}
	// With ΔWm,max = sqrt(2·|Wm|) = 2 the printed Eq. (4) gives 0.0601.
	got := pm.WKPenalty(paperWm, refined, 3, 3, 4)
	if !almost(got, 0.0601, 1e-3) {
		t.Errorf("normalized WKPenalty = %v, want 0.0601", got)
	}
}

func TestPenaltyModelValidate(t *testing.T) {
	if err := DefaultPenaltyModel().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
	bad := PenaltyModel{Alpha: 0.7, Beta: 0.7, Gamma: 0.5, Lambda: 0.5}
	if err := bad.Validate(); err == nil {
		t.Error("alpha+beta != 1 accepted")
	}
	bad = PenaltyModel{Alpha: 0.5, Beta: 0.5, Gamma: -0.5, Lambda: 1.5}
	if err := bad.Validate(); err == nil {
		t.Error("negative gamma accepted")
	}
}

// --- MQP ------------------------------------------------------------------

func TestMQPPaperExample(t *testing.T) {
	tr := paperTree()
	pm := DefaultPenaltyModel()
	res, err := MQP(tr, paperQ, 3, paperWm, pm)
	if err != nil {
		t.Fatal(err)
	}
	// The k-th points bounding the safe region are p4 (Kevin) and p7
	// (Julia), Figure 5(b).
	if res.KthPoints[0].ID != 3 || res.KthPoints[1].ID != 6 {
		t.Errorf("k-th points = %d, %d, want p4, p7", res.KthPoints[0].ID, res.KthPoints[1].ID)
	}
	// Analytic optimum: intersection of the two scoring hyperplanes,
	// q' = (3.375, 3.625), penalty 0.12886.
	if !almost(res.RefinedQ[0], 3.375, 1e-4) || !almost(res.RefinedQ[1], 3.625, 1e-4) {
		t.Errorf("RefinedQ = %v, want (3.375, 3.625)", res.RefinedQ)
	}
	if !almost(res.Penalty, 0.12886, 1e-4) {
		t.Errorf("Penalty = %v, want 0.1289", res.Penalty)
	}
	// The optimum beats both hand-picked candidates from the paper (0.318
	// and 0.279) and passes verification.
	if res.Penalty > 0.279 {
		t.Errorf("penalty %v worse than the paper's hand-picked candidates", res.Penalty)
	}
	if !VerifyRefinement(tr, res.RefinedQ, 3, paperWm) {
		t.Error("refined q fails verification")
	}
}

func TestMQPAlwaysFeasibleQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(300)
		d := 2 + r.Intn(3)
		pts := randPoints(r, n, d)
		tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 256})
		q := randPoints(r, 1, d)[0]
		k := 1 + r.Intn(10)
		m := 1 + r.Intn(4)
		wm := make([]vec.Weight, m)
		for i := range wm {
			wm[i] = randWeight(r, d)
		}
		pm := DefaultPenaltyModel()
		res, err := MQP(tr, q, k, wm, pm)
		if err != nil {
			return false
		}
		if !VerifyRefinement(tr, res.RefinedQ, k, wm) {
			return false
		}
		// Box constraint: 0 <= q' <= q.
		for i := range res.RefinedQ {
			if res.RefinedQ[i] < -1e-12 || res.RefinedQ[i] > q[i]+1e-12 {
				return false
			}
		}
		return res.Penalty >= 0 && res.Penalty <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMQPAlreadySatisfied(t *testing.T) {
	// Why-not vectors that already contain q: the QP constraints are
	// inactive and q is returned unchanged (penalty 0).
	tr := paperTree()
	res, err := MQP(tr, paperQ, 3, []vec.Weight{{0.5, 0.5}}, DefaultPenaltyModel())
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Penalty, 0, 1e-6) {
		t.Errorf("penalty = %v, want ~0", res.Penalty)
	}
}

func TestMQPInputValidation(t *testing.T) {
	tr := paperTree()
	pm := DefaultPenaltyModel()
	if _, err := MQP(tr, paperQ, 0, paperWm, pm); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := MQP(tr, paperQ, 3, nil, pm); err == nil {
		t.Error("empty Wm accepted")
	}
	if _, err := MQP(tr, paperQ, 3, []vec.Weight{{0.7, 0.7}}, pm); err == nil {
		t.Error("invalid weight accepted")
	}
	if _, err := MQP(tr, paperQ, 100, paperWm, pm); err == nil {
		t.Error("k > |P| accepted")
	}
	if _, err := MQP(tr, vec.Point{1, 2, 3}, 3, paperWm, pm); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// --- MWK ------------------------------------------------------------------

func TestMWKPaperExample(t *testing.T) {
	tr := paperTree()
	pm := DefaultPenaltyModel()
	rng := rand.New(rand.NewSource(1))
	res, err := MWK(tr, paperQ, 3, paperWm, 2000, rng, pm)
	if err != nil {
		t.Fatal(err)
	}
	if res.KMax != 4 {
		t.Errorf("KMax = %d, want 4 (Lemma 4 example)", res.KMax)
	}
	// The exact 2-D optimum moves Kevin to λ=1/6 and Julia to λ=3/4 with
	// k'=3: penalty 0.11607. The sampler must find it exactly here, because
	// in 2-D every hyperplane sample is one of the four candidate points.
	if !almost(res.Penalty, 0.11607, 1e-4) {
		t.Errorf("Penalty = %v, want 0.11607", res.Penalty)
	}
	if res.RefinedK != 3 {
		t.Errorf("RefinedK = %d, want 3", res.RefinedK)
	}
	if !almost(res.RefinedWm[0][0], 1.0/6, 1e-9) || !almost(res.RefinedWm[1][0], 3.0/4, 1e-9) {
		t.Errorf("RefinedWm = %v, want λ=1/6 and λ=3/4", res.RefinedWm)
	}
	// Beats the paper's illustrative modification (0.1202) and the k-only
	// alternative (0.5).
	if res.Penalty > 0.1202 {
		t.Errorf("penalty %v worse than the paper's example modification", res.Penalty)
	}
	if !VerifyRefinement(tr, paperQ, res.RefinedK, res.RefinedWm) {
		t.Error("refined (Wm', k') fails verification")
	}
}

func TestMWKMatchesExact2DQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(150)
		pts := randPoints(r, n, 2)
		tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 256})
		q := randPoints(r, 1, 2)[0]
		k := 1 + r.Intn(6)
		m := 1 + r.Intn(3)
		wm := make([]vec.Weight, m)
		for i := range wm {
			wm[i] = randWeight(r, 2)
		}
		pm := DefaultPenaltyModel()
		exact, err := ExactMWK2D(pts, q, k, wm, pm)
		if err != nil {
			return false
		}
		got, err := MWK(tr, q, k, wm, 600, rand.New(rand.NewSource(seed+1)), pm)
		if err != nil {
			return false
		}
		// Sampling can never beat the exact optimum...
		if got.Penalty < exact.Penalty-1e-9 {
			return false
		}
		// ...and can never be worse than the k-only baseline.
		if got.Penalty > pm.Alpha+1e-9 {
			return false
		}
		// The refinement must be valid.
		return VerifyRefinement(tr, q, got.RefinedK, got.RefinedWm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMWKAlreadySatisfied(t *testing.T) {
	tr := paperTree()
	rng := rand.New(rand.NewSource(2))
	res, err := MWK(tr, paperQ, 3, []vec.Weight{{0.5, 0.5}}, 100, rng, DefaultPenaltyModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalty != 0 || res.RefinedK != 3 {
		t.Errorf("already-satisfied vector: penalty %v, k' %d", res.Penalty, res.RefinedK)
	}
}

func TestMWKZeroSamplesFallsBackToKOnly(t *testing.T) {
	tr := paperTree()
	rng := rand.New(rand.NewSource(3))
	pm := DefaultPenaltyModel()
	res, err := MWK(tr, paperQ, 3, paperWm, 0, rng, pm)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BaselineChosen || res.RefinedK != 4 {
		t.Errorf("expected k-only baseline with k'=4, got %+v", res)
	}
	if !almost(res.Penalty, pm.Alpha, 1e-12) {
		t.Errorf("baseline penalty = %v, want alpha", res.Penalty)
	}
}

func TestExactMWK2DPaperExample(t *testing.T) {
	pm := DefaultPenaltyModel()
	res, err := ExactMWK2D(paperPoints(), paperQ, 3, paperWm, pm)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Penalty, 0.11607, 1e-4) {
		t.Errorf("exact penalty = %v, want 0.11607", res.Penalty)
	}
	if res.RefinedK != 3 {
		t.Errorf("exact k' = %d, want 3", res.RefinedK)
	}
}

// --- MQWK -------------------------------------------------------------------

func TestMQWKPaperExample(t *testing.T) {
	tr := paperTree()
	pm := DefaultPenaltyModel()
	rng := rand.New(rand.NewSource(7))
	res, err := MQWK(tr, paperQ, 3, paperWm, 400, 400, rng, pm)
	if err != nil {
		t.Fatal(err)
	}
	// Candidates include the pure solutions: γ·0.12886 = 0.0644 and
	// λ·0.11607 = 0.0580, so the result is at least that good — and beats
	// the paper's illustrative 0.06.
	if res.Penalty > 0.05804+1e-6 {
		t.Errorf("Penalty = %v, want <= 0.0580", res.Penalty)
	}
	if !VerifyRefinement(tr, res.RefinedQ, res.RefinedK, res.RefinedWm) {
		t.Error("refined (q', Wm', k') fails verification")
	}
	// q' must stay in the box [q_min, q].
	for i := range res.RefinedQ {
		if res.RefinedQ[i] < res.QMin[i]-1e-9 || res.RefinedQ[i] > paperQ[i]+1e-9 {
			t.Errorf("RefinedQ[%d] = %v outside [%v, %v]", i, res.RefinedQ[i], res.QMin[i], paperQ[i])
		}
	}
}

func TestMQWKNeverWorseThanPureSolutionsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(120)
		d := 2 + r.Intn(2)
		pts := randPoints(r, n, d)
		tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 256})
		q := randPoints(r, 1, d)[0]
		k := 1 + r.Intn(5)
		wm := []vec.Weight{randWeight(r, d)}
		pm := DefaultPenaltyModel()

		mqp, err := MQP(tr, q, k, wm, pm)
		if err != nil {
			return false
		}
		// Same seed for both: MQWK evaluates the endpoint q' = q first, so
		// its internal MWK consumes the identical sample sequence and the
		// pure-solution bound is deterministic.
		mwk, err := MWK(tr, q, k, wm, 200, rand.New(rand.NewSource(seed+1)), pm)
		if err != nil {
			return false
		}
		all, err := MQWK(tr, q, k, wm, 200, 50, rand.New(rand.NewSource(seed+1)), pm)
		if err != nil {
			return false
		}
		if all.Penalty > pm.Gamma*mqp.Penalty+1e-9 {
			return false
		}
		if all.Penalty > pm.Lambda*mwk.Penalty+1e-9 {
			return false
		}
		return VerifyRefinement(tr, all.RefinedQ, all.RefinedK, all.RefinedWm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMQWKReusesSingleTraversal(t *testing.T) {
	tr := paperTree()
	rng := rand.New(rand.NewSource(9))
	res, err := MQWK(tr, paperQ, 3, paperWm, 50, 20, rng, DefaultPenaltyModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeTraversals != 2 {
		t.Errorf("TreeTraversals = %d, want 2 (reuse technique)", res.TreeTraversals)
	}
	if res.CandidatesCached != 5 {
		t.Errorf("CandidatesCached = %d, want 5 (p1, p2, p3, p4, p7)", res.CandidatesCached)
	}
}

// --- Explanations (first aspect, §3) ---------------------------------------

func TestExplainPaperExample(t *testing.T) {
	tr := paperTree()
	ex := Explain(tr, paperQ, paperWm)
	if len(ex) != 2 {
		t.Fatalf("explanations = %d, want 2", len(ex))
	}
	// Kevin: p1, p2, p4 responsible (§3).
	kevinIDs := make([]int32, len(ex[0]))
	for i, r := range ex[0] {
		kevinIDs[i] = r.ID
	}
	want := []int32{0, 1, 3}
	for i := range want {
		if kevinIDs[i] != want[i] {
			t.Errorf("Kevin explanation = %v, want %v", kevinIDs, want)
			break
		}
	}
	// Every explanation must have more than k-1 entries (q missing means
	// at least k better points).
	for i, e := range ex {
		if len(e) < 3 {
			t.Errorf("explanation %d has %d points, want >= k", i, len(e))
		}
	}
	_ = topk.Result{}
}

func TestMQPZeroCoordinateQuery(t *testing.T) {
	// Regression: a query point with a zero coordinate pins that dimension
	// (0 <= x <= 0), which must be eliminated before the interior-point
	// solve rather than left as a degenerate constraint pair.
	r := rand.New(rand.NewSource(31))
	pts := randPoints(r, 200, 3)
	tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 256})
	q := vec.Point{8, 6, 0}
	wm := []vec.Weight{{0.2, 0.3, 0.5}, {0.1, 0.1, 0.8}}
	res, err := MQP(tr, q, 3, wm, DefaultPenaltyModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.RefinedQ[2] != 0 {
		t.Errorf("pinned dimension moved: %v", res.RefinedQ)
	}
	if !VerifyRefinement(tr, res.RefinedQ, 3, wm) {
		t.Error("refinement fails verification")
	}
	// Fully-zero q dominates everything: returned unchanged.
	origin := vec.Point{0, 0, 0}
	res, err = MQP(tr, origin, 3, wm, DefaultPenaltyModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalty != 0 || !vec.Equal(res.RefinedQ, origin) {
		t.Errorf("origin query modified: %+v", res)
	}
}
