package core

// Differential oracle suite: the R-tree-backed implementations of TopK,
// Rank, bichromatic ReverseTopK and Explain are cross-checked against
// brute-force O(n·|W|) oracles on randomized UN (uniform/independent),
// CO (correlated) and AC (anti-correlated) datasets — the dataset shapes of
// the paper's §5 evaluation (Table 1). Cases are seeded and table-driven,
// so every failure reproduces from its case index alone.
//
// Comparisons are tie-robust: where the paper's definitions determine only
// a score multiset (a tie at the k-th rank boundary can be broken either
// way), the oracle checks the determined properties — exact score sequence,
// per-point score recomputation, and the boundary condition that nothing
// outside the answer scores strictly better than the last point inside —
// rather than a particular tie order.

import (
	"math/rand"
	"sort"
	"testing"

	"wqrtq/internal/dataset"
	"wqrtq/internal/rtopk"
	"wqrtq/internal/sample"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

const oracleCasesPerShape = 200

var oracleShapes = []struct {
	name string
	gen  func(n, d int, seed int64) *dataset.Dataset
}{
	{"UN", dataset.Independent},
	{"CO", dataset.Correlated},
	{"AC", dataset.Anticorrelated},
}

// oracleCase derives one deterministic randomized case.
type oracleCase struct {
	rng *rand.Rand
	ds  *dataset.Dataset
	n   int
	d   int
	k   int
}

func makeCase(shape int, i int) oracleCase {
	seed := int64(1000*shape + i)
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(300)
	d := 2 + rng.Intn(3)
	k := 1 + rng.Intn(15)
	return oracleCase{
		rng: rng,
		ds:  oracleShapes[shape].gen(n, d, seed+1),
		n:   n,
		d:   d,
		k:   k,
	}
}

// queryPoint draws a competitive query point: componentwise products of
// uniforms concentrate near the origin, so the point often lands near the
// skyline where all four queries have non-trivial answers.
func (c oracleCase) queryPoint() vec.Point {
	q := make(vec.Point, c.d)
	for j := range q {
		q[j] = c.rng.Float64() * c.rng.Float64()
	}
	return q
}

// checkTopKShape verifies the tie-robust top-k predicate: got is sorted,
// scores are exact, |got| = min(k, n), and no point outside got scores
// strictly better than the boundary.
func checkTopKShape(t *testing.T, pts []vec.Point, w vec.Weight, k int, got []topk.Result) {
	t.Helper()
	wantLen := k
	if len(pts) < k {
		wantLen = len(pts)
	}
	if len(got) != wantLen {
		t.Fatalf("top-%d over %d points returned %d results", k, len(pts), len(got))
	}
	seen := make(map[int32]bool, len(got))
	prev := 0.0
	for i, r := range got {
		if seen[r.ID] {
			t.Fatalf("duplicate id %d in top-k", r.ID)
		}
		seen[r.ID] = true
		if r.ID < 0 || int(r.ID) >= len(pts) {
			t.Fatalf("id %d out of range", r.ID)
		}
		if s := vec.Score(w, pts[r.ID]); s != r.Score {
			t.Fatalf("id %d reported score %v, recomputed %v", r.ID, r.Score, s)
		}
		if i > 0 && r.Score < prev {
			t.Fatalf("scores not ascending at rank %d", i+1)
		}
		prev = r.Score
	}
	if len(got) == 0 {
		return
	}
	boundary := got[len(got)-1].Score
	for id, p := range pts {
		if !seen[int32(id)] && vec.Score(w, p) < boundary {
			t.Fatalf("point %d scores %v, strictly better than boundary %v but excluded",
				id, vec.Score(w, p), boundary)
		}
	}
	// The score sequence itself must equal the oracle's sorted prefix.
	all := make([]float64, len(pts))
	for id, p := range pts {
		all[id] = vec.Score(w, p)
	}
	sort.Float64s(all)
	for i, r := range got {
		if r.Score != all[i] {
			t.Fatalf("rank %d score %v, oracle %v", i+1, r.Score, all[i])
		}
	}
}

func TestOracleTopK(t *testing.T) {
	for si, shape := range oracleShapes {
		t.Run(shape.name, func(t *testing.T) {
			for i := 0; i < oracleCasesPerShape; i++ {
				c := makeCase(si, i)
				tr := c.ds.Tree()
				w := sample.RandSimplex(c.rng, c.d)
				got := topk.TopK(tr, w, c.k)
				checkTopKShape(t, c.ds.Points, w, c.k, got)
			}
		})
	}
}

func TestOracleRank(t *testing.T) {
	for si, shape := range oracleShapes {
		t.Run(shape.name, func(t *testing.T) {
			for i := 0; i < oracleCasesPerShape; i++ {
				c := makeCase(si, i)
				tr := c.ds.Tree()
				w := sample.RandSimplex(c.rng, c.d)
				q := c.queryPoint()
				fq := vec.Score(w, q)
				got := topk.Rank(tr, w, fq)
				want := topk.RankNaive(c.ds.Points, w, fq)
				if got != want {
					t.Fatalf("case %d: Rank = %d, oracle %d (n=%d d=%d fq=%v)",
						i, got, want, c.n, c.d, fq)
				}
			}
		})
	}
}

// bruteReverseTopK is the O(n·|W|) oracle straight from Definition 3: w is
// in the result iff fewer than k points score strictly better than q.
func bruteReverseTopK(pts []vec.Point, W []vec.Weight, q vec.Point, k int) []int {
	var out []int
	for wi, w := range W {
		fq := vec.Score(w, q)
		better := 0
		for _, p := range pts {
			if vec.Score(w, p) < fq {
				better++
			}
		}
		if better < k {
			out = append(out, wi)
		}
	}
	return out
}

func TestOracleReverseTopK(t *testing.T) {
	for si, shape := range oracleShapes {
		t.Run(shape.name, func(t *testing.T) {
			for i := 0; i < oracleCasesPerShape; i++ {
				c := makeCase(si, i)
				tr := c.ds.Tree()
				q := c.queryPoint()
				W := make([]vec.Weight, 1+c.rng.Intn(25))
				for j := range W {
					W[j] = sample.RandSimplex(c.rng, c.d)
				}
				got, _ := rtopk.Bichromatic(tr, W, q, c.k)
				want := bruteReverseTopK(c.ds.Points, W, q, c.k)
				if len(got) != len(want) {
					t.Fatalf("case %d: result %v, oracle %v (n=%d d=%d k=%d)",
						i, got, want, c.n, c.d, c.k)
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("case %d: result %v, oracle %v", i, got, want)
					}
				}
			}
		})
	}
}

func TestOracleExplain(t *testing.T) {
	for si, shape := range oracleShapes {
		t.Run(shape.name, func(t *testing.T) {
			for i := 0; i < oracleCasesPerShape; i++ {
				c := makeCase(si, i)
				tr := c.ds.Tree()
				q := c.queryPoint()
				Wm := make([]vec.Weight, 1+c.rng.Intn(4))
				for j := range Wm {
					Wm[j] = sample.RandSimplex(c.rng, c.d)
				}
				exps := Explain(tr, q, Wm)
				if len(exps) != len(Wm) {
					t.Fatalf("case %d: %d explanations for %d vectors", i, len(exps), len(Wm))
				}
				for wi, exp := range exps {
					w := Wm[wi]
					fq := vec.Score(w, q)
					// Oracle: exactly the ids scoring strictly better than q.
					want := make(map[int32]bool)
					for id, p := range c.ds.Points {
						if vec.Score(w, p) < fq {
							want[int32(id)] = true
						}
					}
					if len(exp) != len(want) {
						t.Fatalf("case %d vector %d: %d explaining points, oracle %d",
							i, wi, len(exp), len(want))
					}
					prev := 0.0
					for j, r := range exp {
						if !want[r.ID] {
							t.Fatalf("case %d vector %d: id %d does not outscore q", i, wi, r.ID)
						}
						if s := vec.Score(w, c.ds.Points[r.ID]); s != r.Score {
							t.Fatalf("case %d vector %d: id %d score %v, recomputed %v",
								i, wi, r.ID, r.Score, s)
						}
						if j > 0 && r.Score < prev {
							t.Fatalf("case %d vector %d: not in rank order", i, wi)
						}
						prev = r.Score
					}
				}
			}
		})
	}
}
