package core

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"wqrtq/internal/rtree"
	"wqrtq/internal/vec"
)

func TestMWKPerVectorPaperExample(t *testing.T) {
	tr := paperTree()
	pm := DefaultPenaltyModel()
	rng := rand.New(rand.NewSource(1))
	res, err := MWKPerVector(tr, paperQ, 3, paperWm, 2000, rng, pm)
	if err != nil {
		t.Fatal(err)
	}
	// In 2-D every sample is one of four fixed points; the per-vector
	// closest choices are λ=1/6 for Kevin and λ=3/4 for Julia, which happen
	// to coincide with the scanning optimum here.
	if !almost(res.Penalty, 0.11607, 1e-4) {
		t.Errorf("penalty = %v, want 0.11607", res.Penalty)
	}
	if !VerifyRefinement(tr, paperQ, res.RefinedK, res.RefinedWm) {
		t.Error("refinement fails verification")
	}
}

func TestMWKPerVectorNeverBeatsScanQuick(t *testing.T) {
	// §4.3: the per-vector strategy makes ΔWm minimal but the *total*
	// penalty "may not be the minimum" — the Lemma 6 scan, given the same
	// samples, can only be equal or better.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(150)
		d := 2 + r.Intn(2)
		pts := randPoints(r, n, d)
		tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 256})
		q := randPoints(r, 1, d)[0]
		k := 1 + r.Intn(5)
		m := 1 + r.Intn(3)
		wm := make([]vec.Weight, m)
		for i := range wm {
			wm[i] = randWeight(r, d)
		}
		pm := DefaultPenaltyModel()
		scan, err := MWK(tr, q, k, wm, 300, rand.New(rand.NewSource(seed+1)), pm)
		if err != nil {
			return false
		}
		per, err := MWKPerVector(tr, q, k, wm, 300, rand.New(rand.NewSource(seed+1)), pm)
		if err != nil {
			return false
		}
		if !VerifyRefinement(tr, q, per.RefinedK, per.RefinedWm) {
			return false
		}
		// Identical sample stream: the scan dominates on penalty.
		return scan.Penalty <= per.Penalty+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMWKPerVectorAlreadySatisfied(t *testing.T) {
	tr := paperTree()
	rng := rand.New(rand.NewSource(2))
	res, err := MWKPerVector(tr, paperQ, 3, []vec.Weight{{0.5, 0.5}}, 100, rng, DefaultPenaltyModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalty != 0 || res.RefinedK != 3 {
		t.Errorf("already-satisfied: %+v", res)
	}
}

func TestMQWKParallelMatchesDeterministicSeeding(t *testing.T) {
	// Same seed, different worker counts: identical result.
	tr := paperTree()
	pm := DefaultPenaltyModel()
	base, err := MQWKParallel(tr, paperQ, 3, paperWm, 200, 50, 11, 1, pm)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got, err := MQWKParallel(tr, paperQ, 3, paperWm, 200, 50, 11, workers, pm)
		if err != nil {
			t.Fatal(err)
		}
		if got.Penalty != base.Penalty {
			t.Errorf("workers=%d: penalty %v != %v", workers, got.Penalty, base.Penalty)
		}
		if !vec.Equal(got.RefinedQ, base.RefinedQ) {
			t.Errorf("workers=%d: refined q differs", workers)
		}
		if got.RefinedK != base.RefinedK {
			t.Errorf("workers=%d: refined k differs", workers)
		}
	}
}

func TestMQWKParallelVerifiesAndBeatsPureSolutions(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := randPoints(r, 500, 3)
	tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 512})
	q := randPoints(r, 1, 3)[0]
	wm := []vec.Weight{randWeight(r, 3), randWeight(r, 3)}
	pm := DefaultPenaltyModel()
	mqp, err := MQP(tr, q, 5, wm, pm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MQWKParallel(tr, q, 5, wm, 200, 100, 4, 0, pm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalty > pm.Gamma*mqp.Penalty+1e-9 {
		t.Errorf("parallel MQWK penalty %v exceeds γ·MQP %v", res.Penalty, pm.Gamma*mqp.Penalty)
	}
	if !VerifyRefinement(tr, res.RefinedQ, res.RefinedK, res.RefinedWm) {
		t.Error("refinement fails verification")
	}
}

func TestMQWKParallelInputValidation(t *testing.T) {
	tr := paperTree()
	pm := DefaultPenaltyModel()
	if _, err := MQWKParallel(tr, paperQ, 0, paperWm, 10, 10, 1, 0, pm); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := MQWKParallel(tr, paperQ, 3, paperWm, 10, -1, 1, 0, pm); err == nil {
		t.Error("negative query sample size accepted")
	}
}
