package core

import (
	"context"
	"errors"
	"fmt"

	"wqrtq/internal/mat"
	"wqrtq/internal/qp"
	"wqrtq/internal/rtree"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// MQPResult is the outcome of the first solution: the refined query point.
type MQPResult struct {
	RefinedQ vec.Point
	Penalty  float64
	// KthPoints[i] is the top k-th point under Wm[i], whose half space
	// bounds the safe region (Lemma 3).
	KthPoints []topk.Result
	// QPIterations reports interior-point iterations, the d³·L term of
	// Theorem 1.
	QPIterations int
}

// ErrSmallDataset is returned when the dataset holds fewer than k points,
// in which case every weighting vector trivially ranks q in its top-k.
var ErrSmallDataset = errors.New("core: dataset smaller than k; nothing to refine")

// MQP implements Algorithm 1: modify the query point q with minimum penalty
// so that every why-not weighting vector includes q' in its top-k.
//
// For each wᵢ ∈ Wm the top k-th point pᵢ is found by best-first
// branch-and-bound search; the safe region SR(q) = ∩ HS(wᵢ, pᵢ) is then
// described by the linear constraints f(wᵢ, q') ≤ f(wᵢ, pᵢ) together with
// the box 0 ≤ q' ≤ q (increasing any coordinate can never help, §4.2), and
// the closest point of the region to q is obtained by interior-point
// quadratic programming: minimize ‖q' − q‖².
func MQP(t *rtree.Tree, q vec.Point, k int, wm []vec.Weight, pm PenaltyModel) (MQPResult, error) {
	return MQPCtx(context.Background(), t, q, k, wm, pm)
}

// MQPCtx is MQP with cooperative cancellation: the per-vector top k-th
// searches of phase 1 poll ctx on their heap loops (the interior-point solve
// of phase 2 is a small dense problem and runs to completion).
func MQPCtx(ctx context.Context, t *rtree.Tree, q vec.Point, k int, wm []vec.Weight, pm PenaltyModel) (MQPResult, error) {
	return MQPSrcCtx(ctx, t, nil, q, k, wm, pm)
}

// MQPSrcCtx is MQPCtx with the per-vector top k-th searches routed through
// an optional skyband Source. The refined point and penalty are
// bit-identical for any valid Source: the safe-region constraints and the
// feasibility snap consume only the k-th scores, which a k-skyband tree
// reproduces exactly (only the identity of a score-tied k-th point may
// differ, visible solely in the diagnostic KthPoints field).
func MQPSrcCtx(ctx context.Context, t *rtree.Tree, src *Source, q vec.Point, k int, wm []vec.Weight, pm PenaltyModel) (MQPResult, error) {
	d := len(q)
	if err := validateInput(t, q, k, wm); err != nil {
		return MQPResult{}, err
	}
	// Phase 1 (lines 1-12): top k-th point per why-not vector.
	kth := make([]topk.Result, len(wm))
	for i, w := range wm {
		r, ok, err := kthPoint(ctx, src, t, w, k)
		if err != nil {
			return MQPResult{}, err
		}
		if !ok {
			return MQPResult{}, ErrSmallDataset
		}
		kth[i] = r
	}
	// Short-circuit: if q already satisfies every safe-region constraint
	// (every why-not vector ranks q within its top-k), no modification is
	// needed and the interior-point iteration would only add noise.
	satisfied := true
	//wqrtq:bounded one Score per why-not vector, request-sized
	for i, w := range wm {
		if vec.Score(w, q) > kth[i].Score {
			satisfied = false
			break
		}
	}
	if satisfied {
		return MQPResult{RefinedQ: vec.Clone(q), Penalty: 0, KthPoints: kth}, nil
	}
	// Phase 2 (lines 13-14): quadratic program per §4.2:
	// H = diag(2), c = -2q, rows wᵢ·x ≤ f(wᵢ, pᵢ), 0 ≤ x ≤ q.
	//
	// Dimensions with q[i] = 0 are eliminated first: their box constraint
	// 0 ≤ x[i] ≤ 0 pins x[i] = 0, and keeping the pair of opposing
	// inequalities would leave the interior-point iteration without a
	// strictly feasible region.
	free := make([]int, 0, d)
	for i := 0; i < d; i++ {
		if q[i] > 0 {
			free = append(free, i)
		}
	}
	nf := len(free)
	if nf == 0 {
		// q is the origin and dominates everything; the satisfied check
		// above must already have returned. Guard anyway.
		return MQPResult{RefinedQ: vec.Clone(q), Penalty: 0, KthPoints: kth}, nil
	}
	h := mat.New(nf, nf)
	c := make([]float64, nf)
	//wqrtq:bounded one diagonal entry per free dimension
	for i, fi := range free {
		h.Set(i, i, 2)
		c[i] = -2 * q[fi]
	}
	g := mat.New(len(wm)+2*nf, nf)
	hv := make([]float64, len(wm)+2*nf)
	//wqrtq:bounded one constraint row per why-not vector
	for i, w := range wm {
		row := g.Row(i)
		for j, fj := range free {
			row[j] = w[fj]
		}
		hv[i] = kth[i].Score // fixed dims contribute 0 to f(w, x)
	}
	//wqrtq:bounded box-constraint rows, one per free dimension
	for i, fi := range free {
		g.Set(len(wm)+i, i, 1)
		hv[len(wm)+i] = q[fi]
		g.Set(len(wm)+nf+i, i, -1)
		hv[len(wm)+nf+i] = 0
	}
	res, err := qp.SolveDetailed(qp.Problem{H: h, C: c, G: g, Hv: hv}, qp.Options{})
	if err != nil {
		return MQPResult{}, fmt.Errorf("core: MQP quadratic program: %w", err)
	}
	full := make(vec.Point, d)
	for i, fi := range free {
		full[fi] = res.X[i]
	}
	qPrime := snapToSafeRegion(full, q, wm, kth)
	return MQPResult{
		RefinedQ:     qPrime,
		Penalty:      pm.QPenalty(q, qPrime),
		KthPoints:    kth,
		QPIterations: res.Iterations,
	}, nil
}

// snapToSafeRegion clamps the QP solution into the box [0, q] and, if
// floating-point residue leaves any scoring constraint violated by an
// epsilon, scales the point toward the origin until all constraints hold.
// Scaling multiplies every score by the same factor (< 1), so it restores
// feasibility with a penalty increase on the order of the solver tolerance.
func snapToSafeRegion(x, q vec.Point, wm []vec.Weight, kth []topk.Result) vec.Point {
	out := make(vec.Point, len(x))
	for i := range x {
		v := x[i]
		if v < 0 {
			v = 0
		}
		if v > q[i] {
			v = q[i]
		}
		out[i] = v
	}
	factor := 1.0
	for i, w := range wm {
		f := vec.Score(w, out)
		if f > kth[i].Score && f > 0 {
			if r := kth[i].Score / f; r < factor {
				factor = r
			}
		}
	}
	if factor < 1 {
		for i := range out {
			out[i] *= factor
		}
	}
	return out
}

func validateInput(t *rtree.Tree, q vec.Point, k int, wm []vec.Weight) error {
	if t == nil || t.Len() == 0 {
		return errors.New("core: empty dataset")
	}
	if len(q) != t.Dim() {
		return fmt.Errorf("core: query dimension %d, index dimension %d", len(q), t.Dim())
	}
	if err := vec.ValidatePoint(q); err != nil {
		return err
	}
	if k <= 0 {
		return errors.New("core: k must be positive")
	}
	if len(wm) == 0 {
		return errors.New("core: empty why-not weighting vector set")
	}
	for _, w := range wm {
		if len(w) != len(q) {
			return errors.New("core: weighting vector dimension mismatch")
		}
		if err := vec.ValidateWeight(w); err != nil {
			return err
		}
	}
	if t.Len() < k {
		return ErrSmallDataset
	}
	return nil
}
