package core

import (
	"context"
	"fmt"
	"math/rand"

	"wqrtq/internal/dominance"
	"wqrtq/internal/rtree"
	"wqrtq/internal/sample"
	"wqrtq/internal/vec"
)

// MQWKResult is the outcome of the third solution: a simultaneous
// refinement of the query point, the why-not vectors and k.
type MQWKResult struct {
	RefinedQ  vec.Point
	RefinedWm []vec.Weight
	RefinedK  int
	Penalty   float64
	// QMin is the first-solution optimum bounding the query-point sample
	// space SP(q) = (q_min, q) (§4.4, Figure 6).
	QMin vec.Point
	// CandidatesCached is the size of the reuse cache: the points not
	// dominated by q, classified in memory for every sample query point
	// instead of re-traversing the R-tree (§4.4 reuse technique).
	CandidatesCached int
	// TreeTraversals counts full R-tree walks performed (2 with reuse: one
	// for MQP's k-th points amortized per vector, one for the candidate
	// cache), versus |Q|+1 without it.
	TreeTraversals int
}

// MQWK implements Algorithm 3: sample |Q| query points from the box
// [q_min, q], run the MWK search for each against the shared candidate
// cache, and return the tuple (q', Wm', k') with the smallest Eq. (5)
// penalty.
//
// The two endpoints of the sample space are also evaluated as candidates:
// q' = q_min with (Wm, k) unchanged (pure first solution) and q' = q with
// the best (Wm', k') (pure second solution), so MQWK never returns a worse
// penalty than γ·Penalty(q_min) or λ·Penalty(Wm', k').
func MQWK(t *rtree.Tree, q vec.Point, k int, wm []vec.Weight, sampleSize, qSampleSize int, rng *rand.Rand, pm PenaltyModel) (MQWKResult, error) {
	return MQWKCtx(context.Background(), t, q, k, wm, sampleSize, qSampleSize, rng, pm)
}

// MQWKCtx is MQWK with cooperative cancellation: ctx is polled before every
// sample query point's MWK search (each costing |S| in-memory rank
// evaluations), and the inner sampling loops poll on their own intervals, so
// a canceled refinement unwinds within a fraction of one sample's work.
func MQWKCtx(ctx context.Context, t *rtree.Tree, q vec.Point, k int, wm []vec.Weight, sampleSize, qSampleSize int, rng *rand.Rand, pm PenaltyModel) (MQWKResult, error) {
	return MQWKSrcCtx(ctx, t, nil, q, k, wm, sampleSize, qSampleSize, rng, pm)
}

// MQWKSrcCtx is MQWKCtx with every per-sample evaluation routed through an
// optional skyband Source: the MQP optimum uses the band's k-th scores, and
// each sample query point's MWK search classifies candidates into reused
// scratch, samples hyperplanes lazily and ranks through pruned tree counts
// (blocked through the scoring kernel when enabled). Results are
// bit-identical to MQWKCtx for any valid Source.
func MQWKSrcCtx(ctx context.Context, t *rtree.Tree, src *Source, q vec.Point, k int, wm []vec.Weight, sampleSize, qSampleSize int, rng *rand.Rand, pm PenaltyModel) (MQWKResult, error) {
	if err := validateInput(t, q, k, wm); err != nil {
		return MQWKResult{}, err
	}
	if qSampleSize < 0 {
		return MQWKResult{}, fmt.Errorf("core: negative query sample size %d", qSampleSize)
	}
	// Line 2: q_min from the first solution.
	mqp, err := MQPSrcCtx(ctx, t, src, q, k, wm, pm)
	if err != nil {
		if ctx.Err() != nil {
			return MQWKResult{}, ctx.Err()
		}
		return MQWKResult{}, fmt.Errorf("core: MQWK needs the MQP optimum: %w", err)
	}

	// Reuse cache: one traversal serves every sample point in [q_min, q].
	// On the source path the candidate buffer comes from the pooled
	// scratch, so repeated refinements reuse one backing array.
	var sc *rankScratch
	if src != nil {
		sc = getRankScratch()
		defer putRankScratch(sc)
	}
	var cands []dominance.Ref
	if sc != nil {
		cands, _ = dominance.CandidatesInto(t, q, sc.candBuf[:0])
		sc.candBuf = cands
	} else {
		cands, _ = dominance.Candidates(t, q)
	}
	return mqwkResolved(ctx, src, sc, mqp.RefinedQ, cands, q, k, wm, sampleSize, qSampleSize, rng, pm)
}

// mqwkResolved is the sampling search of Algorithm 3 given the MQP optimum
// and the candidate cache (one resolution serves both the standalone entry
// point and the fused why-not pipeline, which shares these across
// refinement solutions).
func mqwkResolved(ctx context.Context, src *Source, sc *rankScratch, qMin vec.Point, cands []dominance.Ref, q vec.Point, k int, wm []vec.Weight, sampleSize, qSampleSize int, rng *rand.Rand, pm PenaltyModel) (MQWKResult, error) {
	best := MQWKResult{
		RefinedQ:         qMin,
		RefinedWm:        cloneWeights(wm),
		RefinedK:         k,
		Penalty:          pm.TotalPenalty(q, qMin, wm, wm, k, k, k+1),
		QMin:             qMin,
		CandidatesCached: len(cands),
		TreeTraversals:   2,
	}

	var scratch *dominance.Sets // reused across samples on the source path
	if sc != nil {
		prepareFixedUniverse(src, sc, cands, wm, qSampleSize+1)
		scratch = &sc.sets
	} else if src != nil {
		scratch = new(dominance.Sets)
	}
	evaluate := func(qp vec.Point) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		var sets dominance.Sets
		if src != nil {
			if !classifyFixed(sc, qp, scratch) {
				dominance.ClassifyInto(cands, qp, scratch)
			}
			sets = *scratch
		} else {
			sets = dominance.Classify(cands, qp)
		}
		wk, err := mwkFromSets(ctx, src, sc, &sets, qp, k, wm, sampleSize, rng, pm)
		if err != nil {
			return err
		}
		p := pm.Gamma*pm.QPenalty(q, qp) + pm.Lambda*wk.Penalty
		if p < best.Penalty {
			best.RefinedQ = vec.Clone(qp)
			best.RefinedWm = wk.RefinedWm
			best.RefinedK = wk.RefinedK
			best.Penalty = p
		}
		return nil
	}

	// Endpoint q (pure second solution).
	if err := evaluate(q); err != nil {
		return MQWKResult{}, err
	}
	// Lines 3-9: sampled interior points.
	for _, qp := range sample.Box(rng, qMin, q, qSampleSize) {
		if err := evaluate(qp); err != nil {
			return MQWKResult{}, err
		}
	}
	return best, nil
}
