package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"wqrtq/internal/ctxcheck"
	"wqrtq/internal/dominance"
	"wqrtq/internal/rtree"
	"wqrtq/internal/sample"
	"wqrtq/internal/vec"
)

// sampleCheckInterval is how many weighting-vector samples (each costing one
// in-memory rank evaluation over the candidate sets) a refinement loop
// processes between context polls.
const sampleCheckInterval = 16

// MWKResult is the outcome of the second solution: refined preferences.
type MWKResult struct {
	RefinedWm []vec.Weight
	RefinedK  int
	Penalty   float64
	// KMax is k'max of Lemma 4: the largest actual ranking of q under the
	// original why-not vectors; (Wm, KMax) is always a feasible fallback.
	KMax int
	// BaselineChosen reports that the fallback (Wm unchanged, k' = KMax)
	// had the smallest penalty among all examined candidates.
	BaselineChosen bool
	// SamplesUsed counts the weighting vectors actually examined (those
	// whose rank did not exceed KMax, per Algorithm 2 line 13).
	SamplesUsed int
	// NodesVisited counts R-tree nodes expanded by FindIncom.
	NodesVisited int
}

// MWK implements Algorithm 2: modify the why-not weighting vector set Wm
// and the parameter k with minimum penalty so that q enters the reverse
// top-k' result of every refined vector.
func MWK(t *rtree.Tree, q vec.Point, k int, wm []vec.Weight, sampleSize int, rng *rand.Rand, pm PenaltyModel) (MWKResult, error) {
	return MWKCtx(context.Background(), t, q, k, wm, sampleSize, rng, pm)
}

// MWKCtx is MWK with cooperative cancellation: the |S|-sample drawing and
// ranking loop polls ctx every sampleCheckInterval samples.
func MWKCtx(ctx context.Context, t *rtree.Tree, q vec.Point, k int, wm []vec.Weight, sampleSize int, rng *rand.Rand, pm PenaltyModel) (MWKResult, error) {
	return MWKSrcCtx(ctx, t, nil, q, k, wm, sampleSize, rng, pm)
}

// MWKSrcCtx is MWKCtx with the per-sample rank evaluations and the sampler
// construction routed through an optional skyband Source. Results are
// bit-identical to MWKCtx for any valid Source; nil runs the legacy path.
func MWKSrcCtx(ctx context.Context, t *rtree.Tree, src *Source, q vec.Point, k int, wm []vec.Weight, sampleSize int, rng *rand.Rand, pm PenaltyModel) (MWKResult, error) {
	if err := validateInput(t, q, k, wm); err != nil {
		return MWKResult{}, err
	}
	if sampleSize < 0 {
		return MWKResult{}, fmt.Errorf("core: negative sample size %d", sampleSize)
	}
	var sc *rankScratch
	var sets *dominance.Sets
	if src != nil {
		sc = getRankScratch()
		defer putRankScratch(sc)
		dominance.FindIncomInto(t, q, &sc.sets)
		sets = &sc.sets
	} else {
		s := dominance.FindIncom(t, q)
		sets = &s
	}
	res, err := mwkFromSets(ctx, src, sc, sets, q, k, wm, sampleSize, rng, pm)
	if err != nil {
		return MWKResult{}, err
	}
	res.NodesVisited = sets.NodesVisited
	return res, nil
}

// MWKFromSets runs the sampling search of Algorithm 2 given precomputed
// dominance sets; MQWK calls it once per sample query point, implementing
// the §4.4 reuse technique (the R-tree is never touched here).
func MWKFromSets(sets *dominance.Sets, q vec.Point, k int, wm []vec.Weight, sampleSize int, rng *rand.Rand, pm PenaltyModel) (MWKResult, error) {
	return MWKFromSetsCtx(context.Background(), sets, q, k, wm, sampleSize, rng, pm)
}

// MWKFromSetsCtx is MWKFromSets with cooperative cancellation over the
// sample-drawing and candidate-scan loops.
func MWKFromSetsCtx(ctx context.Context, sets *dominance.Sets, q vec.Point, k int, wm []vec.Weight, sampleSize int, rng *rand.Rand, pm PenaltyModel) (MWKResult, error) {
	return mwkFromSets(ctx, nil, nil, sets, q, k, wm, sampleSize, rng, pm)
}

// mwkFromSets is the sampling search with an optional skyband Source: rank
// evaluations go through a rankEval (blocked kernel sweeps or pruned tree
// counting when they pay) and the sample space through newSampler (lazy
// hyperplane enumeration), all bit-compatible with the legacy scans.
func mwkFromSets(ctx context.Context, src *Source, sc *rankScratch, sets *dominance.Sets, q vec.Point, k int, wm []vec.Weight, sampleSize int, rng *rand.Rand, pm PenaltyModel) (MWKResult, error) {
	tick := ctxcheck.Every(ctx, sampleCheckInterval)
	ev := newRankEval(src, sc, sets, q)
	// Actual rankings and k'max (lines 7-9).
	ranks := make([]int, len(wm))
	kMax := 0
	active := 0
	if wmRanks(sc, sets, q, wm, ranks) {
		// Served from the call-fixed sorted score columns (MQWK reuse).
	} else if ev.blocked() && len(wm) > 1 {
		if err := ctx.Err(); err != nil {
			return MWKResult{}, err
		}
		ev.rankBlock(wm, ranks)
	} else {
		for i, w := range wm {
			r, err := ev.fn(ctx, w)
			if err != nil {
				return MWKResult{}, err
			}
			ranks[i] = r
		}
	}
	for i := range wm {
		if ranks[i] > kMax {
			kMax = ranks[i]
		}
		if ranks[i] > k {
			active++
		}
	}
	if active == 0 {
		// Every vector already ranks q within top-k: nothing to refine.
		return MWKResult{RefinedWm: cloneWeights(wm), RefinedK: k, Penalty: 0, KMax: kMax}, nil
	}

	// Baseline candidate (line 11): keep Wm, raise k to k'max (Lemma 4).
	best := MWKResult{
		RefinedWm:      cloneWeights(wm),
		RefinedK:       kMax,
		Penalty:        pm.WKPenalty(wm, wm, k, kMax, kMax),
		KMax:           kMax,
		BaselineChosen: true,
	}

	// Sample space (line 3): hyperplanes of incomparable points.
	sampler, err := newSampler(src, sets, q)
	if err == sample.ErrNoSampleSpace || sampleSize == 0 {
		// Weight modification cannot help; the k-only baseline stands.
		return best, nil
	} else if err != nil {
		return MWKResult{}, err
	}

	// Draw and rank the samples (lines 3-6), keeping only those whose rank
	// does not exceed k'max; see drawRankedSamples for the blocked form.
	sev := newSampleRankEval(src, sc, sets, q, kMax, ev)
	samples, err := drawRankedSamples(ctx, &tick, sev, sc, newDraw(sampler, sc, rng),
		make([]sampleRank, 0, sampleSize), sampleSize, kMax)
	if err != nil {
		return MWKResult{}, err
	}
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].rank < samples[j].rank })

	if len(samples) == 0 {
		return best, nil
	}

	// Candidate scan per Lemma 6 (lines 10-18). CW holds, per why-not
	// vector, the closest sample seen so far; vectors already ranking q
	// within top-k stay fixed at their original value.
	cw := cloneWeights(wm)
	dist := make([]float64, len(wm))
	first := samples[0]
	//wqrtq:bounded one distance per why-not vector, request-sized
	for i := range wm {
		if ranks[i] <= k {
			dist[i] = 0 // inactive: never replaced
			continue
		}
		cw[i] = first.w
		dist[i] = vec.WeightDist(wm[i], first.w)
	}
	consider := func(kPrime int) {
		if kPrime < k {
			kPrime = k
		}
		p := pm.WKPenalty(wm, cw, k, kPrime, kMax)
		if p < best.Penalty {
			best = MWKResult{
				RefinedWm: cloneWeights(cw),
				RefinedK:  kPrime,
				Penalty:   p,
				KMax:      kMax,
			}
		}
	}
	consider(first.rank)
	used := 1
	for _, s := range samples[1:] {
		if err := tick.Tick(); err != nil {
			return MWKResult{}, err
		}
		used++
		updated := false
		//wqrtq:bounded one distance per why-not vector; the enclosing sample loop ticks
		for i := range wm {
			if ranks[i] <= k {
				continue
			}
			if d := vec.WeightDist(wm[i], s.w); d < dist[i] {
				cw[i] = s.w
				dist[i] = d
				updated = true
			}
		}
		if updated {
			consider(s.rank)
		}
	}
	best.SamplesUsed = used
	return best, nil
}

func cloneWeights(ws []vec.Weight) []vec.Weight {
	out := make([]vec.Weight, len(ws))
	for i, w := range ws {
		out[i] = vec.CloneWeight(w)
	}
	return out
}
