// Package core implements WQRTQ, the paper's unified framework for
// answering why-not questions on reverse top-k queries (§4): the penalty
// models of Equations (1)–(5) and the three refinement algorithms
//
//	MQP  — modify the query point q (Algorithm 1),
//	MWK  — modify the why-not weighting vectors Wm and the parameter k
//	       (Algorithm 2), and
//	MQWK — modify q, Wm and k simultaneously (Algorithm 3),
//
// together with exact baselines used to validate the sampling algorithms.
package core

import (
	"errors"
	"fmt"
	"math"
	"wqrtq/internal/feq"

	"wqrtq/internal/vec"
)

// PenaltyModel carries the tolerance parameters of the paper's penalty
// functions. Alpha and Beta weight the changes of k and Wm inside
// Penalty(Wm', k') (Eq. 3/4, α + β = 1); Gamma and Lambda weight the changes
// of q and (Wm, k) inside Penalty(q', Wm', k') (Eq. 5, γ + λ = 1).
type PenaltyModel struct {
	Alpha, Beta   float64
	Gamma, Lambda float64
	// NormalizeWeights selects Eq. (4) exactly as printed, dividing ΔWm by
	// its maximum √(2·|Wm|). The default (false) reproduces the paper's
	// worked examples (§4.3 penalty 0.121 and §4.4 penalty 0.06), which are
	// computed without that normalization; see DESIGN.md.
	NormalizeWeights bool
}

// DefaultPenaltyModel returns the setting used throughout the paper's
// evaluation: α = β = γ = λ = 0.5 (§5.1).
func DefaultPenaltyModel() PenaltyModel {
	return PenaltyModel{Alpha: 0.5, Beta: 0.5, Gamma: 0.5, Lambda: 0.5}
}

// Validate checks the tolerance parameters.
func (pm PenaltyModel) Validate() error {
	for _, v := range []float64{pm.Alpha, pm.Beta, pm.Gamma, pm.Lambda} {
		if v < 0 || math.IsNaN(v) {
			return errors.New("core: penalty weights must be non-negative")
		}
	}
	if math.Abs(pm.Alpha+pm.Beta-1) > 1e-9 {
		return fmt.Errorf("core: alpha + beta = %v, want 1", pm.Alpha+pm.Beta)
	}
	if math.Abs(pm.Gamma+pm.Lambda-1) > 1e-9 {
		return fmt.Errorf("core: gamma + lambda = %v, want 1", pm.Gamma+pm.Lambda)
	}
	return nil
}

// QPenalty is Equation (1): ‖q' − q‖ / ‖q‖, the normalized modification of
// the product q.
func (pm PenaltyModel) QPenalty(q, qp vec.Point) float64 {
	nq := vec.Norm(q)
	if feq.Zero(nq) {
		return vec.Norm(qp)
	}
	return vec.Dist(q, qp) / nq
}

// DeltaW is ΔWm: the Euclidean norm of the concatenated weighting-vector
// changes, sqrt(Σᵢ ‖wᵢ' − wᵢ‖²). With NormalizeWeights it is divided by
// the maximum possible value √(2·|Wm|).
func (pm PenaltyModel) DeltaW(wm, wmPrime []vec.Weight) float64 {
	if len(wm) != len(wmPrime) {
		panic("core: DeltaW with mismatched weighting-vector sets")
	}
	s := 0.0
	for i := range wm {
		d := vec.WeightDist(wm[i], wmPrime[i])
		s += d * d
	}
	dw := math.Sqrt(s)
	if pm.NormalizeWeights && len(wm) > 0 {
		dw /= math.Sqrt(2 * float64(len(wm)))
	}
	return dw
}

// WKPenalty is Equation (3)/(4): α·Δk/Δkmax + β·ΔWm, with
// Δk = max(0, k'−k) (decreasing k is free, §4.3) and Δkmax = k'max − k per
// Lemma 4.
func (pm PenaltyModel) WKPenalty(wm, wmPrime []vec.Weight, k, kPrime, kMax int) float64 {
	dk := float64(kPrime - k)
	if dk < 0 {
		dk = 0
	}
	dkMax := float64(kMax - k)
	if dkMax < 1 {
		dkMax = 1
	}
	return pm.Alpha*dk/dkMax + pm.Beta*pm.DeltaW(wm, wmPrime)
}

// TotalPenalty is Equation (5): γ·Penalty(q') + λ·Penalty(Wm', k').
func (pm PenaltyModel) TotalPenalty(q, qp vec.Point, wm, wmPrime []vec.Weight, k, kPrime, kMax int) float64 {
	return pm.Gamma*pm.QPenalty(q, qp) + pm.Lambda*pm.WKPenalty(wm, wmPrime, k, kPrime, kMax)
}
