package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wqrtq/internal/vec"
)

// Property: the penalty of an unchanged query is zero, and grows with the
// magnitude of every individual change.
func TestPenaltyPropertiesQuick(t *testing.T) {
	pm := DefaultPenaltyModel()
	zeroOnIdentity := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 2 + r.Intn(5)
		q := make(vec.Point, d)
		for i := range q {
			q[i] = r.Float64() * 10
		}
		wm := []vec.Weight{randWeight(r, d), randWeight(r, d)}
		if pm.QPenalty(q, q) != 0 {
			return false
		}
		if pm.WKPenalty(wm, wm, 5, 5, 9) != 0 {
			return false
		}
		return pm.TotalPenalty(q, q, wm, wm, 5, 5, 9) == 0
	}
	if err := quick.Check(zeroOnIdentity, nil); err != nil {
		t.Error(err)
	}

	monotoneInK := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		wm := []vec.Weight{randWeight(r, 3)}
		k := 1 + r.Intn(10)
		kMax := k + 1 + r.Intn(20)
		prev := -1.0
		for kp := k; kp <= kMax; kp++ {
			p := pm.WKPenalty(wm, wm, k, kp, kMax)
			if p < prev {
				return false
			}
			prev = p
		}
		// At k' = k'max with unchanged weights the penalty is exactly α.
		return prev == pm.Alpha
	}
	if err := quick.Check(monotoneInK, nil); err != nil {
		t.Error(err)
	}

	scaleInvariantQ := func(seed int64) bool {
		// Penalty(q') is scale-invariant: scaling both points by c > 0
		// leaves it unchanged.
		r := rand.New(rand.NewSource(seed))
		d := 2 + r.Intn(4)
		q := make(vec.Point, d)
		qp := make(vec.Point, d)
		for i := range q {
			q[i] = r.Float64()*9 + 1
			qp[i] = q[i] * r.Float64()
		}
		c := r.Float64()*5 + 0.1
		qs := make(vec.Point, d)
		qps := make(vec.Point, d)
		for i := range q {
			qs[i] = q[i] * c
			qps[i] = qp[i] * c
		}
		a := pm.QPenalty(q, qp)
		b := pm.QPenalty(qs, qps)
		return a-b < 1e-12 && b-a < 1e-12
	}
	if err := quick.Check(scaleInvariantQ, nil); err != nil {
		t.Error(err)
	}
}

// Property: normalized ΔWm is always at most 1 (that is the point of the
// printed Eq. (4) normalization).
func TestNormalizedDeltaWBoundedQuick(t *testing.T) {
	pm := DefaultPenaltyModel()
	pm.NormalizeWeights = true
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 2 + r.Intn(5)
		m := 1 + r.Intn(5)
		a := make([]vec.Weight, m)
		b := make([]vec.Weight, m)
		for i := 0; i < m; i++ {
			a[i] = randWeight(r, d)
			b[i] = randWeight(r, d)
		}
		dw := pm.DeltaW(a, b)
		return dw >= 0 && dw <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Determinism: MWK with the same seed returns byte-identical refinements.
func TestMWKDeterministic(t *testing.T) {
	tr := paperTree()
	pm := DefaultPenaltyModel()
	a, err := MWK(tr, paperQ, 3, paperWm, 300, rand.New(rand.NewSource(42)), pm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MWK(tr, paperQ, 3, paperWm, 300, rand.New(rand.NewSource(42)), pm)
	if err != nil {
		t.Fatal(err)
	}
	if a.Penalty != b.Penalty || a.RefinedK != b.RefinedK {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
	for i := range a.RefinedWm {
		if !vec.Equal(vec.Point(a.RefinedWm[i]), vec.Point(b.RefinedWm[i])) {
			t.Errorf("refined vector %d differs", i)
		}
	}
}

// The refined Wm never leaves the weighting simplex.
func TestMWKRefinedVectorsValidQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := paperTree()
		wm := []vec.Weight{randWeight(r, 2), randWeight(r, 2)}
		res, err := MWK(tr, paperQ, 2, wm, 200, rand.New(rand.NewSource(seed+1)), DefaultPenaltyModel())
		if err != nil {
			return false
		}
		for _, w := range res.RefinedWm {
			if vec.ValidateWeight(w) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
