package core

import (
	"context"
	"math/rand"
	"testing"

	"wqrtq/internal/dataset"
	"wqrtq/internal/dominance"
	"wqrtq/internal/kernel"
	"wqrtq/internal/sample"
	"wqrtq/internal/vec"
)

// kernelSource builds a Source with the blocked kernel enabled, mirroring
// the hooks the Index wires up (band trimming omitted — the allocation
// guards target the universe paths).
func kernelSource(t *testing.T) *Source {
	t.Helper()
	return &Source{
		Kernel: kernel.NewCounters(),
		CountBeaters: func(ctx context.Context, w vec.Weight, fq float64) (int, error) {
			t.Fatal("small universes must not reach the tree count")
			return 0, nil
		},
	}
}

// TestSampleLoopAllocsPerOp extends the TestTopKAllocsPerOp-style guards to
// the sampling loops: with a warm pooled scratch, the blocked rank
// evaluations — rankBlock over the universe image and the capped
// sampleRankBlock — must not allocate at all, and one full mwkFromSets
// sampling call must stay within a small budget dominated by its result
// and the per-draw sample weights (a regression here silently multiplies
// the cost of every refinement request).
func TestSampleLoopAllocsPerOp(t *testing.T) {
	ds := dataset.Independent(2000, 3, 5)
	tr := ds.Tree()
	src := kernelSource(t)
	q := vec.Point{0.05, 0.06, 0.05}
	sets := dominance.FindIncom(tr, q)
	if len(sets.I) < 100 {
		t.Fatalf("universe too small for a meaningful guard: |I|=%d", len(sets.I))
	}
	rng := rand.New(rand.NewSource(9))
	wm := make([]vec.Weight, 8)
	for i := range wm {
		wm[i] = sample.RandSimplex(rng, 3)
	}
	ranks := make([]int, len(wm))

	sc := getRankScratch()
	defer putRankScratch(sc)
	ev := newRankEval(src, sc, &sets, q)
	if !ev.blocked() {
		t.Fatal("kernel evaluator expected")
	}
	ev.rankBlock(wm, ranks) // warm block buffers
	if allocs := testing.AllocsPerRun(100, func() {
		ev.rankBlock(wm, ranks)
	}); allocs > 1 {
		// One closure allocation feeding kernel.CountBelowWeights is
		// tolerated; per-weight or per-point allocations are not.
		t.Fatalf("rankBlock allocates %.1f objects per op, want <= 1", allocs)
	}
	kMax := 0
	for _, r := range ranks {
		if r > kMax {
			kMax = r
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		ev.sampleRankBlock(wm, ranks, kMax)
	}); allocs != 0 {
		t.Fatalf("sampleRankBlock allocates %.1f objects per op, want 0", allocs)
	}

	// Whole-call budget: one warm mwkFromSets run (64 samples) allocates
	// for its returned refinement, the kept-sample list and one fresh
	// weight per draw — roughly 1-2 objects per sample all-in. 4 per
	// sample leaves slack while still failing on per-point boxing.
	const samples = 64
	pm := PenaltyModel{Alpha: 0.5, Beta: 0.5, Gamma: 0.5, Lambda: 0.5}
	callRng := rand.New(rand.NewSource(11))
	if _, err := mwkFromSets(context.Background(), src, sc, &sets, q, 3, wm, samples, callRng, pm); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := mwkFromSets(context.Background(), src, sc, &sets, q, 3, wm, samples, callRng, pm); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4*samples {
		t.Fatalf("mwkFromSets allocates %.1f objects per call for %d samples, want <= %d",
			allocs, samples, 4*samples)
	}
}
