package core

import (
	"context"
	"math/rand"

	"wqrtq/internal/ctxcheck"
	"wqrtq/internal/dominance"
	"wqrtq/internal/rtree"
	"wqrtq/internal/sample"
	"wqrtq/internal/vec"
)

// MWKPerVector implements the *first* candidate-selection strategy
// discussed in §4.3: "for every why-not weighting vector wᵢ ∈ Wm, find a
// sample weighting vector wsᵢ with minimum |wsᵢ − wᵢ|, and then replace wᵢ
// with wsᵢ; the corresponding k' is computed per Lemma 5(i)".
//
// This makes ΔWm individually minimal, but — as the paper observes — the
// total penalty of (Wm', k') "may not be the minimum", because a vector
// replaced by its closest sample can drag k' up for everyone. The scanning
// strategy of MWK (Lemma 6) dominates it on penalty; this variant exists as
// the paper's explicitly described alternative and as an ablation baseline
// (BenchmarkAblationMWKStrategy).
func MWKPerVector(t *rtree.Tree, q vec.Point, k int, wm []vec.Weight, sampleSize int, rng *rand.Rand, pm PenaltyModel) (MWKResult, error) {
	return MWKPerVectorCtx(context.Background(), t, q, k, wm, sampleSize, rng, pm)
}

// MWKPerVectorCtx is MWKPerVector with cooperative cancellation over the
// sample-drawing and per-vector scan loops.
func MWKPerVectorCtx(ctx context.Context, t *rtree.Tree, q vec.Point, k int, wm []vec.Weight, sampleSize int, rng *rand.Rand, pm PenaltyModel) (MWKResult, error) {
	return MWKPerVectorSrcCtx(ctx, t, nil, q, k, wm, sampleSize, rng, pm)
}

// MWKPerVectorSrcCtx is MWKPerVectorCtx with the rank evaluations and the
// sampler construction routed through an optional skyband Source; results
// are bit-identical for any valid Source.
func MWKPerVectorSrcCtx(ctx context.Context, t *rtree.Tree, src *Source, q vec.Point, k int, wm []vec.Weight, sampleSize int, rng *rand.Rand, pm PenaltyModel) (MWKResult, error) {
	if err := validateInput(t, q, k, wm); err != nil {
		return MWKResult{}, err
	}
	tick := ctxcheck.Every(ctx, sampleCheckInterval)
	sets := dominance.FindIncom(t, q)
	var sc *rankScratch
	if src != nil {
		sc = &rankScratch{}
	}
	rank := newRankFn(src, sc, &sets, q)
	ranks := make([]int, len(wm))
	kMax := 0
	active := 0
	for i, w := range wm {
		r, err := rank(ctx, w)
		if err != nil {
			return MWKResult{}, err
		}
		ranks[i] = r
		if ranks[i] > kMax {
			kMax = ranks[i]
		}
		if ranks[i] > k {
			active++
		}
	}
	if active == 0 {
		return MWKResult{RefinedWm: cloneWeights(wm), RefinedK: k, Penalty: 0, KMax: kMax}, nil
	}
	baseline := MWKResult{
		RefinedWm:      cloneWeights(wm),
		RefinedK:       kMax,
		Penalty:        pm.WKPenalty(wm, wm, k, kMax, kMax),
		KMax:           kMax,
		BaselineChosen: true,
		NodesVisited:   sets.NodesVisited,
	}
	sampler, err := newSampler(src, &sets, q)
	if err == sample.ErrNoSampleSpace || sampleSize == 0 {
		return baseline, nil
	} else if err != nil {
		return MWKResult{}, err
	}
	// Draw once, shared by all why-not vectors. Only samples that improve
	// q's rank below k'max are useful (Lemma 4).
	type sampleRank struct {
		w    vec.Weight
		rank int
	}
	samples := make([]sampleRank, 0, sampleSize)
	sRank := newSampleRankFn(src, sc, &sets, q, kMax, rank)
	for i := 0; i < sampleSize; i++ {
		if err := tick.Tick(); err != nil {
			return MWKResult{}, err
		}
		w := sampler.Sample(rng)
		r, err := sRank(ctx, w)
		if err != nil {
			return MWKResult{}, err
		}
		if r <= kMax {
			samples = append(samples, sampleRank{w: w, rank: r})
		}
	}
	if len(samples) == 0 {
		return baseline, nil
	}
	cw := cloneWeights(wm)
	kPrime := k
	for i := range wm {
		if ranks[i] <= k {
			continue
		}
		bestDist := -1.0
		bestRank := 0
		for _, s := range samples {
			if err := tick.Tick(); err != nil {
				return MWKResult{}, err
			}
			if d := vec.WeightDist(wm[i], s.w); bestDist < 0 || d < bestDist {
				bestDist = d
				cw[i] = s.w
				bestRank = s.rank
			}
		}
		if bestRank > kPrime {
			kPrime = bestRank // Lemma 5(i): k' = max of the chosen ranks
		}
	}
	res := MWKResult{
		RefinedWm:    cw,
		RefinedK:     kPrime,
		Penalty:      pm.WKPenalty(wm, cw, k, kPrime, kMax),
		KMax:         kMax,
		SamplesUsed:  len(samples),
		NodesVisited: sets.NodesVisited,
	}
	// The k-only baseline may still be cheaper.
	if baseline.Penalty < res.Penalty {
		return baseline, nil
	}
	return res, nil
}
