package core

import (
	"context"
	"math/rand"

	"wqrtq/internal/ctxcheck"
	"wqrtq/internal/dominance"
	"wqrtq/internal/rtree"
	"wqrtq/internal/sample"
	"wqrtq/internal/vec"
)

// MWKPerVector implements the *first* candidate-selection strategy
// discussed in §4.3: "for every why-not weighting vector wᵢ ∈ Wm, find a
// sample weighting vector wsᵢ with minimum |wsᵢ − wᵢ|, and then replace wᵢ
// with wsᵢ; the corresponding k' is computed per Lemma 5(i)".
//
// This makes ΔWm individually minimal, but — as the paper observes — the
// total penalty of (Wm', k') "may not be the minimum", because a vector
// replaced by its closest sample can drag k' up for everyone. The scanning
// strategy of MWK (Lemma 6) dominates it on penalty; this variant exists as
// the paper's explicitly described alternative and as an ablation baseline
// (BenchmarkAblationMWKStrategy).
func MWKPerVector(t *rtree.Tree, q vec.Point, k int, wm []vec.Weight, sampleSize int, rng *rand.Rand, pm PenaltyModel) (MWKResult, error) {
	return MWKPerVectorCtx(context.Background(), t, q, k, wm, sampleSize, rng, pm)
}

// MWKPerVectorCtx is MWKPerVector with cooperative cancellation over the
// sample-drawing and per-vector scan loops.
func MWKPerVectorCtx(ctx context.Context, t *rtree.Tree, q vec.Point, k int, wm []vec.Weight, sampleSize int, rng *rand.Rand, pm PenaltyModel) (MWKResult, error) {
	return MWKPerVectorSrcCtx(ctx, t, nil, q, k, wm, sampleSize, rng, pm)
}

// MWKPerVectorSrcCtx is MWKPerVectorCtx with the rank evaluations and the
// sampler construction routed through an optional skyband Source; results
// are bit-identical for any valid Source.
func MWKPerVectorSrcCtx(ctx context.Context, t *rtree.Tree, src *Source, q vec.Point, k int, wm []vec.Weight, sampleSize int, rng *rand.Rand, pm PenaltyModel) (MWKResult, error) {
	if err := validateInput(t, q, k, wm); err != nil {
		return MWKResult{}, err
	}
	var sc *rankScratch
	var sets *dominance.Sets
	if src != nil {
		sc = getRankScratch()
		defer putRankScratch(sc)
		dominance.FindIncomInto(t, q, &sc.sets)
		sets = &sc.sets
	} else {
		s := dominance.FindIncom(t, q)
		sets = &s
	}
	return mwkPerVectorFromSets(ctx, src, sc, sets, q, k, wm, sampleSize, rng, pm)
}

// mwkPerVectorFromSets is the per-vector candidate strategy given
// precomputed dominance sets, mirroring mwkFromSets for the fused why-not
// pipeline.
func mwkPerVectorFromSets(ctx context.Context, src *Source, sc *rankScratch, sets *dominance.Sets, q vec.Point, k int, wm []vec.Weight, sampleSize int, rng *rand.Rand, pm PenaltyModel) (MWKResult, error) {
	tick := ctxcheck.Every(ctx, sampleCheckInterval)
	ev := newRankEval(src, sc, sets, q)
	ranks := make([]int, len(wm))
	kMax := 0
	active := 0
	if ev.blocked() && len(wm) > 1 {
		if err := ctx.Err(); err != nil {
			return MWKResult{}, err
		}
		ev.rankBlock(wm, ranks)
	} else {
		for i, w := range wm {
			r, err := ev.fn(ctx, w)
			if err != nil {
				return MWKResult{}, err
			}
			ranks[i] = r
		}
	}
	for i := range wm {
		if ranks[i] > kMax {
			kMax = ranks[i]
		}
		if ranks[i] > k {
			active++
		}
	}
	if active == 0 {
		return MWKResult{RefinedWm: cloneWeights(wm), RefinedK: k, Penalty: 0, KMax: kMax}, nil
	}
	baseline := MWKResult{
		RefinedWm:      cloneWeights(wm),
		RefinedK:       kMax,
		Penalty:        pm.WKPenalty(wm, wm, k, kMax, kMax),
		KMax:           kMax,
		BaselineChosen: true,
		NodesVisited:   sets.NodesVisited,
	}
	sampler, err := newSampler(src, sets, q)
	if err == sample.ErrNoSampleSpace || sampleSize == 0 {
		return baseline, nil
	} else if err != nil {
		return MWKResult{}, err
	}
	// Draw once, shared by all why-not vectors. Only samples that improve
	// q's rank below k'max are useful (Lemma 4); see drawRankedSamples for
	// the blocked form shared with mwkFromSets.
	sev := newSampleRankEval(src, sc, sets, q, kMax, ev)
	samples, err := drawRankedSamples(ctx, &tick, sev, sc, newDraw(sampler, sc, rng),
		make([]sampleRank, 0, sampleSize), sampleSize, kMax)
	if err != nil {
		return MWKResult{}, err
	}
	if len(samples) == 0 {
		return baseline, nil
	}
	cw := cloneWeights(wm)
	kPrime := k
	for i := range wm {
		if ranks[i] <= k {
			continue
		}
		bestDist := -1.0
		bestRank := 0
		for _, s := range samples {
			if err := tick.Tick(); err != nil {
				return MWKResult{}, err
			}
			if d := vec.WeightDist(wm[i], s.w); bestDist < 0 || d < bestDist {
				bestDist = d
				cw[i] = s.w
				bestRank = s.rank
			}
		}
		if bestRank > kPrime {
			kPrime = bestRank // Lemma 5(i): k' = max of the chosen ranks
		}
	}
	res := MWKResult{
		RefinedWm:    cw,
		RefinedK:     kPrime,
		Penalty:      pm.WKPenalty(wm, cw, k, kPrime, kMax),
		KMax:         kMax,
		SamplesUsed:  len(samples),
		NodesVisited: sets.NodesVisited,
	}
	// The k-only baseline may still be cheaper.
	if baseline.Penalty < res.Penalty {
		return baseline, nil
	}
	return res, nil
}
