package core

import (
	"context"

	"wqrtq/internal/rtree"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// VerifyRefinement checks the defining property of a refined reverse top-k
// query: every weighting vector in wm ranks q within its top-k (ties won by
// q). It is the acceptance test shared by all three solutions:
//
//	MQP:  VerifyRefinement(t, q', k, Wm)
//	MWK:  VerifyRefinement(t, q, k', Wm')
//	MQWK: VerifyRefinement(t, q', k', Wm')
func VerifyRefinement(t *rtree.Tree, q vec.Point, k int, wm []vec.Weight) bool {
	for _, w := range wm {
		if !topk.InTopK(t, w, q, k) {
			return false
		}
	}
	return true
}

// Explain answers the first aspect of a why-not question (§3) for every
// why-not vector: Explanations[i] lists, in rank order, the points scoring
// strictly better than q under wm[i]. When q is missing from the reverse
// top-k result under wm[i], those are the at-least-k points responsible.
func Explain(t *rtree.Tree, q vec.Point, wm []vec.Weight) [][]topk.Result {
	out, _ := ExplainCtx(context.Background(), t, q, wm)
	return out
}

// ExplainCtx is Explain with cooperative cancellation via the progressive
// scan's heap-loop poll.
func ExplainCtx(ctx context.Context, t *rtree.Tree, q vec.Point, wm []vec.Weight) ([][]topk.Result, error) {
	out := make([][]topk.Result, len(wm))
	for i, w := range wm {
		ex, err := topk.ExplainCtx(ctx, t, w, q)
		if err != nil {
			return nil, err
		}
		out[i] = ex
	}
	return out, nil
}
