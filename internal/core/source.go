package core

import (
	"context"
	"math/rand"

	"wqrtq/internal/dominance"
	"wqrtq/internal/rtree"
	"wqrtq/internal/sample"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// srcRankCutoff is the candidate-set size below which the flattened linear
// rank scan beats a pruned tree descent — hyperplane-sampled weights often
// carry near-zero components, whose thin score slabs cut across many tree
// tiles, so the descent only wins once the linear scan is several thousand
// points. Both routes compute the same value; the cutoff only affects
// speed.
const srcRankCutoff = 8192

// Source carries the skyband-backed acceleration hooks that the refinement
// algorithms (MQP, MWK, MQWK) route their index work through. A nil
// *Source — the -skyband=off ablation — preserves the legacy execution
// exactly; a non-nil Source must be bit-compatible with it:
//
//   - CountBeaters(w, fq) must return precisely the number of candidate
//     points (the universe behind the algorithm's dominance sets: every
//     point not dominated by and not equal to the reference query point)
//     with vec.Score(w, p) < fq. dominance.CountBeatersCtx provides this
//     over the full tree with pruned descent.
//   - KthPoint(w, k) must return a point achieving exactly the dataset's
//     k-th smallest score under w. A k-skyband tree qualifies: the k
//     smallest scores of the dataset are achieved within the band, so only
//     the identity of a score-tied k-th point may differ, and MQP consumes
//     the score alone.
//
// The sampling loops additionally switch to sample.LazyWeightSampler,
// whose draw stream is bit-identical to the eager sampler; refined
// vectors, k' values and penalties therefore match the ablation exactly,
// which the skyband differential suite asserts end to end.
type Source struct {
	CountBeaters func(ctx context.Context, w vec.Weight, fq float64) (int, error)
	KthPoint     func(ctx context.Context, w vec.Weight, k int) (topk.Result, bool, error)
	// BandCounts returns a membership test for the bound-skyband of the
	// whole dataset — keep(id) reports dominance count < bound — or nil
	// when no such test is available. The sampling loops use it to shrink
	// the per-sample scan to the k'max-skyband: a sample's rank is needed
	// exactly only while it is <= k'max, every strict beater of a point
	// ranked <= k'max lies in the k'max-skyband, and a trimmed count that
	// reaches k'max proves the true rank exceeds it — so trimming never
	// changes a kept sample's rank or a discard decision.
	BandCounts func(bound int) func(id int32) bool
}

// rankScratch holds the flattened point buffers one sampling call (or one
// MQWK worker) reuses across its sample query points, so the per-qp
// flatten costs no allocation after the first use.
type rankScratch struct {
	flat []float64 // full incomparable set, newRankFn
	trim []float64 // k'max-skyband subset, newSampleRankFn
}

// newRankFn builds the rank evaluator one mwkFromSets call uses for every
// weighting vector it ranks against a fixed sets/qp pair. All three routes
// — legacy Sets.Rank, the flattened linear scan, and the source's pruned
// tree count — return identical values; the choice only affects speed.
func newRankFn(src *Source, sc *rankScratch, sets *dominance.Sets, qp vec.Point) func(ctx context.Context, w vec.Weight) (int, error) {
	if src == nil || src.CountBeaters == nil {
		return func(_ context.Context, w vec.Weight) (int, error) {
			return sets.Rank(w, qp), nil
		}
	}
	d := len(qp)
	if len(sets.D)+len(sets.I) <= srcRankCutoff && d <= 4 && sc != nil {
		// Flatten I into one contiguous buffer: the per-sample scans are
		// memory-bound on the Ref slice-header indirection, and one |I|·d
		// copy amortizes over the |S|+|Wm| scans of the call.
		flat := sc.flat[:0]
		for _, c := range sets.I {
			flat = append(flat, c.Point...)
		}
		sc.flat = flat
		return func(_ context.Context, w vec.Weight) (int, error) {
			fq := vec.Score(w, qp)
			return 1 + len(sets.D) + countBeatsFlat(flat, w, fq), nil
		}
	}
	if len(sets.D)+len(sets.I) <= srcRankCutoff {
		return func(_ context.Context, w vec.Weight) (int, error) {
			fq := vec.Score(w, qp)
			return 1 + len(sets.D) + countBeats(sets.I, w, fq), nil
		}
	}
	return func(ctx context.Context, w vec.Weight) (int, error) {
		fq := vec.Score(w, qp)
		cnt, err := src.CountBeaters(ctx, w, fq)
		if err != nil {
			return 0, err
		}
		return 1 + len(sets.D) + cnt - countBeats(sets.D, w, fq), nil
	}
}

// newSampleRankFn refines a rank evaluator for the sample loop once k'max
// is known: with band counts available, the scanned incomparable set
// shrinks to its k'max-skyband subset. Kept samples (rank <= k'max) get
// their exact rank; discarded ones (true rank > k'max) are still reported
// above k'max — both directions proved by the dominator-chain argument in
// Source.BandCounts — so the loop behaves identically to the full scan.
func newSampleRankFn(src *Source, sc *rankScratch, sets *dominance.Sets, qp vec.Point, kMax int,
	fallback func(ctx context.Context, w vec.Weight) (int, error)) func(ctx context.Context, w vec.Weight) (int, error) {
	d := len(qp)
	if src == nil || src.BandCounts == nil || sc == nil || d > 4 || len(sets.I) < 64 {
		return fallback
	}
	keep := src.BandCounts(kMax)
	if keep == nil {
		return fallback
	}
	flat := sc.trim[:0]
	kept := 0
	for _, c := range sets.I {
		if keep(c.ID) {
			flat = append(flat, c.Point...)
			kept++
		}
	}
	sc.trim = flat
	if kept*4 >= len(sets.I)*3 {
		return fallback // trim too weak to pay for itself
	}
	nD := len(sets.D)
	return func(_ context.Context, w vec.Weight) (int, error) {
		fq := vec.Score(w, qp)
		return 1 + nD + countBeatsFlat(flat, w, fq), nil
	}
}

// countBeatsFlat is countBeats over a flattened point buffer (d values per
// point, d = len(w)), with the same multiply/add order as vec.Score.
func countBeatsFlat(flat []float64, w vec.Weight, fq float64) int {
	cnt := 0
	switch len(w) {
	case 2:
		w0, w1 := w[0], w[1]
		for i := 0; i+1 < len(flat); i += 2 {
			s := w0 * flat[i]
			s += w1 * flat[i+1]
			if s < fq {
				cnt++
			}
		}
	case 3:
		w0, w1, w2 := w[0], w[1], w[2]
		for i := 0; i+2 < len(flat); i += 3 {
			s := w0 * flat[i]
			s += w1 * flat[i+1]
			s += w2 * flat[i+2]
			if s < fq {
				cnt++
			}
		}
	case 4:
		w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
		for i := 0; i+3 < len(flat); i += 4 {
			s := w0 * flat[i]
			s += w1 * flat[i+1]
			s += w2 * flat[i+2]
			s += w3 * flat[i+3]
			if s < fq {
				cnt++
			}
		}
	}
	return cnt
}

// countBeats counts refs scoring strictly below fq. The unrolled low-
// dimension bodies evaluate the score with the same sequence of multiplies
// and left-to-right adds as vec.Score (float addition of a product chain is
// association-order dependent, and bit-identity with the legacy scan
// requires the same order), so the count matches Sets.Rank's inner loop bit
// for bit while avoiding the per-point call and bounds checks.
func countBeats(refs []dominance.Ref, w vec.Weight, fq float64) int {
	cnt := 0
	switch len(w) {
	case 2:
		w0, w1 := w[0], w[1]
		for _, c := range refs {
			p := c.Point
			s := w0 * p[0]
			s += w1 * p[1]
			if s < fq {
				cnt++
			}
		}
	case 3:
		w0, w1, w2 := w[0], w[1], w[2]
		for _, c := range refs {
			p := c.Point
			s := w0 * p[0]
			s += w1 * p[1]
			s += w2 * p[2]
			if s < fq {
				cnt++
			}
		}
	case 4:
		w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
		for _, c := range refs {
			p := c.Point
			s := w0 * p[0]
			s += w1 * p[1]
			s += w2 * p[2]
			s += w3 * p[3]
			if s < fq {
				cnt++
			}
		}
	default:
		for _, c := range refs {
			if vec.Score(w, c.Point) < fq {
				cnt++
			}
		}
	}
	return cnt
}

// kthPoint routes MQP's top k-th search through the source's band tree
// when available.
func kthPoint(ctx context.Context, src *Source, t *rtree.Tree, w vec.Weight, k int) (topk.Result, bool, error) {
	if src != nil && src.KthPoint != nil {
		return src.KthPoint(ctx, w, k)
	}
	return topk.KthPointCtx(ctx, t, w, k)
}

// weightSampler abstracts the eager and lazy hyperplane samplers, which
// draw bit-identical streams over the same incomparable point sequence.
type weightSampler interface {
	Sample(rng *rand.Rand) vec.Weight
}

// newSampler builds the sample space over sets.I: the lazy sampler when a
// source is active (no per-plane materialization), the legacy eager one
// otherwise. Both return sample.ErrNoSampleSpace for an empty I.
func newSampler(src *Source, sets *dominance.Sets, qp vec.Point) (weightSampler, error) {
	if src != nil {
		return sample.NewLazyWeightSampler(qp, len(sets.I), func(i int) vec.Point { return sets.I[i].Point })
	}
	inc := make([]vec.Point, len(sets.I))
	for i, c := range sets.I {
		inc[i] = c.Point
	}
	return sample.NewWeightSampler(qp, inc)
}
