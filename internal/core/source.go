package core

import (
	"context"
	"math/rand"
	"sort"
	"sync"

	"wqrtq/internal/ctxcheck"

	"wqrtq/internal/dominance"
	"wqrtq/internal/kernel"
	"wqrtq/internal/rtree"
	"wqrtq/internal/sample"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// srcRankCutoff is the candidate-set size below which the flattened linear
// rank scan beats a pruned tree descent — hyperplane-sampled weights often
// carry near-zero components, whose thin score slabs cut across many tree
// tiles, so the descent only wins once the linear scan is several thousand
// points. Both routes compute the same value; the cutoff only affects
// speed.
const srcRankCutoff = 8192

// Source carries the skyband-backed acceleration hooks that the refinement
// algorithms (MQP, MWK, MQWK) route their index work through. A nil
// *Source — the -skyband=off ablation — preserves the legacy execution
// exactly; a non-nil Source must be bit-compatible with it:
//
//   - CountBeaters(w, fq) must return precisely the number of candidate
//     points (the universe behind the algorithm's dominance sets: every
//     point not dominated by and not equal to the reference query point)
//     with vec.Score(w, p) < fq. dominance.CountBeatersCtx provides this
//     over the full tree with pruned descent.
//   - KthPoint(w, k) must return a point achieving exactly the dataset's
//     k-th smallest score under w. A k-skyband tree qualifies: the k
//     smallest scores of the dataset are achieved within the band, so only
//     the identity of a score-tied k-th point may differ, and MQP consumes
//     the score alone.
//
// The sampling loops additionally switch to sample.LazyWeightSampler,
// whose draw stream is bit-identical to the eager sampler; refined
// vectors, k' values and penalties therefore match the ablation exactly,
// which the skyband differential suite asserts end to end.
type Source struct {
	CountBeaters func(ctx context.Context, w vec.Weight, fq float64) (int, error)
	KthPoint     func(ctx context.Context, w vec.Weight, k int) (topk.Result, bool, error)
	// BandCounts returns a membership test for the bound-skyband of the
	// whole dataset — keep(id) reports dominance count < bound — or nil
	// when no such test is available. The sampling loops use it to shrink
	// the per-sample scan to the k'max-skyband: a sample's rank is needed
	// exactly only while it is <= k'max, every strict beater of a point
	// ranked <= k'max lies in the k'max-skyband, and a trimmed count that
	// reaches k'max proves the true rank exceeds it — so trimming never
	// changes a kept sample's rank or a discard decision.
	BandCounts func(bound int) func(id int32) bool
	// Kernel, when non-nil, enables the blocked SoA scoring kernel
	// (internal/kernel) for the rank evaluations of the sampling loops:
	// the incomparable set is flattened column-major once per sample query
	// point and whole blocks of weighting vectors are ranked in one sweep.
	// The counters record the blocked work. nil — the -kernel=off ablation
	// — keeps the scalar per-weight scans; ranks, the rng stream and every
	// refinement answer are bit-identical either way (the scores are the
	// same multiply/add chains, only evaluated block-at-a-time).
	Kernel *kernel.Counters
}

// rankScratch holds the buffers one sampling call (or one MQWK worker)
// reuses across its sample query points: the row-major flattened point
// buffers of the scalar scans, the column-major kernel scratch of the
// blocked scans, the sampler's draw scratch, the per-block weight and rank
// arrays, and the call-fixed universe state of the MQWK reuse technique.
// Scratches are pooled (getRankScratch/putRankScratch), so parallel MQWK
// workers and successive calls share warm buffers instead of allocating
// per call.
type rankScratch struct {
	flat []float64 // full incomparable set, scalar path
	trim []float64 // k'max-skyband subset, scalar path
	ks   kernel.Scratch
	draw sample.DrawScratch
	// blocked-loop buffers: the drawn weight block, and the full-length
	// threshold/count/rank arrays of rankBlock.
	wblock []vec.Weight
	rblock []int
	fqs    []float64
	counts []int
	// Call-fixed universe (§4.4 reuse, kernel path): ks.Uni holds the SoA
	// image of the *candidate superset* — every point not dominated by and
	// not equal to the call's reference point — shared by all sample query
	// points of one MQWK call. Counting against the superset is exact
	// after subtracting the D-beats: points the sample point dominates can
	// never score strictly below it (score sums of coordinate-wise >=
	// points are >= under non-negative weights, with IEEE rounding
	// monotone), equal points tie, so count(cands) = count(D) + count(I).
	uniFixed bool
	// uniShared, when non-nil, points at another scratch's prepared
	// universe image (read-only after preparation): MQWK workers adopt
	// the coordinator's flatten and score columns instead of rebuilding
	// them per worker. nil means the universe lives in ks.Uni.
	uniShared *kernel.Coords
	// Sorted score columns of the call's why-not vectors over the fixed
	// universe (kernel.ScoreBlock + one sort per vector): each sample
	// query point's Wm rankings then cost one binary search per vector
	// instead of one universe sweep. wmFor pins the identity of the
	// weight slice the columns were built for.
	wmFor    []vec.Weight
	wmCols   []float64
	wmSorted [][]float64
	// uniRefs aliases the candidate slice behind the fixed universe, for
	// id-based band trimming; candBuf is the reusable backing array the
	// sequential MQWK path fills it from; sets is the pooled dominance-set
	// scratch the per-query-point classifications write into.
	uniRefs []dominance.Ref
	candBuf []dominance.Ref
	sets    dominance.Sets
	// Call-cached band trims: trims[i] holds the SoA image of
	// (trimBounds[i]-skyband ∩ candidate superset), one slot per distinct
	// band bound seen this call (bounds are powers of two from a handful
	// of buckets, so alternating k'max values across sample query points
	// reuse their slots instead of rebuilding). dBand is the
	// per-query-point scratch for D ∩ band.
	trimBounds [4]int
	trimKeeps  [4]func(id int32) bool
	trims      [4]kernel.Coords
	dBand      []dominance.Ref
}

var rankScratchPool = sync.Pool{New: func() any { return new(rankScratch) }}

// getRankScratch takes a scratch from the shared pool; pair with
// putRankScratch.
func getRankScratch() *rankScratch { return rankScratchPool.Get().(*rankScratch) }

// putRankScratch clears the call-scoped state — including every reference
// into snapshot point data, so an idle pooled scratch never pins a dead
// epoch's points or bands — and returns the scratch to the pool. The
// float64 backing arrays (SoA images, packed blocks, score columns) hold
// no pointers and are retained for reuse.
func putRankScratch(sc *rankScratch) {
	if sc == nil {
		return
	}
	sc.uniFixed = false
	sc.uniShared = nil
	sc.uniRefs = nil
	sc.wmFor = nil
	sc.wmSorted = sc.wmSorted[:0]
	sc.trimBounds = [4]int{}
	sc.trimKeeps = [4]func(id int32) bool{}
	clearRefs(sc.candBuf)
	clearRefs(sc.dBand)
	clearRefs(sc.sets.D)
	clearRefs(sc.sets.I)
	for i := range sc.wblock {
		sc.wblock[i] = nil
	}
	rankScratchPool.Put(sc)
}

// clearRefs zeroes a Ref slice through its full capacity, dropping the
// point references while keeping the backing array.
func clearRefs(refs []dominance.Ref) {
	refs = refs[:cap(refs)]
	for i := range refs {
		refs[i] = dominance.Ref{}
	}
}

// dSubCap bounds the dominating-set size up to which the fixed-universe
// evaluators pay the per-weight D-subtraction scan; a larger D makes the
// per-query-point flatten the cheaper route.
const dSubCap = 512

// uni returns the scratch's fixed-universe image: the adopted shared one
// when present, its own otherwise.
func (sc *rankScratch) uni() *kernel.Coords {
	if sc.uniShared != nil {
		return sc.uniShared
	}
	return &sc.ks.Uni
}

// adoptFixedUniverse points this scratch at a coordinator scratch's
// prepared call-fixed state — the universe image, candidate refs and
// sorted score columns, all read-only after preparation — so parallel
// workers skip the per-worker flatten, ScoreBlock sweep and sorts. Band
// trims stay per-worker (they are built lazily into mutable scratch).
func (sc *rankScratch) adoptFixedUniverse(prep *rankScratch) {
	if prep == nil || !prep.uniFixed {
		return
	}
	sc.uniFixed = true
	sc.uniShared = prep.uni()
	sc.uniRefs = prep.uniRefs
	sc.wmFor = prep.wmFor
	sc.wmSorted = append(sc.wmSorted[:0], prep.wmSorted...)
}

// wmColsMinQPs is the sample-query-point count from which the sorted
// per-vector score columns pay for themselves: one sort costs on the
// order of a hundred linear sweeps of the same column, so binary-searched
// Wm rankings only win when enough query points amortize it (the paper's
// default |Q| = 800 clears the bar comfortably; small benchmark sweeps do
// not).
const wmColsMinQPs = 64

// prepareFixedUniverse fills the scratch's call-fixed state for one MQWK
// call: the SoA image of cands and — when enough sample query points will
// amortize the sorts — the sorted per-vector score columns. No-op (leaves
// uniFixed false) when the kernel is off or the universe exceeds the
// linear-scan cutoff.
func prepareFixedUniverse(src *Source, sc *rankScratch, cands []dominance.Ref, wm []vec.Weight, qSamples int) {
	if src == nil || src.Kernel == nil || sc == nil || len(cands) == 0 || len(cands) > srcRankCutoff {
		return
	}
	d := len(cands[0].Point)
	if d > 4 {
		return
	}
	if !(sc.uniFixed && len(sc.uniRefs) == len(cands) && &sc.uniRefs[0] == &cands[0]) {
		sc.ks.Uni.Fill(d, len(cands), func(i int) []float64 { return cands[i].Point })
		sc.uniFixed = true
		sc.uniRefs = cands
	}
	if qSamples < wmColsMinQPs || sc.wmFor != nil {
		return
	}
	// Score columns of the why-not vectors over the fixed universe, one
	// blocked sweep + one sort per vector; every sample query point's Wm
	// rankings then binary-search these columns.
	n := len(cands)
	if cap(sc.wmCols) < len(wm)*n {
		sc.wmCols = make([]float64, len(wm)*n)
	}
	cols := sc.wmCols[:len(wm)*n]
	wb, _, _ := sc.ks.Block(len(wm), d)
	for i, w := range wm {
		copy(wb[i*d:(i+1)*d], w)
	}
	kernel.ScoreBlock(&sc.ks.Uni, wb, len(wm), cols)
	src.Kernel.Add(len(wm), n)
	if cap(sc.wmSorted) < len(wm) {
		sc.wmSorted = make([][]float64, len(wm))
	}
	sc.wmSorted = sc.wmSorted[:len(wm)]
	for i := range wm {
		col := cols[i*n : (i+1)*n]
		sort.Float64s(col)
		sc.wmSorted[i] = col
	}
	sc.wmFor = wm
}

// classifyFixed is dominance.ClassifyInto over the call-fixed universe,
// reading the coordinate tests off the column-major image (sequential
// streams instead of one pointer chase per candidate) and emitting refs
// from uniRefs in the same order with the same conditions — the output is
// identical. Reports false when no fixed universe is prepared.
func classifyFixed(sc *rankScratch, qp vec.Point, s *dominance.Sets) bool {
	if sc == nil || !sc.uniFixed {
		return false
	}
	s.D = s.D[:0]
	s.I = s.I[:0]
	s.NodesVisited = 0
	refs := sc.uniRefs
	uni := sc.uni()
	switch len(qp) {
	case 2:
		x, y := uni.Col(0), uni.Col(1)
		q0, q1 := qp[0], qp[1]
		for i := range refs {
			p0, p1 := x[i], y[i]
			le := p0 <= q0 && p1 <= q1
			ge := p0 >= q0 && p1 >= q1
			if le {
				if !ge {
					s.D = append(s.D, refs[i])
				}
			} else if !ge {
				s.I = append(s.I, refs[i])
			}
		}
	case 3:
		x, y, z := uni.Col(0), uni.Col(1), uni.Col(2)
		q0, q1, q2 := qp[0], qp[1], qp[2]
		for i := range refs {
			p0, p1, p2 := x[i], y[i], z[i]
			le := p0 <= q0 && p1 <= q1 && p2 <= q2
			ge := p0 >= q0 && p1 >= q1 && p2 >= q2
			if le {
				if !ge {
					s.D = append(s.D, refs[i])
				}
			} else if !ge {
				s.I = append(s.I, refs[i])
			}
		}
	case 4:
		x, y, z, u := uni.Col(0), uni.Col(1), uni.Col(2), uni.Col(3)
		q0, q1, q2, q3 := qp[0], qp[1], qp[2], qp[3]
		for i := range refs {
			p0, p1, p2, p3 := x[i], y[i], z[i], u[i]
			le := p0 <= q0 && p1 <= q1 && p2 <= q2 && p3 <= q3
			ge := p0 >= q0 && p1 >= q1 && p2 >= q2 && p3 >= q3
			if le {
				if !ge {
					s.D = append(s.D, refs[i])
				}
			} else if !ge {
				s.I = append(s.I, refs[i])
			}
		}
	default:
		return false
	}
	return true
}

// rankEval evaluates q's rank under weighting vectors against one fixed
// (sets, qp) pair. fn answers a single weight; when the blocked kernel is
// active, soa additionally holds the column-major image of the scanned
// candidate set and rankBlock answers a whole block of weights in one
// sweep. A non-empty dSub marks soa as a superset image (the call-fixed
// candidate universe, or its band trim): the dominating points it contains
// are counted by the sweep and subtracted per weight, which is exact —
// count(superset) = count(D-part) + count(I-part), since points the query
// point dominates never score strictly below it and equal points tie. All
// routes — the legacy Sets.Rank scan, the flattened scalar scans, the
// pruned tree count and the blocked kernel — return identical values; the
// choice only affects speed.
type rankEval struct {
	fn   func(ctx context.Context, w vec.Weight) (int, error)
	soa  *kernel.Coords // non-nil → blocked evaluation available
	sc   *rankScratch
	ct   *kernel.Counters
	base int // 1 + |D|
	qp   vec.Point
	dSub []dominance.Ref // dominating points included in soa, to subtract
}

func (e *rankEval) blocked() bool { return e.soa != nil }

// rankBlock ranks every weight of ws in blocked kernel sweeps, writing the
// ranks into out. Values are identical to calling fn per weight.
func (e *rankEval) rankBlock(ws []vec.Weight, out []int) {
	sc := e.sc
	if cap(sc.fqs) < len(ws) {
		sc.fqs = make([]float64, len(ws))
	}
	if cap(sc.counts) < len(ws) {
		sc.counts = make([]int, len(ws))
	}
	fqs := sc.fqs[:len(ws)]
	counts := sc.counts[:len(ws)]
	for i, w := range ws {
		fqs[i] = vec.Score(w, e.qp)
	}
	kernel.CountBelowWeights(e.soa, len(ws), func(i int) []float64 { return ws[i] }, fqs, counts, &sc.ks, e.ct)
	for i, w := range ws {
		out[i] = e.base + counts[i] - countBeats(e.dSub, w, fqs[i])
	}
}

// sampleRankBlock ranks a block of sampled weights, exploiting that the
// sample loop needs exact ranks only up to kMax: each weight's count runs
// capped (kernel.CountBelowCapped) at cap = kMax - base + |dSub|, which
// guarantees an uncapped count yields the exact rank and a capped one
// proves the true rank exceeds kMax — the reported value is then merely
// some number > kMax, which the loop discards exactly as it would the
// true one. Kept samples and their ranks are therefore identical to the
// uncapped evaluation (and to the scalar path), while discarded samples
// abandon their sweeps early.
func (e *rankEval) sampleRankBlock(ws []vec.Weight, out []int, kMax int) {
	scanned := 0
	capAt := kMax - e.base + len(e.dSub)
	for i, w := range ws {
		fq := vec.Score(w, e.qp)
		cnt, n := kernel.CountBelowCapped(e.soa, w, fq, capAt)
		scanned += n
		if cnt > capAt {
			// count(soa) > kMax - base + |dSub| and count(dSub-part) <=
			// |dSub| force the true rank past kMax; report the bound.
			out[i] = kMax + 1
		} else {
			out[i] = e.base + cnt - countBeats(e.dSub, w, fq)
		}
	}
	e.ct.Add(len(ws), scanned)
}

// kernelRankFn builds the single-weight evaluator of a blocked rankEval: a
// one-weight kernel sweep over soa, counted like any other block.
func kernelRankFn(e *rankEval) func(ctx context.Context, w vec.Weight) (int, error) {
	return func(_ context.Context, w vec.Weight) (int, error) {
		fq := vec.Score(w, e.qp)
		wb, bf, bc := e.sc.ks.Block(1, len(w))
		copy(wb, w)
		bf[0] = fq
		kernel.CountBelowBlock(e.soa, wb, bf, bc)
		e.ct.Add(1, e.soa.Len())
		return e.base + bc[0] - countBeats(e.dSub, w, fq), nil
	}
}

// wmRanks answers the why-not vectors' rankings against one sample query
// point from the call-fixed sorted score columns: rank_i = 1 + |D| +
// |{cands : score < fq_i}| - |{D : score < fq_i}|, with the candidate
// count read off the sorted column by binary search. Available (non-nil
// sc.wmFor pinning the same wm slice) only on the MQWK fixed-universe
// path; values are identical to rankBlock over the universe, which in turn
// matches the scalar scan.
func wmRanks(sc *rankScratch, sets *dominance.Sets, qp vec.Point, wm []vec.Weight, out []int) bool {
	if sc == nil || !sc.uniFixed || len(sc.wmFor) != len(wm) || len(sets.D) > dSubCap {
		return false
	}
	if len(wm) > 0 && &sc.wmFor[0] != &wm[0] {
		return false
	}
	base := 1 + len(sets.D)
	for i, w := range wm {
		fq := vec.Score(w, qp)
		out[i] = base + sort.SearchFloat64s(sc.wmSorted[i], fq) - countBeats(sets.D, w, fq)
	}
	return true
}

// newRankEval builds the rank evaluator one mwkFromSets call uses for every
// weighting vector it ranks against a fixed sets/qp pair.
func newRankEval(src *Source, sc *rankScratch, sets *dominance.Sets, qp vec.Point) *rankEval {
	e := &rankEval{qp: qp, base: 1 + len(sets.D), sc: sc}
	if src == nil || src.CountBeaters == nil {
		e.fn = func(_ context.Context, w vec.Weight) (int, error) {
			return sets.Rank(w, qp), nil
		}
		return e
	}
	d := len(qp)
	if len(sets.D)+len(sets.I) <= srcRankCutoff && d <= 4 && sc != nil {
		if src.Kernel != nil && sc.uniFixed && len(sets.D) <= dSubCap {
			// Call-fixed candidate-superset image (§4.4 reuse): no per-
			// query-point flatten; the D-part of each count is subtracted
			// per weight.
			e.soa = sc.uni()
			e.ct = src.Kernel
			e.dSub = sets.D
			e.fn = kernelRankFn(e)
			return e
		}
		if src.Kernel != nil && !sc.uniFixed {
			// Column-major SoA image of I, swept block-at-a-time by the
			// kernel; derived once per (sets, qp) pair.
			sc.ks.Uni.Fill(d, len(sets.I), func(i int) []float64 { return sets.I[i].Point })
			e.soa = &sc.ks.Uni
			e.ct = src.Kernel
			e.fn = kernelRankFn(e)
			return e
		}
		// Flatten I into one contiguous buffer: the per-sample scans are
		// memory-bound on the Ref slice-header indirection, and one |I|·d
		// copy amortizes over the |S|+|Wm| scans of the call.
		flat := sc.flat[:0]
		for _, c := range sets.I {
			flat = append(flat, c.Point...)
		}
		sc.flat = flat
		e.fn = func(_ context.Context, w vec.Weight) (int, error) {
			fq := vec.Score(w, qp)
			return 1 + len(sets.D) + countBeatsFlat(flat, w, fq), nil
		}
		return e
	}
	if len(sets.D)+len(sets.I) <= srcRankCutoff {
		e.fn = func(_ context.Context, w vec.Weight) (int, error) {
			fq := vec.Score(w, qp)
			return 1 + len(sets.D) + countBeats(sets.I, w, fq), nil
		}
		return e
	}
	e.fn = func(ctx context.Context, w vec.Weight) (int, error) {
		fq := vec.Score(w, qp)
		cnt, err := src.CountBeaters(ctx, w, fq)
		if err != nil {
			return 0, err
		}
		return 1 + len(sets.D) + cnt - countBeats(sets.D, w, fq), nil
	}
	return e
}

// newSampleRankEval refines a rank evaluator for the sample loop once k'max
// is known: with band counts available, the scanned incomparable set
// shrinks to its k'max-skyband subset. Kept samples (rank <= k'max) get
// their exact rank; discarded ones (true rank > k'max) are still reported
// above k'max — both directions proved by the dominator-chain argument in
// Source.BandCounts — so the loop behaves identically to the full scan.
// The trim decision (band availability, the kept-fraction payoff test) is
// shared by the scalar and blocked paths, so kernel-on and kernel-off scan
// the same subset and report the same ranks.
func newSampleRankEval(src *Source, sc *rankScratch, sets *dominance.Sets, qp vec.Point, kMax int, uni *rankEval) *rankEval {
	d := len(qp)
	if src == nil || src.BandCounts == nil || sc == nil || d > 4 || len(sets.I) < 64 {
		return uni
	}
	if src.Kernel != nil && sc.uniFixed && len(sets.D) <= dSubCap {
		// Call-cached superset trim: the band bound rounds k'max up to a
		// power of two (mirroring the BandCounts hook's own rounding), so
		// sample query points whose k'max values land in the same bucket
		// share one trim of the fixed universe. A bound-superset trim is
		// rank-preserving for exactly the samples the loop keeps: every
		// strict beater of a point ranked <= k'max lies in the
		// k'max-skyband ⊆ bound-skyband, and a discarded sample's trimmed
		// count still reaches past k'max. The per-query-point D-part is
		// subtracted like the universe evaluator's.
		bound := 16
		for bound < kMax {
			bound <<= 1
		}
		slot := -1
		for i, b := range sc.trimBounds {
			if b == bound {
				slot = i
				break
			}
			if b == 0 {
				keep := src.BandCounts(bound)
				if keep == nil {
					return uni
				}
				sc.trims[i].Reset(d)
				for _, c := range sc.uniRefs {
					if keep(c.ID) {
						sc.trims[i].Append(c.Point)
					}
				}
				sc.trimBounds[i] = bound
				sc.trimKeeps[i] = keep
				slot = i
				break
			}
		}
		if slot < 0 {
			return uni // more distinct bounds than slots; sweep the universe
		}
		trim := &sc.trims[slot]
		if trim.Len()*4 >= sc.uni().Len()*3 {
			return uni // trim too weak to pay for itself
		}
		keep := sc.trimKeeps[slot]
		db := sc.dBand[:0]
		for _, c := range sets.D {
			if keep(c.ID) {
				db = append(db, c)
			}
		}
		sc.dBand = db
		e := &rankEval{qp: qp, base: 1 + len(sets.D), sc: sc, soa: trim, ct: src.Kernel, dSub: db}
		e.fn = kernelRankFn(e)
		return e
	}
	keep := src.BandCounts(kMax)
	if keep == nil {
		return uni
	}
	if src.Kernel != nil && !sc.uniFixed {
		sc.ks.Trim.Reset(d)
		kept := 0
		for _, c := range sets.I {
			if keep(c.ID) {
				sc.ks.Trim.Append(c.Point)
				kept++
			}
		}
		if kept*4 >= len(sets.I)*3 {
			return uni // trim too weak to pay for itself
		}
		e := &rankEval{qp: qp, base: 1 + len(sets.D), sc: sc, soa: &sc.ks.Trim, ct: src.Kernel}
		e.fn = kernelRankFn(e)
		return e
	}
	flat := sc.trim[:0]
	kept := 0
	for _, c := range sets.I {
		if keep(c.ID) {
			flat = append(flat, c.Point...)
			kept++
		}
	}
	sc.trim = flat
	if kept*4 >= len(sets.I)*3 {
		return uni // trim too weak to pay for itself
	}
	nD := len(sets.D)
	e := &rankEval{qp: qp, base: 1 + nD, sc: sc}
	e.fn = func(_ context.Context, w vec.Weight) (int, error) {
		fq := vec.Score(w, qp)
		return 1 + nD + countBeatsFlat(flat, w, fq), nil
	}
	return e
}

// countBeatsFlat is countBeats over a flattened point buffer (d values per
// point, d = len(w)), with the same multiply/add order as vec.Score.
func countBeatsFlat(flat []float64, w vec.Weight, fq float64) int {
	cnt := 0
	switch len(w) {
	case 2:
		w0, w1 := w[0], w[1]
		for i := 0; i+1 < len(flat); i += 2 {
			s := w0 * flat[i]
			s += w1 * flat[i+1]
			if s < fq {
				cnt++
			}
		}
	case 3:
		w0, w1, w2 := w[0], w[1], w[2]
		for i := 0; i+2 < len(flat); i += 3 {
			s := w0 * flat[i]
			s += w1 * flat[i+1]
			s += w2 * flat[i+2]
			if s < fq {
				cnt++
			}
		}
	case 4:
		w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
		for i := 0; i+3 < len(flat); i += 4 {
			s := w0 * flat[i]
			s += w1 * flat[i+1]
			s += w2 * flat[i+2]
			s += w3 * flat[i+3]
			if s < fq {
				cnt++
			}
		}
	}
	return cnt
}

// countBeats counts refs scoring strictly below fq. The unrolled low-
// dimension bodies evaluate the score with the same sequence of multiplies
// and left-to-right adds as vec.Score (float addition of a product chain is
// association-order dependent, and bit-identity with the legacy scan
// requires the same order), so the count matches Sets.Rank's inner loop bit
// for bit while avoiding the per-point call and bounds checks.
func countBeats(refs []dominance.Ref, w vec.Weight, fq float64) int {
	cnt := 0
	switch len(w) {
	case 2:
		w0, w1 := w[0], w[1]
		for _, c := range refs {
			p := c.Point
			s := w0 * p[0]
			s += w1 * p[1]
			if s < fq {
				cnt++
			}
		}
	case 3:
		w0, w1, w2 := w[0], w[1], w[2]
		for _, c := range refs {
			p := c.Point
			s := w0 * p[0]
			s += w1 * p[1]
			s += w2 * p[2]
			if s < fq {
				cnt++
			}
		}
	case 4:
		w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
		for _, c := range refs {
			p := c.Point
			s := w0 * p[0]
			s += w1 * p[1]
			s += w2 * p[2]
			s += w3 * p[3]
			if s < fq {
				cnt++
			}
		}
	default:
		for _, c := range refs {
			if vec.Score(w, c.Point) < fq {
				cnt++
			}
		}
	}
	return cnt
}

// kthPoint routes MQP's top k-th search through the source's band tree
// when available.
func kthPoint(ctx context.Context, src *Source, t *rtree.Tree, w vec.Weight, k int) (topk.Result, bool, error) {
	if src != nil && src.KthPoint != nil {
		return src.KthPoint(ctx, w, k)
	}
	return topk.KthPointCtx(ctx, t, w, k)
}

// weightSampler abstracts the eager and lazy hyperplane samplers, which
// draw bit-identical streams over the same incomparable point sequence.
type weightSampler interface {
	Sample(rng *rand.Rand) vec.Weight
}

// newSampler builds the sample space over sets.I: the lazy sampler when a
// source is active (no per-plane materialization), the legacy eager one
// otherwise. Both return sample.ErrNoSampleSpace for an empty I.
func newSampler(src *Source, sets *dominance.Sets, qp vec.Point) (weightSampler, error) {
	if src != nil {
		return sample.NewLazyWeightSampler(qp, len(sets.I), func(i int) vec.Point { return sets.I[i].Point })
	}
	inc := make([]vec.Point, len(sets.I))
	for i, c := range sets.I {
		inc[i] = c.Point
	}
	return sample.NewWeightSampler(qp, inc)
}

// newDraw returns the per-sample draw function: the scratch-backed lazy
// draw when available (identical values and rng stream, one allocation per
// draw instead of several), the plain Sample otherwise.
func newDraw(sampler weightSampler, sc *rankScratch, rng *rand.Rand) func() vec.Weight {
	if ls, ok := sampler.(*sample.LazyWeightSampler); ok && sc != nil {
		return func() vec.Weight { return ls.SampleScratch(rng, &sc.draw) }
	}
	return func() vec.Weight { return sampler.Sample(rng) }
}

// sampleRank is one drawn weighting vector with its (exact, <= k'max)
// rank.
type sampleRank struct {
	w    vec.Weight
	rank int
}

// drawRankedSamples draws sampleSize weighting vectors and keeps those
// ranking within kMax (Algorithm 2 lines 3-6 with line 13's break applied
// at construction), appending to samples. With a blocked evaluator the
// draws fill a block first — consuming the rng stream in the same order
// as the scalar loop — and one capped kernel pass ranks the whole block,
// so the kept samples and their ranks are identical on every route. Both
// MWK candidate strategies share this loop.
func drawRankedSamples(ctx context.Context, tick *ctxcheck.Ticker, sev *rankEval, sc *rankScratch, draw func() vec.Weight, samples []sampleRank, sampleSize, kMax int) ([]sampleRank, error) {
	if sev.blocked() {
		if cap(sc.wblock) < kernel.BlockSize {
			sc.wblock = make([]vec.Weight, kernel.BlockSize)
			sc.rblock = make([]int, kernel.BlockSize)
		}
		for done := 0; done < sampleSize; {
			nb := sampleSize - done
			if nb > kernel.BlockSize {
				nb = kernel.BlockSize
			}
			wb := sc.wblock[:nb]
			for j := 0; j < nb; j++ {
				if err := tick.Tick(); err != nil {
					return samples, err
				}
				wb[j] = draw()
			}
			rb := sc.rblock[:nb]
			sev.sampleRankBlock(wb, rb, kMax)
			for j := 0; j < nb; j++ {
				if rb[j] <= kMax {
					samples = append(samples, sampleRank{w: wb[j], rank: rb[j]})
				}
			}
			done += nb
		}
		return samples, nil
	}
	for i := 0; i < sampleSize; i++ {
		if err := tick.Tick(); err != nil {
			return samples, err
		}
		w := draw()
		r, err := sev.fn(ctx, w)
		if err != nil {
			return samples, err
		}
		if r <= kMax {
			samples = append(samples, sampleRank{w: w, rank: r})
		}
	}
	return samples, nil
}

// rngPool recycles the ~5 KiB math/rand source state across sampling
// calls: Seed fully resets a source, so a pooled rng re-seeded with the
// caller's seed draws the exact stream a fresh rand.New(rand.NewSource)
// would.
var rngPool = sync.Pool{New: func() any { return rand.New(rand.NewSource(1)) }}

// getRng takes a pooled rng seeded to the given seed; pair with putRng.
func getRng(seed int64) *rand.Rand {
	r := rngPool.Get().(*rand.Rand)
	r.Seed(seed)
	return r
}

func putRng(r *rand.Rand) { rngPool.Put(r) }
