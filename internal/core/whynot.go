package core

import (
	"context"
	"fmt"
	"runtime"

	"wqrtq/internal/dominance"
	"wqrtq/internal/rtree"
	"wqrtq/internal/vec"
)

// WhyNotRefinements bundles the three refinement solutions of one why-not
// answer.
type WhyNotRefinements struct {
	MQP  MQPResult
	MWK  MWKResult
	MQWK MQWKResult
}

// WhyNotRefineSrcCtx computes all three refinement solutions of a why-not
// question over shared traversal state — the pipeline fusion behind
// Index.WhyNot. Run separately, the solutions repeat each other's index
// work: MWK's FindIncom and MQWK's candidate cache are the same pruned
// traversal, and MQWK's line 2 re-runs the MQP optimum that the first
// solution just produced. Here one Candidates walk feeds both samplings
// (classifying at q yields exactly FindIncom's D/I sets, in the same
// encounter order) and the MQP result is computed once and reused as
// MQWK's q_min, so a why-not request pays one traversal and one QP solve
// instead of three and two.
//
// Every result is bit-identical to the standalone entry points with the
// same arguments: each stage seeds its own rng exactly as the separate
// calls do, and the shared state is equal by construction to what each
// stage would have recomputed.
func WhyNotRefineSrcCtx(ctx context.Context, t *rtree.Tree, src *Source, q vec.Point, k int, wm []vec.Weight, sampleSize, qSampleSize int, seed int64, workers int, perVector bool, pm PenaltyModel) (WhyNotRefinements, error) {
	var out WhyNotRefinements
	if err := validateInput(t, q, k, wm); err != nil {
		return out, err
	}
	if sampleSize < 0 {
		return out, fmt.Errorf("core: negative sample size %d", sampleSize)
	}
	if qSampleSize < 0 {
		return out, fmt.Errorf("core: negative query sample size %d", qSampleSize)
	}
	mqp, err := MQPSrcCtx(ctx, t, src, q, k, wm, pm)
	if err != nil {
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		return out, fmt.Errorf("core: why-not refinement needs the MQP optimum: %w", err)
	}
	out.MQP = mqp

	// One pruned traversal serves both samplings: classified at q it is
	// FindIncom's D/I split (the traversal visits the same nodes in the
	// same order and applies the same per-point conditions), and it is
	// MQWK's §4.4 reuse cache as-is.
	var sc *rankScratch
	if src != nil {
		sc = getRankScratch()
		defer putRankScratch(sc)
	}
	var cands []dominance.Ref
	var visited int
	if sc != nil {
		cands, visited = dominance.CandidatesInto(t, q, sc.candBuf[:0])
		sc.candBuf = cands
	} else {
		cands, visited = dominance.Candidates(t, q)
	}

	var sets *dominance.Sets
	if sc != nil {
		prepareFixedUniverse(src, sc, cands, wm, qSampleSize+1)
		sets = &sc.sets
		if !classifyFixed(sc, q, sets) {
			dominance.ClassifyInto(cands, q, sets)
		}
	} else {
		s := dominance.Classify(cands, q)
		sets = &s
	}
	sets.NodesVisited = visited

	// Second solution (MWK), on its own rng stream exactly like the
	// standalone entry point.
	mwkRng := getRng(seed)
	if perVector {
		out.MWK, err = mwkPerVectorFromSets(ctx, src, sc, sets, q, k, wm, sampleSize, mwkRng, pm)
	} else {
		out.MWK, err = mwkFromSets(ctx, src, sc, sets, q, k, wm, sampleSize, mwkRng, pm)
		if err == nil {
			out.MWK.NodesVisited = visited
		}
	}
	putRng(mwkRng)
	if err != nil {
		return out, err
	}

	// Third solution (MQWK), reusing q_min and the candidate cache.
	if workers != 0 {
		if workers < 0 {
			workers = 0 // resolved to GOMAXPROCS inside
		}
		out.MQWK, err = mqwkParallelFused(ctx, src, mqp.RefinedQ, cands, q, k, wm, sampleSize, qSampleSize, seed, workers, pm)
	} else {
		mqwkRng := getRng(seed)
		out.MQWK, err = mqwkResolved(ctx, src, sc, mqp.RefinedQ, cands, q, k, wm, sampleSize, qSampleSize, mqwkRng, pm)
		putRng(mqwkRng)
	}
	if err != nil {
		return out, err
	}
	return out, nil
}

// mqwkParallelFused resolves the worker count like MQWKParallelSrcCtx
// before delegating to the shared parallel search.
func mqwkParallelFused(ctx context.Context, src *Source, qMin vec.Point, cands []dominance.Ref, q vec.Point, k int, wm []vec.Weight, sampleSize, qSampleSize int, seed int64, workers int, pm PenaltyModel) (MQWKResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return mqwkParallelResolved(ctx, src, qMin, cands, q, k, wm, sampleSize, qSampleSize, seed, workers, pm)
}
