package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"wqrtq/internal/dominance"
	"wqrtq/internal/rtree"
	"wqrtq/internal/sample"
	"wqrtq/internal/vec"
)

// MQWKParallel is MQWK with the per-sample MWK searches spread over
// worker goroutines. The sample query points are independent once the
// candidate cache is built (the §4.4 reuse technique makes each evaluation
// a pure in-memory computation), so the paper's most expensive algorithm
// parallelizes embarrassingly.
//
// Determinism: each sample point i draws its weight samples from its own
// rand.Rand seeded with seed+i, so results are reproducible regardless of
// scheduling, and identical across worker counts.
//
// This addresses the paper's closing direction — "we would like to explore
// why-not questions on reverse top-k queries over larger datasets" (§6) —
// with the orthogonal axis available in a shared-memory implementation.
func MQWKParallel(t *rtree.Tree, q vec.Point, k int, wm []vec.Weight, sampleSize, qSampleSize int, seed int64, workers int, pm PenaltyModel) (MQWKResult, error) {
	return MQWKParallelCtx(context.Background(), t, q, k, wm, sampleSize, qSampleSize, seed, workers, pm)
}

// MQWKParallelCtx is MQWKParallel with cooperative cancellation: every
// worker polls the shared ctx before each sample query point and inside its
// sampling loops, so one cancellation unwinds the whole fan-out. Results
// remain identical across worker counts at a fixed seed when the context is
// never canceled.
func MQWKParallelCtx(ctx context.Context, t *rtree.Tree, q vec.Point, k int, wm []vec.Weight, sampleSize, qSampleSize int, seed int64, workers int, pm PenaltyModel) (MQWKResult, error) {
	return MQWKParallelSrcCtx(ctx, t, nil, q, k, wm, sampleSize, qSampleSize, seed, workers, pm)
}

// MQWKParallelSrcCtx is MQWKParallelCtx with every worker's per-sample
// evaluation routed through an optional skyband Source (see MQWKSrcCtx);
// results stay identical across worker counts and to the nil-Source path.
func MQWKParallelSrcCtx(ctx context.Context, t *rtree.Tree, src *Source, q vec.Point, k int, wm []vec.Weight, sampleSize, qSampleSize int, seed int64, workers int, pm PenaltyModel) (MQWKResult, error) {
	if err := validateInput(t, q, k, wm); err != nil {
		return MQWKResult{}, err
	}
	if qSampleSize < 0 {
		return MQWKResult{}, fmt.Errorf("core: negative query sample size %d", qSampleSize)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	mqp, err := MQPSrcCtx(ctx, t, src, q, k, wm, pm)
	if err != nil {
		if ctx.Err() != nil {
			return MQWKResult{}, ctx.Err()
		}
		return MQWKResult{}, fmt.Errorf("core: MQWK needs the MQP optimum: %w", err)
	}
	cands, _ := dominance.Candidates(t, q)
	return mqwkParallelResolved(ctx, src, mqp.RefinedQ, cands, q, k, wm, sampleSize, qSampleSize, seed, workers, pm)
}

// mqwkParallelResolved is the parallel sampling search given the MQP
// optimum and the candidate cache (shared with the fused why-not
// pipeline, like mqwkResolved).
func mqwkParallelResolved(ctx context.Context, src *Source, qMin vec.Point, cands []dominance.Ref, q vec.Point, k int, wm []vec.Weight, sampleSize, qSampleSize int, seed int64, workers int, pm PenaltyModel) (MQWKResult, error) {
	// Endpoint candidates and sample points, all drawn up front so the
	// parallel phase is pure computation.
	points := make([]vec.Point, 0, qSampleSize+1)
	points = append(points, vec.Clone(q))
	boxRng := getRng(seed)
	points = append(points, sample.Box(boxRng, qMin, q, qSampleSize)...)
	putRng(boxRng)

	type cand struct {
		res MQWKResult
		err error
		ok  bool
	}
	results := make([]cand, len(points))
	// The call-fixed universe (flatten + sorted score columns) is prepared
	// once by the coordinator and adopted read-only by every worker.
	var prep *rankScratch
	if src != nil {
		prep = getRankScratch()
		defer putRankScratch(prep)
		prepareFixedUniverse(src, prep, cands, wm, qSampleSize+1)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch dominance.Sets // per-worker scratch on the source path
			var sc *rankScratch
			if src != nil {
				// Workers draw from the shared scratch pool rather than
				// allocating per call, so repeated MQWK requests reuse the
				// same warm flatten/kernel/draw buffers across the fan-out.
				sc = getRankScratch()
				defer putRankScratch(sc)
				sc.adoptFixedUniverse(prep)
			}
			jobRng := getRng(1)
			defer putRng(jobRng)
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					results[i] = cand{err: err}
					continue
				}
				qp := points[i]
				var sets dominance.Sets
				if src != nil {
					if !classifyFixed(sc, qp, &scratch) {
						dominance.ClassifyInto(cands, qp, &scratch)
					}
					sets = scratch
				} else {
					sets = dominance.Classify(cands, qp)
				}
				jobRng.Seed(seed + int64(i) + 1)
				wk, err := mwkFromSets(ctx, src, sc, &sets, qp, k, wm, sampleSize, jobRng, pm)
				if err != nil {
					results[i] = cand{err: err}
					continue
				}
				results[i] = cand{
					res: MQWKResult{
						RefinedQ:  qp,
						RefinedWm: wk.RefinedWm,
						RefinedK:  wk.RefinedK,
						Penalty:   pm.Gamma*pm.QPenalty(q, qp) + pm.Lambda*wk.Penalty,
					},
					ok: true,
				}
			}
		}()
	}
	for i := range points {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	best := MQWKResult{
		RefinedQ:         qMin,
		RefinedWm:        cloneWeights(wm),
		RefinedK:         k,
		Penalty:          pm.TotalPenalty(q, qMin, wm, wm, k, k, k+1),
		QMin:             qMin,
		CandidatesCached: len(cands),
		TreeTraversals:   2,
	}
	for _, c := range results {
		if c.err != nil {
			return MQWKResult{}, c.err
		}
		if c.ok && c.res.Penalty < best.Penalty {
			best.RefinedQ = c.res.RefinedQ
			best.RefinedWm = c.res.RefinedWm
			best.RefinedK = c.res.RefinedK
			best.Penalty = c.res.Penalty
		}
	}
	return best, nil
}
