package core

import (
	"errors"
	"math"

	"wqrtq/internal/rtopk"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// ExactMWK2D computes the true optimum of the modifying-Wm-and-k problem
// (Definition 9) for 2-dimensional datasets, by exhausting the finite
// structure of the 2-D weighting space. It is the ground truth against
// which the sampling algorithm MWK is validated.
//
// In 2-D a weighting vector is (λ, 1-λ). For any candidate k' the feasible
// region {w : q ∈ TOPk'(w)} is an exact union of λ-intervals
// (rtopk.Monochromatic2D); for a fixed k' the optimal replacement of each
// why-not vector is independently the closest feasible λ. Minimizing over
// k' ∈ [k, k'max] yields the global optimum, because k' > k'max can never
// beat the (Wm, k'max) baseline (Lemma 4) and k' below every useful rank
// only shrinks the feasible region.
func ExactMWK2D(points []vec.Point, q vec.Point, k int, wm []vec.Weight, pm PenaltyModel) (MWKResult, error) {
	if len(q) != 2 {
		return MWKResult{}, errors.New("core: ExactMWK2D requires 2-dimensional data")
	}
	ranks := make([]int, len(wm))
	kMax := 0
	active := 0
	for i, w := range wm {
		ranks[i] = topk.RankNaive(points, w, vec.Score(w, q))
		if ranks[i] > kMax {
			kMax = ranks[i]
		}
		if ranks[i] > k {
			active++
		}
	}
	if active == 0 {
		return MWKResult{RefinedWm: cloneWeights(wm), RefinedK: k, Penalty: 0, KMax: kMax}, nil
	}
	best := MWKResult{
		RefinedWm:      cloneWeights(wm),
		RefinedK:       kMax,
		Penalty:        pm.WKPenalty(wm, wm, k, kMax, kMax),
		KMax:           kMax,
		BaselineChosen: true,
	}
	for kp := k; kp <= kMax; kp++ {
		ivs := rtopk.Monochromatic2D(points, q, kp)
		if len(ivs) == 0 {
			continue
		}
		cand := cloneWeights(wm)
		feasible := true
		for i, w := range wm {
			if ranks[i] <= kp {
				continue // already feasible at this k'
			}
			lam, ok := nearestInIntervals(w[0], ivs)
			if !ok {
				feasible = false
				break
			}
			cand[i] = vec.Weight{lam, 1 - lam}
		}
		if !feasible {
			continue
		}
		p := pm.WKPenalty(wm, cand, k, kp, kMax)
		if p < best.Penalty {
			best = MWKResult{RefinedWm: cand, RefinedK: kp, Penalty: p, KMax: kMax}
		}
	}
	return best, nil
}

// nearestInIntervals returns the λ inside the interval union closest to
// lam; ok is false when the union is empty.
func nearestInIntervals(lam float64, ivs []rtopk.Interval) (float64, bool) {
	bestDist := math.Inf(1)
	bestLam := 0.0
	for _, iv := range ivs {
		c := lam
		if c < iv.Lo {
			c = iv.Lo
		}
		if c > iv.Hi {
			c = iv.Hi
		}
		if d := math.Abs(c - lam); d < bestDist {
			bestDist = d
			bestLam = c
		}
	}
	return bestLam, !math.IsInf(bestDist, 1)
}
