package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestScorePaperFigure1(t *testing.T) {
	// Scores from the paper's Figure 1(c): computers scored under the four
	// customer preferences, f(w, p) = w[price]*p.price + w[heat]*p.heat.
	points := []Point{
		{2, 1}, {6, 3}, {1, 9}, {9, 3}, {7, 5}, {5, 8}, {3, 7}, // p1..p7
	}
	q := Point{4, 4}
	julia := Weight{0.9, 0.1}
	tony := Weight{0.5, 0.5}
	anna := Weight{0.3, 0.7}
	kevin := Weight{0.1, 0.9}

	cases := []struct {
		name string
		w    Weight
		want []float64 // p1..p7, then q
	}{
		{"kevin", kevin, []float64{1.1, 3.3, 8.2, 3.6, 5.2, 7.7, 6.6, 4}},
		{"anna", anna, []float64{1.3, 3.9, 6.6, 4.8, 5.6, 7.1, 5.8, 4}},
		{"tony", tony, []float64{1.5, 4.5, 5, 6, 6, 6.5, 5, 4}},
		{"julia", julia, []float64{1.9, 5.7, 1.8, 8.4, 6.8, 5.3, 3.4, 4}},
	}
	for _, tc := range cases {
		for i, p := range points {
			if got := Score(tc.w, p); !almostEqual(got, tc.want[i], 1e-9) {
				t.Errorf("%s: Score(p%d) = %v, want %v", tc.name, i+1, got, tc.want[i])
			}
		}
		if got := Score(tc.w, q); !almostEqual(got, tc.want[7], 1e-9) {
			t.Errorf("%s: Score(q) = %v, want %v", tc.name, got, tc.want[7])
		}
	}
}

func TestScoreDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Score(Weight{0.5, 0.5}, Point{1})
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Point{1, 1}, Point{2, 2}, true},
		{Point{1, 2}, Point{1, 3}, true},
		{Point{1, 1}, Point{1, 1}, false}, // identical: no strict dimension
		{Point{2, 1}, Point{1, 2}, false}, // incomparable
		{Point{2, 2}, Point{1, 1}, false}, // reversed
		{Point{0, 0, 5}, Point{1, 1, 5}, true},
	}
	for _, tc := range cases {
		if got := Dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestIncomparablePaperFigure2(t *testing.T) {
	// Paper §4.3: "the query point q is dominated by p1, and it is
	// incomparable with p3".
	q := Point{4, 4}
	p1 := Point{2, 1}
	p3 := Point{1, 9}
	if !Dominates(p1, q) {
		t.Error("p1 should dominate q")
	}
	if !Incomparable(p3, q) {
		t.Error("p3 should be incomparable with q")
	}
}

func TestDominancePropertiesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randPoint := func(d int) Point {
		p := make(Point, d)
		for i := range p {
			p[i] = math.Floor(rng.Float64()*10) / 2 // coarse grid to force ties
		}
		return p
	}
	// Antisymmetry: a dominates b implies b does not dominate a.
	anti := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(6)
		a, b := randPoint(d), randPoint(d)
		if Dominates(a, b) && Dominates(b, a) {
			return false
		}
		return true
	}
	if err := quick.Check(anti, nil); err != nil {
		t.Error(err)
	}
	// Transitivity: a dom b and b dom c implies a dom c.
	trans := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(5)
		a, b, c := randPoint(d), randPoint(d), randPoint(d)
		if Dominates(a, b) && Dominates(b, c) {
			return Dominates(a, c)
		}
		return true
	}
	if err := quick.Check(trans, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Exactly one of: equal, a dom b, b dom a, incomparable.
	partition := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(5)
		a, b := randPoint(d), randPoint(d)
		n := 0
		if Equal(a, b) {
			n++
		}
		if Dominates(a, b) {
			n++
		}
		if Dominates(b, a) {
			n++
		}
		if Incomparable(a, b) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(partition, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestScoreMonotoneUnderDominanceQuick(t *testing.T) {
	// If a dominates b then f(w, a) <= f(w, b) for every valid weight.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(5)
		a := make(Point, d)
		b := make(Point, d)
		for i := range a {
			a[i] = r.Float64() * 10
			b[i] = a[i] + r.Float64()*5 // b is dominated by a (or equal)
		}
		w := RandTestWeight(r, d)
		return Score(w, a) <= Score(w, b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// RandTestWeight builds a random valid weighting vector; shared with other
// package tests through export_test-style reuse inside this package only.
func RandTestWeight(r *rand.Rand, d int) Weight {
	w := make(Weight, d)
	sum := 0.0
	for i := range w {
		w[i] = -math.Log(1 - r.Float64())
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

func TestValidateWeight(t *testing.T) {
	if err := ValidateWeight(Weight{0.3, 0.7}); err != nil {
		t.Errorf("valid weight rejected: %v", err)
	}
	if err := ValidateWeight(Weight{0.3, 0.6}); err == nil {
		t.Error("sum != 1 accepted")
	}
	if err := ValidateWeight(Weight{-0.1, 1.1}); err == nil {
		t.Error("negative component accepted")
	}
	if err := ValidateWeight(Weight{}); err == nil {
		t.Error("empty weight accepted")
	}
	if err := ValidateWeight(Weight{math.NaN(), 1}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestNormalizeWeight(t *testing.T) {
	w, err := NormalizeWeight(Weight{2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := Weight{0.2, 0.3, 0.5}
	for i := range w {
		if !almostEqual(w[i], want[i], 1e-12) {
			t.Errorf("NormalizeWeight[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	if _, err := NormalizeWeight(Weight{0, 0}); err == nil {
		t.Error("zero vector accepted")
	}
	if _, err := NormalizeWeight(Weight{-1, 2}); err == nil {
		t.Error("negative component accepted")
	}
}

func TestValidatePoint(t *testing.T) {
	if err := ValidatePoint(Point{0, 1, 2}); err != nil {
		t.Errorf("valid point rejected: %v", err)
	}
	if err := ValidatePoint(Point{-1, 0}); err == nil {
		t.Error("negative point accepted")
	}
	if err := ValidatePoint(Point{}); err == nil {
		t.Error("empty point accepted")
	}
	if err := ValidatePoint(Point{math.Inf(1)}); err == nil {
		t.Error("infinite point accepted")
	}
}

func TestNormDistSub(t *testing.T) {
	a := Point{3, 4}
	if got := Norm(a); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", got)
	}
	b := Point{0, 0}
	if got := Dist(a, b); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Dist = %v, want 5", got)
	}
	d := Sub(a, b)
	if !Equal(d, a) {
		t.Errorf("Sub = %v, want %v", d, a)
	}
	// Penalty example from the paper (§4.2): q=(4,4), q'=(3,2.5):
	// ||q'-q||/||q|| = 0.318...
	q := Point{4, 4}
	qp := Point{3, 2.5}
	if got := Dist(q, qp) / Norm(q); !almostEqual(got, 0.3187, 5e-4) {
		t.Errorf("penalty(q') = %v, want ~0.318", got)
	}
	qpp := Point{2.5, 3.5}
	if got := Dist(q, qpp) / Norm(q); !almostEqual(got, 0.2795, 5e-4) {
		t.Errorf("penalty(q'') = %v, want ~0.279", got)
	}
}

func TestLexicographic(t *testing.T) {
	cases := []struct {
		a, b Point
		want int
	}{
		{Point{1, 2}, Point{1, 3}, -1},
		{Point{1, 3}, Point{1, 2}, 1},
		{Point{1, 2}, Point{1, 2}, 0},
		{Point{2, 0}, Point{1, 9}, 1},
	}
	for _, tc := range cases {
		if got := Lexicographic(tc.a, tc.b); got != tc.want {
			t.Errorf("Lexicographic(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Point{1, 2}
	c := Clone(p)
	c[0] = 99
	if p[0] != 1 {
		t.Error("Clone shares backing array")
	}
	w := Weight{0.5, 0.5}
	cw := CloneWeight(w)
	cw[0] = 0
	if w[0] != 0.5 {
		t.Error("CloneWeight shares backing array")
	}
}

func TestDotAndWeightDist(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	// Max simplex distance is between two vertices: sqrt(2).
	a := Weight{1, 0}
	b := Weight{0, 1}
	if got := WeightDist(a, b); !almostEqual(got, MaxWeightDist, 1e-12) {
		t.Errorf("WeightDist = %v, want sqrt(2)", got)
	}
}
