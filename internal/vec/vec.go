// Package vec provides the d-dimensional point and weighting-vector
// primitives shared by every subsystem of the WQRTQ reproduction: linear
// scoring, dominance tests, and small dense-vector arithmetic.
//
// Conventions (paper §3): attribute values are non-negative and smaller
// values are preferable; a weighting vector w satisfies w[i] >= 0 and
// sum_i w[i] = 1; the score of a point p under w is f(w, p) = sum_i w[i]*p[i],
// and smaller scores rank higher.
package vec

import (
	"errors"
	"fmt"
	"math"
)

// Point is a d-dimensional data or query point.
type Point []float64

// Weight is a d-dimensional weighting vector on the standard simplex.
type Weight []float64

// Score returns the linear score f(w, p) = sum_i w[i]*p[i].
// It panics if the dimensionalities differ.
func Score(w Weight, p Point) float64 {
	if len(w) != len(p) {
		panic(fmt.Sprintf("vec: score dimension mismatch %d vs %d", len(w), len(p)))
	}
	s := 0.0
	for i, wi := range w {
		s += wi * p[i]
	}
	return s
}

// Dominates reports whether a dominates b: a[i] <= b[i] on every dimension
// and a[j] < b[j] on at least one.
func Dominates(a, b Point) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// Incomparable reports whether neither point dominates the other and the
// points are not identical.
func Incomparable(a, b Point) bool {
	return !Equal(a, b) && !Dominates(a, b) && !Dominates(b, a)
}

// Equal reports exact element-wise equality.
//
//wqrtq:floatcmp
func Equal(a, b Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clone returns a fresh copy of p.
func Clone(p Point) Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// CloneWeight returns a fresh copy of w.
func CloneWeight(w Weight) Weight {
	v := make(Weight, len(w))
	copy(v, w)
	return v
}

// Sub returns a - b as a new vector.
func Sub(a, b Point) Point {
	d := make(Point, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	return d
}

// Norm returns the Euclidean norm of p.
func Norm(p Point) float64 {
	s := 0.0
	for _, v := range p {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b Point) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// WeightDist returns the Euclidean distance between two weighting vectors.
func WeightDist(a, b Weight) float64 {
	return Dist(Point(a), Point(b))
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// MaxWeightDist is the largest possible Euclidean distance between two
// weighting vectors on the d-dimensional standard simplex (between two
// distinct vertices): sqrt(2). The paper cites this bound below Lemma 4.
const MaxWeightDist = math.Sqrt2

// ErrBadWeight is returned by ValidateWeight for vectors that are not on the
// standard simplex.
var ErrBadWeight = errors.New("vec: weighting vector must be non-negative and sum to 1")

// weightSumTol is the tolerance accepted on sum(w) == 1.
const weightSumTol = 1e-9

// ValidateWeight checks that w is a valid weighting vector: every component
// non-negative and the components summing to 1 within a small tolerance.
func ValidateWeight(w Weight) error {
	if len(w) == 0 {
		return ErrBadWeight
	}
	sum := 0.0
	for _, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return ErrBadWeight
		}
		sum += v
	}
	if math.Abs(sum-1) > weightSumTol {
		return fmt.Errorf("%w (sum = %v)", ErrBadWeight, sum)
	}
	return nil
}

// NormalizeWeight scales a non-negative vector so its components sum to 1.
// It returns an error if the vector is zero or has negative components.
func NormalizeWeight(w Weight) (Weight, error) {
	sum := 0.0
	for _, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrBadWeight
		}
		sum += v
	}
	if sum <= 0 {
		return nil, ErrBadWeight
	}
	out := make(Weight, len(w))
	for i, v := range w {
		out[i] = v / sum
	}
	return out, nil
}

// ValidatePoint checks that p is finite and non-negative, the data-space
// assumption used throughout the paper.
func ValidatePoint(p Point) error {
	if len(p) == 0 {
		return errors.New("vec: empty point")
	}
	for _, v := range p {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("vec: point component %v out of domain [0, +inf)", v)
		}
	}
	return nil
}

// Lexicographic compares a and b lexicographically, returning -1, 0 or +1.
func Lexicographic(a, b Point) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}
