// Package ctxcheck provides an amortized context-cancellation poll for hot
// loops. The query algorithms check for cancellation at bounded intervals —
// every N heap pops, samples, or vector evaluations — so a canceled request
// unwinds within one check interval while the uncancelable fast path
// (context.Background, whose Done channel is nil) pays a single pointer
// comparison per iteration.
package ctxcheck

import "context"

// Ticker polls a context's error once every fixed number of Tick calls.
// The zero value never fires. Ticker is a value type: embed or declare it
// on the stack and pass a pointer into inner loops; it must not be shared
// across goroutines.
type Ticker struct {
	ctx  context.Context // nil when cancellation can never fire
	mask uint32
	n    uint32
}

// Every returns a Ticker that polls ctx.Err() once per roughly `every` Tick
// calls (rounded up to a power of two so the interval test is a mask). A nil
// context, or one that can never be canceled (Background, TODO — their Done
// channel is nil), yields a no-op Ticker whose Tick is one nil check.
func Every(ctx context.Context, every uint32) Ticker {
	if ctx == nil || ctx.Done() == nil {
		return Ticker{}
	}
	if every == 0 {
		every = 1
	}
	m := uint32(1)
	for m < every {
		m <<= 1
	}
	return Ticker{ctx: ctx, mask: m - 1}
}

// Tick advances the counter and, on every interval boundary, reports the
// context's error. Loops should return the error immediately when non-nil.
func (t *Ticker) Tick() error {
	if t.ctx == nil {
		return nil
	}
	t.n++
	if t.n&t.mask != 0 {
		return nil
	}
	return t.ctx.Err()
}

// Err polls the context immediately, regardless of the interval. The no-op
// Ticker reports nil.
func (t *Ticker) Err() error {
	if t.ctx == nil {
		return nil
	}
	return t.ctx.Err()
}
