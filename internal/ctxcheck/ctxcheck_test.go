package ctxcheck

import (
	"context"
	"testing"
)

func TestTickerBackgroundNeverFires(t *testing.T) {
	tick := Every(context.Background(), 4)
	for i := 0; i < 1000; i++ {
		if err := tick.Tick(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	if err := tick.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestTickerZeroValueNeverFires(t *testing.T) {
	var tick Ticker
	for i := 0; i < 100; i++ {
		if err := tick.Tick(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
}

func TestTickerFiresWithinInterval(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tick := Every(ctx, 8)
	// Before cancellation nothing fires.
	for i := 0; i < 20; i++ {
		if err := tick.Tick(); err != nil {
			t.Fatalf("tick %d before cancel: %v", i, err)
		}
	}
	cancel()
	// After cancellation the error must surface within one interval.
	for i := 0; i < 8; i++ {
		if err := tick.Tick(); err != nil {
			if err != context.Canceled {
				t.Fatalf("got %v, want context.Canceled", err)
			}
			return
		}
	}
	t.Fatal("canceled context not observed within one interval")
}

func TestTickerErrPollsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tick := Every(ctx, 1024)
	cancel()
	if err := tick.Err(); err != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
}

func TestTickerIntervalRoundsUp(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tick := Every(ctx, 5) // rounds to 8
	if tick.mask != 7 {
		t.Fatalf("mask = %d, want 7", tick.mask)
	}
}
