package engine

import (
	"sync"
	"sync/atomic"
	"time"
)

// Metrics aggregates per-endpoint latency counters. Observe is safe for
// concurrent use and allocation-free on the hot path once an endpoint's
// counter exists.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*counter
}

type counter struct {
	count    atomic.Int64
	errors   atomic.Int64
	canceled atomic.Int64
	totalNs  atomic.Int64
	maxNs    atomic.Int64
}

// CounterSnapshot is a point-in-time copy of one endpoint's counters.
type CounterSnapshot struct {
	Count int64 `json:"count"`
	// Errors counts all failed requests, Canceled the subset that failed
	// because the caller's context was canceled or its deadline expired.
	Errors   int64         `json:"errors"`
	Canceled int64         `json:"canceled"`
	Total    time.Duration `json:"total_ns"`
	Max      time.Duration `json:"max_ns"`
	Avg      time.Duration `json:"avg_ns"`
}

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{counters: make(map[string]*counter)}
}

func (m *Metrics) counterFor(endpoint string) *counter {
	m.mu.RLock()
	c := m.counters[endpoint]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[endpoint]; c == nil {
		c = &counter{}
		m.counters[endpoint] = c
	}
	return c
}

// Observe records one request against the endpoint.
func (m *Metrics) Observe(endpoint string, d time.Duration, isErr bool) {
	c := m.counterFor(endpoint)
	c.count.Add(1)
	if isErr {
		c.errors.Add(1)
	}
	ns := d.Nanoseconds()
	c.totalNs.Add(ns)
	for {
		cur := c.maxNs.Load()
		if ns <= cur || c.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// ObserveCanceled marks the endpoint's most recent error as a context
// cancellation (callers invoke it alongside Observe with isErr=true).
func (m *Metrics) ObserveCanceled(endpoint string) {
	m.counterFor(endpoint).canceled.Add(1)
}

// Snapshot copies all counters.
func (m *Metrics) Snapshot() map[string]CounterSnapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]CounterSnapshot, len(m.counters))
	//wqrtq:unordered map-to-map copy; destination is itself unordered
	for name, c := range m.counters {
		s := CounterSnapshot{
			Count:    c.count.Load(),
			Errors:   c.errors.Load(),
			Canceled: c.canceled.Load(),
			Total:    time.Duration(c.totalNs.Load()),
			Max:      time.Duration(c.maxNs.Load()),
		}
		if s.Count > 0 {
			s.Avg = s.Total / time.Duration(s.Count)
		}
		out[name] = s
	}
	return out
}
