package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolProcessesEverything(t *testing.T) {
	var sum atomic.Int64
	var batches atomic.Int64
	var maxBatch atomic.Int64
	p := NewPool(2, 8, 0, nil, func(b []int) {
		batches.Add(1)
		for {
			cur := maxBatch.Load()
			if int64(len(b)) <= cur || maxBatch.CompareAndSwap(cur, int64(len(b))) {
				break
			}
		}
		for _, v := range b {
			sum.Add(int64(v))
		}
	})
	const n = 1000
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				if !p.Submit(1) {
					t.Error("Submit returned false before Close")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	p.Close()
	if sum.Load() != n {
		t.Fatalf("processed %d requests, want %d", sum.Load(), n)
	}
	if maxBatch.Load() > 8 {
		t.Fatalf("batch of %d exceeds MaxBatch 8", maxBatch.Load())
	}
}

func TestPoolLingerCoalesces(t *testing.T) {
	// With a generous linger and slow submission of n requests from one
	// goroutine followed by a burst, the burst must coalesce into few
	// batches.
	var batches atomic.Int64
	var served atomic.Int64
	p := NewPool(1, 16, 50*time.Millisecond, nil, func(b []int) {
		batches.Add(1)
		served.Add(int64(len(b)))
	})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Submit(1)
		}()
	}
	wg.Wait()
	p.Close()
	if served.Load() != 32 {
		t.Fatalf("served %d, want 32", served.Load())
	}
	if b := batches.Load(); b > 4 {
		t.Fatalf("32 concurrent requests ran in %d batches; linger should coalesce them into ≤4", b)
	}
}

func TestPoolCloseRejectsAndDrains(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var served atomic.Int64
	p := NewPool(1, 1, 0, nil, func(b []int) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		served.Add(int64(len(b)))
	})
	p.Submit(1)
	<-started
	p.Submit(2) // queued behind the in-flight batch
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	close(release)
	<-done
	if served.Load() != 2 {
		t.Fatalf("Close dropped queued work: served %d, want 2", served.Load())
	}
	if p.Submit(3) {
		t.Fatal("Submit accepted a request after Close")
	}
	p.Close() // idempotent
}

func TestPoolSubmitCtxGivesUpOnFullQueue(t *testing.T) {
	// One worker, no batching: channel capacity is 4. Block the worker and
	// fill the queue; a deadline-bounded submit must then give up with the
	// context error instead of pinning the caller.
	release := make(chan struct{})
	p := NewPool(1, 1, 0, nil, func(b []int) { <-release })
	defer func() {
		close(release)
		p.Close()
	}()
	deadline := time.After(5 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		ok, err := p.SubmitCtx(ctx, 1)
		cancel()
		if !ok {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("SubmitCtx error = %v, want context.DeadlineExceeded", err)
			}
			return // queue filled and the bounded submit gave up: pass
		}
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		default:
		}
	}
}

func TestPoolDropShedsStaleRequests(t *testing.T) {
	// Requests flagged stale must be consumed by drop without reaching run;
	// fresh requests interleaved with them must all be served.
	type req struct {
		stale bool
		v     int
	}
	var dropped, served atomic.Int64
	p := NewPool(1, 4, 0, func(r req) bool {
		if r.stale {
			dropped.Add(1)
			return true
		}
		return false
	}, func(b []req) {
		for _, r := range b {
			if r.stale {
				served.Add(100) // poison: a stale request reached run
			} else {
				served.Add(int64(r.v))
			}
		}
	})
	for i := 0; i < 20; i++ {
		p.Submit(req{stale: i%2 == 0, v: 1})
	}
	p.Close()
	if got := dropped.Load(); got != 10 {
		t.Fatalf("dropped %d stale requests, want 10", got)
	}
	if got := served.Load(); got != 10 {
		t.Fatalf("served sum %d, want 10 (fresh only)", got)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU[int, string](2)
	c.Add(1, "a")
	c.Add(2, "b")
	if _, ok := c.Get(1); !ok {
		t.Fatal("1 missing")
	}
	c.Add(3, "c") // evicts 2 (least recently used)
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("1 = %q,%v", v, ok)
	}
	if v, ok := c.Get(3); !ok || v != "c" {
		t.Fatalf("3 = %q,%v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", hits, misses)
	}
}

func TestLRUOverwrite(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Add("k", 1)
	c.Add("k", 2)
	if v, _ := c.Get("k"); v != 2 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestMetrics(t *testing.T) {
	m := NewMetrics()
	m.Observe("topk", 10*time.Millisecond, false)
	m.Observe("topk", 30*time.Millisecond, true)
	m.Observe("rank", 5*time.Millisecond, false)
	s := m.Snapshot()
	tk := s["topk"]
	if tk.Count != 2 || tk.Errors != 1 {
		t.Fatalf("topk count/errors = %d/%d", tk.Count, tk.Errors)
	}
	if tk.Max != 30*time.Millisecond {
		t.Fatalf("topk max = %v", tk.Max)
	}
	if tk.Avg != 20*time.Millisecond {
		t.Fatalf("topk avg = %v", tk.Avg)
	}
	if s["rank"].Count != 1 {
		t.Fatalf("rank count = %d", s["rank"].Count)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Observe("e", time.Microsecond, i%10 == 0)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()["e"]
	if s.Count != 4000 || s.Errors != 400 {
		t.Fatalf("count/errors = %d/%d, want 4000/400", s.Count, s.Errors)
	}
}
