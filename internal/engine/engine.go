// Package engine provides the concurrency substrate of the query-serving
// engine (wqrtq.Engine): a bounded worker pool that coalesces concurrent
// requests into batches, a generic LRU result cache, and per-endpoint
// latency counters.
//
// The pieces are deliberately generic and free of query semantics — the
// root package assembles them around an Index and decides how a batch of
// requests is merged (e.g. unioning the weight sets of concurrent reverse
// top-k requests against the same query point so one RTA run serves them
// all). Keeping the substrate here lets it be unit-tested in isolation and
// reused by future serving surfaces.
package engine
