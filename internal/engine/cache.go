package engine

import (
	"container/list"
	"sync"
)

// LRU is a mutex-guarded least-recently-used cache. The serving engine keys
// it by (snapshot epoch, exact query encoding), so entries for superseded
// snapshots simply age out as traffic moves to the new epoch.
type LRU[K comparable, V any] struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List
	items     map[K]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// NewLRU creates a cache holding up to capacity entries (capacity must be
// positive).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity <= 0 {
		panic("engine: LRU capacity must be positive")
	}
	return &LRU[K, V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[K]*list.Element, capacity),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *LRU[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Add stores a value, evicting the least recently used entry if full.
func (c *LRU[K, V]) Add(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry[K, V]).val = v
		return
	}
	el := c.ll.PushFront(&lruEntry[K, V]{key: k, val: v})
	c.items[k] = el
	if c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry[K, V]).key)
		c.evictions++
	}
}

// AddIf stores a value only when keep(k) still holds, evaluated under the
// cache lock, and reports whether the entry was deposited. It closes the
// race Add leaves open against a concurrent EvictIf: a computation keyed
// by a snapshot epoch can be superseded between finishing and depositing,
// and a plain Add would then strand an entry the sweep has already run
// past. With AddIf the predicate (typically "k's epoch is still current")
// and the insertion are atomic with respect to the sweep, so a deposit
// either lands while its epoch is live — and a later sweep removes it — or
// does not land at all.
func (c *LRU[K, V]) AddIf(k K, v V, keep func(K) bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !keep(k) {
		return false
	}
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry[K, V]).val = v
		return true
	}
	el := c.ll.PushFront(&lruEntry[K, V]{key: k, val: v})
	c.items[k] = el
	if c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry[K, V]).key)
		c.evictions++
	}
	return true
}

// EvictIf removes every entry whose key satisfies drop, returning how many
// were removed. The serving engine uses it to sweep entries of superseded
// snapshot epochs the moment a mutation publishes a new one, instead of
// letting dead entries occupy capacity until LRU pressure reaches them.
func (c *LRU[K, V]) EvictIf(drop func(K) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if k := el.Value.(*lruEntry[K, V]).key; drop(k) {
			c.ll.Remove(el)
			delete(c.items, k)
			n++
		}
		el = next
	}
	c.evictions += int64(n)
	return n
}

// Evictions returns the number of entries removed by capacity pressure and
// by EvictIf since the cache was created.
func (c *LRU[K, V]) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the lookup hit/miss counters. Lookups, not requests: a
// request that misses the engine's pre-submit fast path and again at batch
// execution counts two misses.
func (c *LRU[K, V]) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
