package engine

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Pool is a bounded worker pool that drains submitted requests in batches.
// A worker blocks for the first request of a batch; it then gathers more
// until MaxBatch is reached, the linger window expires, or (with no linger)
// the queue is momentarily empty. Batching is what lets the run callback
// amortize shared work — one snapshot load, merged index traversals — over
// many concurrent callers, trading a bounded amount of latency for
// throughput.
type Pool[R any] struct {
	ch       chan R
	run      func([]R)
	drop     func(R) bool
	maxBatch int
	linger   time.Duration

	mu      sync.RWMutex // guards closed vs sender registration
	closed  bool
	senders sync.WaitGroup // in-flight Submit sends; Close waits before close(ch)
	wg      sync.WaitGroup
}

// NewPool starts workers goroutines serving batches of at most maxBatch
// requests through run. workers <= 0 defaults to GOMAXPROCS; maxBatch <= 0
// defaults to 1 (no batching). linger > 0 makes a worker wait up to that
// long to fill its batch after the first request arrives; linger == 0
// batches only what is already queued.
//
// drop, when non-nil, is consulted as queued requests are gathered into a
// batch: returning true consumes the request without running it (the
// callback must answer the request's waiter itself, e.g. with its context's
// error). This is how stale work — requests whose deadline passed while
// queued — is shed before it costs an index traversal.
//
// run and drop are called from worker goroutines; run must not retain the
// batch slice.
func NewPool[R any](workers, maxBatch int, linger time.Duration, drop func(R) bool, run func([]R)) *Pool[R] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if maxBatch <= 0 {
		maxBatch = 1
	}
	p := &Pool[R]{
		ch:       make(chan R, 4*workers*maxBatch),
		run:      run,
		drop:     drop,
		maxBatch: maxBatch,
		linger:   linger,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Submit enqueues a request, blocking while the queue is full. It reports
// false (dropping the request) once the pool is closed.
func (p *Pool[R]) Submit(r R) bool {
	ok, _ := p.SubmitCtx(context.Background(), r)
	return ok
}

// SubmitCtx enqueues like Submit but gives up if ctx ends while the queue
// is full, so a deadline-bounded caller is never pinned behind a backlog.
// It returns (false, ctx.Err()) on cancellation and (false, nil) once the
// pool is closed.
func (p *Pool[R]) SubmitCtx(ctx context.Context, r R) (bool, error) {
	// Register as a sender under the read lock, then send with no lock
	// held: a queue-full send may block for a while, and blocking inside
	// the critical section would pin Close (and violate the lockhold
	// invariant — no channel ops under the engine mutexes). Close sets
	// closed under the write lock, so every sender registered here is
	// either observed by senders.Wait or saw closed and backed out; the
	// channel is closed only after all registered sends complete.
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return false, nil
	}
	p.senders.Add(1)
	p.mu.RUnlock()
	defer p.senders.Done()

	done := ctx.Done()
	if done == nil {
		p.ch <- r
		return true, nil
	}
	select {
	case p.ch <- r:
		return true, nil
	case <-done:
		return false, ctx.Err()
	}
}

// TrySubmit enqueues a request only if a queue slot is immediately free.
// It returns (true, true) on success, (false, true) when the queue is full
// — the admission-control signal: the caller sheds instead of parking a
// goroutine behind a backlog it may never clear — and (_, false) once the
// pool is closed.
func (p *Pool[R]) TrySubmit(r R) (queued, open bool) {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return false, false
	}
	p.senders.Add(1)
	p.mu.RUnlock()
	defer p.senders.Done()

	select {
	case p.ch <- r:
		return true, true
	default:
		return false, true
	}
}

// Close stops accepting requests, waits for the queue to drain and for all
// in-flight batches to finish. It is idempotent.
func (p *Pool[R]) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already {
		// New submitters now see closed; wait out the registered sends,
		// then close the drained-to channel. Workers are still consuming,
		// so blocked senders finish rather than deadlock.
		p.senders.Wait()
		close(p.ch)
	}
	p.wg.Wait()
}

func (p *Pool[R]) worker() {
	defer p.wg.Done()
	batch := make([]R, 0, p.maxBatch)
	for {
		r, ok := <-p.ch
		if !ok {
			return
		}
		if p.drop != nil && p.drop(r) {
			continue // consumed without work; block for the next request
		}
		batch = append(batch[:0], r)
		if p.linger > 0 && p.maxBatch > 1 {
			timer := time.NewTimer(p.linger)
		fill:
			for len(batch) < p.maxBatch {
				select {
				case r2, ok2 := <-p.ch:
					if !ok2 {
						break fill
					}
					if p.drop != nil && p.drop(r2) {
						continue
					}
					batch = append(batch, r2)
				case <-timer.C:
					break fill
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < p.maxBatch {
				select {
				case r2, ok2 := <-p.ch:
					if !ok2 {
						break drain
					}
					if p.drop != nil && p.drop(r2) {
						continue
					}
					batch = append(batch, r2)
				default:
					break drain
				}
			}
		}
		p.run(batch)
	}
}
