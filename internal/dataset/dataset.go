// Package dataset provides the data used by the paper's evaluation (§5.1):
// the synthetic Independent and Anti-correlated distributions, synthetic
// stand-ins for the two real datasets (NBA, 17K × 13, and Household,
// 127K × 6 — see DESIGN.md for the substitution rationale), CSV
// serialization, and the why-not workload generator that controls the
// "actual ranking of q under Wm" experimental parameter.
//
// All generators are deterministic in their seed. All attribute values are
// non-negative with smaller values preferable, matching §3.
package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"wqrtq/internal/rtree"
	"wqrtq/internal/vec"
)

// Dataset is an in-memory point collection; record ids are point indices.
type Dataset struct {
	Dim    int
	Points []vec.Point
	Name   string
}

// Tree bulk-loads an R-tree over the dataset.
func (ds *Dataset) Tree(opts ...rtree.Options) *rtree.Tree {
	return rtree.Bulk(ds.Points, nil, opts...)
}

// Independent draws every attribute independently and uniformly from [0, 1)
// (§5.1: "all attribute values are generated independently using a uniform
// distribution").
func Independent(n, d int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return &Dataset{Dim: d, Points: pts, Name: "independent"}
}

// Anticorrelated generates points close to the anti-diagonal hyperplane
// Σx = d/2 with small jitter, so that a point good in one dimension is bad
// in the others (§5.1).
func Anticorrelated(n, d int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		// Point on the plane Σx = d/2 via normalized exponentials...
		sum := 0.0
		for j := range p {
			p[j] = rng.ExpFloat64()
			sum += p[j]
		}
		for j := range p {
			p[j] = clamp01(p[j]/sum*float64(d)/2 + rng.NormFloat64()*0.05)
		}
		pts[i] = p
	}
	return &Dataset{Dim: d, Points: pts, Name: "anticorrelated"}
}

// Correlated generates points along the main diagonal with jitter: a point
// good in one dimension tends to be good in all.
func Correlated(n, d int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]vec.Point, n)
	for i := range pts {
		t := rng.Float64()
		p := make(vec.Point, d)
		for j := range p {
			p[j] = clamp01(t + rng.NormFloat64()*0.1)
		}
		pts[i] = p
	}
	return &Dataset{Dim: d, Points: pts, Name: "correlated"}
}

// NBALike is the synthetic stand-in for the paper's NBA dataset: 13
// positively correlated, heavy-tailed "cost-space" player statistics with
// heterogeneous per-dimension scales (a strong player scores low in every
// dimension, but dimensions retain independent noise). The default
// cardinality used by the paper is 17,000.
func NBALike(n int, seed int64) *Dataset {
	const d = 13
	rng := rand.New(rand.NewSource(seed))
	scales := make([]float64, d)
	for j := range scales {
		scales[j] = 1 + 9*rng.Float64()
	}
	pts := make([]vec.Point, n)
	for i := range pts {
		talent := rng.Float64()
		talent *= talent // heavy tail: few excellent players
		p := make(vec.Point, d)
		for j := range p {
			noise := 0.25 * rng.NormFloat64()
			v := (talent + 0.35*rng.Float64() + noise) * scales[j]
			if v < 0 {
				v = 0
			}
			p[j] = v
		}
		pts[i] = p
	}
	return &Dataset{Dim: d, Points: pts, Name: "nba"}
}

// HouseholdLike is the synthetic stand-in for the paper's Household
// dataset: 6 expenditure shares of an annual income. Shares compete for the
// same budget, giving the mild anti-correlation of the real data. The
// paper's cardinality is 127,000.
func HouseholdLike(n int, seed int64) *Dataset {
	const d = 6
	rng := rand.New(rand.NewSource(seed))
	// Long-run average share per expenditure type.
	priors := [d]float64{0.30, 0.20, 0.15, 0.15, 0.12, 0.08}
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		sum := 0.0
		for j := range p {
			p[j] = rng.ExpFloat64() * priors[j]
			sum += p[j]
		}
		for j := range p {
			p[j] = p[j] / sum * 100 // percentage of income
		}
		pts[i] = p
	}
	return &Dataset{Dim: d, Points: pts, Name: "household"}
}

// ByName builds one of the named distributions. The real-data stand-ins
// (nba, household) have fixed dimensionality; d is ignored for them.
func ByName(name string, n, d int, seed int64) (*Dataset, error) {
	switch name {
	case "independent":
		return Independent(n, d, seed), nil
	case "anticorrelated":
		return Anticorrelated(n, d, seed), nil
	case "correlated":
		return Correlated(n, d, seed), nil
	case "nba":
		return NBALike(n, seed), nil
	case "household":
		return HouseholdLike(n, seed), nil
	case "clustered":
		return Clustered(n, d, 5, seed), nil
	}
	return nil, fmt.Errorf("dataset: unknown distribution %q", name)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// WriteCSV writes the points, one row per point.
func (ds *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rec := make([]string, ds.Dim)
	for _, p := range ds.Points {
		for j, v := range p {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV (or any numeric CSV with one
// point per row).
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	var pts []vec.Point
	dim := -1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if dim == -1 {
			dim = len(rec)
		} else if len(rec) != dim {
			return nil, errors.New("dataset: ragged CSV rows")
		}
		p := make(vec.Point, dim)
		for j, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d: %w", len(pts)+1, err)
			}
			p[j] = v
		}
		pts = append(pts, p)
	}
	if len(pts) == 0 {
		return nil, errors.New("dataset: empty CSV")
	}
	return &Dataset{Dim: dim, Points: pts, Name: "csv"}, nil
}

// Clustered generates points in Gaussian clusters around random centers, a
// common skyline/preference-query stress distribution complementing the
// paper's Independent and Anti-correlated sets.
func Clustered(n, d, clusters int, seed int64) *Dataset {
	if clusters < 1 {
		clusters = 1
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([]vec.Point, clusters)
	for i := range centers {
		c := make(vec.Point, d)
		for j := range c {
			c[j] = 0.15 + 0.7*rng.Float64()
		}
		centers[i] = c
	}
	pts := make([]vec.Point, n)
	for i := range pts {
		c := centers[rng.Intn(clusters)]
		p := make(vec.Point, d)
		for j := range p {
			p[j] = clamp01(c[j] + rng.NormFloat64()*0.05)
		}
		pts[i] = p
	}
	return &Dataset{Dim: d, Points: pts, Name: "clustered"}
}
