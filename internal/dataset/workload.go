package dataset

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"wqrtq/internal/sample"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// Workload is one why-not question instance: a query point whose actual
// ranking under a base preference is controlled (the paper's "actual
// ranking of q under Wm" parameter, Table 1), and a set of why-not
// weighting vectors under which q misses the reverse top-k result.
type Workload struct {
	Q           vec.Point
	Wm          []vec.Weight
	K           int
	BaseWeight  vec.Weight
	ActualRanks []int // rank of Q under each Wm[i]
}

// MakeWhyNot builds a workload over ds with the given k, target ranking and
// why-not set size. The query point is synthesized next to the point ranked
// targetRank-th under a random base preference, then the why-not vectors
// are small perturbations of that preference, accepted only when q is
// genuinely missing from their top-k (rank > k).
func MakeWhyNot(ds *Dataset, k, targetRank, nWm int, seed int64) (Workload, error) {
	if targetRank <= k {
		return Workload{}, fmt.Errorf("dataset: target rank %d must exceed k %d", targetRank, k)
	}
	if targetRank > len(ds.Points) {
		return Workload{}, fmt.Errorf("dataset: target rank %d exceeds |P| = %d", targetRank, len(ds.Points))
	}
	if nWm <= 0 {
		return Workload{}, errors.New("dataset: need at least one why-not vector")
	}
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; attempt < 32; attempt++ {
		base := sample.RandSimplex(rng, ds.Dim)
		q := synthesizeAtRank(ds, base, targetRank)
		if q == nil {
			continue
		}
		actual := topk.RankNaive(ds.Points, base, vec.Score(base, q))
		if actual <= k {
			continue
		}
		wm := make([]vec.Weight, 0, nWm)
		ranks := make([]int, 0, nWm)
		for tries := 0; len(wm) < nWm && tries < 64*nWm; tries++ {
			w := perturbWeight(rng, base, 0.05)
			r := topk.RankNaive(ds.Points, w, vec.Score(w, q))
			if r > k {
				wm = append(wm, w)
				ranks = append(ranks, r)
			}
		}
		if len(wm) < nWm {
			continue
		}
		return Workload{Q: q, Wm: wm, K: k, BaseWeight: base, ActualRanks: ranks}, nil
	}
	return Workload{}, errors.New("dataset: failed to synthesize a why-not workload; try a larger dataset or smaller target rank")
}

// synthesizeAtRank returns a fresh point whose ranking under w is exactly
// targetRank: a copy of the targetRank-th point shrunk by an epsilon, so
// that exactly targetRank-1 points score strictly better (up to ties in the
// underlying data, which the caller re-checks).
func synthesizeAtRank(ds *Dataset, w vec.Weight, targetRank int) vec.Point {
	scores := make([]float64, len(ds.Points))
	idx := make([]int, len(ds.Points))
	for i, p := range ds.Points {
		scores[i] = vec.Score(w, p)
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	anchor := ds.Points[idx[targetRank-1]]
	q := vec.Clone(anchor)
	nonzero := false
	for i := range q {
		q[i] *= 1 - 1e-9
		if q[i] > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		return nil // the anchor is the origin; shrinking cannot help
	}
	return q
}

// perturbWeight adds truncated Gaussian noise to a weighting vector and
// re-normalizes onto the simplex.
func perturbWeight(rng *rand.Rand, w vec.Weight, sigma float64) vec.Weight {
	out := make(vec.Weight, len(w))
	sum := 0.0
	for i := range w {
		v := w[i] + rng.NormFloat64()*sigma
		if v < 1e-4 {
			v = 1e-4
		}
		out[i] = v
		sum += v
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
