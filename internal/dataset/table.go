package dataset

// ReadTable: a tolerant loader for real-world tabular CSVs (NBA game logs,
// UCI household power readings, and the like), which — unlike the strict
// ReadCSV format — carry header rows, label columns (player, team, date)
// and occasional malformed lines. The paper's evaluation uses such tables
// directly; this loader extracts the numeric sub-matrix deterministically:
//
//  1. rows in which no field parses as a number (headers, comments,
//     blank lines) are dropped;
//  2. among the surviving rows, the most common field count wins and
//     rows of any other width are dropped (truncated/ragged lines);
//  3. a column is kept iff it parses as a finite number in every
//     surviving row — label and partially-numeric columns are dropped.
//
// The result is every fully-numeric column of every well-formed data row,
// in original column order.

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"wqrtq/internal/vec"
)

// TableInfo reports what ReadTable kept and dropped, so callers can log
// how much of a messy file actually loaded.
type TableInfo struct {
	RowsRead    int   // data rows kept
	RowsDropped int   // header/ragged/non-numeric rows skipped
	Columns     []int // original indices of the kept (fully numeric) columns
}

func numeric(s string) (float64, bool) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// ReadTable extracts the numeric sub-matrix of a real-world CSV table. It
// fails only when nothing usable remains: no data rows, or no column that
// is numeric across every data row.
func ReadTable(r io.Reader) (*Dataset, *TableInfo, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // real tables are ragged; widths are arbitrated below
	var rows [][]string
	dropped := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		hasNumeric := false
		for _, f := range rec {
			if _, ok := numeric(f); ok {
				hasNumeric = true
				break
			}
		}
		if !hasNumeric {
			dropped++ // header, comment or empty line
			continue
		}
		rows = append(rows, append([]string(nil), rec...))
	}
	if len(rows) == 0 {
		return nil, nil, errors.New("dataset: table has no numeric rows")
	}

	// Arbitrate the row width: the most common field count is the table's
	// true shape; anything else is a truncated or over-split line.
	widths := map[int]int{}
	maxW := 0
	for _, rec := range rows {
		widths[len(rec)]++
		if len(rec) > maxW {
			maxW = len(rec)
		}
	}
	width, best := 0, 0
	for w := 1; w <= maxW; w++ { // deterministic scan, no map-order dependence
		if widths[w] > best {
			width, best = w, widths[w]
		}
	}
	kept := rows[:0]
	for _, rec := range rows {
		if len(rec) == width {
			kept = append(kept, rec)
		} else {
			dropped++
		}
	}
	rows = kept

	numericCol := make([]bool, width)
	for j := range numericCol {
		numericCol[j] = true
	}
	for _, rec := range rows {
		for j, f := range rec {
			if numericCol[j] {
				if _, ok := numeric(f); !ok {
					numericCol[j] = false
				}
			}
		}
	}
	var cols []int
	for j, ok := range numericCol {
		if ok {
			cols = append(cols, j)
		}
	}
	if len(cols) == 0 {
		return nil, nil, errors.New("dataset: no column is numeric in every data row")
	}

	pts := make([]vec.Point, len(rows))
	for i, rec := range rows {
		p := make(vec.Point, len(cols))
		for jj, j := range cols {
			v, ok := numeric(rec[j])
			if !ok {
				return nil, nil, fmt.Errorf("dataset: internal: row %d col %d not numeric", i, j)
			}
			p[jj] = v
		}
		pts[i] = p
	}
	ds := &Dataset{Dim: len(cols), Points: pts, Name: "table"}
	return ds, &TableInfo{RowsRead: len(rows), RowsDropped: dropped, Columns: cols}, nil
}
