package dataset

import (
	"strings"
	"testing"
)

func TestReadTableNBAStyle(t *testing.T) {
	// Header row, label columns, one ragged line, one row where a usually-
	// numeric column goes non-numeric (drops the whole column, not the row).
	csv := `player,team,gp,pts,reb,ast
"Jordan, M",CHI,82,32.5,6.6,8.0
Pippen,CHI,82,21.0,7.7,7.0
Grant,CHI,80,12.8,8.5
Kukoc,CHI,75,18.5,7.0,5.3
Rodman,DET,77,DNP,18.7,2.5
`
	ds, info, err := ReadTable(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	// "Grant" is ragged (5 fields) and dropped; "DNP" kills the pts column;
	// player/team are label columns. Kept: gp, reb, ast over 4 rows.
	if info.RowsRead != 4 || info.RowsDropped != 2 {
		t.Fatalf("info = %+v", info)
	}
	wantCols := []int{2, 4, 5}
	if len(info.Columns) != len(wantCols) {
		t.Fatalf("columns = %v, want %v", info.Columns, wantCols)
	}
	for i, c := range wantCols {
		if info.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", info.Columns, wantCols)
		}
	}
	if ds.Dim != 3 || len(ds.Points) != 4 {
		t.Fatalf("dataset %d×%d", len(ds.Points), ds.Dim)
	}
	if got := ds.Points[0]; got[0] != 82 || got[1] != 6.6 || got[2] != 8.0 {
		t.Fatalf("first point %v", got)
	}
}

func TestReadTablePureNumeric(t *testing.T) {
	// A strict WriteCSV-style file loads unchanged.
	ds0 := Independent(30, 4, 3)
	var sb strings.Builder
	if err := ds0.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	ds, info, err := ReadTable(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if info.RowsRead != 30 || info.RowsDropped != 0 || ds.Dim != 4 {
		t.Fatalf("info = %+v, dim = %d", info, ds.Dim)
	}
	for i, p := range ds.Points {
		for j := range p {
			if p[j] != ds0.Points[i][j] {
				t.Fatalf("point %d differs: %v vs %v", i, p, ds0.Points[i])
			}
		}
	}
}

func TestReadTableRejectsUnusable(t *testing.T) {
	for _, bad := range []string{
		"",
		"a,b,c\nx,y,z\n",
		"name\nalice\nbob\n",
	} {
		if _, _, err := ReadTable(strings.NewReader(bad)); err == nil {
			t.Fatalf("ReadTable(%q) succeeded", bad)
		}
	}
}
