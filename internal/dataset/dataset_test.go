package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// pearson computes the correlation of two attribute columns.
func pearson(ds *Dataset, a, b int) float64 {
	n := float64(len(ds.Points))
	var ma, mb float64
	for _, p := range ds.Points {
		ma += p[a]
		mb += p[b]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for _, p := range ds.Points {
		da, db := p[a]-ma, p[b]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	return cov / math.Sqrt(va*vb)
}

func allNonNegative(t *testing.T, ds *Dataset) {
	t.Helper()
	for i, p := range ds.Points {
		if err := vec.ValidatePoint(p); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
	}
}

func TestIndependentShape(t *testing.T) {
	ds := Independent(5000, 3, 1)
	if len(ds.Points) != 5000 || ds.Dim != 3 {
		t.Fatalf("shape = %d×%d", len(ds.Points), ds.Dim)
	}
	allNonNegative(t, ds)
	// Independent columns: |correlation| small.
	if c := pearson(ds, 0, 1); math.Abs(c) > 0.06 {
		t.Errorf("independent correlation = %v, want ~0", c)
	}
}

func TestAnticorrelatedIsAnticorrelated(t *testing.T) {
	ds := Anticorrelated(5000, 2, 2)
	allNonNegative(t, ds)
	if c := pearson(ds, 0, 1); c > -0.5 {
		t.Errorf("anticorrelated correlation = %v, want strongly negative", c)
	}
}

func TestCorrelatedIsCorrelated(t *testing.T) {
	ds := Correlated(5000, 3, 3)
	allNonNegative(t, ds)
	if c := pearson(ds, 0, 2); c < 0.5 {
		t.Errorf("correlated correlation = %v, want strongly positive", c)
	}
}

func TestNBALikeShape(t *testing.T) {
	ds := NBALike(2000, 4)
	if ds.Dim != 13 {
		t.Fatalf("NBA dim = %d, want 13", ds.Dim)
	}
	allNonNegative(t, ds)
	// Player statistics share a talent factor: positive correlation.
	if c := pearson(ds, 0, 5); c < 0.3 {
		t.Errorf("NBA-like correlation = %v, want positive", c)
	}
}

func TestHouseholdLikeShape(t *testing.T) {
	ds := HouseholdLike(3000, 5)
	if ds.Dim != 6 {
		t.Fatalf("Household dim = %d, want 6", ds.Dim)
	}
	allNonNegative(t, ds)
	// Shares sum to 100 per tuple.
	for i, p := range ds.Points {
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-100) > 1e-9 {
			t.Fatalf("point %d shares sum to %v, want 100", i, sum)
		}
	}
	// Competing shares: negative correlation.
	if c := pearson(ds, 0, 1); c > 0 {
		t.Errorf("household correlation = %v, want negative", c)
	}
}

func TestDeterminismBySeed(t *testing.T) {
	a := Independent(100, 3, 42)
	b := Independent(100, 3, 42)
	for i := range a.Points {
		if !vec.Equal(a.Points[i], b.Points[i]) {
			t.Fatal("same seed produced different datasets")
		}
	}
	c := Independent(100, 3, 43)
	same := true
	for i := range a.Points {
		if !vec.Equal(a.Points[i], c.Points[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"independent", "anticorrelated", "correlated", "nba", "household"} {
		ds, err := ByName(name, 50, 3, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ds.Points) != 50 {
			t.Fatalf("%s: %d points", name, len(ds.Points))
		}
	}
	if _, err := ByName("bogus", 10, 2, 1); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := Independent(200, 4, 7)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != 4 || len(got.Points) != 200 {
		t.Fatalf("round trip shape = %d×%d", len(got.Points), got.Dim)
	}
	for i := range ds.Points {
		if !vec.Equal(ds.Points[i], got.Points[i]) {
			t.Fatalf("point %d differs after round trip", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n")); err == nil {
		t.Error("non-numeric CSV accepted")
	}
}

func TestMakeWhyNotControlsRank(t *testing.T) {
	ds := Independent(5000, 3, 11)
	for _, target := range []int{11, 101, 501} {
		wl, err := MakeWhyNot(ds, 10, target, 2, 5)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		// The base-preference ranking must be close to the target (exact up
		// to data ties).
		got := topk.RankNaive(ds.Points, wl.BaseWeight, vec.Score(wl.BaseWeight, wl.Q))
		if got < target-1 || got > target+1 {
			t.Errorf("target %d: base rank = %d", target, got)
		}
		// Every why-not vector must genuinely miss q from its top-k.
		if len(wl.Wm) != 2 {
			t.Fatalf("target %d: |Wm| = %d", target, len(wl.Wm))
		}
		for i, w := range wl.Wm {
			r := topk.RankNaive(ds.Points, w, vec.Score(w, wl.Q))
			if r <= wl.K {
				t.Errorf("target %d: Wm[%d] has rank %d <= k", target, i, r)
			}
			if r != wl.ActualRanks[i] {
				t.Errorf("target %d: recorded rank %d != actual %d", target, wl.ActualRanks[i], r)
			}
		}
	}
}

func TestMakeWhyNotValidation(t *testing.T) {
	ds := Independent(100, 2, 1)
	if _, err := MakeWhyNot(ds, 10, 5, 1, 1); err == nil {
		t.Error("target rank <= k accepted")
	}
	if _, err := MakeWhyNot(ds, 10, 1000, 1, 1); err == nil {
		t.Error("target rank > |P| accepted")
	}
	if _, err := MakeWhyNot(ds, 10, 50, 0, 1); err == nil {
		t.Error("nWm = 0 accepted")
	}
}

func TestTreeConstruction(t *testing.T) {
	ds := Independent(1000, 3, 9)
	tr := ds.Tree()
	if tr.Len() != 1000 || tr.Dim() != 3 {
		t.Fatalf("tree shape %d×%d", tr.Len(), tr.Dim())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredShape(t *testing.T) {
	ds := Clustered(3000, 3, 4, 8)
	if len(ds.Points) != 3000 || ds.Dim != 3 {
		t.Fatalf("shape = %d×%d", len(ds.Points), ds.Dim)
	}
	allNonNegative(t, ds)
	// Clustering: average nearest-neighbor distance much smaller than for
	// uniform data of the same size.
	meanNN := func(d *Dataset) float64 {
		sum := 0.0
		for i := 0; i < 200; i++ {
			best := math.Inf(1)
			for j, p := range d.Points {
				if j == i {
					continue
				}
				if dd := vecDist(d.Points[i], p); dd < best {
					best = dd
				}
			}
			sum += best
		}
		return sum / 200
	}
	uni := Independent(3000, 3, 8)
	if meanNN(ds) >= meanNN(uni) {
		t.Error("clustered data not denser than uniform")
	}
	if _, err := ByName("clustered", 50, 3, 1); err != nil {
		t.Errorf("ByName(clustered): %v", err)
	}
}

func vecDist(a, b vec.Point) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
