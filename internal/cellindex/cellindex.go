// Package cellindex implements the epoch-cached materialized reverse-top-k
// cell index (after Chester et al., "Indexing Reverse Top-k Queries"): a
// per-(snapshot, k) grid over the weighting simplex whose cells carry
// precomputed candidate top-k supersets, so a bichromatic reverse top-k
// evaluates each weighting vector against a tiny cell-local candidate list
// instead of sweeping the whole k-skyband.
//
// # Cells
//
// The simplex {w : w_j >= 0, Σw_j = 1} is gridded at power-of-two
// resolution R over its first d-1 coordinates: cell (c_0, …, c_{d-2})
// covers w_j ∈ [c_j/R, (c_j+1)/R] for j < d-1, and the last coordinate's
// bounds derive from the simplex constraint (lo_last = 1 - Σhi_j - slack,
// hi_last = 1 - Σlo_j + slack, where the slack absorbs the weight-sum
// validation tolerance and the float rounding of w_last itself). Every
// lookup re-checks the queried weight against the stored per-coordinate
// bounds — point location never trusts the floor arithmetic alone, so a
// weight that rounds across a cell edge falls back to the legacy path
// instead of being answered from the wrong cell.
//
// # Candidate supersets — the float-airtight exclusion rule
//
// For a cell with per-coordinate bounds [lo, hi] and any w inside them,
// every point p (coordinates non-negative by NewIndex validation)
// satisfies, in pure float64 arithmetic,
//
//	fl(f(lo, p)) <= fl(f(w, p)) <= fl(f(hi, p))
//
// because each product w_j·p_j is bracketed termwise (float multiplication
// by a non-negative p_j is monotone in w_j) and vec.Score's left-to-right
// float addition is monotone in each addend. No real-arithmetic or
// convex-hull reasoning is needed — the bracketing holds for the floats
// the kernel actually computes.
//
// A basis point p is therefore excluded from a cell's candidate list iff
// at least k basis points p' satisfy fl(f(hi, p')) < fl(f(lo, p)): each
// such p' strictly beats p at every float w in the cell
// (fl(f(w, p')) <= fl(f(hi, p')) < fl(f(lo, p)) <= fl(f(w, p))), so p can
// never be in any top-k there, let alone decide q's membership. Duplicate
// points never exclude each other — their equal scores fail the strict
// test.
//
// # Count preservation
//
// The membership test "fewer than k candidates score strictly below
// f(w, q)" decides exactly as the basis would, for every w inside the
// cell's bounds: if the basis count is below k, every basis beater of q
// has fewer than k beaters of its own (strict < on fl scores is
// transitive), so none is excluded and the candidate count equals the
// basis count; if the basis count is at least k, the k smallest-scoring
// basis beaters of q are themselves unexcluded (a point with fewer than k
// everywhere-beaters survives) and keep the candidate count at >= k. The
// basis is the k-skyband band of the snapshot (itself count-preserving
// against the full dataset — see internal/skyband), so the composed test
// is bit-identical to RTA over the full tree. Candidates are stored
// sorted by their hi-corner score, so the capped counting scan meets the
// cell's everywhere-beaters first and exits after ~k points for
// non-member weights.
//
// # Lifecycle
//
// A Cache owns the grids of one snapshot, mirroring skyband.Cache: grids
// build lazily, once per (snapshot, k), shared by all readers via
// sync.Once; invalidation is the copy-on-write epoch bump (clones and
// in-place mutations swap in a fresh Cache over the fresh skyband cache).
// Cumulative counters survive across epochs through the shared Counters.
package cellindex

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"wqrtq/internal/kernel"
	"wqrtq/internal/skyband"
	"wqrtq/internal/vec"
)

// MaxBasis is the largest basis (k-skyband band) size a grid is built
// over: beyond it the per-cell supersets stop being "tiny" relative to
// the blocked kernel sweep and the build cost stops amortizing, so Grid
// declines and the caller stays on the kernel/RTA paths.
const MaxBasis = 4096

// maxGrids caps how many distinct k values one snapshot caches grids for;
// requests beyond the cap fall back rather than grow the cache without
// bound (mirrors skyband's maxBands).
const maxGrids = 8

// maxCandidates bounds the total candidate storage of one grid. A build
// that would exceed it (large k relative to the basis makes every cell
// hold nearly the whole basis) aborts and the cache serves nil — the
// fallback paths answer identically, just without the cell win.
const maxCandidates = 1 << 20

// boundSlack widens the derived last-coordinate bounds of every cell. It
// absorbs the |Σw - 1| <= 1e-9 tolerance of vec.ValidateWeight plus the
// float rounding of the bound arithmetic itself; correctness never
// depends on its size (lookups re-check the stored bounds), only the
// fallback rate does.
const boundSlack = 1e-6

// resolutionFor picks the grid resolution per dimensionality: fine enough
// that per-cell supersets shrink to O(k) on benchmark-sized bands, coarse
// enough that the cell count (res^(d-1), simplex-clipped) stays small.
func resolutionFor(d int) int {
	switch d {
	case 2:
		return 128
	case 3:
		return 64
	default:
		return 16
	}
}

// Grid is the materialized cell index of one (snapshot, k). Grids are
// immutable after construction and safe for concurrent use.
type Grid struct {
	k, dim, res int
	basisSize   int
	basis       *kernel.Coords // the flattened band, shared with the blocked kernel
	nBase       int            // res^(dim-1) base cells over the first dim-1 coordinates
	// bounds holds per base cell 2*dim floats, interleaved per coordinate:
	// lo_0, hi_0, lo_1, hi_1, …, lo_{dim-1}, hi_{dim-1}. The interleaving
	// lets locate's bounds re-check walk one slice in constant-stride
	// lockstep (b[0], b[1], b = b[2:]), which the prove pass verifies
	// bounds-check-free. Unbuilt (simplex-unreachable) cells keep zero
	// bounds, which no valid weight can satisfy.
	bounds []float64
	// cellOff[c] .. cellOff[c+1] delimit cell c's candidate rows in cols.
	// Built cells are never empty (at least min(basisSize, k) candidates
	// survive exclusion), so an empty range marks an unreachable cell.
	cellOff []int32
	// cols are the dim coordinate columns of the concatenated per-cell
	// candidate segments, each segment sorted by hi-corner score ascending.
	cols  [][]float64
	cells int // built (non-empty) cells
	cands int // total stored candidate rows
}

// K returns the query parameter the grid was built for.
func (g *Grid) K() int { return g.k }

// Dim returns the dimensionality.
func (g *Grid) Dim() int { return g.dim }

// Res returns the grid resolution per gridded coordinate.
func (g *Grid) Res() int { return g.res }

// BasisSize returns the size of the basis candidate set (the k-skyband
// band the grid was built over).
func (g *Grid) BasisSize() int { return g.basisSize }

// Basis returns the flattened basis coordinates (band visit order, shared
// with the blocked kernel paths).
func (g *Grid) Basis() *kernel.Coords { return g.basis }

// NumCells returns the number of built cells.
func (g *Grid) NumCells() int { return g.cells }

// NumCandidates returns the total candidate rows across all cells.
func (g *Grid) NumCandidates() int { return g.cands }

// Cells iterates the built cells in flat index order: lo and hi are the
// cell's per-coordinate bounds (len dim, de-interleaved from grid storage
// into scratch reused across calls) and cand its candidate coordinate
// columns (dim slices of equal length, hi-corner-score order). All slices
// are valid only during the callback.
func (g *Grid) Cells(fn func(lo, hi []float64, cand [][]float64)) {
	cand := make([][]float64, g.dim)
	lo := make([]float64, g.dim)
	hi := make([]float64, g.dim)
	for c := 0; c < g.nBase; c++ {
		s, e := g.cellOff[c], g.cellOff[c+1]
		if s == e {
			continue
		}
		for j := 0; j < g.dim; j++ {
			cand[j] = g.cols[j][s:e]
		}
		b := g.bounds[c*2*g.dim : (c+1)*2*g.dim]
		for j := 0; j < g.dim; j++ {
			lo[j], hi[j] = b[2*j], b[2*j+1]
		}
		fn(lo, hi, cand)
	}
}

// locate returns the flat cell index containing w, or -1 when w falls
// outside its floor-located cell's stored bounds (float rounding across a
// cell edge, an invalid weight, an unreachable cell) — the caller must
// fall back to a legacy path, which answers identically.
//
//wqrtq:hotpath
//wqrtq:contract noescape(g,w) nobce noalloc
func (g *Grid) locate(w []float64) int {
	d := g.dim
	if d < 1 || len(w) < d {
		return -1
	}
	w = w[:d]
	res := g.res
	rf := float64(res)
	idx, stride := 0, 1
	for _, wj := range w[:d-1] {
		c := int(wj * rf)
		if c < 0 {
			c = 0
		} else if c >= res {
			c = res - 1
		}
		idx += c * stride
		stride *= res
	}
	// Two-step slice: re-anchor the offset pair at idx and length-check the
	// remainder, the one shape the prove pass verifies for an idx/idx+1
	// pair load. idx >= 0 was established digit by digit but the proof does
	// not survive the accumulation, so the guard re-checks it.
	off := g.cellOff
	if idx < 0 || idx >= len(off) {
		return -1
	}
	o := off[idx:]
	if len(o) < 2 {
		return -1
	}
	if o[1] == o[0] {
		return -1
	}
	bo := idx * 2 * d
	bs := g.bounds
	if bo < 0 || bo > len(bs) {
		return -1
	}
	b := bs[bo:]
	for _, wj := range w {
		if len(b) < 2 || wj < b[0] || wj > b[1] {
			return -1
		}
		b = b[2:]
	}
	return idx
}

// CountBelowCapped counts the candidates of w's cell scoring strictly
// below fq, giving up once the count exceeds cap (the count is exact when
// <= cap and cap+1 otherwise, exactly like kernel.CountBelowCapped).
// scanned reports the candidate rows examined; ok is false when w could
// not be located, in which case the caller must use a fallback path. The
// scan allocates nothing and uses vec.Score's arithmetic order, so an
// uncapped count is bit-identical to a scalar scan of the cell.
//
//wqrtq:hotpath
//wqrtq:contract noescape(g,w) nobce noalloc
func (g *Grid) CountBelowCapped(w []float64, fq float64, cap int) (count, scanned int, ok bool) {
	ci := g.locate(w)
	off := g.cellOff
	// locate guarantees the offset pair exists on success, but the proof
	// does not survive the call boundary, so the window fetch re-guards
	// with the same two-step slice shape locate uses.
	if ci < 0 || ci >= len(off) {
		return 0, 0, false
	}
	o := off[ci:]
	if len(o) < 2 {
		return 0, 0, false
	}
	s, e := int(o[0]), int(o[1])
	// Each specialization slices every column to the [s,e) window under one
	// guard; after that the windows share x's range-proved index. Dispatch
	// is on len(cols) (== dim by construction) so the column fetches are
	// bounds-check-free too.
	cols := g.cols
	switch len(cols) {
	case 2:
		x, y := cols[0], cols[1]
		if s < 0 || e < s || e > len(x) || e > len(y) || len(w) < 2 {
			return 0, 0, false
		}
		x, y = x[s:e], y[s:e]
		w0, w1 := w[0], w[1]
		for i, xi := range x {
			sc := w0 * xi
			sc += w1 * y[i]
			if sc < fq {
				count++
				if count > cap {
					return count, i + 1, true
				}
			}
		}
	case 3:
		x, y, z := cols[0], cols[1], cols[2]
		if s < 0 || e < s || e > len(x) || e > len(y) || e > len(z) || len(w) < 3 {
			return 0, 0, false
		}
		x, y, z = x[s:e], y[s:e], z[s:e]
		w0, w1, w2 := w[0], w[1], w[2]
		for i, xi := range x {
			sc := w0 * xi
			sc += w1 * y[i]
			sc += w2 * z[i]
			if sc < fq {
				count++
				if count > cap {
					return count, i + 1, true
				}
			}
		}
	case 4:
		x, y, z, u := cols[0], cols[1], cols[2], cols[3]
		if s < 0 || e < s || e > len(x) || e > len(y) || e > len(z) || e > len(u) || len(w) < 4 {
			return 0, 0, false
		}
		x, y, z, u = x[s:e], y[s:e], z[s:e], u[s:e]
		w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
		for i, xi := range x {
			sc := w0 * xi
			sc += w1 * y[i]
			sc += w2 * z[i]
			sc += w3 * u[i]
			if sc < fq {
				count++
				if count > cap {
					return count, i + 1, true
				}
			}
		}
	default:
		// build admits only dim 2..4; an impossible shape falls back
		// rather than panicking on the query path.
		return 0, 0, false
	}
	return count, e - s, true
}

// ReverseTopK answers the bichromatic reverse top-k over the grid: result
// holds the ascending indices of the weights whose capped cell count
// stays below k, scanned totals the candidate rows examined (for the
// kernel work counters), and ok is false when any weight failed point
// location — the caller must then re-run the whole query on a legacy
// path, keeping the answer deterministic. ctx is polled periodically.
func (g *Grid) ReverseTopK(ctx context.Context, W []vec.Weight, q vec.Point, k int) (result []int, scanned int, ok bool, err error) {
	for wi, w := range W {
		if wi&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, scanned, false, err
			}
		}
		fq := vec.Score(w, q)
		cnt, sc, located := g.CountBelowCapped(w, fq, k-1)
		if !located {
			return nil, scanned, false, nil
		}
		scanned += sc
		if cnt < k {
			result = append(result, wi)
		}
	}
	return result, scanned, true, nil
}

// build constructs the grid over basis band b, or returns nil when the
// configuration is ineligible (dimensionality outside 2..4, basis too
// large, or candidate storage would blow past maxCandidates).
//
//wqrtq:prealloc
func build(b *skyband.Band, k, dim int) *Grid {
	if dim < 2 || dim > 4 || b.Size() == 0 || b.Size() > MaxBasis {
		return nil
	}
	basis := b.Coords()
	m := basis.Len()
	res := resolutionFor(dim)
	nBase := 1
	for j := 0; j < dim-1; j++ {
		nBase *= res
	}
	g := &Grid{
		k: k, dim: dim, res: res,
		basisSize: m,
		basis:     basis,
		nBase:     nBase,
		bounds:    make([]float64, nBase*2*dim),
		cellOff:   make([]int32, nBase+1),
		cols:      make([][]float64, dim),
	}
	scores := make([]float64, 2*m) // lo-corner scores then hi-corner scores
	sortedHi := make([]float64, m)
	order := make([]int, 0, m)
	wb := make([]float64, 2*dim)
	lo, hi := wb[:dim], wb[dim:]
	for c := 0; c < nBase; c++ {
		g.cellOff[c+1] = g.cellOff[c]
		// Decode the cell digits and derive the per-coordinate bounds.
		digitSum, rem := 0, c
		sumLo, sumHi := 0.0, 0.0
		for j := 0; j < dim-1; j++ {
			cj := rem % res
			rem /= res
			digitSum += cj
			lo[j] = float64(cj) / float64(res)
			hi[j] = float64(cj+1) / float64(res)
			sumLo += lo[j]
			sumHi += hi[j]
		}
		if digitSum > res {
			continue // cell lies entirely outside the simplex
		}
		lo[dim-1] = 1 - sumHi - boundSlack
		if lo[dim-1] < 0 {
			lo[dim-1] = 0
		}
		hi[dim-1] = 1 - sumLo + boundSlack
		if hi[dim-1] < 0 {
			continue
		}
		// Score the basis at both corners in one blocked sweep, then apply
		// the exclusion rule: p is out iff >= k points' hi-corner scores
		// sit strictly below p's lo-corner score.
		kernel.ScoreBlock(basis, wb, 2, scores)
		lows, highs := scores[:m], scores[m:]
		copy(sortedHi, highs)
		sort.Float64s(sortedHi)
		order = order[:0]
		for i := 0; i < m; i++ {
			if sort.SearchFloat64s(sortedHi, lows[i]) < k {
				order = append(order, i)
			}
		}
		sort.Slice(order, func(a, b int) bool { return highs[order[a]] < highs[order[b]] })
		if g.cands+len(order) > maxCandidates {
			return nil
		}
		for j := 0; j < dim; j++ {
			col := basis.Col(j)
			for _, i := range order {
				g.cols[j] = append(g.cols[j], col[i])
			}
		}
		g.cands += len(order)
		g.cellOff[c+1] = g.cellOff[c] + int32(len(order))
		// wb keeps lo and hi contiguous for the two-weight ScoreBlock
		// sweep; grid storage interleaves them per coordinate (see the
		// bounds field) for locate's lockstep re-check.
		dst := g.bounds[c*2*dim : (c+1)*2*dim]
		for j := 0; j < dim; j++ {
			dst[2*j], dst[2*j+1] = lo[j], hi[j]
		}
		g.cells++
	}
	return g
}

// Counters accumulates cell-index activity across snapshots. One Counters
// is shared by every Cache in a clone family (and by every shard's cache),
// mirroring the skyband counters.
type Counters struct {
	builds    atomic.Int64
	hits      atomic.Int64
	fallbacks atomic.Int64
	lookups   atomic.Int64
}

// NewCounters creates a zeroed counter set.
func NewCounters() *Counters { return &Counters{} }

// CountFallback records one query that could not be answered from a grid
// (ineligible configuration, failed point location) and ran a legacy path.
func (c *Counters) CountFallback() {
	if c != nil {
		c.fallbacks.Add(1)
	}
}

// CountLookups records n weighting vectors answered by cell lookups.
func (c *Counters) CountLookups(n int) {
	if c != nil {
		c.lookups.Add(int64(n))
	}
}

// CountersSnapshot is a point-in-time copy of the cumulative counters.
type CountersSnapshot struct {
	Builds    int64 `json:"builds"`
	Hits      int64 `json:"hits"`
	Fallbacks int64 `json:"fallbacks"`
	Lookups   int64 `json:"lookups"`
}

// Snapshot copies the counters.
func (c *Counters) Snapshot() CountersSnapshot {
	if c == nil {
		return CountersSnapshot{}
	}
	return CountersSnapshot{
		Builds:    c.builds.Load(),
		Hits:      c.hits.Load(),
		Fallbacks: c.fallbacks.Load(),
		Lookups:   c.lookups.Load(),
	}
}

// Cache lazily computes and retains the grids of one snapshot. It is safe
// for concurrent use; concurrent requests for the same k share one build.
// Like skyband.Cache, construction takes no context: a grid is shared
// cache state for every reader of the snapshot, so one request's
// cancellation must not poison the build its co-readers wait on.
type Cache struct {
	sky  *skyband.Cache
	dim  int
	ct   *Counters
	mu   sync.Mutex
	ents map[int]*gridEntry
}

type gridEntry struct {
	once sync.Once
	// grid is stored atomically so Stats can peek at entries another
	// goroutine is still building without racing the once.Do write. It
	// stays nil when the build declined (ineligible configuration).
	grid atomic.Pointer[Grid]
}

// NewCache creates an empty cache whose grids build over sky's bands (so
// the skyband cache's build/hit accounting ticks for every grid basis).
// ct carries the cumulative counters shared across the clone family; nil
// allocates a private set.
func NewCache(sky *skyband.Cache, dim int, ct *Counters) *Cache {
	if ct == nil {
		ct = NewCounters()
	}
	return &Cache{sky: sky, dim: dim, ct: ct, ents: make(map[int]*gridEntry)}
}

// Counters returns the cumulative counter set, for propagation into the
// cache of the next snapshot.
func (c *Cache) Counters() *Counters { return c.ct }

// Grid returns the cell index for parameter k, building it on first use,
// or nil when the configuration is ineligible (dimensionality outside
// 2..4, basis beyond MaxBasis, k-diversity beyond maxGrids, oversized
// candidate storage) — callers then use the kernel/RTA paths, which
// answer identically.
func (c *Cache) Grid(k int) *Grid {
	if c == nil || c.sky == nil || c.dim < 2 || c.dim > 4 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	c.mu.Lock()
	e, ok := c.ents[k]
	if !ok {
		if len(c.ents) >= maxGrids {
			c.mu.Unlock()
			c.ct.fallbacks.Add(1)
			return nil
		}
		e = &gridEntry{}
		c.ents[k] = e
	}
	c.mu.Unlock()
	if ok {
		c.ct.hits.Add(1)
	}
	e.once.Do(func() {
		if g := build(c.sky.Band(k), k, c.dim); g != nil {
			e.grid.Store(g)
			c.ct.builds.Add(1)
		}
	})
	g := e.grid.Load()
	if g == nil {
		c.ct.fallbacks.Add(1)
	}
	return g
}

// Stats is a point-in-time view of one cache's contents.
type Stats struct {
	// Grids is the number of grids materialized for this snapshot.
	Grids int `json:"grids"`
	// Cells and Candidates total the built cells and stored candidate
	// rows across those grids.
	Cells      int `json:"cells"`
	Candidates int `json:"candidates"`
}

// Stats reports the cache's current contents.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s Stats
	//wqrtq:unordered summing int counters; result is order-free
	for _, e := range c.ents {
		if g := e.grid.Load(); g != nil {
			s.Grids++
			s.Cells += g.cells
			s.Candidates += g.cands
		}
	}
	return s
}
