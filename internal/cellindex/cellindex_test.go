package cellindex

import (
	"context"
	"math/rand"
	"testing"

	"wqrtq/internal/rtree"
	"wqrtq/internal/sample"
	"wqrtq/internal/skyband"
	"wqrtq/internal/vec"
)

func testPoints(rng *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func testGrid(t *testing.T, pts []vec.Point, k int) (*Grid, *Cache) {
	t.Helper()
	tree := rtree.Bulk(pts, nil)
	c := NewCache(skyband.NewCache(tree, nil), len(pts[0]), nil)
	g := c.Grid(k)
	if g == nil {
		t.Fatalf("grid declined for n=%d d=%d k=%d", len(pts), len(pts[0]), k)
	}
	return g, c
}

// naiveCount counts the basis points scoring strictly below fq under w,
// in vec.Score order — the uncapped scalar oracle for the cell scan.
func naiveCount(g *Grid, w vec.Weight, fq float64) int {
	cnt := 0
	b := g.Basis()
	for i := 0; i < b.Len(); i++ {
		s := w[0] * b.Col(0)[i]
		for j := 1; j < g.Dim(); j++ {
			s += w[j] * b.Col(j)[i]
		}
		if s < fq {
			cnt++
		}
	}
	return cnt
}

// TestGridCountMatchesBasis verifies the cell decision (capped candidate
// count vs k) against the uncapped basis count at random valid weights —
// the count-preservation property in its directly testable form.
func TestGridCountMatchesBasis(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		rng := rand.New(rand.NewSource(int64(100 + d)))
		pts := testPoints(rng, 150+rng.Intn(200), d)
		for _, k := range []int{1, 3, 9} {
			g, _ := testGrid(t, pts, k)
			q := pts[rng.Intn(len(pts))]
			for i := 0; i < 300; i++ {
				w := sample.RandSimplex(rng, d)
				fq := vec.Score(w, q)
				cnt, scanned, ok := g.CountBelowCapped(w, fq, k-1)
				if !ok {
					continue // legal whole-query fallback
				}
				if scanned < 1 {
					t.Fatalf("d=%d k=%d: empty scan for located weight", d, k)
				}
				want := naiveCount(g, w, fq)
				if (cnt < k) != (want < k) {
					t.Fatalf("d=%d k=%d w=%v: capped count %d, basis count %d disagree on membership",
						d, k, w, cnt, want)
				}
				if cnt <= k-1 && cnt != want {
					t.Fatalf("d=%d k=%d w=%v: under-cap count %d must be exact, basis has %d",
						d, k, w, cnt, want)
				}
			}
		}
	}
}

// TestGridEligibility pins the decline paths: unsupported dimensionality
// is silently nil, k-diversity beyond maxGrids falls back and counts it,
// and repeated requests for one k share a single build.
func TestGridEligibility(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := testPoints(rng, 120, 3)
	tree := rtree.Bulk(pts, nil)

	ct := NewCounters()
	if c := NewCache(skyband.NewCache(tree, nil), 5, ct); c.Grid(3) != nil {
		t.Fatal("5-D grid must decline")
	}
	if s := ct.Snapshot(); s.Builds != 0 {
		t.Fatalf("dimension gate built something: %+v", s)
	}

	ct = NewCounters()
	c := NewCache(skyband.NewCache(tree, nil), 3, ct)
	for k := 1; k <= maxGrids; k++ {
		if c.Grid(k) == nil {
			t.Fatalf("grid %d of %d declined", k, maxGrids)
		}
	}
	if c.Grid(maxGrids+1) != nil {
		t.Fatal("grid beyond maxGrids must decline")
	}
	s := ct.Snapshot()
	if s.Builds != int64(maxGrids) || s.Fallbacks != 1 {
		t.Fatalf("unexpected counters after cache-pressure decline: %+v", s)
	}
	if c.Grid(1) == nil {
		t.Fatal("cached grid lost")
	}
	if s = ct.Snapshot(); s.Hits != 1 || s.Builds != int64(maxGrids) {
		t.Fatalf("repeat request did not hit the cache: %+v", s)
	}
	st := c.Stats()
	if st.Grids != maxGrids || st.Cells < 1 || st.Candidates < 1 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

// TestGridReverseTopKEmptyAndCancel covers the driver edges: empty weight
// sets answer immediately and a canceled context aborts.
func TestGridReverseTopKEmptyAndCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := testPoints(rng, 80, 2)
	g, _ := testGrid(t, pts, 3)
	q := pts[0]
	res, scanned, ok, err := g.ReverseTopK(context.Background(), nil, q, 3)
	if err != nil || !ok || res != nil || scanned != 0 {
		t.Fatalf("empty weight set: %v %d %v %v", res, scanned, ok, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	W := []vec.Weight{sample.RandSimplex(rng, 2)}
	if _, _, _, err := g.ReverseTopK(ctx, W, q, 3); err == nil {
		t.Fatal("canceled context not observed")
	}
}

// TestCellIndexAllocsPerOp guards the cell-lookup hot path: point
// location plus the capped candidate scan must not allocate.
func TestCellIndexAllocsPerOp(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		rng := rand.New(rand.NewSource(int64(40 + d)))
		pts := testPoints(rng, 300, d)
		k := 5
		g, _ := testGrid(t, pts, k)
		q := pts[0]
		ws := make([]vec.Weight, 64)
		fqs := make([]float64, len(ws))
		for i := range ws {
			ws[i] = sample.RandSimplex(rng, d)
			fqs[i] = vec.Score(ws[i], q)
		}
		i := 0
		allocs := testing.AllocsPerRun(1000, func() {
			g.CountBelowCapped(ws[i%len(ws)], fqs[i%len(ws)], k-1)
			i++
		})
		if allocs != 0 {
			t.Fatalf("d=%d: CountBelowCapped allocates %.1f per op", d, allocs)
		}
	}
}
