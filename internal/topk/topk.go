// Package topk implements linear top-k queries over an R-tree: the
// branch-and-bound ranked search (BRS) of Tao et al. [29], which the paper
// uses to find the top k-th point of each why-not weighting vector in MQP
// (Algorithm 1, lines 1–12), a progressive ranked iterator for why-not
// explanations, and a count-pruned rank counter used when evaluating
// candidate weighting vectors.
//
// BRS is I/O optimal for ranked retrieval: it maintains a min-heap of tree
// entries keyed by the smallest score attainable inside each entry's MBR
// (the lower corner under non-negative weights) and pops entries in score
// order, so data points emerge in exact rank order.
package topk

import (
	"container/heap"
	"context"
	"sync"
	"wqrtq/internal/feq"

	"wqrtq/internal/ctxcheck"
	"wqrtq/internal/rtree"
	"wqrtq/internal/vec"
)

// checkInterval is how many heap pops / tree nodes a search examines between
// context-cancellation polls. Small enough that a canceled query unwinds in
// microseconds, large enough that the poll vanishes in the per-pop work
// (see DESIGN.md, "Cooperative cancellation").
const checkInterval = 64

// Result is one ranked point.
type Result struct {
	ID    int32
	Point vec.Point
	Score float64
}

// heapItem is either an R-tree subtree (idx < 0) or one data entry of a
// leaf (idx >= 0), keyed by min score. Data entries reference their leaf by
// (node, idx) instead of carrying id and point: the item stays at three
// words, so the sift swaps move half the memory and trigger one write
// barrier instead of three. Leaves reached through a heap item are pinned
// by the item's node pointer, and copy-on-write clones never mutate nodes
// of a published snapshot, so the deferred lookup is stable.
type heapItem struct {
	score float64
	node  *rtree.Node
	idx   int32
}

// minHeap is a binary min-heap over heapItem keyed by score. It implements
// push/pop directly rather than through container/heap: the interface{}
// boxing of heap.Push allocated one heapItem copy per tree entry, which
// dominated the allocation profile of every branch-and-bound search. The
// sift procedures mirror container/heap exactly, so pop order (including
// order among equal scores) is unchanged.
type minHeap []heapItem

//wqrtq:prealloc
func (h *minHeap) push(it heapItem) {
	*h = append(*h, it)
	// Sift up, as container/heap.Push would.
	s := *h
	j := len(s) - 1
	for j > 0 {
		parent := (j - 1) / 2
		if s[parent].score <= s[j].score {
			break
		}
		s[parent], s[j] = s[j], s[parent]
		j = parent
	}
}

// pop is annotated hotpath; push is not, because its append is the heap's
// (amortized, pool-recycled) growth mechanism. pop's contract omits
// noescape(h): heapItem carries node pointers the compiler summarizes as
// "leaking param content", inherent to returning an item by value.
//
//wqrtq:hotpath
//wqrtq:contract nobce noalloc
func (h *minHeap) pop() heapItem {
	s := *h
	n := len(s) - 1
	if n < 0 {
		panic("topk: pop of empty heap")
	}
	s[0], s[n] = s[n], s[0]
	top := s[n]
	s = s[:n]
	*h = s
	// Sift down from the root, as container/heap.Pop would. The sift
	// compares exactly as the indexed form did — right child first when it
	// is smaller, then parent against the chosen child — but each branch
	// carries its own swap and the loop re-checks j against the (uint-cast,
	// hence non-negative) length, the shape the prove pass verifies without
	// bounds checks on the phi-merged index.
	j := 0
	for uint(j) < uint(len(s)) {
		sj := s[j]
		l := 2*j + 1
		if uint(l) >= uint(len(s)) {
			break
		}
		sl := s[l]
		if r := l + 1; uint(r) < uint(len(s)) && s[r].score < sl.score {
			if sj.score <= s[r].score {
				break
			}
			s[j], s[r] = s[r], sj
			j = r
		} else {
			if sj.score <= sl.score {
				break
			}
			s[j], s[l] = sl, sj
			j = l
		}
	}
	return top
}

// heapPool recycles heap backing arrays across searches. The bounded
// consumers in this package (TopKCtx, KthPointCtx, ExplainCtx) return their
// heap on exit; iterators handed to callers keep theirs for the garbage
// collector. Results never alias the heap storage — they reference tree
// point slices — so recycling is safe the moment a search returns.
var heapPool = sync.Pool{
	New: func() any {
		h := make(minHeap, 0, 256)
		return &h
	},
}

// Iterator streams the points of an R-tree in ascending score order under a
// fixed weighting vector (progressive top-k). It implements the paper's
// requirement of an algorithm that "reports incrementally every ranking
// object one-by-one" (§3).
type Iterator struct {
	w       vec.Weight
	h       *minHeap
	visited int // nodes popped, for cost accounting
	tick    ctxcheck.Ticker
	err     error // first context error observed; Next reports false after
}

// NewIterator starts a progressive ranked scan of t under w.
func NewIterator(t *rtree.Tree, w vec.Weight) *Iterator {
	return NewIteratorCtx(context.Background(), t, w)
}

// NewIteratorCtx is NewIterator with cooperative cancellation: the heap loop
// polls ctx every checkInterval pops. When the context ends, Next returns
// ok=false and Err reports the context's error.
func NewIteratorCtx(ctx context.Context, t *rtree.Tree, w vec.Weight) *Iterator {
	it := &Iterator{w: w, tick: ctxcheck.Every(ctx, checkInterval)}
	h := heapPool.Get().(*minHeap)
	*h = (*h)[:0]
	it.h = h
	root := t.Root()
	if !(root.IsLeaf() && root.NumEntries() == 0) {
		it.h.push(heapItem{score: 0, node: root, idx: -1})
	}
	return it
}

// release returns the iterator's heap to the pool. Only the bounded
// consumers in this package call it, immediately before returning; an
// iterator must not be used afterwards.
func (it *Iterator) release() {
	if it.h == nil {
		return
	}
	h := it.h
	it.h = nil
	// Zero the whole backing array, not just the live prefix: popped slots
	// beyond len still hold node pointers, and a pooled array must not pin
	// nodes of superseded copy-on-write snapshots.
	clear((*h)[:cap(*h)])
	*h = (*h)[:0]
	heapPool.Put(h)
}

// Err returns the context error that stopped the iterator, or nil if it ran
// (or is still running) to natural exhaustion.
func (it *Iterator) Err() error { return it.err }

// Next returns the next point in rank order, or ok=false when exhausted or
// canceled (distinguish via Err).
func (it *Iterator) Next() (Result, bool) {
	if it.err != nil || it.h == nil {
		return Result{}, false
	}
	for len(*it.h) > 0 {
		if err := it.tick.Tick(); err != nil {
			it.err = err
			return Result{}, false
		}
		top := it.h.pop()
		if top.idx >= 0 {
			return Result{ID: top.node.PointID(int(top.idx)), Point: top.node.Point(int(top.idx)), Score: top.score}, true
		}
		it.visited++
		n := top.node
		if n.IsLeaf() {
			//wqrtq:bounded heap pushes bounded by node fanout
			for i := 0; i < n.NumEntries(); i++ {
				it.h.push(heapItem{score: vec.Score(it.w, n.Point(i)), node: n, idx: int32(i)})
			}
		} else {
			//wqrtq:bounded heap pushes bounded by node fanout
			for i := 0; i < n.NumEntries(); i++ {
				it.h.push(heapItem{score: n.EntryRect(i).MinScore(it.w), node: n.Child(i), idx: -1})
			}
		}
	}
	return Result{}, false
}

// NodesVisited returns the number of R-tree nodes expanded so far.
func (it *Iterator) NodesVisited() int { return it.visited }

// TopK returns the k best points of t under w in rank order (fewer if the
// tree holds fewer than k points).
func TopK(t *rtree.Tree, w vec.Weight, k int) []Result {
	out, _ := TopKCtx(context.Background(), t, w, k)
	return out
}

// TopKCtx is TopK with cooperative cancellation: the branch-and-bound heap
// loop polls ctx every checkInterval pops and returns the context's error.
func TopKCtx(ctx context.Context, t *rtree.Tree, w vec.Weight, k int) ([]Result, error) {
	if k <= 0 {
		return nil, nil
	}
	it := NewIteratorCtx(ctx, t, w)
	defer it.release()
	out := make([]Result, 0, k)
	for len(out) < k {
		r, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// KthPoint returns the point ranked exactly k-th under w (1-based), as used
// by MQP to build the safe-region constraints. ok is false when the tree has
// fewer than k points.
func KthPoint(t *rtree.Tree, w vec.Weight, k int) (Result, bool) {
	r, ok, _ := KthPointCtx(context.Background(), t, w, k)
	return r, ok
}

// KthPointCtx is KthPoint with cooperative cancellation.
func KthPointCtx(ctx context.Context, t *rtree.Tree, w vec.Weight, k int) (Result, bool, error) {
	rs, err := TopKCtx(ctx, t, w, k)
	if err != nil {
		return Result{}, false, err
	}
	if len(rs) < k {
		return Result{}, false, nil
	}
	return rs[k-1], true, nil
}

// Rank returns the rank the score fq would take under w: one plus the number
// of indexed points with a strictly smaller score (ties rank the query
// first, matching Definition 1's tie handling where q wins at equality).
//
// Subtrees whose maximum attainable score is below fq are counted through
// the per-node point counts without being descended into; subtrees whose
// minimum attainable score is at least fq are pruned outright.
func Rank(t *rtree.Tree, w vec.Weight, fq float64) int {
	r, _ := RankCtx(context.Background(), t, w, fq)
	return r
}

// RankCtx is Rank with cooperative cancellation: the count-pruned descent
// polls ctx every checkInterval nodes.
func RankCtx(ctx context.Context, t *rtree.Tree, w vec.Weight, fq float64) (int, error) {
	tick := ctxcheck.Every(ctx, checkInterval)
	cnt, err := countBelow(t.Root(), w, fq, &tick)
	if err != nil {
		return 0, err
	}
	return 1 + cnt, nil
}

func countBelow(n *rtree.Node, w vec.Weight, fq float64, tick *ctxcheck.Ticker) (int, error) {
	if err := tick.Tick(); err != nil {
		return 0, err
	}
	cnt := 0
	if n.IsLeaf() {
		//wqrtq:bounded leaf scan, at most one node fanout of entries
		for i := 0; i < n.NumEntries(); i++ {
			if vec.Score(w, n.Point(i)) < fq {
				cnt++
			}
		}
		return cnt, nil
	}
	for i := 0; i < n.NumEntries(); i++ {
		r := n.EntryRect(i)
		if r.MinScore(w) >= fq {
			continue // nothing inside can beat fq
		}
		if r.MaxScore(w) < fq {
			cnt += n.Child(i).Count() // everything inside beats fq
			continue
		}
		sub, err := countBelow(n.Child(i), w, fq, tick)
		if err != nil {
			return 0, err
		}
		cnt += sub
	}
	return cnt, nil
}

// CountBelowCtx returns the number of indexed points scoring strictly below
// fq under w (Rank minus one), with cooperative cancellation. It is the
// per-shard contribution of a scatter-gather rank query: the global rank of
// fq is one plus the sum of the per-shard strict-beat counts.
func CountBelowCtx(ctx context.Context, t *rtree.Tree, w vec.Weight, fq float64) (int, error) {
	tick := ctxcheck.Every(ctx, checkInterval)
	return countBelow(t.Root(), w, fq, &tick)
}

// CountBelowCappedCtx counts points scoring strictly below fq under w,
// giving up once the count reaches cap: the return reports the (partial)
// count and whether the cap was hit. An uncapped return is the exact global
// strict-beat count. This is the fast path of skyband-backed rank queries:
// counting over a k-skyband tree is exact whenever the band count stays
// below k (any dataset with >= k beaters has >= k of them inside the band),
// and the early exit stops the descent as soon as a fallback to the full
// tree is inevitable.
func CountBelowCappedCtx(ctx context.Context, t *rtree.Tree, w vec.Weight, fq float64, bound int) (int, bool, error) {
	if bound <= 0 {
		return 0, true, ctx.Err()
	}
	tick := ctxcheck.Every(ctx, checkInterval)
	cnt, err := countBelowCapped(t.Root(), w, fq, bound, &tick)
	if err != nil {
		return 0, false, err
	}
	return cnt, cnt >= bound, nil
}

func countBelowCapped(n *rtree.Node, w vec.Weight, fq float64, bound int, tick *ctxcheck.Ticker) (int, error) {
	if err := tick.Tick(); err != nil {
		return 0, err
	}
	cnt := 0
	if n.IsLeaf() {
		//wqrtq:bounded leaf scan, at most one node fanout of entries
		for i := 0; i < n.NumEntries(); i++ {
			if vec.Score(w, n.Point(i)) < fq {
				cnt++
				if cnt >= bound {
					return cnt, nil
				}
			}
		}
		return cnt, nil
	}
	for i := 0; i < n.NumEntries(); i++ {
		r := n.EntryRect(i)
		if r.MinScore(w) >= fq {
			continue
		}
		if r.MaxScore(w) < fq {
			cnt += n.Child(i).Count()
		} else {
			sub, err := countBelowCapped(n.Child(i), w, fq, bound-cnt, tick)
			if err != nil {
				return 0, err
			}
			cnt += sub
		}
		if cnt >= bound {
			return cnt, nil
		}
	}
	return cnt, nil
}

// MergeCtx k-way merges score-sorted result lists into one sorted list of
// at most k results (k < 0 keeps everything). Ties on score break toward
// the smaller ID, so the merge is deterministic regardless of which shard
// produced which list. Inputs must each be sorted ascending by score, as
// TopKCtx and ExplainCtx return them. The consume loop polls ctx every
// checkInterval merged elements, so gathering a large merged list (an
// unbounded explanation, say) unwinds promptly when the request ends.
func MergeCtx(ctx context.Context, lists [][]Result, k int) ([]Result, error) {
	total := 0
	nonEmpty := 0
	last := 0
	for i, l := range lists {
		total += len(l)
		if len(l) > 0 {
			nonEmpty++
			last = i
		}
	}
	if k < 0 || k > total {
		k = total
	}
	if k == 0 {
		return nil, ctx.Err()
	}
	if nonEmpty == 1 {
		out := lists[last]
		if len(out) > k {
			out = out[:k]
		}
		return out, ctx.Err()
	}
	tick := ctxcheck.Every(ctx, checkInterval)
	h := make(mergeHeap, 0, nonEmpty)
	for i, l := range lists {
		if len(l) > 0 {
			h = append(h, mergeItem{res: l[0], list: i})
		}
	}
	heap.Init(&h)
	out := make([]Result, 0, k)
	pos := make([]int, len(lists))
	for len(out) < k && len(h) > 0 {
		if err := tick.Tick(); err != nil {
			return nil, err
		}
		top := h[0]
		out = append(out, top.res)
		pos[top.list]++
		if p := pos[top.list]; p < len(lists[top.list]) {
			h[0] = mergeItem{res: lists[top.list][p], list: top.list}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out, nil
}

// mergeItem is one merge-frontier element: the next unconsumed result of one
// input list.
type mergeItem struct {
	res  Result
	list int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if feq.Ne(h[i].res.Score, h[j].res.Score) {
		return h[i].res.Score < h[j].res.Score
	}
	return h[i].res.ID < h[j].res.ID
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// InTopK reports whether a query point with score f(w, q) belongs to the
// top-k of w per Definition 2/3: at most k-1 indexed points score strictly
// better.
func InTopK(t *rtree.Tree, w vec.Weight, q vec.Point, k int) bool {
	return Rank(t, w, vec.Score(w, q)) <= k
}

// Explain answers the first aspect of a why-not question (§3): it returns,
// in rank order, the points that score strictly better than q under w.
// Those are exactly the points "responsible for excluding the why-not
// weighting vector from the query result". The scan is progressive and
// stops as soon as q's score is reached.
func Explain(t *rtree.Tree, w vec.Weight, q vec.Point) []Result {
	out, _ := ExplainCtx(context.Background(), t, w, q)
	return out
}

// ExplainCtx is Explain with cooperative cancellation via the iterator's
// heap-loop poll.
func ExplainCtx(ctx context.Context, t *rtree.Tree, w vec.Weight, q vec.Point) ([]Result, error) {
	fq := vec.Score(w, q)
	it := NewIteratorCtx(ctx, t, w)
	defer it.release()
	var out []Result
	for {
		r, ok := it.Next()
		if !ok {
			return out, it.Err()
		}
		if r.Score >= fq {
			return out, nil
		}
		out = append(out, r)
	}
}

// TopKNaive computes the top-k by scanning a point slice; baseline for
// tests and benchmarks. Ties are broken by insertion order.
func TopKNaive(points []vec.Point, w vec.Weight, k int) []Result {
	if k <= 0 {
		return nil
	}
	// Bounded insertion into a sorted slice of size k: O(n·k) worst case but
	// allocation-free and exact; datasets in tests are small.
	out := make([]Result, 0, k)
	for i, p := range points {
		s := vec.Score(w, p)
		if len(out) == k && s >= out[k-1].Score {
			continue
		}
		pos := len(out)
		for pos > 0 && out[pos-1].Score > s {
			pos--
		}
		if len(out) < k {
			out = append(out, Result{})
		}
		copy(out[pos+1:], out[pos:len(out)-1])
		out[pos] = Result{ID: int32(i), Point: p, Score: s}
	}
	return out
}

// RankNaive counts the rank of score fq by linear scan.
func RankNaive(points []vec.Point, w vec.Weight, fq float64) int {
	cnt := 0
	for _, p := range points {
		if vec.Score(w, p) < fq {
			cnt++
		}
	}
	return cnt + 1
}
