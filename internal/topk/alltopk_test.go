package topk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wqrtq/internal/vec"
)

func TestAllTopK2DPaperExample(t *testing.T) {
	pts := paperPoints()
	segs := AllTopK2D(pts, 3)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	// Coverage: segments tile [0, 1] without gaps.
	if segs[0].Lo != 0 || segs[len(segs)-1].Hi != 1 {
		t.Errorf("segments do not span [0,1]: %v..%v", segs[0].Lo, segs[len(segs)-1].Hi)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Lo != segs[i-1].Hi {
			t.Errorf("gap between segments %d and %d", i-1, i)
		}
	}
	// At Kevin's λ=0.1 the top-3 is {p1, p2, p4} (§3).
	for _, s := range segs {
		if s.Lo <= 0.1 && 0.1 <= s.Hi {
			want := []int32{0, 1, 3}
			if !equalIDs32(s.IDs, want) {
				t.Errorf("segment at λ=0.1 has top-3 %v, want %v", s.IDs, want)
			}
		}
	}
}

func TestAllTopK2DAgreesWithDirectTopKQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		pts := randPoints(r, n, 2)
		k := 1 + r.Intn(5)
		segs := AllTopK2D(pts, k)
		// Probe random λs: the covering segment's IDs must score-match the
		// direct top-k (ids can differ on exact ties, scores cannot).
		for trial := 0; trial < 25; trial++ {
			lam := r.Float64()
			w := vec.Weight{lam, 1 - lam}
			want := TopKNaive(pts, w, k)
			var seg *Segment
			for i := range segs {
				if segs[i].Lo <= lam && lam <= segs[i].Hi {
					seg = &segs[i]
					break
				}
			}
			if seg == nil {
				return false
			}
			if len(seg.IDs) != len(want) {
				return false
			}
			for i, id := range seg.IDs {
				if vec.Score(w, pts[id]) != want[i].Score {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReverseTopKFromAllTopKMatchesIntervals(t *testing.T) {
	// The [12]-style boost must agree with direct rank probing.
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		n := 5 + r.Intn(60)
		pts := randPoints(r, n, 2)
		q := randPoints(r, 1, 2)[0]
		k := 1 + r.Intn(5)
		segs := AllTopK2D(pts, k)
		res := ReverseTopKFromAllTopK(pts, segs, q, k)
		inside := func(lam float64) bool {
			for _, s := range res {
				if s.Lo <= lam && lam <= s.Hi {
					return true
				}
			}
			return false
		}
		for probe := 0; probe < 60; probe++ {
			lam := r.Float64()
			w := vec.Weight{lam, 1 - lam}
			want := RankNaive(pts, w, vec.Score(w, q)) <= k
			if got := inside(lam); got != want {
				// Tolerate boundary-exact probes.
				onEdge := false
				for _, s := range res {
					if abs(lam-s.Lo) < 1e-9 || abs(lam-s.Hi) < 1e-9 {
						onEdge = true
					}
				}
				if !onEdge {
					t.Fatalf("trial %d: λ=%v got %v want %v", trial, lam, got, want)
				}
			}
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestAllTopK2DEdgeCases(t *testing.T) {
	if got := AllTopK2D(nil, 3); got != nil {
		t.Errorf("empty input: %v", got)
	}
	if got := AllTopK2D(paperPoints(), 0); got != nil {
		t.Errorf("k=0: %v", got)
	}
	// k > n clamps to n.
	segs := AllTopK2D([]vec.Point{{1, 2}, {2, 1}}, 10)
	for _, s := range segs {
		if len(s.IDs) != 2 {
			t.Errorf("segment IDs = %v, want both points", s.IDs)
		}
	}
	// Single point: one segment covering everything.
	segs = AllTopK2D([]vec.Point{{3, 4}}, 1)
	if len(segs) != 1 || segs[0].Lo != 0 || segs[0].Hi != 1 {
		t.Errorf("single point segments = %v", segs)
	}
}

func TestLinearNonPositiveRange(t *testing.T) {
	cases := []struct {
		a, b, lo, hi   float64
		wantLo, wantHi float64
		ok             bool
	}{
		{0, -1, 0.2, 0.8, 0.2, 0.8, true}, // always satisfied
		{0, 1, 0.2, 0.8, 0, 0, false},     // never satisfied
		{1, -0.5, 0, 1, 0, 0.5, true},     // λ <= 0.5
		{-1, 0.5, 0, 1, 0.5, 1, true},     // λ >= 0.5
		{1, -2, 0, 1, 0, 1, true},         // edge beyond hi
		{1, 1, 0, 1, 0, 0, false},         // edge below lo
	}
	for _, tc := range cases {
		lo, hi, ok := linearNonPositiveRange(tc.a, tc.b, tc.lo, tc.hi)
		if ok != tc.ok || (ok && (lo != tc.wantLo || hi != tc.wantHi)) {
			t.Errorf("linearNonPositiveRange(%v,%v,%v,%v) = %v,%v,%v want %v,%v,%v",
				tc.a, tc.b, tc.lo, tc.hi, lo, hi, ok, tc.wantLo, tc.wantHi, tc.ok)
		}
	}
}
