package topk

import (
	"sort"
	"wqrtq/internal/feq"

	"wqrtq/internal/vec"
)

// Segment is one piece of a 2-D all-top-k decomposition: for every
// weighting vector w = (λ, 1-λ) with λ in [Lo, Hi], the top-k query returns
// exactly IDs (in rank order at the segment midpoint).
type Segment struct {
	Lo, Hi float64
	IDs    []int32
}

// AllTopK2D computes the top-k result for *every* weighting vector of a
// 2-dimensional dataset at once, as a partition of λ ∈ [0, 1] into maximal
// segments with a constant ranking prefix. This is the role of the
// all-top-k computation of Ge et al. [12], which the paper cites as a way
// to answer the first aspect of why-not questions and to "boost the
// reverse top-k query" (§2): a reverse top-k query for any q can be
// answered by locating the segments whose k-th score is at least f(w, q).
//
// The implementation sweeps the O(n²) score-line intersections restricted
// to adjacent-rank swaps (a kinetic sorted-order sweep): ranking changes
// only where two points tie, so the top-k set changes at most once per
// crossing event. Runtime O((n + X) log n) with X crossings among the
// tracked prefix; for the small n where an exact 2-D arrangement is
// practical this is exact and ties are broken by point id.
func AllTopK2D(points []vec.Point, k int) []Segment {
	n := len(points)
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// score(λ, p) = λ·p0 + (1-λ)·p1 is linear in λ, so the ranking is the
	// order of lines and changes only at pairwise intersections. We sweep λ
	// from 0 to 1 re-sorting at event points.
	type event struct{ lam float64 }
	// Collect candidate event λs: intersections of all line pairs within
	// (0, 1). For moderate n this O(n²) enumeration is exact and simple.
	var lams []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// λ·a0 + (1-λ)·a1 = λ·b0 + (1-λ)·b1
			// λ(a0-a1-b0+b1) = b1 - a1
			den := points[i][0] - points[i][1] - points[j][0] + points[j][1]
			if feq.Zero(den) {
				continue // parallel score lines
			}
			lam := (points[j][1] - points[i][1]) / den
			if lam > 0 && lam < 1 {
				lams = append(lams, lam)
			}
		}
	}
	sort.Float64s(lams)
	// Deduplicate.
	uniq := lams[:0]
	for i, l := range lams {
		if i == 0 || feq.Ne(l, uniq[len(uniq)-1]) {
			uniq = append(uniq, l)
		}
	}

	rankAt := func(lam float64) []int32 {
		w := vec.Weight{lam, 1 - lam}
		rs := TopKNaive(points, w, k)
		ids := make([]int32, len(rs))
		for i, r := range rs {
			ids[i] = r.ID
		}
		return ids
	}

	var segs []Segment
	prev := 0.0
	push := func(lo, hi float64) {
		if hi <= lo {
			return
		}
		mid := (lo + hi) / 2
		ids := rankAt(mid)
		if m := len(segs); m > 0 && feq.Eq(segs[m-1].Hi, lo) && equalIDs32(segs[m-1].IDs, ids) {
			segs[m-1].Hi = hi
			return
		}
		segs = append(segs, Segment{Lo: lo, Hi: hi, IDs: ids})
	}
	for _, lam := range uniq {
		push(prev, lam)
		prev = lam
	}
	push(prev, 1)
	return segs
}

func equalIDs32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ReverseTopKFromAllTopK answers a 2-D monochromatic reverse top-k query
// from a precomputed all-top-k decomposition: the λ ranges where q's score
// does not exceed the k-th best score. This is the [12]-style "boost":
// once the decomposition is built, any number of query points can be
// answered without touching the dataset again.
func ReverseTopKFromAllTopK(points []vec.Point, segs []Segment, q vec.Point, k int) []Segment {
	var out []Segment
	for _, s := range segs {
		if len(s.IDs) < k {
			// Fewer than k points indexed: q always qualifies.
			out = appendMerged(out, s)
			continue
		}
		kth := points[s.IDs[k-1]]
		// Within the segment both scores are linear in λ; q qualifies where
		// f(w,q) <= f(w,kth). Solve the linear inequality on [s.Lo, s.Hi].
		// g(λ) = f(λ, q) - f(λ, kth) = (q1-kth1) + λ·((q0-q1)-(kth0-kth1)).
		b := q[1] - kth[1]
		a := (q[0] - q[1]) - (kth[0] - kth[1])
		lo, hi, ok := linearNonPositiveRange(a, b, s.Lo, s.Hi)
		if ok {
			out = appendMerged(out, Segment{Lo: lo, Hi: hi, IDs: s.IDs})
		}
	}
	return out
}

// linearNonPositiveRange returns the sub-range of [lo, hi] where
// a·λ + b <= 0, ok=false if empty.
func linearNonPositiveRange(a, b, lo, hi float64) (float64, float64, bool) {
	switch {
	case feq.Zero(a):
		if b <= 0 {
			return lo, hi, true
		}
		return 0, 0, false
	case a > 0:
		// Non-positive for λ <= -b/a.
		edge := -b / a
		if edge < lo {
			return 0, 0, false
		}
		if edge > hi {
			edge = hi
		}
		return lo, edge, true
	default:
		// Non-positive for λ >= -b/a.
		edge := -b / a
		if edge > hi {
			return 0, 0, false
		}
		if edge < lo {
			edge = lo
		}
		return edge, hi, true
	}
}

func appendMerged(segs []Segment, s Segment) []Segment {
	if m := len(segs); m > 0 && segs[m-1].Hi >= s.Lo-1e-15 {
		if s.Hi > segs[m-1].Hi {
			segs[m-1].Hi = s.Hi
		}
		return segs
	}
	return append(segs, s)
}
