package topk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wqrtq/internal/rtree"
	"wqrtq/internal/vec"
)

// paperPoints is the computer dataset of Figure 1(a).
func paperPoints() []vec.Point {
	return []vec.Point{
		{2, 1}, {6, 3}, {1, 9}, {9, 3}, {7, 5}, {5, 8}, {3, 7},
	}
}

func paperTree() *rtree.Tree {
	return rtree.Bulk(paperPoints(), nil, rtree.Options{PageSize: 128})
}

func randPoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float64() * 10
		}
		pts[i] = p
	}
	return pts
}

func randWeight(r *rand.Rand, d int) vec.Weight {
	w := make(vec.Weight, d)
	s := 0.0
	for i := range w {
		w[i] = r.Float64() + 1e-3
		s += w[i]
	}
	for i := range w {
		w[i] /= s
	}
	return w
}

func TestTopKPaperExample(t *testing.T) {
	tr := paperTree()
	// TOP3(w1=Julia=(0.9,0.1)) = {p1, p2, p4}? No: the paper says
	// TOP3(w1) = {p1, p2, p4} for w=(0.1,0.9) (Kevin) in §3:
	// "Take the dataset P shown in Figure 1 as an example. We have
	// TOP3(w4) = {p1, p2, p4}" — scores 1.1, 3.3, 3.6.
	kevin := vec.Weight{0.1, 0.9}
	got := TopK(tr, kevin, 3)
	wantIDs := []int32{0, 1, 3} // p1, p2, p4
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	for i, r := range got {
		if r.ID != wantIDs[i] {
			t.Errorf("rank %d: id = %d, want %d", i+1, r.ID, wantIDs[i])
		}
	}
	// Julia (0.9, 0.1): ranked p3 (1.8), p1 (1.9), p7 (3.4).
	julia := vec.Weight{0.9, 0.1}
	got = TopK(tr, julia, 3)
	wantIDs = []int32{2, 0, 6}
	for i, r := range got {
		if r.ID != wantIDs[i] {
			t.Errorf("julia rank %d: id = %d, want %d", i+1, r.ID, wantIDs[i])
		}
	}
}

func TestKthPointPaperExample(t *testing.T) {
	// Figure 5(b): the top 3-rd points for Kevin's and Julia's vectors are
	// p4 and p7 respectively.
	tr := paperTree()
	r, ok := KthPoint(tr, vec.Weight{0.1, 0.9}, 3)
	if !ok || r.ID != 3 {
		t.Errorf("Kevin k-th point = %v, want p4 (id 3)", r.ID)
	}
	r, ok = KthPoint(tr, vec.Weight{0.9, 0.1}, 3)
	if !ok || r.ID != 6 {
		t.Errorf("Julia k-th point = %v, want p7 (id 6)", r.ID)
	}
	// k beyond dataset size.
	if _, ok := KthPoint(tr, vec.Weight{0.5, 0.5}, 8); ok {
		t.Error("KthPoint accepted k > |P|")
	}
}

func TestRankPaperExample(t *testing.T) {
	tr := paperTree()
	q := vec.Point{4, 4}
	// §4.3: actual rankings of q under Kevin's and Julia's vectors are 4.
	for _, w := range []vec.Weight{{0.1, 0.9}, {0.9, 0.1}} {
		if got := Rank(tr, w, vec.Score(w, q)); got != 4 {
			t.Errorf("Rank(q, %v) = %d, want 4", w, got)
		}
	}
	// Tony and Anna rank q within top-3 (BRTOP3 result, §3).
	if !InTopK(tr, vec.Weight{0.5, 0.5}, q, 3) {
		t.Error("q should be in Tony's top-3")
	}
	if !InTopK(tr, vec.Weight{0.3, 0.7}, q, 3) {
		t.Error("q should be in Anna's top-3")
	}
	if InTopK(tr, vec.Weight{0.1, 0.9}, q, 3) {
		t.Error("q should not be in Kevin's top-3")
	}
}

func TestExplainPaperExample(t *testing.T) {
	// For Kevin, p1, p2, p4 are responsible for excluding q (§3).
	tr := paperTree()
	q := vec.Point{4, 4}
	got := Explain(tr, vec.Weight{0.1, 0.9}, q)
	if len(got) != 3 {
		t.Fatalf("explanation size = %d, want 3", len(got))
	}
	want := []int32{0, 1, 3}
	for i, r := range got {
		if r.ID != want[i] {
			t.Errorf("explanation[%d] = p%d, want p%d", i, r.ID+1, want[i]+1)
		}
	}
}

func TestTopKAgainstNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(400)
		d := 2 + r.Intn(4)
		pts := randPoints(r, n, d)
		tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 256})
		w := randWeight(r, d)
		k := 1 + r.Intn(20)
		got := TopK(tr, w, k)
		want := TopKNaive(pts, w, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			// Scores must agree exactly in rank order (ids may differ on
			// exact ties, which are measure-zero for random data).
			if got[i].Score != want[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRankAgainstNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		d := 2 + r.Intn(3)
		pts := randPoints(r, n, d)
		tr := rtree.Bulk(pts, nil, rtree.Options{PageSize: 256})
		w := randWeight(r, d)
		q := randPoints(r, 1, d)[0]
		fq := vec.Score(w, q)
		return Rank(tr, w, fq) == RankNaive(pts, w, fq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestIteratorEmitsAscendingScores(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	pts := randPoints(r, 1000, 3)
	tr := rtree.Bulk(pts, nil)
	w := randWeight(r, 3)
	it := NewIterator(tr, w)
	prev := -1.0
	count := 0
	for {
		res, ok := it.Next()
		if !ok {
			break
		}
		if res.Score < prev {
			t.Fatalf("score %v after %v", res.Score, prev)
		}
		prev = res.Score
		count++
	}
	if count != 1000 {
		t.Fatalf("iterator emitted %d points, want 1000", count)
	}
	if it.NodesVisited() == 0 {
		t.Error("NodesVisited = 0 after full scan")
	}
}

func TestIteratorEarlyTerminationVisitsFewNodes(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	pts := randPoints(r, 50000, 2)
	tr := rtree.Bulk(pts, nil)
	w := randWeight(r, 2)
	it := NewIterator(tr, w)
	for i := 0; i < 10; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatal("iterator exhausted early")
		}
	}
	if it.NodesVisited() > tr.NodeCount()/4 {
		t.Errorf("visited %d of %d nodes for top-10; expected strong pruning",
			it.NodesVisited(), tr.NodeCount())
	}
}

func TestEmptyTreeAndEdgeK(t *testing.T) {
	tr := rtree.New(2)
	if got := TopK(tr, vec.Weight{0.5, 0.5}, 5); len(got) != 0 {
		t.Errorf("TopK on empty tree = %v", got)
	}
	if got := Rank(tr, vec.Weight{0.5, 0.5}, 1); got != 1 {
		t.Errorf("Rank on empty tree = %d, want 1", got)
	}
	if TopK(paperTree(), vec.Weight{0.5, 0.5}, 0) != nil {
		t.Error("TopK with k=0 should be nil")
	}
	if TopKNaive(paperPoints(), vec.Weight{0.5, 0.5}, 0) != nil {
		t.Error("TopKNaive with k=0 should be nil")
	}
}

func TestTopKNaiveStability(t *testing.T) {
	pts := []vec.Point{{1, 1}, {1, 1}, {2, 2}}
	got := TopKNaive(pts, vec.Weight{0.5, 0.5}, 2)
	if got[0].ID != 0 || got[1].ID != 1 {
		t.Errorf("tie order = %d,%d, want 0,1", got[0].ID, got[1].ID)
	}
}

func TestRankTieSemantics(t *testing.T) {
	// Rank counts only strictly smaller scores: q tied with a point keeps
	// the better rank (q wins ties, Definition 1).
	pts := []vec.Point{{1, 1}, {2, 2}, {3, 3}}
	tr := rtree.Bulk(pts, nil)
	w := vec.Weight{0.5, 0.5}
	if got := Rank(tr, w, 2.0); got != 2 {
		t.Errorf("Rank(tied score) = %d, want 2", got)
	}
}
