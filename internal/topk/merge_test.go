package topk

import (
	"context"
	"testing"
)

func TestMergeCtx(t *testing.T) {
	a := []Result{{ID: 3, Score: 1}, {ID: 1, Score: 4}, {ID: 7, Score: 9}}
	b := []Result{{ID: 2, Score: 2}, {ID: 6, Score: 4}, {ID: 0, Score: 5}}
	ctx := context.Background()

	got, err := MergeCtx(ctx, [][]Result{a, b}, -1)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []int32{3, 2, 1, 6, 0, 7} // score order; score-4 tie breaks toward id 1
	if len(got) != len(wantIDs) {
		t.Fatalf("merged %d results, want %d", len(got), len(wantIDs))
	}
	for i, r := range got {
		if r.ID != wantIDs[i] {
			t.Fatalf("position %d: id %d, want %d (got %v)", i, r.ID, wantIDs[i], got)
		}
	}

	top, err := MergeCtx(ctx, [][]Result{a, b}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].ID != 3 || top[1].ID != 2 {
		t.Fatalf("k=2 merge = %v", top)
	}

	// Single non-empty list short-circuits; empty lists and k=0 are legal.
	solo, err := MergeCtx(ctx, [][]Result{nil, a, nil}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(solo) != len(a) || solo[0].ID != a[0].ID {
		t.Fatalf("single-list merge = %v", solo)
	}
	if none, err := MergeCtx(ctx, [][]Result{a, b}, 0); err != nil || none != nil {
		t.Fatalf("k=0 merge = %v, %v", none, err)
	}

	// Cancellation unwinds the consume loop.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	big := make([]Result, 300)
	for i := range big {
		big[i] = Result{ID: int32(i), Score: float64(i)}
	}
	if _, err := MergeCtx(canceled, [][]Result{big, big}, -1); err == nil {
		t.Fatal("canceled merge returned nil error")
	}
}
