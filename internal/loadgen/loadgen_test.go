package loadgen

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestOpenLoopOffersAtRate(t *testing.T) {
	var calls atomic.Int64
	r, err := Run(Config{
		Rate:     1000,
		Duration: 100 * time.Millisecond,
		Target: func(Kind) error {
			calls.Add(1)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1000/s for 100ms = 100 arrivals on the generator's clock. Allow
	// scheduler slop but require the open loop to be in the ballpark.
	if r.Offered < 50 || r.Offered > 110 {
		t.Fatalf("offered %d arrivals, want ~100", r.Offered)
	}
	if r.Served != calls.Load() || r.Served != r.Offered {
		t.Fatalf("served %d, calls %d, offered %d", r.Served, calls.Load(), r.Offered)
	}
	if r.GoodputPerSec <= 0 {
		t.Fatalf("goodput %v", r.GoodputPerSec)
	}
	if r.QueryLatency.Count != r.Served || r.MutationLatency.Count != 0 {
		t.Fatalf("latency counts: query %d, mutation %d", r.QueryLatency.Count, r.MutationLatency.Count)
	}
}

func TestArrivalsIndependentOfSlowTarget(t *testing.T) {
	// Open loop: a slow server must not slow down arrivals. 500/s for
	// 100ms with a 50ms per-request stall still offers ~50 requests —
	// a closed loop would manage only ~2.
	r, err := Run(Config{
		Rate:     500,
		Duration: 100 * time.Millisecond,
		Target: func(Kind) error {
			time.Sleep(50 * time.Millisecond)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Offered < 25 {
		t.Fatalf("slow target throttled the open loop: offered %d, want ~50", r.Offered)
	}
}

func TestClassifyAndMix(t *testing.T) {
	errShed := errors.New("shed")
	var mutations atomic.Int64
	r, err := Run(Config{
		Rate:         2000,
		Duration:     100 * time.Millisecond,
		MutationFrac: 0.5,
		Seed:         1,
		Target: func(k Kind) error {
			if k == Mutation {
				mutations.Add(1)
				return errShed
			}
			return nil
		},
		Classify: func(err error) Outcome {
			switch {
			case err == nil:
				return OK
			case errors.Is(err, errShed):
				return Shed
			default:
				return Failed
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Shed != mutations.Load() {
		t.Fatalf("shed %d, mutations %d", r.Shed, mutations.Load())
	}
	if r.Shed == 0 || r.Served == 0 {
		t.Fatalf("mix did not produce both kinds: served %d, shed %d", r.Served, r.Shed)
	}
	if r.Failed != 0 {
		t.Fatalf("failed %d, want 0", r.Failed)
	}
	if r.ShedFraction <= 0.2 || r.ShedFraction >= 0.8 {
		t.Fatalf("shed fraction %v, want ~0.5", r.ShedFraction)
	}
}

func TestMaxInFlightCountsLost(t *testing.T) {
	// Four client slots, all stuck on a stalled server until after the
	// arrival window closes: every further open-loop arrival must be
	// counted as lost, not silently delayed.
	block := make(chan struct{})
	time.AfterFunc(80*time.Millisecond, func() { close(block) })
	r, err := Run(Config{
		Rate:        1000,
		Duration:    50 * time.Millisecond,
		MaxInFlight: 4,
		Target: func(Kind) error {
			<-block
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Served != 4 {
		t.Fatalf("served %d, want exactly the 4 client slots", r.Served)
	}
	if r.Lost == 0 || r.Offered != r.Lost+r.Served {
		t.Fatalf("offered %d, lost %d, served %d: arrivals past the cap must be lost", r.Offered, r.Lost, r.Served)
	}
}
