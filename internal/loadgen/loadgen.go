// Package loadgen is an open-loop load generator for the serving stack.
//
// Open-loop means arrivals are scheduled on a fixed clock — request n
// fires at start + n/rate — independent of how fast earlier requests
// complete. This is the property that makes an overload experiment
// honest: a closed loop (issue, wait, issue) self-throttles exactly when
// the server slows down, hiding the queueing collapse the experiment is
// trying to measure. Under open-loop arrivals a server past saturation
// accumulates in-flight work without bound unless something sheds, which
// is precisely the behavior the admission-control ablation compares.
//
// The generator drives an abstract Target func, so the same harness runs
// against an in-process engine (unit tests, RECORD_BENCH) or a live HTTP
// server (`wqrtq bench`). A Classify hook buckets each completion into
// goodput, shed or failure — the three series every report carries.
package loadgen

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Kind is the request class the generator draws for each arrival.
type Kind int

const (
	// Query is a read (reverse top-k or similar).
	Query Kind = iota
	// Mutation is a write (insert or delete).
	Mutation
)

// String returns "query" or "mutation".
func (k Kind) String() string {
	if k == Mutation {
		return "mutation"
	}
	return "query"
}

// Outcome buckets one completed request.
type Outcome int

const (
	// OK: the request was served; counts toward goodput.
	OK Outcome = iota
	// Shed: the server rejected it at the door (admission, queue-full,
	// degraded). Shed work is cheap by design and tracked separately.
	Shed
	// Failed: an unexpected error — transport failure, 5xx that is not a
	// shed, malformed response.
	Failed
)

// Config parameterizes one run.
type Config struct {
	// Rate is the offered arrival rate in requests per second. Required.
	Rate float64
	// Duration is how long arrivals are generated; the run then drains
	// in-flight requests. Required.
	Duration time.Duration
	// MutationFrac in [0,1] is the fraction of arrivals drawn as
	// mutations (0 = pure query load).
	MutationFrac float64
	// Seed feeds the kind-mixing RNG; runs with equal seeds draw the
	// same arrival sequence.
	Seed int64
	// Target performs one request of the given kind and returns its
	// error (nil = served). Required. Called from many goroutines.
	Target func(Kind) error
	// Classify buckets a Target error. Nil defaults to: nil error OK,
	// anything else Failed.
	Classify func(error) Outcome
	// MaxInFlight caps concurrently outstanding requests (0 = no cap).
	// An uncapped open loop against a stalled server manufactures
	// goroutines without bound; the cap models a finite client fleet
	// while preserving open-loop arrivals — arrivals past the cap are
	// counted as Lost, not silently delayed.
	MaxInFlight int
}

// LatencyStats summarizes one kind's served-request latencies.
type LatencyStats struct {
	Count      int64 `json:"count"`
	P50Micros  int64 `json:"p50_micros"`
	P99Micros  int64 `json:"p99_micros"`
	P999Micros int64 `json:"p999_micros"`
	MaxMicros  int64 `json:"max_micros"`
}

// Report is the result of one run.
type Report struct {
	// Offered counts generated arrivals; Lost counts arrivals dropped
	// client-side at the MaxInFlight cap (never sent).
	Offered int64 `json:"offered"`
	Lost    int64 `json:"lost"`
	// Served/Shed/Failed partition the sent requests by outcome.
	Served int64 `json:"served"`
	Shed   int64 `json:"shed"`
	Failed int64 `json:"failed"`
	// ElapsedSeconds covers arrival generation plus drain.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// GoodputPerSec is served requests per second of elapsed time;
	// ShedFraction is shed / sent.
	GoodputPerSec float64 `json:"goodput_per_sec"`
	ShedFraction  float64 `json:"shed_fraction"`
	// Latency histograms of served requests, by kind.
	QueryLatency    LatencyStats `json:"query_latency"`
	MutationLatency LatencyStats `json:"mutation_latency"`
}

// collector accumulates per-request outcomes under one mutex; the
// contended section is two counter bumps and an append.
type collector struct {
	mu     sync.Mutex
	served int64
	shed   int64
	failed int64
	lats   [2][]time.Duration // served latencies, indexed by Kind
}

func (c *collector) record(k Kind, d time.Duration, o Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch o {
	case OK:
		c.served++
		c.lats[k] = append(c.lats[k], d)
	case Shed:
		c.shed++
	default:
		c.failed++
	}
}

// quantiles summarizes a served-latency series. Sorting a copy keeps the
// collector reusable; n is small (one entry per served request).
func quantiles(ls []time.Duration) LatencyStats {
	var st LatencyStats
	st.Count = int64(len(ls))
	if len(ls) == 0 {
		return st
	}
	s := make([]time.Duration, len(ls))
	copy(s, ls)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(s)-1))
		return s[i].Microseconds()
	}
	st.P50Micros = at(0.50)
	st.P99Micros = at(0.99)
	st.P999Micros = at(0.999)
	st.MaxMicros = s[len(s)-1].Microseconds()
	return st
}

// Run generates arrivals for cfg.Duration, waits out the in-flight tail,
// and returns the report.
func Run(cfg Config) (*Report, error) {
	if cfg.Rate <= 0 {
		return nil, errors.New("loadgen: Rate must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("loadgen: Duration must be positive")
	}
	if cfg.Target == nil {
		return nil, errors.New("loadgen: Target is required")
	}
	classify := cfg.Classify
	if classify == nil {
		classify = func(err error) Outcome {
			if err == nil {
				return OK
			}
			return Failed
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	col := &collector{}
	var wg sync.WaitGroup
	var sem chan struct{}
	if cfg.MaxInFlight > 0 {
		sem = make(chan struct{}, cfg.MaxInFlight)
	}
	var offered, lost int64
	start := time.Now()
	for n := int64(0); ; n++ {
		due := start.Add(time.Duration(n) * interval)
		if due.Sub(start) >= cfg.Duration {
			break
		}
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		offered++
		kind := Query
		if cfg.MutationFrac > 0 && rng.Float64() < cfg.MutationFrac {
			kind = Mutation
		}
		if sem != nil {
			select {
			case sem <- struct{}{}:
			default:
				lost++ // client fleet exhausted; open-loop arrival dropped
				continue
			}
		}
		wg.Add(1)
		go func(k Kind) {
			defer wg.Done()
			if sem != nil {
				defer func() { <-sem }()
			}
			s := time.Now()
			err := cfg.Target(k)
			col.record(k, time.Since(s), classify(err))
		}(kind)
	}
	wg.Wait()
	elapsed := time.Since(start)

	col.mu.Lock()
	defer col.mu.Unlock()
	r := &Report{
		Offered:        offered,
		Lost:           lost,
		Served:         col.served,
		Shed:           col.shed,
		Failed:         col.failed,
		ElapsedSeconds: elapsed.Seconds(),
	}
	if elapsed > 0 {
		r.GoodputPerSec = float64(col.served) / elapsed.Seconds()
	}
	if sent := col.served + col.shed + col.failed; sent > 0 {
		r.ShedFraction = float64(col.shed) / float64(sent)
	}
	r.QueryLatency = quantiles(col.lats[Query])
	r.MutationLatency = quantiles(col.lats[Mutation])
	return r, nil
}
