// Package mat implements the small dense linear-algebra kernel needed by the
// interior-point quadratic-programming solver: row-major dense matrices,
// Cholesky factorization of symmetric positive-definite systems,
// least-squares particular solutions, and orthonormal null-space bases.
//
// The matrices involved in WQRTQ are tiny (dimension d <= ~13, constraint
// counts |Wm| + 2d), so the implementation favours clarity and numerical
// robustness over blocking or SIMD.
package mat

import (
	"errors"
	"fmt"
	"math"
	"wqrtq/internal/feq"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zero matrix with the given shape.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, copying the data.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("mat: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diagonal returns a square matrix with the given diagonal entries.
func Diagonal(d []float64) *Dense {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (no copy).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		s += fmt.Sprintf("%v\n", m.Row(i))
	}
	return s
}

// MulVec computes y = M x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("mat: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		y[i] = dot(m.Row(i), x)
	}
	return y
}

// TMulVec computes y = Mᵀ x.
func (m *Dense) TMulVec(x []float64) []float64 {
	if len(x) != m.Rows {
		panic("mat: TMulVec dimension mismatch")
	}
	y := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if feq.Zero(xi) {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += xi * v
		}
	}
	return y
}

// Mul returns M N.
func (m *Dense) Mul(n *Dense) *Dense {
	if m.Cols != n.Rows {
		panic("mat: Mul dimension mismatch")
	}
	out := New(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k, mv := range mrow {
			if feq.Zero(mv) {
				continue
			}
			nrow := n.Row(k)
			for j, nv := range nrow {
				orow[j] += mv * nv
			}
		}
	}
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// AddDiag adds v to every diagonal element of a square matrix in place.
func (m *Dense) AddDiag(v float64) {
	if m.Rows != m.Cols {
		panic("mat: AddDiag on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += v
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// ErrNotSPD is returned when a Cholesky factorization encounters a
// non-positive pivot, meaning the matrix is not positive definite.
var ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")

// Cholesky computes the lower-triangular factor L with A = L Lᵀ.
// A must be symmetric positive definite; only the lower triangle is read.
func Cholesky(a *Dense) (*Dense, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("mat: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := New(n, n)
	// Relative pivot tolerance: a pivot this small compared with the largest
	// diagonal entry means the matrix is numerically rank deficient.
	pivTol := 0.0
	for j := 0; j < n; j++ {
		if v := math.Abs(a.At(j, j)); v > pivTol {
			pivTol = v
		}
	}
	pivTol = math.Max(pivTol, 1) * 1e-13
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= pivTol || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}

// CholSolve solves A x = b given the Cholesky factor L of A (forward then
// backward substitution). b is not modified.
func CholSolve(l *Dense, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("mat: CholSolve dimension mismatch")
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Backward: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A x = b for a symmetric positive-definite A. The
// factorization is strict: a rank-deficient or indefinite matrix returns
// ErrNotSPD.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholSolve(l, b), nil
}

// SolveSPDJitter solves A x = b like SolveSPD, but when the factorization
// fails it retries with growing diagonal regularization. The interior-point
// solver uses it to keep Newton systems solvable near the boundary of the
// feasible region, where the scaling matrix becomes ill-conditioned.
func SolveSPDJitter(a *Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err == nil {
		return CholSolve(l, b), nil
	}
	jitter := spdJitter(a)
	work := a.Clone()
	for try := 0; try < 6; try++ {
		work.AddDiag(jitter)
		if l, err = Cholesky(work); err == nil {
			return CholSolve(l, b), nil
		}
		jitter *= 100
	}
	return nil, ErrNotSPD
}

// spdJitter picks an initial regularization scaled to the matrix magnitude.
func spdJitter(a *Dense) float64 {
	maxAbs := 0.0
	for i := 0; i < a.Rows; i++ {
		v := math.Abs(a.At(i, i))
		if v > maxAbs {
			maxAbs = v
		}
	}
	if feq.Zero(maxAbs) {
		maxAbs = 1
	}
	return 1e-12 * maxAbs
}

// LeastSquaresRow solves the underdetermined system A x = b (A with
// independent rows, Rows <= Cols) for the minimum-norm solution
// x = Aᵀ (A Aᵀ)⁻¹ b.
func LeastSquaresRow(a *Dense, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, errors.New("mat: LeastSquaresRow dimension mismatch")
	}
	aat := a.Mul(a.T())
	y, err := SolveSPD(aat, b)
	if err != nil {
		return nil, fmt.Errorf("mat: rows of equality system are dependent: %w", err)
	}
	return a.TMulVec(y), nil
}

// NullSpace returns an orthonormal basis (as rows) for the null space of the
// row space spanned by rows, each of length n. Rows that are (numerically)
// linearly dependent on earlier ones are dropped. The basis has
// n - rank(rows) vectors.
func NullSpace(rows [][]float64, n int) [][]float64 {
	const tol = 1e-12
	// Orthonormalize the constraint rows (modified Gram-Schmidt).
	var ortho [][]float64
	for _, r := range rows {
		v := make([]float64, n)
		copy(v, r)
		for _, u := range ortho {
			c := dot(v, u)
			for i := range v {
				v[i] -= c * u[i]
			}
		}
		if nv := norm(v); nv > tol*(1+norm(r)) {
			for i := range v {
				v[i] /= nv
			}
			ortho = append(ortho, v)
		}
	}
	// Project the standard basis onto the orthogonal complement.
	var basis [][]float64
	for j := 0; j < n && len(basis) < n-len(ortho); j++ {
		v := make([]float64, n)
		v[j] = 1
		for _, u := range ortho {
			c := dot(v, u)
			for i := range v {
				v[i] -= c * u[i]
			}
		}
		for _, u := range basis {
			c := dot(v, u)
			for i := range v {
				v[i] -= c * u[i]
			}
		}
		if nv := norm(v); nv > 1e-9 {
			for i := range v {
				v[i] /= nv
			}
			basis = append(basis, v)
		}
	}
	return basis
}

func norm(v []float64) float64 {
	return math.Sqrt(dot(v, v))
}

// CholeskyJitter factorizes like Cholesky but retries with growing diagonal
// regularization when the matrix is numerically indefinite, mirroring
// SolveSPDJitter for callers that reuse one factorization for several
// right-hand sides.
func CholeskyJitter(a *Dense) (*Dense, error) {
	l, err := Cholesky(a)
	if err == nil {
		return l, nil
	}
	jitter := spdJitter(a)
	work := a.Clone()
	for try := 0; try < 6; try++ {
		work.AddDiag(jitter)
		if l, err = Cholesky(work); err == nil {
			return l, nil
		}
		jitter *= 100
	}
	return nil, ErrNotSPD
}
