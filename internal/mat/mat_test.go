package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSPD(r *rand.Rand, n int) *Dense {
	// A = B Bᵀ + n·I is SPD for random B.
	b := New(n, n)
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	a := b.Mul(b.T())
	a.AddDiag(float64(n))
	return a
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestCholeskyReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(10)
		a := randSPD(r, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("Cholesky failed on SPD matrix: %v", err)
		}
		llt := l.Mul(l.T())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := math.Abs(llt.At(i, j) - a.At(i, j)); d > 1e-9 {
					t.Fatalf("LLᵀ differs from A at (%d,%d) by %v", i, j, d)
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
	if _, err := Cholesky(New(2, 3)); err == nil {
		t.Fatal("Cholesky accepted a non-square matrix")
	}
}

func TestSolveSPDQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randSPD(r, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		return maxAbsDiff(got, want) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveSPDKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	x, err := SolveSPD(a, []float64{10, 9})
	if err != nil {
		t.Fatal(err)
	}
	// Solution of [[4,2],[2,3]] x = [10,9]: x = [1.5, 2].
	if maxAbsDiff(x, []float64{1.5, 2}) > 1e-12 {
		t.Errorf("x = %v, want [1.5 2]", x)
	}
}

func TestLeastSquaresRow(t *testing.T) {
	// Minimum-norm solution of a single constraint x1 + x2 = 1 is (0.5, 0.5).
	a := FromRows([][]float64{{1, 1}})
	x, err := LeastSquaresRow(a, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(x, []float64{0.5, 0.5}) > 1e-12 {
		t.Errorf("x = %v, want [0.5 0.5]", x)
	}
	// Two constraints in 3-D: sum = 1 and x1 - x3 = 0.
	a = FromRows([][]float64{{1, 1, 1}, {1, 0, -1}})
	x, err = LeastSquaresRow(a, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := x[0] + x[1] + x[2]; math.Abs(got-1) > 1e-12 {
		t.Errorf("sum constraint violated: %v", got)
	}
	if math.Abs(x[0]-x[2]) > 1e-12 {
		t.Errorf("difference constraint violated: %v", x)
	}
	// Dependent rows must error.
	a = FromRows([][]float64{{1, 1}, {2, 2}})
	if _, err := LeastSquaresRow(a, []float64{1, 2}); err == nil {
		t.Error("dependent rows accepted")
	}
}

func TestNullSpace(t *testing.T) {
	// Null space of {sum(w)=const direction} in R^3 has dimension 2.
	basis := NullSpace([][]float64{{1, 1, 1}}, 3)
	if len(basis) != 2 {
		t.Fatalf("basis size = %d, want 2", len(basis))
	}
	for i, u := range basis {
		if s := u[0] + u[1] + u[2]; math.Abs(s) > 1e-10 {
			t.Errorf("basis[%d] not orthogonal to constraint: %v", i, s)
		}
		if n := math.Sqrt(dot(u, u)); math.Abs(n-1) > 1e-10 {
			t.Errorf("basis[%d] not unit norm: %v", i, n)
		}
	}
	if c := dot(basis[0], basis[1]); math.Abs(c) > 1e-10 {
		t.Errorf("basis vectors not orthogonal: %v", c)
	}
	// Two independent constraints in R^2 leave nothing.
	basis = NullSpace([][]float64{{1, 0}, {0, 1}}, 2)
	if len(basis) != 0 {
		t.Errorf("basis size = %d, want 0", len(basis))
	}
	// Dependent constraints count once.
	basis = NullSpace([][]float64{{1, 1}, {2, 2}}, 2)
	if len(basis) != 1 {
		t.Errorf("basis size = %d, want 1", len(basis))
	}
}

func TestNullSpaceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		k := 1 + r.Intn(n)
		rows := make([][]float64, k)
		for i := range rows {
			rows[i] = make([]float64, n)
			for j := range rows[i] {
				rows[i][j] = r.NormFloat64()
			}
		}
		basis := NullSpace(rows, n)
		for _, u := range basis {
			for _, row := range rows {
				if math.Abs(dot(u, row)) > 1e-8*(1+norm(row)) {
					return false
				}
			}
		}
		// Random rows are independent with probability 1, so expect n-k.
		return len(basis) == n-k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMulVecTMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := a.MulVec([]float64{1, 1, 1})
	if maxAbsDiff(y, []float64{6, 15}) > 0 {
		t.Errorf("MulVec = %v", y)
	}
	z := a.TMulVec([]float64{1, 1})
	if maxAbsDiff(z, []float64{5, 7, 9}) > 0 {
		t.Errorf("TMulVec = %v", z)
	}
}

func TestMulIdentityDiagonal(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := a.Mul(Identity(2)); maxAbsDiff(got.Data, a.Data) > 0 {
		t.Errorf("A·I = %v", got)
	}
	d := Diagonal([]float64{2, 3})
	got := a.Mul(d)
	want := FromRows([][]float64{{2, 6}, {6, 12}})
	if maxAbsDiff(got.Data, want.Data) > 0 {
		t.Errorf("A·D = %v, want %v", got, want)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape = %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares data")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestCholeskyJitterRecoversNearSingular(t *testing.T) {
	// A singular matrix with a consistent RHS: the jittered factorization
	// still produces a usable solve.
	a := FromRows([][]float64{{2, 4}, {4, 8}})
	l, err := CholeskyJitter(a)
	if err != nil {
		t.Fatal(err)
	}
	x := CholSolve(l, []float64{2, 4})
	// Verify A x ≈ b.
	b := a.MulVec(x)
	if maxAbsDiff(b, []float64{2, 4}) > 1e-5 {
		t.Errorf("A·x = %v, want [2 4]", b)
	}
	// SPD input factors without jitter and matches Cholesky.
	spd := FromRows([][]float64{{4, 2}, {2, 3}})
	l1, err := CholeskyJitter(spd)
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := Cholesky(spd)
	if maxAbsDiff(l1.Data, l2.Data) > 0 {
		t.Error("CholeskyJitter altered an SPD factorization")
	}
}
