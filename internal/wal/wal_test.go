package wal

import (
	"errors"
	"path/filepath"
	"testing"

	"wqrtq/internal/storage"
	"wqrtq/internal/vec"
)

type rec struct {
	kind int
	lsn  uint64
	id   uint64
	p    vec.Point
}

func collect(t *testing.T, fs storage.FS, name string, base uint64) ([]rec, Replayed, error) {
	t.Helper()
	var got []rec
	res, err := Replay(fs, name, base, func(kind int, lsn, id uint64, p vec.Point) error {
		got = append(got, rec{kind, lsn, id, p})
		return nil
	})
	return got, res, err
}

func writeSegment(t *testing.T, fs storage.FS, dir string, base uint64, policy Policy, n int) string {
	t.Helper()
	if err := fs.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, SegmentName(base))
	w, err := Create(fs, dir, name, base, policy)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		lsn := base + uint64(i) + 1
		if i%3 == 2 {
			if err := w.AppendDelete(lsn, uint64(i)); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := w.AppendInsert(lsn, uint64(i), vec.Point{float64(i), 0.5, -1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return name
}

func TestRoundTrip(t *testing.T) {
	for _, policy := range []Policy{SyncAlways, SyncInterval, SyncOff} {
		fs := storage.NewFaultFS()
		name := writeSegment(t, fs, "d", 10, policy, 9)
		got, res, err := collect(t, fs, name, 10)
		if err != nil {
			t.Fatalf("policy %d: %v", policy, err)
		}
		if res.Records != 9 || res.LastLSN != 19 || res.TornBytes != 0 {
			t.Fatalf("policy %d: res = %+v", policy, res)
		}
		for i, r := range got {
			wantKind := KindInsert
			if i%3 == 2 {
				wantKind = KindDelete
			}
			if r.kind != wantKind || r.lsn != 10+uint64(i)+1 || r.id != uint64(i) {
				t.Fatalf("record %d = %+v", i, r)
			}
			if wantKind == KindInsert && (len(r.p) != 3 || r.p[0] != float64(i)) {
				t.Fatalf("record %d point = %v", i, r.p)
			}
			if wantKind == KindDelete && r.p != nil {
				t.Fatalf("delete record carries a point: %+v", r)
			}
		}
	}
}

func TestSyncPolicyCounters(t *testing.T) {
	fs := storage.NewFaultFS()
	fs.MkdirAll("d")
	w, err := Create(fs, "d", "d/"+SegmentName(0), 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	w.AppendInsert(1, 0, vec.Point{1})
	w.AppendInsert(2, 1, vec.Point{2})
	if a, s := w.Counters(); a != 2 || s != 3 { // create sync + 2 append syncs
		t.Fatalf("always: appends=%d syncs=%d", a, s)
	}
	w.Close()

	w, err = Create(fs, "d", "d/"+SegmentName(10), 10, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	w.AppendInsert(11, 0, vec.Point{1})
	if a, s := w.Counters(); a != 1 || s != 1 { // only the create sync
		t.Fatalf("off: appends=%d syncs=%d", a, s)
	}
	w.Close()
}

func TestTornTailDropped(t *testing.T) {
	fs := storage.NewFaultFS()
	name := writeSegment(t, fs, "d", 0, SyncAlways, 5)
	data, _ := fs.Bytes(name)
	// Chop the last record mid-frame.
	f, _ := fs.Create(name)
	f.Write(data[:len(data)-7])
	f.Close()

	got, res, err := collect(t, fs, name, 0)
	if err != nil {
		t.Fatalf("torn tail must not be fatal: %v", err)
	}
	if len(got) != 4 || res.Records != 4 || res.LastLSN != 4 || res.TornBytes == 0 {
		t.Fatalf("res = %+v, records = %d", res, len(got))
	}
}

func TestMidFileCorruptionDetected(t *testing.T) {
	fs := storage.NewFaultFS()
	name := writeSegment(t, fs, "d", 0, SyncAlways, 6)
	// Flip a bit inside the middle of the file (record region, not tail).
	sz, _ := fs.Size(name)
	if err := fs.FlipBit(name, sz*8/2); err != nil {
		t.Fatal(err)
	}
	_, _, err := collect(t, fs, name, 0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestHeaderBaseMismatch(t *testing.T) {
	fs := storage.NewFaultFS()
	name := writeSegment(t, fs, "d", 7, SyncAlways, 2)
	_, _, err := collect(t, fs, name, 8)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTornHeaderIsEmptySegment(t *testing.T) {
	fs := storage.NewFaultFS()
	fs.MkdirAll("d")
	f, _ := fs.Create("d/" + SegmentName(3))
	f.Write([]byte("WQWA")) // header torn mid-write
	f.Close()
	got, res, err := collect(t, fs, "d/"+SegmentName(3), 3)
	if err != nil || len(got) != 0 || res.LastLSN != 3 || res.TornBytes != 4 {
		t.Fatalf("got %d records, res %+v, err %v", len(got), res, err)
	}
}

func TestLSNGapDetected(t *testing.T) {
	fs := storage.NewFaultFS()
	fs.MkdirAll("d")
	name := "d/" + SegmentName(0)
	w, err := Create(fs, "d", name, 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	w.AppendInsert(1, 0, vec.Point{1})
	w.AppendInsert(3, 1, vec.Point{2}) // gap: 2 missing
	w.Close()
	_, _, err = collect(t, fs, name, 0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestWriterPoisonedAfterError(t *testing.T) {
	fs := storage.NewFaultFS()
	fs.MkdirAll("d")
	name := "d/" + SegmentName(0)
	w, err := Create(fs, "d", name, 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(1, 0, vec.Point{1}); err != nil {
		t.Fatal(err)
	}
	fs.SetCrashAt(1)
	if err := w.AppendInsert(2, 1, vec.Point{2}); !errors.Is(err, storage.ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	// Poisoned: even though the FS would now accept writes again after
	// Reboot, this writer must keep failing.
	if err := w.AppendInsert(3, 2, vec.Point{3}); !errors.Is(err, storage.ErrCrashed) {
		t.Fatalf("post-poison err = %v, want sticky ErrCrashed", err)
	}
}

func TestSegmentNames(t *testing.T) {
	name := SegmentName(0xabc)
	base, ok := ParseSegmentName(name)
	if !ok || base != 0xabc {
		t.Fatalf("ParseSegmentName(%q) = %d, %v", name, base, ok)
	}
	for _, bad := range []string{"wal-xyz.wal", "snap-0000000000000abc.snap", "wal-abc.wal", ""} {
		if _, ok := ParseSegmentName(bad); ok {
			t.Fatalf("ParseSegmentName(%q) accepted", bad)
		}
	}
}

func TestPolicyFromString(t *testing.T) {
	for s, want := range map[string]Policy{"": SyncAlways, "always": SyncAlways, "interval": SyncInterval, "off": SyncOff} { //wqrtq:unordered each case independent
		got, err := PolicyFromString(s)
		if err != nil || got != want {
			t.Fatalf("PolicyFromString(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := PolicyFromString("sometimes"); err == nil {
		t.Fatal("want error for unknown policy")
	}
}
