// Package wal implements the mutation write-ahead log: length-prefixed,
// CRC-framed insert/delete records appended to segment files with a
// configurable fsync policy.
//
// # Framing
//
// A segment file starts with a 20-byte header
//
//	magic "WQWAL001" | base LSN u64 | CRC32C(magic..base) u32
//
// followed by records, each framed as
//
//	payload length u32 | CRC32C(payload) u32 | payload
//
// with payload
//
//	kind u8 | LSN u64 | id u64 | (inserts only) dim u16 | dim × f64 coords
//
// All integers are little-endian; the checksum is CRC-32/Castagnoli. The
// base LSN names the segment (wal-<base>.wal) and every record in it
// carries an LSN strictly greater than base, consecutive without gaps.
//
// # Torn tails versus corruption
//
// Replay distinguishes the two failure classes recovery must treat
// differently. A decode failure at the end of the file with no structurally
// valid, checksummed record anywhere after it is a torn tail — the expected
// residue of a crash mid-append — and is dropped (reported, not fatal). A
// decode failure followed by a later valid record is mid-file corruption:
// bytes that were once durable have changed, so the segment is rejected
// with ErrCorrupt rather than silently resynchronized. The same applies to
// LSN discontinuities. (A bit flip inside the final record of a segment is
// indistinguishable from a torn append and is classified as a torn tail;
// recovery then restores the longest provably-intact prefix, which is the
// strongest guarantee available without a second copy of the data.)
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
	"time"

	"wqrtq/internal/storage"
	"wqrtq/internal/vec"
)

// Record kinds.
const (
	KindInsert = 1
	KindDelete = 2
)

const (
	magic      = "WQWAL001"
	headerSize = len(magic) + 8 + 4
	frameSize  = 8 // length + payload CRC
	// maxPayload bounds a single record; far beyond any real dimension,
	// tight enough that a corrupted length field cannot trigger a huge
	// allocation.
	maxPayload = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports bytes that were durable but no longer decode — as
// opposed to a torn tail, which replay drops silently. Recovery must
// refuse the segment (or fall back) when it sees this.
var ErrCorrupt = errors.New("wal: corrupt segment")

// Policy selects when appends are made durable.
type Policy int

const (
	// SyncAlways syncs the segment before Append returns: an acknowledged
	// mutation survives any crash.
	SyncAlways Policy = iota
	// SyncInterval leaves syncing to a periodic Sync call; a crash may
	// lose up to one interval of acknowledged mutations.
	SyncInterval
	// SyncOff never syncs except at rotation and Close.
	SyncOff
)

// Writer appends records to one segment file. Methods are safe for
// concurrent use. After any write or sync error the writer is poisoned:
// the file tail may hold a partial frame, so further appends would create
// mid-file corruption; every later call returns the first error.
type Writer struct {
	mu      sync.Mutex
	f       storage.File
	policy  Policy
	base    uint64
	bytes   int64
	appends int64
	syncs   int64
	err     error
	buf     []byte
}

// Create creates segment file name with the given base LSN, syncs the file
// and its directory, and returns a Writer positioned after the header.
func Create(fs storage.FS, dir, name string, base uint64, policy Policy) (*Writer, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, base)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(hdr, castagnoli))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, policy: policy, base: base, bytes: int64(headerSize), syncs: 1}, nil
}

// Base returns the segment's base LSN.
func (w *Writer) Base() uint64 { return w.base }

// Bytes returns the segment size written so far, including the header.
func (w *Writer) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// Counters returns the number of successful appends and syncs.
func (w *Writer) Counters() (appends, syncs int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends, w.syncs
}

// AppendInsert logs the insertion of point p as record id with the given
// LSN, honoring the sync policy before returning.
func (w *Writer) AppendInsert(lsn, id uint64, p vec.Point) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.buf = w.buf[:0]
	w.buf = append(w.buf, KindInsert)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, lsn)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, id)
	w.buf = binary.LittleEndian.AppendUint16(w.buf, uint16(len(p)))
	for _, c := range p {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(c))
	}
	return w.appendLocked()
}

// AppendDelete logs the deletion of record id with the given LSN.
func (w *Writer) AppendDelete(lsn, id uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.buf = w.buf[:0]
	w.buf = append(w.buf, KindDelete)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, lsn)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, id)
	return w.appendLocked()
}

func (w *Writer) appendLocked() error {
	frame := make([]byte, 0, frameSize+len(w.buf))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(w.buf)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(w.buf, castagnoli))
	frame = append(frame, w.buf...)
	if _, err := w.f.Write(frame); err != nil {
		w.err = fmt.Errorf("wal: append: %w", err)
		return w.err
	}
	w.bytes += int64(len(frame))
	w.appends++
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("wal: sync: %w", err)
			return w.err
		}
		w.syncs++
	}
	return nil
}

// Sync forces the segment durable — the periodic flush under SyncInterval
// and the final flush at rotation and Close.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("wal: sync: %w", err)
		return w.err
	}
	w.syncs++
	return nil
}

// Close syncs (unless already poisoned) and closes the segment.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	serr := w.syncLocked()
	cerr := w.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Replayed summarizes one segment replay.
type Replayed struct {
	// Records is the number of records delivered to the callback.
	Records int
	// LastLSN is the LSN of the last delivered record (Base if none).
	LastLSN uint64
	// TornBytes is the length of the discarded tail, 0 if the segment
	// ended cleanly. A torn header (file shorter or damaged before the
	// first record boundary) reports the whole file as torn.
	TornBytes int64
}

// Replay reads segment name, verifies the header against wantBase, and
// calls fn for every intact record in order. Inserts pass the decoded
// point; deletes pass nil. Torn tails are dropped and reported in the
// result; anything that implies damage to previously-durable bytes —
// header damage on a non-empty prefix, a bad record followed by a valid
// one, an LSN gap — returns ErrCorrupt.
func Replay(fs storage.FS, name string, wantBase uint64, fn func(kind int, lsn, id uint64, p vec.Point) error) (Replayed, error) {
	var res Replayed
	f, err := fs.Open(name)
	if err != nil {
		return res, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return res, err
	}

	res.LastLSN = wantBase
	if len(data) < headerSize {
		// The segment was created but its header never became fully
		// durable — a torn creation, recoverable only as "empty".
		res.TornBytes = int64(len(data))
		return res, nil
	}
	hdr := data[:headerSize]
	wantCRC := binary.LittleEndian.Uint32(hdr[len(magic)+8:])
	if string(hdr[:len(magic)]) != magic || crc32.Checksum(hdr[:len(magic)+8], castagnoli) != wantCRC {
		if validRecordAfter(data, 1) {
			return res, fmt.Errorf("%w: %s: damaged header with intact records after it", ErrCorrupt, name)
		}
		res.TornBytes = int64(len(data))
		return res, nil
	}
	if base := binary.LittleEndian.Uint64(hdr[len(magic):]); base != wantBase {
		return res, fmt.Errorf("%w: %s: header base LSN %d, want %d", ErrCorrupt, name, base, wantBase)
	}

	off := headerSize
	next := wantBase + 1
	for off < len(data) {
		payload, n := decodeFrame(data[off:])
		if payload == nil {
			if validRecordAfter(data, off+1) {
				return res, fmt.Errorf("%w: %s: undecodable record at offset %d with intact records after it",
					ErrCorrupt, name, off)
			}
			res.TornBytes = int64(len(data) - off)
			return res, nil
		}
		kind, lsn, id, p, derr := decodePayload(payload)
		if derr != nil {
			if validRecordAfter(data, off+1) {
				return res, fmt.Errorf("%w: %s: %v at offset %d with intact records after it", ErrCorrupt, name, derr, off)
			}
			res.TornBytes = int64(len(data) - off)
			return res, nil
		}
		if lsn != next {
			return res, fmt.Errorf("%w: %s: LSN %d at offset %d, want %d", ErrCorrupt, name, lsn, off, next)
		}
		if err := fn(kind, lsn, id, p); err != nil {
			return res, err
		}
		res.Records++
		res.LastLSN = lsn
		next++
		off += n
	}
	return res, nil
}

// decodeFrame parses one frame at the start of b, returning the verified
// payload and total frame length, or (nil, 0) if b does not begin with a
// structurally valid, checksummed frame.
func decodeFrame(b []byte) ([]byte, int) {
	if len(b) < frameSize {
		return nil, 0
	}
	ln := int(binary.LittleEndian.Uint32(b))
	if ln == 0 || ln > maxPayload || len(b) < frameSize+ln {
		return nil, 0
	}
	payload := b[frameSize : frameSize+ln]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:]) {
		return nil, 0
	}
	return payload, frameSize + ln
}

func decodePayload(p []byte) (kind int, lsn, id uint64, pt vec.Point, err error) {
	if len(p) < 17 {
		return 0, 0, 0, nil, fmt.Errorf("payload %d bytes", len(p))
	}
	kind = int(p[0])
	lsn = binary.LittleEndian.Uint64(p[1:])
	id = binary.LittleEndian.Uint64(p[9:])
	switch kind {
	case KindDelete:
		if len(p) != 17 {
			return 0, 0, 0, nil, fmt.Errorf("delete payload %d bytes", len(p))
		}
		return kind, lsn, id, nil, nil
	case KindInsert:
		if len(p) < 19 {
			return 0, 0, 0, nil, fmt.Errorf("insert payload %d bytes", len(p))
		}
		dim := int(binary.LittleEndian.Uint16(p[17:]))
		if dim == 0 || len(p) != 19+8*dim {
			return 0, 0, 0, nil, fmt.Errorf("insert payload %d bytes for dim %d", len(p), dim)
		}
		pt = make(vec.Point, dim)
		for i := range pt {
			pt[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[19+8*i:]))
		}
		return kind, lsn, id, pt, nil
	default:
		return 0, 0, 0, nil, fmt.Errorf("record kind %d", kind)
	}
}

// validRecordAfter reports whether any offset in [from, len(data)) begins a
// structurally valid, checksummed record whose payload also decodes — the
// scan that separates a torn tail (nothing valid follows the damage) from
// mid-file corruption (durable bytes changed in front of intact ones).
func validRecordAfter(data []byte, from int) bool {
	if from < 0 {
		from = 0
	}
	for off := from; off+frameSize < len(data); off++ {
		if payload, _ := decodeFrame(data[off:]); payload != nil {
			if _, _, _, _, err := decodePayload(payload); err == nil {
				return true
			}
		}
	}
	return false
}

// SegmentName formats the canonical file name for a segment with the given
// base LSN.
func SegmentName(base uint64) string {
	return fmt.Sprintf("wal-%016x.wal", base)
}

// ParseSegmentName extracts the base LSN from a segment file name.
func ParseSegmentName(name string) (uint64, bool) {
	var base uint64
	if _, err := fmt.Sscanf(name, "wal-%016x.wal", &base); err != nil {
		return 0, false
	}
	return base, name == SegmentName(base)
}

// PolicyFromString maps the -fsync flag values to a Policy.
func PolicyFromString(s string) (Policy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
}

// An IntervalDefault for engines that enable SyncInterval without
// configuring a period.
const IntervalDefault = 50 * time.Millisecond
