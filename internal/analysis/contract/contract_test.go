package contract

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseClauses(t *testing.T) {
	var c Contract
	if err := parseClauses("noescape(c,wb) inline nobce noalloc", &c); err != nil {
		t.Fatalf("parseClauses: %v", err)
	}
	if !c.Inline || !c.NoBCE || !c.NoAlloc {
		t.Errorf("clauses = %+v, want all boolean clauses set", c)
	}
	if len(c.NoEscape) != 2 || c.NoEscape[0] != "c" || c.NoEscape[1] != "wb" {
		t.Errorf("NoEscape = %v, want [c wb]", c.NoEscape)
	}
	for _, bad := range []string{"", "fast", "noescape()", "noescape(a,)", "nobce extra(x)"} {
		var c Contract
		if err := parseClauses(bad, &c); err == nil {
			t.Errorf("parseClauses(%q) accepted an invalid contract", bad)
		}
	}
}

func TestCollect(t *testing.T) {
	dir := t.TempDir()
	src := `package p

// Plain is contracted.
//
//wqrtq:contract inline noescape(a)
func Plain(a []int, _ int) int { return len(a) }

// Method is contracted through a pointer receiver.
//
//wqrtq:contract nobce noalloc
func (m *M) Method(i int) int {
	return m.xs[i]
}

type M struct{ xs []int }

// Unannotated carries no contract.
func Unannotated() {}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	cs, err := Collect(dir, []string{"p.go"})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(cs) != 2 {
		t.Fatalf("collected %d contracts, want 2: %+v", len(cs), cs)
	}
	plain, meth := cs[0], cs[1]
	if plain.Func != "Plain" || plain.File != "p.go" || !plain.Inline {
		t.Errorf("Plain = %+v", plain)
	}
	if len(plain.Params) != 1 || plain.Params[0] != "a" {
		t.Errorf("Plain params = %v, want [a] (blanks skipped)", plain.Params)
	}
	if meth.Func != "(*M).Method" || !meth.NoBCE || !meth.NoAlloc {
		t.Errorf("Method = %+v, want (*M).Method with nobce+noalloc", meth)
	}
	if meth.StartLine >= meth.EndLine {
		t.Errorf("Method range [%d,%d] must span the body", meth.StartLine, meth.EndLine)
	}
	if len(meth.Params) != 2 || meth.Params[0] != "m" || meth.Params[1] != "i" {
		t.Errorf("Method params = %v, want receiver first", meth.Params)
	}
}

func TestCollectRejectsGenerics(t *testing.T) {
	dir := t.TempDir()
	src := `package p

//wqrtq:contract inline
func G[T any](x T) T { return x }
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(dir, []string{"p.go"}); err == nil || !strings.Contains(err.Error(), "generic") {
		t.Errorf("Collect on a generic contract: err = %v, want generic rejection", err)
	}
}

func TestCheck(t *testing.T) {
	facts := parse(t, strings.Join([]string{
		"p.go:10:6: can inline Good with cost 10 as: func() int { return 0 }",
		"p.go:10:12: a does not escape",
		"p.go:20:6: cannot inline Slow: function too complex: cost 200 exceeds budget 80",
		"p.go:22:9: Found IsInBounds",
		"p.go:23:10: make([]int, n) escapes to heap:",
		"p.go:30:6: cannot inline Leaky: recursive",
		"p.go:30:15: leaking param: b",
		"", // trailing newline
	}, "\n"))
	mk := func(fn string, start, end int, mut func(*Contract)) Contract {
		c := Contract{Func: fn, File: "p.go", StartLine: start, EndLine: end, Params: []string{"a", "b"}}
		mut(&c)
		return c
	}
	cases := []struct {
		name  string
		c     Contract
		kinds []string
	}{
		{"clean", mk("Good", 10, 12, func(c *Contract) { c.Inline, c.NoBCE, c.NoAlloc, c.NoEscape = true, true, true, []string{"a"} }), nil},
		{"inline lost", mk("Slow", 20, 25, func(c *Contract) { c.Inline = true }), []string{"inline"}},
		{"bce and alloc", mk("Slow", 20, 25, func(c *Contract) { c.NoBCE, c.NoAlloc = true, true }), []string{"nobce", "noalloc"}},
		{"param leak", mk("Leaky", 30, 33, func(c *Contract) { c.NoEscape = []string{"b"} }), []string{"noescape"}},
		{"stale function", mk("Gone", 40, 45, func(c *Contract) { c.NoBCE = true }), []string{"stale"}},
		{"stale param", mk("Good", 10, 12, func(c *Contract) { c.NoEscape = []string{"zz"} }), []string{"stale"}},
		{"no verdict param", mk("Good", 10, 12, func(c *Contract) { c.NoEscape = []string{"b"} }), []string{"stale"}},
		{"out of range facts ignored", mk("Good", 10, 12, func(c *Contract) { c.NoBCE, c.NoAlloc = true, true }), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vs := Check([]Contract{tc.c}, facts)
			var kinds []string
			for _, v := range vs {
				kinds = append(kinds, v.Kind)
			}
			if len(kinds) != len(tc.kinds) {
				t.Fatalf("violations = %v, want kinds %v", vs, tc.kinds)
			}
			for i, k := range tc.kinds {
				if kinds[i] != k {
					t.Errorf("violation %d kind = %s, want %s (%v)", i, kinds[i], k, vs)
				}
			}
		})
	}
}
