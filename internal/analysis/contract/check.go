// check.go diffs collected contracts against the parsed diagnostic stream.
package contract

import "fmt"

// Violation is one broken or stale contract clause, positioned at the
// offending diagnostic (violations) or the contract's declaration
// (staleness).
type Violation struct {
	File string
	Line int
	Func string
	Kind string // "noescape", "inline", "nobce", "noalloc" or "stale"
	Msg  string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s:%d: %s: contract %s: %s", v.File, v.Line, v.Func, v.Kind, v.Msg)
}

// Check returns every violation of the given contracts against the facts,
// in contract order. The staleness rule is load-bearing: under -m=2 every
// compiled function receives exactly one inline decision, so a contract
// whose function has none was not compiled under the gate's eyes (renamed,
// moved, or build-tagged out) and must fail rather than silently pass.
func Check(contracts []Contract, facts *Facts) []Violation {
	var out []Violation
	for _, c := range contracts {
		out = append(out, checkOne(c, facts)...)
	}
	return out
}

func checkOne(c Contract, facts *Facts) []Violation {
	var out []Violation
	stale := func(msg string) {
		out = append(out, Violation{File: c.File, Line: c.StartLine, Func: c.Func, Kind: "stale", Msg: msg})
	}
	inl, seen := facts.Inline[c.File][c.Func]
	if !seen {
		stale("no inline decision for " + c.Func + " in the diagnostic stream — the annotated function was not compiled (renamed, moved, or build-tagged out?)")
		return out
	}
	if c.Inline && !inl.Can {
		out = append(out, Violation{
			File: c.File, Line: inl.Line, Func: c.Func, Kind: "inline",
			Msg: "compiler no longer inlines it: " + inl.Reason,
		})
	}
	inRange := func(line int) bool { return line >= c.StartLine && line <= c.EndLine }
	if c.NoBCE {
		for _, b := range facts.BCE[c.File] {
			if inRange(b.Line) {
				out = append(out, Violation{
					File: c.File, Line: b.Line, Func: c.Func, Kind: "nobce",
					Msg: fmt.Sprintf("bounds check survives at col %d (%s)", b.Col, b.Kind),
				})
			}
		}
	}
	if c.NoAlloc {
		for _, e := range facts.Escape[c.File] {
			if (e.Kind == EscapeHeap || e.Kind == MovedToHeap) && inRange(e.Line) {
				out = append(out, Violation{
					File: c.File, Line: e.Line, Func: c.Func, Kind: "noalloc",
					Msg: "heap allocation survives: " + e.Msg,
				})
			}
		}
	}
	for _, p := range c.NoEscape {
		out = append(out, checkNoEscape(c, p, facts, stale)...)
	}
	return out
}

func checkNoEscape(c Contract, p string, facts *Facts, stale func(string)) []Violation {
	declared := false
	for _, name := range c.Params {
		if name == p {
			declared = true
			break
		}
	}
	if !declared {
		stale("noescape(" + p + ") names no parameter of " + c.Func)
		return nil
	}
	var out []Violation
	verdict := false
	inRange := func(line int) bool { return line >= c.StartLine && line <= c.EndLine }
	for _, e := range facts.Escape[c.File] {
		if e.Var != p || !inRange(e.Line) {
			continue
		}
		switch e.Kind {
		case LeakParam, MovedToHeap:
			verdict = true
			out = append(out, Violation{
				File: c.File, Line: e.Line, Func: c.Func, Kind: "noescape",
				Msg: p + " escapes: " + e.Msg,
			})
			return out // one verdict per param is enough
		case NonEscape:
			verdict = true
		}
	}
	if !verdict {
		stale("no escape verdict for parameter " + p + " of " + c.Func + " — not a reference-typed parameter, or the contract drifted")
	}
	return out
}
