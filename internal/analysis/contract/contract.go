// Package contract implements the compiler-contract gate behind
// cmd/wqrtqgate: the `//wqrtq:contract` annotation grammar, collection of
// annotated functions from source, parsing of the gc diagnostic stream
// (gcdiag.go) and the checker that diffs the two (check.go).
//
// # Grammar
//
// A contract is a function doc-comment directive holding one or more
// whitespace-separated clauses:
//
//	//wqrtq:contract noescape(c,wb) inline nobce noalloc
//
//	noescape(p,…)  the named parameters (receiver included) must not leak
//	               to the heap — result-only flows are allowed
//	inline         the compiler must report the function inlinable
//	nobce          no bounds or slice-bounds check may survive in the
//	               function's declaration line range
//	noalloc        no heap allocation site ("escapes to heap", "moved to
//	               heap") may appear in the declaration line range
//
// Contracts bind to the compiler's view of the build: a contract whose
// diagnostics cannot be found at all (function renamed, file build-tagged
// out, parameter dropped) is an error, not a silent pass, so annotations
// cannot rot (DESIGN.md §12).
package contract

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"wqrtq/internal/analysis"
)

// Contract is one annotated function with its parsed clauses and the
// source coordinates needed to attribute position-tagged diagnostics.
type Contract struct {
	Func string // compiler-style name: "F", "T.M" or "(*T).M"
	File string // module-root-relative path with forward slashes
	// StartLine..EndLine span the whole declaration (signature through
	// closing brace). BCE and allocation facts are attributed by this
	// range: surviving checks from inlined callees report at the caller's
	// call-site line, so name-based attribution would miss them.
	StartLine, EndLine int
	NoEscape           []string // params required not to leak to the heap
	Inline             bool
	NoBCE              bool
	NoAlloc            bool
	Params             []string // declared receiver+param names, for staleness
	Raw                string   // original clause text, for messages
}

// parseClauses parses the text after "//wqrtq:contract" into c's clause
// fields.
func parseClauses(text string, c *Contract) error {
	c.Raw = text
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return fmt.Errorf("empty contract: expected noescape(p,…), inline, nobce or noalloc")
	}
	for _, f := range fields {
		switch {
		case f == "inline":
			c.Inline = true
		case f == "nobce":
			c.NoBCE = true
		case f == "noalloc":
			c.NoAlloc = true
		case strings.HasPrefix(f, "noescape(") && strings.HasSuffix(f, ")"):
			inner := strings.TrimSuffix(strings.TrimPrefix(f, "noescape("), ")")
			for _, p := range strings.Split(inner, ",") {
				p = strings.TrimSpace(p)
				if p == "" {
					return fmt.Errorf("noescape clause with empty parameter name in %q", text)
				}
				c.NoEscape = append(c.NoEscape, p)
			}
		default:
			return fmt.Errorf("unknown contract clause %q in %q", f, text)
		}
	}
	return nil
}

// Collect parses the given Go files (absolute or moduleDir-relative paths)
// and returns every //wqrtq:contract-annotated function, with files
// recorded relative to moduleDir, matching the positions `go build` prints
// when invoked there. Files that fail to parse are reported as errors —
// the gate must not silently skip what it cannot read.
func Collect(moduleDir string, files []string) ([]Contract, error) {
	fset := token.NewFileSet()
	var out []Contract
	for _, file := range files {
		abs := file
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(moduleDir, file)
		}
		f, err := parser.ParseFile(fset, abs, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", file, err)
		}
		rel, err := filepath.Rel(moduleDir, abs)
		if err != nil {
			rel = file
		}
		rel = filepath.ToSlash(rel)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			arg, ok := analysis.FuncDirectiveArg(fn, analysis.DirContract)
			if !ok {
				continue
			}
			name, err := compilerName(fn)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", rel, fset.Position(fn.Pos()).Line, err)
			}
			c := Contract{
				Func:      name,
				File:      rel,
				StartLine: fset.Position(fn.Pos()).Line,
				EndLine:   fset.Position(fn.End()).Line,
				Params:    paramNames(fn),
			}
			if err := parseClauses(arg, &c); err != nil {
				return nil, fmt.Errorf("%s:%d: %s: %w", rel, c.StartLine, name, err)
			}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].StartLine < out[j].StartLine
	})
	return out, nil
}

// compilerName renders fn's name the way gc diagnostics print it:
// "F" for functions, "T.M" / "(*T).M" for methods.
func compilerName(fn *ast.FuncDecl) (string, error) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		if fn.Type.TypeParams != nil {
			return "", fmt.Errorf("generic function %s cannot carry a contract: gc reports shape instantiations, not source names", fn.Name.Name)
		}
		return fn.Name.Name, nil
	}
	t := fn.Recv.List[0].Type
	ptr := false
	if st, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = st.X
	}
	switch rt := t.(type) {
	case *ast.Ident:
		if ptr {
			return "(*" + rt.Name + ")." + fn.Name.Name, nil
		}
		return rt.Name + "." + fn.Name.Name, nil
	default:
		return "", fmt.Errorf("method %s has a generic or unsupported receiver: gc reports shape instantiations, not source names", fn.Name.Name)
	}
}

// paramNames collects the declared receiver and parameter names
// (skipping blanks and unnamed parameters).
func paramNames(fn *ast.FuncDecl) []string {
	var out []string
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if n.Name != "_" {
					out = append(out, n.Name)
				}
			}
		}
	}
	add(fn.Recv)
	add(fn.Type.Params)
	return out
}
