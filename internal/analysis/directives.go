package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The annotation grammar (DESIGN.md §11). Directives are ordinary Go
// directive comments — `//wqrtq:<name>` with no space after the slashes —
// so gofmt keeps them attached and go/ast excludes them from doc text.
const (
	// DirHotPath marks a function whose body must be allocation-free
	// (checked by hotpathalloc). Goes on the function's doc comment.
	DirHotPath = "hotpath"

	// DirUnordered allowlists one map-range statement whose iteration
	// order provably cannot reach a response or a score (checked by
	// maprange). Goes on the `for ... range` line or the line above.
	DirUnordered = "unordered"

	// DirBounded allowlists one loop in a query-path package whose trip
	// count is small and input-independent — dimension sweeps, fixed
	// retries — so it needs no cancellation check (checked by ctxloop).
	// Goes on the loop line or the line above.
	DirBounded = "bounded"

	// DirFloatCmp marks an approved float comparator helper inside which
	// direct ==/!= on floats is the point (checked by floateq). Goes on
	// the function's doc comment.
	DirFloatCmp = "floatcmp"
)

const directivePrefix = "//wqrtq:"

// Directives indexes every //wqrtq: directive comment in a package by file
// and line so analyzers can answer "is this node annotated?" without
// re-walking comment lists. Statement-level directives may sit at the end
// of the statement's first line or alone on the line immediately above it —
// the same two placements gofmt preserves.
type Directives struct {
	fset *token.FileSet
	// byLine maps file name -> line -> directive names on that line.
	byLine map[string]map[int][]string
}

// NewDirectives scans the files' comments for //wqrtq: directives.
func NewDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
			}
		}
	}
	return d
}

func parseDirective(text string) (name string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	// Allow trailing free-text rationale: "//wqrtq:unordered summing ints".
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// At reports whether directive name is present on the line where node
// starts, or on the line immediately above it.
func (d *Directives) At(node ast.Node, name string) bool {
	pos := d.fset.Position(node.Pos())
	lines := d.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, n := range lines[l] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// HasFuncDirective reports whether fn's doc comment carries the named
// directive. Directive comments are part of the doc comment group but are
// excluded from Doc.Text(), so we scan the raw list.
func HasFuncDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if n, ok := parseDirective(c.Text); ok && n == name {
			return true
		}
	}
	return false
}
