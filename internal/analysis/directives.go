package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The annotation grammar (DESIGN.md §11). Directives are ordinary Go
// directive comments — `//wqrtq:<name>` with no space after the slashes —
// so gofmt keeps them attached and go/ast excludes them from doc text.
const (
	// DirHotPath marks a function whose body must be allocation-free
	// (checked by hotpathalloc). Goes on the function's doc comment.
	DirHotPath = "hotpath"

	// DirUnordered allowlists one map-range statement whose iteration
	// order provably cannot reach a response or a score (checked by
	// maprange). Goes on the `for ... range` line or the line above.
	DirUnordered = "unordered"

	// DirBounded allowlists one loop in a query-path package whose trip
	// count is small and input-independent — dimension sweeps, fixed
	// retries — so it needs no cancellation check (checked by ctxloop).
	// Goes on the loop line or the line above.
	DirBounded = "bounded"

	// DirFloatCmp marks an approved float comparator helper inside which
	// direct ==/!= on floats is the point (checked by floateq). Goes on
	// the function's doc comment.
	DirFloatCmp = "floatcmp"

	// DirContract declares compiler-level guarantees for a function:
	// `//wqrtq:contract noescape(p,…) inline nobce noalloc`, checked by
	// cmd/wqrtqgate against the gc diagnostic stream (DESIGN.md §12). Goes
	// on the function's doc comment, usually next to //wqrtq:hotpath.
	DirContract = "contract"

	// DirMutates allowlists one statement (or function) that writes
	// through a snapshot-reachable type outside its builder package
	// (checked by snapshotmut). A rationale is mandatory:
	// `//wqrtq:mutates <why this write cannot be observed by a reader>`.
	DirMutates = "mutates"

	// DirPrealloc marks a function that may grow slices, but only into
	// preallocated scratch it writes back to the same destination
	// (checked by growthcheck, which also covers the hotpath set). Goes
	// on the function's doc comment.
	DirPrealloc = "prealloc"
)

const directivePrefix = "//wqrtq:"

// Directives indexes every //wqrtq: directive comment in a package by file
// and line so analyzers can answer "is this node annotated?" without
// re-walking comment lists. Statement-level directives may sit at the end
// of the statement's first line or alone on the line immediately above it —
// the same two placements gofmt preserves.
type Directives struct {
	fset *token.FileSet
	// byLine maps file name -> line -> directives on that line.
	byLine map[string]map[int][]lineDirective
}

// lineDirective is one parsed //wqrtq: comment: its name and the trailing
// free-text argument (a rationale, or the contract clause list).
type lineDirective struct {
	name string
	arg  string
}

// NewDirectives scans the files' comments for //wqrtq: directives.
func NewDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, byLine: make(map[string]map[int][]lineDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, arg, ok := ParseDirectiveArg(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]lineDirective)
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], lineDirective{name: name, arg: arg})
			}
		}
	}
	return d
}

func parseDirective(text string) (name string, ok bool) {
	name, _, ok = ParseDirectiveArg(text)
	return name, ok
}

// ParseDirectiveArg splits a //wqrtq: directive comment into its name and
// the trailing argument text (trimmed; empty when the directive stands
// alone). The argument carries free-text rationales
// ("//wqrtq:unordered summing ints") and structured payloads
// ("//wqrtq:contract noescape(c,wb) nobce").
func ParseDirectiveArg(text string) (name, arg string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, arg = rest[:i], strings.TrimSpace(rest[i:])
	} else {
		name = rest
	}
	return name, arg, name != ""
}

// At reports whether directive name is present on the line where node
// starts, or on the line immediately above it.
func (d *Directives) At(node ast.Node, name string) bool {
	_, ok := d.AtArg(node, name)
	return ok
}

// AtArg is At returning the directive's trailing argument text as well
// (empty when the directive stands alone).
func (d *Directives) AtArg(node ast.Node, name string) (arg string, found bool) {
	pos := d.fset.Position(node.Pos())
	lines := d.byLine[pos.Filename]
	if lines == nil {
		return "", false
	}
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, ld := range lines[l] {
			if ld.name == name {
				return ld.arg, true
			}
		}
	}
	return "", false
}

// HasFuncDirective reports whether fn's doc comment carries the named
// directive. Directive comments are part of the doc comment group but are
// excluded from Doc.Text(), so we scan the raw list.
func HasFuncDirective(fn *ast.FuncDecl, name string) bool {
	_, ok := FuncDirectiveArg(fn, name)
	return ok
}

// FuncDirectiveArg is HasFuncDirective returning the directive's trailing
// argument text as well (empty when the directive stands alone).
func FuncDirectiveArg(fn *ast.FuncDecl, name string) (arg string, found bool) {
	if fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		if n, a, ok := ParseDirectiveArg(c.Text); ok && n == name {
			return a, true
		}
	}
	return "", false
}
