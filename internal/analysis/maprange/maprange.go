// Package maprange forbids `for range` over maps in answer-assembly and
// scoring code, where Go's randomized map iteration order would leak
// nondeterminism into responses, cache contents, or float accumulation
// order — breaking the bit-identical discipline every differential suite
// in this repository asserts.
//
// Iterations whose order provably cannot be observed (building another
// map, summing integers) are allowlisted with //wqrtq:unordered on the
// range line or the line above, with a short rationale after the
// directive: `//wqrtq:unordered summing ints`.
package maprange

import (
	"go/ast"
	"go/types"

	"wqrtq/internal/analysis"
)

// OrderedPackages are the packages where map iteration order can reach an
// answer: the engine batch/assembly layer, the HTTP response assembly in
// the root package, and every scoring/evaluation package.
var OrderedPackages = map[string]bool{
	"wqrtq":                    true,
	"wqrtq/internal/engine":    true,
	"wqrtq/internal/core":      true,
	"wqrtq/internal/topk":      true,
	"wqrtq/internal/rtopk":     true,
	"wqrtq/internal/kernel":    true,
	"wqrtq/internal/cellindex": true,
	"wqrtq/internal/skyband":   true,
	"wqrtq/internal/shard":     true,
}

var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: "report `for range` over maps in answer-assembly and scoring packages, where iteration " +
		"order breaks bit-identical answers; allowlist order-insensitive sweeps with //wqrtq:unordered",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !OrderedPackages[pass.Pkg.Path()] {
		return nil
	}
	dirs := pass.Directives()
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if dirs.At(rng, analysis.DirUnordered) {
				return true
			}
			pass.Reportf(rng.Pos(), "map iteration order is randomized and may leak into answers (sort the keys, iterate an ordered slice, or annotate //wqrtq:unordered with a rationale)")
			return true
		})
	}
	return nil
}
