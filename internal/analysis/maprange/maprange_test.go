package maprange_test

import (
	"testing"

	"wqrtq/internal/analysis/analysistest"
	"wqrtq/internal/analysis/maprange"
)

func TestMapRange(t *testing.T) {
	analysistest.Run(t, "testdata/src", maprange.Analyzer, "wqrtq", "other")
}
