// Package other is outside the ordered-package gate: map ranges here are
// not this analyzer's business.
package other

func Sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
