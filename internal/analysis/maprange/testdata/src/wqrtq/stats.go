// Package wqrtq exercises the maprange analyzer inside a gated
// answer-assembly import path.
package wqrtq

func Sum(m map[string]int) int {
	s := 0
	for _, v := range m { // want `map iteration order is randomized`
		s += v
	}
	return s
}

// SumAllowed carries the allowlist directive: clean.
func SumAllowed(m map[string]int) int {
	s := 0
	//wqrtq:unordered summing int counters; result is order-free
	for _, v := range m {
		s += v
	}
	return s
}

// SumSlice ranges over a slice: clean.
func SumSlice(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}
