// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface used by the wqrtqlint invariant
// suite. The container this repository grows in must build with the standard
// library alone, so rather than importing x/tools we mirror the small subset
// the suite needs: an Analyzer is a named Run function over a type-checked
// package (a Pass), and diagnostics are (position, message) pairs reported
// through the Pass.
//
// The five analyzers under internal/analysis/... encode the invariants the
// paper's correctness argument rests on — zero-alloc hot loops, cooperative
// cancellation, deterministic iteration, centralized float comparison, and
// no blocking under the engine/shard mutexes — as compile-time checks. Each
// is the static twin of a runtime guard (Test*AllocsPerOp, the differential
// suites, the -race hammers); see DESIGN.md §11 for the mapping.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer closely enough that the suite
// could be ported to the real framework by swapping imports.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be a
	// valid Go identifier.
	Name string

	// Doc is the one-paragraph help text; the first line is a summary.
	Doc string

	// Run applies the analyzer to a single package and reports diagnostics
	// via pass.Report. A non-nil error aborts the whole run (reserved for
	// analyzer bugs, not findings).
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver supplies it.
	Report func(Diagnostic)

	dirs *Directives // lazily built directive index
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Directives returns the package's directive index, building it on first
// use.
func (p *Pass) Directives() *Directives {
	if p.dirs == nil {
		p.dirs = NewDirectives(p.Fset, p.Files)
	}
	return p.dirs
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// go vet type-checks test variants of packages; the invariants enforced
// here are production-code discipline (tests legitimately compare floats
// exactly, range over maps, and allocate), so every analyzer skips test
// files through this helper.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// TypeOf returns the type of expression e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// IsFloat reports whether t's core type is a floating-point scalar.
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// IsInterface reports whether t is a non-nil interface type.
func IsInterface(t types.Type) bool {
	return t != nil && types.IsInterface(t)
}

// FuncFor resolves the *types.Func called by e, following method values and
// selector expressions; nil for builtins, conversions, and indirect calls
// through function-typed variables.
func FuncFor(info *types.Info, e ast.Expr) *types.Func {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// PkgPathOf returns the import path of f's package, or "" for builtins and
// universe-scope objects.
func PkgPathOf(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}
