// Package load type-checks Go packages for the wqrtqlint analyzers without
// depending on golang.org/x/tools/go/packages.
//
// Two loading modes cover the suite's needs:
//
//   - Module loads packages of the enclosing module by shelling out to
//     `go list -deps -export -json`, which compiles dependencies into the
//     build cache and hands back export-data files. Imports are then
//     resolved through the compiler ("gc") importer with a lookup into
//     that file map — the same arrangement `go vet` sets up for vet tools,
//     so standalone runs and -vettool runs see identical type information.
//
//   - Dir loads GOPATH-style fixture trees (testdata/src/...) for the
//     analysistest harness: local packages are parsed and type-checked
//     from source recursively, while standard-library imports fall back
//     to export data obtained from one lazy `go list` call.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir for the given patterns
// and returns the decoded package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export-data files.
type exportImporter struct {
	imp   types.ImporterFrom
	files map[string]string // import path -> export data file
}

func newExportImporter(fset *token.FileSet, files map[string]string) *exportImporter {
	e := &exportImporter{files: files}
	e.imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := e.files[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}).(types.ImporterFrom)
	return e
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.imp.Import(path)
}

// Module loads the module packages matched by patterns (e.g. "./...") from
// moduleDir. Only non-dependency matches are returned; their imports are
// resolved from export data.
func Module(moduleDir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	conf := &types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}

	var out []*Package
	for _, p := range listed {
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typeCheckDir(fset, conf, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// typeCheckDir parses the named files of one package and type-checks them.
func typeCheckDir(fset *token.FileSet, conf *types.Config, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// dirLoader resolves imports for a GOPATH-style fixture tree: packages
// under srcdir are type-checked from source; everything else is assumed to
// be standard library and resolved from export data fetched lazily via
// `go list`.
type dirLoader struct {
	srcdir  string
	fset    *token.FileSet
	pkgs    map[string]*Package // loaded local packages by import path
	types   map[string]*types.Package
	exp     *exportImporter
	loading map[string]bool
}

func (l *dirLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if t, ok := l.types[path]; ok {
		return t, nil
	}
	if dir := filepath.Join(l.srcdir, filepath.FromSlash(path)); isPkgDir(dir) {
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	// Standard library: fetch export data on first use.
	if _, ok := l.exp.files[path]; !ok {
		listed, err := goList(l.srcdir, []string{path})
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				l.exp.files[p.ImportPath] = p.Export
			}
		}
	}
	return l.exp.Import(path)
}

func isPkgDir(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

func (l *dirLoader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	conf := &types.Config{Importer: l, Sizes: types.SizesFor("gc", "amd64")}
	pkg, err := typeCheckDir(l.fset, conf, path, dir, names)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	l.types[path] = pkg.Types
	return pkg, nil
}

// Dir loads the named packages from a GOPATH-style tree rooted at
// srcdir (srcdir/<importpath>/*.go), as the analysistest harness expects.
func Dir(srcdir string, paths ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	l := &dirLoader{
		srcdir:  srcdir,
		fset:    fset,
		pkgs:    make(map[string]*Package),
		types:   make(map[string]*types.Package),
		exp:     newExportImporter(fset, make(map[string]string)),
		loading: make(map[string]bool),
	}
	var out []*Package
	for _, path := range paths {
		dir := filepath.Join(srcdir, filepath.FromSlash(path))
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
