// Package other is outside the locked-package gate: its mutexes are not
// the serving path's and blocking under them is not this analyzer's
// business.
package other

import "sync"

type T struct {
	mu sync.Mutex
	ch chan int
}

func (t *T) Send(v int) {
	t.mu.Lock()
	t.ch <- v
	t.mu.Unlock()
}
