// Package engine exercises the lockhold analyzer inside a gated
// locked-package import path.
package engine

import (
	"sync"
	"time"
)

type E struct {
	mu sync.Mutex
	ch chan int
}

func (e *E) BadSend(v int) {
	e.mu.Lock()
	e.ch <- v // want `channel send while holding e.mu in BadSend`
	e.mu.Unlock()
}

func (e *E) BadRecv() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return <-e.ch // want `channel receive while holding e.mu in BadRecv`
}

func (e *E) BadSelect(v int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select { // want `select while holding e.mu in BadSelect`
	case e.ch <- v:
	default:
	}
}

func (e *E) BadSleep() {
	e.mu.Lock()
	defer e.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding e.mu in BadSleep`
}

func (e *E) BadWait(wg *sync.WaitGroup) {
	e.mu.Lock()
	defer e.mu.Unlock()
	wg.Wait() // want `WaitGroup.Wait while holding e.mu in BadWait`
}

// GoodSend releases the lock before the send: clean.
func (e *E) GoodSend(v int) {
	e.mu.Lock()
	closed := false
	e.mu.Unlock()
	if !closed {
		e.ch <- v
	}
}

// GoodGo launches the send on another goroutine, which does not hold our
// lock: clean.
func (e *E) GoodGo(v int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() { e.ch <- v }()
}

// R covers the RWMutex read-side pairing.
type R struct {
	mu sync.RWMutex
	ch chan int
}

// GoodRead releases the read lock before the send: clean.
func (r *R) GoodRead(v int) {
	r.mu.RLock()
	n := cap(r.ch)
	r.mu.RUnlock()
	if n > 0 {
		r.ch <- v
	}
}

func (r *R) BadRead(v int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.ch <- v // want `channel send while holding r.mu in BadRead`
}
