// Package lockhold forbids blocking operations — channel sends/receives,
// select, sync.WaitGroup.Wait, time.Sleep, and I/O package calls — while
// an engine or shard mutex is held. The serving engine's liveness argument
// (batch pool progress, cancellation shedding, snapshot publication) rests
// on those critical sections being short and non-blocking; the -race
// hammers exercise it at runtime, this analyzer enforces it at vet time.
//
// The check is a conservative linear scan over each function body: a
// critical section opens at a sync.Mutex/RWMutex Lock/RLock call and
// closes at the matching Unlock/RUnlock statement; a deferred unlock holds
// the rest of the function. Branch bodies are scanned with a copy of the
// held set. Closure bodies are skipped (they execute on other goroutines
// or after unlock); sync.Cond.Wait is allowed because it must be called
// with its lock held.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"wqrtq/internal/analysis"
)

// LockedPackages are the packages whose mutexes guard the serving path.
var LockedPackages = map[string]bool{
	"wqrtq":                 true,
	"wqrtq/internal/engine": true,
	"wqrtq/internal/shard":  true,
}

// ioPackages are packages whose calls block on the outside world.
var ioPackages = map[string]bool{
	"net":      true,
	"net/http": true,
	"os":       true,
	"io":       true,
	"bufio":    true,
}

var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "report channel operations, select, WaitGroup.Wait, time.Sleep, and I/O calls made " +
		"while holding an engine/shard mutex",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !LockedPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c := &checker{pass: pass, fn: fn}
			c.block(fn.Body, map[string]bool{})
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
}

// block scans a statement list in order, tracking which mutexes are held.
// held maps types.ExprString of the mutex expression to true.
func (c *checker) block(b *ast.BlockStmt, held map[string]bool) {
	for _, stmt := range b.List {
		c.stmt(stmt, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held { //wqrtq:unordered set copy
		out[k] = v
	}
	return out
}

func (c *checker) stmt(stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, op, ok := mutexOp(c.pass.TypesInfo, s.X); ok {
			switch op {
			case "Lock", "RLock":
				held[key] = true
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return
		}
		c.scan(s, held)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the section open to function end;
		// nothing to do — the key simply stays in held. Other deferred
		// work runs at return, outside this linear scan.
	case *ast.GoStmt:
		// Runs on another goroutine; it does not hold our locks.
	case *ast.BlockStmt:
		c.block(s, held)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.scan(s.Cond, held)
		c.block(s.Body, copyHeld(held))
		if s.Else != nil {
			c.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Cond != nil {
			c.scan(s.Cond, held)
		}
		c.block(s.Body, copyHeld(held))
	case *ast.RangeStmt:
		c.scan(s.X, held)
		c.block(s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Tag != nil {
			c.scan(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				h := copyHeld(held)
				for _, st := range clause.Body {
					c.stmt(st, h)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				h := copyHeld(held)
				for _, st := range clause.Body {
					c.stmt(st, h)
				}
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 {
			c.pass.Reportf(s.Pos(), "select while holding %s in %s", heldNames(held), c.fn.Name.Name)
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	default:
		c.scan(stmt, held)
	}
}

// scan reports blocking constructs anywhere in the node, skipping closure
// bodies. It is applied to statements and expressions evaluated while at
// least one mutex may be held; with an empty held set it is a no-op.
func (c *checker) scan(node ast.Node, held map[string]bool) {
	if len(held) == 0 || node == nil {
		return
	}
	who := heldNames(held)
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			c.pass.Reportf(n.Pos(), "channel send while holding %s in %s", who, c.fn.Name.Name)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.pass.Reportf(n.Pos(), "channel receive while holding %s in %s", who, c.fn.Name.Name)
			}
		case *ast.SelectStmt:
			c.pass.Reportf(n.Pos(), "select while holding %s in %s", who, c.fn.Name.Name)
			return false
		case *ast.CallExpr:
			c.call(n, who)
		}
		return true
	})
}

func (c *checker) call(call *ast.CallExpr, who string) {
	f := analysis.FuncFor(c.pass.TypesInfo, call.Fun)
	if f == nil {
		return
	}
	path, name := analysis.PkgPathOf(f), f.Name()
	switch {
	case path == "sync" && name == "Wait" && recvNamed(f) == "WaitGroup":
		c.pass.Reportf(call.Pos(), "WaitGroup.Wait while holding %s in %s", who, c.fn.Name.Name)
	case path == "time" && name == "Sleep":
		c.pass.Reportf(call.Pos(), "time.Sleep while holding %s in %s", who, c.fn.Name.Name)
	case ioPackages[path]:
		c.pass.Reportf(call.Pos(), "%s.%s call (I/O) while holding %s in %s", path, name, who, c.fn.Name.Name)
	}
}

// recvNamed returns the name of the method's receiver type, dereferenced.
func recvNamed(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// mutexOp classifies a call as a Lock/Unlock-family operation on a
// sync.Mutex or sync.RWMutex (including ones promoted through embedding)
// and returns the held-set key for the mutex expression.
func mutexOp(info *types.Info, e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	f := analysis.FuncFor(info, call.Fun)
	if f == nil || analysis.PkgPathOf(f) != "sync" {
		return "", "", false
	}
	switch f.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	r := recvNamed(f)
	if r != "Mutex" && r != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), f.Name(), true
}

func heldNames(held map[string]bool) string {
	// Deterministic smallest-key pick keeps messages stable without
	// sorting every name into them.
	best := ""
	for k := range held { //wqrtq:unordered deterministic min-pick
		if best == "" || k < best {
			best = k
		}
	}
	if len(held) > 1 {
		return best + " (and others)"
	}
	return best
}
