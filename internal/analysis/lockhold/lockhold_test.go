package lockhold_test

import (
	"testing"

	"wqrtq/internal/analysis/analysistest"
	"wqrtq/internal/analysis/lockhold"
)

func TestLockHold(t *testing.T) {
	analysistest.Run(t, "testdata/src", lockhold.Analyzer, "wqrtq/internal/engine", "other")
}
