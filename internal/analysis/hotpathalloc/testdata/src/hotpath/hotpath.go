// Package hotpath exercises the hotpathalloc analyzer: annotated functions
// must stay free of allocation constructs; unannotated ones may allocate.
package hotpath

// Sum is annotated and allocation-free: no findings.
//
//wqrtq:hotpath
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

//wqrtq:hotpath
func Grow(xs []float64, x float64) []float64 {
	ys := make([]float64, len(xs)) // want `make allocates in hotpath function Grow`
	copy(ys, xs)
	xs = append(xs, x) // want `append may grow its backing array in hotpath function Grow`
	return xs
}

//wqrtq:hotpath
func Box(n int) any {
	return n // want `return boxes int into interface result in hotpath function Box`
}

//wqrtq:hotpath
func Closure() func() int {
	return func() int { return 1 } // want `closure literal allocates in hotpath function Closure`
}

//wqrtq:hotpath
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates in hotpath function Concat`
}

// ConstConcat folds at compile time: no finding.
//
//wqrtq:hotpath
func ConstConcat() string {
	return "a" + "b"
}

// Unannotated allocates freely: no findings.
func Unannotated(n int) []int {
	return make([]int, n)
}
