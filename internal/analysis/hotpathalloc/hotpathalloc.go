// Package hotpathalloc flags allocation-inducing constructs inside
// functions annotated //wqrtq:hotpath — the static twin of the
// Test*AllocsPerOp runtime guards. An annotated function promises zero
// allocations per call on its steady-state path: the blocked kernel
// sweeps, the cell-index lookup chain, the top-k heap loop, the skyband
// flatten scan, and the sampling scratch draws all carry the annotation
// and a matching allocs-per-op test.
//
// The check is intraprocedural: calls out of an annotated function are not
// followed, so every helper on a hot path must be annotated itself (the
// suite's convention, enforced by review rather than by the analyzer).
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"wqrtq/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "report allocation-inducing constructs (growing append, make/new, map/slice/closure " +
		"literals, string concatenation, boxing into interfaces) inside //wqrtq:hotpath functions",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.HasFuncDirective(fn, analysis.DirHotPath) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal allocates in hotpath function %s", fn.Name.Name)
			return false // the closure body runs outside this frame's budget
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch allocates in hotpath function %s", fn.Name.Name)
		case *ast.CompositeLit:
			t := pass.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in hotpath function %s", fn.Name.Name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in hotpath function %s", fn.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address of composite literal allocates in hotpath function %s", fn.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(pass, n) {
				pass.Reportf(n.Pos(), "string concatenation allocates in hotpath function %s", fn.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(pass.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "string concatenation allocates in hotpath function %s", fn.Name.Name)
			}
			checkAssignBoxing(pass, fn, n)
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, fn, n)
		case *ast.CallExpr:
			checkCall(pass, fn, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	funType := info.Types[ast.Unparen(call.Fun)]

	// Builtins that allocate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array in hotpath function %s", fn.Name.Name)
			case "make":
				pass.Reportf(call.Pos(), "make allocates in hotpath function %s", fn.Name.Name)
			case "new":
				pass.Reportf(call.Pos(), "new allocates in hotpath function %s", fn.Name.Name)
			}
			return
		}
	}

	// Conversions: T(x). Converting string<->[]byte/[]rune copies; converting
	// a concrete value to an interface type boxes it.
	if funType.IsType() {
		to := funType.Type
		if len(call.Args) == 1 {
			from := pass.TypeOf(call.Args[0])
			if isStringType(to) && isByteOrRuneSlice(from) || isByteOrRuneSlice(to) && isStringType(from) {
				pass.Reportf(call.Pos(), "string/slice conversion allocates in hotpath function %s", fn.Name.Name)
			}
			if analysis.IsInterface(to) && boxes(pass, call.Args[0]) {
				pass.Reportf(call.Pos(), "conversion to interface boxes %s in hotpath function %s", types.TypeString(from, nil), fn.Name.Name)
			}
		}
		return
	}

	// Ordinary calls: check arguments against interface-typed parameters.
	if funType.Type == nil {
		return
	}
	sig, ok := funType.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // f(xs...) passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if analysis.IsInterface(pt) && boxes(pass, arg) {
			pass.Reportf(arg.Pos(), "argument boxes %s into interface parameter in hotpath function %s",
				types.TypeString(pass.TypeOf(arg), nil), fn.Name.Name)
		}
	}
}

func checkAssignBoxing(pass *analysis.Pass, fn *ast.FuncDecl, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		lt := pass.TypeOf(lhs)
		if n.Tok == token.DEFINE {
			// Type of a defined variable is the RHS type; no conversion.
			continue
		}
		if analysis.IsInterface(lt) && boxes(pass, n.Rhs[i]) {
			pass.Reportf(n.Rhs[i].Pos(), "assignment boxes %s into interface in hotpath function %s",
				types.TypeString(pass.TypeOf(n.Rhs[i]), nil), fn.Name.Name)
		}
	}
}

func checkReturnBoxing(pass *analysis.Pass, fn *ast.FuncDecl, n *ast.ReturnStmt) {
	ftype, ok := pass.TypeOf(fn.Name).(*types.Signature)
	if !ok || ftype.Results() == nil || len(n.Results) != ftype.Results().Len() {
		return
	}
	for i, res := range n.Results {
		rt := ftype.Results().At(i).Type()
		if analysis.IsInterface(rt) && boxes(pass, res) {
			pass.Reportf(res.Pos(), "return boxes %s into interface result in hotpath function %s",
				types.TypeString(pass.TypeOf(res), nil), fn.Name.Name)
		}
	}
}

// boxes reports whether passing e to an interface-typed slot requires an
// allocation: the expression has a concrete (non-interface) type and is not
// the untyped nil.
func boxes(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.IsNil() {
		return false
	}
	t := tv.Type
	if t == nil || analysis.IsInterface(t) {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

func isNonConstString(pass *analysis.Pass, e *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil { // constant-folded at compile time
		return false
	}
	return isStringType(tv.Type)
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
