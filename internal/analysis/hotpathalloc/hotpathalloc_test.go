package hotpathalloc_test

import (
	"testing"

	"wqrtq/internal/analysis/analysistest"
	"wqrtq/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/src", hotpathalloc.Analyzer, "hotpath")
}
