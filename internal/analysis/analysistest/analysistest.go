// Package analysistest runs an analyzer over GOPATH-style fixture trees
// and checks its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture file marks each expected diagnostic with a trailing comment on
// the offending line:
//
//	xs = append(xs, x) // want `append may grow`
//
// The quoted strings are regular expressions (backquoted or double-quoted);
// several may follow one `want` when a line yields several diagnostics.
// Lines without a want comment must produce no diagnostics — unexpected
// findings and unmatched expectations both fail the test.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"wqrtq/internal/analysis"
	"wqrtq/internal/analysis/load"
)

// expectation is one `// want` pattern awaiting a matching diagnostic.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads each package path from dir (a testdata/src-style root) and
// applies the analyzer, comparing diagnostics against want comments.
func Run(t *testing.T, srcdir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := load.Dir(srcdir, paths...)
	if err != nil {
		t.Fatalf("loading fixtures from %s: %v", srcdir, err)
	}
	for _, pkg := range pkgs {
		runPkg(t, a, pkg)
	}
}

func runPkg(t *testing.T, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error on %s: %v", a.Name, pkg.Path, err)
	}

	want, err := expectations(pkg)
	if err != nil {
		t.Fatalf("%s: %v", pkg.Path, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range want {
			if w.hit || w.file != filepath.Base(pos.Filename) || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range want {
		if !w.hit {
			t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none", a.Name, w.re, w.file, w.line)
		}
	}
}

// wantRE pulls the quoted patterns out of a want comment: backquoted or
// double-quoted strings after the word "want".
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectations scans every fixture file's comments for want annotations.
func expectations(pkg *load.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") && text != "want" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRE.FindAllString(strings.TrimPrefix(text, "want"), -1)
				if len(args) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no patterns", pos.Filename, pos.Line)
				}
				for _, q := range args {
					pat, err := unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
					}
					out = append(out, &expectation{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}
