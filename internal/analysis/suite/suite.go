// Package suite enumerates the wqrtqlint analyzers in their canonical
// order. cmd/wqrtqlint and the integration tests share this list so the
// vet tool and the in-process "runs clean over ./..." guard can never
// disagree about what is enforced.
package suite

import (
	"wqrtq/internal/analysis"
	"wqrtq/internal/analysis/ctxloop"
	"wqrtq/internal/analysis/floateq"
	"wqrtq/internal/analysis/growthcheck"
	"wqrtq/internal/analysis/hotpathalloc"
	"wqrtq/internal/analysis/lockhold"
	"wqrtq/internal/analysis/maprange"
	"wqrtq/internal/analysis/snapshotmut"
)

// All returns the analyzers in deterministic order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		hotpathalloc.Analyzer,
		growthcheck.Analyzer,
		snapshotmut.Analyzer,
		ctxloop.Analyzer,
		maprange.Analyzer,
		floateq.Analyzer,
		lockhold.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
