package growthcheck_test

import (
	"testing"

	"wqrtq/internal/analysis/analysistest"
	"wqrtq/internal/analysis/growthcheck"
)

func TestGrowthCheck(t *testing.T) {
	analysistest.Run(t, "testdata/src", growthcheck.Analyzer, "growuser")
}
