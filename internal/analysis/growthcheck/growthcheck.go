// Package growthcheck proves that slice growth inside annotated functions
// lands in preallocated scratch — the static, AST+types twin of the
// runtime allocs-per-op guards (Test*AllocsPerOp, TestSampleScratchAllocs).
//
// A function annotated //wqrtq:hotpath promises zero steady-state
// allocations; one annotated //wqrtq:prealloc is allowed to grow slices,
// but only into storage that was sized up front — struct-field scratch
// reused across calls (Coords.cols, Grid.cols), receiver-backed buffers
// (*minHeap), or locals created with a capacity (3-arg make) or resliced
// from such storage. In both gates a growing append that targets a fresh
// nil/zero-capacity local is a per-call allocation the runtime guards only
// catch if a benchmark happens to drive that path; this analyzer catches
// it at review time.
//
// Every append in a gated function must satisfy two rules:
//
//  1. Its result must be written straight back to its own first argument:
//     the statement is `x = append(x, ...)` (sole assignment, structurally
//     identical destination). Anything else — a discarded result, or
//     `dst = append(src, ...)` — silently forks the backing array.
//  2. The destination must be prealloc-rooted: reach through a struct
//     field, a pointer dereference of a parameter or receiver, or a local
//     whose declaration allocates capacity (3-arg make) or reslices an
//     already-rooted expression.
//
// A finding is silenced by a statement-level //wqrtq:prealloc directive
// carrying a rationale (same discipline as //wqrtq:mutates: a bare
// directive is itself an error), for the rare append whose preallocation
// the analyzer cannot see — e.g. a slice threaded through an interface.
package growthcheck

import (
	"go/ast"
	"go/types"

	"wqrtq/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "growthcheck",
	Doc: "report appends in //wqrtq:hotpath or //wqrtq:prealloc functions whose destination " +
		"is not preallocated scratch (struct field, receiver-derived storage, or 3-arg make)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	dirs := pass.Directives()
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !analysis.HasFuncDirective(fn, analysis.DirHotPath) &&
				!analysis.HasFuncDirective(fn, analysis.DirPrealloc) {
				continue
			}
			c := &checker{pass: pass, dirs: dirs, fn: fn, rooted: map[*types.Var]bool{}}
			c.collectParams()
			c.collectLocals()
			c.check()
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	dirs *analysis.Directives
	fn   *ast.FuncDecl
	// rooted records, per variable, whether its storage is preallocated:
	// parameters and the receiver (true), and locals judged by their
	// declaration (3-arg make or a reslice of rooted storage).
	rooted map[*types.Var]bool
}

func (c *checker) collectParams() {
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
					c.rooted[v] = true
				}
			}
		}
	}
	addFields(c.fn.Recv)
	addFields(c.fn.Type.Params)
	// Named results are NOT rooted: `out = append(out, r)` on a fresh
	// result slice is exactly the per-call growth the gate exists to stop.
}

// collectLocals judges each local's declaration once, in source order, so
// a reslice of an earlier-rooted local inherits its rootedness.
func (c *checker) collectLocals() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := c.pass.TypesInfo.Defs[id].(*types.Var)
				if !ok {
					continue // plain assignment: rootedness fixed at declaration
				}
				if c.exprRooted(n.Rhs[i]) {
					c.rooted[v] = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				v, ok := c.pass.TypesInfo.Defs[name].(*types.Var)
				if !ok || i >= len(n.Values) {
					continue
				}
				if c.exprRooted(n.Values[i]) {
					c.rooted[v] = true
				}
			}
		}
		return true
	})
}

func (c *checker) check() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		asg, isAssign := stmt.(*ast.AssignStmt)
		// Find appends directly inside this statement, but do not descend
		// into nested statements (blocks, loop bodies): each statement is
		// visited at its own level so directives attach correctly.
		ast.Inspect(stmt, func(m ast.Node) bool {
			if _, nested := m.(ast.Stmt); nested && m != stmt {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok || !c.isAppend(call) {
				return true
			}
			c.checkAppend(stmt, asg, isAssign, call)
			return true
		})
		return true
	})
}

func (c *checker) isAppend(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append" && len(call.Args) > 0
}

func (c *checker) checkAppend(stmt ast.Stmt, asg *ast.AssignStmt, isAssign bool, call *ast.CallExpr) {
	dst := call.Args[0]
	// Rule 1: the statement must be `x = append(x, ...)`.
	selfAssigned := false
	if isAssign && len(asg.Rhs) == 1 && ast.Unparen(asg.Rhs[0]) == call && len(asg.Lhs) == 1 {
		selfAssigned = types.ExprString(asg.Lhs[0]) == types.ExprString(dst)
	}
	if !selfAssigned {
		c.report(stmt, call, "append result must be assigned back to its first argument (%s)",
			types.ExprString(dst))
		return
	}
	// Rule 2: the destination must reach preallocated storage.
	if !c.exprRooted(dst) {
		c.report(stmt, call,
			"append grows %s, which is not preallocated scratch (want a struct field, "+
				"receiver-derived storage, or a capacity-carrying local)", types.ExprString(dst))
	}
}

func (c *checker) report(stmt ast.Stmt, call *ast.CallExpr, format string, args ...any) {
	if arg, ok := c.dirs.AtArg(stmt, analysis.DirPrealloc); ok {
		if arg == "" {
			c.pass.Reportf(stmt.Pos(), "statement-level //wqrtq:prealloc requires a rationale")
		}
		return
	}
	c.pass.Reportf(call.Pos(), format+" in gated function %s", append(args, c.fn.Name.Name)...)
}

// exprRooted reports whether e denotes preallocated storage: a struct
// field (selector chain), a dereference or index of rooted storage, a
// rooted variable, a reslice of rooted storage, or a 3-arg make.
func (c *checker) exprRooted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := c.pass.TypesInfo.ObjectOf(e).(*types.Var)
		return ok && c.rooted[v]
	case *ast.SelectorExpr:
		// A field selector means the slice header lives in a struct the
		// builder sized; growth through it amortizes across calls. (A
		// package-qualified identifier also lands here and is likewise
		// long-lived storage.)
		return true
	case *ast.IndexExpr:
		return c.exprRooted(e.X)
	case *ast.StarExpr:
		return c.exprRooted(e.X)
	case *ast.SliceExpr:
		return c.exprRooted(e.X)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				// make([]T, n, cap) reserves capacity up front; the 2-arg
				// form leaves every later append to grow the array.
				return b.Name() == "make" && len(e.Args) == 3
			}
		}
		return false
	}
	return false
}
