// Package growuser exercises growthcheck: appends inside gated functions
// must land in preallocated scratch.
package growuser

type pool struct {
	buf []int
}

// Gated covers the flagged shapes and their rooted counterparts.
//
//wqrtq:prealloc
func (p *pool) Gated(in []int, h *[]int) {
	s := make([]int, 0, 8)
	s = append(s, 1) // rooted: 3-arg make
	t := make([]int, 0)
	t = append(t, 1) // want `append grows t, which is not preallocated scratch`
	var u []int
	u = append(u, 1)         // want `append grows u, which is not preallocated scratch`
	w := append(s, 2)        // want `append result must be assigned back to its first argument`
	p.buf = append(p.buf, 3) // rooted: struct field
	*h = append(*h, 4)       // rooted: deref of a parameter
	r := s[:0]
	r = append(r, 5)   // rooted: reslice of rooted storage
	in = append(in, 6) // rooted: parameter-backed
	_, _, _, _ = t, u, w, r
}

// Hot is gated through //wqrtq:hotpath rather than prealloc.
//
//wqrtq:hotpath
func Hot() []int {
	var acc []int
	acc = append(acc, 1) // want `append grows acc, which is not preallocated scratch`
	return acc
}

// Results shows that a named result is not preallocated storage.
//
//wqrtq:prealloc
func Results() (out []int) {
	out = append(out, 1) // want `append grows out, which is not preallocated scratch`
	return out
}

// Allowlisted silences a finding with a rationale-bearing statement
// directive; a bare directive is itself an error.
//
//wqrtq:prealloc
func Allowlisted(grab func() []int) {
	fresh := grab()
	//wqrtq:prealloc fixture: grab returns pool-recycled storage
	fresh = append(fresh, 1)
	other := grab()
	//wqrtq:prealloc
	other = append(other, 2) // want `statement-level //wqrtq:prealloc requires a rationale`
	_, _ = fresh, other
}

// Ungated stays out of the gate entirely: fresh growth is fine.
func Ungated() []int {
	var acc []int
	acc = append(acc, 1)
	return acc
}
