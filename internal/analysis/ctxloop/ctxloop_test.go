package ctxloop_test

import (
	"testing"

	"wqrtq/internal/analysis/analysistest"
	"wqrtq/internal/analysis/ctxloop"
)

func TestCtxLoop(t *testing.T) {
	analysistest.Run(t, "testdata/src", ctxloop.Analyzer, "wqrtq/internal/topk", "other")
}
