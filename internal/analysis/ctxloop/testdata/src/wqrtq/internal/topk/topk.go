// Package topk exercises the ctxloop analyzer inside a gated query-path
// import path.
package topk

import (
	"context"

	"wqrtq/internal/ctxcheck"
)

func work(x int) int { return x + 1 }

func workCtx(ctx context.Context, x int) int {
	if ctx.Err() != nil {
		return 0
	}
	return x + 1
}

// Bad does per-iteration work with a context in hand and never checks it.
func Bad(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs { // want `loop in query-path function Bad does per-iteration work but never checks cancellation`
		s += work(x)
	}
	return s
}

// Ticker polls a ctxcheck.Ticker: clean.
func Ticker(ctx context.Context, xs []int) (int, error) {
	tick := ctxcheck.Every(ctx, 1024)
	s := 0
	for _, x := range xs {
		if err := tick.Tick(); err != nil {
			return 0, err
		}
		s += work(x)
	}
	return s, nil
}

// Delegates hands the context to its callee: clean.
func Delegates(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += workCtx(ctx, x)
	}
	return s
}

// NoHandle has no way to observe cancellation; the discipline binds its
// callers instead: clean.
func NoHandle(xs []int) int {
	s := 0
	for _, x := range xs {
		s += work(x)
	}
	return s
}

// Bounded is allowlisted: clean.
func Bounded(ctx context.Context, q []int) int {
	s := 0
	//wqrtq:bounded dimension sweep, at most a handful of iterations
	for j := range q {
		s += work(q[j])
	}
	return s
}

// NoWork is straight-line arithmetic per iteration: clean.
func NoWork(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Iter carries its cancellation handle in a field (the Iterator pattern).
type Iter struct {
	tick *ctxcheck.Ticker
	i    int
}

func (it *Iter) Next() (int, bool) {
	if it.tick.Err() != nil {
		return 0, false
	}
	it.i++
	return it.i, it.i < 10
}

// Drain delegates to a method on a cancel-carrying receiver: clean.
func (it *Iter) Drain() int {
	s := 0
	for {
		v, ok := it.Next()
		if !ok {
			return s
		}
		s += v
	}
}

// Closure calls a local closure that polls the ticker itself: clean.
func Closure(ctx context.Context, xs []int) (int, error) {
	tick := ctxcheck.Every(ctx, 1024)
	step := func(x int) (int, error) {
		if err := tick.Tick(); err != nil {
			return 0, err
		}
		return work(x), nil
	}
	s := 0
	for _, x := range xs {
		v, err := step(x)
		if err != nil {
			return 0, err
		}
		s += v
	}
	return s, nil
}
