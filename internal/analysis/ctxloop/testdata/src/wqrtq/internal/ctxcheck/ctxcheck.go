// Package ctxcheck is a fixture stub standing in for the real
// wqrtq/internal/ctxcheck: the ctxloop analyzer matches it by import path
// and method name only.
package ctxcheck

import "context"

type Ticker struct {
	ctx context.Context
	n   uint64
}

func Every(ctx context.Context, every uint64) Ticker { return Ticker{ctx: ctx, n: every} }

func (t *Ticker) Tick() error { return t.ctx.Err() }

func (t *Ticker) Err() error { return t.ctx.Err() }
