// Package other is outside the query-path gate: the same shape that is
// flagged in wqrtq/internal/topk must produce nothing here.
package other

import "context"

func work(x int) int { return x + 1 }

func Unchecked(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += work(x)
	}
	return s
}
