// Package ctxloop enforces cooperative cancellation in the query-path
// packages: any loop that does per-iteration work inside a function that
// was handed a cancellation handle (a context.Context parameter, a
// *ctxcheck.Ticker parameter, or a receiver carrying a ctxcheck.Ticker
// field) must check cancellation somewhere in its body — directly via
// ctx.Err()/Ticker.Tick()/Ticker.Err()/<-ctx.Done(), or by delegating,
// i.e. passing the context or ticker into a callee.
//
// It is the static twin of the context_test.go prompt-return suite: those
// tests prove specific endpoints unwind within one check interval; this
// analyzer proves no new loop on the query path can forget the discipline.
//
// Loops with small input-independent trip counts (dimension sweeps) are
// allowlisted with //wqrtq:bounded on the loop line or the line above.
// Loops whose bodies contain no calls and no nested loops are ignored:
// straight-line arithmetic over an in-memory slice is bounded by the
// caller's own check interval.
package ctxloop

import (
	"go/ast"
	"go/types"

	"wqrtq/internal/analysis"
)

// QueryPackages are the packages whose loops must poll for cancellation —
// everything a TopK/Rank/ReverseTopK/Explain/WhyNot evaluation can spend
// unbounded time in.
var QueryPackages = map[string]bool{
	"wqrtq/internal/topk":      true,
	"wqrtq/internal/rtopk":     true,
	"wqrtq/internal/core":      true,
	"wqrtq/internal/cellindex": true,
}

const ctxcheckPath = "wqrtq/internal/ctxcheck"

var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: "report loops in query-path packages that neither check cancellation (ctx.Err, " +
		"ctxcheck.Ticker) nor delegate it to a callee; allowlist bounded loops with //wqrtq:bounded",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !QueryPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !hasCancelHandle(pass, fn) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// hasCancelHandle reports whether fn can observe cancellation at all: a
// context.Context or *ctxcheck.Ticker parameter, or a receiver whose
// struct type carries a ctxcheck.Ticker (the Iterator pattern).
func hasCancelHandle(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	sig, ok := pass.TypeOf(fn.Name).(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isCancelType(params.At(i).Type()) {
			return true
		}
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if isCancelType(st.Field(i).Type()) {
					return true
				}
			}
		}
	}
	return false
}

// isCancelType matches context.Context, ctxcheck.Ticker, and
// *ctxcheck.Ticker.
func isCancelType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	path, name := n.Obj().Pkg().Path(), n.Obj().Name()
	return path == "context" && name == "Context" ||
		path == ctxcheckPath && name == "Ticker"
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	dirs := pass.Directives()
	checking := checkingClosures(pass, fn)
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		case *ast.FuncLit:
			return false // separate cancellation story (worker goroutines)
		default:
			return true
		}
		if dirs.At(n, analysis.DirBounded) {
			return true // still check nested loops individually
		}
		if !doesWork(pass, body) {
			return true
		}
		if !checksCancellation(pass, body, checking) {
			pass.Reportf(n.Pos(), "loop in query-path function %s does per-iteration work but never checks cancellation (use ctxcheck.Ticker/ctx.Err, pass ctx to a callee, or annotate //wqrtq:bounded)", fn.Name.Name)
		}
		return true
	}
	ast.Inspect(fn.Body, visit)
}

// doesWork reports whether the loop body contains a function call or a
// nested loop — the signal that one iteration is more than straight-line
// arithmetic.
func doesWork(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		case *ast.CallExpr:
			// Builtin calls (len, cap, min, max, ...) and conversions are
			// not work.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					return true
				}
			}
			if tv, ok := pass.TypesInfo.Types[ast.Unparen(n.Fun)]; ok && tv.IsType() {
				return true // conversion
			}
			found = true
		}
		return !found
	})
	return found
}

// checksCancellation reports whether the subtree contains a cancellation
// check or delegates one: a call to (*ctxcheck.Ticker).Tick/Err or
// ctx.Err(), a receive from ctx.Done(), any call taking a context/ticker
// argument, a method call on a receiver that carries a cancel handle in a
// struct field (the Iterator pattern — it.Next() polls its own ticker), or
// a call to a local closure known to check cancellation itself.
func checksCancellation(pass *analysis.Pass, body *ast.BlockStmt, checking map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := analysis.FuncFor(pass.TypesInfo, call.Fun); f != nil {
			switch analysis.PkgPathOf(f) {
			case ctxcheckPath:
				if f.Name() == "Tick" || f.Name() == "Err" {
					found = true
					return false
				}
			case "context":
				// ctx.Err(), ctx.Done(): both observe cancellation.
				if f.Name() == "Err" || f.Name() == "Done" {
					found = true
					return false
				}
			}
		}
		for _, arg := range call.Args {
			if t := pass.TypeOf(arg); t != nil && isCancelType(t) {
				found = true
				return false
			}
		}
		// Method call on a cancel-carrying receiver.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if t := pass.TypeOf(sel.X); t != nil && carriesCancelField(t) {
				found = true
				return false
			}
		}
		// Call of a local closure that checks cancellation in its body.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && checking[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// carriesCancelField reports whether t (dereferenced) is a struct with a
// context/ticker field.
func carriesCancelField(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isCancelType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// checkingClosures maps local variables bound to closure literals whose
// bodies observe cancellation (directly or by receiving a ctx/ticker from
// the enclosing scope): `evaluate := func(...) error { ... tick.Tick() }`.
// Calls to such closures count as delegated checks.
func checkingClosures(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if checksCancellation(pass, lit.Body, nil) {
				out[obj] = true
			}
		}
		return true
	})
	return out
}
