package snapshotmut_test

import (
	"testing"

	"wqrtq/internal/analysis/analysistest"
	"wqrtq/internal/analysis/snapshotmut"
)

func TestSnapshotMut(t *testing.T) {
	analysistest.Run(t, "testdata/src", snapshotmut.Analyzer, "snapuser")
}

// TestBuilderPackageExempt loads the fixture builder package itself: its
// own writes through Node/Tree must produce no findings.
func TestBuilderPackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata/src", snapshotmut.Analyzer, "rtree")
}
