// Package snapuser exercises snapshotmut outside the builder package.
package snapuser

import "rtree"

// Flagged covers the write shapes: direct field store, element store
// through a method result, append through an alias, builtin growth.
func Flagged(t *rtree.Tree, n *rtree.Node) {
	n.Scores[0] = 1                           // want `writes through snapshot-reachable state`
	t.Root().Scores[1] = 2                    // want `writes through snapshot-reachable state`
	t.Root().Children[0] = nil                // want `writes through snapshot-reachable state`
	n.Scores = append(n.Scores, 3)            // want `writes through snapshot-reachable state` `appends into snapshot-reachable state`
	copy(t.Root().Scores, []float64{1})       // want `copies into snapshot-reachable state`
	alias := n.Scores                         // taints alias
	alias[2] = 4                              // want `writes through snapshot-reachable state`
	kids := t.Root().Children                 // taints kids
	kids[0] = &rtree.Node{}                   // want `writes through snapshot-reachable state`
	scoreCopy := n.Scores[0]                  // value copy: no taint
	scoreCopy++                               // fine
	local := []float64{scoreCopy}             // fresh storage
	local = append(local, t.Root().Scores...) // reading is fine
	_ = local
}

// Allowlisted writes are silenced by a rationale-bearing directive.
func Allowlisted(n *rtree.Node) {
	//wqrtq:mutates fixture: private clone, never published
	n.Scores[0] = 9
	n.Scores[1] = 9 //wqrtq:mutates fixture: same clone, end-of-line form
}

// BareDirective is an allowlist without a rationale: itself an error.
func BareDirective(n *rtree.Node) {
	//wqrtq:mutates
	n.Scores[0] = 9 // want `//wqrtq:mutates requires a rationale`
}

// ReadsOnly stays out of the gate: reads, value copies and calls are not
// writes.
func ReadsOnly(t *rtree.Tree) float64 {
	sum := 0.0
	for _, s := range t.Root().Scores {
		sum += s
	}
	t.Grow(sum) // builder-package method: the mutating-method hole, by design
	return sum
}
