// Package rtree is a fixture standing in for the real builder package: it
// defines a protected type and may write through it freely.
package rtree

type Node struct {
	Scores   []float64
	Children []*Node
}

type Tree struct {
	root *Node
}

func New() *Tree { return &Tree{root: &Node{}} }

func (t *Tree) Root() *Node { return t.root }

// Grow writes through Node inside the builder package: allowed.
func (t *Tree) Grow(s float64) {
	t.root.Scores = append(t.root.Scores, s)
}
