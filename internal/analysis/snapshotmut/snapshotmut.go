// Package snapshotmut proves — type-based, per package — that nothing
// outside the builder packages writes through snapshot-reachable state.
//
// The serving discipline of this codebase is copy-on-write: a published
// snapshot (an Index epoch) is immutable, shared by every concurrent
// reader, and mutations clone before they touch anything. The types a
// reader can reach from a snapshot — R-tree nodes, skyband bands, cell
// grids, flattened kernel coordinates — are therefore writable only inside
// the package that builds them; a stray field store or append anywhere
// else is a data race against every in-flight query, whether or not the
// race detector happens to catch an interleaving.
//
// The analyzer flags, in every package other than a protected type's own:
//
//   - assignments (including op= and ++/--) whose destination is a field,
//     element or dereference reachable from a protected-typed expression;
//   - append/copy/delete builtins whose grown, copied-into or shrunk
//     operand is so reachable;
//   - the same writes through local variables that were earlier assigned a
//     protected-derived expression (one forward intra-function taint pass).
//
// Reachability is syntactic over the type information: an expression is
// protected-derived when its selector/index/call chain passes through a
// value whose (pointer-stripped) named type is in the protected set, or
// through a method call on such a value returning pointer-, slice- or
// map-shaped results. Calls are otherwise not followed — a builder-package
// method that mutates on behalf of a caller is the builder's
// responsibility, and the gate for it is the builder package's own review
// (DESIGN.md §12 records this hole explicitly).
//
// A finding is silenced by //wqrtq:mutates on the statement (or its
// function), and the directive REQUIRES a rationale: `//wqrtq:mutates`
// alone is itself an error, because an allowlist entry whose justification
// lives in a commit message is unreviewable at the call site.
package snapshotmut

import (
	"go/ast"
	"go/types"
	"strings"

	"wqrtq/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "snapshotmut",
	Doc: "report writes through snapshot-reachable types (rtree.Tree/Node, skyband.Band, " +
		"cellindex.Grid, kernel.Coords) outside their builder packages",
	Run: run,
}

// protected maps type name -> defining package (matched as the package
// path's last segment, so module fixtures and the real module both hit).
var protected = map[string]string{
	"Tree":   "rtree",
	"Node":   "rtree",
	"Band":   "skyband",
	"Grid":   "cellindex",
	"Coords": "kernel",
}

func run(pass *analysis.Pass) error {
	dirs := pass.Directives()
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c := &checker{pass: pass, dirs: dirs, tainted: map[*types.Var]bool{}}
			if arg, ok := analysis.FuncDirectiveArg(fn, analysis.DirMutates); ok {
				if arg == "" {
					pass.Reportf(fn.Pos(), "//wqrtq:mutates requires a rationale")
				}
				continue
			}
			c.walk(fn.Body)
		}
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	dirs    *analysis.Directives
	tainted map[*types.Var]bool
}

// walk visits statements in source order so the taint pass sees a local's
// defining assignment before writes through it.
func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.IncDecStmt:
			if c.derived(n.X) {
				c.report(n, n.X, "increments")
			}
		case *ast.CallExpr:
			c.call(n)
		}
		return true
	})
}

func (c *checker) assign(n *ast.AssignStmt) {
	for _, lhs := range n.Lhs {
		// A write lands in protected storage when the destination reaches
		// through a protected value: x.f = v, x.s[i] = v, *x.p = v. A
		// plain `v := x.f` only copies — but taints v when the copy is
		// reference-shaped (slice/map/pointer), since writes through it
		// then land in the same storage.
		switch l := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			if c.derived(l.(ast.Expr)) {
				c.report(n, lhs, "writes through")
			}
		}
	}
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj, ok := c.objOf(id)
			if !ok {
				continue
			}
			if c.derived(n.Rhs[i]) && refShaped(c.pass.TypeOf(n.Rhs[i])) {
				c.tainted[obj] = true
			}
		}
	}
}

func (c *checker) call(n *ast.CallExpr) {
	id, ok := ast.Unparen(n.Fun).(*ast.Ident)
	if !ok {
		return
	}
	b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	if !ok || len(n.Args) == 0 {
		return
	}
	switch b.Name() {
	case "append", "delete":
		if c.derived(n.Args[0]) {
			c.report(n, n.Args[0], b.Name()+"s into")
		}
	case "copy":
		if c.derived(n.Args[0]) {
			c.report(n, n.Args[0], "copies into")
		}
	}
}

func (c *checker) report(stmt ast.Node, dst ast.Expr, verb string) {
	if arg, ok := c.dirs.AtArg(stmt, analysis.DirMutates); ok {
		if arg == "" {
			c.pass.Reportf(stmt.Pos(), "//wqrtq:mutates requires a rationale")
		}
		return
	}
	c.pass.Reportf(stmt.Pos(), "%s snapshot-reachable state (%s) outside its builder package",
		verb, types.ExprString(dst))
}

// derived reports whether e reaches through a protected-typed value
// defined outside this package, or through a tainted local.
func (c *checker) derived(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj, ok := c.objOf(e)
		if !ok {
			return false
		}
		if c.tainted[obj] {
			return true
		}
		return c.foreignProtected(obj.Type())
	case *ast.SelectorExpr:
		if c.foreignProtected(c.pass.TypeOf(e.X)) {
			return true
		}
		return c.derived(e.X)
	case *ast.IndexExpr:
		return c.derived(e.X)
	case *ast.SliceExpr:
		return c.derived(e.X)
	case *ast.StarExpr:
		return c.derived(e.X)
	case *ast.CallExpr:
		// A method on a protected receiver returning reference-shaped
		// results hands out aliases of snapshot storage (Band.Coords,
		// Tree.Root, Coords.Col, ...).
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if !refShaped(c.pass.TypeOf(e)) {
			return false
		}
		if c.foreignProtected(c.pass.TypeOf(sel.X)) {
			return true
		}
		return c.derived(sel.X)
	}
	return false
}

func (c *checker) objOf(id *ast.Ident) (*types.Var, bool) {
	if obj, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return obj, true
	}
	obj, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
	return obj, ok
}

// foreignProtected reports whether t (pointer-stripped) is a protected
// named type defined in a package other than the one under analysis.
func (c *checker) foreignProtected(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	pkgSeg, ok := protected[obj.Name()]
	if !ok || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path != pkgSeg && !strings.HasSuffix(path, "/"+pkgSeg) {
		return false
	}
	return c.pass.Pkg == nil || c.pass.Pkg.Path() != path
}

// refShaped reports whether values of t alias underlying storage when
// copied: pointers, slices and maps do; scalars, strings and structs
// copied by value do not.
func refShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if refShaped(u.At(i).Type()) {
				return true
			}
		}
	}
	return false
}
