package floateq_test

import (
	"testing"

	"wqrtq/internal/analysis/analysistest"
	"wqrtq/internal/analysis/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "testdata/src", floateq.Analyzer, "floats")
}
