// Package floateq forbids direct ==/!= (and switch-case equality) on
// floating-point operands outside approved comparator helpers. The
// bit-identical discipline makes exact float equality meaningful — but
// only when every exact comparison flows through one audited helper per
// intent (feq-style identity checks, NaN tests via math.IsNaN), so a
// future tolerance change or a NaN subtlety has exactly one home.
//
// A comparator helper opts in with //wqrtq:floatcmp on its doc comment.
// Comparisons where both operands are compile-time constants are ignored.
package floateq

import (
	"go/ast"
	"go/token"

	"wqrtq/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "report direct ==/!= on floating-point operands outside //wqrtq:floatcmp comparator " +
		"helpers (use vec.Feq / math.IsNaN-style helpers so exact comparisons have one audited home)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if analysis.HasFuncDirective(fn, analysis.DirFloatCmp) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures inherit the enclosing function's annotation state;
			// keep walking.
			return true
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if !floatOperand(pass, n.X) && !floatOperand(pass, n.Y) {
				return true
			}
			if isConst(pass, n.X) && isConst(pass, n.Y) {
				return true
			}
			pass.Reportf(n.Pos(), "direct %s on floating-point operands in %s; route exact comparisons through a //wqrtq:floatcmp helper", n.Op, fn.Name.Name)
		case *ast.SwitchStmt:
			if n.Tag == nil || !floatOperand(pass, n.Tag) {
				return true
			}
			pass.Reportf(n.Pos(), "switch on floating-point value in %s compares floats directly; route exact comparisons through a //wqrtq:floatcmp helper", fn.Name.Name)
		}
		return true
	})
}

func floatOperand(pass *analysis.Pass, e ast.Expr) bool {
	return analysis.IsFloat(pass.TypeOf(e))
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
