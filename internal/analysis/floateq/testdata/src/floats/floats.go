// Package floats exercises the floateq analyzer.
package floats

func Bad(a, b float64) bool {
	return a == b // want `direct == on floating-point operands in Bad`
}

func BadNe(a, b float32) bool {
	return a != b // want `direct != on floating-point operands in BadNe`
}

func BadSwitch(x float64) int {
	switch x { // want `switch on floating-point value in BadSwitch`
	case 0:
		return 0
	}
	return 1
}

// Eq is an approved comparator: clean.
//
//wqrtq:floatcmp
func Eq(a, b float64) bool { return a == b }

// IntEq compares integers: clean.
func IntEq(a, b int) bool { return a == b }

// Consts folds at compile time: clean.
func Consts() bool { return 1.0 == 2.0 }

// Ordering comparisons are not equality: clean.
func Less(a, b float64) bool { return a < b }
