package wqrtq

import (
	"testing"

	"wqrtq/internal/storage"
)

// Torn-tail double-restart: crash mid-run, recover once (drops torn tail),
// close, then open the same directory again.
func TestZZDoubleRestartAfterTornTail(t *testing.T) {
	pts := basePoints("independent", 36, 2, 5)
	script, _ := buildScript(t, pts, 24, 9)

	// Baseline to learn op count.
	fs0 := storage.NewFaultFS()
	seed, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(seed, durCfg(fs0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := applyScript(t, e, script, nil); err != nil {
		t.Fatal(err)
	}
	e.Close()
	total := fs0.OpCount()

	tried, failed := 0, 0
	for seedR := int64(1); seedR <= 6; seedR++ {
	for crashAt := 1; crashAt <= total; crashAt++ {
		fs := storage.NewFaultFS()
		fs.SetCrashAt(crashAt)
		seed, err := NewIndex(pts)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(seed, durCfg(fs))
		if err == nil {
			applyScript(t, e, script, nil)
			e.Close()
		}
		rfs := fs.Reboot(seedR)
		re, err := NewEngine(nil, durCfg(rfs))
		if err != nil {
			continue // first recovery refused; not the scenario under test
		}
		lsn1 := re.Stats().WAL.LastLSN
		torn := re.Stats().WAL.TornTailDrops
		if err := re.Close(); err != nil {
			t.Fatalf("crashAt=%d: close after first recovery: %v", crashAt, err)
		}
		tried++
		re2, err := NewEngine(nil, durCfg(rfs))
		if err != nil {
			failed++
			t.Logf("crashAt=%d: SECOND recovery failed (first OK at LSN %d, tornDrops=%d): %v", crashAt, lsn1, torn, err)
			continue
		}
		re2.Close()
	}
	}
	t.Logf("second-restart attempts: %d, failures: %d", tried, failed)
	if failed > 0 {
		t.Fatalf("%d/%d second restarts failed", failed, tried)
	}
}
