// Market analysis at scale: a manufacturer places a product in a market of
// 20,000 competitors and 500 customer preference profiles, identifies its
// potential customer base with a reverse top-k query, and uses the why-not
// machinery to plan a redesign that wins back the most attractive lost
// segment — the paper's motivating application (§1).
//
// Run with:
//
//	go run ./examples/market
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wqrtq"
	"wqrtq/internal/dataset"
	"wqrtq/internal/sample"
)

func main() {
	const (
		nProducts  = 20000
		nCustomers = 500
		k          = 10
		seed       = 42
	)

	// Competitor products: 3 attributes (price, weight, power draw),
	// anti-correlated — cheap products are heavy and hungry.
	market := dataset.Anticorrelated(nProducts, 3, seed)
	pts := make([][]float64, len(market.Points))
	for i, p := range market.Points {
		pts[i] = p
	}
	ix, err := wqrtq.NewIndex(pts)
	if err != nil {
		log.Fatal(err)
	}

	// Customer base: random preference profiles.
	rng := rand.New(rand.NewSource(seed))
	customers := make([][]float64, nCustomers)
	for i := range customers {
		customers[i] = sample.RandSimplex(rng, 3)
	}

	// Our product: positioned just behind the market leaders — take the
	// 30th-best product under a balanced preference and undercut it by 2%.
	balanced := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	top, err := ix.TopK(balanced, 30)
	if err != nil {
		log.Fatal(err)
	}
	anchor := top[len(top)-1].Point
	for i := len(top) - 1; i >= 0; i-- {
		// Prefer an anchor that is competitive on every attribute rather
		// than an axis-extreme specialist.
		if min3(top[i].Point) >= 0.05 {
			anchor = top[i].Point
			break
		}
	}
	q := []float64{anchor[0] * 0.98, anchor[1] * 0.98, anchor[2] * 0.98}

	result, err := ix.ReverseTopK(customers, q, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("market: %d products, %d customer profiles, k = %d\n", nProducts, nCustomers, k)
	fmt.Printf("our product %v is a top-%d choice for %d customers (%.1f%%)\n",
		q, k, len(result), 100*float64(len(result))/nCustomers)

	// Pick a lost segment to win back: the five lost customers whose
	// preferences are closest to winning (q's rank only slightly above k).
	type lost struct {
		idx  int
		rank int
	}
	var candidates []lost
	in := map[int]bool{}
	for _, i := range result {
		in[i] = true
	}
	for i, w := range customers {
		if in[i] {
			continue
		}
		r, err := ix.Rank(w, q)
		if err != nil {
			log.Fatal(err)
		}
		candidates = append(candidates, lost{idx: i, rank: r})
	}
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			if candidates[j].rank < candidates[i].rank {
				candidates[i], candidates[j] = candidates[j], candidates[i]
			}
		}
	}
	if len(candidates) > 5 {
		candidates = candidates[:5]
	}
	segment := make([][]float64, len(candidates))
	fmt.Println("\ntarget segment (lost customers closest to converting):")
	for i, c := range candidates {
		segment[i] = customers[c.idx]
		fmt.Printf("  customer %3d, preference %v, q ranks %d\n", c.idx, fmtW(customers[c.idx]), c.rank)
	}

	// Why-not: explanation plus all three refinement strategies.
	ans, err := ix.WhyNot(q, k, segment, wqrtq.Options{SampleSize: 400, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nblocking products per customer: ")
	for i := range ans.Missing {
		fmt.Printf("%d ", len(ans.Explanations[i]))
	}
	fmt.Println()

	fmt.Println("\nstrategy comparison:")
	fmt.Printf("  redesign product (MQP):   q' = %v, penalty %.4f\n",
		fmtW(ans.ModifiedQuery.Q), ans.ModifiedQuery.Penalty)
	fmt.Printf("  marketing only (MWK):     k' = %d, penalty %.4f\n",
		ans.ModifiedPreferences.K, ans.ModifiedPreferences.Penalty)
	fmt.Printf("  combined (MQWK):          q' = %v, k' = %d, penalty %.4f\n",
		fmtW(ans.ModifiedAll.Q), ans.ModifiedAll.K, ans.ModifiedAll.Penalty)

	// After the redesign, how big is the customer base?
	after, err := ix.ReverseTopK(customers, ans.ModifiedQuery.Q, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter the MQP redesign the product is a top-%d choice for %d customers (was %d)\n",
		k, len(after), len(result))
}

func fmtW(v []float64) string {
	s := "("
	for i, x := range v {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.3f", x)
	}
	return s + ")"
}

func min3(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
