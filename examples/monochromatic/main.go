// Monochromatic demonstrates why-not questions on *monochromatic* reverse
// top-k queries (Definition 4): no customer list is known, the result is a
// region of weighting space, and the why-not vectors are arbitrary
// preferences outside that region — the paper's Figure 2 scenario with the
// vectors A(1/10, 9/10) and D(4/5, 1/5).
//
// Run with:
//
//	go run ./examples/monochromatic
package main

import (
	"fmt"
	"log"

	"wqrtq"
)

func main() {
	// Figure 1(a)/2(a): the seven computers.
	computers := [][]float64{
		{2, 1}, {6, 3}, {1, 9}, {9, 3}, {7, 5}, {5, 8}, {3, 7},
	}
	q := []float64{4, 4}
	const k = 3

	ix, err := wqrtq.NewIndex(computers)
	if err != nil {
		log.Fatal(err)
	}

	ivs, err := ix.ReverseTopKMono2D(q, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MRTOP%d(q): the preferences (λ, 1-λ) ranking q in their top-%d:\n", k, k)
	for _, iv := range ivs {
		fmt.Printf("  λ ∈ [%.4f, %.4f]\n", iv.Lo, iv.Hi)
	}

	// The two why-not vectors of Figure 2(b): A = (1/10, 9/10) and
	// D = (4/5, 1/5) lie outside the segment BC.
	whyNot := [][]float64{{0.1, 0.9}, {0.8, 0.2}}
	for _, w := range whyNot {
		inside := false
		for _, iv := range ivs {
			if iv.Lo <= w[0] && w[0] <= iv.Hi {
				inside = true
			}
		}
		fmt.Printf("\nw = (%.2f, %.2f): inside MRTOP%d? %v\n", w[0], w[1], k, inside)
		if inside {
			continue
		}
		ex, err := ix.Explain(q, [][]float64{w})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  excluded by %d better computers:", len(ex[0]))
		for _, r := range ex[0] {
			fmt.Printf(" p%d(%.2f)", r.ID+1, r.Score)
		}
		fmt.Println()
	}

	// Refine so that both missing preferences join the result. For the
	// monochromatic query the framework is identical (§3: "these two
	// problems can be transformed to a single problem").
	ans, err := ix.WhyNot(q, k, whyNot, wqrtq.Options{SampleSize: 800, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrefinements making both preferences part of the result:")
	fmt.Printf("  MQP : q' = (%.3f, %.3f), penalty %.4f\n",
		ans.ModifiedQuery.Q[0], ans.ModifiedQuery.Q[1], ans.ModifiedQuery.Penalty)
	fmt.Printf("  MWK : Wm' = %v, k' = %d, penalty %.4f\n",
		ans.ModifiedPreferences.Wm, ans.ModifiedPreferences.K, ans.ModifiedPreferences.Penalty)
	fmt.Printf("  MQWK: q' = (%.3f, %.3f), k' = %d, penalty %.4f\n",
		ans.ModifiedAll.Q[0], ans.ModifiedAll.Q[1], ans.ModifiedAll.K, ans.ModifiedAll.Penalty)

	// Show the refined monochromatic region for the MQP answer: both λ
	// values now fall inside.
	ivs2, err := ix.ReverseTopKMono2D(ans.ModifiedQuery.Q, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMRTOP%d(q') after MQP:\n", k)
	for _, iv := range ivs2 {
		fmt.Printf("  λ ∈ [%.4f, %.4f]\n", iv.Lo, iv.Hi)
	}
}
