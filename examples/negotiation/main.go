// Negotiation explores the bargaining interpretation of the third solution
// (§4.4): the manufacturer and the customers "collaborate in finding an
// optimal solution", and the tolerance weights γ (manufacturer's cost of
// changing the product) and λ (customers' cost of changing preferences)
// shift where the compromise lands. Sweeping γ from manufacturer-rigid to
// manufacturer-flexible shows MQWK moving between the pure MWK and pure
// MQP solutions.
//
// Run with:
//
//	go run ./examples/negotiation
package main

import (
	"fmt"
	"log"
	"math"

	"wqrtq"
	"wqrtq/internal/dataset"
)

func main() {
	const (
		n    = 10000
		k    = 10
		rank = 101
		seed = 7
	)
	ds := dataset.HouseholdLike(n, seed)
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}
	ix, err := wqrtq.NewIndex(pts)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := dataset.MakeWhyNot(ds, k, rank, 2, seed)
	if err != nil {
		log.Fatal(err)
	}
	wm := make([][]float64, len(wl.Wm))
	for i, w := range wl.Wm {
		wm[i] = w
	}
	fmt.Printf("household-style market: %d tuples, k = %d, two why-not customers (q ranks %v)\n\n",
		n, k, wl.ActualRanks)

	// Pure solutions for reference.
	mqp, err := ix.ModifyQuery(wl.Q, k, wm, wqrtq.Options{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	mwk, err := ix.ModifyPreferences(wl.Q, k, wm, wqrtq.Options{SampleSize: 400, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pure product change (MQP):    penalty %.4f (product moves %.2f%%)\n",
		mqp.Penalty, 100*mqp.Penalty)
	fmt.Printf("pure preference change (MWK): penalty %.4f (k' = %d of max %d)\n\n",
		mwk.Penalty, mwk.K, mwk.KMax)

	fmt.Println("negotiation sweep (γ = manufacturer tolerance, λ = 1-γ = customer tolerance):")
	fmt.Println("  γ     penalty   product-change   preference-change   k'")
	for _, gamma := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		opts := wqrtq.Options{
			Penalty: wqrtq.PenaltyModel{
				Alpha: 0.5, Beta: 0.5,
				Gamma: gamma, Lambda: 1 - gamma,
			},
			SampleSize: 400,
			Seed:       seed,
		}
		all, err := ix.ModifyAll(wl.Q, k, wm, opts)
		if err != nil {
			log.Fatal(err)
		}
		qMove := dist(all.Q, wl.Q) / norm(wl.Q)
		wMove := 0.0
		for i := range wm {
			d := dist(all.Wm[i], wm[i])
			wMove += d * d
		}
		wMove = math.Sqrt(wMove)
		fmt.Printf("  %.1f   %.4f    %.4f           %.4f              %d\n",
			gamma, all.Penalty, qMove, wMove, all.K)
	}
	fmt.Println("\nreading: with a rigid manufacturer (large γ) the burden shifts to the")
	fmt.Println("customers (larger preference change / k'), and vice versa — the joint")
	fmt.Println("outcome of the bargaining model in [13] cited by the paper.")
}

func dist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func norm(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}
