// Quickstart reproduces the paper's running example end to end (Figures
// 1–6): seven computer models, four customers, Apple's query computer
// q = (4, 4), and the why-not question "why are Kevin and Julia not among
// the reverse top-3 customers of q, and what should change?"
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"wqrtq"
)

func main() {
	// Figure 1(a): price and heat production per computer (smaller better).
	computers := [][]float64{
		{2, 1}, // p1 Dell
		{6, 3}, // p2 Apple... the catalogue of competitors
		{1, 9}, // p3
		{9, 3}, // p4
		{7, 5}, // p5
		{5, 8}, // p6
		{3, 7}, // p7
	}
	names := []string{"p1", "p2", "p3", "p4", "p5", "p6", "p7"}

	// Figure 1(b): customer preferences (w[price], w[heat]).
	customers := map[string][]float64{
		"Julia": {0.9, 0.1},
		"Tony":  {0.5, 0.5},
		"Anna":  {0.3, 0.7},
		"Kevin": {0.1, 0.9},
	}
	order := []string{"Julia", "Tony", "Anna", "Kevin"}
	W := make([][]float64, len(order))
	for i, n := range order {
		W[i] = customers[n]
	}

	q := []float64{4, 4} // Apple's new computer
	const k = 3

	ix, err := wqrtq.NewIndex(computers)
	if err != nil {
		log.Fatal(err)
	}

	// --- The reverse top-3 query (§1) -----------------------------------
	result, err := ix.ReverseTopK(W, q, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Reverse top-3 customers of q(4,4):")
	for _, i := range result {
		fmt.Printf("  %-5s %v\n", order[i], W[i])
	}

	// --- The monochromatic view (Figure 2(b)) ----------------------------
	ivs, err := ix.ReverseTopKMono2D(q, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAll preferences ranking q in their top-3 (w = (λ, 1-λ)):")
	for _, iv := range ivs {
		fmt.Printf("  λ ∈ [%.4f, %.4f]   (the segment BC of Figure 2(b))\n", iv.Lo, iv.Hi)
	}

	// --- The why-not question (§3, §4) -----------------------------------
	// Through the context-first API, as a deadline-bounded production query
	// would run it: the sampling loops poll the context and abort with
	// context.DeadlineExceeded if the budget expires mid-refinement.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := ix.WhyNotCtx(ctx, wqrtq.WhyNotRequest{
		Q: q, K: k, W: W,
		Opts: wqrtq.Options{SampleSize: 800, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	ans := resp.Answer
	fmt.Println("\nMissing customers and why:")
	for i, mi := range ans.Missing {
		fmt.Printf("  %s is missing because %d computers beat q:\n", order[mi], len(ans.Explanations[i]))
		for _, r := range ans.Explanations[i] {
			fmt.Printf("    %s scores %.2f (q scores 4.00)\n", names[r.ID], r.Score)
		}
	}

	fmt.Println("\nHow to win Kevin and Julia back (smaller penalty = cheaper):")
	fmt.Printf("  1. Redesign the computer (MQP):\n")
	fmt.Printf("     q' = (%.3f, %.3f), penalty %.4f\n",
		ans.ModifiedQuery.Q[0], ans.ModifiedQuery.Q[1], ans.ModifiedQuery.Penalty)
	fmt.Printf("  2. Influence the customers (MWK):\n")
	for j, w := range ans.ModifiedPreferences.Wm {
		fmt.Printf("     %s: %v → (%.3f, %.3f)\n",
			order[ans.Missing[j]], W[ans.Missing[j]], w[0], w[1])
	}
	fmt.Printf("     k' = %d, penalty %.4f\n", ans.ModifiedPreferences.K, ans.ModifiedPreferences.Penalty)
	fmt.Printf("  3. Meet in the middle (MQWK):\n")
	fmt.Printf("     q' = (%.3f, %.3f), k' = %d, penalty %.4f\n",
		ans.ModifiedAll.Q[0], ans.ModifiedAll.Q[1], ans.ModifiedAll.K, ans.ModifiedAll.Penalty)

	// --- Check every suggestion actually works ---------------------------
	missW := [][]float64{W[ans.Missing[0]], W[ans.Missing[1]]}
	ok1, _ := ix.Verify(ans.ModifiedQuery.Q, k, missW)
	ok2, _ := ix.Verify(q, ans.ModifiedPreferences.K, ans.ModifiedPreferences.Wm)
	ok3, _ := ix.Verify(ans.ModifiedAll.Q, ans.ModifiedAll.K, ans.ModifiedAll.Wm)
	fmt.Printf("\nverified: MQP=%v MWK=%v MQWK=%v\n", ok1, ok2, ok3)
}
