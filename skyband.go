package wqrtq

// The k-skyband sub-index (internal/skyband) bound to the Index: every
// reverse-top-k-shaped evaluation — the RTA loop behind ReverseTopK and
// WhyNot, rank counting, MQP's top k-th searches, and the MWK/MQWK sampling
// loops — runs against a lazily computed, epoch-cached k-skyband candidate
// set instead of the full dataset. Only points dominated by fewer than k
// others can appear in any top-k result, so results are bit-identical to
// the full-tree paths (the differential suite in skyband_test.go proves it
// end to end); the candidate set is typically orders of magnitude smaller
// than n, which is where the speedup comes from (see DESIGN.md §8 and
// BENCH_skyband.json).

import (
	"context"

	"wqrtq/internal/core"
	"wqrtq/internal/dominance"
	"wqrtq/internal/rtopk"
	"wqrtq/internal/skyband"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// SetSkyband toggles the k-skyband sub-index (enabled by default). Results
// are identical either way; disabling it — the -skyband=off ablation —
// reverts every query to the full-tree execution paths. It must be
// serialized with mutations and Clone, like Reshard.
func (ix *Index) SetSkyband(enabled bool) {
	ix.skyOff = !enabled
	if ix.shards != nil {
		if enabled && !ix.shards.SkybandEnabled() {
			ix.shards.EnableSkyband(ix.skyCounters())
		} else if !enabled {
			ix.shards.DisableSkyband()
		}
	}
}

// SkybandEnabled reports whether the k-skyband sub-index is active.
func (ix *Index) SkybandEnabled() bool { return !ix.skyOff }

// skyCounters returns the cumulative skyband counters of the clone family.
func (ix *Index) skyCounters() *skyband.Counters {
	if ix.sky == nil {
		return nil
	}
	return ix.sky.Counters()
}

// resetSkyband swaps in a fresh cache after an in-place mutation, so the
// next banded query recomputes against the current point set. (Engine
// traffic never hits this path for invalidation — every mutation publishes
// a Clone, which starts with an empty cache.)
func (ix *Index) resetSkyband() {
	ix.sky = skyband.NewCache(ix.tree, ix.skyCounters())
}

// band returns the k-skyband of the current snapshot, or nil when the
// sub-index is disabled.
func (ix *Index) band(k int) *skyband.Band {
	if ix.skyOff || ix.sky == nil {
		return nil
	}
	return ix.sky.Band(k)
}

// coreSource builds the acceleration hooks the refinement algorithms run
// through for query point q and parameter k, or nil when disabled. The
// hooks are bit-compatible with the legacy scans (see core.Source). Every
// band resolves lazily inside its hook, so an algorithm that never calls a
// hook (MWK uses neither KthPoint nor, for small k'max, BandCounts) never
// pays a band construction.
func (ix *Index) coreSource(q vec.Point, k int) *core.Source {
	if ix.skyOff || ix.sky == nil {
		return nil
	}
	return &core.Source{
		Kernel: ix.kernelCounters(),
		CountBeaters: func(ctx context.Context, w vec.Weight, fq float64) (int, error) {
			return dominance.CountBeatersCtx(ctx, ix.tree, q, w, fq)
		},
		KthPoint: func(ctx context.Context, w vec.Weight, kk int) (topk.Result, bool, error) {
			if kk == k {
				if b := ix.band(k); b != nil && !b.Full() {
					return topk.KthPointCtx(ctx, b.Tree(), w, kk)
				}
			}
			return topk.KthPointCtx(ctx, ix.tree, w, kk)
		},
		BandCounts: func(bound int) func(id int32) bool {
			// Round the band parameter up to a power of two so the
			// per-request k'max values (which vary query to query) map
			// onto a handful of cached bands per snapshot, and refuse
			// large bounds outright: a wide band is expensive to build
			// and trims little, so the sampling loops are better served
			// by their flattened full scans.
			bandK := 16
			for bandK < bound {
				bandK <<= 1
			}
			if bandK > 2*skyband.DefaultRankBand || fullBandTrim*bandK >= ix.tree.Len() {
				return nil
			}
			bb := ix.band(bandK)
			if bb == nil || bb.Full() {
				return nil
			}
			return bb.Keep(bound)
		},
	}
}

// fullBandTrim rejects sample-loop trim bands whose k is large relative to
// the dataset (the band would cover most of it).
const fullBandTrim = 64

// refineSource is coreSource guarded for the refinement entry points, which
// validate q and k inside internal/core: obviously invalid input gets a nil
// source, so no band is built before the validation error surfaces.
func (ix *Index) refineSource(q []float64, k int) *core.Source {
	if k <= 0 || len(q) != ix.Dim() || ix.tree.Len() == 0 {
		return nil
	}
	return ix.coreSource(vec.Point(q), k)
}

// SkybandStats is a point-in-time view of the skyband sub-index.
type SkybandStats struct {
	// Enabled reports whether queries route through the sub-index.
	Enabled bool `json:"enabled"`
	// Bands and Points describe the bands materialized for the current
	// snapshot (across all shards when sharded).
	Bands  int `json:"bands"`
	Points int `json:"points"`
	// Builds and Hits count band computations and band-cache hits over the
	// index's whole lifetime (cumulative across snapshots). Fallbacks
	// counts rank queries that exceeded their band bound and fell back to
	// a full tree.
	Builds    int64 `json:"builds"`
	Hits      int64 `json:"hits"`
	Fallbacks int64 `json:"fallbacks"`
}

// SkybandStats reports the sub-index's cache contents and cumulative
// counters.
func (ix *Index) SkybandStats() SkybandStats {
	s := SkybandStats{Enabled: ix.SkybandEnabled()}
	if ix.sky == nil {
		return s
	}
	cs := ix.sky.Stats()
	s.Bands, s.Points = cs.Bands, cs.Points
	if ix.shards != nil && ix.shards.SkybandEnabled() {
		ss := ix.shards.SkybandStats()
		s.Bands += ss.Bands
		s.Points += ss.Points
	}
	ct := ix.sky.Counters().Snapshot()
	s.Builds, s.Hits, s.Fallbacks = ct.Builds, ct.Hits, ct.Fallbacks
	return s
}

// RTAStats reports the pruning work of one reverse top-k evaluation: how
// many weighting vectors required a top-k evaluation, how many the RTA
// buffer threshold rejected without one, and how many indexed points each
// evaluation ran against (the k-skyband size when the sub-index served the
// query, the full dataset size otherwise).
type RTAStats struct {
	Evaluated        int `json:"evaluated"`
	Pruned           int `json:"pruned"`
	CandidateSetSize int `json:"candidate_set_size"`
}

// toRTAStats converts the internal evaluation statistics to the public
// response form.
func toRTAStats(s rtopk.Stats) RTAStats {
	return RTAStats{Evaluated: s.Evaluated, Pruned: s.Pruned, CandidateSetSize: s.CandidateSetSize}
}
