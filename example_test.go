package wqrtq_test

import (
	"fmt"
	"log"

	"wqrtq"
)

// The paper's Figure 1 dataset: seven computers with (price, heat)
// attributes, smaller is better.
func figure1Index() *wqrtq.Index {
	ix, err := wqrtq.NewIndex([][]float64{
		{2, 1}, {6, 3}, {1, 9}, {9, 3}, {7, 5}, {5, 8}, {3, 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	return ix
}

// ExampleIndex_ReverseTopK reproduces the paper's §1 example: Tony and Anna
// rank the query computer among their top-3 choices; Julia and Kevin do not.
func ExampleIndex_ReverseTopK() {
	ix := figure1Index()
	customers := [][]float64{
		{0.9, 0.1}, // Julia
		{0.5, 0.5}, // Tony
		{0.3, 0.7}, // Anna
		{0.1, 0.9}, // Kevin
	}
	result, err := ix.ReverseTopK(customers, []float64{4, 4}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(result)
	// Output: [1 2]
}

// ExampleIndex_Explain answers the first aspect of a why-not question: for
// Kevin's preference, p1, p2 and p4 outscore q (§3).
func ExampleIndex_Explain() {
	ix := figure1Index()
	ex, err := ix.Explain([]float64{4, 4}, [][]float64{{0.1, 0.9}})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range ex[0] {
		fmt.Printf("p%d scores %.1f\n", r.ID+1, r.Score)
	}
	// Output:
	// p1 scores 1.1
	// p2 scores 3.3
	// p4 scores 3.6
}

// ExampleIndex_ModifyQuery finds the cheapest product redesign that wins
// back Kevin and Julia (solution 1, MQP).
func ExampleIndex_ModifyQuery() {
	ix := figure1Index()
	whyNot := [][]float64{{0.1, 0.9}, {0.9, 0.1}} // Kevin, Julia
	ref, err := ix.ModifyQuery([]float64{4, 4}, 3, whyNot, wqrtq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("q' = (%.3f, %.3f), penalty %.3f\n", ref.Q[0], ref.Q[1], ref.Penalty)
	ok, _ := ix.Verify(ref.Q, 3, whyNot)
	fmt.Println("verified:", ok)
	// Output:
	// q' = (3.375, 3.625), penalty 0.129
	// verified: true
}

// ExampleIndex_ModifyPreferences finds the cheapest change of the missing
// customers' preferences (solution 2, MWK): Kevin moves to λ = 1/6 and
// Julia to λ = 3/4, with k unchanged.
func ExampleIndex_ModifyPreferences() {
	ix := figure1Index()
	whyNot := [][]float64{{0.1, 0.9}, {0.9, 0.1}}
	ref, err := ix.ModifyPreferences([]float64{4, 4}, 3, whyNot, wqrtq.Options{SampleSize: 800, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k' = %d, penalty %.4f\n", ref.K, ref.Penalty)
	fmt.Printf("Kevin → (%.4f, %.4f)\n", ref.Wm[0][0], ref.Wm[0][1])
	fmt.Printf("Julia → (%.4f, %.4f)\n", ref.Wm[1][0], ref.Wm[1][1])
	// Output:
	// k' = 3, penalty 0.1161
	// Kevin → (0.1667, 0.8333)
	// Julia → (0.7500, 0.2500)
}

// ExampleIndex_ReverseTopKMono2D shows the monochromatic result of Figure
// 2(b): exactly the preferences with λ between 1/6 and 3/4 rank q in their
// top-3.
func ExampleIndex_ReverseTopKMono2D() {
	ix := figure1Index()
	ivs, err := ix.ReverseTopKMono2D([]float64{4, 4}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, iv := range ivs {
		fmt.Printf("λ ∈ [%.4f, %.4f]\n", iv.Lo, iv.Hi)
	}
	// Output: λ ∈ [0.1667, 0.7500]
}

// ExampleIndex_Nearest locates the competitors closest to a product in
// attribute space.
func ExampleIndex_Nearest() {
	ix := figure1Index()
	ns, err := ix.Nearest([]float64{4, 4}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p%d at distance %.3f\n", ns[0].ID+1, ns[0].Distance)
	// Output:
	// p2 at distance 2.236
}
