package wqrtq

// Regression tests for three serving-engine fixes: the dead-epoch cache
// sweep on mutation publish, deduplication of merged reverse top-k weight
// sets, and typed validation errors at the request boundary.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"wqrtq/internal/rtopk"
	"wqrtq/internal/sample"
	"wqrtq/internal/vec"
)

// TestEngineCacheSweepsDeadEpochs asserts that entries cached under a
// superseded snapshot epoch are evicted when a mutation publishes a new
// one, instead of accumulating until LRU capacity pressure reaches them.
func TestEngineCacheSweepsDeadEpochs(t *testing.T) {
	e, _ := testEngine(t, 300, 3, EngineConfig{CacheSize: 1024})
	rng := rand.New(rand.NewSource(5))
	const (
		mutations = 25
		queries   = 8
	)
	for m := 0; m < mutations; m++ {
		// Populate the cache under the current epoch with distinct queries;
		// re-issuing each one exercises the same-epoch hit path.
		for i := 0; i < queries; i++ {
			w := []float64(sample.RandSimplex(rng, 3))
			for rep := 0; rep < 2; rep++ {
				if _, _, err := e.TopK(w, 5); err != nil {
					t.Fatal(err)
				}
			}
		}
		if got := e.Stats().CacheLen; got > queries {
			t.Fatalf("mutation %d: cache holds %d entries before publish, want <= %d", m, got, queries)
		}
		if _, _, err := e.Insert([]float64{rng.Float64(), rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
		// The publish sweep must have removed every dead-epoch entry: the new
		// epoch has seen no queries yet.
		s := e.Stats()
		if s.CacheLen != 0 {
			t.Fatalf("mutation %d: %d dead-epoch entries survived the publish sweep", m, s.CacheLen)
		}
	}
	s := e.Stats()
	if want := int64(mutations * queries); s.CacheEvictions != want {
		t.Fatalf("CacheEvictions = %d, want %d (every cached entry swept exactly once)", s.CacheEvictions, want)
	}
	if s.CacheHits == 0 {
		t.Fatalf("expected some same-epoch cache hits, got stats %+v", s)
	}
}

// sharedWeightGroup builds two same-(q, k) requests whose weight sets share
// 90% of their vectors (18 of 20 each, 22 distinct in total).
func sharedWeightGroup(rng *rand.Rand, d int) (*engineReq, *engineReq) {
	shared := make([][]float64, 18)
	for i := range shared {
		shared[i] = sample.RandSimplex(rng, d)
	}
	mk := func() [][]float64 {
		W := append([][]float64{}, shared...)
		W = append(W, sample.RandSimplex(rng, d), sample.RandSimplex(rng, d))
		return W
	}
	q := []float64{0.05, 0.05, 0.05}
	ra := &engineReq{kind: "rtopk", W: mk(), q: q, k: 5}
	rb := &engineReq{kind: "rtopk", W: mk(), q: q, k: 5}
	return ra, rb
}

// TestMergeRTopKWeightsDedup asserts that a merged same-(q, k) group
// evaluates each distinct weight vector exactly once: the merged slice is
// deduplicated, and the RTA run over it evaluates-or-prunes exactly the
// deduplicated count.
func TestMergeRTopKWeightsDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ra, rb := sharedWeightGroup(rng, 3)
	merged, slots := mergeRTopKWeights([]*engineReq{ra, rb})
	if want := 22; len(merged) != want {
		t.Fatalf("merged %d weights, want %d (18 shared + 2 + 2)", len(merged), want)
	}
	for gi, r := range []*engineReq{ra, rb} {
		for j, mi := range slots[gi] {
			if !vec.Equal(vec.Point(merged[mi]), vec.Point(r.W[j])) {
				t.Fatalf("slot (%d, %d) points at the wrong merged vector", gi, j)
			}
		}
	}

	e, _ := testEngine(t, 400, 3, EngineConfig{})
	snap := e.Snapshot()
	_, stats, err := rtopk.BichromaticCtx(context.Background(), snap.tree, merged, vec.Point(ra.q), ra.k)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Evaluated + stats.Pruned; got != len(merged) {
		t.Fatalf("Evaluated + Pruned = %d, want the deduplicated count %d", got, len(merged))
	}
}

// TestExecRTopKSharedWeights runs the batch executor's merged-group path
// directly on two requests sharing 90% of W and checks each fan-out result
// against an independent per-request evaluation.
func TestExecRTopKSharedWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	e, _ := testEngine(t, 400, 3, EngineConfig{})
	snap := e.Snapshot()
	ra, rb := sharedWeightGroup(rng, 3)
	got := make(map[*engineReq][]int)
	e.execRTopK(context.Background(), snap, []*engineReq{ra, rb}, func(r *engineReq, val any, err error) {
		if err != nil {
			t.Fatalf("execRTopK: %v", err)
		}
		rv, _ := val.(rtopkVal)
		got[r] = rv.res
	})
	for i, r := range []*engineReq{ra, rb} {
		want, err := snap.ReverseTopK(r.W, r.q, r.k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[r], want) {
			t.Fatalf("request %d: merged result %v, independent result %v", i, got[r], want)
		}
	}
}

// TestValidationTypedErrors asserts that every request-boundary rejection —
// non-finite and negative weights and points, dimension mismatches, bad k,
// empty weight sets, out-of-range ids, bad options — carries
// ErrInvalidArgument, on both the Index and the Engine paths.
func TestValidationTypedErrors(t *testing.T) {
	ctx := context.Background()
	e, ix := testEngine(t, 50, 3, EngineConfig{})
	q := []float64{0.5, 0.5, 0.5}
	okW := []float64{0.2, 0.3, 0.5}
	badWeights := map[string][]float64{
		"NaN":       {math.NaN(), 0.5, 0.5},
		"+Inf":      {math.Inf(1), 0.5, 0.5},
		"-Inf":      {math.Inf(-1), 0.5, 0.5},
		"negative":  {-0.5, 0.75, 0.75},
		"bad sum":   {0.9, 0.9, 0.9},
		"short dim": {0.5, 0.5},
	}
	for name, w := range badWeights {
		if _, err := ix.TopKCtx(ctx, TopKRequest{W: w, K: 3}); !errors.Is(err, ErrInvalidArgument) {
			t.Errorf("Index.TopKCtx(%s weight): err = %v, want ErrInvalidArgument", name, err)
		}
		if _, err := e.TopKCtx(ctx, TopKRequest{W: w, K: 3}); !errors.Is(err, ErrInvalidArgument) {
			t.Errorf("Engine.TopKCtx(%s weight): err = %v, want ErrInvalidArgument", name, err)
		}
		if _, err := e.ReverseTopKCtx(ctx, ReverseTopKRequest{Q: q, K: 3, W: [][]float64{w}}); !errors.Is(err, ErrInvalidArgument) {
			t.Errorf("Engine.ReverseTopKCtx(%s weight): err = %v, want ErrInvalidArgument", name, err)
		}
	}
	badPoints := map[string][]float64{
		"NaN":      {math.NaN(), 0.5, 0.5},
		"Inf":      {math.Inf(1), 0.5, 0.5},
		"negative": {-1, 0.5, 0.5},
		"long dim": {0.5, 0.5, 0.5, 0.5},
	}
	for name, p := range badPoints {
		if _, err := ix.RankCtx(ctx, RankRequest{W: okW, Q: p}); !errors.Is(err, ErrInvalidArgument) {
			t.Errorf("Index.RankCtx(%s point): err = %v, want ErrInvalidArgument", name, err)
		}
		if _, _, err := e.Insert(p); !errors.Is(err, ErrInvalidArgument) {
			t.Errorf("Engine.Insert(%s point): err = %v, want ErrInvalidArgument", name, err)
		}
	}
	if _, err := ix.TopKCtx(ctx, TopKRequest{W: okW, K: 0}); !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("k = 0: want ErrInvalidArgument")
	}
	if _, err := e.ReverseTopKCtx(ctx, ReverseTopKRequest{Q: q, K: 3, W: nil}); !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("empty W: want ErrInvalidArgument")
	}
	if _, _, err := e.Delete(-1); !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("Delete(-1): want ErrInvalidArgument")
	}
	if _, err := ix.ModifyAllCtx(ctx, ModifyAllRequest{Q: q, K: 3, Wm: [][]float64{okW}, Opts: Options{SampleSize: -1}}); !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("negative sample size: want ErrInvalidArgument")
	}
	if _, err := NewIndex(nil); !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("NewIndex(nil): want ErrInvalidArgument")
	}
	if _, err := NewIndexSharded([][]float64{{1, 2}}, 1<<20); !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("absurd shard count: want ErrInvalidArgument")
	}
	// Context errors must not read as validation failures.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.TopKCtx(canceled, TopKRequest{W: okW, K: 3}); errors.Is(err, ErrInvalidArgument) || !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx: err = %v, want context.Canceled and not ErrInvalidArgument", err)
	}
}
