package wqrtq

// The materialized reverse-top-k cell index (internal/cellindex) bound to
// the Index: eligible bichromatic reverse top-k evaluations — ReverseTopK
// itself and the RTA stage of the fused why-not pipeline — answer each
// weighting vector from a point-located grid cell's precomputed candidate
// superset instead of sweeping the whole k-skyband, and monochromatic
// reverse top-k gets an exact algorithm beyond 2-D (ReverseTopKMonoND).
// Results are bit-identical to the -cellindex=off ablation (the
// differential suite in cellindex_test.go proves it end to end; see
// DESIGN.md §10 for the construction and the count-preservation
// argument). The index rides on the skyband bands — grids are built over
// them, so their lazy builds and cache hits tick the skyband counters —
// and reports its scan work through the kernel counters; with either of
// those sub-indexes disabled, queries run the legacy paths regardless of
// this switch.

import (
	"wqrtq/internal/cellindex"
	"wqrtq/internal/rtopk"
)

// SetCellIndex toggles the materialized cell index (enabled by default).
// Results are identical either way; disabling it — the -cellindex=off
// ablation — reverts reverse top-k to the blocked-kernel/RTA paths. It
// must be serialized with mutations and Clone, like SetSkyband.
func (ix *Index) SetCellIndex(enabled bool) {
	ix.cellOff = !enabled
	if ix.shards != nil {
		if enabled && !ix.shards.CellIndexEnabled() {
			ix.shards.EnableCellIndex(ix.cct)
		} else if !enabled {
			ix.shards.DisableCellIndex()
		}
	}
}

// CellIndexEnabled reports whether the materialized cell index is active.
func (ix *Index) CellIndexEnabled() bool { return !ix.cellOff }

// cellGrid returns the cell grid for parameter k, or nil when any of the
// stacked sub-indexes is disabled or the configuration is ineligible
// (dimensionality, basis size, cache pressure) — callers then use the
// kernel/RTA paths, which answer identically.
func (ix *Index) cellGrid(k int) *cellindex.Grid {
	if ix.cellOff || ix.skyOff || ix.kernelOff || ix.cells == nil {
		return nil
	}
	return ix.cells.Grid(k)
}

// resetCellIndex swaps in a fresh grid cache after an in-place mutation.
// It must run after resetSkyband so the new grids build over the new
// snapshot's bands.
func (ix *Index) resetCellIndex() {
	ix.cells = cellindex.NewCache(ix.sky, ix.Dim(), ix.cct)
}

// MonoCell is one cell of a d >= 3 monochromatic reverse top-k answer:
// Lo and Hi bound the weighting vectors it covers per coordinate, Full
// marks cells proven to lie entirely inside the result, and MidIn reports
// the verified decision at the cell midpoint (always true for full
// cells).
type MonoCell struct {
	Lo, Hi []float64
	Full   bool
	MidIn  bool
}

// ReverseTopKMonoND answers the monochromatic reverse top-k query exactly
// through the materialized cell index. For 2-D data it returns the same
// maximal λ-intervals as ReverseTopKMono2D (cells is nil); for 3-D and
// 4-D it returns the result region as grid cells (intervals is nil):
// every weighting vector whose top-k contains q lies in a returned cell,
// full cells are entirely inside the result, and partial cells carry a
// verified midpoint decision. It requires the cell index and the skyband
// sub-index (its basis) to be enabled; 2-D queries fall back to the exact
// arrangement sweep when the index declines, higher dimensions have no
// exact fallback and report the configuration error.
func (ix *Index) ReverseTopKMonoND(q []float64, k int) ([]Interval, []MonoCell, error) {
	if err := ix.checkPoint(q); err != nil {
		return nil, nil, err
	}
	if k <= 0 {
		return nil, nil, errPositiveK
	}
	var g *cellindex.Grid
	if !ix.cellOff && !ix.skyOff && ix.cells != nil {
		g = ix.cells.Grid(k)
	}
	if g == nil {
		if ix.Dim() == 2 {
			ivs, err := ix.ReverseTopKMono2D(q, k)
			return ivs, nil, err
		}
		return nil, nil, invalidArgf("exact monochromatic reverse top-k beyond 2-D requires the cell index (%d-D data, cell index eligible: %t)", ix.Dim(), !ix.cellOff && !ix.skyOff)
	}
	ivs, cells := rtopk.MonochromaticND(g, q, k)
	outIvs := make([]Interval, len(ivs))
	for i, iv := range ivs {
		outIvs[i] = Interval{Lo: iv.Lo, Hi: iv.Hi}
	}
	var outCells []MonoCell
	if cells != nil {
		outCells = make([]MonoCell, len(cells))
		for i, c := range cells {
			outCells[i] = MonoCell{Lo: c.Lo, Hi: c.Hi, Full: c.Full, MidIn: c.MidIn}
		}
	}
	if ix.Dim() == 2 {
		return outIvs, nil, nil
	}
	return nil, outCells, nil
}

// CellIndexStats is a point-in-time view of the materialized cell index.
type CellIndexStats struct {
	// Enabled reports whether eligible queries route through the index.
	Enabled bool `json:"enabled"`
	// Grids, Cells and Candidates describe the grids materialized for the
	// current snapshot (across all shards when sharded): how many
	// (snapshot, k) grids exist, their total built cells, and the total
	// candidate rows those cells store.
	Grids      int `json:"grids"`
	Cells      int `json:"cells"`
	Candidates int `json:"candidates"`
	// Builds and Hits count grid constructions and grid-cache hits over
	// the index's whole lifetime (cumulative across snapshots). Lookups
	// counts weighting vectors answered by cell lookups; Fallbacks counts
	// queries that reached the cell path but fell back to a legacy
	// algorithm (ineligible configuration or a failed point location).
	Builds    int64 `json:"builds"`
	Hits      int64 `json:"hits"`
	Fallbacks int64 `json:"fallbacks"`
	Lookups   int64 `json:"lookups"`
}

// CellIndexStats reports the sub-index's cache contents and cumulative
// counters.
func (ix *Index) CellIndexStats() CellIndexStats {
	s := CellIndexStats{Enabled: ix.CellIndexEnabled()}
	if ix.cells == nil {
		return s
	}
	cs := ix.cells.Stats()
	s.Grids, s.Cells, s.Candidates = cs.Grids, cs.Cells, cs.Candidates
	if ix.shards != nil && ix.shards.CellIndexEnabled() {
		ss := ix.shards.CellIndexStats()
		s.Grids += ss.Grids
		s.Cells += ss.Cells
		s.Candidates += ss.Candidates
	}
	ct := ix.cct.Snapshot()
	s.Builds, s.Hits, s.Fallbacks, s.Lookups = ct.Builds, ct.Hits, ct.Fallbacks, ct.Lookups
	return s
}
