package wqrtq

// The blocked SoA scoring kernel (internal/kernel) bound to the Index:
// every "many weights × one candidate set" evaluation — the per-sample
// rank counting of the MWK/MQWK refinement loops and the reverse top-k
// membership tests over a k-skyband — runs as cache-friendly blocked
// sweeps over column-major flattened coordinates instead of one scalar
// scan (or one branch-and-bound top-k) per weighting vector. Results are
// bit-identical to the -kernel=off ablation: every score is the same
// multiply/add chain as vec.Score, only evaluated block-at-a-time (the
// kernel differential suite in kernel_test.go proves it end to end; see
// DESIGN.md §9 for the cost model).

import (
	"wqrtq/internal/kernel"
	"wqrtq/internal/rtopk"
)

// kernelRTACutoff is the candidate-set size up to which reverse top-k
// routes through the blocked counting evaluation instead of the RTA loop
// (rtopk.CoordsCutoff re-exported as the Index-level policy constant, so
// the monolithic and sharded paths share one eligibility threshold).
const kernelRTACutoff = rtopk.CoordsCutoff

// SetKernel toggles the blocked scoring kernel (enabled by default).
// Results are identical either way; disabling it — the -kernel=off
// ablation — reverts the sampling loops and reverse top-k to scalar
// per-weight evaluation. It must be serialized with mutations and Clone,
// like SetSkyband. The kernel rides on the skyband candidate sets: with
// the skyband sub-index disabled there is nothing to flatten, and queries
// run the legacy paths regardless of this switch.
func (ix *Index) SetKernel(enabled bool) {
	ix.kernelOff = !enabled
	if ix.shards != nil {
		if enabled {
			ix.shards.EnableKernel(ix.kct)
		} else {
			ix.shards.DisableKernel()
		}
	}
}

// KernelEnabled reports whether the blocked scoring kernel is active.
func (ix *Index) KernelEnabled() bool { return !ix.kernelOff }

// kernelCounters returns the cumulative kernel counters of the clone
// family, or nil when the kernel is disabled (the nil propagates into
// core.Source.Kernel as the ablation switch).
func (ix *Index) kernelCounters() *kernel.Counters {
	if ix.kernelOff {
		return nil
	}
	return ix.kct
}

// KernelStats is a point-in-time view of the blocked scoring kernel.
type KernelStats struct {
	// Enabled reports whether eligible evaluations route through the
	// blocked kernel.
	Enabled bool `json:"enabled"`
	// Blocks counts blocked sweeps over a flattened candidate set;
	// Weights the weighting vectors they evaluated; Points the candidate
	// points per sweep, summed. Weights/Blocks is the achieved blocking
	// factor — how many scans each memory pass amortized. All counters
	// are cumulative across snapshots of the clone family.
	Blocks  int64 `json:"blocks"`
	Weights int64 `json:"weights"`
	Points  int64 `json:"points"`
}

// KernelStats reports the kernel's cumulative counters.
func (ix *Index) KernelStats() KernelStats {
	s := KernelStats{Enabled: ix.KernelEnabled()}
	cs := ix.kct.Snapshot()
	s.Blocks, s.Weights, s.Points = cs.Blocks, cs.Weights, cs.Points
	return s
}
