package wqrtq

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"wqrtq/internal/dataset"
	"wqrtq/internal/sample"
)

func testEngine(t *testing.T, n, d int, cfg EngineConfig) (*Engine, *Index) {
	t.Helper()
	ds := dataset.Independent(n, d, 7)
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}
	ix, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, ix
}

func TestEngineMatchesIndex(t *testing.T) {
	e, _ := testEngine(t, 500, 3, EngineConfig{})
	snap := e.Snapshot()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		w := []float64(sample.RandSimplex(rng, 3))
		q := []float64{rng.Float64() * 0.1, rng.Float64() * 0.1, rng.Float64() * 0.1}
		k := 1 + rng.Intn(10)

		got, _, err := e.TopK(w, k)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := snap.TopK(w, k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TopK mismatch: %v vs %v", got, want)
		}

		gr, _, err := e.Rank(w, q)
		if err != nil {
			t.Fatal(err)
		}
		wr, _ := snap.Rank(w, q)
		if gr != wr {
			t.Fatalf("Rank mismatch: %d vs %d", gr, wr)
		}

		W := make([][]float64, 1+rng.Intn(5))
		for j := range W {
			W[j] = sample.RandSimplex(rng, 3)
		}
		gi, _, err := e.ReverseTopK(W, q, k)
		if err != nil {
			t.Fatal(err)
		}
		wi, _ := snap.ReverseTopK(W, q, k)
		if !reflect.DeepEqual(gi, wi) {
			t.Fatalf("ReverseTopK mismatch: %v vs %v", gi, wi)
		}

		ge, _, err := e.Explain(q, W)
		if err != nil {
			t.Fatal(err)
		}
		we, _ := snap.Explain(q, W)
		if !reflect.DeepEqual(ge, we) {
			t.Fatal("Explain mismatch")
		}
	}
}

func TestEngineWhyNot(t *testing.T) {
	e, _ := testEngine(t, 300, 2, EngineConfig{})
	rng := rand.New(rand.NewSource(2))
	q := []float64{0.05, 0.08}
	W := make([][]float64, 6)
	for j := range W {
		W[j] = sample.RandSimplex(rng, 2)
	}
	opts := Options{SampleSize: 64, Seed: 3}
	got, epoch, err := e.WhyNot(q, 3, W, opts)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != e.Epoch() {
		t.Fatalf("epoch %d, current %d", epoch, e.Epoch())
	}
	want, err := e.Snapshot().WhyNot(q, 3, W, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result, want.Result) || !reflect.DeepEqual(got.Missing, want.Missing) {
		t.Fatalf("WhyNot mismatch: %+v vs %+v", got, want)
	}
}

func TestEngineValidation(t *testing.T) {
	e, _ := testEngine(t, 100, 3, EngineConfig{})
	if _, _, err := e.TopK([]float64{0.5, 0.5}, 3); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, _, err := e.TopK([]float64{0.2, 0.3, 0.5}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := e.Rank([]float64{0.2, 0.3, 0.5}, []float64{1}); err == nil {
		t.Fatal("bad point accepted")
	}
	if _, _, err := e.ReverseTopK(nil, []float64{1, 2, 3}, 5); err == nil {
		t.Fatal("empty weight set accepted")
	}
	if _, _, err := e.Insert([]float64{1, 2}); err == nil {
		t.Fatal("bad insert accepted")
	}
	if _, _, err := e.Delete(-1); err == nil {
		t.Fatal("negative id accepted")
	}
}

func TestEngineMutationsPublishNewSnapshots(t *testing.T) {
	e, _ := testEngine(t, 50, 2, EngineConfig{})
	before := e.Snapshot()
	e0 := e.Epoch()

	id, e1, err := e.Insert([]float64{0.001, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if id != 50 {
		t.Fatalf("id = %d, want 50", id)
	}
	if e1 <= e0 {
		t.Fatalf("epoch did not advance: %d → %d", e0, e1)
	}
	if before.Len() != 50 || before.NumIDs() != 50 {
		t.Fatalf("old snapshot changed: Len %d NumIDs %d", before.Len(), before.NumIDs())
	}
	after := e.Snapshot()
	if after.Len() != 51 || after.Point(50) == nil {
		t.Fatalf("new snapshot missing insert: Len %d", after.Len())
	}

	// The new point is cheap enough to rank first under any weight.
	res, _, err := e.TopK([]float64{0.5, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 50 {
		t.Fatalf("top-1 is %d, want the inserted 50", res[0].ID)
	}

	ok, e2, err := e.Delete(50)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if e2 <= e1 {
		t.Fatalf("epoch did not advance on delete: %d → %d", e1, e2)
	}
	if after.Point(50) == nil {
		t.Fatal("pre-delete snapshot lost the point")
	}
	if e.Snapshot().Point(50) != nil {
		t.Fatal("current snapshot still has the deleted point")
	}
	// Deleting again reports not-found without a new epoch.
	ok, e3, err := e.Delete(50)
	if err != nil || ok {
		t.Fatalf("second delete: %v %v", ok, err)
	}
	if e3 != e2 {
		t.Fatalf("failed delete advanced the epoch: %d → %d", e2, e3)
	}
}

func TestEngineCache(t *testing.T) {
	e, _ := testEngine(t, 400, 3, EngineConfig{CacheSize: 64})
	w := []float64{0.2, 0.3, 0.5}
	r1, ep1, err := e.TopK(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, ep2, err := e.TopK(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ep1 != ep2 || !reflect.DeepEqual(r1, r2) {
		t.Fatal("cached result differs")
	}
	s := e.Stats()
	if s.CacheHits == 0 {
		t.Fatalf("no cache hits recorded: %+v", s)
	}
	// A mutation moves the epoch, so the same query recomputes against the
	// new snapshot rather than serving the stale entry.
	if _, _, err := e.Insert([]float64{0.0001, 0.0001, 0.0001}); err != nil {
		t.Fatal(err)
	}
	r3, ep3, err := e.TopK(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ep3 == ep1 {
		t.Fatal("epoch unchanged after insert")
	}
	if r3[0].ID != 400 {
		t.Fatalf("stale cache: top-1 is %d, want 400", r3[0].ID)
	}
}

func TestEngineBatchMergeCorrectness(t *testing.T) {
	// Many concurrent ReverseTopK requests sharing (q, k) exercise the
	// merged-RTA path; each must get exactly its own per-request result.
	e, ix := testEngine(t, 2000, 3, EngineConfig{
		Workers: 2, MaxBatch: 16, BatchLinger: 2 * time.Millisecond, CacheSize: -1,
	})
	q := []float64{0.02, 0.03, 0.02}
	const clients, reqs = 8, 20
	rng := rand.New(rand.NewSource(9))
	workloads := make([][][][]float64, clients)
	for c := range workloads {
		workloads[c] = make([][][]float64, reqs)
		for r := range workloads[c] {
			W := make([][]float64, 1+rng.Intn(4))
			for j := range W {
				W[j] = sample.RandSimplex(rng, 3)
			}
			workloads[c][r] = W
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, W := range workloads[c] {
				got, _, err := e.ReverseTopK(W, q, 10)
				if err != nil {
					errs <- err
					return
				}
				want, err := ix.ReverseTopK(W, q, 10)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(want) {
					t.Errorf("merged result %v, want %v", got, want)
					return
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("merged result %v, want %v", got, want)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestEngineClose(t *testing.T) {
	e, _ := testEngine(t, 50, 2, EngineConfig{})
	e.Close()
	if _, _, err := e.TopK([]float64{0.5, 0.5}, 1); err != ErrEngineClosed {
		t.Fatalf("TopK after close: %v", err)
	}
	if _, _, err := e.Insert([]float64{1, 1}); err != ErrEngineClosed {
		t.Fatalf("Insert after close: %v", err)
	}
	if _, _, err := e.Delete(0); err != ErrEngineClosed {
		t.Fatalf("Delete after close: %v", err)
	}
	e.Close() // idempotent
}

func TestEngineStatsEndpoints(t *testing.T) {
	e, _ := testEngine(t, 100, 2, EngineConfig{})
	if _, _, err := e.TopK([]float64{0.5, 0.5}, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Rank([]float64{0.5, 0.5}, []float64{0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Insert([]float64{0.3, 0.3}); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	for _, ep := range []string{"topk", "rank", "insert"} {
		if s.Endpoints[ep].Count == 0 {
			t.Fatalf("endpoint %q unrecorded: %+v", ep, s.Endpoints)
		}
	}
	if s.Live != 101 || s.NumIDs != 101 {
		t.Fatalf("Live/NumIDs = %d/%d, want 101/101", s.Live, s.NumIDs)
	}
}

func TestIndexCloneIsolation(t *testing.T) {
	ds := dataset.Independent(300, 3, 11)
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}
	ix, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	snap := ix.Clone()
	for i := 0; i < 100; i++ {
		if _, err := ix.Insert([]float64{float64(i) * 1e-4, 0.5, 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < 150; id++ {
		if _, err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := snap.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 300 || snap.NumIDs() != 300 {
		t.Fatalf("snapshot changed: Len %d NumIDs %d", snap.Len(), snap.NumIDs())
	}
	if ix.Len() != 250 {
		t.Fatalf("mutated index Len = %d, want 250", ix.Len())
	}
	for id := 0; id < 150; id++ {
		if snap.Point(id) == nil {
			t.Fatalf("snapshot lost point %d", id)
		}
	}
}
