package wqrtq

// Differential property suite for the materialized reverse-top-k cell
// index: with the cell index enabled (the default), every endpoint must
// answer bit-identically to the -cellindex=off ablation — same reverse
// top-k index sets, same ranks, and the same why-not answers down to the
// last bit of every penalty — across UN/CO/AC workloads, shard counts
// including 1, skyband and kernel on/off, and mutation streams that
// invalidate the per-epoch grid caches. RTA (through the skyband/kernel
// stack of the ablated index) is the oracle; the suite pins the grid
// construction, the per-cell candidate supersets, the capped cell-local
// counting and the whole-query fallback discipline.

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"wqrtq/internal/dataset"
	"wqrtq/internal/sample"
)

// cellPair builds two identical indexes over pts with s shards and the
// given skyband/kernel settings, one with the cell index on (default) and
// one ablated off.
func cellPair(t *testing.T, pts [][]float64, s int, skybandOn, kernelOn bool) (on, off *Index) {
	t.Helper()
	on, err := NewIndexSharded(pts, s)
	if err != nil {
		t.Fatal(err)
	}
	if !on.CellIndexEnabled() {
		t.Fatal("cell index must be enabled by default")
	}
	on.SetSkyband(skybandOn)
	on.SetKernel(kernelOn)
	off, err = NewIndexSharded(pts, s)
	if err != nil {
		t.Fatal(err)
	}
	off.SetSkyband(skybandOn)
	off.SetKernel(kernelOn)
	off.SetCellIndex(false)
	if off.CellIndexEnabled() {
		t.Fatal("SetCellIndex(false) did not stick")
	}
	return on, off
}

func TestCellIndexDifferential(t *testing.T) {
	const casesPerShape = 8
	for si, shape := range shardDiffShapes {
		t.Run(shape.name, func(t *testing.T) {
			for i := 0; i < casesPerShape; i++ {
				seed := int64(130000*si + i)
				rng := rand.New(rand.NewSource(seed))
				n := 1 + rng.Intn(300)
				d := 2 + rng.Intn(3)
				k := 1 + rng.Intn(15)
				ds := shape.gen(n, d, seed+510000)
				pts := make([][]float64, len(ds.Points))
				for j, p := range ds.Points {
					pts[j] = p
				}
				q := make([]float64, d)
				for j := range q {
					q[j] = rng.Float64() * rng.Float64()
				}
				W := make([][]float64, 1+rng.Intn(20))
				for j := range W {
					W[j] = sample.RandSimplex(rng, d)
				}
				for _, skybandOn := range []bool{true, false} {
					for _, kernelOn := range []bool{true, false} {
						for _, s := range shardDiffCounts {
							on, off := cellPair(t, pts, s, skybandOn, kernelOn)
							gotRTK, err := on.ReverseTopK(W, q, k)
							if err != nil {
								t.Fatal(err)
							}
							wantRTK, err := off.ReverseTopK(W, q, k)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(gotRTK, wantRTK) {
								t.Fatalf("case %d s=%d sky=%v kernel=%v: ReverseTopK %v, ablation %v",
									i, s, skybandOn, kernelOn, gotRTK, wantRTK)
							}
							gotRank, _ := on.Rank(W[0], q)
							wantRank, _ := off.Rank(W[0], q)
							if gotRank != wantRank {
								t.Fatalf("case %d s=%d sky=%v kernel=%v: Rank %d, ablation %d",
									i, s, skybandOn, kernelOn, gotRank, wantRank)
							}
						}
					}
				}
			}
		})
	}
}

// TestCellIndexWhyNotPenalties runs the full why-not pipeline with
// identical seeds on cellindex-on and cellindex-off indexes and requires
// bit-identical answers, penalties included, across both MWK strategies,
// the parallel MQWK path, shard counts, and skyband on/off (the fused
// pipeline's RTA stage is where the cell grids serve).
func TestCellIndexWhyNotPenalties(t *testing.T) {
	const cases = 8
	for i := 0; i < cases; i++ {
		seed := int64(7700 + i)
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(200)
		d := 2 + rng.Intn(2)
		k := 1 + rng.Intn(6)
		opts := Options{SampleSize: 16, Seed: seed}
		if i%3 == 1 {
			opts.PerVector = true
		}
		if i%4 == 2 {
			opts.Workers = 3
		}
		ds := dataset.Independent(n, d, seed+610000)
		pts := make([][]float64, len(ds.Points))
		for j, p := range ds.Points {
			pts[j] = p
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = pts[rng.Intn(n)][j]*0.5 + 0.3
		}
		W := make([][]float64, 4+rng.Intn(8))
		for j := range W {
			W[j] = sample.RandSimplex(rng, d)
		}
		for _, skybandOn := range []bool{true, false} {
			for _, s := range shardDiffCounts {
				on, off := cellPair(t, pts, s, skybandOn, true)
				got, err := on.WhyNot(q, k, W, opts)
				if err != nil {
					t.Fatal(err)
				}
				want, err := off.WhyNot(q, k, W, opts)
				if err != nil {
					t.Fatal(err)
				}
				sameWhyNot(t, "cellindex WhyNot", got, want)
			}
		}
	}
}

// TestCellIndexMutationInvalidation drives the same mutation stream into a
// cellindex-on and a cellindex-off index, querying between mutations:
// every answer must stay identical, which fails if a stale grid survives
// an insert or delete (the grids cache per (snapshot, k) and must be
// unreachable after the epoch moves).
func TestCellIndexMutationInvalidation(t *testing.T) {
	const d = 3
	for _, s := range []int{1, 3} {
		ds := dataset.Independent(150, d, 47)
		pts := make([][]float64, len(ds.Points))
		for j, p := range ds.Points {
			pts[j] = p
		}
		on, off := cellPair(t, pts, s, true, true)
		rng := rand.New(rand.NewSource(91031))
		W := make([][]float64, 8)
		for j := range W {
			W[j] = sample.RandSimplex(rng, d)
		}
		for i := 0; i < 80; i++ {
			q := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			// Warm the grid caches so the mutation has something to invalidate.
			if _, err := on.ReverseTopK(W, q, 5); err != nil {
				t.Fatal(err)
			}
			p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			idA, errA := on.Insert(p)
			idB, errB := off.Insert(p)
			if errA != nil || errB != nil || idA != idB {
				t.Fatalf("insert diverged: (%d, %v) vs (%d, %v)", idA, errA, idB, errB)
			}
			if i%3 == 0 {
				victim := rng.Intn(idA + 1)
				okA, _ := on.Delete(victim)
				okB, _ := off.Delete(victim)
				if okA != okB {
					t.Fatalf("delete %d diverged", victim)
				}
			}
			gotRTK, err := on.ReverseTopK(W, q, 5)
			if err != nil {
				t.Fatal(err)
			}
			wantRTK, _ := off.ReverseTopK(W, q, 5)
			if !reflect.DeepEqual(gotRTK, wantRTK) {
				t.Fatalf("s=%d step %d: post-mutation ReverseTopK diverged", s, i)
			}
			wn, err := on.WhyNot(q, 5, W, Options{SampleSize: 8, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			wantWn, err := off.WhyNot(q, 5, W, Options{SampleSize: 8, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			sameWhyNot(t, "post-mutation WhyNot", wn, wantWn)
		}
		if err := on.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCellIndexEngineStats exercises the engine integration: the cell
// counters must surface in EngineStats and survive snapshot swaps, the
// DisableCellIndex ablation must answer identically and record no cell
// activity, and a mutation must publish a snapshot whose grids rebuild on
// first use while the cumulative counters carry over.
func TestCellIndexEngineStats(t *testing.T) {
	eOn, _ := testEngine(t, 500, 3, EngineConfig{CacheSize: -1})
	eOff, _ := testEngine(t, 500, 3, EngineConfig{CacheSize: -1, DisableCellIndex: true})
	if !eOn.Snapshot().CellIndexEnabled() || eOff.Snapshot().CellIndexEnabled() {
		t.Fatal("engine cell-index configuration not applied")
	}
	rng := rand.New(rand.NewSource(521))
	q := []float64{rng.Float64() * 0.3, rng.Float64() * 0.3, rng.Float64() * 0.3}
	W := make([][]float64, 12)
	for j := range W {
		W[j] = sample.RandSimplex(rng, 3)
	}
	respOn, err := eOn.ReverseTopKCtx(t.Context(), ReverseTopKRequest{Q: q, K: 4, W: W})
	if err != nil {
		t.Fatal(err)
	}
	respOff, err := eOff.ReverseTopKCtx(t.Context(), ReverseTopKRequest{Q: q, K: 4, W: W})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(respOn.Result, respOff.Result) {
		t.Fatalf("engine results diverge: %v vs %v", respOn.Result, respOff.Result)
	}
	st := eOn.Stats()
	if !st.CellIndex.Enabled || st.CellIndex.Grids < 1 || st.CellIndex.Cells < 1 ||
		st.CellIndex.Candidates < 1 || st.CellIndex.Builds < 1 || st.CellIndex.Lookups < int64(len(W)) {
		t.Fatalf("cell-index stats not populated: %+v", st.CellIndex)
	}
	stOff := eOff.Stats()
	if stOff.CellIndex.Enabled || stOff.CellIndex.Builds != 0 || stOff.CellIndex.Lookups != 0 {
		t.Fatalf("ablated engine recorded cell-index work: %+v", stOff.CellIndex)
	}

	// A mutation publishes a fresh snapshot: its caches start empty, the
	// cumulative counters carry over, and the next query rebuilds.
	builds := st.CellIndex.Builds
	if _, _, err := eOn.Insert([]float64{0.9, 0.9, 0.9}); err != nil {
		t.Fatal(err)
	}
	mid := eOn.Stats().CellIndex
	if mid.Grids != 0 {
		t.Fatalf("fresh snapshot inherited grids: %+v", mid)
	}
	if mid.Builds != builds {
		t.Fatalf("cumulative builds changed on snapshot swap: %d vs %d", mid.Builds, builds)
	}
	if _, err := eOn.ReverseTopKCtx(t.Context(), ReverseTopKRequest{Q: q, K: 4, W: W}); err != nil {
		t.Fatal(err)
	}
	if got := eOn.Stats().CellIndex; got.Builds <= builds || got.Grids < 1 {
		t.Fatalf("new snapshot did not rebuild grids: %+v", got)
	}
}

// TestCellIndexConcurrentLazyBuild is the -race hammer for the shared
// lazy-build lifecycle: many goroutines query overlapping k values on
// every snapshot of a clone family (plus its sharded siblings) while
// others read the stats, so concurrent sync.Once builds, atomic grid
// publication and the stats peek all run under the race detector.
func TestCellIndexConcurrentLazyBuild(t *testing.T) {
	ds := dataset.Independent(400, 3, 51)
	pts := make([][]float64, len(ds.Points))
	for j, p := range ds.Points {
		pts[j] = p
	}
	rng := rand.New(rand.NewSource(611))
	W := make([][]float64, 6)
	for j := range W {
		W[j] = sample.RandSimplex(rng, 3)
	}
	q := []float64{0.2, 0.1, 0.3}
	for _, s := range []int{1, 3} {
		ix, err := NewIndexSharded(pts, s)
		if err != nil {
			t.Fatal(err)
		}
		// Clone family: each snapshot diverges by one mutation (all
		// mutations happen before the concurrent phase, per the
		// serialization contract).
		snaps := []*Index{ix}
		for i := 0; i < 3; i++ {
			c := snaps[len(snaps)-1].Clone()
			if _, err := c.Insert([]float64{rng.Float64(), rng.Float64(), rng.Float64()}); err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, c)
		}
		var wg sync.WaitGroup
		for _, snap := range snaps {
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(snap *Index) {
					defer wg.Done()
					for k := 1; k <= 4; k++ {
						if _, err := snap.ReverseTopK(W, q, k); err != nil {
							t.Error(err)
						}
					}
					_ = snap.CellIndexStats()
				}(snap)
			}
		}
		wg.Wait()
		want, err := snaps[0].ReverseTopK(W, q, 3)
		if err != nil {
			t.Fatal(err)
		}
		off, _ := NewIndexSharded(pts, s)
		off.SetCellIndex(false)
		wantOff, err := off.ReverseTopK(W, q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, wantOff) {
			t.Fatalf("s=%d: concurrent-build result diverged from ablation: %v vs %v", s, want, wantOff)
		}
	}
}
