// Package wqrtq answers why-not questions on reverse top-k queries.
//
// It is a from-scratch Go implementation of the WQRTQ framework of
// Gao, Liu, Chen, Zheng and Zhou, "Answering Why-not Questions on Reverse
// Top-k Queries", PVLDB 8(7), 2015, together with every substrate the paper
// relies on: an R*-tree/STR spatial index with page-size-derived fanout,
// branch-and-bound top-k search, monochromatic and bichromatic reverse
// top-k queries, an interior-point convex quadratic-programming solver, and
// hyperplane sampling over the weighting simplex.
//
// # Model
//
// A dataset P holds d-dimensional non-negative points; smaller attribute
// values are preferable. A customer preference is a weighting vector w
// (non-negative, summing to 1) scoring a point p as f(w, p) = Σ w[i]·p[i];
// smaller scores rank higher. A product q belongs to the top-k of w when at
// most k-1 points of P score strictly better (ties are won by q). The
// bichromatic reverse top-k of q over a preference set W is every w ∈ W
// whose top-k contains q; the monochromatic variant describes all of
// weighting space.
//
// A why-not question names preferences Wm missing from that result. The
// framework explains the omission (Index.Explain) and refines the query
// with minimum penalty so the missing preferences join the result, three
// ways:
//
//   - Index.ModifyQuery (MQP): change the product q — quadratic programming
//     over the safe region.
//   - Index.ModifyPreferences (MWK): change Wm and k — sampling on the
//     rank-boundary hyperplanes.
//   - Index.ModifyAll (MQWK): change q, Wm and k together — query-point
//     sampling plus the other two techniques with R-tree traversal reuse.
//
// Index.WhyNot runs the whole pipeline in one call.
//
// All query methods are safe for concurrent use once the Index is built;
// Insert and Delete require external serialization against queries. To mix
// mutations with live query traffic, wrap the index in an Engine: it
// publishes copy-on-write snapshots (Index.Clone) so mutations never
// disturb in-flight queries, coalesces concurrent queries into batches
// (merging reverse top-k requests that share a query point into one RTA
// traversal), and caches results under (snapshot epoch, query) keys. The
// wqrtq command's serve subcommand exposes the engine over JSON/HTTP.
package wqrtq

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"wqrtq/internal/cellindex"
	"wqrtq/internal/kernel"
	"wqrtq/internal/rtopk"
	"wqrtq/internal/rtree"
	"wqrtq/internal/shard"
	"wqrtq/internal/skyband"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// ErrInvalidArgument tags every request-boundary validation failure —
// non-finite or negative weights and points, dimension mismatches,
// non-positive k, empty weighting-vector sets, out-of-range ids, and bad
// refinement options. Callers (the HTTP layer in particular) distinguish
// bad input (errors.Is(err, ErrInvalidArgument) → 400) from internal
// failures (→ 500) and cancellations (context errors → 503/499).
var ErrInvalidArgument = errors.New("wqrtq: invalid argument")

// invalidArg tags err as a request-validation failure.
func invalidArg(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrInvalidArgument, err)
}

// invalidArgf builds a tagged request-validation failure.
func invalidArgf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidArgument, fmt.Sprintf(format, args...))
}

// errPositiveK rejects non-positive k across every query path.
var errPositiveK = fmt.Errorf("%w: k must be positive", ErrInvalidArgument)

// Index is an immutable dataset indexed for reverse top-k and why-not
// processing.
type Index struct {
	tree   *rtree.Tree
	points []vec.Point
	shared bool       // points backing array is shared with a Clone
	shards *shard.Set // optional spatial partition (sharding.go); nil = monolithic
	// sky is the snapshot's k-skyband sub-index cache (skyband.go): bands
	// are computed lazily per (snapshot, k) and shared by all readers;
	// clones and mutations swap in a fresh cache, so stale bands are
	// unreachable. skyOff is the -skyband=off ablation switch.
	sky    *skyband.Cache
	skyOff bool
	// kct carries the blocked scoring kernel's cumulative counters, shared
	// across the clone family like the skyband counters; kernelOff is the
	// -kernel=off ablation switch (kernel.go).
	kct       *kernel.Counters
	kernelOff bool
	// cells is the snapshot's materialized reverse-top-k cell-index cache
	// (cellindex.go): grids build lazily per (snapshot, k) over the skyband
	// bands; clones and mutations swap in a fresh cache. cct carries the
	// clone family's cumulative counters; cellOff is the -cellindex=off
	// ablation switch.
	cells   *cellindex.Cache
	cct     *cellindex.Counters
	cellOff bool
}

// NewIndex validates and bulk-loads a dataset. Every point must be
// non-negative, finite and of equal dimensionality. The input slices are
// retained; callers must not mutate them afterwards.
func NewIndex(points [][]float64) (*Index, error) {
	if len(points) == 0 {
		return nil, invalidArgf("empty dataset")
	}
	d := len(points[0])
	ps := make([]vec.Point, len(points))
	for i, p := range points {
		if len(p) != d {
			return nil, invalidArgf("point %d has dimension %d, want %d", i, len(p), d)
		}
		if err := vec.ValidatePoint(p); err != nil {
			return nil, invalidArgf("point %d: %v", i, err)
		}
		ps[i] = p
	}
	tree := rtree.Bulk(ps, nil)
	ix := &Index{tree: tree, points: ps, sky: skyband.NewCache(tree, nil), kct: kernel.NewCounters(), cct: cellindex.NewCounters()}
	ix.cells = cellindex.NewCache(ix.sky, d, ix.cct)
	return ix, nil
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.tree.Len() }

// Dim returns the dimensionality of the indexed points.
func (ix *Index) Dim() int { return ix.tree.Dim() }

// Ranked is one scored point of a query answer.
type Ranked struct {
	ID    int // index into the dataset passed to NewIndex
	Point []float64
	Score float64
}

func toRanked(rs []topk.Result) []Ranked {
	out := make([]Ranked, len(rs))
	for i, r := range rs {
		out[i] = Ranked{ID: int(r.ID), Point: r.Point, Score: r.Score}
	}
	return out
}

// TopK returns the k best points under the weighting vector w, in rank
// order. It is a thin wrapper over TopKCtx with context.Background().
func (ix *Index) TopK(w []float64, k int) ([]Ranked, error) {
	resp, err := ix.TopKCtx(context.Background(), TopKRequest{W: w, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// Rank returns the 1-based rank a query point q would take under w: one
// plus the number of indexed points scoring strictly better. It is a thin
// wrapper over RankCtx with context.Background().
func (ix *Index) Rank(w, q []float64) (int, error) {
	resp, err := ix.RankCtx(context.Background(), RankRequest{W: w, Q: q})
	if err != nil {
		return 0, err
	}
	return resp.Rank, nil
}

// ReverseTopK answers the bichromatic reverse top-k query: the indices into
// W of the weighting vectors whose top-k contains q. It is a thin wrapper
// over ReverseTopKCtx with context.Background().
func (ix *Index) ReverseTopK(W [][]float64, q []float64, k int) ([]int, error) {
	resp, err := ix.ReverseTopKCtx(context.Background(), ReverseTopKRequest{Q: q, K: k, W: W})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// Interval is a closed range [Lo, Hi] of the first weight component λ (the
// second being 1-λ) in a 2-D monochromatic reverse top-k answer.
type Interval struct {
	Lo, Hi float64
}

// ReverseTopKMono2D answers the monochromatic reverse top-k query for 2-D
// datasets exactly: the maximal λ-intervals whose top-k contains q.
func (ix *Index) ReverseTopKMono2D(q []float64, k int) ([]Interval, error) {
	if ix.Dim() != 2 {
		return nil, invalidArgf("monochromatic reverse top-k is defined here for 2-D data")
	}
	if err := ix.checkPoint(q); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, errPositiveK
	}
	ivs := rtopk.Monochromatic2D(ix.points, q, k)
	out := make([]Interval, len(ivs))
	for i, iv := range ivs {
		out[i] = Interval{Lo: iv.Lo, Hi: iv.Hi}
	}
	return out, nil
}

// Explain answers the first aspect of a why-not question: for each
// weighting vector, the points scoring strictly better than q, in rank
// order. When q misses the top-k of Wm[i], Explanations[i] holds the at
// least k points responsible. It is a thin wrapper over ExplainCtx with
// context.Background().
func (ix *Index) Explain(q []float64, Wm [][]float64) ([][]Ranked, error) {
	resp, err := ix.ExplainCtx(context.Background(), ExplainRequest{Q: q, Wm: Wm})
	if err != nil {
		return nil, err
	}
	return resp.Explanations, nil
}

// checkPoint rejects a query point that is dimensionally wrong, negative,
// or non-finite (NaN/±Inf), tagging the error with ErrInvalidArgument.
func (ix *Index) checkPoint(q []float64) error {
	if len(q) != ix.Dim() {
		return invalidArgf("point dimension %d, index dimension %d", len(q), ix.Dim())
	}
	return invalidArg(vec.ValidatePoint(q))
}

// checkWeight rejects a weighting vector that is dimensionally wrong, has
// negative or non-finite components, or does not sum to 1, tagging the
// error with ErrInvalidArgument.
func (ix *Index) checkWeight(w []float64) error {
	if len(w) != ix.Dim() {
		return invalidArgf("weight dimension %d, index dimension %d", len(w), ix.Dim())
	}
	return invalidArg(vec.ValidateWeight(w))
}

func (ix *Index) checkWeights(W [][]float64) ([]vec.Weight, error) {
	if len(W) == 0 {
		return nil, invalidArgf("empty weighting vector set")
	}
	ws := make([]vec.Weight, len(W))
	for i, w := range W {
		if err := ix.checkWeight(w); err != nil {
			return nil, fmt.Errorf("wqrtq: weighting vector %d: %w", i, err)
		}
		ws[i] = w
	}
	return ws, nil
}

// rngFor builds the deterministic random source used by the sampling
// algorithms.
func rngFor(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 1
	}
	return rand.New(rand.NewSource(seed))
}

// Neighbor is one result of a nearest-neighbor query.
type Neighbor struct {
	ID       int
	Point    []float64
	Distance float64
}

// Nearest returns the n indexed points closest to p in Euclidean distance,
// ascending — e.g. the competitors nearest a product in attribute space.
func (ix *Index) Nearest(p []float64, n int) ([]Neighbor, error) {
	if err := ix.checkPoint(p); err != nil {
		return nil, err
	}
	ns := ix.tree.Nearest(p, n)
	out := make([]Neighbor, len(ns))
	for i, nb := range ns {
		out[i] = Neighbor{ID: int(nb.ID), Point: nb.Point, Distance: nb.Distance}
	}
	return out, nil
}

// ReverseTopKMonoSample estimates the monochromatic reverse top-k result
// for any dimensionality by Monte Carlo sampling of the weighting simplex:
// it returns sample weighting vectors whose top-k contains q, plus the
// fraction of the simplex they represent. Exact monochromatic algorithms
// exist only in 2-D (use ReverseTopKMono2D there).
func (ix *Index) ReverseTopKMonoSample(q []float64, k, samples int, seed int64) ([][]float64, float64, error) {
	if err := ix.checkPoint(q); err != nil {
		return nil, 0, err
	}
	if k <= 0 {
		return nil, 0, errPositiveK
	}
	ws, frac := rtopk.MonochromaticSample(ix.tree, q, k, samples, rngFor(seed))
	out := make([][]float64, len(ws))
	for i, w := range ws {
		out[i] = w
	}
	return out, frac, nil
}
