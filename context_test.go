package wqrtq

// Cancellation tests for the context-first API: already-canceled contexts
// return promptly at every layer, a deadline set mid-refinement aborts the
// MQWK sampling loops within one check interval, and a canceled waiter in a
// merged reverse top-k batch never aborts its co-waiters.

import (
	"context"
	"errors"
	"testing"
	"time"

	"wqrtq/internal/dataset"
	"wqrtq/internal/sample"
)

// testWorkload builds a 10k-point index plus a why-not workload whose query
// point actually misses the top-k (so WhyNot runs all three refinements).
func testWorkload(t testing.TB, n int) (*Index, WhyNotRequest) {
	t.Helper()
	ds := dataset.Independent(n, 3, 7)
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}
	ix, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := dataset.MakeWhyNot(ds, 10, 101, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	wm := make([][]float64, len(wl.Wm))
	for i, w := range wl.Wm {
		wm[i] = w
	}
	return ix, WhyNotRequest{Q: wl.Q, K: wl.K, W: wm, Opts: Options{SampleSize: 128}}
}

func TestWhyNotCtxAlreadyCanceled(t *testing.T) {
	ix, req := testWorkload(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	_, err := ix.WhyNotCtx(ctx, req)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("WhyNotCtx error = %v, want context.Canceled", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("already-canceled WhyNotCtx took %v, want prompt return", elapsed)
	}

	// Every other Index path must also notice the dead context up front.
	if _, err := ix.TopKCtx(ctx, TopKRequest{W: req.W[0], K: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopKCtx error = %v", err)
	}
	if _, err := ix.RankCtx(ctx, RankRequest{W: req.W[0], Q: req.Q}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RankCtx error = %v", err)
	}
	if _, err := ix.ReverseTopKCtx(ctx, ReverseTopKRequest{Q: req.Q, K: req.K, W: req.W}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReverseTopKCtx error = %v", err)
	}
	if _, err := ix.ExplainCtx(ctx, ExplainRequest{Q: req.Q, Wm: req.W}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExplainCtx error = %v", err)
	}
	if _, err := ix.ModifyQueryCtx(ctx, ModifyQueryRequest{Q: req.Q, K: req.K, Wm: req.W}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ModifyQueryCtx error = %v", err)
	}
	if _, err := ix.ModifyPreferencesCtx(ctx, ModifyPreferencesRequest{Q: req.Q, K: req.K, Wm: req.W}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ModifyPreferencesCtx error = %v", err)
	}
	if _, err := ix.ModifyAllCtx(ctx, ModifyAllRequest{Q: req.Q, K: req.K, Wm: req.W}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ModifyAllCtx error = %v", err)
	}
}

func TestEngineWhyNotCtxAlreadyCanceledCountsInStats(t *testing.T) {
	ix, req := testWorkload(t, 2000)
	e, err := NewEngine(ix, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.WhyNotCtx(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("engine WhyNotCtx error = %v, want context.Canceled", err)
	}
	s := e.Stats()
	if s.Canceled != 1 {
		t.Fatalf("stats canceled = %d, want 1", s.Canceled)
	}
	if s.Endpoints["whynot"].Canceled != 1 {
		t.Fatalf("whynot canceled = %d, want 1", s.Endpoints["whynot"].Canceled)
	}
}

// TestWhyNotDeadlineMidRefinement runs the full refinement once to measure
// its cost, then re-runs it with a deadline a small fraction of that and
// asserts the abort lands well under the full runtime — i.e. within a few
// check intervals of the MQWK sampling loops, not at their natural end.
//
// The workload is sized so the full pipeline takes hundreds of
// milliseconds even with the skyband sub-index on: cancellation detection
// rides on goroutine scheduling (a deadline context's Err flips only after
// the timer goroutine runs), which on a saturated single-CPU machine has a
// floor of tens of milliseconds — the elapsed < full/2 assertion needs the
// full runtime to dominate that floor, not the polling intervals.
func TestWhyNotDeadlineMidRefinement(t *testing.T) {
	ix, req := testWorkload(t, 40000)

	start := time.Now()
	if _, err := ix.WhyNotCtx(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	deadline := full / 20
	if deadline < 2*time.Millisecond {
		deadline = 2 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start = time.Now()
	_, err := ix.WhyNotCtx(ctx, req)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline run error = %v, want context.DeadlineExceeded (full run took %v)", err, full)
	}
	if elapsed > full/2 {
		t.Fatalf("deadline run took %v, want well under full runtime %v", elapsed, full)
	}
	t.Logf("full pipeline %v; canceled after %v with a %v deadline", full, elapsed, deadline)

	// Explicit cancel mid-flight (not a deadline) returns context.Canceled,
	// likewise well under the full runtime.
	cctx, ccancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(deadline)
		ccancel()
	}()
	start = time.Now()
	_, err = ix.WhyNotCtx(cctx, req)
	elapsed = time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel run error = %v, want context.Canceled", err)
	}
	if elapsed > full/2 {
		t.Fatalf("cancel run took %v, want well under full runtime %v", elapsed, full)
	}
}

// TestMergedRTABatchSurvivesCoWaiterCancel verifies the all-waiters-cancel
// rule: two reverse top-k requests sharing (q, k) coalesce into one merged
// RTA evaluation; canceling one of them must unblock it with its own
// context error while the survivor still receives the correct answer.
func TestMergedRTABatchSurvivesCoWaiterCancel(t *testing.T) {
	ix, req := testWorkload(t, 2000)
	// One worker with a generous linger guarantees both requests land in the
	// same batch; the cache is disabled so the survivor's answer is computed.
	e, err := NewEngine(ix.Clone(), EngineConfig{
		Workers:     1,
		MaxBatch:    8,
		BatchLinger: 100 * time.Millisecond,
		CacheSize:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	wA := req.W
	wB := [][]float64{req.W[1], req.W[0], sample.RandSimplex(rngFor(3), 3)}
	want, err := ix.ReverseTopK(wB, req.Q, req.K)
	if err != nil {
		t.Fatal(err)
	}

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	errA := make(chan error, 1)
	go func() {
		_, err := e.ReverseTopKCtx(ctxA, ReverseTopKRequest{Q: req.Q, K: req.K, W: wA})
		errA <- err
	}()
	respB := make(chan ReverseTopKResponse, 1)
	errB := make(chan error, 1)
	go func() {
		resp, err := e.ReverseTopKCtx(context.Background(), ReverseTopKRequest{Q: req.Q, K: req.K, W: wB})
		respB <- resp
		errB <- err
	}()

	// Let both requests enqueue into the lingering batch, then cancel A.
	time.Sleep(20 * time.Millisecond)
	cancelA()

	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter error = %v, want context.Canceled", err)
	}
	if err := <-errB; err != nil {
		t.Fatalf("surviving waiter error = %v, want success", err)
	}
	resp := <-respB
	if len(resp.Result) != len(want) {
		t.Fatalf("survivor result %v, want %v", resp.Result, want)
	}
	for i := range want {
		if resp.Result[i] != want[i] {
			t.Fatalf("survivor result %v, want %v", resp.Result, want)
		}
	}
}

// TestCompCtxCancelsOnlyWhenAllWaitersCancel exercises the shared-
// computation context directly: it must stay live while any waiter is live,
// cancel soon after the last waiter cancels, and collapse to the never-
// canceled Background when any waiter cannot cancel.
func TestCompCtxCancelsOnlyWhenAllWaitersCancel(t *testing.T) {
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cctx, stop := compCtx([]*engineReq{{ctx: ctx1}, {ctx: ctx2}})
	defer stop()

	cancel1()
	select {
	case <-cctx.Done():
		t.Fatal("computation context canceled while a waiter was still live")
	case <-time.After(20 * time.Millisecond):
	}
	cancel2()
	select {
	case <-cctx.Done():
	case <-time.After(time.Second):
		t.Fatal("computation context not canceled after all waiters canceled")
	}

	// One uncancelable waiter pins the computation alive.
	cctx2, stop2 := compCtx([]*engineReq{{ctx: ctx1}, {ctx: context.Background()}})
	defer stop2()
	if cctx2.Done() != nil {
		t.Fatal("computation with an uncancelable waiter must never cancel")
	}
}
