package wqrtq

// BENCH_overload.json recorder: the committed shed/goodput curves behind
// the admission-control ablation. An open-loop generator (internal/loadgen)
// offers reverse top-k load at {0.5, 1, 2, 4}x the engine's measured
// uncontended capacity, against the same engine with admission on and off,
// and the snapshot records goodput, shed fraction and served-latency
// quantiles per cell. One extra row replays the mix against an engine
// built from the committed NBA-style table fixture through
// dataset.ReadTable, so the matrix includes a non-synthetic dataset.
//
// The recorder also enforces the release acceptance gate: with admission
// on, the p99 of *accepted* requests at 4x capacity stays within 3x the
// uncontended p99 (the AIMD window keeps queues short and sheds the rest),
// while with admission off the same offered load sends served p99 past
// that bound — the unbounded-queue collapse the front door exists to
// prevent.
//
//	RECORD_BENCH=1 go test -run TestRecordBenchOverload .

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"wqrtq/internal/dataset"
	"wqrtq/internal/loadgen"
	"wqrtq/internal/sample"
)

// overloadRow is one cell of the committed load matrix.
type overloadRow struct {
	Dataset      string  `json:"dataset"`
	Admission    string  `json:"admission"`
	RateMultiple float64 `json:"rate_multiple"`
	RatePerSec   float64 `json:"rate_per_sec"`
	MutationFrac float64 `json:"mutation_frac"`
	*loadgen.Report
}

// overloadSnapshot is the BENCH_overload.json document.
type overloadSnapshot struct {
	Benchmark           string        `json:"benchmark"`
	Date                string        `json:"date"`
	Go                  string        `json:"go"`
	GOOS                string        `json:"goos"`
	GOARCH              string        `json:"goarch"`
	NumCPU              int           `json:"num_cpu"`
	GOMAXPROCS          int           `json:"gomaxprocs"`
	Dataset             any           `json:"dataset"`
	UncontendedP50Us    int64         `json:"uncontended_p50_micros"`
	UncontendedP99Us    int64         `json:"uncontended_p99_micros"`
	CapacityPerSec      float64       `json:"capacity_per_sec"`
	AcceptedP99BoundMul float64       `json:"accepted_p99_bound_multiple"`
	Note                string        `json:"note"`
	Results             []overloadRow `json:"results"`
}

// overloadWorkload is a pre-generated request stream over one engine:
// distinct queries (cycled atomically so pool merging cannot collapse the
// load) and insert points matched to the dataset's dimensionality.
type overloadWorkload struct {
	e       *Engine
	queries [][]float64
	W       [][]float64
	inserts [][]float64
	qn, mn  atomic.Uint64
}

func newOverloadWorkload(tb testing.TB, pts [][]float64, admission bool) *overloadWorkload {
	tb.Helper()
	ix, err := NewIndex(pts)
	if err != nil {
		tb.Fatal(err)
	}
	e, err := NewEngine(ix, EngineConfig{
		Admission:            admission,
		AdmissionMaxInflight: 8, // deep enough to absorb open-loop arrival bursts, shallow enough to bound accepted latency
		CacheSize:            -1,
		// The fast-path sub-indexes answer in microseconds, which puts
		// "capacity" far past what an open-loop generator sharing the CPU
		// can offer honestly. The ablated scalar path costs ~1ms per
		// request, so saturation happens at a few hundred req/s and the
		// harness overhead stays negligible. The admission dynamics under
		// study are identical either way.
		DisableCellIndex: true,
		DisableSkyband:   true,
		DisableKernel:    true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { e.Close() })
	d := len(pts[0])
	rng := rand.New(rand.NewSource(7))
	w := &overloadWorkload{e: e}
	w.W = make([][]float64, 512)
	for i := range w.W {
		w.W[i] = sample.RandSimplex(rng, d)
	}
	for i := 0; i < 1024; i++ {
		base := pts[rng.Intn(len(pts))]
		q := make([]float64, d)
		ins := make([]float64, d)
		for j := range q {
			q[j] = base[j] * (0.9 + 0.2*rng.Float64())
			ins[j] = base[j] * (0.9 + 0.2*rng.Float64())
		}
		w.queries = append(w.queries, q)
		w.inserts = append(w.inserts, ins)
	}
	return w
}

func (w *overloadWorkload) target(kind loadgen.Kind) error {
	if kind == loadgen.Mutation {
		p := w.inserts[w.mn.Add(1)%uint64(len(w.inserts))]
		_, _, err := w.e.Insert(p)
		return err
	}
	q := w.queries[w.qn.Add(1)%uint64(len(w.queries))]
	_, err := w.e.ReverseTopKCtx(context.Background(), ReverseTopKRequest{Q: q, K: benchK, W: w.W})
	return err
}

func overloadClassify(err error) loadgen.Outcome {
	switch {
	case err == nil:
		return loadgen.OK
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrDegraded):
		return loadgen.Shed
	default:
		return loadgen.Failed
	}
}

// calibrate measures the closed-loop (one at a time, no contention)
// service-time distribution and returns p50, p99 and the implied capacity
// of one busy CPU. Capacity uses the mean, not the median: anticorrelated
// query difficulty is heavy-tailed, and offered load scaled off the median
// would already be deep overload at "1x".
func (w *overloadWorkload) calibrate(tb testing.TB, n int) (p50, p99 time.Duration, capacity float64) {
	tb.Helper()
	lats := make([]time.Duration, 0, n)
	var total time.Duration
	for i := 0; i < n; i++ {
		s := time.Now()
		if err := w.target(loadgen.Query); err != nil {
			tb.Fatal(err)
		}
		d := time.Since(s)
		lats = append(lats, d)
		total += d
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50 = lats[len(lats)/2]
	p99 = lats[(len(lats)*99)/100]
	return p50, p99, float64(time.Second) / (float64(total) / float64(n))
}

// TestRecordBenchOverload regenerates BENCH_overload.json. Skipped unless
// RECORD_BENCH is set; the recording mechanism stays compiled either way.
func TestRecordBenchOverload(t *testing.T) {
	if os.Getenv("RECORD_BENCH") == "" {
		t.Skip("set RECORD_BENCH=1 to re-record BENCH_overload.json")
	}
	const (
		n        = 20000
		boundMul = 3.0
	)
	// Anticorrelated data defeats RTA pruning, which (with the 512-vector
	// weight set) is what makes one request cost ~1ms of real work.
	ds := dataset.Anticorrelated(n, benchDim, 1)
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}

	// Calibrate on an admission-off engine: the uncontended numbers must
	// not include door overhead.
	calib := newOverloadWorkload(t, pts, false)
	p50, p99, capacity := calib.calibrate(t, 200)
	t.Logf("uncontended p50=%v p99=%v capacity=%.0f/s", p50, p99, capacity)

	snap := overloadSnapshot{
		Benchmark:  "TestRecordBenchOverload",
		Date:       time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Dataset: map[string]any{
			"shape": "anticorrelated", "n": n, "d": benchDim, "k": benchK,
			"reverse_topk_vectors": 512,
		},
		UncontendedP50Us:    p50.Microseconds(),
		UncontendedP99Us:    p99.Microseconds(),
		CapacityPerSec:      capacity,
		AcceptedP99BoundMul: boundMul,
		Note: "Recorded by `RECORD_BENCH=1 go test -run TestRecordBenchOverload$ .`. Open-loop offered " +
			"load (internal/loadgen) at multiples of the measured uncontended capacity, admission on vs " +
			"off. Acceptance gate: admission=on keeps accepted p99 within accepted_p99_bound_multiple x " +
			"the uncontended p99 at 4x offered load by shedding the excess (shed_fraction), while " +
			"admission=off serves everything and lets served p99 grow without bound. The nba_style row " +
			"replays the mix against the committed testdata/nba_style.csv fixture loaded through " +
			"dataset.ReadTable (headers and label columns dropped, numeric stat columns kept).",
	}

	var onP99At4x, offP99At4x int64
	for _, admission := range []string{"on", "off"} {
		w := newOverloadWorkload(t, pts, admission == "on")
		for _, mult := range []float64{0.5, 1, 2, 4} {
			rep, err := loadgen.Run(loadgen.Config{
				Rate:        capacity * mult,
				Duration:    1500 * time.Millisecond,
				Seed:        1,
				Target:      w.target,
				Classify:    overloadClassify,
				MaxInFlight: 512,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed > 0 {
				t.Fatalf("admission=%s x%.1f: %d failed requests", admission, mult, rep.Failed)
			}
			t.Logf("admission=%s x%.1f: offered=%d served=%d shed=%.2f goodput=%.0f/s p99=%dus",
				admission, mult, rep.Offered, rep.Served, rep.ShedFraction, rep.GoodputPerSec, rep.QueryLatency.P99Micros)
			if mult == 4 {
				if admission == "on" {
					onP99At4x = rep.QueryLatency.P99Micros
				} else {
					offP99At4x = rep.QueryLatency.P99Micros
				}
			}
			snap.Results = append(snap.Results, overloadRow{
				Dataset: "anticorrelated", Admission: admission,
				RateMultiple: mult, RatePerSec: capacity * mult, Report: rep,
			})
		}
	}

	// The acceptance gate the snapshot documents.
	bound := int64(boundMul * float64(p99.Microseconds()))
	if onP99At4x > bound {
		t.Errorf("admission=on at 4x: accepted p99 %dus exceeds %.0fx uncontended p99 (%dus)", onP99At4x, boundMul, bound)
	}
	if offP99At4x <= bound {
		t.Errorf("admission=off at 4x: served p99 %dus did not blow past the bound (%dus) — overload not reproduced", offP99At4x, bound)
	}

	// Non-synthetic row: the NBA-style table fixture through ReadTable.
	f, err := os.Open("testdata/nba_style.csv")
	if err != nil {
		t.Fatal(err)
	}
	nba, info, err := dataset.ReadTable(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("nba_style: %d rows x %d numeric columns %v (%d dropped)", info.RowsRead, len(info.Columns), info.Columns, info.RowsDropped)
	npts := make([][]float64, len(nba.Points))
	for i, p := range nba.Points {
		npts[i] = p
	}
	nw := newOverloadWorkload(t, npts, true)
	_, _, ncap := nw.calibrate(t, 200)
	// 28 points make queries near-instant, so this row runs at a fixed
	// healthy rate rather than a capacity multiple: it exists to prove the
	// ReadTable wiring end to end, with a 10% mutation mix.
	const nbaRate = 1000.0
	rep, err := loadgen.Run(loadgen.Config{
		Rate:         nbaRate,
		Duration:     1500 * time.Millisecond,
		MutationFrac: 0.1,
		Seed:         1,
		Target:       nw.target,
		Classify:     overloadClassify,
		MaxInFlight:  512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed > 0 {
		t.Fatalf("nba_style row: %d failed requests", rep.Failed)
	}
	snap.Results = append(snap.Results, overloadRow{
		Dataset: "nba_style(ReadTable)", Admission: "on",
		RateMultiple: nbaRate / ncap, RatePerSec: nbaRate, MutationFrac: 0.1, Report: rep,
	})

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_overload.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_overload.json (%d results)", len(snap.Results))
}
