package main

import (
	"os"
	"path/filepath"
	"testing"

	"wqrtq"
)

// buildStore creates a durable data directory on the real filesystem with a
// few mutations and at least one checkpoint, then closes the engine.
func buildStore(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "state")
	pts := [][]float64{{1, 2}, {2, 1}, {3, 3}, {0.5, 4}, {4, 0.5}}
	ix, err := wqrtq.NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := wqrtq.NewEngine(ix, wqrtq.EngineConfig{DataDir: dir, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := e.Insert([]float64{float64(i) + 0.1, float64(8 - i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCmdVerifyHealthyStore(t *testing.T) {
	dir := buildStore(t)
	if err := cmdVerify([]string{"-q", dir}); err != nil {
		t.Fatalf("verify of healthy store: %v", err)
	}
}

func TestCmdVerifyCorruptStore(t *testing.T) {
	dir := buildStore(t)
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt every snapshot so no fallback generation remains.
	for _, de := range names {
		if filepath.Ext(de.Name()) != ".snap" {
			continue
		}
		p := filepath.Join(dir, de.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := cmdVerify([]string{"-q", dir}); err == nil {
		t.Fatal("verify blessed a corrupt store")
	}
}

// TestServeRejectsBadDurabilityFlags pins flag validation without binding a
// socket.
func TestServeRejectsBadDurabilityFlags(t *testing.T) {
	if err := cmdServe([]string{"-fsync", "sometimes"}); err == nil {
		t.Fatal("bad -fsync accepted")
	}
	if err := cmdServe([]string{}); err == nil {
		t.Fatal("serve without -data or -data-dir accepted")
	}
}
