package main

// The `wqrtq bench` subcommand: an open-loop load harness against a
// running `wqrtq serve` instance. Arrivals fire on a fixed clock at
// -rate regardless of how fast the server answers (see internal/loadgen
// for why that is the honest way to measure overload), with a -mix
// fraction of inserts among the reverse top-k queries. The report —
// offered/served/shed/failed counts, goodput, shed fraction and
// p50/p99/p999 latencies per class — prints as JSON, and -min-goodput
// turns the run into a pass/fail smoke check for CI.
//
// Shed responses (503 with code "overloaded" or "degraded") are counted
// separately from failures: a server under admission control is supposed
// to shed; what it must not do is time out or 500.

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"wqrtq/internal/loadgen"
)

// errShed tags a 503 whose body carries an overload/degraded code — an
// intentional rejection, not a failure.
var errShed = errors.New("shed by server")

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the server under load")
	rate := fs.Float64("rate", 500, "offered arrival rate, requests/second")
	dur := fs.Duration("duration", 5*time.Second, "arrival window")
	mix := fs.Float64("mix", 0.1, "fraction of arrivals that are mutations (inserts)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-request client timeout")
	dim := fs.Int("d", 3, "dimensionality of generated queries and points")
	k := fs.Int("k", 10, "k for reverse top-k queries")
	nw := fs.Int("weights", 16, "weighting vectors per reverse top-k query")
	seed := fs.Int64("seed", 1, "request-generation seed")
	inflight := fs.Int("max-inflight", 512, "client-side cap on outstanding requests (0 = unbounded)")
	out := fs.String("out", "", "write the JSON report here (default stdout)")
	minGoodput := fs.Float64("min-goodput", 0, "exit nonzero unless goodput reaches this many requests/second")
	fs.Parse(args)

	target, classify := benchTarget(*addr, *timeout, benchBodies(*dim, *k, *nw, *seed))
	rep, err := loadgen.Run(loadgen.Config{
		Rate:         *rate,
		Duration:     *dur,
		MutationFrac: *mix,
		Seed:         *seed,
		Target:       target,
		Classify:     classify,
		MaxInFlight:  *inflight,
	})
	if err != nil {
		return err
	}

	full := struct {
		Addr            string  `json:"addr"`
		Rate            float64 `json:"rate"`
		DurationSeconds float64 `json:"duration_seconds"`
		MutationFrac    float64 `json:"mutation_frac"`
		Dim             int     `json:"d"`
		K               int     `json:"k"`
		Weights         int     `json:"weights"`
		Seed            int64   `json:"seed"`
		*loadgen.Report
	}{*addr, *rate, dur.Seconds(), *mix, *dim, *k, *nw, *seed, rep}
	enc, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(enc)
	}
	if *minGoodput > 0 && rep.GoodputPerSec < *minGoodput {
		return fmt.Errorf("wqrtq bench: goodput %.1f/s below required %.1f/s", rep.GoodputPerSec, *minGoodput)
	}
	return nil
}

// benchReqs holds pre-marshaled request bodies. Generating them up front
// keeps the hot path free of rand contention and JSON encoding, and makes
// the offered load a pure function of the seed.
type benchReqs struct {
	queries [][]byte
	inserts [][]byte
}

func benchBodies(d, k, nw int, seed int64) *benchReqs {
	rng := rand.New(rand.NewSource(seed))
	point := func() []float64 {
		p := make([]float64, d)
		for i := range p {
			p[i] = rng.Float64()
		}
		return p
	}
	weight := func() []float64 {
		w := make([]float64, d)
		sum := 0.0
		for i := range w {
			w[i] = rng.Float64() + 1e-9
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		return w
	}
	const variants = 64
	b := &benchReqs{}
	for i := 0; i < variants; i++ {
		W := make([][]float64, nw)
		for j := range W {
			W[j] = weight()
		}
		q, _ := json.Marshal(struct {
			Q       []float64   `json:"q"`
			K       int         `json:"k"`
			Weights [][]float64 `json:"weights"`
		}{point(), k, W})
		b.queries = append(b.queries, q)
		ins, _ := json.Marshal(struct {
			Point []float64 `json:"point"`
		}{point()})
		b.inserts = append(b.inserts, ins)
	}
	return b
}

// benchTarget builds the loadgen Target and Classify hooks over HTTP.
func benchTarget(addr string, timeout time.Duration, bodies *benchReqs) (func(loadgen.Kind) error, func(error) loadgen.Outcome) {
	client := &http.Client{Timeout: timeout}
	var qn, mn atomic.Uint64
	target := func(kind loadgen.Kind) error {
		var path string
		var body []byte
		if kind == loadgen.Mutation {
			path = "/v1/insert"
			body = bodies.inserts[mn.Add(1)%uint64(len(bodies.inserts))]
		} else {
			path = "/v1/rtopk"
			body = bodies.queries[qn.Add(1)%uint64(len(bodies.queries))]
		}
		resp, err := client.Post(addr+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			// Drain so the connection is reusable; the payload itself is
			// not the benchmark's business.
			_, err := io.Copy(io.Discard, resp.Body)
			return err
		}
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if resp.StatusCode == http.StatusServiceUnavailable && (e.Code == "overloaded" || e.Code == "degraded") {
			return fmt.Errorf("%w: %s", errShed, e.Code)
		}
		return fmt.Errorf("status %d code %q: %s", resp.StatusCode, e.Code, e.Error)
	}
	classify := func(err error) loadgen.Outcome {
		switch {
		case err == nil:
			return loadgen.OK
		case errors.Is(err, errShed):
			return loadgen.Shed
		default:
			return loadgen.Failed
		}
	}
	return target, classify
}
