package main

// The `wqrtq verify` subcommand: offline integrity check of a durable data
// directory (see `wqrtq serve -data-dir`). It verifies every snapshot's
// checksums, the WAL chain invariants, and performs a full dry-run recovery
// including the recovered index's structural invariants — without touching
// or blessing any file. Exits non-zero when a recovery from the directory
// would fail.

import (
	"flag"
	"fmt"
	"os"

	"wqrtq"
)

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	quiet := fs.Bool("q", false, "print nothing; report via exit status only")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: wqrtq verify [-q] <data-dir>")
	}
	dir := fs.Arg(0)
	rep, err := wqrtq.VerifyDataDir(nil, dir)
	if err != nil {
		return err
	}
	if !*quiet {
		for _, s := range rep.Snapshots {
			if s.Err != "" {
				fmt.Printf("snapshot %s  LSN %d  CORRUPT: %s\n", s.Name, s.LSN, s.Err)
			} else {
				fmt.Printf("snapshot %s  LSN %d  ok\n", s.Name, s.LSN)
			}
		}
		for _, s := range rep.Segments {
			fmt.Printf("segment  %s  base %d\n", s.Name, s.LSN)
		}
		if rep.OK {
			if rep.Detail != "" {
				fmt.Printf("ok: %s\n", rep.Detail)
			} else {
				fmt.Printf("ok: recovery reaches LSN %d (%d live points, %d ids)\n",
					rep.LastLSN, rep.Live, rep.NumIDs)
			}
		}
	}
	if !rep.OK {
		fmt.Fprintf(os.Stderr, "wqrtq verify: %s: %s\n", dir, rep.Detail)
		return fmt.Errorf("data directory %s would not recover", dir)
	}
	return nil
}
