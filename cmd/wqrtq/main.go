// Command wqrtq is the command-line front end of the library: generate
// datasets, run top-k / reverse top-k queries, and answer why-not questions
// with all three refinement solutions.
//
// Usage:
//
//	wqrtq gen    -dist independent -n 10000 -d 3 -seed 1 -out data.csv
//	wqrtq topk   -data data.csv -w 0.2,0.3,0.5 -k 10
//	wqrtq rtopk  -data data.csv -q 0.1,0.2,0.3 -k 10 -weights w.csv
//	wqrtq mono   -data data2d.csv -q 4,4 -k 3
//	wqrtq whynot -data data.csv -q 0.1,0.2,0.3 -k 10 -weights w.csv -missing 0,3 [-samples 800] [-seed 1]
//	wqrtq serve  -data data.csv -addr :8080 [-data-dir state/ -fsync always]
//	wqrtq bench  -addr http://127.0.0.1:8080 -rate 500 -duration 5s -mix 0.1
//	wqrtq verify state/
//
// Data files are CSV with one point per row; weight files are CSV with one
// weighting vector per row (components summing to 1).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wqrtq"
	"wqrtq/internal/dataset"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "topk":
		err = cmdTopK(os.Args[2:])
	case "rtopk":
		err = cmdRTopK(os.Args[2:])
	case "mono":
		err = cmdMono(os.Args[2:])
	case "whynot":
		err = cmdWhyNot(os.Args[2:])
	case "skyline":
		err = cmdSkyline(os.Args[2:])
	case "nearest":
		err = cmdNearest(os.Args[2:])
	case "monosample":
		err = cmdMonoSample(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "wqrtq: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wqrtq:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `wqrtq — why-not questions on reverse top-k queries

commands:
  gen     generate a synthetic dataset CSV (independent, anticorrelated,
          correlated, clustered, nba, household)
  topk    run a top-k query
  rtopk   run a bichromatic reverse top-k query
  mono    run a 2-D monochromatic reverse top-k query
  whynot  answer a why-not question (explanations + MQP, MWK, MQWK)
  skyline list the Pareto-optimal (undominated) points
  nearest find the points closest to a given point
  monosample  estimate a monochromatic reverse top-k result in any dimension
  serve   serve queries and mutations over JSON/HTTP with snapshot isolation
  bench   open-loop load harness against a running server: fixed arrival
          rate, query/mutation mix, goodput + shed + latency quantiles
  verify  check a durable data directory offline (checksums, WAL chain,
          dry-run recovery); exit 1 when recovery would fail

run "wqrtq <command> -h" for flags`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dist := fs.String("dist", "independent", "distribution: independent|anticorrelated|correlated|clustered|nba|household")
	n := fs.Int("n", 10000, "cardinality")
	d := fs.Int("d", 3, "dimensionality (synthetic distributions)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output CSV path (default stdout)")
	fs.Parse(args)
	ds, err := dataset.ByName(*dist, *n, *d, *seed)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return ds.WriteCSV(w)
}

// loadIndex reads a dataset CSV. Strictly-numeric files (the gen output
// format) load as-is; anything else — real-world tables with headers and
// label columns, NBA/household style — falls back to the tolerant
// dataset.ReadTable extraction of the numeric sub-matrix.
func loadIndex(path string) (*wqrtq.Index, *dataset.Dataset, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	ds, err := dataset.ReadCSV(bytes.NewReader(raw))
	if err != nil {
		var info *dataset.TableInfo
		ds, info, err = dataset.ReadTable(bytes.NewReader(raw))
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "wqrtq: %s is not a plain numeric CSV; loaded %d rows × %d numeric columns %v (%d rows skipped)\n",
			path, info.RowsRead, len(info.Columns), info.Columns, info.RowsDropped)
	}
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}
	ix, err := wqrtq.NewIndex(pts)
	return ix, ds, err
}

func loadWeights(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := dataset.ReadCSV(f)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		out[i] = p
	}
	return out, nil
}

func parseVector(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad vector component %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad index %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func cmdTopK(args []string) error {
	fs := flag.NewFlagSet("topk", flag.ExitOnError)
	data := fs.String("data", "", "dataset CSV path")
	wstr := fs.String("w", "", "weighting vector, comma separated")
	k := fs.Int("k", 10, "k")
	fs.Parse(args)
	ix, _, err := loadIndex(*data)
	if err != nil {
		return err
	}
	w, err := parseVector(*wstr)
	if err != nil {
		return err
	}
	res, err := ix.TopK(w, *k)
	if err != nil {
		return err
	}
	for i, r := range res {
		fmt.Printf("%2d. point %d score %.6g %v\n", i+1, r.ID, r.Score, r.Point)
	}
	return nil
}

func cmdRTopK(args []string) error {
	fs := flag.NewFlagSet("rtopk", flag.ExitOnError)
	data := fs.String("data", "", "dataset CSV path")
	weights := fs.String("weights", "", "weighting vector CSV path")
	qstr := fs.String("q", "", "query point, comma separated")
	k := fs.Int("k", 10, "k")
	fs.Parse(args)
	ix, _, err := loadIndex(*data)
	if err != nil {
		return err
	}
	W, err := loadWeights(*weights)
	if err != nil {
		return err
	}
	q, err := parseVector(*qstr)
	if err != nil {
		return err
	}
	res, err := ix.ReverseTopK(W, q, *k)
	if err != nil {
		return err
	}
	fmt.Printf("BRTOP%d(q) contains %d of %d weighting vectors:\n", *k, len(res), len(W))
	for _, i := range res {
		fmt.Printf("  w%d %v\n", i, W[i])
	}
	return nil
}

func cmdMono(args []string) error {
	fs := flag.NewFlagSet("mono", flag.ExitOnError)
	data := fs.String("data", "", "2-D dataset CSV path")
	qstr := fs.String("q", "", "query point, comma separated")
	k := fs.Int("k", 10, "k")
	fs.Parse(args)
	ix, _, err := loadIndex(*data)
	if err != nil {
		return err
	}
	q, err := parseVector(*qstr)
	if err != nil {
		return err
	}
	ivs, err := ix.ReverseTopKMono2D(q, *k)
	if err != nil {
		return err
	}
	if len(ivs) == 0 {
		fmt.Println("MRTOPk(q) is empty: no weighting vector ranks q within its top-k")
		return nil
	}
	fmt.Printf("MRTOP%d(q), with w = (λ, 1-λ):\n", *k)
	for _, iv := range ivs {
		fmt.Printf("  λ ∈ [%.6g, %.6g]\n", iv.Lo, iv.Hi)
	}
	return nil
}

func cmdWhyNot(args []string) error {
	fs := flag.NewFlagSet("whynot", flag.ExitOnError)
	data := fs.String("data", "", "dataset CSV path")
	weights := fs.String("weights", "", "weighting vector CSV path")
	qstr := fs.String("q", "", "query point, comma separated")
	k := fs.Int("k", 10, "k")
	missing := fs.String("missing", "", "why-not vector indices (default: every vector absent from the result)")
	samples := fs.Int("samples", 800, "sample size |S| (= |Q|)")
	seed := fs.Int64("seed", 1, "sampling seed")
	fs.Parse(args)
	ix, _, err := loadIndex(*data)
	if err != nil {
		return err
	}
	W, err := loadWeights(*weights)
	if err != nil {
		return err
	}
	q, err := parseVector(*qstr)
	if err != nil {
		return err
	}
	opts := wqrtq.Options{SampleSize: *samples, Seed: *seed}
	sel, err := parseInts(*missing)
	if err != nil {
		return err
	}
	if len(sel) > 0 {
		// Restrict the question to the requested vectors.
		sub := make([][]float64, len(sel))
		for i, idx := range sel {
			if idx < 0 || idx >= len(W) {
				return fmt.Errorf("missing index %d out of range", idx)
			}
			sub[i] = W[idx]
		}
		W = sub
	}
	ans, err := ix.WhyNot(q, *k, W, opts)
	if err != nil {
		return err
	}
	fmt.Printf("reverse top-%d result: %d of %d vectors; missing: %v\n",
		*k, len(ans.Result), len(W), ans.Missing)
	for i, mi := range ans.Missing {
		fmt.Printf("\nwhy is w%d missing? %d points outscore q:\n", mi, len(ans.Explanations[i]))
		for j, r := range ans.Explanations[i] {
			if j >= 5 {
				fmt.Printf("  ... and %d more\n", len(ans.Explanations[i])-5)
				break
			}
			fmt.Printf("  point %d score %.6g\n", r.ID, r.Score)
		}
	}
	if len(ans.Missing) == 0 {
		return nil
	}
	fmt.Printf("\nrefinement suggestions (smaller penalty is better):\n")
	fmt.Printf("  [MQP ] modify q to %v        penalty %.4f\n", ans.ModifiedQuery.Q, ans.ModifiedQuery.Penalty)
	fmt.Printf("  [MWK ] modify Wm to %v, k'=%d  penalty %.4f\n", ans.ModifiedPreferences.Wm, ans.ModifiedPreferences.K, ans.ModifiedPreferences.Penalty)
	fmt.Printf("  [MQWK] modify q to %v, Wm to %v, k'=%d  penalty %.4f\n",
		ans.ModifiedAll.Q, ans.ModifiedAll.Wm, ans.ModifiedAll.K, ans.ModifiedAll.Penalty)
	return nil
}

func cmdSkyline(args []string) error {
	fs := flag.NewFlagSet("skyline", flag.ExitOnError)
	data := fs.String("data", "", "dataset CSV path")
	fs.Parse(args)
	ix, ds, err := loadIndex(*data)
	if err != nil {
		return err
	}
	_ = ds
	sky := ix.Skyline()
	fmt.Printf("%d of %d points are Pareto-optimal:\n", len(sky), ix.Len())
	for _, id := range sky {
		fmt.Printf("  point %d %v\n", id, ix.Point(id))
	}
	return nil
}

func cmdNearest(args []string) error {
	fs := flag.NewFlagSet("nearest", flag.ExitOnError)
	data := fs.String("data", "", "dataset CSV path")
	pstr := fs.String("p", "", "reference point, comma separated")
	n := fs.Int("n", 5, "number of neighbors")
	fs.Parse(args)
	ix, _, err := loadIndex(*data)
	if err != nil {
		return err
	}
	p, err := parseVector(*pstr)
	if err != nil {
		return err
	}
	ns, err := ix.Nearest(p, *n)
	if err != nil {
		return err
	}
	for i, nb := range ns {
		fmt.Printf("%2d. point %d distance %.6g %v\n", i+1, nb.ID, nb.Distance, nb.Point)
	}
	return nil
}

func cmdMonoSample(args []string) error {
	fs := flag.NewFlagSet("monosample", flag.ExitOnError)
	data := fs.String("data", "", "dataset CSV path")
	qstr := fs.String("q", "", "query point, comma separated")
	k := fs.Int("k", 10, "k")
	samples := fs.Int("samples", 2000, "Monte Carlo samples")
	seed := fs.Int64("seed", 1, "sampling seed")
	fs.Parse(args)
	ix, _, err := loadIndex(*data)
	if err != nil {
		return err
	}
	q, err := parseVector(*qstr)
	if err != nil {
		return err
	}
	ws, frac, err := ix.ReverseTopKMonoSample(q, *k, *samples, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("an estimated %.2f%% of the weighting simplex ranks q in its top-%d\n", 100*frac, *k)
	show := len(ws)
	if show > 5 {
		show = 5
	}
	for i := 0; i < show; i++ {
		fmt.Printf("  witness %v\n", ws[i])
	}
	return nil
}
