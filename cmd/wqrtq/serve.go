package main

// The `wqrtq serve` subcommand: JSON-over-HTTP access to the concurrent
// serving engine. Queries and mutations share one wqrtq.Engine, so inserts
// and deletes proceed under snapshot isolation while query traffic runs;
// every response carries the epoch of the snapshot that produced it.
//
// Endpoints (request/response bodies are JSON):
//
//	POST /v1/topk    {"w":[...],"k":n}            → {"epoch":e,"result":[{"id","point","score"},...]}
//	POST /v1/rank    {"w":[...],"q":[...]}        → {"epoch":e,"rank":r}
//	POST /v1/rtopk   {"q":[...],"k":n,"weights":[[...],...]} → {"epoch":e,"result":[i,...]}
//	POST /v1/explain {"q":[...],"weights":[[...],...]}       → {"epoch":e,"explanations":[[...],...]}
//	POST /v1/whynot  {"q":[...],"k":n,"weights":[[...]],"samples":s,"seed":d} → full answer
//	POST /v1/insert  {"point":[...]}              → {"epoch":e,"id":i}
//	POST /v1/delete  {"id":i}                     → {"epoch":e,"deleted":b}
//	GET  /v1/stats                                → engine counters
//	GET  /v1/health                               → {"live","ready","degraded","reason"}
//	GET  /healthz                                 → 200 ok
//
// Errors are {"error":"..."} with status 400 (bad input) or 405/404 from
// the router. Every query handler derives its context from the incoming
// request — bounded by -query-timeout when set — so a client disconnect or
// an expired deadline cancels the engine work cooperatively:
//
//	deadline exceeded → 503 {"error":"...","code":"deadline_exceeded"}
//	client went away  → 499 {"error":"...","code":"canceled"}
//	shed by admission → 503 {"error":"...","code":"overloaded","reason":"..."} + Retry-After
//	read-only engine  → 503 {"error":"...","code":"degraded","reason":"..."} + Retry-After
//
// Cancellations are counted per endpoint (and in total) in /v1/stats,
// admission and shedding counters under "admission", degradation state
// under "wal".

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wqrtq"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	data := fs.String("data", "", "dataset CSV path")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "query workers (0 = GOMAXPROCS)")
	maxBatch := fs.Int("batch", 32, "max requests coalesced per batch")
	linger := fs.Duration("linger", 200*time.Microsecond, "batch linger window (0 disables)")
	cacheSize := fs.Int("cache", 4096, "result cache entries (negative disables)")
	queryTimeout := fs.Duration("query-timeout", 30*time.Second, "per-query deadline (0 disables); expired queries answer 503")
	shards := fs.Int("shards", 1, "spatial shards for scatter-gather query execution (<= 1 keeps the monolithic index)")
	skyband := fs.String("skyband", "on", "k-skyband candidate sub-index: on (default) or off (full-tree ablation; results identical)")
	kernelFlag := fs.String("kernel", "on", "blocked SoA scoring kernel: on (default) or off (scalar ablation; results bit-identical)")
	cellFlag := fs.String("cellindex", "on", "materialized reverse-top-k cell index: on (default) or off (skyband/kernel ablation; results bit-identical)")
	dataDir := fs.String("data-dir", "", "durable data directory: WAL + snapshots; existing state overrides -data (empty = in-memory)")
	fsync := fs.String("fsync", "always", "WAL sync policy: always (sync per mutation), interval (periodic) or off (sync at rotation/close only)")
	fsyncInterval := fs.Duration("fsync-interval", 0, "sync period under -fsync=interval (0 = default)")
	checkpointBytes := fs.Int64("checkpoint-bytes", 0, "WAL size triggering a background checkpoint (0 = default, negative disables)")
	admissionFlag := fs.String("admission", "on", "admission control (token buckets + adaptive concurrency + deadline shedding): on (default) or off")
	maxInflight := fs.Int("max-inflight", 0, "admission: hard per-class concurrency ceiling (0 = default)")
	targetLatency := fs.Duration("target-latency", 0, "admission: latency target driving the adaptive window (0 = default)")
	fs.Parse(args)
	if *skyband != "on" && *skyband != "off" {
		return fmt.Errorf("wqrtq serve: -skyband must be on or off, got %q", *skyband)
	}
	if *kernelFlag != "on" && *kernelFlag != "off" {
		return fmt.Errorf("wqrtq serve: -kernel must be on or off, got %q", *kernelFlag)
	}
	if *cellFlag != "on" && *cellFlag != "off" {
		return fmt.Errorf("wqrtq serve: -cellindex must be on or off, got %q", *cellFlag)
	}
	if *fsync != "always" && *fsync != "interval" && *fsync != "off" {
		return fmt.Errorf("wqrtq serve: -fsync must be always, interval or off, got %q", *fsync)
	}
	if *admissionFlag != "on" && *admissionFlag != "off" {
		return fmt.Errorf("wqrtq serve: -admission must be on or off, got %q", *admissionFlag)
	}
	var ix *wqrtq.Index
	if *data != "" {
		var err error
		ix, _, err = loadIndex(*data)
		if err != nil {
			return err
		}
	} else if *dataDir == "" {
		return fmt.Errorf("wqrtq serve: need -data (dataset CSV) or -data-dir (durable state)")
	}
	eng, err := wqrtq.NewEngine(ix, wqrtq.EngineConfig{
		Workers:                *workers,
		MaxBatch:               *maxBatch,
		BatchLinger:            *linger,
		CacheSize:              *cacheSize,
		Shards:                 *shards,
		DisableSkyband:         *skyband == "off",
		DisableKernel:          *kernelFlag == "off",
		DisableCellIndex:       *cellFlag == "off",
		DataDir:                *dataDir,
		Fsync:                  *fsync,
		FsyncInterval:          *fsyncInterval,
		CheckpointBytes:        *checkpointBytes,
		Admission:              *admissionFlag == "on",
		AdmissionMaxInflight:   *maxInflight,
		AdmissionTargetLatency: *targetLatency,
	})
	if err != nil {
		return err
	}
	if w := eng.Stats().WAL; w.Recoveries > 0 {
		fmt.Fprintf(os.Stderr, "wqrtq: recovered durable state from %s (LSN %d, %d WAL records replayed); -data seed ignored\n",
			*dataDir, w.LastLSN, w.ReplayedRecords)
	}
	srv := &http.Server{Addr: *addr, Handler: newServeHandler(eng, *queryTimeout)}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "wqrtq: serving %d points on %s\n", eng.Snapshot().Len(), *addr)
		errCh <- srv.ListenAndServe()
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if cerr := eng.Close(); cerr != nil && err == nil {
			return cerr
		}
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "wqrtq: %v, draining\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = srv.Shutdown(ctx) // stop accepting, wait for in-flight handlers
	// Then drain the engine's queue and settle durability; a WAL flush
	// failure at shutdown must not be swallowed.
	if cerr := eng.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// newServeHandler builds the HTTP API around an engine. Every query handler
// derives its context from the request (plus queryTimeout when positive), so
// deadlines and client disconnects cancel engine work. Factored out so tests
// can drive it with httptest.
func newServeHandler(e *wqrtq.Engine, queryTimeout time.Duration) http.Handler {
	// queryCtx bounds a handler's work by the client connection and the
	// configured per-query deadline.
	queryCtx := func(r *http.Request) (context.Context, context.CancelFunc) {
		if queryTimeout > 0 {
			return context.WithTimeout(r.Context(), queryTimeout)
		}
		return context.WithCancel(r.Context())
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/topk", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			W []float64 `json:"w"`
			K int       `json:"k"`
		}
		if !decodeJSON(w, r, &req) {
			return
		}
		ctx, cancel := queryCtx(r)
		defer cancel()
		resp, err := e.TopKCtx(ctx, wqrtq.TopKRequest{W: req.W, K: req.K})
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		writeJSON(w, struct {
			Epoch  uint64       `json:"epoch"`
			Result []rankedJSON `json:"result"`
		}{resp.Epoch, toRankedJSON(resp.Result)})
	})
	mux.HandleFunc("POST /v1/rank", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			W []float64 `json:"w"`
			Q []float64 `json:"q"`
		}
		if !decodeJSON(w, r, &req) {
			return
		}
		ctx, cancel := queryCtx(r)
		defer cancel()
		resp, err := e.RankCtx(ctx, wqrtq.RankRequest{W: req.W, Q: req.Q})
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		writeJSON(w, struct {
			Epoch uint64 `json:"epoch"`
			Rank  int    `json:"rank"`
		}{resp.Epoch, resp.Rank})
	})
	mux.HandleFunc("POST /v1/rtopk", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Q       []float64   `json:"q"`
			K       int         `json:"k"`
			Weights [][]float64 `json:"weights"`
		}
		if !decodeJSON(w, r, &req) {
			return
		}
		ctx, cancel := queryCtx(r)
		defer cancel()
		resp, err := e.ReverseTopKCtx(ctx, wqrtq.ReverseTopKRequest{Q: req.Q, K: req.K, W: req.Weights})
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		res := resp.Result
		if res == nil {
			res = []int{}
		}
		writeJSON(w, struct {
			Epoch  uint64         `json:"epoch"`
			Result []int          `json:"result"`
			RTA    wqrtq.RTAStats `json:"rta"`
		}{resp.Epoch, res, resp.RTA})
	})
	mux.HandleFunc("POST /v1/explain", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Q       []float64   `json:"q"`
			Weights [][]float64 `json:"weights"`
		}
		if !decodeJSON(w, r, &req) {
			return
		}
		ctx, cancel := queryCtx(r)
		defer cancel()
		resp, err := e.ExplainCtx(ctx, wqrtq.ExplainRequest{Q: req.Q, Wm: req.Weights})
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		out := make([][]rankedJSON, len(resp.Explanations))
		for i, ex := range resp.Explanations {
			out[i] = toRankedJSON(ex)
		}
		writeJSON(w, struct {
			Epoch        uint64         `json:"epoch"`
			Explanations [][]rankedJSON `json:"explanations"`
		}{resp.Epoch, out})
	})
	mux.HandleFunc("POST /v1/whynot", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Q       []float64   `json:"q"`
			K       int         `json:"k"`
			Weights [][]float64 `json:"weights"`
			Samples int         `json:"samples"`
			Seed    int64       `json:"seed"`
		}
		if !decodeJSON(w, r, &req) {
			return
		}
		ctx, cancel := queryCtx(r)
		defer cancel()
		resp, err := e.WhyNotCtx(ctx, wqrtq.WhyNotRequest{
			Q: req.Q, K: req.K, W: req.Weights,
			Opts: wqrtq.Options{SampleSize: req.Samples, Seed: req.Seed},
		})
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		writeJSON(w, whyNotJSON(resp.Epoch, resp.Answer))
	})
	mux.HandleFunc("POST /v1/insert", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Point []float64 `json:"point"`
		}
		if !decodeJSON(w, r, &req) {
			return
		}
		id, epoch, err := e.Insert(req.Point)
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		writeJSON(w, struct {
			Epoch uint64 `json:"epoch"`
			ID    int    `json:"id"`
		}{epoch, id})
	})
	mux.HandleFunc("POST /v1/delete", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ID *int `json:"id"`
		}
		if !decodeJSON(w, r, &req) {
			return
		}
		if req.ID == nil {
			writeErr(w, http.StatusBadRequest, errors.New("missing id"))
			return
		}
		deleted, epoch, err := e.Delete(*req.ID)
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		writeJSON(w, struct {
			Epoch   uint64 `json:"epoch"`
			Deleted bool   `json:"deleted"`
		}{epoch, deleted})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, e.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /v1/health", func(w http.ResponseWriter, r *http.Request) {
		// Load-balancer semantics: 200 while queries are servable — a
		// degraded (read-only) engine stays in rotation, that is the point
		// of read-only mode — 503 once the engine is closed. The body
		// carries the full live/ready/degraded breakdown either way.
		h := e.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
	return mux
}

type rankedJSON struct {
	ID    int       `json:"id"`
	Point []float64 `json:"point"`
	Score float64   `json:"score"`
}

func toRankedJSON(rs []wqrtq.Ranked) []rankedJSON {
	out := make([]rankedJSON, len(rs))
	for i, r := range rs {
		out[i] = rankedJSON{ID: r.ID, Point: r.Point, Score: r.Score}
	}
	return out
}

func whyNotJSON(epoch uint64, ans *wqrtq.WhyNotAnswer) any {
	type refineQ struct {
		Q       []float64 `json:"q"`
		Penalty float64   `json:"penalty"`
	}
	type refineW struct {
		Wm      [][]float64 `json:"wm"`
		K       int         `json:"k"`
		Penalty float64     `json:"penalty"`
	}
	type refineAll struct {
		Q       []float64   `json:"q"`
		Wm      [][]float64 `json:"wm"`
		K       int         `json:"k"`
		Penalty float64     `json:"penalty"`
	}
	exps := make([][]rankedJSON, len(ans.Explanations))
	for i, ex := range ans.Explanations {
		exps[i] = toRankedJSON(ex)
	}
	result := ans.Result
	if result == nil {
		result = []int{}
	}
	missing := ans.Missing
	if missing == nil {
		missing = []int{}
	}
	out := struct {
		Epoch        uint64         `json:"epoch"`
		Result       []int          `json:"result"`
		Missing      []int          `json:"missing"`
		RTA          wqrtq.RTAStats `json:"rta"`
		Explanations [][]rankedJSON `json:"explanations"`
		ModifyQuery  *refineQ       `json:"modify_query,omitempty"`
		ModifyPrefs  *refineW       `json:"modify_preferences,omitempty"`
		ModifyAll    *refineAll     `json:"modify_all,omitempty"`
	}{Epoch: epoch, Result: result, Missing: missing, RTA: ans.RTA, Explanations: exps}
	if len(ans.Missing) > 0 {
		out.ModifyQuery = &refineQ{Q: ans.ModifiedQuery.Q, Penalty: ans.ModifiedQuery.Penalty}
		out.ModifyPrefs = &refineW{Wm: ans.ModifiedPreferences.Wm, K: ans.ModifiedPreferences.K, Penalty: ans.ModifiedPreferences.Penalty}
		out.ModifyAll = &refineAll{Q: ans.ModifiedAll.Q, Wm: ans.ModifiedAll.Wm, K: ans.ModifiedAll.K, Penalty: ans.ModifiedAll.Penalty}
	}
	return out
}

// maxBodyBytes caps request bodies so a single oversized JSON document
// cannot exhaust server memory.
const maxBodyBytes = 8 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("malformed request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{err.Error()})
}

// statusClientClosedRequest is the de-facto (nginx) status for a request
// aborted by the client; the response is written only for the log's benefit.
const statusClientClosedRequest = 499

// retryAfterSeconds rounds a retry hint up to the whole seconds the
// Retry-After header speaks, with a floor of 1.
func retryAfterSeconds(d time.Duration) string {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return fmt.Sprintf("%d", s)
}

// writeQueryErr maps a query-path error: validation failures (tagged
// wqrtq.ErrInvalidArgument — non-finite or negative weights/points,
// dimension mismatches, bad k) → 400, context deadline → 503, context
// canceled (client went away) → 499, a closed engine → 503
// "engine_closed", anything else — an internal failure, not the client's
// fault — → 500. Overload sheds (admission control or a full queue) → 503
// "overloaded" and a degraded (read-only) engine refusing a mutation →
// 503 "degraded"; both carry a Retry-After header and a machine-readable
// reason so clients can back off intelligently, and are distinct from
// each other and from a closed engine: overload passes, degradation needs
// an operator, closure is final.
func writeQueryErr(w http.ResponseWriter, err error) {
	var code, reason string
	var status int
	var oe *wqrtq.OverloadError
	var de *wqrtq.DegradedError
	switch {
	case errors.Is(err, wqrtq.ErrInvalidArgument):
		writeErr(w, http.StatusBadRequest, err)
		return
	case errors.As(err, &oe):
		code, status, reason = "overloaded", http.StatusServiceUnavailable, oe.Reason
		w.Header().Set("Retry-After", retryAfterSeconds(oe.RetryAfter))
	case errors.As(err, &de):
		code, status, reason = "degraded", http.StatusServiceUnavailable, de.Reason
		w.Header().Set("Retry-After", retryAfterSeconds(0))
	case errors.Is(err, wqrtq.ErrDegraded):
		code, status = "degraded", http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds(0))
	case errors.Is(err, context.DeadlineExceeded):
		code, status = "deadline_exceeded", http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		code, status = "canceled", statusClientClosedRequest
	case errors.Is(err, wqrtq.ErrEngineClosed):
		code, status = "engine_closed", http.StatusServiceUnavailable
	default:
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error  string `json:"error"`
		Code   string `json:"code"`
		Reason string `json:"reason,omitempty"`
	}{err.Error(), code, reason})
}
