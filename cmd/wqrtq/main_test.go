package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseVector(t *testing.T) {
	got, err := parseVector("0.1, 0.2,0.7")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.2, 0.7}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("parseVector[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := parseVector("1,abc"); err == nil {
		t.Error("bad component accepted")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("0, 3,7")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 3 || got[2] != 7 {
		t.Errorf("parseInts = %v", got)
	}
	if out, err := parseInts(""); err != nil || out != nil {
		t.Errorf("empty string: %v, %v", out, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad index accepted")
	}
}

func TestLoadIndexAndWeights(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "d.csv")
	if err := os.WriteFile(data, []byte("1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ix, ds, err := loadIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2 || ds.Dim != 2 {
		t.Errorf("loaded %d points, dim %d", ix.Len(), ds.Dim)
	}
	weights := filepath.Join(dir, "w.csv")
	if err := os.WriteFile(weights, []byte("0.5,0.5\n0.9,0.1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	W, err := loadWeights(weights)
	if err != nil {
		t.Fatal(err)
	}
	if len(W) != 2 || W[1][0] != 0.9 {
		t.Errorf("loaded weights %v", W)
	}
	if _, _, err := loadIndex(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestLoadIndexNBAStyleTable pins the ReadTable fallback end to end: the
// committed NBA-style fixture is not a plain numeric CSV (header row,
// quoted player names, team and date label columns), so loadIndex must
// fall back to the tolerant table loader and extract exactly the seven
// numeric stat columns from all 28 data rows.
func TestLoadIndexNBAStyleTable(t *testing.T) {
	ix, ds, err := loadIndex(filepath.Join("..", "..", "testdata", "nba_style.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 28 || ds.Dim != 7 {
		t.Fatalf("loaded %d points, dim %d; want 28 points, dim 7", ix.Len(), ds.Dim)
	}
	// Spot-check one extraction: the first data row's numeric columns are
	// min,pts,reb,ast,stl,blk,tov = 36.5,27,8,5,2,1,3.
	want := []float64{36.5, 27, 8, 5, 2, 1, 3}
	for i, v := range want {
		if ds.Points[0][i] != v {
			t.Fatalf("row 0 = %v, want %v", ds.Points[0], want)
		}
	}
}

func TestGenCommandRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "gen.csv")
	if err := cmdGen([]string{"-dist", "independent", "-n", "50", "-d", "2", "-seed", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	ix, ds, err := loadIndex(out)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 50 || ds.Dim != 2 {
		t.Errorf("generated %d points, dim %d", ix.Len(), ds.Dim)
	}
}
