package main

// HTTP handler tests for `wqrtq serve`: golden JSON responses over a fixed
// five-point dataset whose scores are exact binary fractions (so the JSON
// encodings are stable), plus the error paths.
//
// Dataset (id: point), weights chosen so w=[0.25,0.75] ranks are distinct:
//
//	0: [1,8]  1: [2,5]  2: [4,3]  3: [8,2]  4: [9,1]

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wqrtq"
	"wqrtq/internal/storage"
)

func serveTestHandler(t *testing.T) http.Handler {
	t.Helper()
	ix, err := wqrtq.NewIndex([][]float64{
		{1, 8}, {2, 5}, {4, 3}, {8, 2}, {9, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := wqrtq.NewEngine(ix, wqrtq.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return newServeHandler(e, 0)
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func wantGolden(t *testing.T, rec *httptest.ResponseRecorder, wantCode int, golden string) {
	t.Helper()
	if rec.Code != wantCode {
		t.Fatalf("status %d, want %d; body %s", rec.Code, wantCode, rec.Body.String())
	}
	if got := rec.Body.String(); got != golden {
		t.Fatalf("response mismatch\n got: %s\nwant: %s", got, golden)
	}
}

func TestServeTopKGolden(t *testing.T) {
	h := serveTestHandler(t)
	rec := post(t, h, "/v1/topk", `{"w":[0.25,0.75],"k":3}`)
	wantGolden(t, rec, http.StatusOK,
		`{"epoch":0,"result":[{"id":4,"point":[9,1],"score":3},{"id":2,"point":[4,3],"score":3.25},{"id":3,"point":[8,2],"score":3.5}]}`+"\n")
}

func TestServeRankGolden(t *testing.T) {
	h := serveTestHandler(t)
	rec := post(t, h, "/v1/rank", `{"w":[0.75,0.25],"q":[3,3]}`)
	wantGolden(t, rec, http.StatusOK, `{"epoch":0,"rank":3}`+"\n")
}

func TestServeRTopKGolden(t *testing.T) {
	h := serveTestHandler(t)
	rec := post(t, h, "/v1/rtopk",
		`{"q":[3,3],"k":2,"weights":[[0.25,0.75],[0.75,0.25],[0.5,0.5]]}`)
	wantGolden(t, rec, http.StatusOK, `{"epoch":0,"result":[0,2],"rta":{"evaluated":3,"pruned":0,"candidate_set_size":5}}`+"\n")
}

func TestServeWhyNotGolden(t *testing.T) {
	h := serveTestHandler(t)
	rec := post(t, h, "/v1/whynot",
		`{"q":[3,3],"k":2,"weights":[[0.25,0.75],[0.75,0.25],[0.5,0.5]],"samples":64,"seed":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	golden := `{"epoch":0,"result":[0,2],"missing":[1],"rta":{"evaluated":3,"pruned":0,"candidate_set_size":5},"explanations":[[{"id":0,"point":[1,8],"score":2.75},{"id":1,"point":[2,5],"score":2.75}]],"modify_query":{"q":[2.69999999983292,2.899999996320959],"penalty":0.07453559956157275},"modify_preferences":{"wm":[[0.7142857142857143,0.2857142857142857]],"k":2,"penalty":0.025253813613805257},"modify_all":{"q":[3,3],"wm":[[0.7142857142857143,0.2857142857142857]],"k":2,"penalty":0.012626906806902628}}`
	if got := rec.Body.String(); got != golden+"\n" {
		t.Fatalf("response mismatch\n got: %s\nwant: %s", got, golden)
	}
}

func TestServeInsertDeleteRoundTrip(t *testing.T) {
	h := serveTestHandler(t)
	rec := post(t, h, "/v1/insert", `{"point":[1,1]}`)
	wantGolden(t, rec, http.StatusOK, `{"epoch":2,"id":5}`+"\n")

	// The new point dominates everything: it is now the top-1.
	rec = post(t, h, "/v1/topk", `{"w":[0.5,0.5],"k":1}`)
	wantGolden(t, rec, http.StatusOK,
		`{"epoch":2,"result":[{"id":5,"point":[1,1],"score":1}]}`+"\n")

	rec = post(t, h, "/v1/delete", `{"id":5}`)
	wantGolden(t, rec, http.StatusOK, `{"epoch":4,"deleted":true}`+"\n")

	rec = post(t, h, "/v1/delete", `{"id":5}`)
	wantGolden(t, rec, http.StatusOK, `{"epoch":4,"deleted":false}`+"\n")
}

func TestServeExplain(t *testing.T) {
	h := serveTestHandler(t)
	rec := post(t, h, "/v1/explain", `{"q":[3,3],"weights":[[0.75,0.25]]}`)
	wantGolden(t, rec, http.StatusOK,
		`{"epoch":0,"explanations":[[{"id":0,"point":[1,8],"score":2.75},{"id":1,"point":[2,5],"score":2.75}]]}`+"\n")
}

func TestServeStatsAndHealth(t *testing.T) {
	h := serveTestHandler(t)
	post(t, h, "/v1/topk", `{"w":[0.25,0.75],"k":3}`)
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var stats struct {
		Epoch     uint64 `json:"epoch"`
		Live      int    `json:"live"`
		Endpoints map[string]struct {
			Count int64 `json:"count"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if stats.Live != 5 {
		t.Fatalf("live = %d, want 5", stats.Live)
	}
	if stats.Endpoints["topk"].Count != 1 {
		t.Fatalf("topk count = %d, want 1", stats.Endpoints["topk"].Count)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}

func TestServeQueryTimeout(t *testing.T) {
	// A 1ns query timeout expires before any engine work happens; the
	// handler must answer 503 with the machine-readable code, and the
	// cancellation must show up in /v1/stats.
	ix, err := wqrtq.NewIndex([][]float64{
		{1, 8}, {2, 5}, {4, 3}, {8, 2}, {9, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := wqrtq.NewEngine(ix, wqrtq.EngineConfig{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	h := newServeHandler(e, time.Nanosecond)

	rec := post(t, h, "/v1/whynot",
		`{"q":[3,3],"k":2,"weights":[[0.25,0.75],[0.75,0.25],[0.5,0.5]],"samples":64,"seed":1}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body not JSON: %s", rec.Body.String())
	}
	if body.Code != "deadline_exceeded" {
		t.Fatalf("code %q, want deadline_exceeded", body.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, req)
	var stats struct {
		Canceled  int64 `json:"canceled"`
		Endpoints map[string]struct {
			Canceled int64 `json:"canceled"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(srec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if stats.Canceled < 1 {
		t.Fatalf("stats canceled = %d, want >= 1", stats.Canceled)
	}
	if stats.Endpoints["whynot"].Canceled < 1 {
		t.Fatalf("whynot canceled = %d, want >= 1", stats.Endpoints["whynot"].Canceled)
	}
}

func TestServeErrorPaths(t *testing.T) {
	h := serveTestHandler(t)
	cases := []struct {
		name, path, body, wantErr string
	}{
		{"bad dimension", "/v1/topk", `{"w":[0.2,0.3,0.5],"k":3}`, "dimension"},
		{"k zero", "/v1/topk", `{"w":[0.5,0.5],"k":0}`, "k must be positive"},
		{"k negative rtopk", "/v1/rtopk", `{"q":[3,3],"k":-1,"weights":[[0.5,0.5]]}`, "k must be positive"},
		{"malformed body", "/v1/topk", `{"w":[0.5`, "malformed request body"},
		{"not json", "/v1/rank", `hello`, "malformed request body"},
		{"empty weights", "/v1/rtopk", `{"q":[3,3],"k":2,"weights":[]}`, "empty weighting vector set"},
		{"bad weight sum", "/v1/topk", `{"w":[0.9,0.9],"k":1}`, "sum"},
		{"bad query dim", "/v1/rank", `{"w":[0.5,0.5],"q":[1,2,3]}`, "dimension"},
		{"insert bad dim", "/v1/insert", `{"point":[1]}`, "dimension"},
		{"delete missing id", "/v1/delete", `{}`, "missing id"},
		{"delete out of range", "/v1/delete", `{"id":99}`, "out of range"},
		{"whynot k zero", "/v1/whynot", `{"q":[3,3],"k":0,"weights":[[0.5,0.5]]}`, "k must be positive"},
		{"oversized body", "/v1/topk",
			`{"w":[0.5,0.5],"k":1,"pad":"` + strings.Repeat("x", 9<<20) + `"}`,
			"request body too large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, h, tc.path, tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", rec.Code, rec.Body.String())
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("error body not JSON: %s", rec.Body.String())
			}
			if !strings.Contains(e.Error, tc.wantErr) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.wantErr)
			}
		})
	}

	// Wrong method on a POST route.
	req := httptest.NewRequest(http.MethodGet, "/v1/topk", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/topk status %d, want 405", rec.Code)
	}
	// Unknown route.
	req = httptest.NewRequest(http.MethodPost, "/v1/nope", strings.NewReader("{}"))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("POST /v1/nope status %d, want 404", rec.Code)
	}
}

// shardedTestHandler is serveTestHandler over the same dataset partitioned
// into shards, as `wqrtq serve -shards` would build it.
func shardedTestHandler(t *testing.T, shards int) http.Handler {
	t.Helper()
	ix, err := wqrtq.NewIndex([][]float64{
		{1, 8}, {2, 5}, {4, 3}, {8, 2}, {9, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := wqrtq.NewEngine(ix, wqrtq.EngineConfig{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return newServeHandler(e, 0)
}

// TestServeShardedGolden asserts the sharded serving path answers the same
// golden JSON as the monolithic one — sharding must be invisible to
// clients (other than /v1/stats reporting the shard count).
func TestServeShardedGolden(t *testing.T) {
	h := shardedTestHandler(t, 3)
	rec := post(t, h, "/v1/topk", `{"w":[0.25,0.75],"k":3}`)
	wantGolden(t, rec, http.StatusOK,
		`{"epoch":0,"result":[{"id":4,"point":[9,1],"score":3},{"id":2,"point":[4,3],"score":3.25},{"id":3,"point":[8,2],"score":3.5}]}`+"\n")
	rec = post(t, h, "/v1/rtopk",
		`{"q":[3,3],"k":2,"weights":[[0.25,0.75],[0.75,0.25],[0.5,0.5]]}`)
	wantGolden(t, rec, http.StatusOK, `{"epoch":0,"result":[0,2],"rta":{"evaluated":3,"pruned":0,"candidate_set_size":5}}`+"\n")

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var stats struct {
		Shards int `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if stats.Shards != 3 {
		t.Fatalf("stats shards = %d, want 3", stats.Shards)
	}
}

// TestServeValidationStatusCodes asserts the typed-error mapping: request
// validation failures (negative or malformed weights and points) answer
// 400, and a closed engine answers 503 rather than a client-fault code.
func TestServeValidationStatusCodes(t *testing.T) {
	h := serveTestHandler(t)
	badInputs := []struct{ name, path, body string }{
		{"negative weight", "/v1/topk", `{"w":[-0.5,1.5],"k":1}`},
		{"negative weight rank", "/v1/rank", `{"w":[-1,2],"q":[3,3]}`},
		{"negative point", "/v1/rank", `{"w":[0.5,0.5],"q":[-3,3]}`},
		{"negative point rtopk", "/v1/rtopk", `{"q":[-1,-1],"k":2,"weights":[[0.5,0.5]]}`},
		{"negative insert", "/v1/insert", `{"point":[-1,2]}`},
		{"weight sum", "/v1/explain", `{"q":[3,3],"weights":[[0.3,0.3]]}`},
	}
	for _, tc := range badInputs {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, h, tc.path, tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", rec.Code, rec.Body.String())
			}
		})
	}
}

// TestServeClosedEngine503 asserts that a request hitting a closed engine
// maps to 503 (server-side condition), not 400 (client fault).
func TestServeClosedEngine503(t *testing.T) {
	ix, err := wqrtq.NewIndex([][]float64{{1, 8}, {2, 5}})
	if err != nil {
		t.Fatal(err)
	}
	e, err := wqrtq.NewEngine(ix, wqrtq.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h := newServeHandler(e, 0)
	e.Close()
	rec := post(t, h, "/v1/topk", `{"w":[0.5,0.5],"k":1}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", rec.Code, rec.Body.String())
	}
}

// TestServeHealthEndpoint pins the /v1/health contract on a healthy
// engine: 200 with live, ready and not degraded.
func TestServeHealthEndpoint(t *testing.T) {
	h := serveTestHandler(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/health", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	wantGolden(t, rec, http.StatusOK, `{"live":true,"ready":true,"degraded":false}`+"\n")
}

// TestServeOverloaded503 exhausts the query class's token-bucket burst and
// asserts the shed surface: 503 with a Retry-After header and the
// machine-readable overloaded/rate_limit body, while earlier requests in
// the burst answer 200.
func TestServeOverloaded503(t *testing.T) {
	ix, err := wqrtq.NewIndex([][]float64{
		{1, 8}, {2, 5}, {4, 3}, {8, 2}, {9, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := wqrtq.NewEngine(ix, wqrtq.EngineConfig{
		Admission:          true,
		AdmissionQueryRate: 1, // burst of 8, refill 1/s: the 9th request sheds
		CacheSize:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	h := newServeHandler(e, 0)

	var ok, shed int
	for i := 0; i < 12; i++ {
		rec := post(t, h, "/v1/rtopk", `{"q":[3,3],"k":2,"weights":[[0.25,0.75],[0.75,0.25]]}`)
		switch rec.Code {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
			if ra := rec.Header().Get("Retry-After"); ra == "" {
				t.Fatalf("shed response missing Retry-After; body %s", rec.Body.String())
			}
			var body struct {
				Error  string `json:"error"`
				Code   string `json:"code"`
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("shed body not JSON: %s", rec.Body.String())
			}
			if body.Code != "overloaded" || body.Reason != "rate_limit" {
				t.Fatalf("shed body code=%q reason=%q, want overloaded/rate_limit", body.Code, body.Reason)
			}
		default:
			t.Fatalf("status %d; body %s", rec.Code, rec.Body.String())
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("burst did not exercise both paths: ok %d, shed %d", ok, shed)
	}
}

// TestServeDegraded503 drives the engine read-only through persistent WAL
// failures and asserts the full degraded surface: mutations answer 503
// with the degraded/wal_append body and a Retry-After header, queries keep
// answering 200 from the snapshot, and /v1/health stays 200 (in rotation)
// while reporting the degradation.
func TestServeDegraded503(t *testing.T) {
	fs := storage.NewFaultFS()
	ix, err := wqrtq.NewIndex([][]float64{
		{1, 8}, {2, 5}, {4, 3}, {8, 2}, {9, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := wqrtq.NewEngine(ix, wqrtq.EngineConfig{
		DataDir:         "data",
		FS:              fs,
		CheckpointBytes: -1,
		WALRetryBackoff: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	h := newServeHandler(e, 0)

	fs.InjectFailures(1 << 30) // every write fails: retries exhaust, engine degrades

	rec := post(t, h, "/v1/insert", `{"point":[1,1]}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("insert status %d, want 503; body %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatalf("degraded response missing Retry-After; body %s", rec.Body.String())
	}
	var body struct {
		Error  string `json:"error"`
		Code   string `json:"code"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("degraded body not JSON: %s", rec.Body.String())
	}
	if body.Code != "degraded" || body.Reason != "wal_append" {
		t.Fatalf("degraded body code=%q reason=%q, want degraded/wal_append", body.Code, body.Reason)
	}

	// Read-only mode is the feature, not the failure: queries still answer.
	rec = post(t, h, "/v1/topk", `{"w":[0.25,0.75],"k":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query on degraded engine: status %d; body %s", rec.Code, rec.Body.String())
	}

	// Health: still live and ready (in rotation), visibly degraded.
	req := httptest.NewRequest(http.MethodGet, "/v1/health", nil)
	hrec := httptest.NewRecorder()
	h.ServeHTTP(hrec, req)
	wantGolden(t, hrec, http.StatusOK, `{"live":true,"ready":true,"degraded":true,"reason":"wal_append"}`+"\n")
}

// TestServeKernelStats pins the -kernel plumbing: an engine with the
// kernel enabled surfaces its blocked-sweep counters in /v1/stats after a
// reverse top-k, a DisableKernel engine reports the ablation, and the
// answers match either way.
func TestServeKernelStats(t *testing.T) {
	pts := [][]float64{{1, 8}, {2, 5}, {4, 3}, {8, 2}, {9, 1}}
	build := func(disable bool) http.Handler {
		ix, err := wqrtq.NewIndex(pts)
		if err != nil {
			t.Fatal(err)
		}
		e, err := wqrtq.NewEngine(ix, wqrtq.EngineConfig{DisableKernel: disable})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		return newServeHandler(e, 0)
	}
	body := `{"q":[3,4],"k":2,"weights":[[0.25,0.75],[0.5,0.5],[0.75,0.25]]}`
	on, off := build(false), build(true)
	recOn := post(t, on, "/v1/rtopk", body)
	recOff := post(t, off, "/v1/rtopk", body)
	if recOn.Code != http.StatusOK || recOn.Body.String() != recOff.Body.String() {
		t.Fatalf("kernel on/off answers diverge:\n on: %s\noff: %s", recOn.Body.String(), recOff.Body.String())
	}
	stats := func(h http.Handler) (enabled bool, blocks int64) {
		req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("stats status %d", rec.Code)
		}
		var st struct {
			Kernel struct {
				Enabled bool  `json:"enabled"`
				Blocks  int64 `json:"blocks"`
			} `json:"kernel"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatalf("stats not JSON: %v", err)
		}
		return st.Kernel.Enabled, st.Kernel.Blocks
	}
	if enabled, blocks := stats(on); !enabled || blocks < 1 {
		t.Fatalf("kernel stats not populated on the enabled engine: enabled=%v blocks=%d", enabled, blocks)
	}
	if enabled, blocks := stats(off); enabled || blocks != 0 {
		t.Fatalf("ablated engine reports kernel work: enabled=%v blocks=%d", enabled, blocks)
	}
}
