package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"wqrtq/internal/analysis"
	"wqrtq/internal/analysis/suite"
)

// vetConfig mirrors the JSON written by cmd/go/internal/work.buildVetConfig
// (the unpublished vet tool protocol, the same one
// golang.org/x/tools/go/analysis/unitchecker implements).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgFile and prints
// findings to stderr in vet's file:line:col format. Exit status follows
// vet tools: 0 clean, 1 tool failure, 2 findings.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wqrtqlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "wqrtqlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The suite has no cross-package facts; write an empty vetx payload so
	// the go command can cache the action result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("wqrtqlint/no-facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "wqrtqlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "wqrtqlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	arch := os.Getenv("GOARCH")
	if arch == "" {
		arch = runtime.GOARCH
	}
	sizes := types.SizesFor(cfg.Compiler, arch)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	conf := &types.Config{Importer: imp, Sizes: sizes}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "wqrtqlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	found := 0
	for _, a := range suite.All() {
		name := a.Name
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				found++
				fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, name)
			},
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "wqrtqlint: analyzer %s failed on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
	}
	if found > 0 {
		return 2
	}
	return 0
}
