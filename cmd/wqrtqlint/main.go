// Command wqrtqlint is the wqrtq invariant suite: seven analyzers enforcing
// hot-path allocation discipline, preallocated slice growth, snapshot
// immutability outside the builder packages, cooperative cancellation,
// deterministic iteration, centralized float comparison, and non-blocking
// critical sections (see internal/analysis/... and DESIGN.md §11–12).
//
// It runs two ways:
//
//	wqrtqlint ./...                     # standalone, from the module root
//	go vet -vettool=$(which wqrtqlint) ./...
//
// The second form speaks cmd/go's vet tool protocol: respond to -V=full
// with a content-addressed build ID (so vet's result cache invalidates
// when the tool changes), describe flags as JSON on -flags, and analyze
// one package per invocation from a JSON vet.cfg produced by the go
// command. Both forms resolve imports from compiler export data, so they
// see identical type information.
package main

import (
	"crypto/sha256"
	"fmt"
	"os"
	"sort"
	"strings"

	"wqrtq/internal/analysis"
	"wqrtq/internal/analysis/load"
	"wqrtq/internal/analysis/suite"
)

func main() {
	args := os.Args[1:]
	for _, arg := range args {
		switch {
		case arg == "-V" || strings.HasPrefix(arg, "-V="):
			printVersion()
			return
		case arg == "-flags" || arg == "--flags":
			// No analyzer flags yet; cmd/go requires valid JSON here.
			fmt.Println("[]")
			return
		}
	}
	// Under `go vet -vettool` the final argument is a vet.cfg path.
	if len(args) >= 1 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(unitcheck(args[len(args)-1]))
	}
	os.Exit(standalone(args))
}

// printVersion implements the -V=full handshake. cmd/go requires the form
// "<tool> version devel ... buildID=<id>" and derives its cache key from
// the id, so we hash the binary itself: rebuilding wqrtqlint with changed
// analyzers invalidates previously cached vet results.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:16])
		}
	}
	fmt.Printf("wqrtqlint version devel buildID=%s/%s\n", id, id)
}

// standalone loads packages through `go list -export` and analyzes them
// in-process. Exit status 2 mirrors vet: findings are not a tool failure.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Module(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wqrtqlint: %v\n", err)
		return 1
	}
	type finding struct {
		pos      string
		file     string
		line     int
		col      int
		analyzer string
		msg      string
	}
	var all []finding
	for _, pkg := range pkgs {
		for _, a := range suite.All() {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				all = append(all, finding{p.String(), p.Filename, p.Line, p.Column, name, d.Message})
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "wqrtqlint: analyzer %s failed on %s: %v\n", a.Name, pkg.Path, err)
				return 1
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range all {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.pos, f.msg, f.analyzer)
	}
	if len(all) > 0 {
		return 2
	}
	return 0
}
