package main

import (
	"os"
	"path/filepath"
	"testing"

	"wqrtq/internal/analysis"
	"wqrtq/internal/analysis/load"
	"wqrtq/internal/analysis/suite"
)

// TestModuleClean is the CI invariant: the whole module passes the suite
// with zero findings. Any new violation on a gated path fails this test
// before it fails the vet job.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module's export data")
	}
	pkgs, err := load.Module("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, pkg := range pkgs {
		for _, a := range suite.All() {
			name := a.Name
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report: func(d analysis.Diagnostic) {
					t.Errorf("%s: %s: %s", name, pkg.Fset.Position(d.Pos), d.Message)
				},
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
}

// TestSeededViolationsCaught seeds one violation per analyzer into a
// throwaway GOPATH-style tree using the real gated import paths and checks
// every analyzer fires. This is the end-to-end proof that the suite as
// wired into cmd/wqrtqlint catches regressions, not just that each
// analyzer passes its own fixtures.
func TestSeededViolationsCaught(t *testing.T) {
	srcdir := filepath.Join(t.TempDir(), "src")
	write := func(rel, content string) {
		t.Helper()
		full := filepath.Join(srcdir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}

	// ctxloop, maprange, floateq, hotpathalloc, growthcheck (the hotpath
	// append doubles as its seed), snapshotmut: all gate-on (or ignore
	// gating) at wqrtq/internal/topk.
	write("wqrtq/internal/rtree/rtree.go", `package rtree

type Node struct {
	Scores []float64
}
`)
	write("wqrtq/internal/topk/bad.go", `package topk

import (
	"context"

	"wqrtq/internal/rtree"
)

func Clobber(n *rtree.Node) {
	n.Scores[0] = 0
}

func work(x int) int { return x + 1 }

func Unchecked(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += work(x)
	}
	return s
}

func Assemble(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

func Tie(a, b float64) bool { return a == b }

//wqrtq:hotpath
func Grow(xs []int, x int) []int {
	return append(xs, x)
}
`)
	// lockhold gates on wqrtq/internal/engine.
	write("wqrtq/internal/engine/bad.go", `package engine

import "sync"

type E struct {
	mu sync.Mutex
	ch chan int
}

func (e *E) Send(v int) {
	e.mu.Lock()
	e.ch <- v
	e.mu.Unlock()
}
`)

	pkgs, err := load.Dir(srcdir, "wqrtq/internal/topk", "wqrtq/internal/engine")
	if err != nil {
		t.Fatalf("loading seeded tree: %v", err)
	}
	caught := make(map[string]int)
	for _, pkg := range pkgs {
		for _, a := range suite.All() {
			name := a.Name
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(analysis.Diagnostic) { caught[name]++ },
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range suite.All() {
		if caught[a.Name] == 0 {
			t.Errorf("seeded violation for %s was not caught", a.Name)
		}
	}
}
