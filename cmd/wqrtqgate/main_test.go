package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGateModuleClean is the CI invariant: every //wqrtq:contract in the
// module holds against the compiler's actual diagnostic stream.
func TestGateModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the module with gc diagnostics")
	}
	res, err := runGate("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("runGate: %v", err)
	}
	if len(res.Contracts) == 0 {
		t.Fatal("no contracts collected — the hot-path annotations are gone")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestSeededContractViolationsCaught seeds one violation per contract kind
// (escape, inline loss, BCE loss, heap allocation, stale contract) into a
// throwaway module and checks the gate catches each, while a fully
// contracted clean function produces none. This is the end-to-end proof
// the gate detects regressions — not just that the parser reads canned
// streams.
func TestSeededContractViolationsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a throwaway module with gc diagnostics")
	}
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module gatetest\n\ngo 1.24\n")
	write("seed.go", `package gatetest

var sink []int

// Escape stores p in a global, so p leaks to the heap.
//
//wqrtq:contract noescape(p)
func Escape(p []int) {
	sink = p
}

// NoInline is recursive, which the inliner always refuses.
//
//wqrtq:contract inline
func NoInline(n int) int {
	if n <= 0 {
		return 0
	}
	return n + NoInline(n-1)
}

// BCE indexes with an unprovable index, so a bounds check survives.
//
//wqrtq:contract nobce
func BCE(xs []int, i int) int {
	return xs[i]
}

// Alloc returns a fresh slice, so the make escapes to the heap.
//
//wqrtq:contract noalloc
func Alloc(n int) []int {
	return make([]int, n)
}

// Stale names a parameter that does not exist.
//
//wqrtq:contract noescape(q)
func Stale(p []int) int {
	return len(p)
}

// Clean holds every clause: inlinable, allocation-free, check-free, and p
// only read.
//
//wqrtq:contract inline nobce noalloc noescape(p)
func Clean(p []int) int {
	if len(p) == 0 {
		return 0
	}
	return p[0]
}
`)
	res, err := runGate(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("runGate: %v", err)
	}
	if got, want := len(res.Contracts), 6; got != want {
		t.Fatalf("collected %d contracts, want %d", got, want)
	}
	byKind := make(map[string][]string)
	for _, v := range res.Violations {
		byKind[v.Kind] = append(byKind[v.Kind], v.Func)
		if v.Func == "Clean" {
			t.Errorf("false positive on Clean: %s", v)
		}
	}
	for kind, fn := range map[string]string{
		"noescape": "Escape",
		"inline":   "NoInline",
		"nobce":    "BCE",
		"noalloc":  "Alloc",
		"stale":    "Stale",
	} {
		found := false
		for _, f := range byKind[kind] {
			if f == fn {
				found = true
			}
		}
		if !found {
			t.Errorf("seeded %s violation in %s not caught; %s violations: %v", kind, fn, kind, byKind[kind])
		}
	}
}
