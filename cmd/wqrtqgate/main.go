// Command wqrtqgate is the compiler-contract gate: it compiles the module
// with gc diagnostics enabled (-gcflags='-m=2 -d=ssa/check_bce'), parses
// the position-tagged diagnostic stream into per-function facts (escape
// verdicts, inlining decisions, surviving bounds checks) and checks them
// against every //wqrtq:contract annotation (internal/analysis/contract,
// DESIGN.md §12).
//
//	wqrtqgate [-C dir] [-diag file] [patterns...]
//
// Patterns default to ./... relative to the module root. -diag writes the
// raw diagnostic stream to a file (CI uploads it as an artifact when the
// gate fails). Exit status mirrors wqrtqlint: 0 clean, 1 tool or build
// failure, 2 contract violations.
//
// The gate makes the compiler's optimization decisions part of the checked
// interface: a refactor that re-introduces a heap escape or a bounds check
// into a contracted kernel loop fails CI with a file:line diff instead of
// surfacing weeks later as benchmark drift. Contracts fail closed — an
// annotation whose diagnostics cannot be found at all (function renamed,
// file build-tagged out, parameter dropped) is an error, so a contract can
// never rot into silent vacuity.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		dir  = flag.String("C", ".", "module directory to gate")
		diag = flag.String("diag", "", "write the raw gc diagnostic stream to this file")
	)
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	res, err := runGate(*dir, patterns)
	if *diag != "" && len(res.Stream) > 0 {
		if werr := os.WriteFile(*diag, res.Stream, 0o666); werr != nil {
			fmt.Fprintf(os.Stderr, "wqrtqgate: writing %s: %v\n", *diag, werr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wqrtqgate: %v\n", err)
		os.Exit(1)
	}
	for _, v := range res.Violations {
		fmt.Fprintf(os.Stderr, "%s\n", v)
	}
	if n := len(res.Violations); n > 0 {
		fmt.Fprintf(os.Stderr, "wqrtqgate: %d contract violation(s) across %d contract(s)\n", n, len(res.Contracts))
		os.Exit(2)
	}
	fmt.Printf("wqrtqgate: %d contract(s) hold\n", len(res.Contracts))
}
