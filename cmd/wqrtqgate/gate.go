package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"wqrtq/internal/analysis/contract"
)

// gateResult is one gate run: the contracts found, the violations against
// them, and the raw diagnostic stream (kept for the CI failure artifact).
type gateResult struct {
	Contracts  []contract.Contract
	Violations []contract.Violation
	Stream     []byte
}

// runGate executes the full gate pipeline over moduleDir: resolve the
// compiled file set with `go list`, collect //wqrtq:contract annotations
// from exactly those files (so a build-tagged-out file drops its contracts
// instead of failing them), compile with gc diagnostics, parse the stream
// and check. The diagnostic compile reuses the build cache — gc replays
// its stderr on cache hits — so a warm gate run costs roughly a `go list`.
func runGate(moduleDir string, patterns []string) (gateResult, error) {
	var res gateResult
	files, hasMain, err := compiledFiles(moduleDir, patterns)
	if err != nil {
		return res, err
	}
	res.Contracts, err = contract.Collect(moduleDir, files)
	if err != nil {
		return res, err
	}

	// -o <dir>/ keeps main-package binaries out of the working tree (go
	// build rejects it when the patterns hold no main package); the temp
	// dir is discarded, only the stderr stream matters.
	tmp, err := os.MkdirTemp("", "wqrtqgate")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(tmp)
	args := []string{"build"}
	if hasMain {
		args = append(args, "-o", tmp+string(filepath.Separator))
	}
	args = append(append(args, "-gcflags=-m=2 -d=ssa/check_bce"), patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err = cmd.Run()
	res.Stream = stderr.Bytes()
	if err != nil {
		return res, fmt.Errorf("go %v: %v\n%s", args, err, stderr.String())
	}

	facts, err := contract.ParseDiagnostics(bytes.NewReader(res.Stream))
	if err != nil {
		return res, fmt.Errorf("parsing diagnostic stream: %v", err)
	}
	res.Violations = contract.Check(res.Contracts, facts)
	sort.Slice(res.Violations, func(i, j int) bool {
		a, b := res.Violations[i], res.Violations[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Kind < b.Kind
	})
	return res, nil
}

// compiledFiles returns the non-test Go files `go list` would compile for
// the patterns, relative to moduleDir, and whether any matched package is
// a main package.
func compiledFiles(moduleDir string, patterns []string) (files []string, hasMain bool, err error) {
	args := append([]string{"list", "-json=Name,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, false, fmt.Errorf("go %v: %v\n%s", args, err, stderr.String())
	}
	absModule, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, false, err
	}
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var pkg struct {
			Name    string
			Dir     string
			GoFiles []string
		}
		if err := dec.Decode(&pkg); err != nil {
			return nil, false, fmt.Errorf("decoding go list output: %v", err)
		}
		if pkg.Name == "main" {
			hasMain = true
		}
		for _, f := range pkg.GoFiles {
			rel, err := filepath.Rel(absModule, filepath.Join(pkg.Dir, f))
			if err != nil {
				return nil, false, err
			}
			files = append(files, rel)
		}
	}
	return files, hasMain, nil
}
