// Command experiments regenerates the paper's evaluation (Figures 7–12):
// for every figure it sweeps the Table 1 parameter ranges over the same
// datasets (with synthetic stand-ins for NBA and Household, see DESIGN.md),
// runs MQP, MWK and MQWK, verifies every refinement, and prints the total
// running time and penalty series the paper reports.
//
//	experiments -figure all -scale 0.1 -seed 1 -csv results.csv
//
// Scale multiplies |P|, |S| and |Q|; scale 1 is the paper's configuration
// (hours of compute for the MQWK sweeps), scale 0.05–0.1 reproduces every
// qualitative shape in minutes. EXPERIMENTS.md records the committed runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"wqrtq/internal/experiment"
)

func main() {
	figure := flag.String("figure", "all", "figure to regenerate: 7..12 or all")
	scale := flag.Float64("scale", 0.1, "scale factor for |P|, |S|, |Q| (1 = paper scale)")
	seed := flag.Int64("seed", 1, "random seed")
	csvPath := flag.String("csv", "", "also write results to this CSV file")
	quiet := flag.Bool("quiet", false, "suppress per-cell progress")
	flag.Parse()

	cfg := experiment.Config{Scale: *scale, Seed: *seed}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	runner := experiment.NewRunner(cfg)

	var rows []experiment.Row
	var err error
	if *figure == "all" {
		rows, err = runner.RunAll()
	} else {
		var fig int
		fig, err = strconv.Atoi(*figure)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bad -figure %q\n", *figure)
			os.Exit(2)
		}
		rows, err = runner.RunFigure(fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	experiment.PrintTable(os.Stdout, rows)
	experiment.CheckShapes(rows).Print(os.Stdout)
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiment.WriteCSV(f, rows); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(rows), *csvPath)
	}
}
