package wqrtq

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Figures 7–12), each sweeping the same parameter as the figure and
// reporting ns/op (the paper's "total running time") plus the achieved
// penalty as a custom metric. Scales are reduced relative to Table 1 so the
// whole suite runs in minutes; cmd/experiments reproduces the full sweeps
// at configurable scale, and EXPERIMENTS.md records the shape comparison.
//
// Ablation benchmarks cover the design choices called out in DESIGN.md §6:
// interior-point QP vs grid search, count-pruned rank counting vs scanning,
// MQWK's traversal reuse vs per-sample traversal, RTA buffer pruning vs
// naive reverse top-k, and STR bulk loading vs one-by-one insertion.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wqrtq/internal/core"
	"wqrtq/internal/dataset"
	"wqrtq/internal/dominance"
	"wqrtq/internal/rtopk"
	"wqrtq/internal/rtree"
	"wqrtq/internal/sample"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// Bench-scale defaults standing in for Table 1 (|P| 100K→20K, |S| 800→64).
const (
	benchN      = 20000
	benchDim    = 3
	benchK      = 10
	benchRank   = 101
	benchWm     = 1
	benchSample = 64
)

type benchEnv struct {
	ds *dataset.Dataset
	tr *rtree.Tree
	wl dataset.Workload
	pm core.PenaltyModel
}

var benchCache = map[string]*benchEnv{}

func env(b *testing.B, dist string, n, d, k, rank, nWm int) *benchEnv {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%d/%d/%d/%d", dist, n, d, k, rank, nWm)
	if e, ok := benchCache[key]; ok {
		return e
	}
	ds, err := dataset.ByName(dist, n, d, 1)
	if err != nil {
		b.Fatal(err)
	}
	wl, err := dataset.MakeWhyNot(ds, k, rank, nWm, 1)
	if err != nil {
		b.Fatal(err)
	}
	e := &benchEnv{ds: ds, tr: ds.Tree(), wl: wl, pm: core.DefaultPenaltyModel()}
	benchCache[key] = e
	return e
}

// benchAlgos runs the three WQRTQ algorithms as sub-benchmarks of one cell.
func benchAlgos(b *testing.B, e *benchEnv, sampleSize int) {
	b.Run("MQP", func(b *testing.B) {
		var penalty float64
		for i := 0; i < b.N; i++ {
			res, err := core.MQP(e.tr, e.wl.Q, e.wl.K, e.wl.Wm, e.pm)
			if err != nil {
				b.Fatal(err)
			}
			penalty = res.Penalty
		}
		b.ReportMetric(penalty, "penalty")
	})
	b.Run("MWK", func(b *testing.B) {
		var penalty float64
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(int64(i + 1)))
			res, err := core.MWK(e.tr, e.wl.Q, e.wl.K, e.wl.Wm, sampleSize, rng, e.pm)
			if err != nil {
				b.Fatal(err)
			}
			penalty = res.Penalty
		}
		b.ReportMetric(penalty, "penalty")
	})
	b.Run("MQWK", func(b *testing.B) {
		var penalty float64
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(int64(i + 1)))
			res, err := core.MQWK(e.tr, e.wl.Q, e.wl.K, e.wl.Wm, sampleSize, sampleSize, rng, e.pm)
			if err != nil {
				b.Fatal(err)
			}
			penalty = res.Penalty
		}
		b.ReportMetric(penalty, "penalty")
	})
}

// BenchmarkFig07Dimensionality: WQRTQ cost vs. dimensionality (Figure 7).
func BenchmarkFig07Dimensionality(b *testing.B) {
	for _, d := range []int{2, 3, 4, 5} {
		for _, dist := range []string{"independent", "anticorrelated"} {
			b.Run(fmt.Sprintf("%s/d=%d", dist, d), func(b *testing.B) {
				benchAlgos(b, env(b, dist, benchN, d, benchK, benchRank, benchWm), benchSample)
			})
		}
	}
}

// BenchmarkFig08Cardinality: WQRTQ cost vs. dataset cardinality (Figure 8).
func BenchmarkFig08Cardinality(b *testing.B) {
	for _, n := range []int{10000, 50000, 100000} {
		for _, dist := range []string{"independent", "anticorrelated"} {
			b.Run(fmt.Sprintf("%s/n=%d", dist, n), func(b *testing.B) {
				benchAlgos(b, env(b, dist, n, benchDim, benchK, benchRank, benchWm), benchSample)
			})
		}
	}
}

// BenchmarkFig09K: WQRTQ cost vs. k (Figure 9).
func BenchmarkFig09K(b *testing.B) {
	for _, k := range []int{10, 30, 50} {
		for _, dist := range []string{"household", "nba", "independent", "anticorrelated"} {
			b.Run(fmt.Sprintf("%s/k=%d", dist, k), func(b *testing.B) {
				benchAlgos(b, env(b, dist, benchN, benchDim, k, benchRank, benchWm), benchSample)
			})
		}
	}
}

// BenchmarkFig10Rank: WQRTQ cost vs. actual ranking of q under Wm
// (Figure 10).
func BenchmarkFig10Rank(b *testing.B) {
	for _, rank := range []int{11, 101, 1001} {
		for _, dist := range []string{"household", "nba", "independent", "anticorrelated"} {
			b.Run(fmt.Sprintf("%s/rank=%d", dist, rank), func(b *testing.B) {
				benchAlgos(b, env(b, dist, benchN, benchDim, benchK, rank, benchWm), benchSample)
			})
		}
	}
}

// BenchmarkFig11WmSize: WQRTQ cost vs. |Wm| (Figure 11).
func BenchmarkFig11WmSize(b *testing.B) {
	for _, m := range []int{1, 3, 5} {
		for _, dist := range []string{"household", "nba", "independent", "anticorrelated"} {
			b.Run(fmt.Sprintf("%s/wm=%d", dist, m), func(b *testing.B) {
				benchAlgos(b, env(b, dist, benchN, benchDim, benchK, benchRank, m), benchSample)
			})
		}
	}
}

// BenchmarkFig12SampleSize: WQRTQ cost vs. sample size (Figure 12). MQP is
// included even though it ignores the sample size — exactly as in the
// paper's figure, where its curve is flat.
func BenchmarkFig12SampleSize(b *testing.B) {
	for _, s := range []int{16, 64, 256} {
		for _, dist := range []string{"household", "nba", "independent", "anticorrelated"} {
			b.Run(fmt.Sprintf("%s/S=%d", dist, s), func(b *testing.B) {
				benchAlgos(b, env(b, dist, benchN, benchDim, benchK, benchRank, benchWm), s)
			})
		}
	}
}

// --- Ablations (DESIGN.md §6) ----------------------------------------------

// BenchmarkAblationQPvsGrid compares MQP's interior-point solve against a
// brute-force grid search over the 2-D box [0, q] (the naive alternative to
// quadratic programming).
func BenchmarkAblationQPvsGrid(b *testing.B) {
	e := env(b, "independent", benchN, 2, benchK, benchRank, benchWm)
	b.Run("InteriorPointQP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MQP(e.tr, e.wl.Q, e.wl.K, e.wl.Wm, e.pm); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GridSearch", func(b *testing.B) {
		kth := make([]topk.Result, len(e.wl.Wm))
		for i, w := range e.wl.Wm {
			kth[i], _ = topk.KthPoint(e.tr, w, e.wl.K)
		}
		for i := 0; i < b.N; i++ {
			gridSearchQ(e.wl.Q, e.wl.Wm, kth, 200)
		}
	})
}

// gridSearchQ scans a uniform grid of the box [0, q] for the feasible point
// closest to q.
func gridSearchQ(q vec.Point, wm []vec.Weight, kth []topk.Result, steps int) vec.Point {
	best := vec.Point(nil)
	bestDist := -1.0
	cur := make(vec.Point, len(q))
	for i := 0; i <= steps; i++ {
		cur[0] = q[0] * float64(i) / float64(steps)
		for j := 0; j <= steps; j++ {
			cur[1] = q[1] * float64(j) / float64(steps)
			ok := true
			for m, w := range wm {
				if vec.Score(w, cur) > kth[m].Score {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			d := vec.Dist(cur, q)
			if bestDist < 0 || d < bestDist {
				bestDist = d
				best = vec.Clone(cur)
			}
		}
	}
	return best
}

// BenchmarkAblationRankCounting compares the count-pruned rank search
// against a progressive scan and a linear scan.
func BenchmarkAblationRankCounting(b *testing.B) {
	e := env(b, "independent", benchN, benchDim, benchK, benchRank, benchWm)
	w := e.wl.Wm[0]
	fq := vec.Score(w, e.wl.Q)
	b.Run("CountPruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topk.Rank(e.tr, w, fq)
		}
	})
	b.Run("ProgressiveScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			it := topk.NewIterator(e.tr, w)
			r := 1
			for {
				res, ok := it.Next()
				if !ok || res.Score >= fq {
					break
				}
				r++
			}
		}
	})
	b.Run("LinearScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topk.RankNaive(e.ds.Points, w, fq)
		}
	})
}

// BenchmarkAblationReuse isolates the §4.4 reuse technique: classifying a
// cached candidate set per sample query point versus re-traversing the
// R-tree for each.
func BenchmarkAblationReuse(b *testing.B) {
	e := env(b, "independent", benchN, benchDim, benchK, benchRank, benchWm)
	rng := rand.New(rand.NewSource(1))
	mqp, err := core.MQP(e.tr, e.wl.Q, e.wl.K, e.wl.Wm, e.pm)
	if err != nil {
		b.Fatal(err)
	}
	qSamples := sample.Box(rng, mqp.RefinedQ, e.wl.Q, 32)
	b.Run("WithReuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cands, _ := dominance.Candidates(e.tr, e.wl.Q)
			for _, qp := range qSamples {
				dominance.Classify(cands, qp)
			}
		}
	})
	b.Run("WithoutReuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, qp := range qSamples {
				dominance.FindIncom(e.tr, qp)
			}
		}
	})
}

// BenchmarkAblationRTA compares buffer-pruned bichromatic reverse top-k
// against naive per-vector evaluation.
func BenchmarkAblationRTA(b *testing.B) {
	e := env(b, "independent", benchN, benchDim, benchK, benchRank, benchWm)
	rng := rand.New(rand.NewSource(2))
	W := make([]vec.Weight, 200)
	for i := range W {
		W[i] = sample.RandSimplex(rng, benchDim)
	}
	b.Run("RTA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtopk.Bichromatic(e.tr, W, e.wl.Q, e.wl.K)
		}
	})
	b.Run("Naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtopk.BichromaticNaive(e.ds.Points, W, e.wl.Q, e.wl.K)
		}
	})
}

// BenchmarkAblationBulkLoad compares STR packing against one-by-one R*
// insertion.
func BenchmarkAblationBulkLoad(b *testing.B) {
	ds := dataset.Independent(benchN, benchDim, 3)
	b.Run("STR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtree.Bulk(ds.Points, nil)
		}
	})
	b.Run("Insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := rtree.New(benchDim)
			for j, p := range ds.Points {
				tr.Insert(p, int32(j))
			}
		}
	})
}

// --- Micro-benchmarks of the substrates -------------------------------------

// TestTopKAllocsPerOp guards the heap-loop allocation work: the branch-
// and-bound search recycles its heap through a pool and keeps heap items
// pointer-light, so one bounded top-k costs a handful of allocations (the
// result slice, the iterator, and amortized pool/heap growth) instead of
// one boxed heap entry per visited tree entry. A regression here silently
// multiplies the cost of every RTA evaluation.
func TestTopKAllocsPerOp(t *testing.T) {
	ds := dataset.Independent(5000, benchDim, 1)
	tr := ds.Tree()
	w := vec.Weight{0.2, 0.3, 0.5}
	topk.TopK(tr, w, benchK) // warm the heap pool
	allocs := testing.AllocsPerRun(200, func() {
		topk.TopK(tr, w, benchK)
	})
	// Measured ~3 allocs/op; 6 leaves headroom for runtime variation while
	// still failing fast if per-entry boxing ever returns (hundreds).
	if allocs > 6 {
		t.Fatalf("topk.TopK allocates %.1f objects per op, want <= 6", allocs)
	}
	fq := vec.Score(w, vec.Point{0.3, 0.3, 0.3})
	rankAllocs := testing.AllocsPerRun(200, func() {
		topk.Rank(tr, w, fq)
	})
	if rankAllocs > 1 {
		t.Fatalf("topk.Rank allocates %.1f objects per op, want <= 1", rankAllocs)
	}
}

func BenchmarkMicroTopK(b *testing.B) {
	e := env(b, "independent", benchN, benchDim, benchK, benchRank, benchWm)
	w := e.wl.Wm[0]
	for i := 0; i < b.N; i++ {
		topk.TopK(e.tr, w, benchK)
	}
}

func BenchmarkMicroKthPoint(b *testing.B) {
	e := env(b, "independent", benchN, benchDim, benchK, benchRank, benchWm)
	w := e.wl.Wm[0]
	for i := 0; i < b.N; i++ {
		topk.KthPoint(e.tr, w, benchK)
	}
}

func BenchmarkMicroFindIncom(b *testing.B) {
	e := env(b, "independent", benchN, benchDim, benchK, benchRank, benchWm)
	for i := 0; i < b.N; i++ {
		dominance.FindIncom(e.tr, e.wl.Q)
	}
}

func BenchmarkMicroWeightSampler(b *testing.B) {
	e := env(b, "independent", benchN, benchDim, benchK, benchRank, benchWm)
	sets := dominance.FindIncom(e.tr, e.wl.Q)
	inc := make([]vec.Point, len(sets.I))
	for i, c := range sets.I {
		inc[i] = c.Point
	}
	s, err := sample.NewWeightSampler(e.wl.Q, inc)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(rng)
	}
}

// BenchmarkAblationMWKStrategy compares the paper's two §4.3 candidate
// strategies: the Lemma 6 scan (MWK, default) and the per-vector closest
// replacement (MWKPerVector). Same sample budget; the scan dominates on
// penalty at equal cost.
func BenchmarkAblationMWKStrategy(b *testing.B) {
	e := env(b, "independent", benchN, benchDim, benchK, benchRank, 3)
	b.Run("Lemma6Scan", func(b *testing.B) {
		var penalty float64
		for i := 0; i < b.N; i++ {
			res, err := core.MWK(e.tr, e.wl.Q, e.wl.K, e.wl.Wm, 256, rand.New(rand.NewSource(int64(i+1))), e.pm)
			if err != nil {
				b.Fatal(err)
			}
			penalty = res.Penalty
		}
		b.ReportMetric(penalty, "penalty")
	})
	b.Run("PerVector", func(b *testing.B) {
		var penalty float64
		for i := 0; i < b.N; i++ {
			res, err := core.MWKPerVector(e.tr, e.wl.Q, e.wl.K, e.wl.Wm, 256, rand.New(rand.NewSource(int64(i+1))), e.pm)
			if err != nil {
				b.Fatal(err)
			}
			penalty = res.Penalty
		}
		b.ReportMetric(penalty, "penalty")
	})
}

// BenchmarkAblationMQWKParallel measures the speedup of parallelizing
// Algorithm 3 across workers (the library's extension for the paper's
// "larger datasets" future-work direction).
func BenchmarkAblationMQWKParallel(b *testing.B) {
	e := env(b, "independent", benchN, benchDim, benchK, benchRank, benchWm)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MQWKParallel(e.tr, e.wl.Q, e.wl.K, e.wl.Wm, benchSample, benchSample, 1, workers, e.pm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBichromaticParallel measures the reverse top-k fan-out.
func BenchmarkAblationBichromaticParallel(b *testing.B) {
	e := env(b, "independent", benchN, benchDim, benchK, benchRank, benchWm)
	rng := rand.New(rand.NewSource(5))
	W := make([]vec.Weight, 400)
	for i := range W {
		W[i] = sample.RandSimplex(rng, benchDim)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rtopk.BichromaticParallel(e.tr, W, e.wl.Q, e.wl.K, workers)
			}
		})
	}
}

// BenchmarkEngineReverseTopK measures serving-engine throughput for
// bichromatic reverse top-k requests at 1, 4 and 16 concurrent clients over
// the UN (independent) dataset. Each request carries its own small
// weighting-vector set against a shared competitive query point — the shape
// of production reverse top-k traffic ("which of these customer segments
// would see my product?"). The result cache is disabled so the measurement
// excludes memoization; ns/op is the end-to-end latency-throughput inverse:
// requests/sec = 1e9 / (ns/op).
//
// Two batching effects drive the client scaling, and the linger dimension
// separates them. With linger=2ms (throughput-tuned serving), a lone client
// pays the full linger per request while 16 concurrent clients amortize one
// window across a whole batch — the classic latency-for-throughput trade,
// and the dominant term. With linger=0 (latency-tuned), only requests
// already queued coalesce, so any remaining scaling isolates the merged-RTA
// effect: batched requests sharing (q, k) run as one traversal whose
// threshold buffer prunes across the union of their weight sets.
func BenchmarkEngineReverseTopK(b *testing.B) {
	ds := dataset.Independent(benchN, benchDim, 1)
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}
	ix, err := NewIndex(pts)
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{0.02, 0.03, 0.02}
	const vectorsPerRequest = 2
	rng := rand.New(rand.NewSource(11))
	workload := make([][][]float64, 512)
	for i := range workload {
		W := make([][]float64, vectorsPerRequest)
		for j := range W {
			W[j] = sample.RandSimplex(rng, benchDim)
		}
		workload[i] = W
	}
	for _, linger := range []time.Duration{2 * time.Millisecond, 0} {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("linger=%v/clients=%d", linger, clients), func(b *testing.B) {
				e, err := NewEngine(ix.Clone(), EngineConfig{
					Workers:     1,
					MaxBatch:    64,
					BatchLinger: linger,
					CacheSize:   -1, // exclude memoization from the measurement
				})
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				var next atomic.Int64
				b.ResetTimer()
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := next.Add(1)
							if i > int64(b.N) {
								return
							}
							if _, _, err := e.ReverseTopK(workload[i%int64(len(workload))], q, benchK); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}

// --- Context-path overhead guard (DESIGN.md, "Cooperative cancellation") ---
//
// The positional API now delegates to the context path, so these benchmarks
// bound what the redesign added to the hot read paths: Positional vs Request
// isolates the wrapper + request-struct cost, and RequestWithDeadline arms
// the cancellation tickers (a Background context leaves them as a single nil
// check per interval). The guard target is <2% overhead vs Positional.

func benchIndex(b *testing.B) *Index {
	b.Helper()
	ds := dataset.Independent(benchN, benchDim, 1)
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}
	ix, err := NewIndex(pts)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

func BenchmarkContextOverheadTopK(b *testing.B) {
	ix := benchIndex(b)
	w := []float64{0.2, 0.3, 0.5}
	b.Run("Positional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.TopK(w, benchK); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Request", func(b *testing.B) {
		ctx := context.Background()
		req := TopKRequest{W: w, K: benchK}
		for i := 0; i < b.N; i++ {
			if _, err := ix.TopKCtx(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RequestWithDeadline", func(b *testing.B) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		defer cancel()
		req := TopKRequest{W: w, K: benchK}
		for i := 0; i < b.N; i++ {
			if _, err := ix.TopKCtx(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkContextOverheadReverseTopK(b *testing.B) {
	ix := benchIndex(b)
	rng := rand.New(rand.NewSource(9))
	W := make([][]float64, 200)
	for i := range W {
		W[i] = sample.RandSimplex(rng, benchDim)
	}
	q := []float64{0.02, 0.03, 0.02}
	b.Run("Positional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.ReverseTopK(W, q, benchK); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Request", func(b *testing.B) {
		ctx := context.Background()
		req := ReverseTopKRequest{Q: q, K: benchK, W: W}
		for i := 0; i < b.N; i++ {
			if _, err := ix.ReverseTopKCtx(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RequestWithDeadline", func(b *testing.B) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		defer cancel()
		req := ReverseTopKRequest{Q: q, K: benchK, W: W}
		for i := 0; i < b.N; i++ {
			if _, err := ix.ReverseTopKCtx(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Shard scaling (internal/shard scatter-gather) --------------------------

// BenchmarkShardScaling sweeps the shard count over the three hot query
// endpoints. Each per-shard search does ~1/S of the monolithic
// branch-and-bound work and the searches run concurrently, so on a machine
// with >= 2 cores throughput improves with S until S exceeds the core
// count; on one core the sweep instead measures the scatter-gather
// coordination overhead. The committed BENCH_shard.json snapshot records
// one run of this benchmark together with GOMAXPROCS, so the trajectory
// distinguishes the two regimes.
func BenchmarkShardScaling(b *testing.B) {
	ds := dataset.Independent(benchN, benchDim, 1)
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}
	rng := rand.New(rand.NewSource(13))
	W := make([][]float64, 200)
	for i := range W {
		W[i] = sample.RandSimplex(rng, benchDim)
	}
	wnW := W[:20]
	w := []float64{0.2, 0.3, 0.5}
	q := []float64{0.02, 0.03, 0.02}
	wnOpts := Options{SampleSize: 16, Seed: 1}
	for _, shards := range []int{1, 2, 4, 8} {
		ix, err := NewIndexSharded(pts, shards)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d/TopK", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ix.TopK(w, benchK); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("shards=%d/ReverseTopK", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ix.ReverseTopK(W, q, benchK); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("shards=%d/WhyNot", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ix.WhyNot(q, benchK, wnW, wnOpts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineTopKCached measures the cache-hit fast path: a hot query
// served straight from the (epoch, query)-keyed LRU.
func BenchmarkEngineTopKCached(b *testing.B) {
	ds := dataset.Independent(benchN, benchDim, 1)
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}
	ix, err := NewIndex(pts)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(ix, EngineConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	w := []float64{0.2, 0.3, 0.5}
	if _, _, err := e.TopK(w, benchK); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.TopK(w, benchK); err != nil {
			b.Fatal(err)
		}
	}
}
