package wqrtq

// The context-first request/response API: every public query path of Index
// and Engine is reachable through a *Ctx method taking a context.Context and
// a request struct, returning a response struct carrying the snapshot epoch
// and the wall-clock time spent. These are the primary entry points; the
// positional signatures (Index.TopK, Index.WhyNot, Engine.ReverseTopK, ...)
// are thin wrappers delegating here with context.Background().
//
// Cancellation is cooperative: the long-running layers — the branch-and-
// bound heap loop of internal/topk, the RTA loop of internal/rtopk, and the
// |S| x |Q| sampling loops of internal/core — poll ctx at bounded intervals
// (every N heap pops / samples), so a canceled or deadline-expired request
// unwinds within one check interval while the uncancelable fast path
// (context.Background) pays about one branch per interval. See DESIGN.md,
// "Context-first API and cooperative cancellation".

import (
	"context"
	"time"

	"wqrtq/internal/core"
	"wqrtq/internal/vec"
)

// TopKRequest asks for the k best points under the weighting vector W.
type TopKRequest struct {
	W []float64
	K int
}

// TopKResponse is the answer to a TopKRequest.
type TopKResponse struct {
	// Epoch identifies the snapshot that produced the result.
	Epoch uint64
	// Elapsed is the wall-clock time the query spent inside the callee
	// (for Engine requests this includes queueing and batching time).
	Elapsed time.Duration
	// Result holds the k best points in rank order.
	Result []Ranked
}

// RankRequest asks for the 1-based rank the query point Q would take under
// the weighting vector W.
type RankRequest struct {
	W []float64
	Q []float64
}

// RankResponse is the answer to a RankRequest.
type RankResponse struct {
	Epoch   uint64
	Elapsed time.Duration
	Rank    int
}

// ReverseTopKRequest asks the bichromatic reverse top-k query: which of the
// weighting vectors in W rank Q within their top-K?
type ReverseTopKRequest struct {
	Q []float64
	K int
	W [][]float64
}

// ReverseTopKResponse is the answer to a ReverseTopKRequest.
type ReverseTopKResponse struct {
	Epoch   uint64
	Elapsed time.Duration
	// Result holds the indices into W of the matching vectors, ascending.
	Result []int
	// RTA reports the evaluation's pruning statistics. For engine requests
	// served from the result cache or a merged same-(q, k) group, the
	// statistics are those of the computation that produced the shared
	// result.
	RTA RTAStats
}

// ExplainRequest asks, for each weighting vector in Wm, which points score
// strictly better than Q (the first aspect of a why-not question, §3).
type ExplainRequest struct {
	Q  []float64
	Wm [][]float64
}

// ExplainResponse is the answer to an ExplainRequest.
type ExplainResponse struct {
	Epoch        uint64
	Elapsed      time.Duration
	Explanations [][]Ranked
}

// ModifyQueryRequest asks for the first refinement solution (MQP): the
// minimum-penalty modification of the query point Q so that every vector in
// Wm ranks the refined point within its top-K.
type ModifyQueryRequest struct {
	Q    []float64
	K    int
	Wm   [][]float64
	Opts Options
}

// ModifyQueryResponse is the answer to a ModifyQueryRequest.
type ModifyQueryResponse struct {
	Epoch      uint64
	Elapsed    time.Duration
	Refinement QueryRefinement
}

// ModifyPreferencesRequest asks for the second refinement solution (MWK):
// the minimum-penalty modification of Wm and K so that Q enters the top-k'
// of every refined vector.
type ModifyPreferencesRequest struct {
	Q    []float64
	K    int
	Wm   [][]float64
	Opts Options
}

// ModifyPreferencesResponse is the answer to a ModifyPreferencesRequest.
type ModifyPreferencesResponse struct {
	Epoch      uint64
	Elapsed    time.Duration
	Refinement PreferenceRefinement
}

// ModifyAllRequest asks for the third refinement solution (MQWK): the
// simultaneous minimum-penalty modification of Q, Wm and K.
type ModifyAllRequest struct {
	Q    []float64
	K    int
	Wm   [][]float64
	Opts Options
}

// ModifyAllResponse is the answer to a ModifyAllRequest.
type ModifyAllResponse struct {
	Epoch      uint64
	Elapsed    time.Duration
	Refinement FullRefinement
}

// WhyNotRequest asks the complete why-not pipeline for the reverse top-k
// query of Q over W: result, missing vectors, explanations, and all three
// refinements.
type WhyNotRequest struct {
	Q    []float64
	K    int
	W    [][]float64
	Opts Options
}

// WhyNotResponse is the answer to a WhyNotRequest.
type WhyNotResponse struct {
	Epoch   uint64
	Elapsed time.Duration
	Answer  *WhyNotAnswer
}

// TopKCtx answers a TopKRequest with cooperative cancellation: the
// branch-and-bound search polls ctx every few dozen heap pops and returns
// ctx.Err() once the context ends.
func (ix *Index) TopKCtx(ctx context.Context, req TopKRequest) (TopKResponse, error) {
	start := time.Now()
	resp := TopKResponse{Epoch: ix.Epoch()}
	if err := ix.checkWeight(req.W); err != nil {
		return resp, err
	}
	if req.K <= 0 {
		return resp, errPositiveK
	}
	if err := ctx.Err(); err != nil {
		return resp, err
	}
	rs, err := ix.topkResults(ctx, vec.Weight(req.W), req.K)
	if err != nil {
		return resp, err
	}
	resp.Result = toRanked(rs)
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// RankCtx answers a RankRequest with cooperative cancellation.
func (ix *Index) RankCtx(ctx context.Context, req RankRequest) (RankResponse, error) {
	start := time.Now()
	resp := RankResponse{Epoch: ix.Epoch()}
	if err := ix.checkWeight(req.W); err != nil {
		return resp, err
	}
	if err := ix.checkPoint(req.Q); err != nil {
		return resp, err
	}
	w := vec.Weight(req.W)
	if err := ctx.Err(); err != nil {
		return resp, err
	}
	r, err := ix.rankResult(ctx, w, vec.Score(w, vec.Point(req.Q)))
	if err != nil {
		return resp, err
	}
	resp.Rank = r
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// ReverseTopKCtx answers a ReverseTopKRequest with cooperative cancellation:
// the RTA loop polls ctx between vector evaluations and inside each
// evaluation's heap loop.
func (ix *Index) ReverseTopKCtx(ctx context.Context, req ReverseTopKRequest) (ReverseTopKResponse, error) {
	start := time.Now()
	resp := ReverseTopKResponse{Epoch: ix.Epoch()}
	ws, err := ix.checkWeights(req.W)
	if err != nil {
		return resp, err
	}
	if err := ix.checkPoint(req.Q); err != nil {
		return resp, err
	}
	if req.K <= 0 {
		return resp, errPositiveK
	}
	if err := ctx.Err(); err != nil {
		return resp, err
	}
	res, stats, err := ix.bichromatic(ctx, ws, req.Q, req.K)
	if err != nil {
		return resp, err
	}
	resp.Result = res
	resp.RTA = toRTAStats(stats)
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// ExplainCtx answers an ExplainRequest with cooperative cancellation.
func (ix *Index) ExplainCtx(ctx context.Context, req ExplainRequest) (ExplainResponse, error) {
	start := time.Now()
	resp := ExplainResponse{Epoch: ix.Epoch()}
	ws, err := ix.checkWeights(req.Wm)
	if err != nil {
		return resp, err
	}
	if err := ix.checkPoint(req.Q); err != nil {
		return resp, err
	}
	if err := ctx.Err(); err != nil {
		return resp, err
	}
	ex, err := ix.explainResults(ctx, req.Q, ws)
	if err != nil {
		return resp, err
	}
	out := make([][]Ranked, len(ex))
	for i, e := range ex {
		out[i] = toRanked(e)
	}
	resp.Explanations = out
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// ModifyQueryCtx answers a ModifyQueryRequest (Algorithm 1, MQP) with
// cooperative cancellation of the per-vector top k-th searches.
func (ix *Index) ModifyQueryCtx(ctx context.Context, req ModifyQueryRequest) (ModifyQueryResponse, error) {
	start := time.Now()
	resp := ModifyQueryResponse{Epoch: ix.Epoch()}
	ws, err := ix.checkWeights(req.Wm)
	if err != nil {
		return resp, err
	}
	pm, _, _, _, err := req.Opts.resolve()
	if err != nil {
		return resp, err
	}
	if err := ctx.Err(); err != nil {
		return resp, err
	}
	res, err := core.MQPSrcCtx(ctx, ix.tree, ix.refineSource(req.Q, req.K), req.Q, req.K, ws, pm)
	if err != nil {
		return resp, err
	}
	resp.Refinement = QueryRefinement{Q: res.RefinedQ, Penalty: res.Penalty}
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// ModifyPreferencesCtx answers a ModifyPreferencesRequest (Algorithm 2, MWK)
// with cooperative cancellation of the |S|-sample loop.
func (ix *Index) ModifyPreferencesCtx(ctx context.Context, req ModifyPreferencesRequest) (ModifyPreferencesResponse, error) {
	start := time.Now()
	resp := ModifyPreferencesResponse{Epoch: ix.Epoch()}
	ws, err := ix.checkWeights(req.Wm)
	if err != nil {
		return resp, err
	}
	pm, s, _, seed, err := req.Opts.resolve()
	if err != nil {
		return resp, err
	}
	if err := ctx.Err(); err != nil {
		return resp, err
	}
	run := core.MWKSrcCtx
	if req.Opts.PerVector {
		run = core.MWKPerVectorSrcCtx
	}
	res, err := run(ctx, ix.tree, ix.refineSource(req.Q, req.K), req.Q, req.K, ws, s, rngFor(seed), pm)
	if err != nil {
		return resp, err
	}
	resp.Refinement = PreferenceRefinement{
		Wm:      weightsToFloats(res.RefinedWm),
		K:       res.RefinedK,
		Penalty: res.Penalty,
		KMax:    res.KMax,
	}
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// ModifyAllCtx answers a ModifyAllRequest (Algorithm 3, MQWK) with
// cooperative cancellation: ctx is polled before every sample query point
// and inside every sampling loop, across all workers when parallel.
func (ix *Index) ModifyAllCtx(ctx context.Context, req ModifyAllRequest) (ModifyAllResponse, error) {
	start := time.Now()
	resp := ModifyAllResponse{Epoch: ix.Epoch()}
	ws, err := ix.checkWeights(req.Wm)
	if err != nil {
		return resp, err
	}
	pm, s, qs, seed, err := req.Opts.resolve()
	if err != nil {
		return resp, err
	}
	if err := ctx.Err(); err != nil {
		return resp, err
	}
	var res core.MQWKResult
	src := ix.refineSource(req.Q, req.K)
	if req.Opts.Workers != 0 {
		workers := req.Opts.Workers
		if workers < 0 {
			workers = 0 // MQWKParallel resolves 0 to GOMAXPROCS
		}
		res, err = core.MQWKParallelSrcCtx(ctx, ix.tree, src, req.Q, req.K, ws, s, qs, seed, workers, pm)
	} else {
		res, err = core.MQWKSrcCtx(ctx, ix.tree, src, req.Q, req.K, ws, s, qs, rngFor(seed), pm)
	}
	if err != nil {
		return resp, err
	}
	resp.Refinement = FullRefinement{
		Q:       res.RefinedQ,
		Wm:      weightsToFloats(res.RefinedWm),
		K:       res.RefinedK,
		Penalty: res.Penalty,
	}
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// WhyNotCtx answers a WhyNotRequest — the complete pipeline of Index.WhyNot
// — with cooperative cancellation threaded through every stage: the reverse
// top-k evaluation, the explanations, and all three refinement algorithms.
// A canceled request returns ctx.Err() within one check interval of the
// stage it was in.
func (ix *Index) WhyNotCtx(ctx context.Context, req WhyNotRequest) (WhyNotResponse, error) {
	start := time.Now()
	resp := WhyNotResponse{Epoch: ix.Epoch()}
	rt, err := ix.ReverseTopKCtx(ctx, ReverseTopKRequest{Q: req.Q, K: req.K, W: req.W})
	if err != nil {
		return resp, err
	}
	ans := &WhyNotAnswer{Result: rt.Result, RTA: rt.RTA}
	in := make(map[int]bool, len(rt.Result))
	for _, i := range rt.Result {
		in[i] = true
	}
	var missing [][]float64
	for i := range req.W {
		if !in[i] {
			ans.Missing = append(ans.Missing, i)
			missing = append(missing, req.W[i])
		}
	}
	if len(missing) == 0 {
		resp.Answer = ans
		resp.Elapsed = time.Since(start)
		return resp, nil
	}
	ex, err := ix.ExplainCtx(ctx, ExplainRequest{Q: req.Q, Wm: missing})
	if err != nil {
		return resp, err
	}
	ans.Explanations = ex.Explanations
	// The three refinements run fused (core.WhyNotRefineSrcCtx): one
	// candidate traversal serves both sampling solutions and MQWK reuses
	// the MQP optimum, with every answer bit-identical to the standalone
	// ModifyQueryCtx / ModifyPreferencesCtx / ModifyAllCtx calls.
	pm, s, qs, seed, err := req.Opts.resolve()
	if err != nil {
		return resp, err
	}
	ref, err := core.WhyNotRefineSrcCtx(ctx, ix.tree, ix.refineSource(req.Q, req.K),
		req.Q, req.K, toWeights(missing), s, qs, seed, req.Opts.Workers, req.Opts.PerVector, pm)
	if err != nil {
		return resp, err
	}
	ans.ModifiedQuery = QueryRefinement{Q: ref.MQP.RefinedQ, Penalty: ref.MQP.Penalty}
	ans.ModifiedPreferences = PreferenceRefinement{
		Wm:      weightsToFloats(ref.MWK.RefinedWm),
		K:       ref.MWK.RefinedK,
		Penalty: ref.MWK.Penalty,
		KMax:    ref.MWK.KMax,
	}
	ans.ModifiedAll = FullRefinement{
		Q:       ref.MQWK.RefinedQ,
		Wm:      weightsToFloats(ref.MQWK.RefinedWm),
		K:       ref.MQWK.RefinedK,
		Penalty: ref.MQWK.Penalty,
	}
	resp.Answer = ans
	resp.Elapsed = time.Since(start)
	return resp, nil
}
