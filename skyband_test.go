package wqrtq

// Differential property suite for the k-skyband sub-index: with the
// sub-index enabled (the default), every endpoint must answer bit-
// identically to the -skyband=off ablation — same top-k score sequences
// via RTA, same ranks, same reverse top-k index sets, same explanations,
// and the same why-not penalties down to the last bit (which exercises the
// lazy sampler's stream identity and the hybrid rank counting) — across
// UN/CO/AC workloads, shard counts including 1, and mutation streams that
// invalidate the epoch cache.

import (
	"math/rand"
	"reflect"
	"testing"

	"wqrtq/internal/dataset"
	"wqrtq/internal/sample"
)

// skybandPair builds two identical indexes over pts with s shards, one
// with the sub-index on (default) and one ablated off.
func skybandPair(t *testing.T, pts [][]float64, s int) (on, off *Index) {
	t.Helper()
	on, err := NewIndexSharded(pts, s)
	if err != nil {
		t.Fatal(err)
	}
	if !on.SkybandEnabled() {
		t.Fatal("skyband must be enabled by default")
	}
	off, err = NewIndexSharded(pts, s)
	if err != nil {
		t.Fatal(err)
	}
	off.SetSkyband(false)
	if off.SkybandEnabled() {
		t.Fatal("SetSkyband(false) did not stick")
	}
	return on, off
}

func TestSkybandDifferential(t *testing.T) {
	const casesPerShape = 18
	for si, shape := range shardDiffShapes {
		t.Run(shape.name, func(t *testing.T) {
			for i := 0; i < casesPerShape; i++ {
				seed := int64(70000*si + i)
				rng := rand.New(rand.NewSource(seed))
				n := 1 + rng.Intn(300)
				d := 2 + rng.Intn(3)
				k := 1 + rng.Intn(15)
				ds := shape.gen(n, d, seed+300000)
				pts := make([][]float64, len(ds.Points))
				for j, p := range ds.Points {
					pts[j] = p
				}
				w := []float64(sample.RandSimplex(rng, d))
				q := make([]float64, d)
				for j := range q {
					q[j] = rng.Float64() * rng.Float64()
				}
				W := make([][]float64, 1+rng.Intn(20))
				for j := range W {
					W[j] = sample.RandSimplex(rng, d)
				}
				for _, s := range shardDiffCounts {
					on, off := skybandPair(t, pts, s)
					gotRank, err := on.Rank(w, q)
					if err != nil {
						t.Fatal(err)
					}
					wantRank, _ := off.Rank(w, q)
					if gotRank != wantRank {
						t.Fatalf("case %d s=%d: Rank %d, ablation %d", i, s, gotRank, wantRank)
					}
					gotRTK, err := on.ReverseTopK(W, q, k)
					if err != nil {
						t.Fatal(err)
					}
					wantRTK, _ := off.ReverseTopK(W, q, k)
					if !reflect.DeepEqual(gotRTK, wantRTK) {
						t.Fatalf("case %d s=%d: ReverseTopK %v, ablation %v", i, s, gotRTK, wantRTK)
					}
					// TopK-via-RTA: the score sequence each RTA evaluation
					// buffers is the global top-k; spot-check it directly
					// through the banded evaluation path.
					onResp, err := on.ReverseTopKCtx(t.Context(), ReverseTopKRequest{Q: q, K: k, W: W})
					if err != nil {
						t.Fatal(err)
					}
					offResp, _ := off.ReverseTopKCtx(t.Context(), ReverseTopKRequest{Q: q, K: k, W: W})
					if !reflect.DeepEqual(onResp.Result, offResp.Result) {
						t.Fatalf("case %d s=%d: Ctx results diverge", i, s)
					}
					if onResp.RTA.CandidateSetSize <= 0 || onResp.RTA.CandidateSetSize > offResp.RTA.CandidateSetSize {
						t.Fatalf("case %d s=%d: candidate set %d vs full %d",
							i, s, onResp.RTA.CandidateSetSize, offResp.RTA.CandidateSetSize)
					}
					gotExp, err := on.Explain(q, W[:1])
					if err != nil {
						t.Fatal(err)
					}
					wantExp, _ := off.Explain(q, W[:1])
					sameRankedModuloTies(t, "skyband Explain", gotExp[0], wantExp[0])
				}
			}
		})
	}
}

// TestSkybandWhyNotPenalties runs the full pipeline with identical seeds on
// skyband-on and skyband-off indexes and requires bit-identical answers,
// penalties included — the sub-index reroutes the MQP k-th searches, the
// sampler construction and every rank evaluation, so this pins the whole
// bit-compatibility argument, across both MWK strategies and the parallel
// MQWK path.
func TestSkybandWhyNotPenalties(t *testing.T) {
	const cases = 8
	for i := 0; i < cases; i++ {
		seed := int64(90 + i)
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(200)
		d := 2 + rng.Intn(2)
		k := 1 + rng.Intn(6)
		opts := Options{SampleSize: 16, Seed: seed}
		if i%3 == 1 {
			opts.PerVector = true
		}
		if i%4 == 2 {
			opts.Workers = 3
		}
		ds := dataset.Independent(n, d, seed+400000)
		pts := make([][]float64, len(ds.Points))
		for j, p := range ds.Points {
			pts[j] = p
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = pts[rng.Intn(n)][j]*0.5 + 0.3
		}
		W := make([][]float64, 4+rng.Intn(8))
		for j := range W {
			W[j] = sample.RandSimplex(rng, d)
		}
		for _, s := range shardDiffCounts {
			on, off := skybandPair(t, pts, s)
			got, err := on.WhyNot(q, k, W, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := off.WhyNot(q, k, W, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Result, want.Result) || !reflect.DeepEqual(got.Missing, want.Missing) {
				t.Fatalf("case %d s=%d: result/missing diverge", i, s)
			}
			for ei := range want.Explanations {
				sameRankedModuloTies(t, "skyband WhyNot explanation", got.Explanations[ei], want.Explanations[ei])
			}
			if !reflect.DeepEqual(got.ModifiedQuery.Q, want.ModifiedQuery.Q) ||
				got.ModifiedQuery.Penalty != want.ModifiedQuery.Penalty {
				t.Fatalf("case %d s=%d: MQP diverged: %+v vs %+v", i, s, got.ModifiedQuery, want.ModifiedQuery)
			}
			if got.ModifiedPreferences.Penalty != want.ModifiedPreferences.Penalty ||
				got.ModifiedPreferences.K != want.ModifiedPreferences.K ||
				got.ModifiedPreferences.KMax != want.ModifiedPreferences.KMax ||
				!reflect.DeepEqual(got.ModifiedPreferences.Wm, want.ModifiedPreferences.Wm) {
				t.Fatalf("case %d s=%d: MWK diverged: %+v vs %+v", i, s, got.ModifiedPreferences, want.ModifiedPreferences)
			}
			if got.ModifiedAll.Penalty != want.ModifiedAll.Penalty ||
				got.ModifiedAll.K != want.ModifiedAll.K ||
				!reflect.DeepEqual(got.ModifiedAll.Q, want.ModifiedAll.Q) ||
				!reflect.DeepEqual(got.ModifiedAll.Wm, want.ModifiedAll.Wm) {
				t.Fatalf("case %d s=%d: MQWK diverged: %+v vs %+v", i, s, got.ModifiedAll, want.ModifiedAll)
			}
		}
	}
}

// TestSkybandMutationInvalidation drives the same mutation stream into a
// skyband-on and a skyband-off index, querying between mutations: every
// answer must stay identical, which fails if a stale band survives an
// insert or delete.
func TestSkybandMutationInvalidation(t *testing.T) {
	const d = 3
	for _, s := range []int{1, 3} {
		ds := dataset.Independent(150, d, 41)
		pts := make([][]float64, len(ds.Points))
		for j, p := range ds.Points {
			pts[j] = p
		}
		on, off := skybandPair(t, pts, s)
		rng := rand.New(rand.NewSource(90017))
		W := make([][]float64, 8)
		for j := range W {
			W[j] = sample.RandSimplex(rng, d)
		}
		for i := 0; i < 120; i++ {
			q := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			// Warm the caches so the mutation has something to invalidate.
			if _, err := on.ReverseTopK(W, q, 5); err != nil {
				t.Fatal(err)
			}
			p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			idA, errA := on.Insert(p)
			idB, errB := off.Insert(p)
			if errA != nil || errB != nil || idA != idB {
				t.Fatalf("insert diverged: (%d, %v) vs (%d, %v)", idA, errA, idB, errB)
			}
			if i%3 == 0 {
				victim := rng.Intn(idA + 1)
				okA, _ := on.Delete(victim)
				okB, _ := off.Delete(victim)
				if okA != okB {
					t.Fatalf("delete %d diverged", victim)
				}
			}
			gotRTK, err := on.ReverseTopK(W, q, 5)
			if err != nil {
				t.Fatal(err)
			}
			wantRTK, _ := off.ReverseTopK(W, q, 5)
			if !reflect.DeepEqual(gotRTK, wantRTK) {
				t.Fatalf("s=%d step %d: post-mutation ReverseTopK diverged", s, i)
			}
			gotRank, _ := on.Rank(W[0], q)
			wantRank, _ := off.Rank(W[0], q)
			if gotRank != wantRank {
				t.Fatalf("s=%d step %d: post-mutation Rank %d vs %d", s, i, gotRank, wantRank)
			}
		}
		if err := on.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSkybandEngineStats exercises the engine integration: the sub-index
// state and the per-endpoint RTA totals must surface in EngineStats, the
// response stats must carry the candidate-set size, clones must keep the
// cumulative counters, and the DisableSkyband ablation must answer
// identically.
func TestSkybandEngineStats(t *testing.T) {
	eOn, _ := testEngine(t, 500, 3, EngineConfig{CacheSize: -1})
	eOff, _ := testEngine(t, 500, 3, EngineConfig{CacheSize: -1, DisableSkyband: true})
	if !eOn.Snapshot().SkybandEnabled() || eOff.Snapshot().SkybandEnabled() {
		t.Fatal("engine skyband configuration not applied")
	}
	rng := rand.New(rand.NewSource(123))
	q := []float64{rng.Float64() * 0.3, rng.Float64() * 0.3, rng.Float64() * 0.3}
	W := make([][]float64, 12)
	for j := range W {
		W[j] = sample.RandSimplex(rng, 3)
	}
	respOn, err := eOn.ReverseTopKCtx(t.Context(), ReverseTopKRequest{Q: q, K: 4, W: W})
	if err != nil {
		t.Fatal(err)
	}
	respOff, err := eOff.ReverseTopKCtx(t.Context(), ReverseTopKRequest{Q: q, K: 4, W: W})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(respOn.Result, respOff.Result) {
		t.Fatalf("engine results diverge: %v vs %v", respOn.Result, respOff.Result)
	}
	if respOn.RTA.CandidateSetSize <= 0 || respOn.RTA.CandidateSetSize >= 500 {
		t.Fatalf("banded candidate set size = %d, want within (0, 500)", respOn.RTA.CandidateSetSize)
	}
	if respOff.RTA.CandidateSetSize != 500 {
		t.Fatalf("ablation candidate set size = %d, want 500", respOff.RTA.CandidateSetSize)
	}
	wnOn, err := eOn.WhyNotCtx(t.Context(), WhyNotRequest{Q: q, K: 4, W: W, Opts: Options{SampleSize: 8, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if wnOn.Answer.RTA.Evaluated+wnOn.Answer.RTA.Pruned != len(W) {
		t.Fatalf("WhyNot RTA stats inconsistent: %+v over %d vectors", wnOn.Answer.RTA, len(W))
	}

	st := eOn.Stats()
	if !st.Skyband.Enabled || st.Skyband.Builds < 1 || st.Skyband.Bands < 1 || st.Skyband.Points < 1 {
		t.Fatalf("skyband stats not populated: %+v", st.Skyband)
	}
	if st.RTA["rtopk"].Runs != 1 || st.RTA["whynot"].Runs != 1 {
		t.Fatalf("RTA runs = %+v, want one run each", st.RTA)
	}
	if st.RTA["rtopk"].Evaluated+st.RTA["rtopk"].Pruned != int64(len(W)) {
		t.Fatalf("rtopk RTA totals inconsistent: %+v", st.RTA["rtopk"])
	}
	if st.RTA["rtopk"].CandidatePoints != int64(respOn.RTA.CandidateSetSize) {
		t.Fatalf("candidate points %d, want %d", st.RTA["rtopk"].CandidatePoints, respOn.RTA.CandidateSetSize)
	}

	// A mutation publishes a fresh snapshot: its cache starts empty while
	// the cumulative counters carry over.
	builds := st.Skyband.Builds
	if _, _, err := eOn.Insert([]float64{0.9, 0.9, 0.9}); err != nil {
		t.Fatal(err)
	}
	st2 := eOn.Stats()
	if st2.Skyband.Bands != 0 {
		t.Fatalf("fresh snapshot should hold no bands, got %d", st2.Skyband.Bands)
	}
	if st2.Skyband.Builds != builds {
		t.Fatalf("cumulative builds changed on snapshot swap: %d vs %d", st2.Skyband.Builds, builds)
	}
	if _, err := eOn.ReverseTopKCtx(t.Context(), ReverseTopKRequest{Q: q, K: 4, W: W}); err != nil {
		t.Fatal(err)
	}
	if got := eOn.Stats().Skyband; got.Builds <= builds || got.Bands < 1 {
		t.Fatalf("new snapshot did not rebuild its band: %+v", got)
	}
}
