module wqrtq

go 1.24
