package wqrtq

// Sharded scatter-gather execution. An Index optionally carries a spatial
// partition of its point set (internal/shard): S shards built by STR-order
// round-robin of leaf runs, each backed by its own copy-on-write R-tree.
// When present, the core query surface — TopK, Rank, ReverseTopK (and the
// RTA loop behind WhyNot), Explain — executes by scatter-gather: each shard
// searches concurrently and the gather merges per-shard buffers into the
// global answer. Results are bit-identical to unsharded execution (the
// unsharded index is the differential baseline; see internal/shard and the
// TestShardedDifferential suite).
//
// The monolithic tree is kept alongside the shards: the refinement
// pipeline (MQP/MWK/MQWK), nearest-neighbor and monochromatic queries
// traverse it directly, and it anchors the snapshot epoch. Mutations apply
// to both structures — the owning shard and the monolithic tree — under
// the same external serialization contract as before.

import (
	"context"

	"wqrtq/internal/rtopk"
	"wqrtq/internal/shard"
	"wqrtq/internal/skyband"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// NewIndexSharded is NewIndex with the dataset additionally partitioned
// into s spatial shards for scatter-gather query execution. s <= 1 builds a
// plain unsharded index.
func NewIndexSharded(points [][]float64, s int) (*Index, error) {
	ix, err := NewIndex(points)
	if err != nil {
		return nil, err
	}
	if err := ix.Reshard(s); err != nil {
		return nil, err
	}
	return ix, nil
}

// Reshard rebuilds the index's spatial partition with s shards (s <= 1
// removes it, restoring monolithic execution; s > shard.MaxShards is
// rejected, since every query fans out one goroutine per shard). It must be
// serialized with mutations and must not run concurrently with queries —
// call it at setup time, before the index is shared. Record ids are
// preserved.
func (ix *Index) Reshard(s int) error {
	if s <= 1 {
		ix.shards = nil
		return nil
	}
	set, err := shard.New(ix.points, s)
	if err != nil {
		return invalidArgf("reshard: %v", err)
	}
	if !ix.skyOff {
		set.EnableSkyband(ix.skyCounters())
	}
	if !ix.kernelOff {
		set.EnableKernel(ix.kct)
	}
	if !ix.cellOff {
		set.EnableCellIndex(ix.cct)
	}
	ix.shards = set
	return nil
}

// Shards returns the number of spatial shards backing scatter-gather
// execution; 1 means the index is unsharded (monolithic execution).
func (ix *Index) Shards() int {
	if ix.shards == nil {
		return 1
	}
	return ix.shards.Shards()
}

// topkResults answers a validated top-k query through the sharded or
// monolithic backend.
func (ix *Index) topkResults(ctx context.Context, w vec.Weight, k int) ([]topk.Result, error) {
	if ix.shards != nil {
		return ix.shards.TopKCtx(ctx, w, k)
	}
	return topk.TopKCtx(ctx, ix.tree, w, k)
}

// rankResult answers a validated rank query (1 + global strict-beat count)
// through the sharded or monolithic backend. With the skyband sub-index
// enabled, the count first runs over the DefaultRankBand-skyband — exact
// whenever it stays below the band bound, since any dataset with >= K
// beaters has >= K of them inside the K-skyband — and falls back to the
// count-pruned full tree otherwise.
func (ix *Index) rankResult(ctx context.Context, w vec.Weight, fq float64) (int, error) {
	if ix.shards != nil {
		cnt, err := ix.shards.CountBelowCtx(ctx, w, fq)
		if err != nil {
			return 0, err
		}
		return 1 + cnt, nil
	}
	sky := ix.sky
	if ix.skyOff {
		sky = nil
	}
	cnt, err := skyband.CountBelowCtx(ctx, sky, ix.tree, w, fq)
	if err != nil {
		return 0, err
	}
	return 1 + cnt, nil
}

// bichromatic answers a validated bichromatic reverse top-k query through
// the sharded or monolithic backend. Both run the same RTA loop; the
// sharded form assembles each evaluated vector's global top-k from
// per-shard buffers. With the skyband sub-index enabled, every top-k
// evaluation runs against the (per-shard) k-skyband tree: the k smallest
// scores of each shard are achieved inside its local band, so buffers,
// threshold decisions and results match the full-tree execution exactly.
// With the blocked kernel additionally enabled and the band small enough
// (kernelRTACutoff), the evaluation skips the RTA loop entirely: the
// whole weight set is counted against the flattened band in blocked
// sweeps, which decides membership identically (see
// rtopk.BichromaticCoordsCtx's count-preservation argument). With the
// cell index on top, each vector is counted against its grid cell's
// candidate superset instead of the whole band — still bit-identical
// (see internal/cellindex's count-preservation argument) — with a
// whole-query fallback to the paths below when the index declines.
func (ix *Index) bichromatic(ctx context.Context, W []vec.Weight, q vec.Point, k int) ([]int, rtopk.Stats, error) {
	if ix.shards != nil {
		return ix.shards.BichromaticCtx(ctx, W, q, k)
	}
	if g := ix.cellGrid(k); g != nil {
		res, scanned, ok, err := g.ReverseTopK(ctx, W, q, k)
		if err != nil {
			return nil, rtopk.Stats{}, err
		}
		if ok {
			ix.kct.Add(len(W), scanned)
			ix.cct.CountLookups(len(W))
			return res, rtopk.Stats{Evaluated: len(W), CandidateSetSize: g.BasisSize()}, nil
		}
		ix.cct.CountFallback()
	}
	if b := ix.band(k); b != nil {
		if !ix.kernelOff && ix.Dim() <= 4 && b.Size() <= kernelRTACutoff {
			res, stats, err := rtopk.BichromaticCoordsCtx(ctx, b.Coords(), W, q, k, ix.kct)
			stats.CandidateSetSize = b.Size()
			return res, stats, err
		}
		res, stats, err := rtopk.BichromaticCtx(ctx, b.Tree(), W, q, k)
		stats.CandidateSetSize = b.Size()
		return res, stats, err
	}
	return rtopk.BichromaticCtx(ctx, ix.tree, W, q, k)
}

// explainResults answers a validated explanation query through the sharded
// or monolithic backend.
func (ix *Index) explainResults(ctx context.Context, q vec.Point, ws []vec.Weight) ([][]topk.Result, error) {
	if ix.shards != nil {
		return ix.shards.ExplainCtx(ctx, q, ws)
	}
	out := make([][]topk.Result, len(ws))
	for i, w := range ws {
		res, err := topk.ExplainCtx(ctx, ix.tree, w, q)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}
