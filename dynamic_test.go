package wqrtq

import (
	"math/rand"
	"testing"
)

func TestInsertDeleteLifecycle(t *testing.T) {
	ix := paperIndex(t)
	// Insert a dominating computer: it becomes everyone's top choice.
	id, err := ix.Insert([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 {
		t.Errorf("id = %d, want 7", id)
	}
	top, err := ix.TopK([]float64{0.5, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].ID != 7 {
		t.Errorf("top-1 = %d, want the inserted point", top[0].ID)
	}
	// Rank of the old query point degrades by one.
	r, _ := ix.Rank([]float64{0.1, 0.9}, paperQ)
	if r != 5 {
		t.Errorf("rank = %d, want 5 after insertion", r)
	}
	// Delete it again: back to the paper's numbers.
	ok, err := ix.Delete(id)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	r, _ = ix.Rank([]float64{0.1, 0.9}, paperQ)
	if r != 4 {
		t.Errorf("rank = %d, want 4 after deletion", r)
	}
	// Double delete reports false without error.
	ok, err = ix.Delete(id)
	if err != nil || ok {
		t.Errorf("second Delete = %v, %v", ok, err)
	}
	if ix.Point(id) != nil {
		t.Error("deleted point still retrievable")
	}
	if _, err := ix.Delete(99); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := ix.Insert([]float64{-1, 0}); err == nil {
		t.Error("invalid point accepted")
	}
}

func TestSkylineFacade(t *testing.T) {
	ix := paperIndex(t)
	sky := ix.Skyline()
	if len(sky) != 2 || sky[0] != 0 || sky[1] != 2 {
		t.Errorf("skyline = %v, want [0 2]", sky)
	}
	// Deleting a skyline point promotes others.
	if ok, _ := ix.Delete(0); !ok {
		t.Fatal("failed to delete p1")
	}
	sky = ix.Skyline()
	for _, id := range sky {
		if id == 0 {
			t.Error("deleted point still in skyline")
		}
	}
	if len(sky) < 2 {
		t.Errorf("skyline after delete = %v, expected new entrants", sky)
	}
}

func TestReverseTopKParallelFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([][]float64, 2000)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	ix, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	W := make([][]float64, 100)
	for i := range W {
		a, b := rng.Float64(), rng.Float64()
		sum := a + b + 0.1
		W[i] = []float64{a / sum, b / sum, 0.1 / sum}
	}
	q := []float64{0.2, 0.2, 0.2}
	want, err := ix.ReverseTopK(W, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4} {
		got, err := ix.ReverseTopKParallel(W, q, 10, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d differs", workers, i)
			}
		}
	}
}

func TestOptionsPerVectorAndWorkers(t *testing.T) {
	ix := paperIndex(t)
	wm := [][]float64{{0.1, 0.9}, {0.9, 0.1}}
	// Per-vector strategy produces a valid refinement too.
	per, err := ix.ModifyPreferences(paperQ, 3, wm, Options{SampleSize: 500, Seed: 2, PerVector: true})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := ix.Verify(paperQ, per.K, per.Wm); !ok {
		t.Error("per-vector refinement fails verification")
	}
	// Parallel ModifyAll matches itself across worker counts.
	a, err := ix.ModifyAll(paperQ, 3, wm, Options{SampleSize: 200, Seed: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.ModifyAll(paperQ, 3, wm, Options{SampleSize: 200, Seed: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Penalty != b.Penalty || a.K != b.K {
		t.Errorf("parallel ModifyAll not deterministic: %v vs %v", a, b)
	}
	if ok, _ := ix.Verify(a.Q, a.K, a.Wm); !ok {
		t.Error("parallel refinement fails verification")
	}
}
