package wqrtq

// Differential property suite for sharded execution: for every endpoint of
// the query surface, a sharded index must answer bit-identically to the
// unsharded index over the same points — same TopK order, same Rank, same
// ReverseTopK index sets, same WhyNot penalties — across shard counts
// including ones that leave shards empty. Cases follow the oracle style of
// internal/core/oracle_test.go: seeded, randomized over the paper's UN/CO/AC
// dataset shapes, reproducible from the case index alone.

import (
	"math/rand"
	"reflect"
	"testing"

	"wqrtq/internal/dataset"
	"wqrtq/internal/sample"
)

var shardDiffShapes = []struct {
	name string
	gen  func(n, d int, seed int64) *dataset.Dataset
}{
	{"UN", dataset.Independent},
	{"CO", dataset.Correlated},
	{"AC", dataset.Anticorrelated},
}

var shardDiffCounts = []int{1, 2, 3, 7}

// sameRankedModuloTies compares two ranked lists for bit-identical scores
// and, within each run of equal scores, identical ID sets. Duplicate points
// (the clamped CO/AC generators produce them) tie on every score, and the
// paper's definitions determine only the score sequence at a tie — the
// sharded merge breaks ties by ID while the monolithic heap's order is
// unspecified, so ID order inside a tie run is not comparable.
func sameRankedModuloTies(t *testing.T, label string, got, want []Ranked) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Score != want[i].Score {
			t.Fatalf("%s: rank %d score %v, want %v", label, i+1, got[i].Score, want[i].Score)
		}
	}
	for lo := 0; lo < len(got); {
		hi := lo + 1
		for hi < len(got) && got[hi].Score == got[lo].Score {
			hi++
		}
		g := make(map[int]bool, hi-lo)
		for _, r := range got[lo:hi] {
			g[r.ID] = true
		}
		for _, r := range want[lo:hi] {
			if !g[r.ID] {
				t.Fatalf("%s: tie run at rank %d-%d has id %d in unsharded but not sharded",
					label, lo+1, hi, r.ID)
			}
		}
		lo = hi
	}
}

func TestShardedDifferential(t *testing.T) {
	const casesPerShape = 25
	for si, shape := range shardDiffShapes {
		t.Run(shape.name, func(t *testing.T) {
			for i := 0; i < casesPerShape; i++ {
				seed := int64(9000*si + i)
				rng := rand.New(rand.NewSource(seed))
				n := 1 + rng.Intn(300)
				d := 2 + rng.Intn(3)
				k := 1 + rng.Intn(15)
				ds := shape.gen(n, d, seed+100000)
				pts := make([][]float64, len(ds.Points))
				for j, p := range ds.Points {
					pts[j] = p
				}
				base, err := NewIndex(pts)
				if err != nil {
					t.Fatal(err)
				}
				w := []float64(sample.RandSimplex(rng, d))
				q := make([]float64, d)
				for j := range q {
					q[j] = rng.Float64() * rng.Float64()
				}
				W := make([][]float64, 1+rng.Intn(20))
				for j := range W {
					W[j] = sample.RandSimplex(rng, d)
				}

				wantTopK, _ := base.TopK(w, k)
				wantRank, _ := base.Rank(w, q)
				wantRTK, _ := base.ReverseTopK(W, q, k)
				wantExp, _ := base.Explain(q, W[:1])

				for _, s := range shardDiffCounts {
					sharded, err := NewIndexSharded(pts, s)
					if err != nil {
						t.Fatal(err)
					}
					if want := max(s, 1); sharded.Shards() != want {
						t.Fatalf("Shards() = %d, want %d", sharded.Shards(), want)
					}
					gotTopK, err := sharded.TopK(w, k)
					if err != nil {
						t.Fatal(err)
					}
					sameRankedModuloTies(t, "TopK", gotTopK, wantTopK)
					gotRank, err := sharded.Rank(w, q)
					if err != nil {
						t.Fatal(err)
					}
					if gotRank != wantRank {
						t.Fatalf("case %d s=%d: Rank %d, unsharded %d", i, s, gotRank, wantRank)
					}
					gotRTK, err := sharded.ReverseTopK(W, q, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotRTK, wantRTK) {
						t.Fatalf("case %d s=%d: ReverseTopK %v, unsharded %v", i, s, gotRTK, wantRTK)
					}
					gotExp, err := sharded.Explain(q, W[:1])
					if err != nil {
						t.Fatal(err)
					}
					sameRankedModuloTies(t, "Explain", gotExp[0], wantExp[0])
				}
			}
		})
	}
}

// TestShardedWhyNotPenalties runs the full why-not pipeline — reverse
// top-k, explanations, and all three refinement algorithms — on sharded and
// unsharded indexes with the same seed and asserts identical answers,
// penalties included.
func TestShardedWhyNotPenalties(t *testing.T) {
	const cases = 6
	opts := Options{SampleSize: 16, Seed: 3}
	for i := 0; i < cases; i++ {
		seed := int64(40 + i)
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(150)
		d := 2 + rng.Intn(2)
		k := 1 + rng.Intn(6)
		ds := dataset.Independent(n, d, seed+200000)
		pts := make([][]float64, len(ds.Points))
		for j, p := range ds.Points {
			pts[j] = p
		}
		base, err := NewIndex(pts)
		if err != nil {
			t.Fatal(err)
		}
		// A mid-ranked query point so some vectors miss it: scale a dataset
		// point away from the origin.
		q := make([]float64, d)
		for j := range q {
			q[j] = pts[rng.Intn(n)][j]*0.5 + 0.3
		}
		W := make([][]float64, 4+rng.Intn(8))
		for j := range W {
			W[j] = sample.RandSimplex(rng, d)
		}
		want, err := base.WhyNot(q, k, W, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range shardDiffCounts[1:] {
			sharded, err := NewIndexSharded(pts, s)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.WhyNot(q, k, W, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Result, want.Result) || !reflect.DeepEqual(got.Missing, want.Missing) {
				t.Fatalf("case %d s=%d: result/missing diverge: %v/%v vs %v/%v",
					i, s, got.Result, got.Missing, want.Result, want.Missing)
			}
			for ei := range want.Explanations {
				sameRankedModuloTies(t, "WhyNot explanation", got.Explanations[ei], want.Explanations[ei])
			}
			if got.ModifiedQuery.Penalty != want.ModifiedQuery.Penalty ||
				got.ModifiedPreferences.Penalty != want.ModifiedPreferences.Penalty ||
				got.ModifiedAll.Penalty != want.ModifiedAll.Penalty {
				t.Fatalf("case %d s=%d: penalties (%v, %v, %v) vs (%v, %v, %v)",
					i, s,
					got.ModifiedQuery.Penalty, got.ModifiedPreferences.Penalty, got.ModifiedAll.Penalty,
					want.ModifiedQuery.Penalty, want.ModifiedPreferences.Penalty, want.ModifiedAll.Penalty)
			}
		}
	}
}

// TestShardedMutationsMatchUnsharded drives the same mutation stream into a
// sharded and an unsharded index and asserts the query surface stays
// identical throughout.
func TestShardedMutationsMatchUnsharded(t *testing.T) {
	const d = 3
	ds := dataset.Independent(120, d, 31)
	pts := make([][]float64, len(ds.Points))
	for j, p := range ds.Points {
		pts[j] = p
	}
	base, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewIndexSharded(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(90001))
	for i := 0; i < 200; i++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		idA, errA := base.Insert(p)
		idB, errB := sharded.Insert(p)
		if errA != nil || errB != nil || idA != idB {
			t.Fatalf("insert diverged: (%d, %v) vs (%d, %v)", idA, errA, idB, errB)
		}
		if i%3 == 0 {
			victim := rng.Intn(idA + 1)
			okA, errA := base.Delete(victim)
			okB, errB := sharded.Delete(victim)
			if okA != okB || (errA == nil) != (errB == nil) {
				t.Fatalf("delete %d diverged: (%v, %v) vs (%v, %v)", victim, okA, errA, okB, errB)
			}
		}
		if i%10 == 0 {
			w := []float64(sample.RandSimplex(rng, d))
			wantTopK, _ := base.TopK(w, 12)
			gotTopK, err := sharded.TopK(w, 12)
			if err != nil {
				t.Fatal(err)
			}
			sameRankedModuloTies(t, "post-mutation TopK", gotTopK, wantTopK)
		}
	}
	if err := sharded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if base.Len() != sharded.Len() {
		t.Fatalf("live counts diverged: %d vs %d", base.Len(), sharded.Len())
	}
}

// TestEngineSharded runs the engine-level surface over a sharded snapshot
// and checks it against the unsharded engine's answers, covering the batch
// executor's scatter-gather dispatch (including cached and merged paths).
func TestEngineSharded(t *testing.T) {
	eU, _ := testEngine(t, 400, 3, EngineConfig{})
	eS, _ := testEngine(t, 400, 3, EngineConfig{Shards: 4})
	if got := eS.Stats().Shards; got != 4 {
		t.Fatalf("sharded engine Stats().Shards = %d, want 4", got)
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		w := []float64(sample.RandSimplex(rng, 3))
		q := []float64{rng.Float64() * 0.2, rng.Float64() * 0.2, rng.Float64() * 0.2}
		k := 1 + rng.Intn(10)
		W := make([][]float64, 1+rng.Intn(6))
		for j := range W {
			W[j] = sample.RandSimplex(rng, 3)
		}

		gotT, _, err := eS.TopK(w, k)
		if err != nil {
			t.Fatal(err)
		}
		wantT, _, _ := eU.TopK(w, k)
		sameRankedModuloTies(t, "engine TopK", gotT, wantT)
		gotR, _, err := eS.Rank(w, q)
		if err != nil {
			t.Fatal(err)
		}
		wantR, _, _ := eU.Rank(w, q)
		if gotR != wantR {
			t.Fatalf("engine Rank diverged at case %d: %d vs %d", i, gotR, wantR)
		}
		gotRT, _, err := eS.ReverseTopK(W, q, k)
		if err != nil {
			t.Fatal(err)
		}
		wantRT, _, _ := eU.ReverseTopK(W, q, k)
		if !reflect.DeepEqual(gotRT, wantRT) {
			t.Fatalf("engine ReverseTopK diverged at case %d: %v vs %v", i, gotRT, wantRT)
		}
	}
}
